// Versions and alternatives (paper Fig. 4): snapshot the database, evolve
// it, look at historical views, branch an alternative from an old version,
// navigate an object's history — then persist everything and reload it.
//
//   $ ./build/examples/version_explorer

#include <cstdio>

#include <filesystem>

#include "core/persistence.h"
#include "spades/spec_schema.h"
#include "version/version_io.h"
#include "version/version_manager.h"

using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;
using seed::version::VersionId;
using seed::version::VersionManager;

int main() {
  auto fig3 = seed::spades::BuildFig3Schema();
  if (!fig3.ok()) return 1;
  Database db(fig3->schema);
  VersionManager vm(&db);
  const auto& ids = fig3->ids;

  // Version 1.0: the Fig. 4c state.
  ObjectId handler = *db.CreateObject(ids.action, "AlarmHandler");
  ObjectId desc = *db.CreateSubObject(handler, "Description");
  (void)db.SetValue(desc, Value::String("Handles alarms"));
  (void)vm.CreateVersion(*VersionId::Parse("1.0"));
  std::printf("froze version 1.0\n");

  // Version 2.0: refined description.
  (void)db.SetValue(desc,
                    Value::String("Handles alarms derived from ProcessData"));
  (void)vm.CreateVersion(*VersionId::Parse("2.0"));
  std::printf("froze version 2.0\n");

  // Current: the Fig. 4b state.
  (void)db.SetValue(desc, Value::String("Generates alarms from process "
                                        "data, triggers Operator Alert"));
  ObjectId alarms = *db.CreateObject(ids.input_data, "Alarms");
  (void)db.CreateRelationship(ids.read, alarms, handler);

  // Views into history.
  for (const char* v : {"1.0", "2.0"}) {
    auto view = vm.MaterializeView(*VersionId::Parse(v));
    auto d = (*view)->FindObjectByName("AlarmHandler.Description");
    std::printf("view %-4s: description = %s\n", v,
                (*(*view)->GetObject(*d))->value.ToString().c_str());
  }
  std::printf("current  : description = %s\n",
              (*db.GetObject(desc))->value.ToString().c_str());

  // Alternative: roll back to 1.0, explore a different wording, freeze it.
  (void)vm.SelectVersion(*VersionId::Parse("1.0"));
  ObjectId alt_desc = *db.FindObjectByName("AlarmHandler.Description");
  (void)db.SetValue(alt_desc, Value::String("Routes alarms to operators"));
  auto branch = vm.CreateVersion();
  std::printf("\nbranched alternative %s from 1.0\n",
              branch->ToString().c_str());

  // History navigation: "find all versions of 'AlarmHandler.Description'".
  auto hits = vm.VersionsOfObject("AlarmHandler.Description");
  std::printf("versions touching the description:");
  for (const auto& hit : *hits) {
    std::printf(" %s%s", hit.version.ToString().c_str(),
                hit.deleted ? "(deleted)" : "");
  }
  std::printf("\n");

  // Persist database + version store; reload and re-materialize.
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/seed_version_explorer";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    seed::storage::KvStore kv;
    (void)kv.Open(dir);
    (void)seed::core::Persistence::SaveFull(db, &kv);
    (void)seed::version::VersionPersistence::Save(vm, &kv);
    (void)kv.Close();
  }
  seed::storage::KvStore kv;
  (void)kv.Open(dir);
  auto loaded = seed::core::Persistence::Load(&kv);
  VersionManager loaded_vm(loaded->get());
  (void)seed::version::VersionPersistence::Load(&loaded_vm, &kv);
  std::printf("\nreloaded from %s: %zu versions, basis %s\n", dir.c_str(),
              loaded_vm.num_versions(),
              loaded_vm.current_basis().ToString().c_str());
  auto view = loaded_vm.MaterializeView(*branch);
  auto d = (*view)->FindObjectByName("AlarmHandler.Description");
  std::printf("alternative view after reload: %s\n",
              (*(*view)->GetObject(*d))->value.ToString().c_str());
  std::filesystem::remove_all(dir);
  return 0;
}
