// Plan-quality smoke gate (run by CI): builds the skewed 5-hop chain the
// long-chain bench uses — tiny selective associations alternating with
// dense ones — at a small size, executes the DP-chosen plan tree and
// every explicit left-deep ordering, and compares *measured* rows
// visited (the sum of rows each plan node actually produced). The gate
// fails (exit 1) when the DP plan visits more than 2x the rows of the
// best sampled ordering: the optimizer may tie the best left-deep plan
// or beat it with a bushy tree, but it must never regress past the
// 2x guardrail. All plans are identity-checked against each other first.

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "query/planner.h"

#include "../bench/skewed_chain.h"

namespace {

using seed::bench::BuildSkewedChain;
using seed::query::Planner;

/// The registry's rows-visited counter — the same figure the trajectory
/// driver and EXPLAIN ANALYZE report (0 before the first query runs).
std::uint64_t RowsVisitedCounter() {
  const seed::obs::Counter* c =
      seed::obs::MetricsRegistry::Global().FindCounter(
          "query.rows.visited.total");
  return c == nullptr ? 0 : c->value();
}

}  // namespace

int main() {
  auto world = BuildSkewedChain(5000);
  Planner planner(world.db.get());

  Planner::PhysicalPlan dp_plan;
  std::uint64_t rows_before = RowsVisitedCounter();
  auto dp = planner.JoinPipeline(world.inputs, world.hops, &dp_plan);
  if (!dp.ok()) {
    std::fprintf(stderr, "DP pipeline failed: %s\n",
                 dp.status().ToString().c_str());
    return 1;
  }
  // Rows visited comes from the metrics registry (the engine's one
  // source of truth), cross-checked against the plan tree's own
  // accounting so the two can never drift apart unnoticed.
  long long dp_rows =
      static_cast<long long>(RowsVisitedCounter() - rows_before);
  if (!seed::obs::MetricsEnabled()) {
    dp_rows = dp_plan.RowsVisited();  // SEED_METRICS=off: plan tree only
  } else if (dp_rows != dp_plan.RowsVisited()) {
    std::fprintf(stderr,
                 "accounting drift: registry counted %lld rows visited, "
                 "the plan tree reports %lld\n",
                 dp_rows, static_cast<long long>(dp_plan.RowsVisited()));
    return 1;
  }

  long long best_rows = -1;
  std::string best_order;
  for (const auto& order : Planner::LeftDeepOrders(world.hops.size())) {
    Planner::PhysicalPlan plan;
    auto r = planner.JoinPipelineInOrder(world.inputs, world.hops, order,
                                         &plan);
    if (!r.ok()) {
      std::fprintf(stderr, "ordering failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    if (r->tuples != dp->tuples) {
      std::fprintf(stderr, "identity violation: an explicit ordering "
                           "disagrees with the DP plan\n");
      return 1;
    }
    long long rows = plan.RowsVisited();
    if (best_rows < 0 || rows < best_rows) {
      best_rows = rows;
      best_order.clear();
      for (int h : order) best_order += std::to_string(h);
    }
  }

  std::printf("plan-quality smoke: DP visited %lld rows (%s%s), best "
              "sampled left-deep ordering %s visited %lld rows\n",
              dp_rows, dp_plan.HasBushyJoin() ? "bushy tree: " : "",
              dp_plan.ToString().c_str(), best_order.c_str(), best_rows);
  if (dp_rows > 2 * best_rows) {
    std::fprintf(stderr,
                 "FAIL: DP plan visited %lld rows, more than 2x the best "
                 "sampled ordering's %lld\n",
                 dp_rows, best_rows);
    return 1;
  }
  std::printf("OK: DP plan is within 2x of the best sampled ordering\n");
  return 0;
}
