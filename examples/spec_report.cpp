// spec_report: run a full specification session through the SEED-backed
// tool, then report on the resulting database the way an engineering
// environment would — statistics, completeness summary, textual queries,
// and Graphviz exports of schema and data.
//
//   $ ./build/examples/spec_report > /tmp/report.txt
//   $ ./build/examples/spec_report --dot | dot -Tsvg > spec.svg

#include <cstdio>
#include <cstring>

#include "core/export.h"
#include "core/stats.h"
#include "query/parser.h"
#include "spades/spec_tool.h"
#include "spades/workload.h"

int main(int argc, char** argv) {
  bool dot_mode = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  auto tool = std::move(seed::spades::SeedSpecTool::Create()).value();
  seed::spades::SessionParams params;
  params.num_actions = 12;
  params.num_data = 12;
  params.flows_per_action = 2;
  params.num_queries = 0;
  auto stats = seed::spades::RunSession(tool.get(), params);
  if (!stats.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  const seed::core::Database& db = *tool->database();

  if (dot_mode) {
    std::printf("%s", seed::core::DotExport::Database(db).c_str());
    return 0;
  }

  std::printf("=== session ===\n%llu mutations, %llu completeness findings\n\n",
              static_cast<unsigned long long>(stats->mutations),
              static_cast<unsigned long long>(stats->incomplete_findings));

  std::printf("=== database statistics ===\n%s\n",
              seed::core::CollectStats(db).ToString().c_str());

  std::printf("=== queries ===\n");
  for (const char* q : {
           "find Action where Description contains alarm",
           "find InputData",
           "find Data where name contains 3",
           "find Thing exact",
       }) {
    auto result = seed::query::RunQuery(db, q);
    std::printf("%-48s -> ", q);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%zu hits\n", result->size());
  }

  std::printf("\n=== schema (DOT, first lines) ===\n");
  std::string dot = seed::core::DotExport::Schema(*db.schema());
  size_t shown = 0;
  for (size_t pos = 0; pos < dot.size() && shown < 8; ++shown) {
    size_t next = dot.find('\n', pos);
    std::printf("%s\n", dot.substr(pos, next - pos).c_str());
    pos = next + 1;
  }
  std::printf("...\n");
  return 0;
}
