// seed_shell: an interactive command shell over a SEED database running
// the paper's Fig. 3 schema — the closest thing to sitting at the 1986
// prototype. Reads commands from stdin (pipe a script for batch use).
//
//   $ ./build/examples/seed_shell
//   seed> create Thing Alarms
//   seed> reclass Alarms Data
//   seed> link Access Alarms Sensor
//   seed> check
//
// Commands: help, find <Class> [exact] [where ...], find rel <Assoc>
// [exact] [where ...], find <Class> <b1> join [reverse] via <Assoc> to
// <Class> <b2> [join ... up to 6 hops] [where <b> ...] (relationship
// joins and join chains; conditions name the side they constrain by its
// binder), explain find ... (prints the chosen plan — access path, or
// the DP-chosen join plan tree — with estimated vs. actual rows),
// explain analyze find ... (the plan with per-node wall-clock and
// per-phase timings), metrics (engine metrics registry as JSON),
// schema, show [path], create <Class> <Name>,
// sub <path> <role>, set <path> <value>, link <Assoc> <path0> <path1>,
// refine <path> <Class>, refinerel <Assoc> <path0> <path1> <NewAssoc>,
// rels <path>, delete <path>, rename <path> <new>, check [path], audit,
// version [id], versions, select <id>, history <path>,
// index <Class> [role] / index rel <Assoc> <role>, unindex likewise,
// indexes, save <dir>, load <dir>, stats, dot [schema], quit.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/export.h"
#include "core/persistence.h"
#include "core/printer.h"
#include "core/stats.h"
#include "exec/exec_policy.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "spades/spec_schema.h"
#include "version/version_io.h"
#include "version/version_manager.h"

namespace {

using seed::core::Database;
using seed::core::Printer;
using seed::core::Value;
using seed::ObjectId;
using seed::Result;
using seed::Status;
using seed::version::VersionId;
using seed::version::VersionManager;

class Shell {
 public:
  Shell() {
    auto fig3 = seed::spades::BuildFig3Schema();
    db_ = std::make_unique<Database>(fig3->schema);
    vm_ = std::make_unique<VersionManager>(db_.get());
  }

  int Run() {
    std::string line;
    bool tty = isatty(fileno(stdin));
    while (true) {
      if (tty) std::printf("seed> ");
      if (!std::getline(std::cin, line)) break;
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  static std::vector<std::string> Tokenize(const std::string& line) {
    std::istringstream in(line);
    std::vector<std::string> tokens;
    std::string token;
    bool in_quote = false;
    std::string quoted;
    while (in >> token) {
      if (!in_quote && token.front() == '"') {
        if (token.size() > 1 && token.back() == '"') {
          tokens.push_back(token.substr(1, token.size() - 2));
        } else {
          in_quote = true;
          quoted = token.substr(1);
        }
      } else if (in_quote) {
        quoted += " " + token;
        if (token.back() == '"') {
          quoted.pop_back();
          tokens.push_back(quoted);
          in_quote = false;
        }
      } else {
        tokens.push_back(token);
      }
    }
    return tokens;
  }

  void Print(const Status& s) {
    std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
  }

  Result<ObjectId> Find(const std::string& path) {
    auto id = db_->FindObjectByName(path);
    if (id.ok()) return id;
    return db_->FindPatternByName(path);
  }

  /// Parses a value according to the target object's class.
  Result<Value> ParseValue(ObjectId obj, const std::string& text) {
    auto item = db_->GetObject(obj);
    if (!item.ok()) return item.status();
    auto cls = db_->schema()->GetClass((*item)->cls);
    if (!cls.ok()) return cls.status();
    using seed::schema::ValueType;
    switch ((*cls)->value_type) {
      case ValueType::kString:
        return Value::String(text);
      case ValueType::kInt: {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0') {
          return Status::InvalidArgument("'" + text + "' is not an integer");
        }
        return Value::Int(v);
      }
      case ValueType::kReal: {
        errno = 0;
        char* end = nullptr;
        double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0') {
          return Status::InvalidArgument("'" + text + "' is not a number");
        }
        return Value::Real(v);
      }
      case ValueType::kBool:
        if (text == "true") return Value::Bool(true);
        if (text == "false") return Value::Bool(false);
        return Status::InvalidArgument("want true/false");
      case ValueType::kDate: {
        auto d = seed::schema::Date::Parse(text);
        if (!d.ok()) return d.status();
        return Value::OfDate(*d);
      }
      case ValueType::kEnum:
        return Value::Enum(text);
      case ValueType::kNone:
        return Status::FailedPrecondition("class '" + (*cls)->full_name +
                                          "' carries no value");
    }
    return Status::Internal("unknown value type");
  }

  bool Dispatch(const std::string& line) {
    auto tokens = Tokenize(line);
    if (tokens.empty()) return true;
    const std::string& cmd = tokens[0];

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "find <Class> [exact] [where ...] | find rel <Assoc> [exact] "
          "[where ...]\nfind <Class> <b1> join [reverse] via <Assoc> to "
          "<Class> <b2> (... up to 6 hops) [where <b> ...]\n"
          "explain [analyze] find ... | schema | show [path]\ncreate "
          "<Class> <Name> | sub <path> <role>"
          " | set <path> <value>\nlink <Assoc> <p0> <p1> | refine <path> "
          "<Class>\nrefinerel <Assoc> <p0> <p1> <NewAssoc> | rels <path> | "
          "delete <path>\nrename <path> <new> | check [path] | audit | "
          "version [id] | versions\nselect <id> | history <path> | "
          "index [rel] <Class|Assoc> [role] | unindex likewise\nindexes | "
          "save <dir> | load <dir> | stats | metrics | threads [n] | "
          "dot [schema] | quit\n");
      return true;
    }
    if (cmd == "find" || (cmd == "explain" && tokens.size() >= 2)) {
      bool analyze = cmd == "explain" && tokens[1] == "analyze";
      std::string plan;
      seed::query::QueryTrace trace;
      seed::query::QueryTrace* trace_ptr = analyze ? &trace : nullptr;
      std::string_view query = line;
      if (cmd == "explain") {
        size_t at = line.find("find");
        if (at == std::string::npos) {
          std::printf("usage: explain [analyze] find <Class> ...\n");
          return true;
        }
        query.remove_prefix(at);
      }
      size_t rel_at = cmd == "explain" ? (analyze ? 3 : 2) : 1;
      bool rel_query = rel_at < tokens.size() && tokens[rel_at] == "rel";
      bool join_query =
          (rel_at + 2 < tokens.size() && tokens[rel_at + 2] == "join") ||
          (rel_at + 3 < tokens.size() && tokens[rel_at + 2] == "exact" &&
           tokens[rel_at + 3] == "join");
      auto print_plan = [&] {
        if (cmd != "explain") return;
        std::printf("plan: %s\n",
                    analyze ? trace.Render().c_str() : plan.c_str());
      };
      size_t matches = 0;
      if (join_query) {
        auto result =
            seed::query::RunJoinChainQuery(*db_, query, &plan, trace_ptr);
        if (!result.ok()) {
          Print(result.status());
          return true;
        }
        print_plan();
        for (const auto& tuple : result->tuples) {
          std::string row;
          for (seed::ObjectId id : tuple) {
            if (!row.empty()) row += " -- ";
            row += db_->FullName(id);
          }
          std::printf("%s\n", row.c_str());
        }
        matches = result->tuples.size();
      } else if (rel_query) {
        auto result =
            seed::query::RunRelationshipQuery(*db_, query, &plan, trace_ptr);
        if (!result.ok()) {
          Print(result.status());
          return true;
        }
        print_plan();
        for (seed::RelationshipId id : *result) {
          std::printf("%s\n",
                      Printer::RenderRelationship(*db_, id).c_str());
        }
        matches = result->size();
      } else {
        auto result = seed::query::RunQuery(*db_, query, &plan, trace_ptr);
        if (!result.ok()) {
          Print(result.status());
          return true;
        }
        print_plan();
        for (seed::ObjectId id : *result) {
          std::printf("%s\n", db_->FullName(id).c_str());
        }
        matches = result->size();
      }
      std::printf("(%zu match%s)\n", matches, matches == 1 ? "" : "es");
      return true;
    }
    if (cmd == "index" && tokens.size() >= 2 && tokens[1] == "rel") {
      if (tokens.size() != 4) {
        std::printf("usage: index rel <Assoc> <role>\n");
        return true;
      }
      auto assoc = db_->schema()->FindAssociation(tokens[2]);
      if (!assoc.ok()) {
        Print(assoc.status());
        return true;
      }
      Print(db_->CreateAttributeIndex(
          seed::index::IndexSpec::ForAssociation(*assoc, tokens[3])));
      return true;
    }
    if (cmd == "index" && (tokens.size() == 2 || tokens.size() == 3)) {
      auto cls = db_->schema()->FindIndependentClass(tokens[1]);
      if (!cls.ok()) {
        Print(cls.status());
        return true;
      }
      seed::index::IndexSpec spec;
      spec.cls = *cls;
      if (tokens.size() == 3) spec.role = tokens[2];
      Print(db_->CreateAttributeIndex(std::move(spec)));
      return true;
    }
    if (cmd == "unindex" && tokens.size() >= 2 && tokens[1] == "rel") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        std::printf("usage: unindex rel <Assoc> [role]\n");
        return true;
      }
      auto assoc = db_->schema()->FindAssociation(tokens[2]);
      if (!assoc.ok()) {
        Print(assoc.status());
        return true;
      }
      Print(db_->DropAttributeIndex(
          *assoc, tokens.size() == 4 ? tokens[3] : std::string_view{}));
      return true;
    }
    if (cmd == "unindex" && (tokens.size() == 2 || tokens.size() == 3)) {
      auto cls = db_->schema()->FindIndependentClass(tokens[1]);
      if (!cls.ok()) {
        Print(cls.status());
        return true;
      }
      Print(db_->DropAttributeIndex(
          *cls, tokens.size() == 3 ? tokens[2] : std::string_view{}));
      return true;
    }
    if (cmd == "indexes") {
      for (const auto& idx : db_->attribute_indexes().indexes()) {
        const auto& spec = idx->spec();
        std::string extent;
        if (spec.on_relationships()) {
          auto assoc = db_->schema()->GetAssociation(spec.assoc);
          extent = std::string("rel ") +
                   (assoc.ok() ? (*assoc)->name.c_str() : "?");
        } else {
          auto cls = db_->schema()->GetClass(spec.cls);
          extent = cls.ok() ? (*cls)->name : "?";
        }
        std::printf("%s%s%s%s: %zu entr%s, %zu distinct key%s\n",
                    extent.c_str(),
                    spec.role.empty() ? "" : ".",
                    spec.role.c_str(),
                    spec.include_specializations ? "" : " (exact)",
                    idx->num_entries(), idx->num_entries() == 1 ? "y" : "ies",
                    idx->num_distinct_keys(),
                    idx->num_distinct_keys() == 1 ? "" : "s");
      }
      std::printf("(%zu index%s)\n", db_->attribute_indexes().size(),
                  db_->attribute_indexes().size() == 1 ? "" : "es");
      return true;
    }
    if (cmd == "schema") {
      std::printf("%s", Printer::RenderSchema(*db_->schema()).c_str());
      return true;
    }
    if (cmd == "stats") {
      std::printf("%s", seed::core::CollectStats(*db_).ToString().c_str());
      // Planner statistics: what the cost model reads — incrementally
      // maintained extent counters and per-index cardinalities.
      const auto& manager = db_->attribute_indexes();
      if (!manager.empty()) {
        std::printf("planner statistics:\n");
        for (const auto& idx : manager.indexes()) {
          double avg = idx->num_distinct_keys() == 0
                           ? 0.0
                           : static_cast<double>(idx->num_entries()) /
                                 static_cast<double>(idx->num_distinct_keys());
          std::printf("  %s: %zu entries, %zu distinct keys, "
                      "%.1f rows/key\n",
                      idx->spec().ToString().c_str(), idx->num_entries(),
                      idx->num_distinct_keys(), avg);
        }
      }
      // Engine metrics: top counters and query-phase latency summaries
      // from the process-wide registry ('metrics' dumps the full JSON).
      std::string summary = seed::obs::MetricsRegistry::Global().Summary();
      if (!summary.empty()) std::printf("%s", summary.c_str());
      return true;
    }
    if (cmd == "metrics") {
      std::printf("%s\n",
                  seed::obs::MetricsRegistry::Global().ToJson().c_str());
      return true;
    }
    if (cmd == "threads") {
      // Execution parallelism knob: `threads` shows the current default
      // (SEED_EXEC_THREADS or hardware concurrency), `threads <n>` sets
      // it for queries planned from here on; 1 restores the exact
      // sequential engine.
      if (tokens.size() >= 2) {
        int n = std::atoi(tokens[1].c_str());
        if (n < 1) {
          std::printf("usage: threads [n>=1]\n");
          return true;
        }
        seed::exec::SetDefaultThreads(n);
      }
      std::printf("execution threads: %d\n", seed::exec::DefaultThreads());
      return true;
    }
    if (cmd == "dot") {
      if (tokens.size() >= 2 && tokens[1] == "schema") {
        std::printf("%s",
                    seed::core::DotExport::Schema(*db_->schema()).c_str());
      } else {
        std::printf("%s", seed::core::DotExport::Database(*db_).c_str());
      }
      return true;
    }
    if (cmd == "show") {
      if (tokens.size() < 2) {
        std::printf("%s", Printer::RenderDatabase(*db_).c_str());
      } else if (auto id = Find(tokens[1]); id.ok()) {
        std::printf("%s", Printer::RenderObjectTree(*db_, *id).c_str());
      } else {
        Print(id.status());
      }
      return true;
    }
    if (cmd == "create" && tokens.size() == 3) {
      auto cls = db_->schema()->FindIndependentClass(tokens[1]);
      if (!cls.ok()) {
        Print(cls.status());
        return true;
      }
      Print(db_->CreateObject(*cls, tokens[2]).status());
      return true;
    }
    if (cmd == "sub" && tokens.size() == 3) {
      auto parent = Find(tokens[1]);
      if (!parent.ok()) {
        Print(parent.status());
        return true;
      }
      Print(db_->CreateSubObject(*parent, tokens[2]).status());
      return true;
    }
    if (cmd == "set" && tokens.size() >= 3) {
      auto obj = Find(tokens[1]);
      if (!obj.ok()) {
        Print(obj.status());
        return true;
      }
      std::string text = tokens[2];
      for (size_t i = 3; i < tokens.size(); ++i) text += " " + tokens[i];
      auto value = ParseValue(*obj, text);
      if (!value.ok()) {
        Print(value.status());
        return true;
      }
      Print(db_->SetValue(*obj, std::move(*value)));
      return true;
    }
    if (cmd == "link" && tokens.size() == 4) {
      auto assoc = db_->schema()->FindAssociation(tokens[1]);
      auto p0 = Find(tokens[2]);
      auto p1 = Find(tokens[3]);
      if (!assoc.ok() || !p0.ok() || !p1.ok()) {
        Print(!assoc.ok() ? assoc.status()
                          : (!p0.ok() ? p0.status() : p1.status()));
        return true;
      }
      Print(db_->CreateRelationship(*assoc, *p0, *p1).status());
      return true;
    }
    if (cmd == "refine" && tokens.size() == 3) {
      auto obj = Find(tokens[1]);
      auto cls = db_->schema()->FindIndependentClass(tokens[2]);
      if (!obj.ok() || !cls.ok()) {
        Print(!obj.ok() ? obj.status() : cls.status());
        return true;
      }
      Print(db_->Reclassify(*obj, *cls));
      return true;
    }
    if (cmd == "refinerel" && tokens.size() == 5) {
      auto assoc = db_->schema()->FindAssociation(tokens[1]);
      auto p0 = Find(tokens[2]);
      auto p1 = Find(tokens[3]);
      auto target = db_->schema()->FindAssociation(tokens[4]);
      if (!assoc.ok() || !p0.ok() || !p1.ok() || !target.ok()) {
        std::printf("error: bad association or path\n");
        return true;
      }
      for (seed::RelationshipId rid : db_->RelationshipsOf(*p0, *assoc, 0)) {
        auto rel = db_->GetRelationship(rid);
        if (rel.ok() && (*rel)->ends[1] == *p1) {
          Print(db_->ReclassifyRelationship(rid, *target));
          return true;
        }
      }
      std::printf("no such relationship\n");
      return true;
    }
    if (cmd == "rels" && tokens.size() == 2) {
      auto obj = Find(tokens[1]);
      if (!obj.ok()) {
        Print(obj.status());
        return true;
      }
      for (seed::RelationshipId rid : db_->RelationshipsOf(*obj)) {
        std::printf("%s\n", Printer::RenderRelationship(*db_, rid).c_str());
      }
      return true;
    }
    if (cmd == "delete" && tokens.size() == 2) {
      auto obj = Find(tokens[1]);
      if (!obj.ok()) {
        Print(obj.status());
        return true;
      }
      Print(db_->DeleteObject(*obj));
      return true;
    }
    if (cmd == "rename" && tokens.size() == 3) {
      auto obj = Find(tokens[1]);
      if (!obj.ok()) {
        Print(obj.status());
        return true;
      }
      Print(db_->Rename(*obj, tokens[2]));
      return true;
    }
    if (cmd == "check") {
      seed::core::Report report;
      if (tokens.size() >= 2) {
        auto obj = Find(tokens[1]);
        if (!obj.ok()) {
          Print(obj.status());
          return true;
        }
        report = db_->CheckCompleteness(*obj);
      } else {
        report = db_->CheckCompleteness();
      }
      std::printf("%s", report.clean() ? "complete\n"
                                       : report.ToString().c_str());
      return true;
    }
    if (cmd == "audit") {
      auto report = db_->AuditConsistency();
      std::printf("%s", report.clean() ? "consistent\n"
                                       : report.ToString().c_str());
      return true;
    }
    if (cmd == "version") {
      if (tokens.size() >= 2) {
        auto id = VersionId::Parse(tokens[1]);
        if (!id.ok()) {
          Print(id.status());
          return true;
        }
        Print(vm_->CreateVersion(*id));
      } else {
        auto v = vm_->CreateVersion();
        if (v.ok()) {
          std::printf("created version %s\n", v->ToString().c_str());
        } else {
          Print(v.status());
        }
      }
      return true;
    }
    if (cmd == "versions") {
      for (const VersionId& v : vm_->AllVersions()) {
        auto parent = vm_->ParentOf(v);
        std::printf("%s%s%s%s\n", v.ToString().c_str(),
                    parent.ok() && parent->valid() ? " (from " : "",
                    parent.ok() && parent->valid()
                        ? parent->ToString().c_str()
                        : "",
                    parent.ok() && parent->valid() ? ")" : "");
      }
      std::printf("basis: %s\n", vm_->current_basis().ToString().c_str());
      return true;
    }
    if (cmd == "select" && tokens.size() == 2) {
      auto id = VersionId::Parse(tokens[1]);
      if (!id.ok()) {
        Print(id.status());
        return true;
      }
      Print(vm_->SelectVersion(*id));
      return true;
    }
    if (cmd == "history" && tokens.size() == 2) {
      auto hits = vm_->VersionsOfObject(tokens[1]);
      if (!hits.ok()) {
        Print(hits.status());
        return true;
      }
      for (const auto& hit : *hits) {
        std::printf("%s%s\n", hit.version.ToString().c_str(),
                    hit.deleted ? " (deleted)" : "");
      }
      return true;
    }
    if (cmd == "save" && tokens.size() == 2) {
      seed::storage::KvStore kv;
      Status s = kv.Open(tokens[1]);
      if (s.ok()) s = seed::core::Persistence::SaveFull(*db_, &kv);
      if (s.ok()) s = seed::version::VersionPersistence::Save(*vm_, &kv);
      if (s.ok()) s = kv.Close();
      Print(s);
      return true;
    }
    if (cmd == "load" && tokens.size() == 2) {
      seed::storage::KvStore kv;
      Status s = kv.Open(tokens[1]);
      if (!s.ok()) {
        Print(s);
        return true;
      }
      auto loaded = seed::core::Persistence::Load(&kv);
      if (!loaded.ok()) {
        Print(loaded.status());
        return true;
      }
      db_ = std::move(*loaded);
      vm_ = std::make_unique<VersionManager>(db_.get());
      Print(seed::version::VersionPersistence::Load(vm_.get(), &kv));
      return true;
    }
    std::printf("unknown command (try 'help')\n");
    return true;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<VersionManager> vm_;
};

}  // namespace

int main() { return Shell().Run(); }
