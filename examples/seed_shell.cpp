// seed_shell: an interactive command shell over a SEED database running
// the paper's Fig. 3 schema — the closest thing to sitting at the 1986
// prototype. Reads commands from stdin (pipe a script for batch use).
//
//   $ ./build/examples/seed_shell
//   seed> create Thing Alarms
//   seed> reclass Alarms Data
//   seed> link Access Alarms Sensor
//   seed> check
//
// Commands: help, find <Class> [exact] [where ...], find rel <Assoc>
// [exact] [where ...], find <Class> <b1> join [reverse] via <Assoc> to
// <Class> <b2> [join ... up to 6 hops] [where <b> ...] (relationship
// joins and join chains; conditions name the side they constrain by its
// binder), explain find ... (prints the chosen plan — access path, or
// the DP-chosen join plan tree — with estimated vs. actual rows),
// explain analyze find ... (the plan with per-node wall-clock and
// per-phase timings), metrics (engine metrics registry as JSON),
// schema, show [path], create <Class> <Name>,
// sub <path> <role>, set <path> <value>, link <Assoc> <path0> <path1>,
// refine <path> <Class>, refinerel <Assoc> <path0> <path1> <NewAssoc>,
// rels <path>, delete <path>, rename <path> <new>, check [path], audit,
// version [id], versions, select <id>, history <path>,
// index <Class> [role] / index rel <Assoc> <role>, unindex likewise,
// indexes, save <dir>, load <dir>, stats, dot [schema], quit.
//
// Script transport (the multiuser server's test vehicle):
//
//   seed_shell --script a.seed [b.seed ...]
//       runs the scripts in order through one standalone shell, then
//       exits (same as piping them to stdin, but named on the command
//       line). Lines starting with '#' are comments.
//
//   seed_shell --serve [--setup setup.seed] c1.seed c2.seed ...
//       starts an in-process multiuser::Server, runs the optional setup
//       script single-threaded against the master, publishes the first
//       snapshot, then replays each client script in its OWN THREAD
//       through its own ClientSession. Client scripts get the session
//       command set on top of the regular one: checkout <Name>...,
//       checkin, abandon, refresh, locks, view, workspace. Retrieval
//       (find / explain) runs against the session's pinned snapshot;
//       mutation commands edit the local workspace until `checkin` ships
//       them. Per-client output is buffered and printed after all
//       clients join, followed by a server summary line.

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/export.h"
#include "core/persistence.h"
#include "core/printer.h"
#include "core/stats.h"
#include "exec/exec_policy.h"
#include "multiuser/client.h"
#include "multiuser/server.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "spades/spec_schema.h"
#include "version/snapshot.h"
#include "version/version_io.h"
#include "version/version_manager.h"

namespace {

using seed::core::Database;
using seed::core::Printer;
using seed::core::Value;
using seed::multiuser::ClientSession;
using seed::multiuser::Server;
using seed::ObjectId;
using seed::Result;
using seed::Status;
using seed::version::VersionId;
using seed::version::VersionManager;

class Shell {
 public:
  /// Standalone: owns its database and version manager.
  Shell() {
    auto fig3 = seed::spades::BuildFig3Schema();
    owned_db_ = std::make_unique<Database>(fig3->schema);
    owned_vm_ = std::make_unique<VersionManager>(owned_db_.get());
    db_ = owned_db_.get();
    vm_ = owned_vm_.get();
  }

  /// Master mode: drives a borrowed database/version manager (the
  /// server's master, for single-threaded setup scripts).
  Shell(Database* db, VersionManager* vm) : db_(db), vm_(vm) {}

  /// Client mode: drives a ClientSession. Mutations edit the local
  /// workspace; find/explain read the session snapshot; the session
  /// command set (checkout/checkin/...) is enabled. Output goes to
  /// `sink` so concurrent clients don't interleave on stdout.
  Shell(ClientSession* session, std::string* sink)
      : db_(session->local()),
        vm_(session->local_versions()),
        session_(session),
        sink_(sink) {}

  int Run() {
    std::string line;
    bool tty = isatty(fileno(stdin));
    while (true) {
      if (tty) Printf("seed> ");
      if (!std::getline(std::cin, line)) break;
      if (!Dispatch(line)) break;
    }
    return 0;
  }

  /// Runs every line of `path`; stops early on `quit`.
  Status RunFile(const std::string& path) {
    std::ifstream in(path);
    if (!in.is_open()) {
      return Status::NotFound("cannot open script '" + path + "'");
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!Dispatch(line)) break;
    }
    return Status::OK();
  }

 private:
  static std::vector<std::string> Tokenize(const std::string& line) {
    std::istringstream in(line);
    std::vector<std::string> tokens;
    std::string token;
    bool in_quote = false;
    std::string quoted;
    while (in >> token) {
      if (!in_quote && token.front() == '"') {
        if (token.size() > 1 && token.back() == '"') {
          tokens.push_back(token.substr(1, token.size() - 2));
        } else {
          in_quote = true;
          quoted = token.substr(1);
        }
      } else if (in_quote) {
        quoted += " " + token;
        if (token.back() == '"') {
          quoted.pop_back();
          tokens.push_back(quoted);
          in_quote = false;
        }
      } else {
        tokens.push_back(token);
      }
    }
    return tokens;
  }

  /// stdout, or the client-mode buffer so threads don't interleave.
  void Printf(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, fmt);
    if (sink_ == nullptr) {
      std::vprintf(fmt, args);
    } else {
      va_list measure;
      va_copy(measure, args);
      int n = std::vsnprintf(nullptr, 0, fmt, measure);
      va_end(measure);
      if (n > 0) {
        size_t old = sink_->size();
        sink_->resize(old + static_cast<size_t>(n) + 1);
        std::vsnprintf(sink_->data() + old, static_cast<size_t>(n) + 1, fmt,
                       args);
        sink_->resize(old + static_cast<size_t>(n));
      }
    }
    va_end(args);
  }

  void Print(const Status& s) {
    Printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
  }

  /// The database retrieval reads: in client mode the session's pinned
  /// snapshot (shared ownership keeps it alive across the query); in the
  /// other modes the working database, wrapped unowned.
  Result<std::shared_ptr<const Database>> QueryDb() {
    if (session_ == nullptr) {
      return std::shared_ptr<const Database>(std::shared_ptr<void>(), db_);
    }
    auto snap = session_->View();
    if (!snap.ok()) return snap.status();
    return seed::version::PinDatabase(std::move(*snap));
  }

  Result<ObjectId> Find(const std::string& path) {
    auto id = db_->FindObjectByName(path);
    if (id.ok()) return id;
    return db_->FindPatternByName(path);
  }

  /// Parses a value according to the target object's class.
  Result<Value> ParseValue(ObjectId obj, const std::string& text) {
    auto item = db_->GetObject(obj);
    if (!item.ok()) return item.status();
    auto cls = db_->schema()->GetClass((*item)->cls);
    if (!cls.ok()) return cls.status();
    using seed::schema::ValueType;
    switch ((*cls)->value_type) {
      case ValueType::kString:
        return Value::String(text);
      case ValueType::kInt: {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0') {
          return Status::InvalidArgument("'" + text + "' is not an integer");
        }
        return Value::Int(v);
      }
      case ValueType::kReal: {
        errno = 0;
        char* end = nullptr;
        double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0') {
          return Status::InvalidArgument("'" + text + "' is not a number");
        }
        return Value::Real(v);
      }
      case ValueType::kBool:
        if (text == "true") return Value::Bool(true);
        if (text == "false") return Value::Bool(false);
        return Status::InvalidArgument("want true/false");
      case ValueType::kDate: {
        auto d = seed::schema::Date::Parse(text);
        if (!d.ok()) return d.status();
        return Value::OfDate(*d);
      }
      case ValueType::kEnum:
        return Value::Enum(text);
      case ValueType::kNone:
        return Status::FailedPrecondition("class '" + (*cls)->full_name +
                                          "' carries no value");
    }
    return Status::Internal("unknown value type");
  }

  /// Session commands (client mode only). True if `cmd` was handled.
  bool DispatchSession(const std::string& cmd,
                       const std::vector<std::string>& tokens) {
    if (cmd == "checkout") {
      if (tokens.size() < 2) {
        Printf("usage: checkout <Name> [Name ...]\n");
        return true;
      }
      std::vector<std::string> names(tokens.begin() + 1, tokens.end());
      Print(session_->CheckoutByName(names));
      return true;
    }
    if (cmd == "checkin") {
      std::uint64_t seq = 0;
      Status s = session_->Checkin(&seq);
      if (s.ok()) {
        Printf("committed as #%llu\n",
               static_cast<unsigned long long>(seq));
      } else {
        Print(s);
      }
      return true;
    }
    if (cmd == "abandon") {
      Print(session_->Abandon());
      return true;
    }
    if (cmd == "refresh") {
      Print(session_->Refresh());
      return true;
    }
    if (cmd == "locks") {
      auto held = session_->server()->LocksOf(session_->id());
      for (ObjectId root : held) {
        Printf("locked #%llu\n",
               static_cast<unsigned long long>(root.raw()));
      }
      Printf("(%zu lock%s)\n", held.size(), held.size() == 1 ? "" : "s");
      return true;
    }
    if (cmd == "view") {
      auto snap = session_->View();
      if (!snap.ok()) {
        Print(snap.status());
        return true;
      }
      Printf("snapshot epoch %llu: %zu objects, %zu relationships\n",
             static_cast<unsigned long long>((*snap)->epoch()),
             (*snap)->num_objects(), (*snap)->num_relationships());
      return true;
    }
    if (cmd == "workspace") {
      Printf("%s", Printer::RenderDatabase(*db_).c_str());
      return true;
    }
    return false;
  }

  bool Dispatch(const std::string& line) {
    auto tokens = Tokenize(line);
    if (tokens.empty()) return true;
    const std::string& cmd = tokens[0];
    if (cmd.front() == '#') return true;  // script comment
    if (session_ != nullptr) {
      // Checkout/check-in/abandon replace the session's local workspace;
      // re-resolve before every command so we never touch a stale one.
      db_ = session_->local();
      vm_ = session_->local_versions();
      if (DispatchSession(cmd, tokens)) return true;
    }

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      Printf(
          "find <Class> [exact] [where ...] | find rel <Assoc> [exact] "
          "[where ...]\nfind <Class> <b1> join [reverse] via <Assoc> to "
          "<Class> <b2> (... up to 6 hops) [where <b> ...]\n"
          "explain [analyze] find ... | schema | show [path]\ncreate "
          "<Class> <Name> | sub <path> <role>"
          " | set <path> <value>\nlink <Assoc> <p0> <p1> | refine <path> "
          "<Class>\nrefinerel <Assoc> <p0> <p1> <NewAssoc> | rels <path> | "
          "delete <path>\nrename <path> <new> | check [path] | audit | "
          "version [id] | versions\nselect <id> | history <path> | "
          "index [rel] <Class|Assoc> [role] | unindex likewise\nindexes | "
          "save <dir> | load <dir> | stats | metrics | threads [n] | "
          "dot [schema] | quit\n");
      if (session_ != nullptr) {
        Printf(
            "session: checkout <Name> ... | checkin | abandon | refresh | "
            "locks | view | workspace\n");
      }
      return true;
    }
    if (cmd == "find" || (cmd == "explain" && tokens.size() >= 2)) {
      bool analyze = cmd == "explain" && tokens[1] == "analyze";
      std::string plan;
      seed::query::QueryTrace trace;
      seed::query::QueryTrace* trace_ptr = analyze ? &trace : nullptr;
      std::string_view query = line;
      if (cmd == "explain") {
        size_t at = line.find("find");
        if (at == std::string::npos) {
          Printf("usage: explain [analyze] find <Class> ...\n");
          return true;
        }
        query.remove_prefix(at);
      }
      size_t rel_at = cmd == "explain" ? (analyze ? 3 : 2) : 1;
      bool rel_query = rel_at < tokens.size() && tokens[rel_at] == "rel";
      bool join_query =
          (rel_at + 2 < tokens.size() && tokens[rel_at + 2] == "join") ||
          (rel_at + 3 < tokens.size() && tokens[rel_at + 2] == "exact" &&
           tokens[rel_at + 3] == "join");
      auto print_plan = [&] {
        if (cmd != "explain") return;
        Printf("plan: %s\n",
                    analyze ? trace.Render().c_str() : plan.c_str());
      };
      // Retrieval reads the session snapshot in client mode (never the
      // master, never the half-edited workspace) — the pin keeps the
      // frozen state alive for the whole query.
      auto qdb_result = QueryDb();
      if (!qdb_result.ok()) {
        Print(qdb_result.status());
        return true;
      }
      std::shared_ptr<const Database> qdb = std::move(*qdb_result);
      size_t matches = 0;
      if (join_query) {
        auto result =
            seed::query::RunJoinChainQuery(qdb, query, &plan, trace_ptr);
        if (!result.ok()) {
          Print(result.status());
          return true;
        }
        print_plan();
        for (const auto& tuple : result->tuples) {
          std::string row;
          for (seed::ObjectId id : tuple) {
            if (!row.empty()) row += " -- ";
            row += qdb->FullName(id);
          }
          Printf("%s\n", row.c_str());
        }
        matches = result->tuples.size();
      } else if (rel_query) {
        auto result =
            seed::query::RunRelationshipQuery(qdb, query, &plan, trace_ptr);
        if (!result.ok()) {
          Print(result.status());
          return true;
        }
        print_plan();
        for (seed::RelationshipId id : *result) {
          Printf("%s\n",
                      Printer::RenderRelationship(*qdb, id).c_str());
        }
        matches = result->size();
      } else {
        auto result = seed::query::RunQuery(qdb, query, &plan, trace_ptr);
        if (!result.ok()) {
          Print(result.status());
          return true;
        }
        print_plan();
        for (seed::ObjectId id : *result) {
          Printf("%s\n", qdb->FullName(id).c_str());
        }
        matches = result->size();
      }
      Printf("(%zu match%s)\n", matches, matches == 1 ? "" : "es");
      return true;
    }
    if (cmd == "index" && tokens.size() >= 2 && tokens[1] == "rel") {
      if (tokens.size() != 4) {
        Printf("usage: index rel <Assoc> <role>\n");
        return true;
      }
      auto assoc = db_->schema()->FindAssociation(tokens[2]);
      if (!assoc.ok()) {
        Print(assoc.status());
        return true;
      }
      Print(db_->CreateAttributeIndex(
          seed::index::IndexSpec::ForAssociation(*assoc, tokens[3])));
      return true;
    }
    if (cmd == "index" && (tokens.size() == 2 || tokens.size() == 3)) {
      auto cls = db_->schema()->FindIndependentClass(tokens[1]);
      if (!cls.ok()) {
        Print(cls.status());
        return true;
      }
      seed::index::IndexSpec spec;
      spec.cls = *cls;
      if (tokens.size() == 3) spec.role = tokens[2];
      Print(db_->CreateAttributeIndex(std::move(spec)));
      return true;
    }
    if (cmd == "unindex" && tokens.size() >= 2 && tokens[1] == "rel") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        Printf("usage: unindex rel <Assoc> [role]\n");
        return true;
      }
      auto assoc = db_->schema()->FindAssociation(tokens[2]);
      if (!assoc.ok()) {
        Print(assoc.status());
        return true;
      }
      Print(db_->DropAttributeIndex(
          *assoc, tokens.size() == 4 ? tokens[3] : std::string_view{}));
      return true;
    }
    if (cmd == "unindex" && (tokens.size() == 2 || tokens.size() == 3)) {
      auto cls = db_->schema()->FindIndependentClass(tokens[1]);
      if (!cls.ok()) {
        Print(cls.status());
        return true;
      }
      Print(db_->DropAttributeIndex(
          *cls, tokens.size() == 3 ? tokens[2] : std::string_view{}));
      return true;
    }
    if (cmd == "indexes") {
      for (const auto& idx : db_->attribute_indexes().indexes()) {
        const auto& spec = idx->spec();
        std::string extent;
        if (spec.on_relationships()) {
          auto assoc = db_->schema()->GetAssociation(spec.assoc);
          extent = std::string("rel ") +
                   (assoc.ok() ? (*assoc)->name.c_str() : "?");
        } else {
          auto cls = db_->schema()->GetClass(spec.cls);
          extent = cls.ok() ? (*cls)->name : "?";
        }
        Printf("%s%s%s%s: %zu entr%s, %zu distinct key%s\n",
                    extent.c_str(),
                    spec.role.empty() ? "" : ".",
                    spec.role.c_str(),
                    spec.include_specializations ? "" : " (exact)",
                    idx->num_entries(), idx->num_entries() == 1 ? "y" : "ies",
                    idx->num_distinct_keys(),
                    idx->num_distinct_keys() == 1 ? "" : "s");
      }
      Printf("(%zu index%s)\n", db_->attribute_indexes().size(),
                  db_->attribute_indexes().size() == 1 ? "" : "es");
      return true;
    }
    if (cmd == "schema") {
      Printf("%s", Printer::RenderSchema(*db_->schema()).c_str());
      return true;
    }
    if (cmd == "stats") {
      Printf("%s", seed::core::CollectStats(*db_).ToString().c_str());
      // Planner statistics: what the cost model reads — incrementally
      // maintained extent counters and per-index cardinalities.
      const auto& manager = db_->attribute_indexes();
      if (!manager.empty()) {
        Printf("planner statistics:\n");
        for (const auto& idx : manager.indexes()) {
          double avg = idx->num_distinct_keys() == 0
                           ? 0.0
                           : static_cast<double>(idx->num_entries()) /
                                 static_cast<double>(idx->num_distinct_keys());
          Printf("  %s: %zu entries, %zu distinct keys, "
                      "%.1f rows/key\n",
                      idx->spec().ToString().c_str(), idx->num_entries(),
                      idx->num_distinct_keys(), avg);
        }
      }
      // Engine metrics: top counters and query-phase latency summaries
      // from the process-wide registry ('metrics' dumps the full JSON).
      std::string summary = seed::obs::MetricsRegistry::Global().Summary();
      if (!summary.empty()) Printf("%s", summary.c_str());
      return true;
    }
    if (cmd == "metrics") {
      Printf("%s\n",
                  seed::obs::MetricsRegistry::Global().ToJson().c_str());
      return true;
    }
    if (cmd == "threads") {
      // Execution parallelism knob: `threads` shows the current default
      // (SEED_EXEC_THREADS or hardware concurrency), `threads <n>` sets
      // it for queries planned from here on; 1 restores the exact
      // sequential engine.
      if (tokens.size() >= 2) {
        int n = std::atoi(tokens[1].c_str());
        if (n < 1) {
          Printf("usage: threads [n>=1]\n");
          return true;
        }
        seed::exec::SetDefaultThreads(n);
      }
      Printf("execution threads: %d\n", seed::exec::DefaultThreads());
      return true;
    }
    if (cmd == "dot") {
      if (tokens.size() >= 2 && tokens[1] == "schema") {
        Printf("%s",
                    seed::core::DotExport::Schema(*db_->schema()).c_str());
      } else {
        Printf("%s", seed::core::DotExport::Database(*db_).c_str());
      }
      return true;
    }
    if (cmd == "show") {
      if (tokens.size() < 2) {
        Printf("%s", Printer::RenderDatabase(*db_).c_str());
      } else if (auto id = Find(tokens[1]); id.ok()) {
        Printf("%s", Printer::RenderObjectTree(*db_, *id).c_str());
      } else {
        Print(id.status());
      }
      return true;
    }
    if (cmd == "create" && tokens.size() == 3) {
      auto cls = db_->schema()->FindIndependentClass(tokens[1]);
      if (!cls.ok()) {
        Print(cls.status());
        return true;
      }
      Print(db_->CreateObject(*cls, tokens[2]).status());
      return true;
    }
    if (cmd == "sub" && tokens.size() == 3) {
      auto parent = Find(tokens[1]);
      if (!parent.ok()) {
        Print(parent.status());
        return true;
      }
      Print(db_->CreateSubObject(*parent, tokens[2]).status());
      return true;
    }
    if (cmd == "set" && tokens.size() >= 3) {
      auto obj = Find(tokens[1]);
      if (!obj.ok()) {
        Print(obj.status());
        return true;
      }
      std::string text = tokens[2];
      for (size_t i = 3; i < tokens.size(); ++i) text += " " + tokens[i];
      auto value = ParseValue(*obj, text);
      if (!value.ok()) {
        Print(value.status());
        return true;
      }
      Print(db_->SetValue(*obj, std::move(*value)));
      return true;
    }
    if (cmd == "link" && tokens.size() == 4) {
      auto assoc = db_->schema()->FindAssociation(tokens[1]);
      auto p0 = Find(tokens[2]);
      auto p1 = Find(tokens[3]);
      if (!assoc.ok() || !p0.ok() || !p1.ok()) {
        Print(!assoc.ok() ? assoc.status()
                          : (!p0.ok() ? p0.status() : p1.status()));
        return true;
      }
      Print(db_->CreateRelationship(*assoc, *p0, *p1).status());
      return true;
    }
    if (cmd == "refine" && tokens.size() == 3) {
      auto obj = Find(tokens[1]);
      auto cls = db_->schema()->FindIndependentClass(tokens[2]);
      if (!obj.ok() || !cls.ok()) {
        Print(!obj.ok() ? obj.status() : cls.status());
        return true;
      }
      Print(db_->Reclassify(*obj, *cls));
      return true;
    }
    if (cmd == "refinerel" && tokens.size() == 5) {
      auto assoc = db_->schema()->FindAssociation(tokens[1]);
      auto p0 = Find(tokens[2]);
      auto p1 = Find(tokens[3]);
      auto target = db_->schema()->FindAssociation(tokens[4]);
      if (!assoc.ok() || !p0.ok() || !p1.ok() || !target.ok()) {
        Printf("error: bad association or path\n");
        return true;
      }
      for (seed::RelationshipId rid : db_->RelationshipsOf(*p0, *assoc, 0)) {
        auto rel = db_->GetRelationship(rid);
        if (rel.ok() && (*rel)->ends[1] == *p1) {
          Print(db_->ReclassifyRelationship(rid, *target));
          return true;
        }
      }
      Printf("no such relationship\n");
      return true;
    }
    if (cmd == "rels" && tokens.size() == 2) {
      auto obj = Find(tokens[1]);
      if (!obj.ok()) {
        Print(obj.status());
        return true;
      }
      for (seed::RelationshipId rid : db_->RelationshipsOf(*obj)) {
        Printf("%s\n", Printer::RenderRelationship(*db_, rid).c_str());
      }
      return true;
    }
    if (cmd == "delete" && tokens.size() == 2) {
      auto obj = Find(tokens[1]);
      if (!obj.ok()) {
        Print(obj.status());
        return true;
      }
      Print(db_->DeleteObject(*obj));
      return true;
    }
    if (cmd == "rename" && tokens.size() == 3) {
      auto obj = Find(tokens[1]);
      if (!obj.ok()) {
        Print(obj.status());
        return true;
      }
      Print(db_->Rename(*obj, tokens[2]));
      return true;
    }
    if (cmd == "check") {
      seed::core::Report report;
      if (tokens.size() >= 2) {
        auto obj = Find(tokens[1]);
        if (!obj.ok()) {
          Print(obj.status());
          return true;
        }
        report = db_->CheckCompleteness(*obj);
      } else {
        report = db_->CheckCompleteness();
      }
      Printf("%s", report.clean() ? "complete\n"
                                       : report.ToString().c_str());
      return true;
    }
    if (cmd == "audit") {
      auto report = db_->AuditConsistency();
      Printf("%s", report.clean() ? "consistent\n"
                                       : report.ToString().c_str());
      return true;
    }
    if (cmd == "version") {
      if (tokens.size() >= 2) {
        auto id = VersionId::Parse(tokens[1]);
        if (!id.ok()) {
          Print(id.status());
          return true;
        }
        Print(vm_->CreateVersion(*id));
      } else {
        auto v = vm_->CreateVersion();
        if (v.ok()) {
          Printf("created version %s\n", v->ToString().c_str());
        } else {
          Print(v.status());
        }
      }
      return true;
    }
    if (cmd == "versions") {
      for (const VersionId& v : vm_->AllVersions()) {
        auto parent = vm_->ParentOf(v);
        Printf("%s%s%s%s\n", v.ToString().c_str(),
                    parent.ok() && parent->valid() ? " (from " : "",
                    parent.ok() && parent->valid()
                        ? parent->ToString().c_str()
                        : "",
                    parent.ok() && parent->valid() ? ")" : "");
      }
      Printf("basis: %s\n", vm_->current_basis().ToString().c_str());
      return true;
    }
    if (cmd == "select" && tokens.size() == 2) {
      auto id = VersionId::Parse(tokens[1]);
      if (!id.ok()) {
        Print(id.status());
        return true;
      }
      Print(vm_->SelectVersion(*id));
      return true;
    }
    if (cmd == "history" && tokens.size() == 2) {
      auto hits = vm_->VersionsOfObject(tokens[1]);
      if (!hits.ok()) {
        Print(hits.status());
        return true;
      }
      for (const auto& hit : *hits) {
        Printf("%s%s\n", hit.version.ToString().c_str(),
                    hit.deleted ? " (deleted)" : "");
      }
      return true;
    }
    if (cmd == "save" && tokens.size() == 2) {
      seed::storage::KvStore kv;
      Status s = kv.Open(tokens[1]);
      if (s.ok()) s = seed::core::Persistence::SaveFull(*db_, &kv);
      if (s.ok()) s = seed::version::VersionPersistence::Save(*vm_, &kv);
      if (s.ok()) s = kv.Close();
      Print(s);
      return true;
    }
    if (cmd == "load" && tokens.size() == 2) {
      if (owned_db_ == nullptr) {
        Printf("load replaces the whole database; standalone mode only\n");
        return true;
      }
      seed::storage::KvStore kv;
      Status s = kv.Open(tokens[1]);
      if (!s.ok()) {
        Print(s);
        return true;
      }
      auto loaded = seed::core::Persistence::Load(&kv);
      if (!loaded.ok()) {
        Print(loaded.status());
        return true;
      }
      owned_db_ = std::move(*loaded);
      owned_vm_ = std::make_unique<VersionManager>(owned_db_.get());
      db_ = owned_db_.get();
      vm_ = owned_vm_.get();
      Print(seed::version::VersionPersistence::Load(vm_, &kv));
      return true;
    }
    Printf("unknown command (try 'help')\n");
    return true;
  }

  /// Owned only in standalone mode; master/client modes borrow.
  std::unique_ptr<Database> owned_db_;
  std::unique_ptr<VersionManager> owned_vm_;
  Database* db_ = nullptr;
  VersionManager* vm_ = nullptr;
  ClientSession* session_ = nullptr;
  std::string* sink_ = nullptr;
};

/// --serve: one Server, an optional single-threaded setup script against
/// the master, then every client script in its own thread and session.
int RunServe(const std::string& setup,
             const std::vector<std::string>& scripts) {
  auto fig3 = seed::spades::BuildFig3Schema();
  Server server(fig3->schema);

  if (!setup.empty()) {
    Shell master_shell(server.master(), server.global_versions());
    Status s = master_shell.RunFile(setup);
    if (!s.ok()) {
      std::fprintf(stderr, "setup: %s\n", s.ToString().c_str());
      return 1;
    }
    // Setup bypassed the check-in path; baseline items are original
    // state, not pending changes, and sessions must see them.
    server.master()->ClearChangeTracking();
    server.PublishSnapshot();
  }

  std::vector<std::string> outputs(scripts.size());
  std::vector<std::string> errors(scripts.size());
  std::vector<std::thread> threads;
  threads.reserve(scripts.size());
  for (size_t i = 0; i < scripts.size(); ++i) {
    threads.emplace_back([&server, &scripts, &outputs, &errors, i] {
      auto session =
          ClientSession::Open(&server, "script-" + std::to_string(i));
      if (!session.ok()) {
        errors[i] = session.status().ToString();
        return;
      }
      Shell client_shell(session->get(), &outputs[i]);
      Status s = client_shell.RunFile(scripts[i]);
      if (!s.ok()) errors[i] = s.ToString();
    });
  }
  for (std::thread& t : threads) t.join();

  int rc = 0;
  for (size_t i = 0; i < scripts.size(); ++i) {
    std::printf("=== client %zu: %s ===\n", i, scripts[i].c_str());
    std::fputs(outputs[i].c_str(), stdout);
    if (!errors[i].empty()) {
      std::printf("error: %s\n", errors[i].c_str());
      rc = 1;
    }
  }
  std::printf(
      "=== server: %llu checkins applied, %llu rejected, %llu lock "
      "conflicts, snapshot epoch %llu ===\n",
      static_cast<unsigned long long>(server.checkins_applied()),
      static_cast<unsigned long long>(server.checkins_rejected()),
      static_cast<unsigned long long>(server.lock_conflicts()),
      static_cast<unsigned long long>(server.snapshot_epoch()));
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool serve = false;
  std::string setup;
  std::vector<std::string> scripts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--serve") {
      serve = true;
    } else if (arg == "--setup" && i + 1 < argc) {
      setup = argv[++i];
    } else if (arg == "--script" && i + 1 < argc) {
      scripts.push_back(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      scripts.push_back(std::move(arg));
    } else {
      std::fprintf(stderr,
                   "usage: seed_shell [--script f.seed ...]\n"
                   "       seed_shell --serve [--setup s.seed] "
                   "c1.seed [c2.seed ...]\n");
      return 2;
    }
  }
  if (serve) return RunServe(setup, scripts);
  Shell shell;
  if (scripts.empty()) return shell.Run();
  for (const std::string& path : scripts) {
    Status s = shell.RunFile(path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
