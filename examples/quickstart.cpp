// Quickstart: define a schema, store the paper's Fig. 1 objects, retrieve
// by name, watch consistency vetoes and completeness reports in action.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"
#include "schema/schema_builder.h"
#include "spades/spec_schema.h"

using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;

int main() {
  // 1. Build the paper's Fig. 2 schema (Data/Action, Read/Write/Contained).
  auto fig2 = seed::spades::BuildFig2Schema();
  if (!fig2.ok()) {
    std::fprintf(stderr, "schema error: %s\n",
                 fig2.status().ToString().c_str());
    return 1;
  }
  Database db(fig2->schema);
  std::printf("schema '%s' v%llu: %zu classes, %zu associations\n\n",
              db.schema()->name().c_str(),
              static_cast<unsigned long long>(db.schema()->version()),
              db.schema()->num_classes(), db.schema()->num_associations());

  // 2. Store the Fig. 1 object structure.
  ObjectId alarms = *db.CreateObject(fig2->ids.data, "Alarms");
  ObjectId handler = *db.CreateObject(fig2->ids.action, "AlarmHandler");
  ObjectId text = *db.CreateSubObject(alarms, "Text");
  ObjectId body = *db.CreateSubObject(text, "Body");
  ObjectId contents = *db.CreateSubObject(body, "Contents");
  (void)db.SetValue(contents, Value::String("Alarms are represented in an "
                                            "alarm display matrix"));
  ObjectId selector = *db.CreateSubObject(text, "Selector");
  (void)db.SetValue(selector, Value::String("Representation"));
  for (const char* kw : {"Alarmhandling", "Display"}) {
    ObjectId k = *db.CreateSubObject(body, "Keywords");
    (void)db.SetValue(k, Value::String(kw));
  }
  (void)db.CreateRelationship(fig2->ids.read, alarms, handler);

  // 3. Retrieval by dotted name (the SEED prototype's interface).
  for (const char* path : {"Alarms", "Alarms.Text[0].Selector",
                           "Alarms.Text[0].Body.Keywords[1]"}) {
    auto id = db.FindObjectByName(path);
    auto obj = db.GetObject(*id);
    std::printf("%-36s -> id %llu  value %s\n", path,
                static_cast<unsigned long long>(id->raw()),
                (*obj)->value.ToString().c_str());
  }

  // 4. Consistency is enforced on every update...
  auto veto = db.CreateRelationship(fig2->ids.read, handler, alarms);
  std::printf("\nswapped roles -> %s\n", veto.status().ToString().c_str());

  // 5. ...while incompleteness is merely reported, never vetoed.
  auto report = db.CheckCompleteness();
  std::printf("\ncompleteness findings (%zu):\n", report.size());
  for (const auto& v : report.violations) {
    std::printf("  - %s\n", v.ToString().c_str());
  }
  std::printf("\nconsistency audit: %s\n",
              db.AuditConsistency().clean() ? "clean" : "VIOLATIONS");
  return 0;
}
