// The two-level multi-user design from the paper's "Open problems": a
// central server holds the master database; clients check out subtrees
// under write locks, edit locally, and check back in as one transaction.
//
//   $ ./build/examples/multiuser_session

#include <cstdio>

#include "multiuser/client.h"
#include "multiuser/server.h"
#include "spades/spec_schema.h"

using seed::core::Value;
using seed::multiuser::ClientSession;
using seed::multiuser::Server;
using seed::ObjectId;

int main() {
  auto fig3 = seed::spades::BuildFig3Schema();
  if (!fig3.ok()) return 1;
  Server server(fig3->schema);
  const auto& ids = fig3->ids;

  // Seed the master.
  (void)*server.master()->CreateObject(ids.action, "AlarmHandler");
  (void)*server.master()->CreateObject(ids.action, "OperatorAlert");
  server.master()->ClearChangeTracking();

  auto alice = std::move(ClientSession::Open(&server, "alice")).value();
  auto bob = std::move(ClientSession::Open(&server, "bob")).value();

  // Alice locks AlarmHandler; Bob's attempt on the same object fails.
  (void)alice->CheckoutByName({"AlarmHandler"});
  std::printf("alice checked out AlarmHandler (locked: %s)\n",
              server.IsLocked(
                  *server.master()->FindObjectByName("AlarmHandler"))
                  ? "yes"
                  : "no");
  auto conflict = bob->CheckoutByName({"AlarmHandler"});
  std::printf("bob tries the same     -> %s\n",
              conflict.ToString().c_str());
  (void)bob->CheckoutByName({"OperatorAlert"});
  std::printf("bob checked out OperatorAlert instead\n\n");

  // Both edit locally; the master sees nothing until check-in.
  ObjectId a = *alice->local()->FindObjectByName("AlarmHandler");
  ObjectId ad = *alice->local()->CreateSubObject(a, "Description");
  (void)alice->local()->SetValue(
      ad, Value::String("Generates alarms from process data"));

  ObjectId o = *bob->local()->FindObjectByName("OperatorAlert");
  ObjectId od = *bob->local()->CreateSubObject(o, "Description");
  (void)bob->local()->SetValue(od, Value::String("Pages the operator"));

  std::printf("master sees AlarmHandler.Description before checkin: %s\n",
              server.master()
                  ->FindObjectByName("AlarmHandler.Description")
                  .ok()
                  ? "yes"
                  : "no");

  // Check both sessions in (single transactions, audited server-side).
  std::printf("alice checkin -> %s\n", alice->Checkin().ToString().c_str());
  std::printf("bob checkin   -> %s\n\n", bob->Checkin().ToString().c_str());

  for (const char* path :
       {"AlarmHandler.Description", "OperatorAlert.Description"}) {
    auto d = server.master()->FindObjectByName(path);
    std::printf("master %-28s = %s\n", path,
                (*server.master()->GetObject(*d))->value.ToString().c_str());
  }
  std::printf(
      "\nserver stats: %llu applied, %llu rejected, %llu lock conflicts\n",
      static_cast<unsigned long long>(server.checkins_applied()),
      static_cast<unsigned long long>(server.checkins_rejected()),
      static_cast<unsigned long long>(server.lock_conflicts()));
  std::printf("master consistent: %s\n",
              server.master()->AuditConsistency().clean() ? "yes" : "NO");
  return 0;
}
