// The paper's Fig. 3 narrative, step by step: vague information enters the
// database immediately, gets re-classified as knowledge sharpens, and ends
// as fully precise data — with the completeness check tracking the open
// work at every stage.
//
//   $ ./build/examples/vague_to_precise

#include <cstdio>

#include "core/database.h"
#include "spades/spec_schema.h"

using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;
using seed::RelationshipId;

namespace {

void Report(const Database& db, const char* stage) {
  auto completeness = db.CheckCompleteness();
  std::printf("%-52s | findings: %2zu | consistent: %s\n", stage,
              completeness.size(),
              db.AuditConsistency().clean() ? "yes" : "NO");
}

}  // namespace

int main() {
  auto fig3 = seed::spades::BuildFig3Schema();
  if (!fig3.ok()) return 1;
  Database db(fig3->schema);
  const auto& ids = fig3->ids;

  ObjectId sensor = *db.CreateObject(ids.action, "Sensor");
  Report(db, "created action 'Sensor'");

  // "There is a thing with name 'Alarms'."
  ObjectId alarms = *db.CreateObject(ids.thing, "Alarms");
  Report(db, "vague: 'there is a thing named Alarms'");

  // A Thing cannot flow yet — consistency protects the vague stage.
  auto premature = db.CreateRelationship(ids.access, alarms, sensor);
  std::printf("    (early flow veto: %s)\n",
              premature.status().ToString().c_str());

  // "It is a data object which is accessed by action 'Sensor'."
  (void)db.Reclassify(alarms, ids.data);
  RelationshipId flow = *db.CreateRelationship(ids.access, alarms, sensor);
  Report(db, "refined: Alarms is Data, accessed by Sensor");

  // "'Alarms' is an output."
  (void)db.Reclassify(alarms, ids.output_data);
  (void)db.ReclassifyRelationship(flow, ids.write);
  Report(db, "refined: Alarms is OutputData, flow is Write");

  // "...written twice by 'Sensor', and writing is repeated in case of
  // error."
  ObjectId n = *db.CreateSubObject(flow, "NumberOfWrites");
  (void)db.SetValue(n, Value::Int(2));
  ObjectId eh = *db.CreateSubObject(flow, "ErrorHandling");
  (void)db.SetValue(eh, Value::Enum("repeat"));
  Report(db, "precise: written twice, repeat on error");

  // Close the remaining completeness findings: Sensor must read something.
  ObjectId process = *db.CreateObject(ids.input_data, "ProcessData");
  (void)db.CreateRelationship(ids.read, process, sensor);
  Report(db, "added ProcessData read by Sensor");

  std::printf("\nfinal object: %s of class id %llu\n",
              db.FullName(alarms).c_str(),
              static_cast<unsigned long long>(
                  (*db.GetObject(alarms))->cls.raw()));
  return 0;
}
