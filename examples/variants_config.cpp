// Variants via patterns (paper Fig. 5): a family of system configurations
// that share portable modules (the common part) and differ in hardware-
// dependent modules (the variant parts), wired by inherited pattern
// relationships. Shared information has one write site: the pattern.
//
//   $ ./build/examples/variants_config

#include <cstdio>

#include "pattern/pattern_manager.h"
#include "pattern/variants.h"
#include "schema/schema_builder.h"

using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;

int main() {
  // Schema: modules with a revision date, and a Uses association.
  seed::schema::SchemaBuilder b("Configurations");
  seed::ClassId module = b.AddIndependentClass("Module");
  seed::ClassId revised = b.AddDependentClass(
      module, "Revised", seed::schema::Cardinality::Optional(),
      seed::schema::ValueType::kDate);
  (void)revised;
  seed::AssociationId uses = b.AddAssociation(
      "Uses",
      seed::schema::Role{"user", module, seed::schema::Cardinality::Any()},
      seed::schema::Role{"used", module, seed::schema::Cardinality::Any()});
  auto schema = *b.Build();

  Database db(schema);
  seed::pattern::PatternManager pm(&db);
  seed::pattern::VariantFamily family("AlarmSystem", &pm);

  // Common part: the portable software modules.
  ObjectId kernel = *db.CreateObject(module, "PortableKernel");
  ObjectId proto = *db.CreateObject(module, "AlarmProtocol");
  (void)family.AddCommonObject(kernel);
  (void)family.AddCommonObject(proto);

  // Connectors PO1/PO2 with pattern relationships PR1/PR2 (Fig. 5).
  ObjectId po1 = *family.CreateConnector("PO1", module, uses, 0, kernel);
  (void)*family.CreateConnector("PO2", module, uses, 0, proto);
  ObjectId po1_rev = *db.CreateSubObject(po1, "Revised");
  (void)db.SetValue(po1_rev,
                    Value::OfDate(*seed::schema::Date::Parse("1986-02-05")));

  // Variant parts: hardware-dependent drivers.
  ObjectId drv_a = *db.CreateObject(module, "DriverBoardA");
  ObjectId irq_a = *db.CreateObject(module, "IrqHandlerA");
  ObjectId drv_b = *db.CreateObject(module, "DriverBoardB");
  (void)family.AddVariant("BoardA", {drv_a, irq_a});
  (void)family.AddVariant("BoardB", {drv_b});

  std::printf("family '%s': %zu variants, %zu connectors\n\n",
              family.name().c_str(), family.num_variants(),
              family.connectors().size());

  for (const std::string& variant : family.VariantNames()) {
    std::printf("variant %s:\n", variant.c_str());
    auto members = family.MembersOf(variant);
    for (ObjectId member : *members) {
      std::printf("  %s uses:", db.FullName(member).c_str());
      for (const auto& rel : family.SharedRelationshipsOf(member)) {
        std::printf(" %s", db.FullName(rel.ends[1]).c_str());
      }
      std::printf("\n");
    }
  }

  // Shared information is maintained in ONE place: updating the pattern
  // propagates to every variant...
  (void)db.SetValue(po1_rev,
                    Value::OfDate(*seed::schema::Date::Parse("1986-09-01")));
  std::printf("\nafter pattern update, DriverBoardA sees Revised = %s\n",
              pm.EffectiveValue(drv_a, "Revised")->ToString().c_str());
  std::printf("                      DriverBoardB sees Revised = %s\n",
              pm.EffectiveValue(drv_b, "Revised")->ToString().c_str());

  // ...while updating it in a variant's context is rejected.
  auto veto = pm.SetValueInContext(
      drv_a, "Revised",
      Value::OfDate(*seed::schema::Date::Parse("1999-01-01")));
  std::printf("\nwrite in inheritor context -> %s\n",
              veto.ToString().c_str());
  return 0;
}
