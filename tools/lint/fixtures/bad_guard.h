// Fixture: include guard that does not spell the header's path.
// lint-expect: include-guard

#ifndef FIXTURES_WRONG_NAME_H
#define FIXTURES_WRONG_NAME_H

namespace seed::fixtures {
inline int Nothing() { return 0; }
}  // namespace seed::fixtures

#endif  // FIXTURES_WRONG_NAME_H
