// Fixture: metric name that matches neither the subsystem list nor the
// counter-suffix rule from docs/metrics.md.
// lint-expect: metric-name

#include "obs/metrics.h"

namespace seed::fixtures {

void Touch() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("frobnicator.count");
  c->Increment();
}

}  // namespace seed::fixtures
