// Fixture: the `server.` subsystem prefix is accepted by metric-name, and
// a server counter without a counter suffix is still rejected.

namespace seed::fixtures {

void ServerMetrics() {
  static obs::Counter* ok = obs::MetricsRegistry::Global().GetCounter(
      "server.fixture_commits.total");
  ok->Increment();
  static obs::Counter* bad = obs::MetricsRegistry::Global().GetCounter(
      "server.fixture_commits");  // lint-expect: metric-name
  bad->Increment();
}

}  // namespace seed::fixtures
