// Fixture: raw std::thread outside src/exec/. Everything else must
// schedule through exec::WorkerPool.
// lint-expect: naked-thread

#include <thread>

namespace seed::fixtures {

void FireAndForget() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace seed::fixtures
