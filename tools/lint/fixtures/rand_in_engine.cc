// Fixture: libc rand()/time() inside the engine tree. Engine randomness
// must come from common/random.h so runs stay reproducible.
// lint-expect: determinism

#include <cstdlib>
#include <ctime>

namespace seed::fixtures {

int Jitter() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  return rand() % 7;
}

}  // namespace seed::fixtures
