// Fixture: the same (well-formed) metric name registered from two call
// sites. Function-local-static caching means the second site silently
// reuses the first registration, so the linter demands a single helper.
// lint-expect: metric-once

#include "obs/metrics.h"

namespace seed::fixtures {

void First() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("query.fixture.total");
  c->Increment();
}

void Second() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("query.fixture.total");
  c->Increment();
}

}  // namespace seed::fixtures
