// Fixture: morsel lambdas that violate the capture contract — one with
// a default [&] capture, one capturing a member (trailing underscore)
// by reference across the thread boundary.
// lint-expect: morsel-capture

#include <cstddef>
#include <vector>

#include "exec/worker_pool.h"

namespace seed::fixtures {

class Scanner {
 public:
  void ScanAll(std::size_t n) {
    std::vector<int> out(n);
    exec::WorkerPool::Global().ParallelFor(
        4, n, 64, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) out[i] = 1;
        });
    exec::WorkerPool::Global().ParallelFor(
        4, n, 64, [&rows_seen_ = rows_seen_](std::size_t begin,
                                             std::size_t end) {
          rows_seen_ += end - begin;
        });
  }

 private:
  std::size_t rows_seen_ = 0;
};

}  // namespace seed::fixtures
