// Fixture: the `planner.` and `stats.` subsystem prefixes are accepted
// by metric-name, and a planner counter without a counter suffix is
// still rejected.

namespace seed::fixtures {

void PlannerMetrics() {
  static obs::Counter* hits = obs::MetricsRegistry::Global().GetCounter(
      "planner.fixture_cache_hits.total");
  hits->Increment();
  static obs::Counter* builds = obs::MetricsRegistry::Global().GetCounter(
      "stats.fixture_histogram_builds.total");
  builds->Increment();
  static obs::Counter* bad = obs::MetricsRegistry::Global().GetCounter(
      "planner.fixture_cache_hits");  // lint-expect: metric-name
  bad->Increment();
}

}  // namespace seed::fixtures
