#!/usr/bin/env python3
"""seed_lint: in-tree contract linter for the seed engine.

Checks the file-level contracts that the compiler and clang's
thread-safety analysis cannot see (docs/static_analysis.md):

  metric-name        Metric names registered via MetricsRegistry::Get*
                     must follow docs/metrics.md: dotted lower_snake
                     segments, a known subsystem prefix, and counters
                     must end in .total / .bytes / .ns.
  metric-once        Each metric name has exactly one registration site
                     in src/ (function-local-static caching means a
                     second site would silently alias the first).
  morsel-capture     Lambdas handed to ParallelFor / PartitionedEmit
                     must use an explicit capture list (no [&] / [=]),
                     and must not capture engine state by reference:
                     members (trailing '_') and globals ('g_' prefix)
                     are rejected; function locals are allowed.
  naked-thread       std::thread appears only under src/exec/ — every
                     other subsystem schedules through the WorkerPool.
  determinism        rand()/srand()/time() are banned in src/; engine
                     randomness goes through common/random.h so runs
                     are reproducible.
  include-guard      Header guards spell the path: src/a/b.h guards
                     with SEED_A_B_H_.

Usage:
  seed_lint.py --root <repo> [--self-test]

--self-test first runs every rule over tools/lint/fixtures/ and fails
unless each seeded violation is caught exactly where its `lint-expect`
comment says (and nowhere else), then lints the real tree, which must
be clean. Exit status 0 only if both hold.
"""

import argparse
import os
import re
import sys

SUBSYSTEMS = (
    "core", "index", "storage", "multiuser", "version",
    "query", "algebra", "exec", "obs", "server",
    # Statistics-v2 / plan-cache instruments (docs/metrics.md): the
    # planner's cache and adaptive-execution counters, and the
    # estimation layer's histogram instruments.
    "planner", "stats",
)

METRIC_NAME_RE = re.compile(
    r"^(%s)(\.[a-z][a-z0-9_]*)+$" % "|".join(SUBSYSTEMS))
COUNTER_SUFFIXES = (".total", ".bytes", ".ns")

GET_METRIC_RE = re.compile(
    r"\b(GetCounter|GetGauge|GetHistogram)\s*\(\s*\"([^\"]*)\"")
MORSEL_ENTRY_RE = re.compile(r"\b(ParallelFor|PartitionedEmit)\s*\(")
THREAD_RE = re.compile(r"\bstd::thread\b")
RAND_TIME_RE = re.compile(r"\b(rand|srand|time)\s*\(")
GUARD_RE = re.compile(r"^\s*#ifndef\s+(\S+)", re.MULTILINE)
EXPECT_RE = re.compile(r"lint-expect:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")

# Comment/string stripper. Line comments are kept as newlines so line
# numbers survive; string literals become empty so quoted text (error
# messages, paths) can't trip code-pattern rules. Metric literals are
# extracted from the raw text *before* stripping.
STRIP_RE = re.compile(
    r"//[^\n]*|/\*.*?\*/|\"(?:[^\"\\\n]|\\.)*\"|'(?:[^'\\\n]|\\.)*'",
    re.DOTALL)


def _strip(text):
    def repl(m):
        return '""' + "\n" * m.group(0).count("\n") if m.group(0)[0] in "\"'" \
            else "\n" * m.group(0).count("\n")
    return STRIP_RE.sub(repl, text)


def _line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def _iter_sources(src_root, exts):
    for dirpath, _, names in sorted(os.walk(src_root)):
        for name in sorted(names):
            if name.endswith(exts):
                yield os.path.join(dirpath, name)


# --- Rules -------------------------------------------------------------------

def check_metrics(files, rel):
    findings = []
    sites = {}  # name -> [(path, line)]
    for path, raw, _ in files:
        stripped_comments = re.sub(r"//[^\n]*|/\*.*?\*/",
                                   lambda m: "\n" * m.group(0).count("\n"),
                                   raw, flags=re.DOTALL)
        for m in GET_METRIC_RE.finditer(stripped_comments):
            kind, name = m.group(1), m.group(2)
            line = _line_of(stripped_comments, m.start())
            sites.setdefault(name, []).append((path, line))
            if not METRIC_NAME_RE.match(name):
                findings.append(Finding(
                    "metric-name", rel(path), line,
                    "metric %r does not match <subsystem>.<noun>.<unit> "
                    "(subsystems: %s)" % (name, ", ".join(SUBSYSTEMS))))
            elif kind == "GetCounter" and \
                    not name.endswith(COUNTER_SUFFIXES):
                findings.append(Finding(
                    "metric-name", rel(path), line,
                    "counter %r must end in one of %s" %
                    (name, "/".join(COUNTER_SUFFIXES))))
    for name, where in sorted(sites.items()):
        if len(where) > 1:
            extra = ", ".join("%s:%d" % (rel(p), ln) for p, ln in where[1:])
            findings.append(Finding(
                "metric-once", rel(where[0][0]), where[0][1],
                "metric %r registered at %d sites (also %s); hoist into "
                "one helper" % (name, len(where), extra)))
    return findings


def _capture_list_at(code, open_bracket):
    """Returns (captures-string, found) for a lambda intro at '['."""
    depth, i = 0, open_bracket
    while i < len(code):
        if code[i] == "[":
            depth += 1
        elif code[i] == "]":
            depth -= 1
            if depth == 0:
                return code[open_bracket + 1:i], True
        i += 1
    return "", False


def check_morsel_captures(files, rel):
    findings = []
    for path, _, code in files:
        for m in MORSEL_ENTRY_RE.finditer(code):
            # Find the first lambda introducer in this call's argument
            # list (scan a bounded window past the call). Definitions
            # match too, but their parameter lists carry no lambda, and
            # a stray index expression parses as an empty-of-& capture
            # list, so they never produce findings.
            window = code[m.end():m.end() + 400]
            lam = window.find("[")
            if lam < 0:
                continue
            captures, ok = _capture_list_at(window, lam)
            if not ok:
                continue
            line = _line_of(code, m.end() + lam)
            items = [c.strip() for c in captures.split(",") if c.strip()]
            for item in items:
                if item in ("&", "="):
                    findings.append(Finding(
                        "morsel-capture", rel(path), line,
                        "lambda passed to %s uses default capture [%s]; "
                        "spell out every capture so reviewers and the "
                        "linter can see what crosses the thread boundary"
                        % (m.group(1), item)))
                elif item.startswith("&"):
                    name = item[1:].strip()
                    if name.endswith("_") or name.startswith("g_"):
                        findings.append(Finding(
                            "morsel-capture", rel(path), line,
                            "lambda passed to %s captures engine state "
                            "%r by reference; members and globals must "
                            "be copied, atomic, or reached through a "
                            "locked API" % (m.group(1), item)))
    return findings


def check_naked_threads(files, rel, exec_dir):
    findings = []
    for path, _, code in files:
        if os.path.normpath(path).startswith(exec_dir + os.sep):
            continue
        for m in THREAD_RE.finditer(code):
            findings.append(Finding(
                "naked-thread", rel(path), _line_of(code, m.start()),
                "std::thread outside src/exec/; schedule through "
                "exec::WorkerPool so shutdown, helping, and TSan "
                "coverage stay centralized"))
    return findings


def check_determinism(files, rel):
    findings = []
    for path, _, code in files:
        for m in RAND_TIME_RE.finditer(code):
            findings.append(Finding(
                "determinism", rel(path), _line_of(code, m.start()),
                "%s() in src/; use common/random.h (seeded PRNG) or "
                "obs::NowNanos so engine runs stay reproducible"
                % m.group(1)))
    return findings


def check_include_guards(files, rel, src_root):
    findings = []
    for path, raw, _ in files:
        if not path.endswith(".h"):
            continue
        relpath = os.path.relpath(path, src_root)
        expected = "SEED_" + re.sub(r"[/\\.]", "_", relpath).upper() + "_"
        m = GUARD_RE.search(raw)
        if not m:
            findings.append(Finding(
                "include-guard", rel(path), 1,
                "header has no #ifndef include guard (expected %s)"
                % expected))
        elif m.group(1) != expected:
            findings.append(Finding(
                "include-guard", rel(path), _line_of(raw, m.start()),
                "guard %s does not spell the path; expected %s"
                % (m.group(1), expected)))
    return findings


# --- Driver ------------------------------------------------------------------

def lint_tree(src_root, repo_root):
    def rel(path):
        return os.path.relpath(path, repo_root)

    files = []
    for path in _iter_sources(src_root, (".h", ".cc")):
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        files.append((path, raw, _strip(raw)))

    findings = []
    findings += check_metrics(files, rel)
    findings += check_morsel_captures(files, rel)
    findings += check_naked_threads(files, rel,
                                    os.path.join(src_root, "exec"))
    findings += check_determinism(files, rel)
    findings += check_include_guards(files, rel, src_root)
    return findings


def self_test(fixtures_root, repo_root):
    """Every fixture's `lint-expect:` rules must fire in that file, and no
    other rule may fire anywhere in the fixture tree."""
    errors = []
    expected = {}  # relpath -> set(rules)
    for path in _iter_sources(fixtures_root, (".h", ".cc")):
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        rules = set()
        for m in EXPECT_RE.finditer(raw):
            rules.update(r.strip() for r in m.group(1).split(","))
        expected[os.path.relpath(path, repo_root)] = rules

    findings = lint_tree(fixtures_root, repo_root)
    got = {}
    for f in findings:
        got.setdefault(f.path, set()).add(f.rule)

    for path, rules in sorted(expected.items()):
        missing = rules - got.get(path, set())
        for rule in sorted(missing):
            errors.append("fixture %s: rule %s did not fire" % (path, rule))
        surplus = got.get(path, set()) - rules
        for rule in sorted(surplus):
            errors.append("fixture %s: rule %s fired unexpectedly" %
                          (path, rule))
    for path in sorted(set(got) - set(expected)):
        errors.append("finding in unknown fixture file %s" % path)
    if not any(expected.values()):
        errors.append("no lint-expect annotations found under %s" %
                      fixtures_root)
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="validate rules against tools/lint/fixtures/ "
                         "before linting the real tree")
    args = ap.parse_args()

    repo_root = os.path.abspath(args.root)
    src_root = os.path.join(repo_root, "src")
    if not os.path.isdir(src_root):
        print("seed_lint: no src/ under %s" % repo_root, file=sys.stderr)
        return 2

    status = 0
    if args.self_test:
        fixtures = os.path.join(repo_root, "tools", "lint", "fixtures")
        errors = self_test(fixtures, repo_root)
        if errors:
            for e in errors:
                print("seed_lint [self-test] %s" % e, file=sys.stderr)
            status = 1
        else:
            print("seed_lint: self-test OK (%d fixtures)" %
                  len(list(_iter_sources(fixtures, (".h", ".cc")))))

    findings = lint_tree(src_root, repo_root)
    for f in findings:
        print("seed_lint: %s" % f, file=sys.stderr)
    if findings:
        status = 1
    else:
        print("seed_lint: src/ clean")
    return status


if __name__ == "__main__":
    sys.exit(main())
