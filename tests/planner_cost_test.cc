// Cost-based planner unit tests: plan-kind selection and tie-breaks
// (equality beats range beats scan at equal estimates; intersection is
// chosen only when every participating conjunct is selective; empty
// statistics fall back deterministically), the regression for "first
// matching index wins even when a later equality index is strictly more
// selective", relationship-extent planning through relationship-side
// indexes, and the incremental extent counters the cost model reads.
//
// The tie-break tests construct worlds whose modeled costs come out
// exactly equal under the constants in query/stats.h; if those constants
// change, re-derive the populations from the formulas documented there.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/database.h"
#include "core/persistence.h"
#include "index/index_manager.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "query/stats.h"
#include "schema/schema_builder.h"
#include "storage/kv_store.h"

namespace seed {
namespace {

using core::Database;
using core::Value;
using index::IndexSpec;
using query::Planner;
using query::Predicate;

/// Sensor (INT) with Label (STRING 0..4) and Zone (INT 0..1) sub-objects,
/// CalibratedSensor specializing Sensor, and a Feeds association
/// Sensor -> Hub carrying a Weight (INT 0..1) relationship attribute.
struct CostWorld {
  schema::SchemaPtr schema;
  ClassId sensor, calibrated, label, zone, hub;
  AssociationId feeds;
  ClassId weight;
};

CostWorld BuildCostWorld() {
  schema::SchemaBuilder b("CostWorld");
  CostWorld w;
  w.sensor = b.AddIndependentClass("Sensor", schema::ValueType::kInt);
  w.calibrated =
      b.AddIndependentClass("CalibratedSensor", schema::ValueType::kInt);
  b.SetGeneralization(w.calibrated, w.sensor);
  w.label = b.AddDependentClass(w.sensor, "Label", schema::Cardinality(0, 4),
                                schema::ValueType::kString);
  w.zone = b.AddDependentClass(w.sensor, "Zone", schema::Cardinality(0, 1),
                               schema::ValueType::kInt);
  w.hub = b.AddIndependentClass("Hub", schema::ValueType::kNone);
  w.feeds = b.AddAssociation(
      "Feeds", schema::Role{"src", w.sensor, schema::Cardinality::Any()},
      schema::Role{"dst", w.hub, schema::Cardinality::Any()});
  w.weight = b.AddDependentClass(w.feeds, "Weight",
                                 schema::Cardinality(0, 1),
                                 schema::ValueType::kInt);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  w.schema = *schema;
  return w;
}

class PlannerCostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = BuildCostWorld();
    db_ = std::make_unique<Database>(world_.schema);
  }

  ObjectId MakeSensor(int i, std::int64_t value) {
    auto id = db_->CreateObject(world_.sensor, "S" + std::to_string(i));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(db_->SetValue(*id, Value::Int(value)).ok());
    return *id;
  }

  void GiveZone(ObjectId sensor, std::int64_t value) {
    auto z = db_->CreateSubObject(sensor, "Zone");
    ASSERT_TRUE(z.ok());
    ASSERT_TRUE(db_->SetValue(*z, Value::Int(value)).ok());
  }

  void GiveLabel(ObjectId sensor, const std::string& text) {
    auto l = db_->CreateSubObject(sensor, "Label");
    ASSERT_TRUE(l.ok());
    ASSERT_TRUE(db_->SetValue(*l, Value::String(text)).ok());
  }

  std::vector<ObjectId> ScanIds(ClassId cls, const Predicate& p,
                                bool include_specializations = true) {
    std::vector<ObjectId> out;
    for (ObjectId id : db_->ObjectsOfClass(cls, include_specializations)) {
      if (p.Eval(*db_, id)) out.push_back(id);
    }
    return out;
  }

  CostWorld world_;
  std::unique_ptr<Database> db_;
};

// --- Tie-breaks --------------------------------------------------------------

TEST_F(PlannerCostTest, EqualityBeatsRangeAtEqualEstimates) {
  // Both sargable conjuncts estimate 0 rows: the equality probe and the
  // range scan cost exactly one probe each, the intersection costs two.
  // The deterministic tie-break must pick the equality.
  for (int i = 0; i < 100; ++i) {
    ObjectId s = MakeSensor(i, i);  // no sensor carries value 7777
    GiveZone(s, i);                 // no zone exceeds 900
  }
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, ""}).ok());
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, "Zone"}).ok());

  Planner planner(db_.get());
  Predicate p = Predicate::ValueEquals(Value::Int(7777))
                    .And(Predicate::OnSubObject(
                        "Zone", Predicate::IntGreater(900)));
  auto plan = planner.PlanSelect(world_.sensor, p);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kIndexEquals);
  ASSERT_EQ(plan.legs.size(), 1u);
  EXPECT_TRUE(plan.legs[0].index->spec().role.empty());
  EXPECT_EQ(planner.SelectIds(world_.sensor, p), ScanIds(world_.sensor, p));
}

TEST_F(PlannerCostTest, RangeBeatsScanAtEqualCost) {
  // 12 sensors, 8 of them in the range: range cost = probe(2) + 8 * 1.25
  // = 12 = scan cost. The tie-break prefers the range plan.
  for (int i = 0; i < 12; ++i) {
    ObjectId s = MakeSensor(i, i);
    GiveZone(s, i < 8 ? 1000 + i : i);
  }
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, "Zone"}).ok());

  Planner planner(db_.get());
  Predicate p = Predicate::OnSubObject("Zone", Predicate::IntGreater(900));
  auto plan = planner.PlanSelect(world_.sensor, p);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kIndexRange);
  EXPECT_DOUBLE_EQ(plan.est_cost, 12.0);
  EXPECT_DOUBLE_EQ(plan.est_rows, 8.0);
  EXPECT_EQ(planner.SelectIds(world_.sensor, p), ScanIds(world_.sensor, p));
}

TEST_F(PlannerCostTest, EmptyStatsFallBackToScanDeterministically) {
  // Fresh database: every estimate is zero and the scan (cost 0 over an
  // empty extent) wins. Planning must not divide by zero or crash, and
  // execution must return the empty result.
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, ""}).ok());
  Planner planner(db_.get());
  Predicate p = Predicate::ValueEquals(Value::Int(1));
  auto plan = planner.PlanSelect(world_.sensor, p);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kFullScan);
  EXPECT_DOUBLE_EQ(plan.extent_rows, 0.0);
  EXPECT_TRUE(planner.SelectIds(world_.sensor, p).empty());
}

// --- Intersection selection --------------------------------------------------

TEST_F(PlannerCostTest, IntersectionChosenWhenBothConjunctsSelective) {
  // 1000 sensors; equality selects ~10, the zone range selects ~10.
  // Reading both posting lists (~20 * 0.25) plus the ~0.1-row residual is
  // far cheaper than residual-evaluating 10 candidates (10 * 1.25).
  for (int i = 0; i < 1000; ++i) {
    ObjectId s = MakeSensor(i, i % 100);
    GiveZone(s, i);
  }
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, ""}).ok());
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, "Zone"}).ok());

  Planner planner(db_.get());
  Predicate p = Predicate::ValueEquals(Value::Int(7))
                    .And(Predicate::OnSubObject(
                        "Zone", Predicate::IntGreater(989)));
  auto plan = planner.PlanSelect(world_.sensor, p);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kIndexIntersect);
  ASSERT_EQ(plan.legs.size(), 2u);
  EXPECT_EQ(planner.SelectIds(world_.sensor, p), ScanIds(world_.sensor, p));
  // The EXPLAIN string carries both legs and the estimate.
  EXPECT_NE(plan.ToString().find("index-intersect"), std::string::npos);
  EXPECT_NE(plan.ToString().find("est ~"), std::string::npos);
}

TEST_F(PlannerCostTest, IntersectionRejectedWhenOneConjunctUnselective) {
  // Equality still selects ~10 but the range now covers ~90% of the
  // extent: paying its posting list would cost more than the residual
  // evaluations it prunes, so the single equality probe must win.
  for (int i = 0; i < 1000; ++i) {
    ObjectId s = MakeSensor(i, i % 100);
    GiveZone(s, i % 100);
  }
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, ""}).ok());
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, "Zone"}).ok());

  Planner planner(db_.get());
  Predicate p = Predicate::ValueEquals(Value::Int(7))
                    .And(Predicate::OnSubObject(
                        "Zone", Predicate::IntGreater(9)));
  auto plan = planner.PlanSelect(world_.sensor, p);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kIndexEquals);
  ASSERT_EQ(plan.legs.size(), 1u);
  EXPECT_TRUE(plan.legs[0].index->spec().role.empty());
  EXPECT_EQ(planner.SelectIds(world_.sensor, p), ScanIds(world_.sensor, p));
}

// --- Regression: most selective index wins -----------------------------------

TEST_F(PlannerCostTest, MoreSelectiveLaterEqualityIndexWins) {
  // The pre-cost planner took the *first* sargable conjunct with any
  // matching index: here the own-value equality (500 of 1000 rows). The
  // cost model must instead pick the Label index, whose equality selects
  // 2 rows — and must not intersect, since the unselective posting list
  // costs more than it prunes.
  for (int i = 0; i < 1000; ++i) {
    ObjectId s = MakeSensor(i, i < 500 ? 7 : i);
    if (i == 13 || i == 977) GiveLabel(s, "rare");
  }
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, ""}).ok());
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, "Label"}).ok());

  Planner planner(db_.get());
  Predicate p = Predicate::ValueEquals(Value::Int(7))
                    .And(Predicate::OnSubObject(
                        "Label", Predicate::ValueEquals(
                                     Value::String("rare"))));
  auto plan = planner.PlanSelect(world_.sensor, p);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kIndexEquals);
  ASSERT_EQ(plan.legs.size(), 1u);
  EXPECT_EQ(plan.legs[0].index->spec().role, "Label");
  EXPECT_DOUBLE_EQ(plan.legs[0].est_rows, 2.0);
  EXPECT_EQ(planner.SelectIds(world_.sensor, p), ScanIds(world_.sensor, p));
}

// --- Relationship-extent planning --------------------------------------------

TEST_F(PlannerCostTest, RelationshipAttributePredicatePlansThroughIndex) {
  ObjectId hub = *db_->CreateObject(world_.hub, "Hub");
  std::vector<RelationshipId> rels;
  for (int i = 0; i < 200; ++i) {
    ObjectId s = MakeSensor(i, i);
    auto rel = db_->CreateRelationship(world_.feeds, s, hub);
    ASSERT_TRUE(rel.ok()) << rel.status().ToString();
    auto w = db_->CreateSubObject(*rel, "Weight");
    ASSERT_TRUE(w.ok());
    if (i % 10 != 9) {  // every 10th weight stays vague
      ASSERT_TRUE(db_->SetValue(*w, Value::Int(i % 20)).ok());
    }
    rels.push_back(*rel);
  }
  ASSERT_TRUE(db_->CreateAttributeIndex(
                    IndexSpec::ForAssociation(world_.feeds, "Weight"))
                  .ok());

  Planner planner(db_.get());
  std::vector<Planner::RelCondition> conds;
  conds.push_back({"Weight", Predicate::ValueEquals(Value::Int(7))});

  auto plan = planner.PlanSelectRelationships(world_.feeds, conds);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kIndexEquals);
  ASSERT_EQ(plan.legs.size(), 1u);
  EXPECT_TRUE(plan.legs[0].index->spec().on_relationships());

  // Identity with the RelationshipsOf-style scan.
  std::vector<RelationshipId> scanned;
  for (RelationshipId id : db_->RelationshipsOfAssociation(world_.feeds)) {
    if (planner.EvalRelConditions(id, conds)) scanned.push_back(id);
  }
  EXPECT_EQ(planner.SelectRelationshipIds(world_.feeds, conds), scanned);
  EXPECT_FALSE(scanned.empty());

  // Range conditions plan and agree too.
  std::vector<Planner::RelCondition> range_conds;
  range_conds.push_back({"Weight", Predicate::IntGreater(16)});
  auto range_plan =
      planner.PlanSelectRelationships(world_.feeds, range_conds);
  EXPECT_EQ(range_plan.kind, Planner::Plan::Kind::kIndexRange);
  std::vector<RelationshipId> range_scanned;
  for (RelationshipId id : db_->RelationshipsOfAssociation(world_.feeds)) {
    if (planner.EvalRelConditions(id, range_conds)) {
      range_scanned.push_back(id);
    }
  }
  EXPECT_EQ(planner.SelectRelationshipIds(world_.feeds, range_conds),
            range_scanned);

  // Maintenance: deleting a matching relationship removes it from the
  // index; updating a weight moves it between keys.
  RelationshipId victim = scanned.front();
  ASSERT_TRUE(db_->DeleteRelationship(victim).ok());
  auto after = planner.SelectRelationshipIds(world_.feeds, conds);
  EXPECT_EQ(after.size(), scanned.size() - 1);
  for (RelationshipId id : after) EXPECT_NE(id, victim);

  // The textual layer reaches the same path.
  std::string plan_str;
  auto text = query::RunRelationshipQuery(
      *db_, "find rel Feeds where Weight is 7", &plan_str);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text, after);
  EXPECT_NE(plan_str.find("index-equals"), std::string::npos);
  EXPECT_NE(plan_str.find("est ~"), std::string::npos);
  EXPECT_NE(plan_str.find("actual"), std::string::npos);
}

TEST_F(PlannerCostTest, RelationshipQueriesWithoutIndexScan) {
  ObjectId hub = *db_->CreateObject(world_.hub, "Hub");
  for (int i = 0; i < 20; ++i) {
    ObjectId s = MakeSensor(i, i);
    auto rel = db_->CreateRelationship(world_.feeds, s, hub);
    ASSERT_TRUE(rel.ok());
    auto w = db_->CreateSubObject(*rel, "Weight");
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(db_->SetValue(*w, Value::Int(i)).ok());
  }
  Planner planner(db_.get());
  std::vector<Planner::RelCondition> conds;
  conds.push_back({"Weight", Predicate::IntLess(5)});
  auto plan = planner.PlanSelectRelationships(world_.feeds, conds);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kFullScan);
  EXPECT_EQ(planner.SelectRelationshipIds(world_.feeds, conds).size(), 5u);
}

TEST_F(PlannerCostTest, RelationshipIndexDefinitionsSurviveSaveAndLoad) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "seed_planner_cost_persist";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ObjectId hub = *db_->CreateObject(world_.hub, "Hub");
  for (int i = 0; i < 10; ++i) {
    ObjectId s = MakeSensor(i, i);
    auto rel = db_->CreateRelationship(world_.feeds, s, hub);
    ASSERT_TRUE(rel.ok());
    auto w = db_->CreateSubObject(*rel, "Weight");
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(db_->SetValue(*w, Value::Int(i)).ok());
  }
  ASSERT_TRUE(db_->CreateAttributeIndex({world_.sensor, ""}).ok());
  ASSERT_TRUE(db_->CreateAttributeIndex(
                    IndexSpec::ForAssociation(world_.feeds, "Weight"))
                  .ok());
  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir.string()).ok());
    ASSERT_TRUE(core::Persistence::SaveFull(*db_, &kv).ok());
    ASSERT_TRUE(kv.Close().ok());
  }
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir.string()).ok());
  auto loaded = core::Persistence::Load(&kv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& manager = (*loaded)->attribute_indexes();
  EXPECT_EQ(manager.size(), 2u);
  const index::AttributeIndex* rel_idx =
      manager.Find(IndexSpec::ForAssociation(world_.feeds, "Weight"));
  ASSERT_NE(rel_idx, nullptr);
  // Entries were re-derived from the restored relationships.
  EXPECT_EQ(rel_idx->num_entries(), 10u);
  EXPECT_EQ(rel_idx->LookupRels(Value::Int(3)).size(), 1u);
  // Extent counters were rebuilt on load too.
  EXPECT_EQ((*loaded)->extent_counters().CountAssociationExtent(
                *(*loaded)->schema(), world_.feeds, true),
            10u);
  ASSERT_TRUE(kv.Close().ok());
  fs::remove_all(dir);
}

// --- Extent counters ---------------------------------------------------------

TEST_F(PlannerCostTest, ExtentCountersTrackEveryMutationPath) {
  const auto& counters = db_->extent_counters();
  const schema::Schema& schema = *db_->schema();

  ObjectId s0 = MakeSensor(0, 1);
  ObjectId s1 = MakeSensor(1, 2);
  auto c = db_->CreateObject(world_.calibrated, "C");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(counters.CountClass(world_.sensor), 2u);
  EXPECT_EQ(counters.CountClassExtent(schema, world_.sensor, true), 3u);

  // Reclassify moves the count between exact extents.
  ASSERT_TRUE(db_->Reclassify(s1, world_.calibrated).ok());
  EXPECT_EQ(counters.CountClass(world_.sensor), 1u);
  EXPECT_EQ(counters.CountClass(world_.calibrated), 2u);
  EXPECT_EQ(counters.CountClassExtent(schema, world_.sensor, true), 3u);

  // Deletion (with sub-objects) removes object and child counts.
  GiveZone(s0, 5);
  EXPECT_EQ(counters.CountClass(world_.zone), 1u);
  ASSERT_TRUE(db_->DeleteObject(s0).ok());
  EXPECT_EQ(counters.CountClass(world_.sensor), 0u);
  EXPECT_EQ(counters.CountClass(world_.zone), 0u);

  // Relationships count per association and follow deletion cascades.
  ObjectId hub = *db_->CreateObject(world_.hub, "Hub");
  auto rel = db_->CreateRelationship(world_.feeds, s1, hub);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(counters.CountAssociationExtent(schema, world_.feeds, true), 1u);
  ASSERT_TRUE(db_->DeleteObject(hub).ok());
  EXPECT_EQ(counters.CountAssociationExtent(schema, world_.feeds, true), 0u);

  // Patterns never count: they are invisible to extents.
  core::CreateOptions opts;
  opts.pattern = true;
  ASSERT_TRUE(db_->CreateObject(world_.sensor, "Ghost", opts).ok());
  EXPECT_EQ(counters.CountClass(world_.sensor), 0u);

  // Counters always agree with the materialized extents.
  EXPECT_EQ(counters.CountClassExtent(schema, world_.sensor, true),
            db_->ObjectsOfClass(world_.sensor, true).size());
}

}  // namespace
}  // namespace seed
