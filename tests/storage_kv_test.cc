// KvStore tests: durable map semantics, WAL-based recovery, checkpointing.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "storage/kv_store.h"

namespace seed::storage {
namespace {

class KvStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = ::testing::TempDir() + "/kv." + std::to_string(::getpid()) + "." +
           std::to_string(counter++);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(KvStoreTest, PutGetDelete) {
  KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  ASSERT_TRUE(kv.Put(1, "alpha").ok());
  ASSERT_TRUE(kv.Put(2, "beta").ok());
  EXPECT_EQ(*kv.Get(1), "alpha");
  EXPECT_EQ(*kv.Get(2), "beta");
  EXPECT_TRUE(kv.Contains(1));
  ASSERT_TRUE(kv.Delete(1).ok());
  EXPECT_FALSE(kv.Contains(1));
  EXPECT_TRUE(kv.Get(1).status().IsNotFound());
  EXPECT_EQ(kv.size(), 1u);
}

TEST_F(KvStoreTest, OverwriteReplaces) {
  KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  ASSERT_TRUE(kv.Put(5, "old").ok());
  ASSERT_TRUE(kv.Put(5, "new and much longer than the old value").ok());
  EXPECT_EQ(*kv.Get(5), "new and much longer than the old value");
  EXPECT_EQ(kv.size(), 1u);
}

TEST_F(KvStoreTest, DeleteMissingFails) {
  KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  EXPECT_TRUE(kv.Delete(42).IsNotFound());
}

TEST_F(KvStoreTest, CleanReopenAfterClose) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.Open(dir_).ok());
    ASSERT_TRUE(kv.Put(1, "persisted").ok());
    ASSERT_TRUE(kv.Close().ok());
  }
  KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  EXPECT_EQ(*kv.Get(1), "persisted");
}

TEST_F(KvStoreTest, RecoveryFromWalWithoutCheckpoint) {
  // Simulate a crash: mutate, never Close/Checkpoint, drop the object.
  {
    KvStore kv;
    KvStoreOptions opts;
    opts.sync_on_append = false;
    ASSERT_TRUE(kv.Open(dir_, opts).ok());
    ASSERT_TRUE(kv.Put(1, "one").ok());
    ASSERT_TRUE(kv.Put(2, "two").ok());
    ASSERT_TRUE(kv.Delete(1).ok());
    ASSERT_TRUE(kv.Put(3, "three").ok());
    // Deliberately no Close(): the destructor checkpoints, so instead we
    // re-open a second store over the same dir after simulating the crash
    // by only relying on the WAL contents.
    // To really simulate a crash we copy the files before destruction.
    std::filesystem::create_directories(dir_ + "/crash");
    std::filesystem::copy(dir_ + "/seed.db", dir_ + "/crash/seed.db");
    std::filesystem::copy(dir_ + "/seed.wal", dir_ + "/crash/seed.wal");
  }
  KvStore recovered;
  ASSERT_TRUE(recovered.Open(dir_ + "/crash").ok());
  EXPECT_TRUE(recovered.Get(1).status().IsNotFound());
  EXPECT_EQ(*recovered.Get(2), "two");
  EXPECT_EQ(*recovered.Get(3), "three");
}

TEST_F(KvStoreTest, CheckpointTruncatesWal) {
  KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  ASSERT_TRUE(kv.Put(1, "x").ok());
  EXPECT_GT(*kv.WalBytes(), 0u);
  ASSERT_TRUE(kv.Checkpoint().ok());
  EXPECT_EQ(*kv.WalBytes(), 0u);
  // Data still present after checkpoint.
  EXPECT_EQ(*kv.Get(1), "x");
}

TEST_F(KvStoreTest, ScanSeesEverything) {
  KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(kv.Put(k, "v" + std::to_string(k)).ok());
  }
  std::unordered_map<std::uint64_t, std::string> seen;
  ASSERT_TRUE(kv.Scan([&](std::uint64_t k, std::string_view v) {
                  seen[k] = std::string(v);
                }).ok());
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen[42], "v42");
}

TEST_F(KvStoreTest, LargeValuesSpanPagesViaHeap) {
  KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  std::string big(7000, 'B');
  ASSERT_TRUE(kv.Put(9, big).ok());
  EXPECT_EQ(*kv.Get(9), big);
}

TEST_F(KvStoreTest, ChurnWithRecoveryMatchesModel) {
  Random rng(2024);
  std::unordered_map<std::uint64_t, std::string> model;
  {
    KvStore kv;
    ASSERT_TRUE(kv.Open(dir_).ok());
    for (int step = 0; step < 2000; ++step) {
      std::uint64_t key = rng.Uniform(300);
      double roll = rng.NextDouble();
      if (roll < 0.7) {
        std::string value = rng.Identifier(1 + rng.Uniform(200));
        ASSERT_TRUE(kv.Put(key, value).ok());
        model[key] = value;
      } else if (model.count(key) != 0) {
        ASSERT_TRUE(kv.Delete(key).ok());
        model.erase(key);
      }
      if (step % 500 == 499) {
        ASSERT_TRUE(kv.Checkpoint().ok());
      }
    }
    ASSERT_TRUE(kv.Close().ok());
  }
  KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  EXPECT_EQ(kv.size(), model.size());
  for (const auto& [key, value] : model) {
    EXPECT_EQ(*kv.Get(key), value) << "key " << key;
  }
}

TEST_F(KvStoreTest, OperationsFailWhenClosed) {
  KvStore kv;
  EXPECT_TRUE(kv.Put(1, "x").IsFailedPrecondition());
  EXPECT_TRUE(kv.Get(1).status().IsFailedPrecondition());
  EXPECT_TRUE(kv.Checkpoint().IsFailedPrecondition());
}

}  // namespace
}  // namespace seed::storage
