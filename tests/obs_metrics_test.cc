// Tests for the engine metrics registry (src/obs/metrics.h): histogram
// bucket boundaries, counter wraparound, concurrent increments, stable
// instrument pointers, the enabled toggle, and the JSON export schema.
//
// All tests share the one process-global registry, so every test uses
// names under its own "test.<case>." prefix and restores the enabled
// flag it may have flipped.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace seed::obs {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  // Bucket i (i >= 1) holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Every bucket's lower bound lands in its own bucket, and one less
  // lands in the previous bucket.
  for (std::size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    std::uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(lo - 1), i - 1) << "bucket " << i;
  }
  // Values past the last bucket's range clamp into the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, RecordAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
  for (int i = 0; i < 90; ++i) h.Record(64);
  for (int i = 0; i < 10; ++i) h.Record(4096);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u * 64 + 10u * 4096);
  // The quantile reports the lower bound of the holding bucket.
  EXPECT_EQ(h.ApproxQuantile(0.5), 64u);
  EXPECT_EQ(h.ApproxQuantile(0.99), 4096u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(64)), 0u);
}

TEST(CounterTest, WrapsAroundAtUint64Max) {
  Counter c;
  c.Increment(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<std::uint64_t>::max());
  // Monotonic counters wrap like any unsigned value; consumers diff
  // snapshots, so the wraparound must be silent, not saturating.
  c.Increment(2);
  EXPECT_EQ(c.value(), 1u);
}

TEST(CounterTest, ConcurrentIncrementsLoseNothing) {
  Counter c;
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Record(128);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(128)),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, StablePointersAndResetInPlace) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.registry.stable.total");
  Counter* b = reg.GetCounter("test.registry.stable.total");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(b->value(), 7u);
  // Reset zeroes in place; the registered pointer stays valid.
  reg.Reset();
  EXPECT_EQ(a->value(), 0u);
  a->Increment();
  EXPECT_EQ(reg.FindCounter("test.registry.stable.total")->value(), 1u);
}

TEST(MetricsRegistryTest, FindDoesNotRegister) {
  auto& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.FindCounter("test.registry.never.created"), nullptr);
  EXPECT_EQ(reg.FindHistogram("test.registry.never.created"), nullptr);
  // Get registers; Find then sees it.
  reg.GetCounter("test.registry.find.total")->Increment();
  ASSERT_NE(reg.FindCounter("test.registry.find.total"), nullptr);
  EXPECT_EQ(reg.FindCounter("test.registry.find.total")->value(), 1u);
}

TEST(MetricsRegistryTest, EnabledToggleDropsWrites) {
  ASSERT_TRUE(MetricsEnabled());
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.registry.toggle.total");
  Gauge* g = reg.GetGauge("test.registry.toggle.level");
  Histogram* h = reg.GetHistogram("test.registry.toggle.ns");
  c->Increment();
  SetMetricsEnabled(false);
  c->Increment(100);
  g->Add(5);
  h->Record(42);
  SetMetricsEnabled(true);
  EXPECT_EQ(c->value(), 1u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  c->Increment();
  EXPECT_EQ(c->value(), 2u);
}

TEST(MetricsRegistryTest, ToJsonStableSchema) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test.json.events.total")->Increment(3);
  reg.GetGauge("test.json.sessions.connected")->Set(2);
  reg.GetHistogram("test.json.latency.ns")->Record(100);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.events.total\": 3"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.json.sessions.connected\": 2"),
            std::string::npos)
      << json;
  // Histogram entries carry count/sum/quantiles and non-empty buckets.
  EXPECT_NE(json.find("\"test.json.latency.ns\": {\"count\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(MetricsTest, FormatNanos) {
  EXPECT_EQ(FormatNanos(850), "850ns");
  EXPECT_EQ(FormatNanos(1234000), "1.23ms");
  EXPECT_EQ(FormatNanos(2100000000), "2.10s");
}

}  // namespace
}  // namespace seed::obs
