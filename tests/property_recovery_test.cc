// Crash-recovery property test: after ANY prefix of a random mutation
// stream, a simulated crash (copying seed.db + seed.wal aside without
// closing) followed by recovery must yield exactly the state of that
// prefix — both at the KvStore level and for a full SEED database saved
// through the persistence layer.

#include <gtest/gtest.h>

#include <filesystem>
#include <unordered_map>

#include "common/random.h"
#include "core/persistence.h"
#include "spades/spec_schema.h"
#include "storage/kv_store.h"

namespace seed {
namespace {

std::string FreshDir(const char* tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/" + tag + "." +
                    std::to_string(::getpid()) + "." +
                    std::to_string(counter++);
  std::filesystem::create_directories(dir);
  return dir;
}

void CrashCopy(const std::string& from, const std::string& to) {
  std::filesystem::create_directories(to);
  std::filesystem::copy(from + "/seed.db", to + "/seed.db");
  std::filesystem::copy(from + "/seed.wal", to + "/seed.wal");
}

class KvRecoveryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KvRecoveryPropertyTest, AnyCrashPointRecoversExactPrefixState) {
  std::string dir = FreshDir("kvcrash");
  Random rng(GetParam() * 7901 + 5);
  std::unordered_map<std::uint64_t, std::string> model;
  std::vector<std::string> crash_dirs;
  std::vector<std::unordered_map<std::uint64_t, std::string>> crash_models;
  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir).ok());
    for (int step = 0; step < 400; ++step) {
      std::uint64_t key = rng.Uniform(64);
      if (rng.NextDouble() < 0.75) {
        std::string value = rng.Identifier(1 + rng.Uniform(100));
        ASSERT_TRUE(kv.Put(key, value).ok());
        model[key] = value;
      } else if (model.count(key) != 0) {
        ASSERT_TRUE(kv.Delete(key).ok());
        model.erase(key);
      }
      if (step % 80 == 40) {  // periodic checkpoint, mid-stream
        ASSERT_TRUE(kv.Checkpoint().ok());
      }
      if (step % 100 == 99) {  // crash point: snapshot files + model
        std::string crash = FreshDir("kvcrash_pt");
        CrashCopy(dir, crash);
        crash_dirs.push_back(crash);
        crash_models.push_back(model);
      }
    }
    // Abandon without Close (the destructor checkpoints the original dir,
    // which is irrelevant to the crash copies).
  }
  for (size_t i = 0; i < crash_dirs.size(); ++i) {
    storage::KvStore recovered;
    ASSERT_TRUE(recovered.Open(crash_dirs[i]).ok()) << "crash point " << i;
    EXPECT_EQ(recovered.size(), crash_models[i].size());
    for (const auto& [key, value] : crash_models[i]) {
      auto got = recovered.Get(key);
      ASSERT_TRUE(got.ok()) << "crash point " << i << " key " << key;
      EXPECT_EQ(*got, value);
    }
    ASSERT_TRUE(recovered.Close().ok());
    std::filesystem::remove_all(crash_dirs[i]);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvRecoveryPropertyTest,
                         ::testing::Range(0, 4));

class DatabaseRecoveryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DatabaseRecoveryPropertyTest, IncrementalSavesSurviveCrash) {
  std::string dir = FreshDir("dbcrash");
  auto fig3 = *spades::BuildFig3Schema();
  core::Database db(fig3.schema);
  Random rng(GetParam() * 33301 + 9);

  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir).ok());
  ASSERT_TRUE(core::Persistence::SaveFull(db, &kv).ok());
  db.ClearChangeTracking();

  std::vector<ObjectId> objects;
  for (int step = 0; step < 120; ++step) {
    if (objects.empty() || rng.NextDouble() < 0.6) {
      auto id = db.CreateObject(fig3.ids.action,
                                "A" + std::to_string(step));
      if (id.ok()) objects.push_back(*id);
    } else if (rng.NextDouble() < 0.5) {
      ObjectId victim = rng.Pick(objects);
      auto desc = db.SubObjects(victim, "Description");
      ObjectId d;
      if (desc.empty()) {
        auto created = db.CreateSubObject(victim, "Description");
        if (!created.ok()) continue;
        d = *created;
      } else {
        d = desc[0];
      }
      (void)db.SetValue(d, core::Value::String(rng.Identifier(10)));
    } else {
      ObjectId victim = rng.Pick(objects);
      if (db.GetObject(victim).ok()) (void)db.DeleteObject(victim);
    }
    ASSERT_TRUE(core::Persistence::SaveChanges(&db, &kv).ok());
  }
  // Crash: copy files aside with dirty buffer-pool pages unflushed.
  std::string crash = FreshDir("dbcrash_pt");
  CrashCopy(dir, crash);

  storage::KvStore recovered_kv;
  ASSERT_TRUE(recovered_kv.Open(crash).ok());
  auto recovered = core::Persistence::Load(&recovered_kv);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->num_live_objects(), db.num_live_objects());
  EXPECT_EQ((*recovered)->num_live_relationships(),
            db.num_live_relationships());
  EXPECT_TRUE((*recovered)->AuditConsistency().clean());
  for (ObjectId root : db.AllIndependentObjects()) {
    auto obj = db.GetObject(root);
    auto found = (*recovered)->FindObjectByName((*obj)->name);
    EXPECT_TRUE(found.ok()) << (*obj)->name;
  }
  std::filesystem::remove_all(crash);
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatabaseRecoveryPropertyTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace seed
