// Long-lived project simulation: several specification sessions with
// version snapshots in between, full persistence round-trips mid-project,
// pattern templates shared across sessions, and a final audit — the
// closest test to how the paper expects SEED to be used over weeks of a
// software project.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/persistence.h"
#include "core/stats.h"
#include "pattern/pattern_manager.h"
#include "spades/spec_schema.h"
#include "version/version_io.h"
#include "version/version_manager.h"

namespace seed {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;
using version::VersionId;
using version::VersionManager;

TEST(LifecycleTest, MultiSessionProjectWithPersistence) {
  std::string dir = ::testing::TempDir() + "/lifecycle." +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto fig3 = *BuildFig3Schema();
  std::vector<std::string> version_log;

  // ---- Session 1: rough sketch, everything vague --------------------------
  {
    Database db(fig3.schema);
    VersionManager vm(&db);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          db.CreateObject(fig3.ids.thing, "Item_" + std::to_string(i)).ok());
    }
    // Vague stage: many covering findings, zero consistency violations.
    EXPECT_EQ(db.CheckCompleteness().Of(core::Rule::kCovering).size(), 8u);
    ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("1.0")).ok());
    version_log.push_back("1.0");

    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir).ok());
    ASSERT_TRUE(core::Persistence::SaveFull(db, &kv).ok());
    ASSERT_TRUE(version::VersionPersistence::Save(vm, &kv).ok());
    ASSERT_TRUE(kv.Close().ok());
  }

  // ---- Session 2 (new process): refinement ---------------------------------
  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir).ok());
    auto db = std::move(core::Persistence::Load(&kv)).value();
    VersionManager vm(db.get());
    ASSERT_TRUE(version::VersionPersistence::Load(&vm, &kv).ok());
    EXPECT_EQ(vm.current_basis().ToString(), "1.0");

    // Items 0-3 become actions, 4-7 data; wire dataflows.
    for (int i = 0; i < 4; ++i) {
      ObjectId item = *db->FindObjectByName("Item_" + std::to_string(i));
      ASSERT_TRUE(db->Reclassify(item, fig3.ids.action).ok());
    }
    for (int i = 4; i < 8; ++i) {
      ObjectId item = *db->FindObjectByName("Item_" + std::to_string(i));
      ASSERT_TRUE(db->Reclassify(item, fig3.ids.data).ok());
    }
    for (int i = 0; i < 4; ++i) {
      ObjectId action = *db->FindObjectByName("Item_" + std::to_string(i));
      ObjectId data = *db->FindObjectByName("Item_" + std::to_string(i + 4));
      ASSERT_TRUE(
          db->CreateRelationship(fig3.ids.access, data, action).ok());
    }
    EXPECT_TRUE(db->CheckCompleteness().Of(core::Rule::kCovering).size() ==
                4u);  // the 4 Access flows still vague
    ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("2.0")).ok());
    version_log.push_back("2.0");

    ASSERT_TRUE(core::Persistence::SaveFull(*db, &kv).ok());
    ASSERT_TRUE(version::VersionPersistence::Save(vm, &kv).ok());
    ASSERT_TRUE(kv.Close().ok());
  }

  // ---- Session 3: precision + shared template ------------------------------
  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir).ok());
    auto db = std::move(core::Persistence::Load(&kv)).value();
    VersionManager vm(db.get());
    ASSERT_TRUE(version::VersionPersistence::Load(&vm, &kv).ok());
    pattern::PatternManager pm(db.get());

    // Flows become reads; data becomes inputs.
    for (int i = 4; i < 8; ++i) {
      ObjectId data = *db->FindObjectByName("Item_" + std::to_string(i));
      ASSERT_TRUE(db->Reclassify(data, fig3.ids.input_data).ok());
    }
    for (RelationshipId rid :
         db->RelationshipsOfAssociation(fig3.ids.access, false)) {
      ASSERT_TRUE(db->ReclassifyRelationship(rid, fig3.ids.read).ok());
    }
    // A shared description template for all actions.
    core::CreateOptions opts;
    opts.pattern = true;
    ObjectId tpl = *db->CreateObject(fig3.ids.action, "Template", opts);
    ObjectId tpl_desc = *db->CreateSubObject(tpl, "Description");
    ASSERT_TRUE(
        db->SetValue(tpl_desc, Value::String("standard step")).ok());
    for (int i = 0; i < 4; ++i) {
      ObjectId action = *db->FindObjectByName("Item_" + std::to_string(i));
      ASSERT_TRUE(pm.Inherit(action, tpl).ok());
      EXPECT_EQ(pm.EffectiveValue(action, "Description")->as_string(),
                "standard step");
    }
    // Covering satisfied everywhere now.
    EXPECT_TRUE(db->CheckCompleteness().Of(core::Rule::kCovering).empty());
    ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("3.0")).ok());
    version_log.push_back("3.0");

    // History views still reconstruct the vague past.
    auto v1 = vm.MaterializeView(*VersionId::Parse("1.0"));
    ASSERT_TRUE(v1.ok());
    ObjectId old_item = *(*v1)->FindObjectByName("Item_0");
    EXPECT_EQ((*(*v1)->GetObject(old_item))->cls, fig3.ids.thing);

    core::DatabaseStats stats = core::CollectStats(*db);
    // 4 real actions + the pattern template (stats count patterns too;
    // the pattern_items counter separates them).
    EXPECT_EQ(stats.objects_per_class["Action"], 5u);
    EXPECT_EQ(stats.objects_per_class["InputData"], 4u);
    EXPECT_EQ(stats.pattern_items, 2u);  // template + its description

    EXPECT_TRUE(db->AuditConsistency().clean());
    ASSERT_TRUE(core::Persistence::SaveFull(*db, &kv).ok());
    ASSERT_TRUE(version::VersionPersistence::Save(vm, &kv).ok());
    ASSERT_TRUE(kv.Close().ok());
  }

  // ---- Final reopen: everything survived three process generations --------
  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir).ok());
    auto db = std::move(core::Persistence::Load(&kv)).value();
    VersionManager vm(db.get());
    ASSERT_TRUE(version::VersionPersistence::Load(&vm, &kv).ok());

    EXPECT_EQ(vm.num_versions(), version_log.size());
    for (const std::string& v : version_log) {
      EXPECT_TRUE(vm.HasVersion(*VersionId::Parse(v))) << v;
    }
    EXPECT_TRUE(db->AuditConsistency().clean());
    EXPECT_EQ(db->ObjectsOfClass(fig3.ids.thing).size(), 8u);
    // Version chain parents are intact: 3.0 -> 2.0 -> 1.0.
    EXPECT_EQ(vm.ParentOf(*VersionId::Parse("3.0"))->ToString(), "2.0");
    EXPECT_EQ(vm.ParentOf(*VersionId::Parse("2.0"))->ToString(), "1.0");
  }
  std::filesystem::remove_all(dir);
}

TEST(LifecycleTest, TransitionRulesGuardReleaseHistory) {
  // A release policy as a history-sensitive rule: no release version may
  // have open covering findings (everything must be precise by release).
  auto fig3 = *BuildFig3Schema();
  Database db(fig3.schema);
  VersionManager vm(&db);
  vm.AddTransitionRule(
      "release-precision",
      [](const Database&, const Database& succ) {
        auto findings = succ.CheckCompleteness().Of(core::Rule::kCovering);
        if (!findings.empty()) {
          return Status::FailedPrecondition(
              std::to_string(findings.size()) +
              " items are still vague; refine before releasing");
        }
        return Status::OK();
      });

  (void)*db.CreateObject(fig3.ids.thing, "Vague");
  Status veto = vm.CreateVersion(*VersionId::Parse("1.0"));
  EXPECT_TRUE(veto.IsConsistencyViolation());
  EXPECT_NE(veto.message().find("still vague"), std::string::npos);

  ObjectId item = *db.FindObjectByName("Vague");
  ASSERT_TRUE(db.Reclassify(item, fig3.ids.action).ok());
  EXPECT_TRUE(vm.CreateVersion(*VersionId::Parse("1.0")).ok());
}

}  // namespace
}  // namespace seed
