// Parallel-execution subsystem tests: worker-pool semantics (morsel
// coverage, nested submit/await, publication at the Await barrier),
// ExecPolicy gating, and the engine's core parallel contract — query
// results are identical at every SEED_EXEC_THREADS setting and across
// repeated parallel runs (determinism), for join pipelines and for
// scan/residual selection paths. Also pins the EstimateRange pro-rating
// fix: keys outside [lo, hi] must never inflate a range estimate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "exec/exec_policy.h"
#include "exec/worker_pool.h"
#include "index/index_manager.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "schema/schema_builder.h"

namespace seed {
namespace {

using core::Database;
using core::Value;
using exec::ExecPolicy;
using exec::TaskGroup;
using exec::WorkerPool;
using query::Planner;
using query::Predicate;
using query::QueryRelation;

// --- Worker pool -------------------------------------------------------------

TEST(WorkerPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  WorkerPool::Global().ParallelFor(8, kN, 64,
                                   [&](std::size_t begin, std::size_t end) {
                                     for (std::size_t i = begin; i < end; ++i) {
                                       touched[i].fetch_add(1);
                                     }
                                   });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ParallelForSingleLaneRunsOneSpanInline) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  WorkerPool::Global().ParallelFor(1, 5000, 64,
                                   [&](std::size_t begin, std::size_t end) {
                                     spans.push_back({begin, end});
                                   });
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].first, 0u);
  EXPECT_EQ(spans[0].second, 5000u);
}

TEST(WorkerPool, MorselBoundariesAreGrainAligned) {
  std::atomic<bool> aligned{true};
  WorkerPool::Global().ParallelFor(4, 10000, 256,
                                   [&](std::size_t begin, std::size_t end) {
                                     if (begin % 256 != 0 || end > 10000) {
                                       aligned = false;
                                     }
                                   });
  EXPECT_TRUE(aligned.load());
}

TEST(WorkerPool, AwaitPublishesTaskWrites) {
  WorkerPool& pool = WorkerPool::Global();
  pool.EnsureWorkers(2);
  std::vector<int> results(64, 0);
  TaskGroup group;
  for (int t = 0; t < 64; ++t) {
    pool.Submit(&group, [&results, t] { results[t] = t + 1; });
  }
  pool.Await(&group);
  for (int t = 0; t < 64; ++t) {
    ASSERT_EQ(results[t], t + 1);
  }
}

TEST(WorkerPool, NestedParallelForInsideTasksDoesNotDeadlock) {
  WorkerPool& pool = WorkerPool::Global();
  pool.EnsureWorkers(3);
  std::atomic<long> total{0};
  TaskGroup group;
  for (int t = 0; t < 8; ++t) {
    pool.Submit(&group, [&total] {
      // A coarse task that itself fans out into morsels — the shape a
      // forked plan subtree running a partitioned join produces.
      WorkerPool::Global().ParallelFor(
          4, 1000, 100, [&total](std::size_t begin, std::size_t end) {
            total.fetch_add(static_cast<long>(end - begin));
          });
    });
  }
  pool.Await(&group);
  EXPECT_EQ(total.load(), 8 * 1000);
}

// --- ExecPolicy --------------------------------------------------------------

TEST(ExecPolicy, SingleThreadDisablesEveryParallelPath) {
  ExecPolicy policy;
  policy.threads = 1;
  EXPECT_FALSE(policy.parallel());
  EXPECT_FALSE(policy.ShouldPartition(1u << 20));
}

TEST(ExecPolicy, SmallInputsStaySequentialAtAnyThreadCount) {
  ExecPolicy policy;
  policy.threads = 8;
  EXPECT_TRUE(policy.parallel());
  EXPECT_FALSE(policy.ShouldPartition(policy.min_parallel_rows - 1));
  EXPECT_TRUE(policy.ShouldPartition(policy.min_parallel_rows));
}

TEST(ExecPolicy, SetDefaultThreadsClampsAndRoundTrips) {
  const int prior = exec::DefaultThreads();
  exec::SetDefaultThreads(3);
  EXPECT_EQ(exec::DefaultThreads(), 3);
  EXPECT_EQ(ExecPolicy::Default().threads, 3);
  exec::SetDefaultThreads(0);
  EXPECT_EQ(exec::DefaultThreads(), 1);
  exec::SetDefaultThreads(100000);
  EXPECT_EQ(exec::DefaultThreads(), 256);
  exec::SetDefaultThreads(prior);
}

// --- Thread-count invariance of query results --------------------------------

/// A 4-binder chain world big enough to clear every partition threshold:
/// n objects per class, n relationships per hop (near-permutation
/// wiring, so intermediates stay ~n rows and the hash/INL/tuple paths
/// all see real work).
struct ChainWorld {
  std::unique_ptr<Database> db;
  std::vector<QueryRelation> inputs;
  std::vector<Planner::PipelineHop> hops;
};

ChainWorld BuildChainWorld(int n) {
  schema::SchemaBuilder b("ParChain");
  std::vector<ClassId> cls;
  for (int i = 0; i < 4; ++i) {
    cls.push_back(b.AddIndependentClass("X" + std::to_string(i),
                                        schema::ValueType::kNone));
  }
  std::vector<AssociationId> assocs;
  for (int i = 0; i < 3; ++i) {
    assocs.push_back(b.AddAssociation(
        "E" + std::to_string(i),
        schema::Role{"l", cls[i], schema::Cardinality::Any()},
        schema::Role{"r", cls[i + 1], schema::Cardinality::Any()}));
  }
  ChainWorld world{std::make_unique<Database>(*b.Build()), {}, {}};
  std::vector<std::vector<ObjectId>> objs(4);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < n; ++i) {
      objs[c].push_back(*world.db->CreateObject(
          cls[c], "X" + std::to_string(c) + "_" + std::to_string(i)));
    }
  }
  const int mul[3] = {7, 5, 3};
  const int add[3] = {3, 1, 2};
  for (int h = 0; h < 3; ++h) {
    for (int i = 0; i < n; ++i) {
      (void)world.db->CreateRelationship(
          assocs[h], objs[h][i], objs[h + 1][(i * mul[h] + add[h]) % n]);
    }
  }
  for (int c = 0; c < 4; ++c) {
    QueryRelation rel;
    rel.attributes = {"b" + std::to_string(c)};
    for (ObjectId id : objs[c]) rel.tuples.push_back({id});
    world.inputs.push_back(std::move(rel));
  }
  for (int h = 0; h < 3; ++h) {
    world.hops.push_back({assocs[h], 0, cls[h], cls[h + 1]});
  }
  return world;
}

QueryRelation RunChain(const ChainWorld& world, int threads) {
  Planner planner(world.db.get());
  ExecPolicy policy = planner.exec_policy();
  policy.threads = threads;
  planner.set_exec_policy(policy);
  auto out = planner.JoinPipeline(world.inputs, world.hops);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return *out;
}

TEST(ParallelExecution, JoinPipelineIdenticalAcrossThreadCounts) {
  ChainWorld world = BuildChainWorld(6000);
  QueryRelation base = RunChain(world, 1);
  ASSERT_GT(base.size(), 0u);
  for (int threads : {2, 8}) {
    QueryRelation parallel = RunChain(world, threads);
    EXPECT_EQ(parallel.attributes, base.attributes);
    ASSERT_EQ(parallel.tuples, base.tuples) << "threads=" << threads;
  }
}

TEST(ParallelExecution, RepeatedParallelRunsAreDeterministic) {
  ChainWorld world = BuildChainWorld(5000);
  QueryRelation first = RunChain(world, 8);
  for (int run = 0; run < 3; ++run) {
    QueryRelation again = RunChain(world, 8);
    ASSERT_EQ(again.tuples, first.tuples) << "run " << run;
  }
}

TEST(ParallelExecution, ExplicitBushySplitIdenticalAcrossThreadCounts) {
  ChainWorld world = BuildChainWorld(5000);
  auto run_split = [&](int threads) {
    Planner planner(world.db.get());
    ExecPolicy policy = planner.exec_policy();
    policy.threads = threads;
    // Force subtree forking for any joined-segment pair so the
    // concurrent plan-tree path executes even when the DP's cost
    // estimates would not clear the default floor.
    policy.min_parallel_cost = 0.0;
    planner.set_exec_policy(policy);
    auto out = planner.JoinPipelineSplit(world.inputs, world.hops,
                                         /*m=*/1, /*tuple_join=*/true);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return *out;
  };
  QueryRelation base = run_split(1);
  ASSERT_GT(base.size(), 0u);
  QueryRelation parallel = run_split(8);
  ASSERT_EQ(parallel.tuples, base.tuples);
}

TEST(ParallelExecution, ScanSelectionIdenticalAcrossThreadCounts) {
  schema::SchemaBuilder b("ScanWorld");
  ClassId sensor = b.AddIndependentClass("Sensor", schema::ValueType::kInt);
  Database db(*b.Build());
  for (int i = 0; i < 10000; ++i) {
    ObjectId id = *db.CreateObject(sensor, "S" + std::to_string(i));
    (void)db.SetValue(id, Value::Int(i % 977));
  }
  Predicate p = Predicate::IntGreater(400);
  auto run = [&](int threads) {
    Planner planner(&db);
    ExecPolicy policy = planner.exec_policy();
    policy.threads = threads;
    planner.set_exec_policy(policy);
    return planner.SelectIds(sensor, p);
  };
  std::vector<ObjectId> base = run(1);
  ASSERT_GT(base.size(), 0u);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
}

// --- EstimateRange pro-rating regression -------------------------------------

class EstimateRangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema::SchemaBuilder b("RangeWorld");
    sensor_ = b.AddIndependentClass("Sensor", schema::ValueType::kInt);
    db_ = std::make_unique<Database>(*b.Build());
    // 10000 objects with 10000 distinct keys 0..9999.
    for (int i = 0; i < 10000; ++i) {
      ObjectId id = *db_->CreateObject(sensor_, "S" + std::to_string(i));
      ASSERT_TRUE(db_->SetValue(id, Value::Int(i)).ok());
    }
    ASSERT_TRUE(db_->CreateAttributeIndex({sensor_, ""}).ok());
    index_ = db_->attribute_indexes().Find({sensor_, ""});
    ASSERT_NE(index_, nullptr);
    ASSERT_EQ(index_->num_entries(), 10000u);
  }

  std::unique_ptr<Database> db_;
  ClassId sensor_;
  const index::AttributeIndex* index_ = nullptr;
};

TEST_F(EstimateRangeTest, WideEmptyRangeEstimatesZero) {
  // Every key sits below the range: the pre-fix pro-rating counted all
  // remaining keys of the index and answered ~num_entries here.
  EXPECT_EQ(index_->EstimateRange(Value::Int(20000), true,
                                  Value::Int(1000000000), true),
            0.0);
  // Zero probe budget used to answer num_entries even for a provably
  // empty range.
  EXPECT_EQ(index_->EstimateRange(Value::Int(20000), true,
                                  Value::Int(1000000000), true,
                                  /*probe_limit=*/0),
            0.0);
}

TEST_F(EstimateRangeTest, NarrowTailRangeIsCountedExactly) {
  // 99 keys (9901..9999) — more than the 64-key probe budget, fewer
  // than twice that. The bounded extra walk makes this exact; the old
  // estimator pro-rated over all ~9936 unvisited keys and answered
  // ~num_entries (off by 100x).
  EXPECT_EQ(index_->EstimateRange(Value::Int(9900), false,
                                  Value::Int(1000000000), true),
            99.0);
}

TEST_F(EstimateRangeTest, BackwardsAndDegenerateRangesAreEmpty) {
  EXPECT_EQ(index_->EstimateRange(Value::Int(500), true, Value::Int(100),
                                  true),
            0.0);
  EXPECT_EQ(index_->EstimateRange(Value::Int(500), false, Value::Int(500),
                                  true),
            0.0);
  EXPECT_EQ(index_->EstimateRange(Value::Int(500), true, Value::Int(500),
                                  true),
            1.0);
}

TEST_F(EstimateRangeTest, WideFullRangeStillEstimatesHigh) {
  // The safe direction is preserved: a genuinely wide range (10000 keys,
  // uniform density) still pro-rates to the full entry count.
  double est = index_->EstimateRange(Value::Int(0), true, Value::Int(9999),
                                     true);
  EXPECT_GE(est, 9000.0);
  EXPECT_LE(est, 10000.0);
}

TEST_F(EstimateRangeTest, ShortRangesAreExactWithinBudget) {
  EXPECT_EQ(index_->EstimateRange(Value::Int(10), true, Value::Int(19),
                                  true),
            10.0);
  EXPECT_EQ(index_->EstimateRange(Value::Int(10), false, Value::Int(19),
                                  false),
            8.0);
}

}  // namespace
}  // namespace seed
