// SPADES mini-tool tests: the SEED-backed tool and the direct baseline
// must agree on query results over the same session; SEED additionally
// enforces consistency and reports completeness.

#include <gtest/gtest.h>

#include "spades/spec_tool.h"
#include "spades/workload.h"

namespace seed::spades {
namespace {

class SpadesToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto seed_tool = SeedSpecTool::Create();
    ASSERT_TRUE(seed_tool.ok());
    seed_ = std::move(*seed_tool);
    direct_ = std::make_unique<DirectSpecTool>();
  }

  std::unique_ptr<SeedSpecTool> seed_;
  std::unique_ptr<DirectSpecTool> direct_;
};

TEST_F(SpadesToolsTest, BasicSessionOnBothTools) {
  for (SpecTool* tool : {static_cast<SpecTool*>(seed_.get()),
                         static_cast<SpecTool*>(direct_.get())}) {
    ASSERT_TRUE(tool->AddAction("Sensor").ok()) << tool->name();
    ASSERT_TRUE(tool->AddThing("Alarms").ok());
    ASSERT_TRUE(tool->RefineThingToData("Alarms").ok());
    ASSERT_TRUE(tool->AddFlow("Sensor", "Alarms", FlowKind::kUnknown).ok());
    ASSERT_TRUE(tool->RefineDataToInput("Alarms").ok());
    ASSERT_TRUE(tool->RefineFlow("Sensor", "Alarms", FlowKind::kRead).ok());
    ASSERT_TRUE(tool->SetDescription("Sensor", "polls hardware").ok());

    auto desc = tool->GetDescription("Sensor");
    ASSERT_TRUE(desc.ok());
    EXPECT_EQ(*desc, "polls hardware");
    auto read = tool->DataReadBy("Sensor");
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(read->size(), 1u);
    EXPECT_EQ((*read)[0], "Alarms");
    auto accessors = tool->ActionsAccessing("Alarms");
    ASSERT_TRUE(accessors.ok());
    ASSERT_EQ(accessors->size(), 1u);
    EXPECT_EQ((*accessors)[0], "Sensor");
  }
}

TEST_F(SpadesToolsTest, SeedToolEnforcesConsistency) {
  ASSERT_TRUE(seed_->AddThing("Alarms").ok());
  ASSERT_TRUE(seed_->AddAction("Sensor").ok());
  // A vague Thing cannot take part in a dataflow yet; the direct tool
  // happily accepts the same operation (this is the flexibility SEED buys).
  EXPECT_TRUE(seed_->AddFlow("Sensor", "Alarms", FlowKind::kUnknown)
                  .IsConsistencyViolation());
  ASSERT_TRUE(direct_->AddThing("Alarms").ok());
  ASSERT_TRUE(direct_->AddAction("Sensor").ok());
  EXPECT_TRUE(direct_->AddFlow("Sensor", "Alarms", FlowKind::kUnknown).ok());
}

TEST_F(SpadesToolsTest, SeedToolTracksCompleteness) {
  ASSERT_TRUE(seed_->AddThing("Mystery").ok());
  auto incomplete = seed_->CountIncomplete();
  ASSERT_TRUE(incomplete.ok());
  EXPECT_GT(*incomplete, 0u);  // covering Thing + unflowed data
  // The direct tool has no notion of completeness.
  EXPECT_EQ(*direct_->CountIncomplete(), 0u);
}

TEST_F(SpadesToolsTest, DuplicateFlowRejectedOnlyBySeed) {
  ASSERT_TRUE(seed_->AddData("D").ok());
  ASSERT_TRUE(seed_->AddAction("A").ok());
  ASSERT_TRUE(seed_->AddFlow("A", "D", FlowKind::kUnknown).ok());
  EXPECT_TRUE(seed_->AddFlow("A", "D", FlowKind::kUnknown)
                  .IsConsistencyViolation());
}

TEST_F(SpadesToolsTest, ContainmentCycleRejectedOnlyBySeed) {
  for (const char* name : {"A", "B"}) {
    ASSERT_TRUE(seed_->AddAction(name).ok());
    ASSERT_TRUE(direct_->AddAction(name).ok());
  }
  ASSERT_TRUE(seed_->Contain("A", "B").ok());
  EXPECT_TRUE(seed_->Contain("B", "A").IsConsistencyViolation());
  // The old tool accepts the cycle silently.
  ASSERT_TRUE(direct_->Contain("A", "B").ok());
  EXPECT_TRUE(direct_->Contain("B", "A").ok());
}

TEST_F(SpadesToolsTest, WorkloadRunsCleanOnBothTools) {
  SessionParams params;
  params.num_actions = 20;
  params.num_data = 20;
  params.num_queries = 30;

  auto seed_stats = RunSession(seed_.get(), params);
  ASSERT_TRUE(seed_stats.ok()) << seed_stats.status().ToString();
  auto direct_stats = RunSession(direct_.get(), params);
  ASSERT_TRUE(direct_stats.ok()) << direct_stats.status().ToString();

  EXPECT_EQ(seed_stats->mutations, direct_stats->mutations);
  EXPECT_EQ(seed_stats->queries, direct_stats->queries);
  // SEED finds real incompleteness in the generated spec; the direct tool
  // reports nothing.
  EXPECT_GT(seed_stats->incomplete_findings, 0u);
  EXPECT_EQ(direct_stats->incomplete_findings, 0u);
}

TEST_F(SpadesToolsTest, WorkloadQueriesAgreeAcrossTools) {
  SessionParams params;
  params.num_actions = 15;
  params.num_data = 15;
  params.num_queries = 0;
  ASSERT_TRUE(RunSession(seed_.get(), params).ok());
  ASSERT_TRUE(RunSession(direct_.get(), params).ok());

  for (int i = 0; i < 15; ++i) {
    std::string action = "Action_" + std::to_string(i);
    auto a = seed_->DataReadBy(action);
    auto b = direct_->DataReadBy(action);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << action;
  }
  for (int i = 0; i < 15; ++i) {
    std::string data = "Data_" + std::to_string(i);
    auto a = seed_->ActionsAccessing(data);
    auto b = direct_->ActionsAccessing(data);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << data;
  }
}

TEST_F(SpadesToolsTest, SeedDatabaseStaysConsistentThroughWorkload) {
  SessionParams params;
  params.num_actions = 25;
  params.num_data = 25;
  ASSERT_TRUE(RunSession(seed_.get(), params).ok());
  EXPECT_TRUE(seed_->database()->AuditConsistency().clean());
}

TEST_F(SpadesToolsTest, UnknownNamesFailCleanly) {
  EXPECT_TRUE(seed_->SetDescription("Nope", "x").IsNotFound());
  EXPECT_TRUE(seed_->GetDescription("Nope").status().IsNotFound());
  EXPECT_TRUE(seed_->DataReadBy("Nope").status().IsNotFound());
  EXPECT_TRUE(direct_->GetDescription("Nope").status().IsNotFound());
  EXPECT_TRUE(
      seed_->RefineFlow("A", "B", FlowKind::kRead).IsNotFound());
}

}  // namespace
}  // namespace seed::spades
