// Version layer tests: decimal ids, delta snapshots, version views
// (the paper's Fig. 4 scenario), alternatives, history navigation,
// deletion rules, schema versioning, persistence of the version store.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/persistence.h"
#include "schema/schema_builder.h"
#include "spades/spec_schema.h"
#include "version/version_io.h"
#include "version/version_manager.h"

namespace seed::version {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;

// --- VersionId ---------------------------------------------------------------

TEST(VersionIdTest, ParseAndPrint) {
  auto v = VersionId::Parse("2.0");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->components().size(), 2u);
  EXPECT_EQ(v->ToString(), "2.0");
  EXPECT_EQ(VersionId::Parse("1.0.1")->ToString(), "1.0.1");
  EXPECT_EQ(VersionId().ToString(), "<none>");
}

TEST(VersionIdTest, ParseErrors) {
  EXPECT_FALSE(VersionId::Parse("").ok());
  EXPECT_FALSE(VersionId::Parse("1..0").ok());
  EXPECT_FALSE(VersionId::Parse("1.a").ok());
  EXPECT_FALSE(VersionId::Parse(".1").ok());
  EXPECT_FALSE(VersionId::Parse("99999999999").ok());
}

TEST(VersionIdTest, OrderingIsLexicographic) {
  EXPECT_LT(*VersionId::Parse("1.0"), *VersionId::Parse("1.1"));
  EXPECT_LT(*VersionId::Parse("1.1"), *VersionId::Parse("2.0"));
  EXPECT_LT(*VersionId::Parse("1.0"), *VersionId::Parse("1.0.1"));
}

TEST(VersionIdTest, SuccessorsAndChildren) {
  VersionId v = *VersionId::Parse("1.0");
  EXPECT_EQ(v.IncrementLast().ToString(), "1.1");
  EXPECT_EQ(v.Child(1).ToString(), "1.0.1");
}

TEST(VersionIdTest, CodecRoundTrip) {
  VersionId v = *VersionId::Parse("3.1.4");
  Encoder enc;
  v.EncodeTo(&enc);
  Decoder dec(enc.bytes());
  auto decoded = VersionId::Decode(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, v);
}

// --- VersionManager ----------------------------------------------------------

class VersionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
    vm_ = std::make_unique<VersionManager>(db_.get());
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<VersionManager> vm_;
};

TEST_F(VersionTest, FirstAutoVersionIsOneDotZero) {
  (void)*db_->CreateObject(ids_.action, "AlarmHandler");
  auto v = vm_->CreateVersion();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), "1.0");
  EXPECT_EQ(vm_->current_basis(), *v);
  EXPECT_EQ(vm_->num_versions(), 1u);
}

TEST_F(VersionTest, ExplicitPaperStyleNumbering) {
  (void)*db_->CreateObject(ids_.action, "AlarmHandler");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  (void)*db_->CreateObject(ids_.action, "OperatorAlert");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());
  EXPECT_EQ(*vm_->ParentOf(*VersionId::Parse("2.0")),
            *VersionId::Parse("1.0"));
}

TEST_F(VersionTest, DuplicateVersionIdRejected) {
  (void)*db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  EXPECT_TRUE(
      vm_->CreateVersion(*VersionId::Parse("1.0")).IsAlreadyExists());
}

TEST_F(VersionTest, DeltaContainsOnlyChangedItems) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ObjectId b = *db_->CreateObject(ids_.action, "B");
  (void)b;
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  // Only touch A.
  ASSERT_TRUE(db_->Rename(a, "A2").ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());

  const VersionRecord* rec = *vm_->GetRecord(*VersionId::Parse("2.0"));
  EXPECT_EQ(rec->changes.size(), 1u);
  const VersionRecord* first = *vm_->GetRecord(*VersionId::Parse("1.0"));
  EXPECT_EQ(first->changes.size(), 2u);
}

TEST_F(VersionTest, Fig4Scenario) {
  // Version 1.0: AlarmHandler with description "Handles alarms".
  ObjectId handler = *db_->CreateObject(ids_.action, "AlarmHandler");
  ObjectId desc = *db_->CreateSubObject(handler, "Description");
  ASSERT_TRUE(db_->SetValue(desc, Value::String("Handles alarms")).ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());

  // Version 2.0: refined description.
  ASSERT_TRUE(db_->SetValue(
                     desc, Value::String(
                               "Handles alarms derived from ProcessData"))
                  .ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());

  // Current: refined again, plus a new relationship.
  ASSERT_TRUE(
      db_->SetValue(desc, Value::String("Generates alarms from process "
                                        "data, triggers Operator Alert"))
          .ok());
  ObjectId alarms = *db_->CreateObject(ids_.input_data, "Alarms");
  (void)*db_->CreateRelationship(ids_.read, alarms, handler);

  // Views reconstruct each historical description (Fig. 4b/4c).
  auto v1 = vm_->MaterializeView(*VersionId::Parse("1.0"));
  ASSERT_TRUE(v1.ok());
  ObjectId v1desc = *(*v1)->FindObjectByName("AlarmHandler.Description");
  EXPECT_EQ((*(*v1)->GetObject(v1desc))->value.as_string(),
            "Handles alarms");
  EXPECT_TRUE((*v1)->FindObjectByName("Alarms").status().IsNotFound());

  auto v2 = vm_->MaterializeView(*VersionId::Parse("2.0"));
  ASSERT_TRUE(v2.ok());
  ObjectId v2desc = *(*v2)->FindObjectByName("AlarmHandler.Description");
  EXPECT_EQ((*(*v2)->GetObject(v2desc))->value.as_string(),
            "Handles alarms derived from ProcessData");

  // The current working state is the mutable database itself.
  EXPECT_EQ((*db_->GetObject(desc))->value.as_string(),
            "Generates alarms from process data, triggers Operator Alert");
  EXPECT_TRUE(db_->FindObjectByName("Alarms").ok());

  // Views are consistent databases.
  EXPECT_TRUE((*v1)->AuditConsistency().clean());
  EXPECT_TRUE((*v2)->AuditConsistency().clean());
}

TEST_F(VersionTest, DeletionIsTombstonedInVersions) {
  ObjectId a = *db_->CreateObject(ids_.action, "Doomed");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  ASSERT_TRUE(db_->DeleteObject(a).ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());

  auto v1 = vm_->MaterializeView(*VersionId::Parse("1.0"));
  EXPECT_TRUE((*v1)->FindObjectByName("Doomed").ok());
  auto v2 = vm_->MaterializeView(*VersionId::Parse("2.0"));
  EXPECT_TRUE((*v2)->FindObjectByName("Doomed").status().IsNotFound());
}

TEST_F(VersionTest, AlternativesBranchFromHistoricalVersion) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ObjectId desc = *db_->CreateSubObject(a, "Description");
  ASSERT_TRUE(db_->SetValue(desc, Value::String("v1")).ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  ASSERT_TRUE(db_->SetValue(desc, Value::String("v2")).ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());

  // Select 1.0 as the working basis, branch off an alternative.
  ASSERT_TRUE(vm_->SelectVersion(*VersionId::Parse("1.0")).ok());
  ObjectId desc_again = *db_->FindObjectByName("A.Description");
  EXPECT_EQ((*db_->GetObject(desc_again))->value.as_string(), "v1");
  ASSERT_TRUE(db_->SetValue(desc_again, Value::String("v1-alt")).ok());
  auto branch = vm_->CreateVersion();
  ASSERT_TRUE(branch.ok());
  // Auto numbering branches under 1.0 because 1.1... is derived from the
  // basis; the id must be fresh and parented at 1.0.
  EXPECT_EQ(*vm_->ParentOf(*branch), *VersionId::Parse("1.0"));

  // Switch back to 2.0: the original line is untouched.
  ASSERT_TRUE(vm_->SelectVersion(*VersionId::Parse("2.0")).ok());
  EXPECT_EQ((*db_->GetObject(*db_->FindObjectByName("A.Description")))
                ->value.as_string(),
            "v2");
  // And the alternative still materializes.
  auto alt = vm_->MaterializeView(*branch);
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ((*(*alt)->GetObject(*(*alt)->FindObjectByName("A.Description")))
                ->value.as_string(),
            "v1-alt");
}

TEST_F(VersionTest, SelectVersionDiscardsUnsavedChanges) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  (void)a;
  (void)*db_->CreateObject(ids_.action, "Unsaved");
  ASSERT_TRUE(vm_->SelectVersion(*VersionId::Parse("1.0")).ok());
  EXPECT_TRUE(db_->FindObjectByName("Unsaved").status().IsNotFound());
  EXPECT_TRUE(db_->FindObjectByName("A").ok());
}

TEST_F(VersionTest, IdsNeverReusedAcrossSelection) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  ObjectId b = *db_->CreateObject(ids_.action, "B");
  ASSERT_TRUE(vm_->SelectVersion(*VersionId::Parse("1.0")).ok());
  ObjectId c = *db_->CreateObject(ids_.action, "C");
  EXPECT_GT(c.raw(), b.raw());
  EXPECT_GT(c.raw(), a.raw());
}

TEST_F(VersionTest, HistoryRetrievalByName) {
  // Paper: "find all versions of object 'AlarmHandler', beginning with
  // version 2.0".
  ObjectId handler = *db_->CreateObject(ids_.action, "AlarmHandler");
  ObjectId desc = *db_->CreateSubObject(handler, "Description");
  ASSERT_TRUE(db_->SetValue(desc, Value::String("a")).ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  ASSERT_TRUE(db_->Rename(handler, "AlarmHandler2").ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());
  ASSERT_TRUE(db_->Rename(handler, "AlarmHandler").ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("3.0")).ok());

  auto all = vm_->VersionsOfObject("AlarmHandler");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);

  auto from2 = vm_->VersionsOfObject("AlarmHandler",
                                     *VersionId::Parse("2.0"));
  ASSERT_TRUE(from2.ok());
  ASSERT_EQ(from2->size(), 2u);
  EXPECT_EQ((*from2)[0].version.ToString(), "2.0");
  EXPECT_EQ((*from2)[1].version.ToString(), "3.0");
}

TEST_F(VersionTest, HistoryOfDeletedObjectFoundThroughOldVersions) {
  ObjectId a = *db_->CreateObject(ids_.action, "Gone");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  ASSERT_TRUE(db_->DeleteObject(a).ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());
  auto hits = vm_->VersionsOfObject("Gone");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_FALSE((*hits)[0].deleted);
  EXPECT_TRUE((*hits)[1].deleted);
}

TEST_F(VersionTest, VersionsAreImmutableExceptDeletion) {
  (void)*db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  (void)*db_->CreateObject(ids_.action, "B");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());

  // 1.0 has a successor: refuse deletion.
  EXPECT_TRUE(
      vm_->DeleteVersion(*VersionId::Parse("1.0")).IsFailedPrecondition());
  // 2.0 is the current basis: refuse deletion.
  EXPECT_TRUE(
      vm_->DeleteVersion(*VersionId::Parse("2.0")).IsFailedPrecondition());
  // After moving the basis, the leaf 2.0... is still basis; create 3.0 and
  // delete 2.0? 2.0 then has child 3.0. Instead branch from 1.0.
  ASSERT_TRUE(vm_->SelectVersion(*VersionId::Parse("1.0")).ok());
  (void)*db_->CreateObject(ids_.action, "C");
  auto branch = vm_->CreateVersion();
  ASSERT_TRUE(branch.ok());
  ASSERT_TRUE(vm_->SelectVersion(*VersionId::Parse("2.0")).ok());
  EXPECT_TRUE(vm_->DeleteVersion(*branch).ok());
  EXPECT_FALSE(vm_->HasVersion(*branch));
  EXPECT_TRUE(vm_->DeleteVersion(*branch).IsNotFound());
}

TEST_F(VersionTest, SchemaVersionRecordedPerVersion) {
  (void)*db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());

  // Evolve the schema: add a brand-new independent class.
  schema::SchemaBuilder b = schema::SchemaBuilder::Evolve(*db_->schema());
  ClassId module = b.AddIndependentClass("Module");
  auto evolved = b.Build();
  ASSERT_TRUE(evolved.ok());
  ASSERT_TRUE(db_->MigrateToSchema(*evolved).ok());
  (void)*db_->CreateObject(module, "Kernel");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());

  // The 1.0 view decodes under schema version 1 (no Module class).
  auto v1 = vm_->MaterializeView(*VersionId::Parse("1.0"));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)->schema()->version(), 1u);
  EXPECT_TRUE(
      (*v1)->schema()->FindIndependentClass("Module").status().IsNotFound());
  auto v2 = vm_->MaterializeView(*VersionId::Parse("2.0"));
  EXPECT_EQ((*v2)->schema()->version(), 2u);
  EXPECT_TRUE((*v2)->FindObjectByName("Kernel").ok());
}

TEST_F(VersionTest, StoredBytesGrowWithChanges) {
  (void)*db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion().ok());
  std::uint64_t after_first = vm_->StoredBytes();
  EXPECT_GT(after_first, 0u);
  (void)*db_->CreateObject(ids_.action, "B");
  ASSERT_TRUE(vm_->CreateVersion().ok());
  EXPECT_GT(vm_->StoredBytes(), after_first);
}

TEST_F(VersionTest, PersistenceRoundTrip) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/vio." +
                    std::to_string(::getpid()) + "." +
                    std::to_string(counter++);
  std::filesystem::create_directories(dir);

  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  ASSERT_TRUE(db_->Rename(a, "A2").ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());

  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir).ok());
    ASSERT_TRUE(core::Persistence::SaveFull(*db_, &kv).ok());
    ASSERT_TRUE(VersionPersistence::Save(*vm_, &kv).ok());
    ASSERT_TRUE(kv.Close().ok());
  }

  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir).ok());
  auto loaded_db = core::Persistence::Load(&kv);
  ASSERT_TRUE(loaded_db.ok());
  VersionManager loaded_vm(loaded_db->get());
  ASSERT_TRUE(VersionPersistence::Load(&loaded_vm, &kv).ok());

  EXPECT_EQ(loaded_vm.num_versions(), 2u);
  EXPECT_EQ(loaded_vm.current_basis().ToString(), "2.0");
  auto v1 = loaded_vm.MaterializeView(*VersionId::Parse("1.0"));
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_TRUE((*v1)->FindObjectByName("A").ok());
  std::filesystem::remove_all(dir);
}

// PinView is the refcounted sibling of MaterializeView: repeated pins of
// a live version share one materialization, dropping every pin frees it,
// and DeleteVersion invalidates the cache slot.
TEST_F(VersionTest, PinViewSharesOneMaterialization) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  ASSERT_TRUE(db_->Rename(a, "A2").ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());

  auto first = vm_->PinView(*VersionId::Parse("1.0"));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE((*first)->FindObjectByName("A").ok());

  // A second pin while the first is live is the same object, not a
  // second clone.
  auto second = vm_->PinView(*VersionId::Parse("1.0"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());

  // Once every pin drops, the weak cache empties and the next pin
  // materializes afresh (a different allocation serving equal bytes).
  const core::Database* old_ptr = first->get();
  first->reset();
  second->reset();
  auto third = vm_->PinView(*VersionId::Parse("1.0"));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE((*third)->FindObjectByName("A").ok());
  (void)old_ptr;  // may or may not be reused by the allocator
}

TEST_F(VersionTest, PinViewAfterDeleteVersionFails) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  ASSERT_TRUE(db_->CreateObject(ids_.action, "B").ok());
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());
  // Branch off 1.0 so 2.0 becomes a deletable leaf (not the basis).
  ASSERT_TRUE(vm_->SelectVersion(*VersionId::Parse("1.0")).ok());
  ASSERT_TRUE(db_->Rename(a, "ABranch").ok());
  ASSERT_TRUE(vm_->CreateVersion().ok());

  auto pin = vm_->PinView(*VersionId::Parse("2.0"));
  ASSERT_TRUE(pin.ok());
  ASSERT_TRUE(vm_->DeleteVersion(*VersionId::Parse("2.0")).ok());

  // The held pin stays valid — deletion only unlinks the version — but
  // new pins of the deleted id must fail, not resurrect the cache slot.
  EXPECT_TRUE((*pin)->FindObjectByName("B").ok());
  EXPECT_TRUE(
      vm_->PinView(*VersionId::Parse("2.0")).status().IsNotFound());
}

}  // namespace
}  // namespace seed::version
