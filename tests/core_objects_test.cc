// Core object engine tests: creation, hierarchical sub-objects, dotted-path
// naming (Fig. 1), values, rename, deletion cascades.

#include <gtest/gtest.h>

#include "core/database.h"
#include "spades/spec_schema.h"

namespace seed::core {
namespace {

using spades::BuildFig2Schema;
using spades::Fig2Ids;

class Fig2DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig2 = BuildFig2Schema();
    ASSERT_TRUE(fig2.ok());
    ids_ = fig2->ids;
    db_ = std::make_unique<Database>(fig2->schema);
  }

  Fig2Ids ids_;
  std::unique_ptr<Database> db_;
};

TEST_F(Fig2DatabaseTest, CreateIndependentObject) {
  auto id = db_->CreateObject(ids_.data, "Alarms");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto obj = db_->GetObject(*id);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->name, "Alarms");
  EXPECT_EQ((*obj)->cls, ids_.data);
  EXPECT_TRUE((*obj)->is_independent());
  EXPECT_EQ(db_->num_live_objects(), 1u);
}

TEST_F(Fig2DatabaseTest, RejectsBadName) {
  EXPECT_TRUE(
      db_->CreateObject(ids_.data, "not an id").status().IsInvalidArgument());
  EXPECT_TRUE(db_->CreateObject(ids_.data, "").status().IsInvalidArgument());
}

TEST_F(Fig2DatabaseTest, RejectsDependentClassForIndependentCreation) {
  EXPECT_TRUE(
      db_->CreateObject(ids_.text, "Loose").status().IsInvalidArgument());
}

TEST_F(Fig2DatabaseTest, RejectsUnknownClass) {
  EXPECT_TRUE(
      db_->CreateObject(ClassId(999), "X").status().IsNotFound());
}

TEST_F(Fig2DatabaseTest, Fig1ObjectStructure) {
  // Build the exact structure of the paper's Figure 1.
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId body = *db_->CreateSubObject(text, "Body");
  ObjectId selector = *db_->CreateSubObject(text, "Selector");
  ASSERT_TRUE(
      db_->SetValue(selector, Value::String("Representation")).ok());
  ObjectId kw0 = *db_->CreateSubObject(body, "Keywords");
  ASSERT_TRUE(db_->SetValue(kw0, Value::String("Alarmhandling")).ok());
  ObjectId kw1 = *db_->CreateSubObject(body, "Keywords");
  ASSERT_TRUE(db_->SetValue(kw1, Value::String("Display")).ok());

  // Names compose exactly as the paper describes.
  EXPECT_EQ(db_->FullName(text), "Alarms.Text[0]");
  EXPECT_EQ(db_->FullName(body), "Alarms.Text[0].Body");
  EXPECT_EQ(db_->FullName(kw1), "Alarms.Text[0].Body.Keywords[1]");

  // And resolve back through FindObjectByName.
  EXPECT_EQ(*db_->FindObjectByName("Alarms"), alarms);
  EXPECT_EQ(*db_->FindObjectByName("Alarms.Text[0].Body.Keywords[1]"), kw1);
  EXPECT_EQ(*db_->FindObjectByName("Alarms.Text.Body"), body);  // index 0
  EXPECT_EQ(*db_->FindObjectByName("Alarms.Text.Selector"), selector);
}

TEST_F(Fig2DatabaseTest, SubObjectIndexing) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId t0 = *db_->CreateSubObject(alarms, "Text");
  ObjectId t1 = *db_->CreateSubObject(alarms, "Text");
  EXPECT_EQ((*db_->GetObject(t0))->index, 0u);
  EXPECT_EQ((*db_->GetObject(t1))->index, 1u);
  // Deleting t0 then creating another continues past the highest index.
  ASSERT_TRUE(db_->DeleteObject(t0).ok());
  ObjectId t2 = *db_->CreateSubObject(alarms, "Text");
  EXPECT_EQ((*db_->GetObject(t2))->index, 2u);
}

TEST_F(Fig2DatabaseTest, UnknownRoleRejected) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  EXPECT_TRUE(
      db_->CreateSubObject(alarms, "Bogus").status().IsNotFound());
}

TEST_F(Fig2DatabaseTest, SubObjectsQueryFiltersByRole) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  (void)*db_->CreateSubObject(alarms, "Text");
  ObjectId body = *db_->CreateSubObject(text, "Body");
  (void)body;
  EXPECT_EQ(db_->SubObjects(alarms, "Text").size(), 2u);
  EXPECT_EQ(db_->SubObjects(alarms).size(), 2u);
  EXPECT_EQ(db_->SubObjects(text, "Body").size(), 1u);
  EXPECT_EQ(db_->SubObjects(text, "Selector").size(), 0u);
}

TEST_F(Fig2DatabaseTest, SetAndClearValue) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId selector = *db_->CreateSubObject(text, "Selector");
  ASSERT_TRUE(db_->SetValue(selector, Value::String("Rep")).ok());
  EXPECT_EQ((*db_->GetObject(selector))->value.as_string(), "Rep");
  ASSERT_TRUE(db_->ClearValue(selector).ok());
  EXPECT_FALSE((*db_->GetObject(selector))->value.defined());
}

TEST_F(Fig2DatabaseTest, SetValueWithUndefinedRejected) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId selector = *db_->CreateSubObject(text, "Selector");
  EXPECT_TRUE(db_->SetValue(selector, Value()).IsInvalidArgument());
}

TEST_F(Fig2DatabaseTest, Rename) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ASSERT_TRUE(db_->Rename(alarms, "AlarmData").ok());
  EXPECT_EQ(*db_->FindObjectByName("AlarmData"), alarms);
  EXPECT_TRUE(db_->FindObjectByName("Alarms").status().IsNotFound());
}

TEST_F(Fig2DatabaseTest, RenameToTakenNameRejected) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  (void)*db_->CreateObject(ids_.data, "Sensors");
  EXPECT_TRUE(db_->Rename(alarms, "Sensors").IsConsistencyViolation());
  EXPECT_TRUE(db_->Rename(alarms, "Alarms").ok());  // self-rename is a no-op
}

TEST_F(Fig2DatabaseTest, RenameDependentRejected) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  EXPECT_TRUE(db_->Rename(text, "Other").IsFailedPrecondition());
}

TEST_F(Fig2DatabaseTest, DeleteCascadesToSubtree) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId body = *db_->CreateSubObject(text, "Body");
  ASSERT_TRUE(db_->DeleteObject(alarms).ok());
  EXPECT_TRUE(db_->GetObject(alarms).status().IsNotFound());
  EXPECT_TRUE(db_->GetObject(text).status().IsNotFound());
  EXPECT_TRUE(db_->GetObject(body).status().IsNotFound());
  EXPECT_EQ(db_->num_live_objects(), 0u);
  EXPECT_TRUE(db_->FindObjectByName("Alarms").status().IsNotFound());
}

TEST_F(Fig2DatabaseTest, DeleteCascadesToRelationships) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "AlarmHandler");
  RelationshipId rel =
      *db_->CreateRelationship(ids_.read, alarms, handler);
  ASSERT_TRUE(db_->DeleteObject(alarms).ok());
  EXPECT_TRUE(db_->GetRelationship(rel).status().IsNotFound());
  // The other participant survives.
  EXPECT_TRUE(db_->GetObject(handler).ok());
  EXPECT_EQ(db_->num_live_relationships(), 0u);
}

TEST_F(Fig2DatabaseTest, TombstonesRemainInRawTables) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ASSERT_TRUE(db_->DeleteObject(alarms).ok());
  // Paper: "marking items as deleted instead of removing them physically".
  auto it = db_->objects_raw().find(alarms);
  ASSERT_NE(it, db_->objects_raw().end());
  EXPECT_TRUE(it->second.deleted);
}

TEST_F(Fig2DatabaseTest, DeleteTwiceFails) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ASSERT_TRUE(db_->DeleteObject(alarms).ok());
  EXPECT_TRUE(db_->DeleteObject(alarms).IsNotFound());
}

TEST_F(Fig2DatabaseTest, NameReusableAfterDelete) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ASSERT_TRUE(db_->DeleteObject(alarms).ok());
  auto again = db_->CreateObject(ids_.data, "Alarms");
  ASSERT_TRUE(again.ok());
  EXPECT_NE(*again, alarms);  // ids are never reused
}

TEST_F(Fig2DatabaseTest, ObjectsOfClassQuery) {
  (void)*db_->CreateObject(ids_.data, "A");
  (void)*db_->CreateObject(ids_.data, "B");
  (void)*db_->CreateObject(ids_.action, "C");
  EXPECT_EQ(db_->ObjectsOfClass(ids_.data).size(), 2u);
  EXPECT_EQ(db_->ObjectsOfClass(ids_.action).size(), 1u);
}

TEST_F(Fig2DatabaseTest, RelationshipQueries) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "AlarmHandler");
  ObjectId logger = *db_->CreateObject(ids_.action, "Logger");
  RelationshipId r1 = *db_->CreateRelationship(ids_.read, alarms, handler);
  RelationshipId r2 = *db_->CreateRelationship(ids_.read, alarms, logger);
  RelationshipId w1 = *db_->CreateRelationship(ids_.write, alarms, handler);

  EXPECT_EQ(db_->RelationshipsOfAssociation(ids_.read).size(), 2u);
  EXPECT_EQ(db_->RelationshipsOf(alarms).size(), 3u);
  EXPECT_EQ(db_->RelationshipsOf(alarms, ids_.read).size(), 2u);
  EXPECT_EQ(db_->RelationshipsOf(handler, ids_.read, 1).size(), 1u);
  EXPECT_EQ(db_->RelationshipsOf(handler, ids_.read, 0).size(), 0u);
  (void)r1;
  (void)r2;
  (void)w1;
}

TEST_F(Fig2DatabaseTest, RelationshipAttributes) {
  // Fig. 2 has no association-owned classes, so use sub-objects of Text to
  // exercise nesting depth instead; association attributes are covered by
  // the Fig. 3 tests in core_vague_test.cc.
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId body = *db_->CreateSubObject(text, "Body");
  ObjectId contents = *db_->CreateSubObject(body, "Contents");
  ASSERT_TRUE(db_->SetValue(contents, Value::String("spec text")).ok());
  EXPECT_EQ(db_->FullName(contents), "Alarms.Text[0].Body.Contents");
}

TEST_F(Fig2DatabaseTest, ForEachSkipsDeleted) {
  ObjectId a = *db_->CreateObject(ids_.data, "A");
  (void)*db_->CreateObject(ids_.data, "B");
  ASSERT_TRUE(db_->DeleteObject(a).ok());
  size_t count = 0;
  db_->ForEachObject([&](const ObjectItem&) { ++count; });
  EXPECT_EQ(count, 1u);
}

TEST_F(Fig2DatabaseTest, ChangeTrackingAccumulatesAndClears) {
  ObjectId a = *db_->CreateObject(ids_.data, "A");
  EXPECT_EQ(db_->changed_objects().count(a), 1u);
  db_->ClearChangeTracking();
  EXPECT_TRUE(db_->changed_objects().empty());
  ASSERT_TRUE(db_->Rename(a, "A2").ok());
  EXPECT_EQ(db_->changed_objects().count(a), 1u);
}

// --- Value type coverage -----------------------------------------------------

TEST(ValueTest, TypesAndToString) {
  EXPECT_EQ(Value().ToString(), "<undefined>");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Enum("repeat").ToString(), "repeat");
  EXPECT_EQ(Value::OfDate(*schema::Date::Parse("1986-02-05")).ToString(),
            "1986-02-05");
  EXPECT_EQ(Value::Real(2.5).type(), schema::ValueType::kReal);
  EXPECT_EQ(Value().type(), schema::ValueType::kNone);
}

TEST(ValueTest, EqualityDistinguishesEnumFromString) {
  EXPECT_NE(Value::Enum("x"), Value::String("x"));
  EXPECT_EQ(Value::Enum("x"), Value::Enum("x"));
}

TEST(ValueTest, CodecRoundTrip) {
  const Value values[] = {
      Value(),
      Value::String("hello"),
      Value::Int(-77),
      Value::Real(1.25),
      Value::Bool(false),
      Value::OfDate(*schema::Date::Parse("2001-12-31")),
      Value::Enum("abort"),
  };
  for (const Value& v : values) {
    Encoder enc;
    v.EncodeTo(&enc);
    Decoder dec(enc.bytes());
    auto decoded = Value::Decode(&dec);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
  }
}

TEST(ValueTest, DecodeRejectsBadTag) {
  Encoder enc;
  enc.PutU8(99);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(Value::Decode(&dec).status().IsCorruption());
}

TEST(ValueTest, CompareOrdersWithinAndAcrossTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(2).Compare(Value::Int(-5)), 0);
  EXPECT_EQ(Value::String("a").Compare(Value::String("a")), 0);
  EXPECT_LT(Value().Compare(Value::Int(0)), 0);  // undefined sorts first
  EXPECT_LT(Value::OfDate(*schema::Date::Parse("1986-02-05"))
                .Compare(Value::OfDate(*schema::Date::Parse("1986-03-01"))),
            0);
  // Cross-type comparisons are deterministic and antisymmetric.
  int c = Value::String("z").Compare(Value::Int(0));
  EXPECT_NE(c, 0);
  EXPECT_EQ(Value::Int(0).Compare(Value::String("z")), -c);
  // Hash agrees with equality on typed values.
  Value::Hash h;
  EXPECT_EQ(h(Value::Int(7)), h(Value::Int(7)));
  EXPECT_NE(h(Value::Enum("x")), h(Value::String("x")));
}

// Regression test for the (class, index)-keyed child lookup: dotted-path
// resolution used to probe every child linearly; deep paths with many
// siblings must resolve correctly (and deletions must not leave stale
// entries behind).
TEST_F(Fig2DatabaseTest, DeepSubObjectPathsResolveAfterMutations) {
  ObjectId doc = *db_->CreateObject(ids_.data, "Doc");
  std::vector<ObjectId> texts, keyword_holders;
  for (int t = 0; t < 16; ++t) {
    ObjectId text = *db_->CreateSubObject(doc, "Text");
    texts.push_back(text);
    ObjectId body = *db_->CreateSubObject(text, "Body");
    for (int k = 0; k < 8; ++k) {
      keyword_holders.push_back(*db_->CreateSubObject(body, "Keywords"));
    }
  }
  // Every deep path resolves to the right object.
  for (int t = 0; t < 16; ++t) {
    for (int k = 0; k < 8; ++k) {
      std::string path = "Doc.Text[" + std::to_string(t) + "].Body.Keywords[" +
                         std::to_string(k) + "]";
      auto found = db_->FindObjectByName(path);
      ASSERT_TRUE(found.ok()) << path;
      EXPECT_EQ(*found, keyword_holders[t * 8 + k]) << path;
    }
  }
  // Deleting one subtree removes exactly its paths.
  ASSERT_TRUE(db_->DeleteObject(texts[5]).ok());
  EXPECT_TRUE(
      db_->FindObjectByName("Doc.Text[5].Body.Keywords[0]").status()
          .IsNotFound());
  auto still = db_->FindObjectByName("Doc.Text[6].Body.Keywords[7]");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(*still, keyword_holders[6 * 8 + 7]);
  // A new Text gets a fresh index past the deleted one and resolves too.
  ObjectId fresh = *db_->CreateSubObject(doc, "Text");
  auto fresh_found = db_->FindObjectByName("Doc.Text[16]");
  ASSERT_TRUE(fresh_found.ok());
  EXPECT_EQ(*fresh_found, fresh);
}

}  // namespace
}  // namespace seed::core
