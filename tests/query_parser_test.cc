// Tests for the textual query language.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "spades/spec_schema.h"

namespace seed::query {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;

class QueryParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);

    alarms_ = *db_->CreateObject(ids_.output_data, "Alarms");
    process_ = *db_->CreateObject(ids_.input_data, "ProcessData");
    sensor_ = *db_->CreateObject(ids_.action, "Sensor");
    mystery_ = *db_->CreateObject(ids_.thing, "Mystery");

    ObjectId d = *db_->CreateSubObject(sensor_, "Description");
    ASSERT_TRUE(db_->SetValue(d, Value::String("polls the hardware")).ok());
    ObjectId rev = *db_->CreateSubObject(alarms_, "Revised");
    ASSERT_TRUE(
        db_->SetValue(rev, Value::OfDate(*schema::Date::Parse("1986-02-05")))
            .ok());
    // Sensor has an empty (undefined) Revised sub-object.
    (void)*db_->CreateSubObject(sensor_, "Revised");
  }

  std::vector<ObjectId> Run(const std::string& q) {
    auto r = RunQuery(*db_, q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? *r : std::vector<ObjectId>{};
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
  ObjectId alarms_, process_, sensor_, mystery_;
};

TEST_F(QueryParserTest, PlainExtent) {
  EXPECT_EQ(Run("find Thing").size(), 4u);
  EXPECT_EQ(Run("find Data").size(), 2u);
  EXPECT_EQ(Run("find Thing exact").size(), 1u);
}

TEST_F(QueryParserTest, NameConditions) {
  auto r = Run("find Thing where name is Alarms");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], alarms_);
  EXPECT_EQ(Run("find Thing where name contains Data").size(), 1u);
  EXPECT_EQ(Run("find Thing where name contains \"s\"").size(), 4u);
}

TEST_F(QueryParserTest, RoleConditions) {
  auto r = Run("find Action where Description contains hardware");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], sensor_);
  EXPECT_TRUE(Run("find Action where Description contains nuclear").empty());
}

TEST_F(QueryParserTest, DateLiteral) {
  auto r = Run("find Data where Revised is 1986-02-05");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], alarms_);
}

TEST_F(QueryParserTest, HasCondition) {
  auto r = Run("find Thing where has Revised");
  // Alarms has a defined Revised; Sensor has an undefined one — 'has'
  // checks existence of the sub-object, so both match.
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(QueryParserTest, UndefinedMatchesNothingInValueConditions) {
  // Sensor's Revised is undefined: date equality never matches it.
  auto r = Run("find Action where Revised is 1986-02-05");
  EXPECT_TRUE(r.empty());
}

TEST_F(QueryParserTest, AndCombinations) {
  auto r = Run(
      "find Thing where name contains s and Description contains polls");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], sensor_);
  EXPECT_TRUE(
      Run("find Thing where name is Alarms and name is Mystery").empty());
}

TEST_F(QueryParserTest, QuotedStringsWithSpaces) {
  auto r = Run("find Action where Description is \"polls the hardware\"");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], sensor_);
}

TEST_F(QueryParserTest, SyntaxErrors) {
  EXPECT_TRUE(RunQuery(*db_, "").status().IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "fetch Data").status().IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find").status().IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find NoSuchClass").status().IsNotFound());
  EXPECT_TRUE(
      RunQuery(*db_, "find Data where").status().IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find Data where name equals X")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find Data extra tokens here")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find Data where name is \"unterminated")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryParserTest, IntAndBoolLiterals) {
  // Give the Write relationship an attribute and query objects indirectly:
  // int literals are matched typed.
  ObjectId out2 = *db_->CreateObject(ids_.output_data, "Log");
  (void)out2;
  // Value conditions on the object's own value require a value-carrying
  // class; Description is a STRING role, so "value is" with ints simply
  // never matches.
  EXPECT_TRUE(Run("find Action where Description is 42").empty());
}

}  // namespace
}  // namespace seed::query
