// Tests for the textual query language.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "spades/spec_schema.h"

namespace seed::query {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;

class QueryParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);

    alarms_ = *db_->CreateObject(ids_.output_data, "Alarms");
    process_ = *db_->CreateObject(ids_.input_data, "ProcessData");
    sensor_ = *db_->CreateObject(ids_.action, "Sensor");
    mystery_ = *db_->CreateObject(ids_.thing, "Mystery");

    ObjectId d = *db_->CreateSubObject(sensor_, "Description");
    ASSERT_TRUE(db_->SetValue(d, Value::String("polls the hardware")).ok());
    ObjectId rev = *db_->CreateSubObject(alarms_, "Revised");
    ASSERT_TRUE(
        db_->SetValue(rev, Value::OfDate(*schema::Date::Parse("1986-02-05")))
            .ok());
    // Sensor has an empty (undefined) Revised sub-object.
    (void)*db_->CreateSubObject(sensor_, "Revised");
  }

  std::vector<ObjectId> Run(const std::string& q) {
    auto r = RunQuery(*db_, q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? *r : std::vector<ObjectId>{};
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
  ObjectId alarms_, process_, sensor_, mystery_;
};

TEST_F(QueryParserTest, PlainExtent) {
  EXPECT_EQ(Run("find Thing").size(), 4u);
  EXPECT_EQ(Run("find Data").size(), 2u);
  EXPECT_EQ(Run("find Thing exact").size(), 1u);
}

TEST_F(QueryParserTest, NameConditions) {
  auto r = Run("find Thing where name is Alarms");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], alarms_);
  EXPECT_EQ(Run("find Thing where name contains Data").size(), 1u);
  EXPECT_EQ(Run("find Thing where name contains \"s\"").size(), 4u);
}

TEST_F(QueryParserTest, RoleConditions) {
  auto r = Run("find Action where Description contains hardware");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], sensor_);
  EXPECT_TRUE(Run("find Action where Description contains nuclear").empty());
}

TEST_F(QueryParserTest, DateLiteral) {
  auto r = Run("find Data where Revised is 1986-02-05");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], alarms_);
}

TEST_F(QueryParserTest, HasCondition) {
  auto r = Run("find Thing where has Revised");
  // Alarms has a defined Revised; Sensor has an undefined one — 'has'
  // checks existence of the sub-object, so both match.
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(QueryParserTest, UndefinedMatchesNothingInValueConditions) {
  // Sensor's Revised is undefined: date equality never matches it.
  auto r = Run("find Action where Revised is 1986-02-05");
  EXPECT_TRUE(r.empty());
}

TEST_F(QueryParserTest, AndCombinations) {
  auto r = Run(
      "find Thing where name contains s and Description contains polls");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], sensor_);
  EXPECT_TRUE(
      Run("find Thing where name is Alarms and name is Mystery").empty());
}

TEST_F(QueryParserTest, QuotedStringsWithSpaces) {
  auto r = Run("find Action where Description is \"polls the hardware\"");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], sensor_);
}

TEST_F(QueryParserTest, SyntaxErrors) {
  EXPECT_TRUE(RunQuery(*db_, "").status().IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "fetch Data").status().IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find").status().IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find NoSuchClass").status().IsNotFound());
  EXPECT_TRUE(
      RunQuery(*db_, "find Data where").status().IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find Data where name equals X")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find Data extra tokens here")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find Data where name is \"unterminated")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryParserTest, ComparisonConditions) {
  ObjectId writes = *db_->CreateSubObject(alarms_, "Text");
  (void)writes;
  ObjectId n1 = *db_->CreateObject(ids_.output_data, "Log");
  ObjectId rev = *db_->CreateSubObject(n1, "Revised");
  (void)rev;  // undefined: matches no comparison
  // Int comparisons work through sub-object roles ('Selector' is INT on
  // Text, too deep here); use a fresh Action Description? Descriptions are
  // strings — so pin the undefined-matches-nothing contract instead.
  EXPECT_TRUE(Run("find Data where Revised > 10").empty());
  EXPECT_TRUE(Run("find Data where Revised < 10").empty());
  // Non-integer bounds are rejected.
  EXPECT_TRUE(RunQuery(*db_, "find Data where Revised > soon")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunQuery(*db_, "find Data where name > 3")
                  .status()
                  .IsInvalidArgument());
  // Out-of-int64-range literals are errors (or non-matches for 'is'),
  // never crashes.
  EXPECT_TRUE(RunQuery(*db_, "find Data where Revised > "
                             "99999999999999999999")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Run("find Data where value is 99999999999999999999").empty());
}

TEST_F(QueryParserTest, RelationshipQueries) {
  ASSERT_TRUE(db_->CreateRelationship(ids_.write, alarms_, sensor_).ok());
  auto rels = db_->RelationshipsOfAssociation(ids_.write);
  ASSERT_EQ(rels.size(), 1u);
  ObjectId n = *db_->CreateSubObject(rels[0], "NumberOfWrites");
  ASSERT_TRUE(db_->SetValue(n, Value::Int(5)).ok());

  std::string plan;
  auto hits = RunRelationshipQuery(*db_, "find rel Write where "
                                         "NumberOfWrites > 3", &plan);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(*hits, rels);
  // EXPLAIN output reports estimated and actual rows.
  EXPECT_NE(plan.find("est ~"), std::string::npos);
  EXPECT_NE(plan.find("actual 1"), std::string::npos);

  EXPECT_TRUE(RunRelationshipQuery(*db_, "find rel Write where "
                                         "NumberOfWrites > 9")
                  ->empty());
  EXPECT_TRUE(RunRelationshipQuery(*db_, "find rel Write where "
                                         "NumberOfWrites is 5")
                  ->size() == 1u);
  EXPECT_EQ(RunRelationshipQuery(*db_, "find rel Write where "
                                       "has NumberOfWrites")
                ->size(),
            1u);
  // The family query sees Write relationships through Access.
  EXPECT_EQ(RunRelationshipQuery(*db_, "find rel Access")->size(), 1u);
  EXPECT_TRUE(RunRelationshipQuery(*db_, "find rel Access exact")->empty());

  // Routing errors: object queries reject 'find rel' and vice versa.
  EXPECT_TRUE(RunQuery(*db_, "find rel Write").status().IsInvalidArgument());
  EXPECT_TRUE(RunRelationshipQuery(*db_, "find Data")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunRelationshipQuery(*db_, "find rel NoSuchAssoc")
                  .status()
                  .IsNotFound());
}

TEST_F(QueryParserTest, ExplainReportsEstimatedVersusActualRows) {
  std::string plan;
  auto r = RunQuery(*db_, "find Thing where name contains s", &plan);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(plan.find("scan, est ~4 rows"), std::string::npos);
  EXPECT_NE(plan.find("; actual 4"), std::string::npos);

  // With an index and enough rows the plan switches and still reports
  // both numbers.
  for (int i = 0; i < 30; ++i) {
    ObjectId d = *db_->CreateObject(ids_.output_data,
                                    "Gen" + std::to_string(i));
    ObjectId rev = *db_->CreateSubObject(d, "Revised");
    ASSERT_TRUE(db_->SetValue(rev, Value::OfDate(*schema::Date::Parse(
                                       i % 2 ? "1986-02-05" : "1986-03-01")))
                    .ok());
  }
  ASSERT_TRUE(db_->CreateAttributeIndex({ids_.data, "Revised"}).ok());
  auto r2 = RunQuery(*db_, "find Data where Revised is 1986-03-01", &plan);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 15u);
  EXPECT_NE(plan.find("index-equals"), std::string::npos);
  EXPECT_NE(plan.find("est ~"), std::string::npos);
  EXPECT_NE(plan.find("; actual 15"), std::string::npos);
}

TEST_F(QueryParserTest, JoinQueries) {
  ASSERT_TRUE(db_->CreateRelationship(ids_.read, process_, sensor_).ok());
  ASSERT_TRUE(db_->CreateRelationship(ids_.write, alarms_, sensor_).ok());

  // Forward: Data binds role 0 ('of'), Action role 1 ('by'); the family
  // of Access covers both Read and Write relationships.
  auto pairs = RunJoinQuery(*db_, "find Data d join via Access to Action a");
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  ASSERT_EQ(pairs->size(), 2u);
  EXPECT_EQ((*pairs)[0], std::make_pair(alarms_, sensor_));
  EXPECT_EQ((*pairs)[1], std::make_pair(process_, sensor_));

  // The direction is inferred: Action cannot fill 'of', so the left side
  // binds role 1 and the pairs come back (action, data).
  auto reversed =
      RunJoinQuery(*db_, "find Action a join via Access to Data d");
  ASSERT_TRUE(reversed.ok()) << reversed.status().ToString();
  ASSERT_EQ(reversed->size(), 2u);
  EXPECT_EQ((*reversed)[0], std::make_pair(sensor_, alarms_));
  EXPECT_EQ((*reversed)[1], std::make_pair(sensor_, process_));

  // Conditions attach to the side their binder names.
  auto filtered = RunJoinQuery(
      *db_, "find Data d join via Access to Action a "
            "where d name contains Alarm");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  ASSERT_EQ(filtered->size(), 1u);
  EXPECT_EQ((*filtered)[0], std::make_pair(alarms_, sensor_));

  auto both = RunJoinQuery(
      *db_, "find Data d join via Access to Action a "
            "where d name contains Alarm and a Description contains "
            "hardware");
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  EXPECT_EQ(both->size(), 1u);
  auto none = RunJoinQuery(
      *db_, "find Data d join via Access to Action a "
            "where a Description contains nuclear");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  // Narrower association: only the Read flow.
  auto reads = RunJoinQuery(*db_, "find Data d join via Read to Action a");
  ASSERT_TRUE(reads.ok());
  ASSERT_EQ(reads->size(), 1u);
  EXPECT_EQ((*reads)[0], std::make_pair(process_, sensor_));

  // 'exact' on either side restricts that side's extent: at Data exact
  // (no InputData/OutputData specializations) nothing joins.
  auto exact = RunJoinQuery(
      *db_, "find Data d exact join via Access to Action a exact");
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_TRUE(exact->empty());
  // ...and the object entry point still routes the 'exact' form away.
  EXPECT_TRUE(
      RunQuery(*db_, "find Data d exact join via Access to Action a")
          .status()
          .IsInvalidArgument());
}

TEST_F(QueryParserTest, JoinOnSelfAssociationUsesReverse) {
  ObjectId parent = *db_->CreateObject(ids_.action, "Parent");
  ASSERT_TRUE(
      db_->CreateRelationship(ids_.contained, sensor_, parent).ok());

  // Contained relates Action to Action; the ambiguous direction defaults
  // to forward (left = role 0, the contained end).
  auto forward =
      RunJoinQuery(*db_, "find Action c join via Contained to Action p");
  ASSERT_TRUE(forward.ok()) << forward.status().ToString();
  ASSERT_EQ(forward->size(), 1u);
  EXPECT_EQ((*forward)[0], std::make_pair(sensor_, parent));

  // 'reverse' forces the left side onto role 1 (the container end).
  auto reverse = RunJoinQuery(
      *db_, "find Action p join reverse via Contained to Action c");
  ASSERT_TRUE(reverse.ok()) << reverse.status().ToString();
  ASSERT_EQ(reverse->size(), 1u);
  EXPECT_EQ((*reverse)[0], std::make_pair(parent, sensor_));
}

TEST_F(QueryParserTest, JoinExplainReportsStrategyAndRows) {
  ASSERT_TRUE(db_->CreateRelationship(ids_.write, alarms_, sensor_).ok());
  std::string plan;
  auto pairs = RunJoinQuery(
      *db_, "find Data d join via Access to Action a", &plan);
  ASSERT_TRUE(pairs.ok());
  EXPECT_NE(plan.find("d: "), std::string::npos) << plan;
  EXPECT_NE(plan.find("a: "), std::string::npos) << plan;
  EXPECT_NE(plan.find("join-"), std::string::npos) << plan;
  EXPECT_NE(plan.find("forward"), std::string::npos) << plan;
  EXPECT_NE(plan.find("est ~"), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual 1"), std::string::npos) << plan;
}

TEST_F(QueryParserTest, JoinSyntaxAndRoutingErrors) {
  // Join queries are rejected by the object entry point, and vice versa.
  EXPECT_TRUE(RunQuery(*db_, "find Data d join via Access to Action a")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunJoinQuery(*db_, "find Data").status().IsInvalidArgument());
  EXPECT_TRUE(
      RunJoinQuery(*db_, "find Data d join via Access to Action d")
          .status()
          .IsInvalidArgument());  // binders must differ
  EXPECT_TRUE(
      RunJoinQuery(*db_, "find Data d join via NoSuchAssoc to Action a")
          .status()
          .IsNotFound());
  EXPECT_TRUE(RunJoinQuery(*db_, "find Data d join via Access to Action a "
                                 "where z name contains x")
                  .status()
                  .IsInvalidArgument());  // unknown binder
  EXPECT_TRUE(RunJoinQuery(*db_, "find Data d join via Access to Action a "
                                 "nonsense")
                  .status()
                  .IsInvalidArgument());
  // Neither class fits the association at all.
  EXPECT_TRUE(
      RunJoinQuery(*db_, "find Action a join via Contained to Data d")
          .status()
          .IsInvalidArgument());
  // 'reverse' is validated too: Data cannot sit at the role-1 end of
  // Access, so forcing it is an error, not a silently empty result.
  EXPECT_TRUE(
      RunJoinQuery(*db_, "find Data d join reverse via Access to Action a")
          .status()
          .IsInvalidArgument());
}

TEST_F(QueryParserTest, JoinChainQueries) {
  ObjectId parent = *db_->CreateObject(ids_.action, "Parent");
  ASSERT_TRUE(db_->CreateRelationship(ids_.read, process_, sensor_).ok());
  ASSERT_TRUE(db_->CreateRelationship(ids_.write, alarms_, sensor_).ok());
  ASSERT_TRUE(
      db_->CreateRelationship(ids_.contained, sensor_, parent).ok());

  auto chain = RunJoinChainQuery(
      *db_, "find Data d join via Access to Action a "
            "join via Contained to Action c");
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ(chain->binders, (std::vector<std::string>{"d", "a", "c"}));
  ASSERT_EQ(chain->tuples.size(), 2u);
  EXPECT_EQ(chain->tuples[0],
            (std::vector<ObjectId>{alarms_, sensor_, parent}));
  EXPECT_EQ(chain->tuples[1],
            (std::vector<ObjectId>{process_, sensor_, parent}));

  // Conditions may constrain any binder, including the middle one.
  auto filtered = RunJoinChainQuery(
      *db_, "find Data d join via Access to Action a "
            "join via Contained to Action c "
            "where d name contains Alarm and a name is Sensor");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  ASSERT_EQ(filtered->tuples.size(), 1u);
  EXPECT_EQ(filtered->tuples[0],
            (std::vector<ObjectId>{alarms_, sensor_, parent}));

  // A reverse middle hop walks Contained the other way: containers of
  // the actions that access Data.
  auto reversed = RunJoinChainQuery(
      *db_, "find Action p join reverse via Contained to Action a "
            "join reverse via Access to Data d");
  ASSERT_TRUE(reversed.ok()) << reversed.status().ToString();
  ASSERT_EQ(reversed->tuples.size(), 2u);
  EXPECT_EQ(reversed->tuples[0],
            (std::vector<ObjectId>{parent, sensor_, alarms_}));
  EXPECT_EQ(reversed->tuples[1],
            (std::vector<ObjectId>{parent, sensor_, process_}));

  // A single-hop chain equals the pairs entry point.
  auto single = RunJoinChainQuery(
      *db_, "find Data d join via Access to Action a");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->binders, (std::vector<std::string>{"d", "a"}));
  EXPECT_EQ(single->tuples.size(),
            RunJoinQuery(*db_, "find Data d join via Access to Action a")
                ->size());
}

TEST_F(QueryParserTest, JoinChainErrors) {
  auto status_of = [&](const std::string& q) {
    return RunJoinChainQuery(*db_, q).status();
  };

  // A condition naming an unknown binder lists every known binder.
  Status s = status_of(
      "find Data d join via Access to Action a "
      "join via Contained to Action c where x name is Sensor");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("'d', 'a' or 'c'"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("got 'x'"), std::string::npos) << s.ToString();

  // Duplicate binder names anywhere in the chain.
  s = status_of(
      "find Data d join via Access to Action a "
      "join via Contained to Action a");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("join binders must differ, got 'a' twice"),
            std::string::npos)
      << s.ToString();

  // 'reverse' on a hop whose classes cannot fill the swapped roles (a
  // non-self-association) is an error, not a silently empty result.
  s = status_of(
      "find Data d join reverse via Access to Action a "
      "join via Contained to Action c");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(
      s.message().find(
          "'reverse' join classes do not fit the swapped roles"),
      std::string::npos)
      << s.ToString();

  // Dangling hops: the parser reports what it expected, where.
  s = status_of("find Data d join via");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("expected association name at end of query"),
            std::string::npos)
      << s.ToString();
  s = status_of("find Data d join via Access");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("expected 'to' at end of query"),
            std::string::npos)
      << s.ToString();
  s = status_of("find Data d join via Access to Action");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("expected binder name at end of query"),
            std::string::npos)
      << s.ToString();
  s = status_of("find Data d");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("expected 'join' after binder 'd'"),
            std::string::npos)
      << s.ToString();

  // An unknown association in a later hop still reports NotFound.
  EXPECT_TRUE(status_of("find Data d join via Access to Action a "
                        "join via NoSuchAssoc to Action c")
                  .IsNotFound());

  // The old 3-hop cap is lifted: chains up to 6 hops parse and execute
  // through the DP optimizer...
  auto five = RunJoinChainQuery(
      *db_, "find Data d join via Access to Action a "
            "join reverse via Access to Data e "
            "join via Access to Action f "
            "join via Contained to Action g "
            "join reverse via Contained to Action h");
  EXPECT_TRUE(five.ok()) << five.status().ToString();
  EXPECT_EQ(five->binders,
            (std::vector<std::string>{"d", "a", "e", "f", "g", "h"}));

  // ...and stop at 6: a seventh hop is rejected up front.
  s = status_of(
      "find Data d join via Access to Action a "
      "join reverse via Access to Data e "
      "join via Access to Action f "
      "join via Contained to Action g "
      "join reverse via Contained to Action h "
      "join reverse via Access to Data i "
      "join via Access to Action j");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("join chains support at most 6 hops"),
            std::string::npos)
      << s.ToString();

  // Duplicate binders are rejected anywhere across a long chain, not
  // just between adjacent hops.
  s = status_of(
      "find Data d join via Access to Action a "
      "join reverse via Access to Data e "
      "join via Access to Action f "
      "join via Contained to Action g "
      "join reverse via Contained to Action d");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("join binders must differ, got 'd' twice"),
            std::string::npos)
      << s.ToString();

  // The pairs entry point refuses multi-hop chains before anything
  // executes...
  Status pairs = RunJoinQuery(*db_, "find Data d join via Access to Action a "
                                    "join via Contained to Action c")
                     .status();
  EXPECT_TRUE(pairs.IsInvalidArgument()) << pairs.ToString();
  EXPECT_NE(pairs.message().find("RunJoinChainQuery"), std::string::npos)
      << pairs.ToString();
  // ...but a bare 'join' used as a value operand is not a hop.
  EXPECT_TRUE(RunJoinQuery(*db_, "find Data d join via Access to Action a "
                                 "where d name is join")
                  .ok());
}

TEST_F(QueryParserTest, IntAndBoolLiterals) {
  // Give the Write relationship an attribute and query objects indirectly:
  // int literals are matched typed.
  ObjectId out2 = *db_->CreateObject(ids_.output_data, "Log");
  (void)out2;
  // Value conditions on the object's own value require a value-carrying
  // class; Description is a STRING role, so "value is" with ints simply
  // never matches.
  EXPECT_TRUE(Run("find Action where Description is 42").empty());
}

}  // namespace
}  // namespace seed::query
