// Vague-information tests: the paper's Fig. 3 narrative — enter a vague
// Thing, re-classify downward as knowledge becomes precise, specialize
// vague Access flows into Read/Write, attach relationship attributes.

#include <gtest/gtest.h>

#include "core/database.h"
#include "spades/spec_schema.h"

namespace seed::core {
namespace {

using spades::BuildFig3Schema;
using spades::Fig3Ids;

class VagueDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
  }

  void TearDown() override {
    Report audit = db_->AuditConsistency();
    EXPECT_TRUE(audit.clean()) << audit.ToString();
  }

  Fig3Ids ids_;
  std::unique_ptr<Database> db_;
};

TEST_F(VagueDataTest, PaperNarrativeEndToEnd) {
  // "There is a thing with name 'Alarms'."
  ObjectId alarms = *db_->CreateObject(ids_.thing, "Alarms");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");

  // A Thing cannot participate in Access yet (role wants Data).
  EXPECT_TRUE(db_->CreateRelationship(ids_.access, alarms, sensor)
                  .status()
                  .IsConsistencyViolation());

  // "...it is a data object which is accessed by action 'Sensor'."
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.data).ok());
  RelationshipId access =
      *db_->CreateRelationship(ids_.access, alarms, sensor);

  // "...'Alarms' is an output" — but Write wants OutputData, so the flow
  // cannot be specialized before the object is.
  EXPECT_TRUE(db_->ReclassifyRelationship(access, ids_.write)
                  .IsConsistencyViolation());
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.output_data).ok());
  ASSERT_TRUE(db_->ReclassifyRelationship(access, ids_.write).ok());

  // "'Alarms' is an output written twice by 'Sensor', and writing is
  // repeated in case of error."
  ObjectId n = *db_->CreateSubObject(access, "NumberOfWrites");
  ASSERT_TRUE(db_->SetValue(n, Value::Int(2)).ok());
  ObjectId eh = *db_->CreateSubObject(access, "ErrorHandling");
  ASSERT_TRUE(db_->SetValue(eh, Value::Enum("repeat")).ok());

  auto rel = db_->GetRelationship(access);
  EXPECT_EQ((*rel)->assoc, ids_.write);
  EXPECT_EQ(db_->SubObjects(access).size(), 2u);
}

TEST_F(VagueDataTest, ReclassifyUpwards) {
  // Moving back up the hierarchy (information turned out wrong).
  ObjectId alarms = *db_->CreateObject(ids_.thing, "Alarms");
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.output_data).ok());
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.data).ok());
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.thing).ok());
  EXPECT_EQ((*db_->GetObject(alarms))->cls, ids_.thing);
}

TEST_F(VagueDataTest, ReclassifyAcrossBranchesRejected) {
  ObjectId alarms = *db_->CreateObject(ids_.input_data, "Alarms");
  // InputData -> OutputData crosses branches; must go via Data.
  EXPECT_TRUE(
      db_->Reclassify(alarms, ids_.output_data).IsFailedPrecondition());
  EXPECT_TRUE(db_->Reclassify(alarms, ids_.action).IsFailedPrecondition());
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.data).ok());
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.output_data).ok());
}

TEST_F(VagueDataTest, ReclassifyToSameClassRejected) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  EXPECT_TRUE(db_->Reclassify(alarms, ids_.data).IsInvalidArgument());
}

TEST_F(VagueDataTest, ReclassifyKeepsIdentityAndSubObjects) {
  ObjectId alarms = *db_->CreateObject(ids_.thing, "Alarms");
  ObjectId desc = *db_->CreateSubObject(alarms, "Description");
  ASSERT_TRUE(db_->SetValue(desc, Value::String("vague for now")).ok());
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.data).ok());
  // Same id, same sub-objects, same name.
  EXPECT_EQ(*db_->FindObjectByName("Alarms"), alarms);
  EXPECT_EQ(*db_->FindObjectByName("Alarms.Description"), desc);
  // The inherited role is still usable after specialization, and the Data
  // roles become available.
  EXPECT_TRUE(db_->CreateSubObject(alarms, "Text").ok());
}

TEST_F(VagueDataTest, ReclassifyUpOrphaningSubObjectsRejected) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ASSERT_TRUE(db_->CreateSubObject(alarms, "Text").ok());
  // Thing has no Text role: generalizing would orphan the sub-object.
  Status s = db_->Reclassify(alarms, ids_.thing);
  EXPECT_TRUE(s.IsConsistencyViolation());
  EXPECT_EQ((*db_->GetObject(alarms))->cls, ids_.data);
}

TEST_F(VagueDataTest, ReclassifyUpBreakingRelationshipsRejected) {
  ObjectId alarms = *db_->CreateObject(ids_.output_data, "Alarms");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  ASSERT_TRUE(db_->CreateRelationship(ids_.write, alarms, sensor).ok());
  // Write wants OutputData in role 'to'; generalizing Alarms to Data would
  // break the existing Write relationship.
  EXPECT_TRUE(db_->Reclassify(alarms, ids_.data).IsConsistencyViolation());
  // An Access-level relationship would be fine with Data, so after the
  // Write is generalized the object can move up too.
  RelationshipId rel = db_->RelationshipsOf(alarms)[0];
  ASSERT_TRUE(db_->ReclassifyRelationship(rel, ids_.access).ok());
  EXPECT_TRUE(db_->Reclassify(alarms, ids_.data).ok());
}

TEST_F(VagueDataTest, DependentObjectReclassifyRejected) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  EXPECT_TRUE(db_->Reclassify(text, ids_.thing).IsFailedPrecondition());
}

TEST_F(VagueDataTest, GeneralizedCardinalityCountsSpecializations) {
  // Paper: "the cardinality 1..* of 'Access by' means that every object of
  // class 'Action' eventually must access at least one object of 'Data'.
  // However, the cardinality 0..* of 'Read by' and 'Write by' allows
  // either a write or a read access to satisfy this condition."
  ObjectId in = *db_->CreateObject(ids_.input_data, "In");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  ASSERT_TRUE(db_->CreateRelationship(ids_.read, in, sensor).ok());

  // The Read counts as an Access: completeness for Sensor is satisfied.
  Report completeness = db_->CheckCompleteness(sensor);
  for (const Violation& v : completeness.violations) {
    EXPECT_NE(v.rule, Rule::kRoleMinParticipation) << v.ToString();
  }
}

TEST_F(VagueDataTest, ReclassifyRelationshipChecksAttributeRoles) {
  ObjectId out = *db_->CreateObject(ids_.output_data, "Out");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  RelationshipId write = *db_->CreateRelationship(ids_.write, out, sensor);
  ObjectId n = *db_->CreateSubObject(write, "NumberOfWrites");
  ASSERT_TRUE(db_->SetValue(n, Value::Int(1)).ok());
  // Generalizing Write -> Access would orphan NumberOfWrites (declared on
  // Write only).
  EXPECT_TRUE(
      db_->ReclassifyRelationship(write, ids_.access).IsConsistencyViolation());
}

TEST_F(VagueDataTest, ReclassifyRelationshipAcrossBranchesRejected) {
  ObjectId data = *db_->CreateObject(ids_.data, "D");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  RelationshipId access = *db_->CreateRelationship(ids_.access, data, sensor);
  ASSERT_TRUE(db_->Reclassify(data, ids_.input_data).ok());
  ASSERT_TRUE(db_->ReclassifyRelationship(access, ids_.read).ok());
  // Read -> Write crosses branches.
  EXPECT_TRUE(
      db_->ReclassifyRelationship(access, ids_.write).IsFailedPrecondition());
}

TEST_F(VagueDataTest, ReclassifyRelationshipDuplicateVetoed) {
  ObjectId in = *db_->CreateObject(ids_.input_data, "In");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  (void)*db_->CreateRelationship(ids_.read, in, sensor);
  RelationshipId access = *db_->CreateRelationship(ids_.access, in, sensor);
  // Specializing the Access into a second identical Read must fail.
  EXPECT_TRUE(
      db_->ReclassifyRelationship(access, ids_.read).IsConsistencyViolation());
}

TEST_F(VagueDataTest, EnumValueValidated) {
  ObjectId out = *db_->CreateObject(ids_.output_data, "Out");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  RelationshipId write = *db_->CreateRelationship(ids_.write, out, sensor);
  ObjectId eh = *db_->CreateSubObject(write, "ErrorHandling");
  EXPECT_TRUE(
      db_->SetValue(eh, Value::Enum("explode")).IsConsistencyViolation());
  EXPECT_TRUE(db_->SetValue(eh, Value::Enum("abort")).ok());
}

TEST_F(VagueDataTest, DateValueOnThing) {
  ObjectId alarms = *db_->CreateObject(ids_.thing, "Alarms");
  ObjectId revised = *db_->CreateSubObject(alarms, "Revised");
  ASSERT_TRUE(
      db_->SetValue(revised, Value::OfDate(*schema::Date::Parse("1986-02-05")))
          .ok());
  EXPECT_TRUE(db_->SetValue(revised, Value::String("1986-02-05"))
                  .IsConsistencyViolation());
}

TEST_F(VagueDataTest, ObjectsOfClassSeesSpecializations) {
  (void)*db_->CreateObject(ids_.thing, "T");
  (void)*db_->CreateObject(ids_.data, "D");
  (void)*db_->CreateObject(ids_.input_data, "I");
  (void)*db_->CreateObject(ids_.action, "A");
  EXPECT_EQ(db_->ObjectsOfClass(ids_.thing).size(), 4u);
  EXPECT_EQ(db_->ObjectsOfClass(ids_.thing, false).size(), 1u);
  EXPECT_EQ(db_->ObjectsOfClass(ids_.data).size(), 2u);
}

TEST_F(VagueDataTest, RelationshipsOfAssociationSeesFamily) {
  ObjectId in = *db_->CreateObject(ids_.input_data, "In");
  ObjectId out = *db_->CreateObject(ids_.output_data, "Out");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  (void)*db_->CreateRelationship(ids_.read, in, sensor);
  (void)*db_->CreateRelationship(ids_.write, out, sensor);
  (void)*db_->CreateRelationship(ids_.access, in, sensor);
  EXPECT_EQ(db_->RelationshipsOfAssociation(ids_.access).size(), 3u);
  EXPECT_EQ(db_->RelationshipsOfAssociation(ids_.access, false).size(), 1u);
  EXPECT_EQ(db_->RelationshipsOfAssociation(ids_.read).size(), 1u);
}

}  // namespace
}  // namespace seed::core
