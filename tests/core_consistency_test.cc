// Consistency rule tests: every rule the paper classifies as consistency
// information must veto updates immediately — class/association membership,
// maximum cardinalities, ACYCLIC conditions, value types, and attached
// procedures — while the database stays permanently consistent.

#include <gtest/gtest.h>

#include "core/database.h"
#include "spades/spec_schema.h"

namespace seed::core {
namespace {

using spades::BuildFig2Schema;
using spades::Fig2Ids;

class ConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig2 = BuildFig2Schema();
    ASSERT_TRUE(fig2.ok());
    ids_ = fig2->ids;
    db_ = std::make_unique<Database>(fig2->schema);
  }

  /// After every test, the incremental checks must agree with a full audit.
  void TearDown() override {
    Report audit = db_->AuditConsistency();
    EXPECT_TRUE(audit.clean()) << audit.ToString();
  }

  Fig2Ids ids_;
  std::unique_ptr<Database> db_;
};

// --- Name conflicts ----------------------------------------------------------

TEST_F(ConsistencyTest, DuplicateNameVetoed) {
  ASSERT_TRUE(db_->CreateObject(ids_.data, "Alarms").ok());
  auto dup = db_->CreateObject(ids_.data, "Alarms");
  EXPECT_TRUE(dup.status().IsConsistencyViolation());
  auto dup2 = db_->CreateObject(ids_.action, "Alarms");
  EXPECT_TRUE(dup2.status().IsConsistencyViolation());
  EXPECT_EQ(db_->num_live_objects(), 1u);
}

// --- Maximum cardinalities ---------------------------------------------------

TEST_F(ConsistencyTest, MaxCardinalityOfSubObjectsEnforced) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  // Data.Text allows 0..16 texts.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(db_->CreateSubObject(alarms, "Text").ok()) << i;
  }
  auto overflow = db_->CreateSubObject(alarms, "Text");
  EXPECT_TRUE(overflow.status().IsConsistencyViolation());
  EXPECT_EQ(db_->SubObjects(alarms, "Text").size(), 16u);
}

TEST_F(ConsistencyTest, SingleValuedRoleEnforced) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ASSERT_TRUE(db_->CreateSubObject(text, "Body").ok());
  EXPECT_TRUE(
      db_->CreateSubObject(text, "Body").status().IsConsistencyViolation());
}

TEST_F(ConsistencyTest, DeletionFreesCardinalitySlot) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId body = *db_->CreateSubObject(text, "Body");
  ASSERT_TRUE(db_->DeleteObject(body).ok());
  EXPECT_TRUE(db_->CreateSubObject(text, "Body").ok());
}

// --- Relationship membership -------------------------------------------------

TEST_F(ConsistencyTest, RoleClassMembershipEnforced) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "AlarmHandler");
  // Read wants (Data, Action); swapping the ends must fail.
  auto wrong = db_->CreateRelationship(ids_.read, handler, alarms);
  EXPECT_TRUE(wrong.status().IsConsistencyViolation());
  EXPECT_TRUE(db_->CreateRelationship(ids_.read, alarms, handler).ok());
}

TEST_F(ConsistencyTest, RelationshipNeedsLiveEnds) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "AlarmHandler");
  ASSERT_TRUE(db_->DeleteObject(handler).ok());
  EXPECT_TRUE(db_->CreateRelationship(ids_.read, alarms, handler)
                  .status()
                  .IsNotFound());
}

TEST_F(ConsistencyTest, DuplicateRelationshipVetoed) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "AlarmHandler");
  ASSERT_TRUE(db_->CreateRelationship(ids_.read, alarms, handler).ok());
  auto dup = db_->CreateRelationship(ids_.read, alarms, handler);
  EXPECT_TRUE(dup.status().IsConsistencyViolation());
  // A Write between the same items is a different association: fine.
  EXPECT_TRUE(db_->CreateRelationship(ids_.write, alarms, handler).ok());
}

// --- Role participation maxima -----------------------------------------------

TEST_F(ConsistencyTest, ContainedInAtMostOneContainer) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ObjectId b = *db_->CreateObject(ids_.action, "B");
  ObjectId c = *db_->CreateObject(ids_.action, "C");
  // 'contained' role has cardinality 0..1: A can sit in only one container.
  ASSERT_TRUE(db_->CreateRelationship(ids_.contained, a, b).ok());
  auto second = db_->CreateRelationship(ids_.contained, a, c);
  EXPECT_TRUE(second.status().IsConsistencyViolation());
  // But B can contain many.
  EXPECT_TRUE(db_->CreateRelationship(ids_.contained, c, b).ok());
}

// --- ACYCLIC -----------------------------------------------------------------

TEST_F(ConsistencyTest, SelfContainmentVetoed) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  auto self = db_->CreateRelationship(ids_.contained, a, a);
  EXPECT_TRUE(self.status().IsConsistencyViolation());
}

TEST_F(ConsistencyTest, ContainmentCycleVetoed) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ObjectId b = *db_->CreateObject(ids_.action, "B");
  ObjectId c = *db_->CreateObject(ids_.action, "C");
  ASSERT_TRUE(db_->CreateRelationship(ids_.contained, a, b).ok());
  ASSERT_TRUE(db_->CreateRelationship(ids_.contained, b, c).ok());
  // c -> a would close the cycle a -> b -> c -> a.
  auto cycle = db_->CreateRelationship(ids_.contained, c, a);
  EXPECT_TRUE(cycle.status().IsConsistencyViolation());
  EXPECT_TRUE(cycle.status().message().find("ACYCLIC") != std::string::npos);
}

TEST_F(ConsistencyTest, DeepChainStaysAcyclic) {
  std::vector<ObjectId> actions;
  for (int i = 0; i < 50; ++i) {
    actions.push_back(
        *db_->CreateObject(ids_.action, "A" + std::to_string(i)));
  }
  for (int i = 1; i < 50; ++i) {
    ASSERT_TRUE(
        db_->CreateRelationship(ids_.contained, actions[i], actions[i - 1])
            .ok());
  }
  auto cycle =
      db_->CreateRelationship(ids_.contained, actions[0], actions[49]);
  EXPECT_TRUE(cycle.status().IsConsistencyViolation());
}

TEST_F(ConsistencyTest, NonAcyclicAssociationAllowsCycles) {
  // Read/Write have no ACYCLIC flag and bipartite ends anyway; build a
  // read/write loop Data <-> Action and expect it to be legal.
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "AlarmHandler");
  EXPECT_TRUE(db_->CreateRelationship(ids_.read, alarms, handler).ok());
  EXPECT_TRUE(db_->CreateRelationship(ids_.write, alarms, handler).ok());
}

// --- Value types -------------------------------------------------------------

TEST_F(ConsistencyTest, ValueOnValuelessClassVetoed) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  EXPECT_TRUE(
      db_->SetValue(alarms, Value::String("x")).IsConsistencyViolation());
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  EXPECT_TRUE(
      db_->SetValue(text, Value::Int(1)).IsConsistencyViolation());
}

TEST_F(ConsistencyTest, WrongValueTypeVetoed) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId selector = *db_->CreateSubObject(text, "Selector");
  EXPECT_TRUE(db_->SetValue(selector, Value::Int(5)).IsConsistencyViolation());
  EXPECT_TRUE(db_->SetValue(selector, Value::Enum("Representation"))
                  .IsConsistencyViolation());
  EXPECT_TRUE(db_->SetValue(selector, Value::String("Representation")).ok());
}

// --- Attached procedures -----------------------------------------------------

TEST_F(ConsistencyTest, AttachedProcedureObservesEvents) {
  std::vector<UpdateKind> seen;
  db_->AttachProcedure(ids_.data, [&](const UpdateEvent& e) {
    seen.push_back(e.kind);
    return Status::OK();
  });
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ASSERT_TRUE(db_->Rename(alarms, "Alarms2").ok());
  ASSERT_TRUE(db_->DeleteObject(alarms).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], UpdateKind::kCreateObject);
  EXPECT_EQ(seen[1], UpdateKind::kRename);
  EXPECT_EQ(seen[2], UpdateKind::kDeleteObject);
}

TEST_F(ConsistencyTest, ProcedureVetoRollsBackCreation) {
  db_->AttachProcedure(ids_.data, [](const UpdateEvent& e) {
    if (e.kind == UpdateKind::kCreateObject) {
      return Status::InvalidArgument("no new data objects allowed");
    }
    return Status::OK();
  });
  auto id = db_->CreateObject(ids_.data, "Alarms");
  EXPECT_TRUE(id.status().IsConsistencyViolation());
  EXPECT_EQ(db_->num_live_objects(), 0u);
  EXPECT_TRUE(db_->FindObjectByName("Alarms").status().IsNotFound());
  // Actions are not covered by the procedure.
  EXPECT_TRUE(db_->CreateObject(ids_.action, "Handler").ok());
}

TEST_F(ConsistencyTest, ProcedureVetoRollsBackValue) {
  db_->AttachProcedure(ids_.selector, [&](const UpdateEvent& e) {
    if (e.kind != UpdateKind::kSetValue) return Status::OK();
    auto obj = e.db->GetObject(e.object);
    if ((*obj)->value.as_string().size() > 10) {
      return Status::InvalidArgument("selector too long");
    }
    return Status::OK();
  });
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId selector = *db_->CreateSubObject(text, "Selector");
  ASSERT_TRUE(db_->SetValue(selector, Value::String("short")).ok());
  Status veto =
      db_->SetValue(selector, Value::String("definitely too long"));
  EXPECT_TRUE(veto.IsConsistencyViolation());
  // Old value restored.
  EXPECT_EQ((*db_->GetObject(selector))->value.as_string(), "short");
}

TEST_F(ConsistencyTest, ProcedureVetoRollsBackDeletionCascade) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId handler = *db_->CreateObject(ids_.action, "Handler");
  RelationshipId rel = *db_->CreateRelationship(ids_.read, alarms, handler);
  db_->AttachProcedure(ids_.data, [](const UpdateEvent& e) {
    if (e.kind == UpdateKind::kDeleteObject) {
      return Status::InvalidArgument("deletion frozen");
    }
    return Status::OK();
  });
  EXPECT_TRUE(db_->DeleteObject(alarms).IsConsistencyViolation());
  // Everything still alive, indexes intact.
  EXPECT_TRUE(db_->GetObject(alarms).ok());
  EXPECT_TRUE(db_->GetObject(text).ok());
  EXPECT_TRUE(db_->GetRelationship(rel).ok());
  EXPECT_EQ(*db_->FindObjectByName("Alarms"), alarms);
  EXPECT_EQ(db_->RelationshipsOf(alarms).size(), 1u);
}

TEST_F(ConsistencyTest, ProcedureOnAssociation) {
  size_t creations = 0;
  db_->AttachProcedure(ids_.read, [&](const UpdateEvent& e) {
    if (e.kind == UpdateKind::kCreateRelationship) ++creations;
    return Status::OK();
  });
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "Handler");
  ASSERT_TRUE(db_->CreateRelationship(ids_.read, alarms, handler).ok());
  ASSERT_TRUE(db_->CreateRelationship(ids_.write, alarms, handler).ok());
  EXPECT_EQ(creations, 1u);  // Write does not trigger Read's procedure
}

TEST_F(ConsistencyTest, ProcedureVetoRollsBackRelationship) {
  db_->AttachProcedure(ids_.read, [](const UpdateEvent& e) {
    if (e.kind == UpdateKind::kCreateRelationship) {
      return Status::InvalidArgument("reads frozen");
    }
    return Status::OK();
  });
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "Handler");
  auto rel = db_->CreateRelationship(ids_.read, alarms, handler);
  EXPECT_TRUE(rel.status().IsConsistencyViolation());
  EXPECT_EQ(db_->num_live_relationships(), 0u);
  EXPECT_TRUE(db_->RelationshipsOf(alarms).empty());
}

TEST_F(ConsistencyTest, DetachProceduresStopsVeto) {
  db_->AttachProcedure(ids_.data, [](const UpdateEvent&) {
    return Status::InvalidArgument("frozen");
  });
  EXPECT_FALSE(db_->CreateObject(ids_.data, "A").ok());
  db_->DetachProcedures(ids_.data);
  EXPECT_TRUE(db_->CreateObject(ids_.data, "A").ok());
}

// --- Audit agrees with incremental checks ------------------------------------

TEST_F(ConsistencyTest, AuditDetectsHandCraftedViolation) {
  // Bypass the API via RestoreObject to inject a duplicate name, then make
  // sure AuditConsistency sees it (and clean it up for TearDown).
  ObjectId a = *db_->CreateObject(ids_.data, "Alarms");
  ObjectItem rogue;
  rogue.id = ObjectId(9999);
  rogue.cls = ids_.data;
  rogue.name = "Alarms";
  db_->RestoreObject(rogue);
  db_->RebuildIndexes();
  Report audit = db_->AuditConsistency();
  EXPECT_FALSE(audit.clean());
  EXPECT_FALSE(audit.Of(Rule::kNameConflict).empty());
  db_->EraseObjectTrusted(ObjectId(9999));
  db_->RebuildIndexes();
  (void)a;
}

TEST_F(ConsistencyTest, ReportToStringIsReadable) {
  Report r;
  r.violations.push_back(Violation{Rule::kMaxCardinality, ObjectId(1),
                                   RelationshipId(), "too many"});
  EXPECT_NE(r.ToString().find("maximum cardinality"), std::string::npos);
  EXPECT_EQ(Report{}.ToString(), "clean");
}

}  // namespace
}  // namespace seed::core
