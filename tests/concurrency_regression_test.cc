// Concurrency regression tests for the internally synchronized
// subsystems (PR: static concurrency-contract enforcement). Each test
// pins a contract the thread-safety annotations promise: KvStore and
// multiuser::Server serialize internally, and MetricsRegistry hands
// every racing registrant the same instrument. Run these under TSan
// (the `parallel` label) to turn latent races into hard failures.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "multiuser/lock_stripes.h"
#include "multiuser/server.h"
#include "obs/metrics.h"
#include "spades/spec_schema.h"
#include "storage/kv_store.h"

namespace seed {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 200;

class KvStoreConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = ::testing::TempDir() + "/kvrace." + std::to_string(::getpid()) +
           "." + std::to_string(counter++);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Writers on disjoint key stripes racing readers and a checkpointer.
// Before KvStore grew its internal mutex this tore the shared index map
// and the buffer pool's structural state.
TEST_F(KvStoreConcurrencyTest, ConcurrentPutGetCheckpoint) {
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());

  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  std::atomic<int> read_hits{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&kv, t] {
      const std::uint64_t base =
          static_cast<std::uint64_t>(t) * kOpsPerThread;
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        ASSERT_TRUE(kv.Put(base + i, "v" + std::to_string(base + i)).ok());
        if (i % 3 == 2) {
          ASSERT_TRUE(kv.Delete(base + i).ok());
        }
      }
    });
  }
  threads.emplace_back([&kv, &stop, &read_hits] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::uint64_t k = 0; k < kThreads * kOpsPerThread; k += 7) {
        auto v = kv.Get(k);
        if (v.ok()) {
          ASSERT_EQ(*v, "v" + std::to_string(k));
          read_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  threads.emplace_back([&kv, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(kv.Checkpoint().ok());
    }
  });
  for (int t = 0; t < kThreads; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads[kThreads].join();
  threads[kThreads + 1].join();

  // Every stripe: two of each three keys survive.
  std::uint64_t expect = 0;
  for (std::uint64_t k = 0; k < kThreads * kOpsPerThread; ++k) {
    const bool deleted = (k % kOpsPerThread) % 3 == 2;
    if (!deleted) ++expect;
    EXPECT_EQ(kv.Contains(k), !deleted) << "key " << k;
  }
  EXPECT_EQ(kv.size(), expect);
  ASSERT_TRUE(kv.Close().ok());

  // The store must still recover cleanly after the concurrent run.
  storage::KvStore again;
  ASSERT_TRUE(again.Open(dir_).ok());
  EXPECT_EQ(again.size(), expect);
}

class ServerConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = spades::BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    server_ = std::make_unique<multiuser::Server>(fig3->schema);
    for (int i = 0; i < kThreads; ++i) {
      roots_.push_back(*server_->master()->CreateObject(
          fig3->ids.output_data, "Root" + std::to_string(i)));
    }
    server_->master()->ClearChangeTracking();
  }

  std::unique_ptr<multiuser::Server> server_;
  std::vector<ObjectId> roots_;
};

// Racing Connect/Disconnect must hand out unique client ids and
// disjoint id stripes (the stripe allocator is guarded state).
TEST_F(ServerConcurrencyTest, ConcurrentSessions) {
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> stripes(kThreads * 8);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &stripes, t] {
      for (int i = 0; i < 8; ++i) {
        auto id = server_->Connect("c" + std::to_string(t));
        ASSERT_TRUE(id.ok());
        stripes[t * 8 + i] = *server_->IdStripeBase(*id);
        if (i % 2 == 1) {
          ASSERT_TRUE(server_->Disconnect(*id).ok());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::sort(stripes.begin(), stripes.end());
  EXPECT_EQ(std::adjacent_find(stripes.begin(), stripes.end()),
            stripes.end())
      << "two clients were handed the same id stripe";
  EXPECT_EQ(server_->num_clients(), kThreads * 8u / 2u);
}

// All threads fight over the same root: exactly one checkout wins per
// round, every loser sees kLockConflict, and the conflict tally matches.
TEST_F(ServerConcurrencyTest, CheckoutSingleWinner) {
  std::vector<ClientId> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(*server_->Connect("c" + std::to_string(t)));
  }
  std::atomic<int> wins{0};
  std::atomic<int> conflicts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &clients, &wins, &conflicts, t] {
      auto bundle = server_->Checkout(clients[t], {roots_[0]});
      if (bundle.ok()) {
        wins.fetch_add(1, std::memory_order_relaxed);
      } else {
        ASSERT_TRUE(bundle.status().IsLockConflict());
        conflicts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_EQ(conflicts.load(), kThreads - 1);
  EXPECT_EQ(server_->lock_conflicts(),
            static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_TRUE(server_->IsLocked(roots_[0]));
}

// Disjoint-root checkin transactions racing each other: the server
// serializes master mutations, so every rename lands and every lock is
// released.
TEST_F(ServerConcurrencyTest, ConcurrentDisjointCheckins) {
  std::vector<ClientId> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(*server_->Connect("c" + std::to_string(t)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &clients, t] {
      auto bundle = server_->Checkout(clients[t], {roots_[t]});
      ASSERT_TRUE(bundle.ok());
      ASSERT_EQ(bundle->objects.size(), 1u);
      multiuser::CheckinBundle changes;
      core::ObjectItem item = bundle->objects[0];
      item.name = "Renamed" + std::to_string(t);
      changes.objects.push_back(item);
      ASSERT_TRUE(server_->Checkin(clients[t], changes).ok());
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(server_->checkins_applied(),
            static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(server_->checkins_rejected(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_FALSE(server_->IsLocked(roots_[t]));
    EXPECT_EQ(server_->master()->objects_raw().at(roots_[t]).name,
              "Renamed" + std::to_string(t));
  }
}

// --- LockStripes units (the striped replacement for the old single
// server mutex; docs/multiuser.md) -------------------------------------------

// N threads race AcquireAll on one root: exactly one owner wins, every
// loser sees kLockConflict and leaves nothing behind.
TEST(LockStripesTest, SingleWinnerPerRoot) {
  multiuser::LockStripes locks;
  const ObjectId root(42);
  std::atomic<int> wins{0};
  std::atomic<int> conflicts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&locks, &wins, &conflicts, root, t] {
      std::vector<ObjectId> acquired;
      Status s = locks.AcquireAll(ClientId(t + 1), {root}, &acquired);
      if (s.ok()) {
        ASSERT_EQ(acquired.size(), 1u);
        wins.fetch_add(1, std::memory_order_relaxed);
      } else {
        ASSERT_TRUE(s.IsLockConflict()) << s.ToString();
        ASSERT_TRUE(acquired.empty());
        conflicts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_EQ(conflicts.load(), kThreads - 1);
  EXPECT_EQ(locks.num_held(), 1u);
  ASSERT_TRUE(locks.OwnerOf(root).ok());
}

// Two threads repeatedly acquire overlapping root sets presented in
// opposed orders. Stripe mutexes are taken in ascending stripe order
// regardless of argument order, so this cannot deadlock — the test
// finishing is the assertion — and all-or-nothing acquisition means a
// loser never holds a partial set.
TEST(LockStripesTest, OrderedAcquisitionAvoidsDeadlock) {
  multiuser::LockStripes locks;
  const std::vector<ObjectId> forward = {ObjectId(1), ObjectId(2),
                                         ObjectId(3)};
  const std::vector<ObjectId> backward = {ObjectId(3), ObjectId(2),
                                          ObjectId(1)};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&locks, &forward, &backward, t] {
      const ClientId me(t + 1);
      const auto& mine = t == 0 ? forward : backward;
      for (int round = 0; round < 200; ++round) {
        Status s = locks.AcquireAll(me, mine);
        if (s.ok()) {
          ASSERT_TRUE(locks.IsHeldBy(me, ObjectId(2)));
          ASSERT_EQ(locks.ReleaseAllOf(me).size(), 3u);
        } else {
          ASSERT_TRUE(s.IsLockConflict()) << s.ToString();
          ASSERT_TRUE(locks.LocksOf(me).empty())
              << "failed acquisition left locks behind";
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(locks.num_held(), 0u);
}

// Re-acquiring held roots is idempotent (and reports only the new
// ones); release is all-or-nothing and owner-checked.
TEST(LockStripesTest, ReentrancyAndRelease) {
  multiuser::LockStripes locks;
  const ClientId alice(1), bob(2);
  ASSERT_TRUE(locks.AcquireAll(alice, {ObjectId(1), ObjectId(2)}).ok());
  std::vector<ObjectId> acquired;
  ASSERT_TRUE(
      locks.AcquireAll(alice, {ObjectId(2), ObjectId(3)}, &acquired).ok());
  EXPECT_EQ(acquired, std::vector<ObjectId>{ObjectId(3)});
  EXPECT_EQ(locks.num_held(), 3u);

  // Bob cannot release Alice's roots; the all-or-nothing failure keeps
  // even roots he named that nobody holds.
  EXPECT_TRUE(locks.Release(bob, {ObjectId(1)}).IsFailedPrecondition());
  EXPECT_TRUE(
      locks.Release(alice, {ObjectId(1), ObjectId(99)}).IsFailedPrecondition());
  EXPECT_EQ(locks.num_held(), 3u);

  ASSERT_TRUE(locks.Release(alice, {ObjectId(2)}).ok());
  const std::vector<ObjectId> rest = locks.ReleaseAllOf(alice);
  EXPECT_EQ(rest, (std::vector<ObjectId>{ObjectId(1), ObjectId(3)}));
  EXPECT_EQ(locks.num_held(), 0u);
  EXPECT_FALSE(locks.IsLocked(ObjectId(1)));
}

// Stripes partition ownership, they are not coarse locks: two clients
// may own different roots that hash to the same stripe.
TEST(LockStripesTest, SameStripeDifferentRootsBothLockable) {
  multiuser::LockStripes locks;
  const ObjectId a(7);
  ObjectId b;
  for (std::uint64_t raw = 8;; ++raw) {
    if (locks.StripeOf(ObjectId(raw)) == locks.StripeOf(a)) {
      b = ObjectId(raw);
      break;
    }
  }
  ASSERT_TRUE(locks.AcquireAll(ClientId(1), {a}).ok());
  ASSERT_TRUE(locks.AcquireAll(ClientId(2), {b}).ok());
  EXPECT_EQ(*locks.OwnerOf(a), ClientId(1));
  EXPECT_EQ(*locks.OwnerOf(b), ClientId(2));
  EXPECT_TRUE(
      locks.AcquireAll(ClientId(2), {a}).IsLockConflict());
}

// Racing registrants of one metric name must all receive the same
// counter; no increment may be lost once the pointer is out. (The
// registry is process-global, so the name carries a test-only prefix
// like the rest of obs_metrics_test.)
TEST(MetricsConcurrencyTest, RegistrationRace) {
  std::vector<std::thread> threads;
  std::vector<obs::Counter*> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
          "test.concurrency.registration.race.total");
      seen[t] = c;
      for (int i = 0; i < kOpsPerThread; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0])
        << "registration race returned distinct counters";
  }
  EXPECT_EQ(seen[0]->value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace seed
