// Concurrency regression tests for the internally synchronized
// subsystems (PR: static concurrency-contract enforcement). Each test
// pins a contract the thread-safety annotations promise: KvStore and
// multiuser::Server serialize internally, and MetricsRegistry hands
// every racing registrant the same instrument. Run these under TSan
// (the `parallel` label) to turn latent races into hard failures.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "multiuser/server.h"
#include "obs/metrics.h"
#include "spades/spec_schema.h"
#include "storage/kv_store.h"

namespace seed {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 200;

class KvStoreConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = ::testing::TempDir() + "/kvrace." + std::to_string(::getpid()) +
           "." + std::to_string(counter++);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Writers on disjoint key stripes racing readers and a checkpointer.
// Before KvStore grew its internal mutex this tore the shared index map
// and the buffer pool's structural state.
TEST_F(KvStoreConcurrencyTest, ConcurrentPutGetCheckpoint) {
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());

  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  std::atomic<int> read_hits{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&kv, t] {
      const std::uint64_t base =
          static_cast<std::uint64_t>(t) * kOpsPerThread;
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        ASSERT_TRUE(kv.Put(base + i, "v" + std::to_string(base + i)).ok());
        if (i % 3 == 2) {
          ASSERT_TRUE(kv.Delete(base + i).ok());
        }
      }
    });
  }
  threads.emplace_back([&kv, &stop, &read_hits] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::uint64_t k = 0; k < kThreads * kOpsPerThread; k += 7) {
        auto v = kv.Get(k);
        if (v.ok()) {
          ASSERT_EQ(*v, "v" + std::to_string(k));
          read_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  threads.emplace_back([&kv, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(kv.Checkpoint().ok());
    }
  });
  for (int t = 0; t < kThreads; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads[kThreads].join();
  threads[kThreads + 1].join();

  // Every stripe: two of each three keys survive.
  std::uint64_t expect = 0;
  for (std::uint64_t k = 0; k < kThreads * kOpsPerThread; ++k) {
    const bool deleted = (k % kOpsPerThread) % 3 == 2;
    if (!deleted) ++expect;
    EXPECT_EQ(kv.Contains(k), !deleted) << "key " << k;
  }
  EXPECT_EQ(kv.size(), expect);
  ASSERT_TRUE(kv.Close().ok());

  // The store must still recover cleanly after the concurrent run.
  storage::KvStore again;
  ASSERT_TRUE(again.Open(dir_).ok());
  EXPECT_EQ(again.size(), expect);
}

class ServerConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = spades::BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    server_ = std::make_unique<multiuser::Server>(fig3->schema);
    for (int i = 0; i < kThreads; ++i) {
      roots_.push_back(*server_->master()->CreateObject(
          fig3->ids.output_data, "Root" + std::to_string(i)));
    }
    server_->master()->ClearChangeTracking();
  }

  std::unique_ptr<multiuser::Server> server_;
  std::vector<ObjectId> roots_;
};

// Racing Connect/Disconnect must hand out unique client ids and
// disjoint id stripes (the stripe allocator is guarded state).
TEST_F(ServerConcurrencyTest, ConcurrentSessions) {
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> stripes(kThreads * 8);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &stripes, t] {
      for (int i = 0; i < 8; ++i) {
        auto id = server_->Connect("c" + std::to_string(t));
        ASSERT_TRUE(id.ok());
        stripes[t * 8 + i] = *server_->IdStripeBase(*id);
        if (i % 2 == 1) {
          ASSERT_TRUE(server_->Disconnect(*id).ok());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::sort(stripes.begin(), stripes.end());
  EXPECT_EQ(std::adjacent_find(stripes.begin(), stripes.end()),
            stripes.end())
      << "two clients were handed the same id stripe";
  EXPECT_EQ(server_->num_clients(), kThreads * 8u / 2u);
}

// All threads fight over the same root: exactly one checkout wins per
// round, every loser sees kLockConflict, and the conflict tally matches.
TEST_F(ServerConcurrencyTest, CheckoutSingleWinner) {
  std::vector<ClientId> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(*server_->Connect("c" + std::to_string(t)));
  }
  std::atomic<int> wins{0};
  std::atomic<int> conflicts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &clients, &wins, &conflicts, t] {
      auto bundle = server_->Checkout(clients[t], {roots_[0]});
      if (bundle.ok()) {
        wins.fetch_add(1, std::memory_order_relaxed);
      } else {
        ASSERT_TRUE(bundle.status().IsLockConflict());
        conflicts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_EQ(conflicts.load(), kThreads - 1);
  EXPECT_EQ(server_->lock_conflicts(),
            static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_TRUE(server_->IsLocked(roots_[0]));
}

// Disjoint-root checkin transactions racing each other: the server
// serializes master mutations, so every rename lands and every lock is
// released.
TEST_F(ServerConcurrencyTest, ConcurrentDisjointCheckins) {
  std::vector<ClientId> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(*server_->Connect("c" + std::to_string(t)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &clients, t] {
      auto bundle = server_->Checkout(clients[t], {roots_[t]});
      ASSERT_TRUE(bundle.ok());
      ASSERT_EQ(bundle->objects.size(), 1u);
      multiuser::CheckinBundle changes;
      core::ObjectItem item = bundle->objects[0];
      item.name = "Renamed" + std::to_string(t);
      changes.objects.push_back(item);
      ASSERT_TRUE(server_->Checkin(clients[t], changes).ok());
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(server_->checkins_applied(),
            static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(server_->checkins_rejected(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_FALSE(server_->IsLocked(roots_[t]));
    EXPECT_EQ(server_->master()->objects_raw().at(roots_[t]).name,
              "Renamed" + std::to_string(t));
  }
}

// Racing registrants of one metric name must all receive the same
// counter; no increment may be lost once the pointer is out. (The
// registry is process-global, so the name carries a test-only prefix
// like the rest of obs_metrics_test.)
TEST(MetricsConcurrencyTest, RegistrationRace) {
  std::vector<std::thread> threads;
  std::vector<obs::Counter*> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
          "test.concurrency.registration.race.total");
      seen[t] = c;
      for (int i = 0; i < kOpsPerThread; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0])
        << "registration race returned distinct counters";
  }
  EXPECT_EQ(seen[0]->value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace seed
