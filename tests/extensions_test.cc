// Tests for the extension features built beyond the prototype:
// history-sensitive transition rules (the paper's second open problem),
// the pattern-relationship participation index, and the pretty-printer.

#include <gtest/gtest.h>

#include "core/printer.h"
#include "pattern/pattern_manager.h"
#include "spades/spec_schema.h"
#include "version/version_manager.h"

namespace seed {
namespace {

using core::Database;
using core::Printer;
using core::Value;
using spades::BuildFig3Schema;
using version::VersionId;
using version::VersionManager;

class TransitionRuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
    vm_ = std::make_unique<VersionManager>(db_.get());
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<VersionManager> vm_;
};

TEST_F(TransitionRuleTest, RuleSeesPredecessorAndSuccessor) {
  size_t calls = 0;
  vm_->AddTransitionRule("observer", [&](const Database& pred,
                                         const Database& succ) {
    ++calls;
    EXPECT_LE(pred.num_live_objects(), succ.num_live_objects());
    return Status::OK();
  });
  (void)*db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());
  (void)*db_->CreateObject(ids_.action, "B");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());
  EXPECT_EQ(calls, 2u);
}

TEST_F(TransitionRuleTest, VetoBlocksVersionCreation) {
  // A "no object may ever be deleted between versions" rule — the paper's
  // canonical example of a transition constraint.
  vm_->AddTransitionRule("no-deletions", [](const Database& pred,
                                            const Database& succ) {
    for (const auto& [id, obj] : pred.objects_raw()) {
      if (obj.deleted) continue;
      auto now = succ.objects_raw().find(id);
      if (now == succ.objects_raw().end() || now->second.deleted) {
        return Status::FailedPrecondition("object was deleted");
      }
    }
    return Status::OK();
  });
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ASSERT_TRUE(vm_->CreateVersion(*VersionId::Parse("1.0")).ok());

  ASSERT_TRUE(db_->DeleteObject(a).ok());
  Status veto = vm_->CreateVersion(*VersionId::Parse("2.0"));
  EXPECT_TRUE(veto.IsConsistencyViolation());
  EXPECT_NE(veto.message().find("no-deletions"), std::string::npos);
  EXPECT_EQ(vm_->num_versions(), 1u);
  EXPECT_EQ(vm_->current_basis().ToString(), "1.0");

  // Re-creating an object with that name satisfies... no: the rule keys on
  // ids, so only removing the rule unblocks the freeze.
  vm_->RemoveTransitionRule("no-deletions");
  EXPECT_EQ(vm_->num_transition_rules(), 0u);
  EXPECT_TRUE(vm_->CreateVersion(*VersionId::Parse("2.0")).ok());
}

TEST_F(TransitionRuleTest, FirstVersionComparesAgainstEmpty) {
  vm_->AddTransitionRule("first", [](const Database& pred, const Database&) {
    EXPECT_EQ(pred.num_live_objects(), 0u);
    return Status::OK();
  });
  (void)*db_->CreateObject(ids_.action, "A");
  EXPECT_TRUE(vm_->CreateVersion().ok());
}

TEST_F(TransitionRuleTest, VetoLeavesWorkingStateIntact) {
  vm_->AddTransitionRule("always-no", [](const Database&, const Database&) {
    return Status::FailedPrecondition("frozen history");
  });
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  EXPECT_FALSE(vm_->CreateVersion().ok());
  // Working state and change tracking untouched: removing the rule lets the
  // same changed set freeze.
  EXPECT_TRUE(db_->GetObject(a).ok());
  vm_->RemoveTransitionRule("always-no");
  auto v = vm_->CreateVersion();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*vm_->GetRecord(*v))->changes.size(), 1u);
}

// --- Pattern relationship index ----------------------------------------------

TEST(PatternIndexTest, PatternRelationshipsOfFiltersCorrectly) {
  auto fig3 = BuildFig3Schema();
  Database db(fig3->schema);
  core::CreateOptions opts;
  opts.pattern = true;
  ObjectId pat = *db.CreateObject(fig3->ids.action, "Pat", opts);
  ObjectId normal = *db.CreateObject(fig3->ids.action, "Normal");
  ObjectId other = *db.CreateObject(fig3->ids.action, "Other");
  ObjectId data = *db.CreateObject(fig3->ids.data, "D");

  RelationshipId pr1 =
      *db.CreateRelationship(fig3->ids.contained, pat, normal, opts);
  RelationshipId pr2 =
      *db.CreateRelationship(fig3->ids.access, data, pat, opts);
  (void)*db.CreateRelationship(fig3->ids.contained, other, normal);

  auto all = db.PatternRelationshipsOf(pat);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], pr1);
  EXPECT_EQ(all[1], pr2);
  // Family filter.
  auto contained_only =
      db.PatternRelationshipsOf(pat, fig3->ids.contained);
  ASSERT_EQ(contained_only.size(), 1u);
  EXPECT_EQ(contained_only[0], pr1);
  // Normal objects have no pattern relationships here.
  EXPECT_TRUE(db.PatternRelationshipsOf(other).empty());
  // Normal query still hides patterns.
  EXPECT_TRUE(db.RelationshipsOf(pat).empty());
}

// --- Printer -----------------------------------------------------------------

class PrinterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
};

TEST_F(PrinterTest, SchemaRenderingShowsPaperNotation) {
  std::string out = Printer::RenderSchema(*db_->schema());
  EXPECT_NE(out.find("class Thing"), std::string::npos);
  EXPECT_NE(out.find("Text [0..16]"), std::string::npos);
  EXPECT_NE(out.find("Contents [1..1] : STRING"), std::string::npos);
  EXPECT_NE(out.find("ErrorHandling [0..1] : ENUM (abort, repeat)"),
            std::string::npos);
  EXPECT_NE(out.find("is-a Access"), std::string::npos);
  EXPECT_NE(out.find("ACYCLIC"), std::string::npos);
  EXPECT_NE(out.find("COVERING"), std::string::npos);
  EXPECT_NE(out.find("association Read (from: InputData [1..*], by: "
                     "Action [0..*])"),
            std::string::npos);
}

TEST_F(PrinterTest, ObjectTreeRendering) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId body = *db_->CreateSubObject(text, "Body");
  ObjectId kw = *db_->CreateSubObject(body, "Keywords");
  ASSERT_TRUE(db_->SetValue(kw, Value::String("Display")).ok());
  std::string out = Printer::RenderObjectTree(*db_, alarms);
  EXPECT_NE(out.find("Alarms : Data"), std::string::npos);
  EXPECT_NE(out.find("Text[0]"), std::string::npos);
  EXPECT_NE(out.find("Keywords[0] = \"Display\""), std::string::npos);
}

TEST_F(PrinterTest, RelationshipRenderingWithAttributes) {
  ObjectId out_data = *db_->CreateObject(ids_.output_data, "Alarms");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  RelationshipId write =
      *db_->CreateRelationship(ids_.write, out_data, sensor);
  ObjectId n = *db_->CreateSubObject(write, "NumberOfWrites");
  ASSERT_TRUE(db_->SetValue(n, Value::Int(2)).ok());
  std::string rendered = Printer::RenderRelationship(*db_, write);
  EXPECT_EQ(rendered, "Write(Alarms, Sensor) {NumberOfWrites=2}");
}

TEST_F(PrinterTest, DatabaseRenderingMarksPatterns) {
  core::CreateOptions opts;
  opts.pattern = true;
  (void)*db_->CreateObject(ids_.action, "Template", opts);
  (void)*db_->CreateObject(ids_.action, "Real");
  std::string out = Printer::RenderDatabase(*db_);
  EXPECT_NE(out.find("Template : Action (pattern)"), std::string::npos);
  EXPECT_NE(out.find("Real : Action"), std::string::npos);
}

}  // namespace
}  // namespace seed
