// Property-based tests (parameterized over seeds): system-wide invariants
// under randomized operation sequences.
//
//  * Permanent consistency: after any sequence of accepted updates, the
//    full audit finds no violation (the paper's central guarantee).
//  * Version-view equivalence: the view to version v equals the working
//    state captured when v was created.
//  * ACYCLIC invariant: random edge insertion never yields a cycle.
//  * Persistence equivalence: save/load is the identity on live items.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/random.h"
#include "core/persistence.h"
#include "spades/spec_schema.h"
#include "version/version_manager.h"

namespace seed {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;
using spades::Fig3Ids;
using version::VersionId;
using version::VersionManager;

/// Applies `steps` random operations; accepted ones must keep the database
/// consistent, rejected ones must not change the live-item counts.
class RandomOps {
 public:
  RandomOps(Database* db, const Fig3Ids& ids, std::uint64_t seed)
      : db_(db), ids_(ids), rng_(seed) {}

  void Step() {
    switch (rng_.Uniform(10)) {
      case 0:
        CreateIndependent();
        break;
      case 1:
        CreateSub();
        break;
      case 2:
        SetSomeValue();
        break;
      case 3:
        CreateFlow();
        break;
      case 4:
        CreateContainment();
        break;
      case 5:
        ReclassifySomething();
        break;
      case 6:
        DeleteSomething();
        break;
      case 7:
        RenameSomething();
        break;
      case 8:
        ReclassifySomeFlow();
        break;
      default:
        CreateIndependent();
        break;
    }
  }

  std::uint64_t accepted() const { return accepted_; }

 private:
  ObjectId PickLiveObject() {
    auto all = db_->AllIndependentObjects();
    if (all.empty()) return ObjectId();
    return all[rng_.Uniform(all.size())];
  }

  void Track(const Status& s) {
    if (s.ok()) ++accepted_;
  }

  void CreateIndependent() {
    static const ClassId Fig3Ids::* kClasses[] = {
        &Fig3Ids::thing,      &Fig3Ids::data,   &Fig3Ids::input_data,
        &Fig3Ids::output_data, &Fig3Ids::action,
    };
    ClassId cls = ids_.*kClasses[rng_.Uniform(5)];
    Track(db_->CreateObject(cls, "Obj_" + std::to_string(rng_.Uniform(60)))
              .status());
  }

  void CreateSub() {
    ObjectId parent = PickLiveObject();
    if (!parent.valid()) return;
    static const char* kRoles[] = {"Text", "Description", "Revised"};
    Track(db_->CreateSubObject(parent, kRoles[rng_.Uniform(3)]).status());
  }

  void SetSomeValue() {
    ObjectId parent = PickLiveObject();
    if (!parent.valid()) return;
    auto subs = db_->SubObjects(parent);
    if (subs.empty()) return;
    ObjectId target = subs[rng_.Uniform(subs.size())];
    Value v = rng_.Bernoulli(0.5)
                  ? Value::String(rng_.Identifier(8))
                  : Value::OfDate(*schema::Date::Make(
                        1980 + static_cast<int>(rng_.Uniform(20)), 6, 15));
    Track(db_->SetValue(target, std::move(v)));
  }

  void CreateFlow() {
    ObjectId a = PickLiveObject();
    ObjectId b = PickLiveObject();
    if (!a.valid() || !b.valid()) return;
    static const AssociationId Fig3Ids::* kAssocs[] = {
        &Fig3Ids::access, &Fig3Ids::read, &Fig3Ids::write};
    Track(db_->CreateRelationship(ids_.*kAssocs[rng_.Uniform(3)], a, b)
              .status());
  }

  void CreateContainment() {
    ObjectId a = PickLiveObject();
    ObjectId b = PickLiveObject();
    if (!a.valid() || !b.valid()) return;
    Track(db_->CreateRelationship(ids_.contained, a, b).status());
  }

  void ReclassifySomething() {
    ObjectId obj = PickLiveObject();
    if (!obj.valid()) return;
    static const ClassId Fig3Ids::* kClasses[] = {
        &Fig3Ids::thing,      &Fig3Ids::data,   &Fig3Ids::input_data,
        &Fig3Ids::output_data, &Fig3Ids::action,
    };
    Track(db_->Reclassify(obj, ids_.*kClasses[rng_.Uniform(5)]));
  }

  void ReclassifySomeFlow() {
    ObjectId obj = PickLiveObject();
    if (!obj.valid()) return;
    auto rels = db_->RelationshipsOf(obj);
    if (rels.empty()) return;
    static const AssociationId Fig3Ids::* kAssocs[] = {
        &Fig3Ids::access, &Fig3Ids::read, &Fig3Ids::write};
    Track(db_->ReclassifyRelationship(rels[rng_.Uniform(rels.size())],
                                      ids_.*kAssocs[rng_.Uniform(3)]));
  }

  void DeleteSomething() {
    if (!rng_.Bernoulli(0.3)) return;  // deletions are rarer
    ObjectId obj = PickLiveObject();
    if (!obj.valid()) return;
    Track(db_->DeleteObject(obj));
  }

  void RenameSomething() {
    ObjectId obj = PickLiveObject();
    if (!obj.valid()) return;
    Track(db_->Rename(obj, "Obj_" + std::to_string(rng_.Uniform(60))));
  }

  Database* db_;
  const Fig3Ids& ids_;
  Random rng_;
  std::uint64_t accepted_ = 0;
};

class ConsistencyInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(ConsistencyInvariantTest, RandomOpsKeepDatabaseConsistent) {
  auto fig3 = BuildFig3Schema();
  ASSERT_TRUE(fig3.ok());
  Database db(fig3->schema);
  RandomOps ops(&db, fig3->ids, GetParam() * 7919 + 1);
  for (int step = 0; step < 400; ++step) {
    ops.Step();
    if (step % 100 == 99) {
      core::Report audit = db.AuditConsistency();
      ASSERT_TRUE(audit.clean())
          << "seed " << GetParam() << " step " << step << ":\n"
          << audit.ToString();
    }
  }
  EXPECT_GT(ops.accepted(), 50u);  // the stream is not degenerate
  core::Report audit = db.AuditConsistency();
  EXPECT_TRUE(audit.clean()) << audit.ToString();
  // Completeness may report findings, but must never crash or veto.
  (void)db.CheckCompleteness();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyInvariantTest,
                         ::testing::Range(0, 8));

class VersionEquivalenceTest : public ::testing::TestWithParam<int> {};

/// Snapshot of live state for comparison.
std::map<std::string, std::string> Fingerprint(const Database& db) {
  std::map<std::string, std::string> out;
  db.ForEachObject([&](const core::ObjectItem& obj) {
    out["O:" + db.FullName(obj.id)] =
        std::to_string(obj.cls.raw()) + "|" + obj.value.ToString() + "|" +
        (obj.is_pattern ? "P" : "N");
  });
  db.ForEachRelationship([&](const core::RelationshipItem& rel) {
    out["R:" + std::to_string(rel.id.raw())] =
        std::to_string(rel.assoc.raw()) + "|" +
        std::to_string(rel.ends[0].raw()) + "|" +
        std::to_string(rel.ends[1].raw());
  });
  return out;
}

TEST_P(VersionEquivalenceTest, ViewEqualsStateAtCreation) {
  auto fig3 = BuildFig3Schema();
  ASSERT_TRUE(fig3.ok());
  Database db(fig3->schema);
  VersionManager vm(&db);
  RandomOps ops(&db, fig3->ids, GetParam() * 104729 + 13);

  std::vector<std::pair<VersionId, std::map<std::string, std::string>>>
      expected;
  for (int round = 0; round < 5; ++round) {
    for (int step = 0; step < 60; ++step) ops.Step();
    auto v = vm.CreateVersion();
    ASSERT_TRUE(v.ok());
    expected.emplace_back(*v, Fingerprint(db));
  }
  for (const auto& [vid, fingerprint] : expected) {
    auto view = vm.MaterializeView(vid);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(Fingerprint(**view), fingerprint)
        << "version " << vid.ToString();
    EXPECT_TRUE((*view)->AuditConsistency().clean());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionEquivalenceTest,
                         ::testing::Range(0, 6));

class AcyclicInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(AcyclicInvariantTest, ContainmentNeverCyclic) {
  auto fig3 = BuildFig3Schema();
  Database db(fig3->schema);
  Random rng(GetParam() * 31 + 7);
  std::vector<ObjectId> actions;
  for (int i = 0; i < 30; ++i) {
    actions.push_back(
        *db.CreateObject(fig3->ids.action, "A" + std::to_string(i)));
  }
  size_t accepted = 0;
  for (int step = 0; step < 300; ++step) {
    ObjectId a = actions[rng.Uniform(actions.size())];
    ObjectId b = actions[rng.Uniform(actions.size())];
    auto rel = db.CreateRelationship(fig3->ids.contained, a, b);
    if (rel.ok()) ++accepted;
  }
  EXPECT_GT(accepted, 10u);
  core::Report audit = db.AuditConsistency();
  EXPECT_TRUE(audit.Of(core::Rule::kAcyclic).empty()) << audit.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcyclicInvariantTest,
                         ::testing::Range(0, 6));

class PersistenceEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PersistenceEquivalenceTest, SaveLoadIsIdentity) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/prop." +
                    std::to_string(::getpid()) + "." +
                    std::to_string(counter++);
  std::filesystem::create_directories(dir);

  auto fig3 = BuildFig3Schema();
  Database db(fig3->schema);
  RandomOps ops(&db, fig3->ids, GetParam() * 65537 + 3);
  for (int step = 0; step < 250; ++step) ops.Step();

  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir).ok());
    ASSERT_TRUE(core::Persistence::SaveFull(db, &kv).ok());
    ASSERT_TRUE(kv.Close().ok());
  }
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir).ok());
  auto loaded = core::Persistence::Load(&kv);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(Fingerprint(**loaded), Fingerprint(db));
  EXPECT_TRUE((*loaded)->AuditConsistency().clean());
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceEquivalenceTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace seed
