// Attribute-index subsystem tests: CREATE INDEX semantics, incremental
// maintenance through every mutation path (create, update, delete,
// reclassify, version restore), planner rewrites with scan/index result
// identity (including the paper's vague-value semantics), persistence of
// index definitions, and a randomized property test checking that
// incremental maintenance always matches a from-scratch rebuild.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <vector>

#include "common/random.h"
#include "core/database.h"
#include "core/persistence.h"
#include "index/index_manager.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "schema/schema_builder.h"
#include "spades/spec_schema.h"
#include "storage/kv_store.h"
#include "version/version_manager.h"

namespace seed {
namespace {

using core::Database;
using core::Value;
using index::IndexSpec;
using query::Planner;
using query::Predicate;

/// Sensor (INT, with Label STRING 0..4) generalized by CalibratedSensor.
struct PlantSchema {
  schema::SchemaPtr schema;
  ClassId sensor, calibrated, label;
};

PlantSchema BuildPlantSchema() {
  schema::SchemaBuilder b("Plant");
  PlantSchema out;
  out.sensor = b.AddIndependentClass("Sensor", schema::ValueType::kInt);
  out.calibrated =
      b.AddIndependentClass("CalibratedSensor", schema::ValueType::kInt);
  b.SetGeneralization(out.calibrated, out.sensor);
  out.label = b.AddDependentClass(out.sensor, "Label",
                                  schema::Cardinality(0, 4),
                                  schema::ValueType::kString);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  out.schema = *schema;
  return out;
}

class AttrIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plant_ = BuildPlantSchema();
    db_ = std::make_unique<Database>(plant_.schema);
  }

  ObjectId MakeSensor(const std::string& name, std::int64_t value,
                      ClassId cls = ClassId()) {
    auto id = db_->CreateObject(cls.valid() ? cls : plant_.sensor, name);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(db_->SetValue(*id, Value::Int(value)).ok());
    return *id;
  }

  /// The scan-path ground truth the planner must reproduce.
  std::vector<ObjectId> ScanIds(ClassId cls, const Predicate& p,
                                bool include_specializations = true) {
    std::vector<ObjectId> out;
    for (ObjectId id : db_->ObjectsOfClass(cls, include_specializations)) {
      if (p.Eval(*db_, id)) out.push_back(id);
    }
    return out;
  }

  PlantSchema plant_;
  std::unique_ptr<Database> db_;
};

TEST_F(AttrIndexTest, CreateValidatesSpec) {
  EXPECT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());
  // Duplicate.
  EXPECT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""})
                  .IsAlreadyExists());
  // Unknown class.
  EXPECT_FALSE(db_->CreateAttributeIndex({ClassId(999), ""}).ok());
  // Unknown role.
  EXPECT_FALSE(db_->CreateAttributeIndex({plant_.sensor, "Bogus"}).ok());
  // Resolvable role is fine.
  EXPECT_TRUE(db_->CreateAttributeIndex({plant_.sensor, "Label"}).ok());
  EXPECT_EQ(db_->attribute_indexes().size(), 2u);

  EXPECT_TRUE(db_->DropAttributeIndex(plant_.sensor, "Label").ok());
  EXPECT_TRUE(db_->DropAttributeIndex(plant_.sensor, "Label").IsNotFound());
  EXPECT_EQ(db_->attribute_indexes().size(), 1u);
}

TEST_F(AttrIndexTest, BackfillsExistingObjects) {
  MakeSensor("S1", 7);
  MakeSensor("S2", 7);
  MakeSensor("S3", 9);
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());
  const index::AttributeIndex* idx =
      db_->attribute_indexes().Find({plant_.sensor, ""});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->num_objects(), 3u);
  EXPECT_EQ(idx->num_distinct_keys(), 2u);
  EXPECT_EQ(idx->Lookup(Value::Int(7)).size(), 2u);
}

TEST_F(AttrIndexTest, PlannerUsesEqualityIndexWithIdenticalResults) {
  for (int i = 0; i < 50; ++i) {
    MakeSensor("S" + std::to_string(i), i % 10);
  }
  // A vague sensor: exists but no value; must match nothing on both paths.
  ASSERT_TRUE(db_->CreateObject(plant_.sensor, "Vague").ok());
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());

  Planner planner(db_.get());
  Predicate eq = Predicate::ValueEquals(Value::Int(3));
  auto plan = planner.PlanSelect(plant_.sensor, eq);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kIndexEquals);
  EXPECT_EQ(planner.SelectIds(plant_.sensor, eq), ScanIds(plant_.sensor, eq));

  // Range comparisons use the ordered map.
  Predicate range = Predicate::IntGreater(6);
  plan = planner.PlanSelect(plant_.sensor, range);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kIndexRange);
  EXPECT_EQ(planner.SelectIds(plant_.sensor, range),
            ScanIds(plant_.sensor, range));

  Predicate less = Predicate::IntLess(2);
  EXPECT_EQ(planner.SelectIds(plant_.sensor, less),
            ScanIds(plant_.sensor, less));

  // Conjunction: index probe plus residual filter.
  Predicate conj = Predicate::ValueEquals(Value::Int(3))
                       .And(Predicate::NameContains("3"));
  plan = planner.PlanSelect(plant_.sensor, conj);
  EXPECT_TRUE(plan.uses_index());
  EXPECT_EQ(planner.SelectIds(plant_.sensor, conj),
            ScanIds(plant_.sensor, conj));

  // OR of equalities: multi-key probe.
  Predicate either = Predicate::ValueEquals(Value::Int(3))
                         .Or(Predicate::ValueEquals(Value::Int(5)));
  plan = planner.PlanSelect(plant_.sensor, either);
  EXPECT_EQ(plan.kind, Planner::Plan::Kind::kIndexEquals);
  ASSERT_EQ(plan.legs.size(), 1u);
  EXPECT_EQ(plan.legs[0].keys.size(), 2u);
  EXPECT_EQ(planner.SelectIds(plant_.sensor, either),
            ScanIds(plant_.sensor, either));

  // Opaque and non-sargable predicates fall back to the scan.
  Predicate opaque{Predicate::Fn(
      [](const Database& /*db*/, ObjectId id) { return id.raw() % 2 == 0; })};
  EXPECT_EQ(planner.PlanSelect(plant_.sensor, opaque).kind,
            Planner::Plan::Kind::kFullScan);
  EXPECT_EQ(planner.SelectIds(plant_.sensor, opaque),
            ScanIds(plant_.sensor, opaque));

  // ... but a conjunction with an opaque filter still probes the index on
  // the sargable conjunct; the opaque part runs as residual.
  Predicate half_opaque = Predicate::ValueEquals(Value::Int(3)).And(opaque);
  EXPECT_EQ(planner.PlanSelect(plant_.sensor, half_opaque).kind,
            Planner::Plan::Kind::kIndexEquals);
  EXPECT_EQ(planner.SelectIds(plant_.sensor, half_opaque),
            ScanIds(plant_.sensor, half_opaque));
  EXPECT_EQ(planner.PlanSelect(plant_.sensor, Predicate::NameIs("S1")).kind,
            Planner::Plan::Kind::kFullScan);

  // A disjunction with a non-equality branch cannot use the index.
  Predicate mixed = Predicate::ValueEquals(Value::Int(3))
                        .Or(Predicate::NameContains("4"));
  EXPECT_EQ(planner.PlanSelect(plant_.sensor, mixed).kind,
            Planner::Plan::Kind::kFullScan);
  EXPECT_EQ(planner.SelectIds(plant_.sensor, mixed),
            ScanIds(plant_.sensor, mixed));
}

TEST_F(AttrIndexTest, SelectFromClassMatchesAlgebraSelect) {
  for (int i = 0; i < 20; ++i) MakeSensor("S" + std::to_string(i), i % 4);
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());

  query::Algebra algebra(db_.get());
  Planner planner(db_.get());
  Predicate eq = Predicate::ValueEquals(Value::Int(2));
  auto extent = algebra.ClassExtent(plant_.sensor, "s");
  auto scanned = algebra.Select(extent, "s", eq);
  ASSERT_TRUE(scanned.ok());
  auto planned = planner.SelectFromClass(plant_.sensor, "s", eq);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->attributes, scanned->attributes);
  EXPECT_EQ(planned->tuples, scanned->tuples);
}

TEST_F(AttrIndexTest, MaintenanceThroughUpdateAndDelete) {
  ObjectId a = MakeSensor("A", 1);
  ObjectId b = MakeSensor("B", 1);
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());
  const index::AttributeIndex* idx =
      db_->attribute_indexes().Find({plant_.sensor, ""});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Lookup(Value::Int(1)).size(), 2u);

  ASSERT_TRUE(db_->SetValue(a, Value::Int(2)).ok());
  EXPECT_EQ(idx->Lookup(Value::Int(1)), std::vector<ObjectId>{b});
  EXPECT_EQ(idx->Lookup(Value::Int(2)), std::vector<ObjectId>{a});

  // ClearValue makes the object vague: it leaves the index entirely.
  ASSERT_TRUE(db_->ClearValue(a).ok());
  EXPECT_TRUE(idx->Lookup(Value::Int(2)).empty());
  EXPECT_EQ(idx->num_objects(), 1u);

  ASSERT_TRUE(db_->DeleteObject(b).ok());
  EXPECT_EQ(idx->num_entries(), 0u);
}

TEST_F(AttrIndexTest, RoleIndexTracksSubObjectValues) {
  ObjectId s = MakeSensor("S", 1);
  // Filler population: with a cost-based planner, index probes only win
  // once the extent is large enough to out-cost the probe overhead.
  for (int i = 0; i < 20; ++i) MakeSensor("Pad" + std::to_string(i), 50 + i);
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, "Label"}).ok());
  const index::AttributeIndex* idx =
      db_->attribute_indexes().Find({plant_.sensor, "Label"});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->num_entries(), 0u);

  auto l0 = db_->CreateSubObject(s, "Label");
  ASSERT_TRUE(l0.ok());
  // Sub-object exists but is undefined: still not indexed.
  EXPECT_EQ(idx->num_entries(), 0u);
  ASSERT_TRUE(db_->SetValue(*l0, Value::String("temp")).ok());
  EXPECT_EQ(idx->Lookup(Value::String("temp")), std::vector<ObjectId>{s});

  // Multi-valued role: a second label adds a second key for the same
  // object.
  auto l1 = db_->CreateSubObject(s, "Label");
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(db_->SetValue(*l1, Value::String("outdoor")).ok());
  EXPECT_EQ(idx->num_entries(), 2u);
  EXPECT_EQ(idx->Lookup(Value::String("outdoor")), std::vector<ObjectId>{s});

  // The planner answers OnSubObject predicates from the role index.
  Planner planner(db_.get());
  Predicate p = Predicate::OnSubObject(
      "Label", Predicate::ValueEquals(Value::String("outdoor")));
  EXPECT_EQ(planner.PlanSelect(plant_.sensor, p).kind,
            Planner::Plan::Kind::kIndexEquals);
  EXPECT_EQ(planner.SelectIds(plant_.sensor, p), ScanIds(plant_.sensor, p));

  // Deleting the sub-object removes its contribution.
  ASSERT_TRUE(db_->DeleteObject(*l1).ok());
  EXPECT_TRUE(idx->Lookup(Value::String("outdoor")).empty());
  EXPECT_EQ(idx->Lookup(Value::String("temp")), std::vector<ObjectId>{s});
}

TEST_F(AttrIndexTest, ReclassifyMigratesEntriesBetweenExtents) {
  // Two exact (no-specialization) indexes, one per extent on the
  // generalization path.
  ASSERT_TRUE(
      db_->CreateAttributeIndex({plant_.sensor, "", false}).ok());
  ASSERT_TRUE(
      db_->CreateAttributeIndex({plant_.calibrated, "", false}).ok());
  const index::AttributeIndex* sensor_idx =
      db_->attribute_indexes().Find({plant_.sensor, "", false});
  const index::AttributeIndex* calibrated_idx =
      db_->attribute_indexes().Find({plant_.calibrated, "", false});
  ASSERT_NE(sensor_idx, nullptr);
  ASSERT_NE(calibrated_idx, nullptr);

  ObjectId s = MakeSensor("S", 42);
  EXPECT_EQ(sensor_idx->Lookup(Value::Int(42)), std::vector<ObjectId>{s});
  EXPECT_TRUE(calibrated_idx->Lookup(Value::Int(42)).empty());

  // The paper's signature operation: moving the object down the hierarchy
  // must move its index entries to the new extent.
  ASSERT_TRUE(db_->Reclassify(s, plant_.calibrated).ok());
  EXPECT_TRUE(sensor_idx->Lookup(Value::Int(42)).empty());
  EXPECT_EQ(calibrated_idx->Lookup(Value::Int(42)),
            std::vector<ObjectId>{s});

  // And back up.
  ASSERT_TRUE(db_->Reclassify(s, plant_.sensor).ok());
  EXPECT_EQ(sensor_idx->Lookup(Value::Int(42)), std::vector<ObjectId>{s});
  EXPECT_TRUE(calibrated_idx->Lookup(Value::Int(42)).empty());
}

TEST_F(AttrIndexTest, FamilyIndexServesSpecializedExtentQueries) {
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());
  MakeSensor("Plain", 5);
  ObjectId c = MakeSensor("Calib", 5, plant_.calibrated);
  // Filler population so the probe out-costs the (family) extent scan.
  for (int i = 0; i < 20; ++i) {
    MakeSensor("Pad" + std::to_string(i), 50 + i, plant_.calibrated);
  }

  Planner planner(db_.get());
  Predicate eq = Predicate::ValueEquals(Value::Int(5));
  // Query over the CalibratedSensor extent: the broader Sensor-family
  // index covers it; the residual extent filter drops the plain sensor.
  auto plan = planner.PlanSelect(plant_.calibrated, eq);
  EXPECT_TRUE(plan.uses_index());
  EXPECT_EQ(planner.SelectIds(plant_.calibrated, eq),
            std::vector<ObjectId>{c});
  // Exact query on Sensor likewise uses it, filtering specializations out.
  EXPECT_EQ(planner.SelectIds(plant_.sensor, eq, /*include_spec=*/false),
            ScanIds(plant_.sensor, eq, false));
}

TEST_F(AttrIndexTest, TextualQueriesGoThroughThePlanner) {
  MakeSensor("S1", 7);
  MakeSensor("S2", 8);
  ObjectId s3 = MakeSensor("S3", 7);
  auto label = db_->CreateSubObject(s3, "Label");
  ASSERT_TRUE(label.ok());
  ASSERT_TRUE(db_->SetValue(*label, Value::String("hot")).ok());
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, "Label"}).ok());

  auto r1 = query::RunQuery(*db_, "find Sensor where value is 7");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->size(), 2u);
  auto r2 = query::RunQuery(*db_, "find Sensor where Label is \"hot\"");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, std::vector<ObjectId>{s3});
}

TEST_F(AttrIndexTest, DefinitionsSurviveSaveAndLoad) {
  namespace fs = std::filesystem;
  fs::path dir =
      fs::temp_directory_path() / "seed_attr_index_persist_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  MakeSensor("S1", 3);
  MakeSensor("S2", 4);
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, "Label"}).ok());
  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir.string()).ok());
    ASSERT_TRUE(core::Persistence::SaveFull(*db_, &kv).ok());
    ASSERT_TRUE(kv.Close().ok());
  }
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir.string()).ok());
  auto loaded = core::Persistence::Load(&kv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& manager = (*loaded)->attribute_indexes();
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_FALSE(manager.specs_dirty());
  const index::AttributeIndex* idx = manager.Find({plant_.sensor, ""});
  ASSERT_NE(idx, nullptr);
  // Entries were re-derived from the restored items.
  EXPECT_EQ(idx->num_objects(), 2u);
  EXPECT_EQ(idx->Lookup(Value::Int(3)).size(), 1u);
  ASSERT_TRUE(kv.Close().ok());
  fs::remove_all(dir);
}

TEST_F(AttrIndexTest, SaveChangesPersistsEvolvedSchemaWithSpecs) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "seed_attr_index_evolve_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir.string()).ok());
  ASSERT_TRUE(core::Persistence::SaveFull(*db_, &kv).ok());

  // Evolve the schema, index the new class, save only the changes: the
  // reloaded store must know both the class and the index.
  auto b = schema::SchemaBuilder::Evolve(*plant_.schema);
  ClassId gauge = b.AddIndependentClass("Gauge", schema::ValueType::kInt);
  auto evolved = b.Build();
  ASSERT_TRUE(evolved.ok());
  ASSERT_TRUE(db_->MigrateToSchema(*evolved).ok());
  ObjectId g = *db_->CreateObject(gauge, "G1");
  ASSERT_TRUE(db_->SetValue(g, Value::Int(11)).ok());
  ASSERT_TRUE(db_->CreateAttributeIndex({gauge, ""}).ok());
  ASSERT_TRUE(core::Persistence::SaveChanges(db_.get(), &kv).ok());
  ASSERT_TRUE(kv.Close().ok());

  storage::KvStore kv2;
  ASSERT_TRUE(kv2.Open(dir.string()).ok());
  auto loaded = core::Persistence::Load(&kv2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->schema()->version(), plant_.schema->version() + 1);
  const index::AttributeIndex* idx =
      (*loaded)->attribute_indexes().Find({gauge, ""});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Lookup(Value::Int(11)).size(), 1u);
  ASSERT_TRUE(kv2.Close().ok());
  fs::remove_all(dir);
}

TEST_F(AttrIndexTest, DecodesUntaggedV1SpecCatalogs) {
  // Catalogs written before relationship-side indexes carry no format
  // marker and no per-spec extent tag: (count, then cls/role/bool per
  // spec). Loading such a store must still work.
  Encoder enc;
  enc.PutVarint(2);
  enc.PutVarint(plant_.sensor.raw());
  enc.PutString("");
  enc.PutBool(true);
  enc.PutVarint(plant_.sensor.raw());
  enc.PutString("Label");
  enc.PutBool(false);

  Decoder dec(enc.bytes());
  auto specs = index::IndexManager::DecodeSpecs(&dec);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0], (IndexSpec{plant_.sensor, ""}));
  EXPECT_EQ((*specs)[1], (IndexSpec{plant_.sensor, "Label", false}));
  EXPECT_FALSE((*specs)[0].on_relationships());
}

TEST_F(AttrIndexTest, VersionRestoreRebuildsEntries) {
  version::VersionManager vm(db_.get());
  ObjectId s = MakeSensor("S", 1);
  ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());
  auto v1 = vm.CreateVersion();
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();

  ASSERT_TRUE(db_->SetValue(s, Value::Int(2)).ok());
  MakeSensor("T", 3);
  auto v2 = vm.CreateVersion();
  ASSERT_TRUE(v2.ok());

  // Select the old version: the restore path must leave the index exactly
  // describing the restored state.
  ASSERT_TRUE(vm.SelectVersion(*v1).ok());
  const index::AttributeIndex* idx =
      db_->attribute_indexes().Find({plant_.sensor, ""});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->num_objects(), 1u);
  EXPECT_EQ(idx->Lookup(Value::Int(1)).size(), 1u);
  EXPECT_TRUE(idx->Lookup(Value::Int(2)).empty());
  EXPECT_TRUE(idx->Lookup(Value::Int(3)).empty());
}

// --- Property test: incremental maintenance == from-scratch rebuild ---------

using Listing = std::vector<std::pair<std::string, std::uint64_t>>;

Listing Dump(const index::AttributeIndex& idx) {
  Listing out;
  idx.ForEach([&out](const Value& key, ObjectId id) {
    out.emplace_back(key.ToString(), id.raw());
  });
  return out;
}

TEST_F(AttrIndexTest, PropertyRandomOpsMatchFromScratchRebuild) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SetUp();  // fresh database per seed
    Random rng(seed);
    version::VersionManager vm(db_.get());
    ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, ""}).ok());
    ASSERT_TRUE(db_->CreateAttributeIndex({plant_.sensor, "Label"}).ok());
    ASSERT_TRUE(
        db_->CreateAttributeIndex({plant_.calibrated, "", false}).ok());

    std::vector<ObjectId> objects;  // ever-created roots (may be deleted)
    std::vector<version::VersionId> versions;
    int created = 0;

    for (int step = 0; step < 300; ++step) {
      switch (rng.Uniform(8)) {
        case 0: {  // create
          ClassId cls = rng.Bernoulli(0.5) ? plant_.sensor
                                           : plant_.calibrated;
          auto id = db_->CreateObject(
              cls, "Obj" + std::to_string(created++));
          ASSERT_TRUE(id.ok());
          objects.push_back(*id);
          break;
        }
        case 1: {  // set / clear own value
          if (objects.empty()) break;
          ObjectId id = rng.Pick(objects);
          if (rng.Bernoulli(0.2)) {
            (void)db_->ClearValue(id);
          } else {
            (void)db_->SetValue(id, Value::Int(rng.UniformRange(0, 9)));
          }
          break;
        }
        case 2: {  // add or update a Label sub-object
          if (objects.empty()) break;
          ObjectId parent = rng.Pick(objects);
          auto subs = db_->SubObjects(parent, "Label");
          if (subs.empty() || rng.Bernoulli(0.4)) {
            auto sub = db_->CreateSubObject(parent, "Label");
            if (sub.ok()) {
              (void)db_->SetValue(
                  *sub, Value::String("L" + std::to_string(
                                               rng.UniformRange(0, 4))));
            }
          } else {
            (void)db_->SetValue(
                rng.Pick(subs),
                Value::String("L" + std::to_string(rng.UniformRange(0, 4))));
          }
          break;
        }
        case 3: {  // delete an object (root or label)
          if (objects.empty()) break;
          ObjectId victim = rng.Pick(objects);
          if (rng.Bernoulli(0.5)) {
            auto subs = db_->SubObjects(victim, "Label");
            if (!subs.empty()) victim = rng.Pick(subs);
          }
          (void)db_->DeleteObject(victim);
          break;
        }
        case 4: {  // reclassify along the generalization path
          if (objects.empty()) break;
          ObjectId id = rng.Pick(objects);
          auto obj = db_->GetObject(id);
          if (!obj.ok()) break;
          ClassId target = (*obj)->cls == plant_.sensor
                               ? plant_.calibrated
                               : plant_.sensor;
          (void)db_->Reclassify(id, target);
          break;
        }
        case 5: {  // freeze a version
          auto v = vm.CreateVersion();
          if (v.ok()) versions.push_back(*v);
          break;
        }
        case 6: {  // restore a historical version
          if (versions.empty()) break;
          ASSERT_TRUE(vm.SelectVersion(rng.Pick(versions)).ok());
          break;
        }
        case 7: {  // random planner query must equal the scan
          Predicate p =
              rng.Bernoulli(0.5)
                  ? Predicate::ValueEquals(
                        Value::Int(rng.UniformRange(0, 9)))
                  : Predicate::IntGreater(rng.UniformRange(0, 9));
          Planner planner(db_.get());
          ASSERT_EQ(planner.SelectIds(plant_.sensor, p),
                    ScanIds(plant_.sensor, p))
              << "seed " << seed << " step " << step;
          break;
        }
      }

      if (step % 50 == 49) {
        // Snapshot the incrementally maintained entries, rebuild from
        // scratch, and require identity for every index.
        std::vector<Listing> incremental;
        for (const auto& idx : db_->attribute_indexes().indexes()) {
          incremental.push_back(Dump(*idx));
        }
        db_->RebuildIndexes();
        size_t i = 0;
        for (const auto& idx : db_->attribute_indexes().indexes()) {
          EXPECT_EQ(incremental[i], Dump(*idx))
              << "index " << idx->spec().ToString() << " diverged at seed "
              << seed << " step " << step;
          ++i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace seed
