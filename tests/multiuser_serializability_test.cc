// Serializability harness for the concurrent multiuser server (PR:
// snapshot reads + striped write locks). Several client threads run
// randomized checkout / edit / check-in cycles against one server; every
// successful check-in records its commit sequence number and the exact
// bundle it shipped. After quiescence the master must be byte-identical
// to a serial replay of the committed bundles — commit order is the
// witness serial order, and adjacent commits with disjoint item sets
// must commute (they ran through disjoint lock stripes, so either order
// is a legal serial history).
//
// The harness enforces coverage floors so a "pass" cannot come from a
// degenerate run: lock-conflict retries, disjoint-stripe parallel
// check-ins, and audit-rollback all must actually have happened.
// Run under TSan via the `parallel` label.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/item_codec.h"
#include "multiuser/client.h"
#include "multiuser/server.h"
#include "spades/spec_schema.h"

namespace seed::multiuser {
namespace {

using core::Value;

constexpr int kRoots = 8;
constexpr int kCommitsPerThread = 4;

/// One committed check-in as observed by the client that made it.
struct Commit {
  std::uint64_t seq = 0;
  CheckinBundle bundle;
};

/// Canonical byte string of a database's raw item state (tombstones
/// included): equality means the two databases are indistinguishable to
/// every read path.
std::string Fingerprint(const core::Database& db) {
  std::string out;
  for (const auto& [id, obj] : db.objects_raw()) {
    out += core::ItemCodec::EncodeObjectToString(obj);
  }
  out += '|';
  for (const auto& [id, rel] : db.relationships_raw()) {
    out += core::ItemCodec::EncodeRelationshipToString(rel);
  }
  return out;
}

/// Applies a committed bundle to `db` exactly the way Server::Checkin
/// does: raw upserts in bundle order. (Audit-rejected check-ins never
/// reach the committed history, so replay needs no undo path.)
void Replay(core::Database* db, const CheckinBundle& bundle) {
  for (const core::ObjectItem& obj : bundle.objects) db->RestoreObject(obj);
  for (const core::RelationshipItem& rel : bundle.relationships) {
    db->RestoreRelationship(rel);
  }
}

/// True if the two bundles touch disjoint item-id sets — the condition
/// under which their raw upserts commute.
bool Disjoint(const CheckinBundle& a, const CheckinBundle& b) {
  for (const core::ObjectItem& x : a.objects) {
    for (const core::ObjectItem& y : b.objects) {
      if (x.id == y.id) return false;
    }
  }
  for (const core::RelationshipItem& x : a.relationships) {
    for (const core::RelationshipItem& y : b.relationships) {
      if (x.id == y.id) return false;
    }
  }
  return true;
}

/// Seeds `db` with the fixed root population. Creation order is part of
/// the contract: the replay database must allocate identical ids.
void SeedRoots(core::Database* db, const spades::Fig3Schema& fig3) {
  for (int i = 0; i < kRoots; ++i) {
    auto root =
        db->CreateObject(fig3.ids.action, "Action_" + std::to_string(i));
    ASSERT_TRUE(root.ok());
    auto desc = db->CreateSubObject(*root, "Description");
    ASSERT_TRUE(desc.ok());
    ASSERT_TRUE(
        db->SetValue(*desc, Value::String("step " + std::to_string(i))).ok());
  }
  db->ClearChangeTracking();
}

TEST(MultiuserSerializabilityTest, ConcurrentHistoryEqualsSerialReplay) {
  auto fig3 = spades::BuildFig3Schema();
  ASSERT_TRUE(fig3.ok());
  Server server(fig3->schema);
  SeedRoots(server.master(), *fig3);
  server.PublishSnapshot();

  const int kThreads = std::clamp(
      static_cast<int>(std::thread::hardware_concurrency()), 4, 8);

  // A pinned root guarantees lock conflicts regardless of scheduling:
  // any worker that picks Action_0 during the storm retries.
  auto pinner = ClientSession::Open(&server, "pinner");
  ASSERT_TRUE(pinner.ok());
  ASSERT_TRUE((*pinner)->CheckoutByName({"Action_0"}).ok());

  std::mutex history_mu;
  std::vector<Commit> history;
  std::atomic<int> conflicts{0};
  std::atomic<int> poison_rejections{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server, &history_mu, &history, &conflicts,
                          &poison_rejections, &fig3, t] {
      auto session =
          ClientSession::Open(&server, "worker-" + std::to_string(t));
      ASSERT_TRUE(session.ok());
      Random rng(0xC0FFEEull * (t + 1) + 7);
      int committed = 0;
      while (committed < kCommitsPerThread) {
        std::string target =
            "Action_" + std::to_string(rng.Uniform(kRoots));
        Status s = (*session)->CheckoutByName({target});
        if (s.IsLockConflict()) {
          conflicts.fetch_add(1, std::memory_order_relaxed);
          continue;  // retry with a fresh pick
        }
        ASSERT_TRUE(s.ok()) << s.ToString();

        // Thread 0 fires a poison check-in mid-storm: two new
        // independent objects sharing one name, with ids well inside
        // this client's stripe so validation passes and the duplicate
        // name is only caught by the post-apply audit — exercising the
        // wholesale-rollback path while other threads are committing.
        if (t == 0 && committed == 1) {
          std::uint64_t base =
              *server.IdStripeBase((*session)->id()) + (1ull << 30);
          CheckinBundle poison;
          for (int k = 0; k < 2; ++k) {
            core::ObjectItem obj;
            obj.id = ObjectId(base + k);
            obj.cls = fig3->ids.action;
            obj.name = "PoisonTwin";
            poison.objects.push_back(std::move(obj));
          }
          Status rejected = server.Checkin((*session)->id(), poison);
          ASSERT_TRUE(rejected.IsConsistencyViolation())
              << rejected.ToString();
          poison_rejections.fetch_add(1, std::memory_order_relaxed);
        }

        auto root = (*session)->local()->FindObjectByName(target);
        ASSERT_TRUE(root.ok());
        auto descs = (*session)->local()->SubObjects(*root, "Description");
        ASSERT_EQ(descs.size(), 1u);
        ASSERT_TRUE((*session)
                        ->local()
                        ->SetValue(descs[0],
                                   Value::String(
                                       "w" + std::to_string(t) + "#" +
                                       std::to_string(committed)))
                        .ok());
        std::uint64_t seq = 0;
        CheckinBundle shipped;
        Status ci = (*session)->Checkin(&seq, &shipped);
        ASSERT_TRUE(ci.ok()) << ci.ToString();
        {
          std::lock_guard<std::mutex> lock(history_mu);
          history.push_back(Commit{seq, std::move(shipped)});
        }
        ++committed;
      }
    });
  }
  // Probe the pinned root from the main thread while the storm runs:
  // three guaranteed lock-conflict retries, concurrent with committers,
  // so the conflict floor below cannot depend on lucky scheduling.
  auto prober = ClientSession::Open(&server, "prober");
  ASSERT_TRUE(prober.ok());
  for (int i = 0; i < 3; ++i) {
    Status s = (*prober)->CheckoutByName({"Action_0"});
    ASSERT_TRUE(s.IsLockConflict()) << s.ToString();
    conflicts.fetch_add(1, std::memory_order_relaxed);
  }

  for (std::thread& w : workers) w.join();

  // Deterministic epilogue: two clients check out disjoint roots and
  // check in from two racing threads, twice. With the storm quiesced
  // their commits take consecutive sequence numbers, so the history is
  // guaranteed at least two adjacent disjoint pairs — the
  // parallel-commit evidence the swap test below feeds on.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::thread> pair;
    for (int c = 0; c < 2; ++c) {
      pair.emplace_back([&server, &history_mu, &history, round, c] {
        auto session = ClientSession::Open(
            &server, "epilogue-" + std::to_string(round * 2 + c));
        ASSERT_TRUE(session.ok());
        std::string target = "Action_" + std::to_string(1 + c);
        Status s;
        do {
          s = (*session)->CheckoutByName({target});
        } while (s.IsLockConflict());
        ASSERT_TRUE(s.ok()) << s.ToString();
        auto root = (*session)->local()->FindObjectByName(target);
        ASSERT_TRUE(root.ok());
        auto descs = (*session)->local()->SubObjects(*root, "Description");
        ASSERT_EQ(descs.size(), 1u);
        ASSERT_TRUE((*session)
                        ->local()
                        ->SetValue(descs[0],
                                   Value::String(
                                       "epi" + std::to_string(round) + "." +
                                       std::to_string(c)))
                        .ok());
        std::uint64_t seq = 0;
        CheckinBundle shipped;
        ASSERT_TRUE((*session)->Checkin(&seq, &shipped).ok());
        std::lock_guard<std::mutex> lock(history_mu);
        history.push_back(Commit{seq, std::move(shipped)});
      });
    }
    for (std::thread& p : pair) p.join();
  }
  ASSERT_TRUE((*pinner)->Abandon().ok());

  // --- Coverage floors: the run must have exercised the hard paths. ---
  const int kExpectedCommits = kThreads * kCommitsPerThread + 4;
  EXPECT_GE(conflicts.load(), 3);
  EXPECT_GE(server.lock_conflicts(), 3u);
  EXPECT_GE(poison_rejections.load(), 1) << "audit-rollback never ran";
  EXPECT_EQ(server.checkins_rejected(),
            static_cast<std::uint64_t>(poison_rejections.load()));
  EXPECT_EQ(server.checkins_applied(),
            static_cast<std::uint64_t>(kExpectedCommits));
  ASSERT_GE(static_cast<int>(history.size()), 10);
  EXPECT_EQ(server.num_locks(), 0u);

  // Committed sequence numbers are dense 1..N: rejected check-ins never
  // consume a slot in the total order.
  std::sort(history.begin(), history.end(),
            [](const Commit& a, const Commit& b) { return a.seq < b.seq; });
  for (size_t i = 0; i < history.size(); ++i) {
    ASSERT_EQ(history[i].seq, i + 1) << "commit order has a gap";
  }

  int disjoint_adjacent = 0;
  for (size_t i = 0; i + 1 < history.size(); ++i) {
    if (Disjoint(history[i].bundle, history[i + 1].bundle)) {
      ++disjoint_adjacent;
    }
  }
  EXPECT_GE(disjoint_adjacent, 2)
      << "no adjacent disjoint commits: striped check-ins never ran in "
         "parallel";

  // --- Serializability: master == serial replay in commit order. ---
  core::Database replay(fig3->schema);
  SeedRoots(&replay, *fig3);
  for (const Commit& c : history) Replay(&replay, c.bundle);
  EXPECT_EQ(Fingerprint(*server.master()), Fingerprint(replay))
      << "master state diverged from the serial replay of its own "
         "commit order";

  // The published snapshot is the same state: the last commit's publish
  // included itself.
  auto snap = server.PinSnapshot();
  EXPECT_EQ(Fingerprint(snap->database()), Fingerprint(replay));

  // --- Commutativity: swapping an adjacent disjoint pair is also a
  // legal serial order and must land on the same bytes. ---
  int swaps_checked = 0;
  for (size_t i = 0; i + 1 < history.size() && swaps_checked < 2; ++i) {
    if (!Disjoint(history[i].bundle, history[i + 1].bundle)) continue;
    core::Database swapped(fig3->schema);
    SeedRoots(&swapped, *fig3);
    for (size_t j = 0; j < history.size(); ++j) {
      size_t k = j;
      if (j == i) k = i + 1;
      if (j == i + 1) k = i;
      Replay(&swapped, history[k].bundle);
    }
    EXPECT_EQ(Fingerprint(*server.master()), Fingerprint(swapped))
        << "disjoint adjacent commits " << history[i].seq << " and "
        << history[i + 1].seq << " do not commute";
    ++swaps_checked;
    ++i;  // do not reuse a commit in two overlapping swaps
  }
  EXPECT_EQ(swaps_checked, 2);
}

}  // namespace
}  // namespace seed::multiuser
