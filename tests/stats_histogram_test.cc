// Property tests for the equi-depth histogram behind
// AttributeIndex::EstimateRange (statistics v2).
//
// Against randomized mutation histories (inserts, key updates, removals
// — the same Set()-diff maintenance the database drives), every wide
// range estimate must stay within the histogram's provable error bound:
// buckets fully inside the range are counted exactly and the two
// partially covered boundary buckets contribute half their rows, so
// |estimate - exact| <= sum over partial buckets of rows/2. When the
// range carries enough mass to dominate its boundary buckets the
// estimate is therefore within 2x of the truth — the acceptance bar for
// the planner's wide-range cardinalities. Structural invariants (bucket
// rows sum to num_entries, bounds ascend, lazy rebuild tracks the
// mutation counter) are pinned along the way.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "index/attribute_index.h"

namespace seed::index {
namespace {

using core::Value;

/// A skewed key for the next insert: a few hot values, some clustered
/// mid-range mass, and a long uniform tail — enough shape that
/// equal-width bucketing would be badly wrong.
std::int64_t SkewedKey(Random& rng) {
  switch (rng.Uniform(4)) {
    case 0:
      return rng.UniformRange(0, 2);  // hot duplicates
    case 1:
      return 100 + rng.UniformRange(0, 19);  // dense cluster
    case 2:
      return 100 + rng.UniformRange(0, 199);  // medium spread
    default:
      return rng.UniformRange(0, 999);  // uniform tail
  }
}

TEST(StatsHistogramTest, EstimateWithinBoundaryBucketBound) {
  size_t histogram_checks = 0;
  size_t two_x_checks = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Random rng(seed * 104729);
    AttributeIndex index{IndexSpec{}};
    std::map<std::uint64_t, std::int64_t> model;  // entry -> its one key
    std::uint64_t next_id = 1;

    for (int round = 0; round < 12; ++round) {
      // A burst of random mutations: grow early rounds, then mix in
      // updates and removals so the histogram sees real churn.
      int burst = 150 + static_cast<int>(rng.Uniform(100));
      for (int i = 0; i < burst; ++i) {
        int action = static_cast<int>(rng.Uniform(10));
        if (model.empty() || action < 6) {
          std::uint64_t id = next_id++;
          std::int64_t key = SkewedKey(rng);
          index.Set(ObjectId(id), {Value::Int(key)});
          model[id] = key;
        } else {
          auto it = model.begin();
          std::advance(it, static_cast<long>(rng.Uniform(model.size())));
          if (action < 8) {  // re-key an existing entry
            std::int64_t key = SkewedKey(rng);
            index.Set(ObjectId(it->first), {Value::Int(key)});
            it->second = key;
          } else {  // remove it
            index.Set(ObjectId(it->first), {});
            model.erase(it);
          }
        }
      }

      // Structural invariants after every burst: the lazily rebuilt
      // histogram partitions exactly the live postings, in key order.
      auto buckets = index.Histogram();
      size_t rows_sum = 0;
      for (size_t b = 0; b < buckets.size(); ++b) {
        rows_sum += buckets[b].rows;
        EXPECT_FALSE(Value::Less()(buckets[b].upper, buckets[b].lower));
        if (b > 0) {
          EXPECT_TRUE(
              Value::Less()(buckets[b - 1].upper, buckets[b].lower));
        }
      }
      EXPECT_EQ(rows_sum, index.num_entries());

      // Random wide ranges: probe_limit 2 sends everything spanning
      // more than 2 x 2 distinct keys through the histogram path (the
      // narrower ones take the exactly-counting bounded walk, whose
      // pro-rating has its own, different error story — skip those).
      for (int q = 0; q < 30; ++q) {
        std::int64_t a = rng.UniformRange(0, 999);
        std::int64_t b = rng.UniformRange(0, 999);
        if (a > b) std::swap(a, b);
        constexpr size_t kProbeLimit = 2;
        std::set<std::int64_t> distinct;
        for (const auto& [id, key] : model) {
          if (key >= a && key <= b) distinct.insert(key);
        }
        if (distinct.size() <= 2 * kProbeLimit) continue;
        Value lo = Value::Int(a), hi = Value::Int(b);
        double est = index.EstimateRange(lo, true, hi, true, kProbeLimit);
        double exact =
            static_cast<double>(index.Range(lo, true, hi, true).size());

        // The provable bound: full buckets are exact, each partially
        // covered bucket contributes rows/2 and can err by at most that.
        double partial_rows = 0.0;
        for (const auto& bucket : buckets) {
          std::int64_t bl = bucket.lower.as_int();
          std::int64_t bu = bucket.upper.as_int();
          bool overlaps = bu >= a && bl <= b;
          bool inside = bl >= a && bu <= b;
          if (overlaps && !inside) {
            partial_rows += static_cast<double>(bucket.rows);
          }
        }
        EXPECT_LE(std::abs(est - exact), partial_rows / 2.0 + 1e-9)
            << "seed " << seed << " range [" << a << ", " << b << "] est "
            << est << " exact " << exact;
        ++histogram_checks;

        // Ranges whose true mass dominates the boundary buckets must
        // land within 2x — the planner acceptance bar for wide ranges.
        if (exact >= partial_rows && exact > 0.0) {
          EXPECT_LE(est, 2.0 * exact + 1e-9);
          EXPECT_GE(est, 0.5 * exact - 1e-9);
          ++two_x_checks;
        }
      }
    }
  }
  // The properties are only meaningful if the histogram path actually
  // ran, including plenty of mass-dominated (2x-checked) ranges.
  EXPECT_GE(histogram_checks, 1000u);
  EXPECT_GE(two_x_checks, 300u);
}

TEST(StatsHistogramTest, EmptyRangeOverPopulatedIndexEstimatesZero) {
  AttributeIndex index{IndexSpec{}};
  for (std::uint64_t id = 1; id <= 500; ++id) {
    index.Set(ObjectId(id), {Value::Int(static_cast<std::int64_t>(id % 50))});
  }
  // A wide-but-empty range beyond every key: the histogram must not
  // spread the 500 postings into it.
  EXPECT_EQ(index.EstimateRange(Value::Int(10'000), true,
                                Value::Int(99'999), true,
                                /*probe_limit=*/2),
            0.0);
  // And an empty index answers 0 with an empty histogram.
  AttributeIndex empty{IndexSpec{}};
  EXPECT_TRUE(empty.Histogram().empty());
  EXPECT_EQ(empty.EstimateRange(Value::Int(0), true, Value::Int(100), true),
            0.0);
}

TEST(StatsHistogramTest, MutationCounterDrivesLazyRebuild) {
  AttributeIndex index{IndexSpec{}};
  for (std::uint64_t id = 1; id <= 200; ++id) {
    index.Set(ObjectId(id), {Value::Int(static_cast<std::int64_t>(id))});
  }
  std::uint64_t before = index.mutation_count();
  auto first = index.Histogram();
  ASSERT_FALSE(first.empty());
  // No mutation: the snapshot is stable (same stamp, same buckets).
  EXPECT_EQ(index.mutation_count(), before);
  auto again = index.Histogram();
  ASSERT_EQ(again.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(again[i].rows, first[i].rows);
  }
  // A mutation moves the counter and the next snapshot reflects it.
  index.Set(ObjectId(1000), {Value::Int(1)});
  EXPECT_GT(index.mutation_count(), before);
  size_t rows_sum = 0;
  for (const auto& b : index.Histogram()) rows_sum += b.rows;
  EXPECT_EQ(rows_sum, index.num_entries());
}

}  // namespace
}  // namespace seed::index
