// Plan cache and adaptive-planning tests (statistics v2).
//
// The contract under test: the plan cache is an optimization, never a
// semantics or even an EXPLAIN-surface change. A cache-hit query must
// return exactly what the fresh-planned query returns AND print a
// byte-identical plan while the statistics are unchanged; past the
// drift ratio the entry is invalidated and the query plans fresh, again
// byte-identically to a cold cache. Adaptive execution extends the same
// promise to mis-estimated intermediates: when execution abandons the
// join tree mid-chain and re-enters the DP, the result still equals the
// brute-force reference, and the re-plan is surfaced in EXPLAIN ANALYZE
// and the planner.adaptive.replans.total counter.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "query/plan_cache.h"
#include "query/planner.h"
#include "schema/schema_builder.h"

namespace seed::query {
namespace {

using core::Database;
using core::Value;

std::uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

/// Items with an indexed INT value linked to plain targets — enough for
/// index-served selections, join chains, and statistics drift.
class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema::SchemaBuilder b("CacheWorld");
    item_ = b.AddIndependentClass("Item", schema::ValueType::kInt);
    target_ = b.AddIndependentClass("Target", schema::ValueType::kNone);
    link_ = b.AddAssociation(
        "Link", schema::Role{"src", item_, schema::Cardinality::Any()},
        schema::Role{"dst", target_, schema::Cardinality::Any()});
    auto schema = b.Build();
    ASSERT_TRUE(schema.ok());
    db_ = std::make_unique<Database>(*schema);
    ASSERT_TRUE(db_->CreateAttributeIndex({item_, ""}).ok());
    for (int i = 0; i < 120; ++i) {
      ObjectId id = *db_->CreateObject(item_, "I" + std::to_string(i));
      ASSERT_TRUE(db_->SetValue(id, Value::Int(i % 10)).ok());
      items_.push_back(id);
      if (i < 24) {
        targets_.push_back(
            *db_->CreateObject(target_, "T" + std::to_string(i)));
      }
      if (i % 3 == 0) {
        ASSERT_TRUE(
            db_->CreateRelationship(link_, id, targets_[i % 24 / 3]).ok());
      }
    }
    PlanCache::Global().Clear();
    PlanCache::Global().set_drift_ratio(2.0);
  }

  void TearDown() override {
    PlanCache::Global().Clear();
    PlanCache::Global().set_drift_ratio(2.0);
  }

  ClassId item_, target_;
  AssociationId link_;
  std::unique_ptr<Database> db_;
  std::vector<ObjectId> items_;
  std::vector<ObjectId> targets_;
};

TEST_F(PlanCacheTest, HitExecutesAndPrintsByteIdenticallyToFresh) {
  const std::string q = "find Item where value is 3";
  std::uint64_t hits = CounterValue("planner.cache.hits.total");
  std::uint64_t misses = CounterValue("planner.cache.misses.total");

  std::string fresh_plan;
  auto fresh = RunQuery(*db_, q, &fresh_plan);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(CounterValue("planner.cache.misses.total"), misses + 1);
  EXPECT_NE(fresh_plan.find("index-equals"), std::string::npos)
      << fresh_plan;

  std::string cached_plan;
  auto cached = RunQuery(*db_, q, &cached_plan);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(CounterValue("planner.cache.hits.total"), hits + 1);
  EXPECT_EQ(*cached, *fresh);
  // Unchanged statistics: the rebound plan is byte-identical, estimates
  // included — the EXPLAIN surface cannot tell a hit from a miss.
  EXPECT_EQ(cached_plan, fresh_plan);
}

TEST_F(PlanCacheTest, HitRebindsLiveLiterals) {
  // Same shape, different literals: the second query must hit the first
  // one's skeleton and still probe for ITS literal.
  auto fresh = RunQuery(*db_, "find Item where value is 3");
  ASSERT_TRUE(fresh.ok());
  std::uint64_t hits = CounterValue("planner.cache.hits.total");
  auto rebound = RunQuery(*db_, "find Item where value is 7");
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(CounterValue("planner.cache.hits.total"), hits + 1);
  std::vector<ObjectId> expected;
  for (ObjectId id : db_->ObjectsOfClass(item_)) {
    auto obj = db_->GetObject(id);
    ASSERT_TRUE(obj.ok());
    const Value& v = (*obj)->value;
    if (v.is_int() && v.as_int() == 7) expected.push_back(id);
  }
  EXPECT_EQ(*rebound, expected);
}

TEST_F(PlanCacheTest, JoinChainHitMatchesFreshByteForByte) {
  const std::string q =
      "find Item x join via Link to Target y where x value is 3";
  std::string fresh_plan;
  auto fresh = RunJoinChainQuery(*db_, q, &fresh_plan);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  std::uint64_t hits = CounterValue("planner.cache.hits.total");
  std::string cached_plan;
  auto cached = RunJoinChainQuery(*db_, q, &cached_plan);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(CounterValue("planner.cache.hits.total"), hits + 1);
  EXPECT_EQ(cached->tuples, fresh->tuples);
  EXPECT_EQ(cached_plan, fresh_plan);
}

TEST_F(PlanCacheTest, ExplainAnalyzeSurfacesTheHit) {
  ASSERT_TRUE(RunQuery(*db_, "find Item where value is 3").ok());
  QueryTrace trace;
  ASSERT_TRUE(
      RunQuery(*db_, "find Item where value is 3", nullptr, &trace).ok());
  EXPECT_TRUE(trace.plan.from_cache);
  EXPECT_NE(trace.Render(/*mask_times=*/true).find("plan-cache: hit"),
            std::string::npos);
}

TEST_F(PlanCacheTest, DriftPastRatioInvalidatesAndReplansFresh) {
  const std::string q = "find Item where value is 3";
  ASSERT_TRUE(RunQuery(*db_, q).ok());  // warm the cache

  // Triple the extent (and the index): every fingerprint drifts ~3x,
  // past the default 2x ratio.
  for (int i = 0; i < 260; ++i) {
    ObjectId id = *db_->CreateObject(item_, "D" + std::to_string(i));
    ASSERT_TRUE(db_->SetValue(id, Value::Int(i % 10)).ok());
  }

  std::uint64_t invalidations =
      CounterValue("planner.cache.invalidations.total");
  std::uint64_t hits = CounterValue("planner.cache.hits.total");
  std::string replanned_plan;
  auto replanned = RunQuery(*db_, q, &replanned_plan);
  ASSERT_TRUE(replanned.ok());
  EXPECT_EQ(CounterValue("planner.cache.invalidations.total"),
            invalidations + 1);
  EXPECT_EQ(CounterValue("planner.cache.hits.total"), hits);

  // The invalidated query planned fresh: byte-identical to a cold run.
  PlanCache::Global().Clear();
  std::string cold_plan;
  auto cold = RunQuery(*db_, q, &cold_plan);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(*replanned, *cold);
  EXPECT_EQ(replanned_plan, cold_plan);
}

TEST_F(PlanCacheTest, RaisedDriftRatioKeepsEntryAlive) {
  const std::string q = "find Item where value is 3";
  ASSERT_TRUE(RunQuery(*db_, q).ok());
  PlanCache::Global().set_drift_ratio(1000.0);
  for (int i = 0; i < 260; ++i) {
    ObjectId id = *db_->CreateObject(item_, "D" + std::to_string(i));
    ASSERT_TRUE(db_->SetValue(id, Value::Int(i % 10)).ok());
  }
  std::uint64_t hits = CounterValue("planner.cache.hits.total");
  std::string plan;
  auto hit = RunQuery(*db_, q, &plan);
  ASSERT_TRUE(hit.ok());
  // Soft staleness: the skeleton is reused (a hit), but the printed
  // estimates come from live statistics, never the stale capture.
  EXPECT_EQ(CounterValue("planner.cache.hits.total"), hits + 1);
  PlanCache::Global().Clear();
  std::string cold_plan;
  ASSERT_TRUE(RunQuery(*db_, q, &cold_plan).ok());
  EXPECT_EQ(plan, cold_plan);
}

TEST_F(PlanCacheTest, DisabledPlannerNeverTouchesTheCache) {
  LogicalChain chain;
  LogicalSelect binder;
  binder.cls = item_;
  binder.binder = "x";
  binder.pred = Predicate::ValueEquals(Value::Int(3));
  chain.binders.push_back(std::move(binder));
  Planner planner(db_.get());
  planner.set_plan_cache_enabled(false);
  ASSERT_TRUE(planner.Run(chain).ok());
  EXPECT_EQ(PlanCache::Global().size(), 0u);
  planner.set_plan_cache_enabled(true);
  ASSERT_TRUE(planner.Run(chain).ok());
  EXPECT_EQ(PlanCache::Global().size(), 1u);
}

/// A world built to mis-estimate: one hub Item holds every Link edge,
/// so a selection down to the hub estimates ~assoc/extent joined rows
/// while actually producing the association's whole population.
TEST(AdaptivePlanningTest, MisestimatedIntermediateTriggersReplan) {
  schema::SchemaBuilder b("SkewWorld");
  ClassId a_cls = b.AddIndependentClass("A", schema::ValueType::kInt);
  ClassId b_cls = b.AddIndependentClass("B", schema::ValueType::kNone);
  ClassId c_cls = b.AddIndependentClass("C", schema::ValueType::kNone);
  AssociationId ab = b.AddAssociation(
      "AB", schema::Role{"a", a_cls, schema::Cardinality::Any()},
      schema::Role{"b", b_cls, schema::Cardinality::Any()});
  AssociationId bc = b.AddAssociation(
      "BC", schema::Role{"b", b_cls, schema::Cardinality::Any()},
      schema::Role{"c", c_cls, schema::Cardinality::Any()});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  Database db(*schema);

  std::vector<ObjectId> as, bs, cs;
  for (int i = 0; i < 100; ++i) {
    as.push_back(*db.CreateObject(a_cls, "A" + std::to_string(i)));
    cs.push_back(*db.CreateObject(c_cls, "C" + std::to_string(i)));
  }
  for (int i = 0; i < 200; ++i) {
    bs.push_back(*db.CreateObject(b_cls, "B" + std::to_string(i)));
  }
  // Only the hub carries value 7; every AB edge hangs off it. The
  // uniform coverage model sees 1-of-100 selectivity over 200 edges and
  // estimates ~2 joined rows; execution produces all 200 — an 8x+
  // divergence that must re-enter the DP mid-chain.
  ASSERT_TRUE(db.SetValue(as[0], Value::Int(7)).ok());
  for (int i = 1; i < 100; ++i) {
    ASSERT_TRUE(db.SetValue(as[i], Value::Int(i % 5)).ok());
  }
  std::vector<std::vector<ObjectId>> expected;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.CreateRelationship(ab, as[0], bs[i]).ok());
    ASSERT_TRUE(db.CreateRelationship(bc, bs[i], cs[i % 100]).ok());
    expected.push_back({as[0], bs[i], cs[i % 100]});
  }
  std::sort(expected.begin(), expected.end());

  PlanCache::Global().Clear();
  std::uint64_t replans = CounterValue("planner.adaptive.replans.total");
  QueryTrace trace;
  auto r = RunJoinChainQuery(db,
                             "find A x join via AB to B y "
                             "join via BC to C z where x value is 7",
                             nullptr, &trace);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples, expected);
  EXPECT_GE(trace.plan.adaptive_replans, 1);
  EXPECT_GT(CounterValue("planner.adaptive.replans.total"), replans);
  EXPECT_NE(trace.Render(/*mask_times=*/true).find("adaptive-replans:"),
            std::string::npos);
  PlanCache::Global().Clear();
}

}  // namespace
}  // namespace seed::query
