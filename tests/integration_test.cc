// End-to-end integration tests combining every layer: the full paper
// walk-through (Figs. 1-5) on one database, with persistence, versions,
// patterns and multi-user operation interacting.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/persistence.h"
#include "schema/schema_builder.h"
#include "multiuser/client.h"
#include "multiuser/server.h"
#include "pattern/pattern_manager.h"
#include "pattern/variants.h"
#include "query/algebra.h"
#include "spades/spec_schema.h"
#include "version/version_io.h"
#include "version/version_manager.h"

namespace seed {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;
using version::VersionId;
using version::VersionManager;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = ::testing::TempDir() + "/integ." + std::to_string(::getpid()) +
           "." + std::to_string(counter++);
    std::filesystem::create_directories(dir_);
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
};

TEST_F(IntegrationTest, FullPaperWalkthrough) {
  VersionManager vm(db_.get());
  pattern::PatternManager pm(db_.get());

  // --- Fig. 1: the Alarms object structure --------------------------------
  ObjectId alarms = *db_->CreateObject(ids_.thing, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "AlarmHandler");
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.data).ok());
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId body = *db_->CreateSubObject(text, "Body");
  ObjectId contents = *db_->CreateSubObject(body, "Contents");
  ASSERT_TRUE(db_->SetValue(
                     contents, Value::String("Alarms are represented in an "
                                             "alarm display matrix"))
                  .ok());
  ObjectId selector = *db_->CreateSubObject(text, "Selector");
  ASSERT_TRUE(db_->SetValue(selector, Value::String("Representation")).ok());
  ObjectId kw0 = *db_->CreateSubObject(body, "Keywords");
  ASSERT_TRUE(db_->SetValue(kw0, Value::String("Alarmhandling")).ok());
  ObjectId kw1 = *db_->CreateSubObject(body, "Keywords");
  ASSERT_TRUE(db_->SetValue(kw1, Value::String("Display")).ok());

  // --- Fig. 3 narrative: vague -> precise -----------------------------------
  RelationshipId flow =
      *db_->CreateRelationship(ids_.access, alarms, handler);
  ASSERT_TRUE(db_->Reclassify(alarms, ids_.output_data).ok());
  ASSERT_TRUE(db_->ReclassifyRelationship(flow, ids_.write).ok());
  ObjectId n = *db_->CreateSubObject(flow, "NumberOfWrites");
  ASSERT_TRUE(db_->SetValue(n, Value::Int(2)).ok());

  // --- Fig. 4: versions ------------------------------------------------------
  ObjectId desc = *db_->CreateSubObject(handler, "Description");
  ASSERT_TRUE(db_->SetValue(desc, Value::String("Handles alarms")).ok());
  ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("1.0")).ok());
  ASSERT_TRUE(
      db_->SetValue(desc, Value::String("Handles alarms derived from "
                                        "ProcessData"))
          .ok());
  ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("2.0")).ok());
  ASSERT_TRUE(
      db_->SetValue(desc, Value::String("Generates alarms from process "
                                        "data, triggers Operator Alert"))
          .ok());

  auto v1 = vm.MaterializeView(*VersionId::Parse("1.0"));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*(*v1)->GetObject(*(*v1)->FindObjectByName(
                "AlarmHandler.Description")))
                ->value.as_string(),
            "Handles alarms");

  // --- Fig. 5: variants ------------------------------------------------------
  pattern::VariantFamily family("Configs", &pm);
  ASSERT_TRUE(family.AddCommonObject(handler).ok());
  ASSERT_TRUE(family
                  .CreateConnector("PO1", ids_.action, ids_.contained,
                                   /*connector_role=*/0, handler)
                  .ok());
  ObjectId var_a = *db_->CreateObject(ids_.action, "DriverA");
  ObjectId var_b = *db_->CreateObject(ids_.action, "DriverB");
  ASSERT_TRUE(family.AddVariant("A", {var_a}).ok());
  ASSERT_TRUE(family.AddVariant("B", {var_b}).ok());
  EXPECT_EQ(family.SharedRelationshipsOf(var_a).size(), 1u);
  EXPECT_EQ(family.SharedRelationshipsOf(var_b).size(), 1u);

  // --- Query the result ------------------------------------------------------
  query::Algebra algebra(db_.get());
  auto data = algebra.ClassExtent(ids_.data, "d");
  auto actions = algebra.ClassExtent(ids_.action, "a");
  auto joined =
      *algebra.RelationshipJoin(data, "d", ids_.access, actions, "a");
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined.tuples[0][0], alarms);
  EXPECT_EQ(joined.tuples[0][1], handler);

  // --- Persist everything and reload -----------------------------------------
  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir_).ok());
    ASSERT_TRUE(core::Persistence::SaveFull(*db_, &kv).ok());
    ASSERT_TRUE(version::VersionPersistence::Save(vm, &kv).ok());
    ASSERT_TRUE(kv.Close().ok());
  }
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  auto loaded = core::Persistence::Load(&kv);
  ASSERT_TRUE(loaded.ok());
  VersionManager loaded_vm(loaded->get());
  ASSERT_TRUE(version::VersionPersistence::Load(&loaded_vm, &kv).ok());

  EXPECT_TRUE((*loaded)->AuditConsistency().clean());
  EXPECT_EQ((*loaded)->num_live_objects(), db_->num_live_objects());
  EXPECT_EQ(loaded_vm.num_versions(), 2u);
  EXPECT_EQ(
      *(*loaded)->FindObjectByName("Alarms.Text[0].Body.Keywords[1]"), kw1);

  // The whole database is consistent; completeness reports the open work.
  core::Report completeness = db_->CheckCompleteness();
  EXPECT_FALSE(completeness.clean());  // e.g. handler never reads anything
  EXPECT_TRUE(db_->AuditConsistency().clean());
}

TEST_F(IntegrationTest, VersionsOfPatternedDatabase) {
  // Patterns and versions interact: a pattern update is a change like any
  // other and lands in the next version's delta.
  pattern::PatternManager pm(db_.get());
  VersionManager vm(db_.get());
  core::CreateOptions opts;
  opts.pattern = true;
  ObjectId p = *db_->CreateObject(ids_.action, "Template", opts);
  ObjectId pd = *db_->CreateSubObject(p, "Description");
  ASSERT_TRUE(db_->SetValue(pd, Value::String("shared v1")).ok());
  ObjectId real = *db_->CreateObject(ids_.action, "Real");
  ASSERT_TRUE(pm.Inherit(real, p).ok());
  ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("1.0")).ok());

  ASSERT_TRUE(db_->SetValue(pd, Value::String("shared v2")).ok());
  ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("2.0")).ok());

  auto v1 = vm.MaterializeView(*VersionId::Parse("1.0"));
  ASSERT_TRUE(v1.ok());
  ObjectId v1pd = *(*v1)->FindPatternByName("Template.Description");
  EXPECT_EQ((*(*v1)->GetObject(v1pd))->value.as_string(), "shared v1");
  EXPECT_EQ(pm.EffectiveValue(real, "Description")->as_string(),
            "shared v2");
}

TEST_F(IntegrationTest, MultiuserOverVersionedMaster) {
  auto fig3 = BuildFig3Schema();
  multiuser::Server server(fig3->schema);
  ObjectId alarms =
      *server.master()->CreateObject(ids_.output_data, "Alarms");
  (void)alarms;
  ASSERT_TRUE(
      server.global_versions()->CreateVersion(*VersionId::Parse("1.0")).ok());

  auto session = multiuser::ClientSession::Open(&server, "alice");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->CheckoutByName({"Alarms"}).ok());
  ObjectId local_alarms = *(*session)->local()->FindObjectByName("Alarms");
  ObjectId d = *(*session)->local()->CreateSubObject(local_alarms,
                                                     "Description");
  ASSERT_TRUE(
      (*session)->local()->SetValue(d, Value::String("updated")).ok());
  ASSERT_TRUE((*session)->Checkin().ok());

  // The global version history can snapshot the merged state.
  ASSERT_TRUE(
      server.global_versions()->CreateVersion(*VersionId::Parse("2.0")).ok());
  auto v1 = server.global_versions()->MaterializeView(*VersionId::Parse("1.0"));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(
      (*v1)->FindObjectByName("Alarms.Description").status().IsNotFound());
  auto v2 = server.global_versions()->MaterializeView(*VersionId::Parse("2.0"));
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE((*v2)->FindObjectByName("Alarms.Description").ok());
}

TEST_F(IntegrationTest, SchemaEvolutionWithLiveData) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  (void)alarms;
  // Evolve: add a Priority attribute to Thing.
  schema::SchemaBuilder b = schema::SchemaBuilder::Evolve(*db_->schema());
  ClassId priority = b.AddDependentClass(ids_.thing, "Priority",
                                         schema::Cardinality::Optional(),
                                         schema::ValueType::kInt);
  auto evolved = b.Build();
  ASSERT_TRUE(evolved.ok());
  ASSERT_TRUE(db_->MigrateToSchema(*evolved).ok());
  (void)priority;
  // The old object can use the new role immediately.
  ObjectId p = *db_->CreateSubObject(alarms, "Priority");
  ASSERT_TRUE(db_->SetValue(p, Value::Int(3)).ok());
  EXPECT_TRUE(db_->AuditConsistency().clean());
}

TEST_F(IntegrationTest, MigrationRejectedWhenDataWouldBreak) {
  // Build data under Fig. 3, then try to migrate to a schema where class
  // ids mean different things. The audit must veto the swap.
  ObjectId alarms = *db_->CreateObject(ids_.output_data, "Alarms");
  (void)alarms;
  schema::SchemaBuilder b("Unrelated");
  b.AddIndependentClass("OnlyOne");
  auto tiny = b.Build();
  ASSERT_TRUE(tiny.ok());
  Status s = db_->MigrateToSchema(*tiny);
  EXPECT_TRUE(s.IsConsistencyViolation());
  // Original schema still in force.
  EXPECT_EQ(db_->schema()->name(), "Fig3GeneralizedSpec");
}

}  // namespace
}  // namespace seed
