// HeapFile and WAL tests: record lifecycle across page chains, scans,
// update relocation; log append/replay, torn-tail tolerance, truncation.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "storage/heap_file.h"
#include "storage/wal.h"

namespace seed::storage {
namespace {

std::string TempPath(const std::string& name) {
  static int counter = 0;
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid()) + "." + std::to_string(counter++);
}

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("heap");
    ASSERT_TRUE(disk_.Open(path_).ok());
    pool_ = std::make_unique<BufferPool>(&disk_, 16);
    heap_ = std::make_unique<HeapFile>(pool_.get());
    ASSERT_TRUE(heap_->Create().ok());
  }
  void TearDown() override {
    heap_.reset();
    pool_.reset();
    (void)disk_.Close();
    std::remove(path_.c_str());
  }

  std::string path_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, InsertGetDelete) {
  auto rid = heap_->Insert("record one");
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*heap_->Get(*rid), "record one");
  ASSERT_TRUE(heap_->Delete(*rid).ok());
  EXPECT_TRUE(heap_->Get(*rid).status().IsNotFound());
}

TEST_F(HeapFileTest, GrowsAcrossPages) {
  std::string rec(1000, 'x');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(heap_->Insert(rec).ok());
  }
  EXPECT_GT(heap_->num_pages(), 5u);
  EXPECT_EQ(*heap_->CountRecords(), 50u);
}

TEST_F(HeapFileTest, UpdateInPlaceKeepsRecordId) {
  auto rid = heap_->Insert("0123456789");
  auto updated = heap_->Update(*rid, "01234");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, *rid);
  EXPECT_EQ(*heap_->Get(*rid), "01234");
}

TEST_F(HeapFileTest, UpdateMayRelocate) {
  // Fill the first page almost completely so a grow-update must move.
  auto rid = heap_->Insert("tiny");
  std::string filler(1500, 'f');
  while (heap_->num_pages() == 1) {
    ASSERT_TRUE(heap_->Insert(filler).ok());
  }
  std::string big(4000, 'b');
  auto updated = heap_->Update(*rid, big);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*heap_->Get(*updated), big);
}

TEST_F(HeapFileTest, UpdateMissingRecordFails) {
  auto rid = heap_->Insert("x");
  ASSERT_TRUE(heap_->Delete(*rid).ok());
  EXPECT_TRUE(heap_->Update(*rid, "y").status().IsNotFound());
}

TEST_F(HeapFileTest, OversizeRecordRejected) {
  std::string huge(kPageSize + 1, 'x');
  EXPECT_TRUE(heap_->Insert(huge).status().IsInvalidArgument());
}

TEST_F(HeapFileTest, ScanSeesAllLiveRecords) {
  std::unordered_map<std::string, int> expected;
  for (int i = 0; i < 200; ++i) {
    std::string rec = "rec_" + std::to_string(i);
    ASSERT_TRUE(heap_->Insert(rec).ok());
    expected[rec] = 1;
  }
  size_t seen = 0;
  ASSERT_TRUE(heap_
                  ->Scan([&](RecordId, std::string_view rec) {
                    EXPECT_EQ(expected.count(std::string(rec)), 1u);
                    ++seen;
                  })
                  .ok());
  EXPECT_EQ(seen, 200u);
}

TEST_F(HeapFileTest, ReopenFindsRecords) {
  PageId first = heap_->first_page();
  auto rid = heap_->Insert("persistent");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(pool_->FlushAll().ok());

  HeapFile reopened(pool_.get());
  ASSERT_TRUE(reopened.Open(first).ok());
  EXPECT_EQ(*reopened.Get(*rid), "persistent");
  EXPECT_EQ(*reopened.CountRecords(), 1u);
}

TEST_F(HeapFileTest, ChurnMatchesModel) {
  Random rng(99);
  std::unordered_map<std::uint64_t, std::pair<RecordId, std::string>> model;
  std::uint64_t next_key = 0;
  for (int step = 0; step < 3000; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.5 || model.empty()) {
      std::string rec = rng.Identifier(1 + rng.Uniform(300));
      auto rid = heap_->Insert(rec);
      ASSERT_TRUE(rid.ok());
      model[next_key++] = {*rid, rec};
    } else if (roll < 0.75) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string rec = rng.Identifier(1 + rng.Uniform(600));
      auto rid = heap_->Update(it->second.first, rec);
      ASSERT_TRUE(rid.ok());
      it->second = {*rid, rec};
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(heap_->Delete(it->second.first).ok());
      model.erase(it);
    }
  }
  EXPECT_EQ(*heap_->CountRecords(), model.size());
  for (const auto& [key, entry] : model) {
    EXPECT_EQ(*heap_->Get(entry.first), entry.second);
  }
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { path_ = TempPath("wal"); }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(WalTest, AppendAndReplay) {
  Wal wal;
  ASSERT_TRUE(wal.Open(path_, false).ok());
  ASSERT_TRUE(wal.AppendPut(1, "one").ok());
  ASSERT_TRUE(wal.AppendPut(2, "two").ok());
  ASSERT_TRUE(wal.AppendDelete(1).ok());

  std::vector<WalRecord> seen;
  ASSERT_TRUE(wal.Replay([&](const WalRecord& rec) {
                   seen.push_back(rec);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].op, WalOp::kPut);
  EXPECT_EQ(seen[0].key, 1u);
  EXPECT_EQ(seen[0].value, "one");
  EXPECT_EQ(seen[2].op, WalOp::kDelete);
  EXPECT_EQ(seen[2].key, 1u);
}

TEST_F(WalTest, ReplaySurvivesReopen) {
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path_, true).ok());
    ASSERT_TRUE(wal.AppendPut(7, "seven").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  Wal wal;
  ASSERT_TRUE(wal.Open(path_, false).ok());
  size_t count = 0;
  ASSERT_TRUE(wal.Replay([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST_F(WalTest, TornTailIsIgnored) {
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path_, false).ok());
    ASSERT_TRUE(wal.AppendPut(1, "intact").ok());
    ASSERT_TRUE(wal.AppendPut(2, "will be torn").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Chop the last 5 bytes off, simulating a crash mid-append.
  {
    FILE* f = fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    ASSERT_EQ(ftruncate(fileno(f), size - 5), 0);
    fclose(f);
  }
  Wal wal;
  ASSERT_TRUE(wal.Open(path_, false).ok());
  std::vector<WalRecord> seen;
  ASSERT_TRUE(wal.Replay([&](const WalRecord& rec) {
                   seen.push_back(rec);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].value, "intact");
}

TEST_F(WalTest, CorruptPayloadStopsReplay) {
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path_, false).ok());
    ASSERT_TRUE(wal.AppendPut(1, "good").ok());
    ASSERT_TRUE(wal.AppendPut(2, "to be corrupted").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  {
    FILE* f = fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    fseek(f, -3, SEEK_END);
    fputc('X', f);
    fclose(f);
  }
  Wal wal;
  ASSERT_TRUE(wal.Open(path_, false).ok());
  size_t count = 0;
  ASSERT_TRUE(wal.Replay([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST_F(WalTest, TruncateEmptiesLog) {
  Wal wal;
  ASSERT_TRUE(wal.Open(path_, false).ok());
  ASSERT_TRUE(wal.AppendPut(1, "x").ok());
  EXPECT_GT(*wal.SizeBytes(), 0u);
  ASSERT_TRUE(wal.Truncate().ok());
  EXPECT_EQ(*wal.SizeBytes(), 0u);
  size_t count = 0;
  ASSERT_TRUE(wal.Replay([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 0u);
}

TEST_F(WalTest, ApplyErrorAborts) {
  Wal wal;
  ASSERT_TRUE(wal.Open(path_, false).ok());
  ASSERT_TRUE(wal.AppendPut(1, "x").ok());
  Status s = wal.Replay(
      [](const WalRecord&) { return Status::Internal("boom"); });
  EXPECT_TRUE(s.IsInternal());
}

}  // namespace
}  // namespace seed::storage
