// Tests for the logical-plan IR and the DP join-order optimizer: the
// four textual entry points are thin wrappers over the lowering path, so
// running a query through RunQuery / RunRelationshipQuery / RunJoinQuery
// / RunJoinChainQuery must produce byte-identical results (and EXPLAIN
// strings) to hand-lowering the same query into a LogicalChain and
// executing it through Planner::Run. The DP itself is pinned on shape
// selection: textual left-deep on ties, selective-hop-first reordering,
// and a bushy segment x segment tree on a small-HUGE-small chain.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "query/logical.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "schema/schema_builder.h"
#include "spades/spec_schema.h"

namespace seed::query {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;

class LogicalPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);

    alarms_ = *db_->CreateObject(ids_.output_data, "Alarms");
    process_ = *db_->CreateObject(ids_.input_data, "ProcessData");
    sensor_ = *db_->CreateObject(ids_.action, "Sensor");
    display_ = *db_->CreateObject(ids_.action, "Display");
    ASSERT_TRUE(db_->CreateRelationship(ids_.read, process_, sensor_).ok());
    ASSERT_TRUE(db_->CreateRelationship(ids_.write, alarms_, sensor_).ok());
    ASSERT_TRUE(
        db_->CreateRelationship(ids_.contained, sensor_, display_).ok());
    auto writes = db_->RelationshipsOfAssociation(ids_.write);
    ASSERT_EQ(writes.size(), 1u);
    ObjectId n = *db_->CreateSubObject(writes[0], "NumberOfWrites");
    ASSERT_TRUE(db_->SetValue(n, Value::Int(5)).ok());
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
  ObjectId alarms_, process_, sensor_, display_;
};

// --- Byte-identical lowering regression --------------------------------------

TEST_F(LogicalPlanTest, RunQueryEqualsHandLoweredChain) {
  std::string text_plan;
  auto via_text = RunQuery(*db_, "find Data where name contains Alarm",
                           &text_plan);
  ASSERT_TRUE(via_text.ok()) << via_text.status().ToString();

  LogicalChain chain;
  chain.binders.push_back(
      LogicalSelect::Objects(ids_.data, "x", Predicate::NameContains("Alarm")));
  Planner planner(db_.get());
  Planner::PhysicalPlan plan;
  auto via_ir = planner.Run(chain, &plan);
  ASSERT_TRUE(via_ir.ok()) << via_ir.status().ToString();
  EXPECT_EQ(*via_text, via_ir->ids);
  EXPECT_EQ(text_plan, plan.ToString() + "; actual " +
                           std::to_string(via_ir->ids.size()));
}

TEST_F(LogicalPlanTest, RunRelationshipQueryEqualsHandLoweredChain) {
  std::string text_plan;
  auto via_text = RunRelationshipQuery(
      *db_, "find rel Write where NumberOfWrites > 3", &text_plan);
  ASSERT_TRUE(via_text.ok()) << via_text.status().ToString();

  LogicalChain chain;
  std::vector<RelCondition> conds;
  conds.push_back({"NumberOfWrites", Predicate::IntGreater(3)});
  chain.binders.push_back(
      LogicalSelect::Relationships(ids_.write, "r", std::move(conds)));
  Planner planner(db_.get());
  Planner::PhysicalPlan plan;
  auto via_ir = planner.Run(chain, &plan);
  ASSERT_TRUE(via_ir.ok()) << via_ir.status().ToString();
  EXPECT_EQ(*via_text, via_ir->relationships);
  EXPECT_EQ(text_plan, plan.ToString() + "; actual " +
                           std::to_string(via_ir->relationships.size()));
}

TEST_F(LogicalPlanTest, RunJoinQueryEqualsHandLoweredChain) {
  std::string text_plan;
  auto via_text = RunJoinQuery(
      *db_, "find Data d join via Access to Action a "
            "where d name contains Alarm",
      &text_plan);
  ASSERT_TRUE(via_text.ok()) << via_text.status().ToString();

  LogicalChain chain;
  chain.binders.push_back(LogicalSelect::Objects(
      ids_.data, "d", Predicate::NameContains("Alarm")));
  chain.binders.push_back(LogicalSelect::Objects(ids_.action, "a"));
  chain.hops.push_back({ids_.access, 0});
  Planner planner(db_.get());
  Planner::PhysicalPlan plan;
  auto via_ir = planner.Run(chain, &plan);
  ASSERT_TRUE(via_ir.ok()) << via_ir.status().ToString();
  std::vector<std::pair<ObjectId, ObjectId>> ir_pairs;
  for (const auto& t : via_ir->tuples.tuples) {
    ir_pairs.emplace_back(t[0], t[1]);
  }
  EXPECT_EQ(*via_text, ir_pairs);
  EXPECT_EQ(text_plan, plan.ToString() + "; actual " +
                           std::to_string(ir_pairs.size()));
}

TEST_F(LogicalPlanTest, RunJoinChainQueryEqualsHandLoweredChain) {
  std::string text_plan;
  auto via_text = RunJoinChainQuery(
      *db_, "find Data d join via Access to Action a "
            "join via Contained to Action c",
      &text_plan);
  ASSERT_TRUE(via_text.ok()) << via_text.status().ToString();

  LogicalChain chain;
  chain.binders.push_back(LogicalSelect::Objects(ids_.data, "d"));
  chain.binders.push_back(LogicalSelect::Objects(ids_.action, "a"));
  chain.binders.push_back(LogicalSelect::Objects(ids_.action, "c"));
  chain.hops.push_back({ids_.access, 0});
  chain.hops.push_back({ids_.contained, 0});
  Planner planner(db_.get());
  Planner::PhysicalPlan plan;
  auto via_ir = planner.Run(chain, &plan);
  ASSERT_TRUE(via_ir.ok()) << via_ir.status().ToString();
  EXPECT_EQ(via_text->tuples, via_ir->tuples.tuples);
  EXPECT_EQ(text_plan,
            plan.ToString() + "; actual " +
                std::to_string(via_ir->tuples.tuples.size()));
}

// --- Chain validation --------------------------------------------------------

TEST_F(LogicalPlanTest, ValidateRejectsBadShapes) {
  Planner planner(db_.get());

  LogicalChain empty;
  EXPECT_TRUE(planner.Optimize(empty).status().IsInvalidArgument());

  // Binder/hop counts must line up.
  LogicalChain dangling;
  dangling.binders.push_back(LogicalSelect::Objects(ids_.data, "d"));
  dangling.hops.push_back({ids_.access, 0});
  EXPECT_TRUE(planner.Optimize(dangling).status().IsInvalidArgument());

  // Duplicate binder names.
  LogicalChain dup;
  dup.binders.push_back(LogicalSelect::Objects(ids_.data, "d"));
  dup.binders.push_back(LogicalSelect::Objects(ids_.action, "d"));
  dup.hops.push_back({ids_.access, 0});
  Status s = dup.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("join binders must differ"), std::string::npos);

  // Relationship extents only come in the no-hop form.
  LogicalChain rel_in_chain;
  rel_in_chain.binders.push_back(LogicalSelect::Objects(ids_.data, "d"));
  rel_in_chain.binders.push_back(
      LogicalSelect::Relationships(ids_.write, "r"));
  rel_in_chain.hops.push_back({ids_.access, 0});
  EXPECT_TRUE(rel_in_chain.Validate().IsInvalidArgument());

  // Hop roles are 0 or 1.
  LogicalChain bad_role;
  bad_role.binders.push_back(LogicalSelect::Objects(ids_.data, "d"));
  bad_role.binders.push_back(LogicalSelect::Objects(ids_.action, "a"));
  bad_role.hops.push_back({ids_.access, 2});
  EXPECT_TRUE(bad_role.Validate().IsInvalidArgument());

  // The optimizer's hop ceiling.
  LogicalChain too_long;
  too_long.binders.push_back(LogicalSelect::Objects(ids_.data, "b0"));
  for (size_t i = 0; i < LogicalChain::kMaxHops + 1; ++i) {
    too_long.binders.push_back(LogicalSelect::Objects(
        ids_.action, "b" + std::to_string(i + 1)));
    too_long.hops.push_back({ids_.access, 0});
  }
  s = too_long.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("at most 6 hops"), std::string::npos);
}

// --- DP shape selection ------------------------------------------------------

TEST_F(LogicalPlanTest, OptimizeSingleBinderIsTheSelectPlan) {
  LogicalChain chain;
  chain.binders.push_back(LogicalSelect::Objects(
      ids_.data, "d", Predicate::NameContains("Alarm")));
  Planner planner(db_.get());
  auto plan = planner.Optimize(chain);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->selects.size(), 1u);
  EXPECT_EQ(plan->selects[0].ToString(),
            planner.PlanSelect(ids_.data, Predicate::NameContains("Alarm"))
                .ToString());
  ASSERT_NE(plan->root, nullptr);
  EXPECT_EQ(plan->root->kind, Planner::PhysicalPlan::Node::Kind::kInput);
  EXPECT_FALSE(plan->HasBushyJoin());
}

TEST(LogicalPlanDpTest, ChoosesBushyTreeOnSmallHugeSmallChain) {
  // Tiny end associations around a dense middle: the cheapest way to
  // cross the middle is a hop join of two already-reduced multi-hop
  // segments — a bushy tree no left-deep ordering expresses. The DP
  // must find it, and its modeled cost must beat every left-deep order.
  schema::SchemaBuilder b("BushyDp");
  ClassId a_cls = b.AddIndependentClass("A", schema::ValueType::kNone);
  ClassId b_cls = b.AddIndependentClass("B", schema::ValueType::kNone);
  ClassId c_cls = b.AddIndependentClass("C", schema::ValueType::kNone);
  ClassId d_cls = b.AddIndependentClass("D", schema::ValueType::kNone);
  AssociationId left_tiny = b.AddAssociation(
      "LeftTiny", schema::Role{"a", a_cls, schema::Cardinality::Any()},
      schema::Role{"b", b_cls, schema::Cardinality::Any()});
  AssociationId middle = b.AddAssociation(
      "Middle", schema::Role{"b", b_cls, schema::Cardinality::Any()},
      schema::Role{"c", c_cls, schema::Cardinality::Any()});
  AssociationId right_tiny = b.AddAssociation(
      "RightTiny", schema::Role{"c", c_cls, schema::Cardinality::Any()},
      schema::Role{"d", d_cls, schema::Cardinality::Any()});
  Database db(*b.Build());
  std::vector<ObjectId> as, bs, cs, ds;
  for (int i = 0; i < 100; ++i) {
    as.push_back(*db.CreateObject(a_cls, "A" + std::to_string(i)));
    bs.push_back(*db.CreateObject(b_cls, "B" + std::to_string(i)));
    cs.push_back(*db.CreateObject(c_cls, "C" + std::to_string(i)));
    ds.push_back(*db.CreateObject(d_cls, "D" + std::to_string(i)));
  }
  for (int i = 0; i < 8; ++i) {
    (void)*db.CreateRelationship(left_tiny, as[i], bs[i]);
    (void)*db.CreateRelationship(right_tiny, cs[i], ds[i]);
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 40; ++j) {
      (void)*db.CreateRelationship(middle, bs[i], cs[(i + j * 13) % 100]);
    }
  }
  std::vector<Planner::PipelineHop> hops{{left_tiny, 0, a_cls, b_cls},
                                         {middle, 0, b_cls, c_cls},
                                         {right_tiny, 0, c_cls, d_cls}};
  Planner planner(&db);
  Planner::PhysicalPlan plan = planner.PlanJoinPipeline(hops, {100, 100,
                                                               100, 100});
  ASSERT_NE(plan.root, nullptr);
  EXPECT_TRUE(plan.HasBushyJoin()) << plan.ToString();
  // The bushy root crosses the middle hop with two joined segments.
  EXPECT_EQ(plan.root->kind, Planner::PhysicalPlan::Node::Kind::kHopJoin);
  EXPECT_EQ(plan.root->hop, 1) << plan.ToString();
  EXPECT_NE(plan.root->left->kind,
            Planner::PhysicalPlan::Node::Kind::kInput);
  EXPECT_NE(plan.root->right->kind,
            Planner::PhysicalPlan::Node::Kind::kInput);

  // Cheaper than every left-deep order, as costed by the same model.
  auto extent = [](const std::vector<ObjectId>& ids, const char* attr) {
    QueryRelation rel;
    rel.attributes = {attr};
    for (ObjectId id : ids) rel.tuples.push_back({id});
    return rel;
  };
  std::vector<QueryRelation> inputs{extent(as, "a"), extent(bs, "b"),
                                    extent(cs, "c"), extent(ds, "d")};
  for (const auto& order : Planner::LeftDeepOrders(hops.size())) {
    Planner::PhysicalPlan left_deep;
    auto r = planner.JoinPipelineInOrder(inputs, hops, order, &left_deep);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_LT(plan.est_cost, left_deep.est_cost)
        << "order " << order[0] << order[1] << order[2];
  }
}

TEST(LogicalPlanDpTest, TiesKeepTheTextualLeftDeepTree) {
  // A world with no statistics at all: every candidate costs zero, so
  // the DP must deterministically reconstruct the textual left-deep
  // composition.
  schema::SchemaBuilder b("TieDp");
  ClassId a_cls = b.AddIndependentClass("A", schema::ValueType::kNone);
  ClassId b_cls = b.AddIndependentClass("B", schema::ValueType::kNone);
  ClassId c_cls = b.AddIndependentClass("C", schema::ValueType::kNone);
  ClassId d_cls = b.AddIndependentClass("D", schema::ValueType::kNone);
  AssociationId h0 = b.AddAssociation(
      "H0", schema::Role{"a", a_cls, schema::Cardinality::Any()},
      schema::Role{"b", b_cls, schema::Cardinality::Any()});
  AssociationId h1 = b.AddAssociation(
      "H1", schema::Role{"b", b_cls, schema::Cardinality::Any()},
      schema::Role{"c", c_cls, schema::Cardinality::Any()});
  AssociationId h2 = b.AddAssociation(
      "H2", schema::Role{"c", c_cls, schema::Cardinality::Any()},
      schema::Role{"d", d_cls, schema::Cardinality::Any()});
  Database db(*b.Build());
  std::vector<Planner::PipelineHop> hops{{h0, 0, a_cls, b_cls},
                                         {h1, 0, b_cls, c_cls},
                                         {h2, 0, c_cls, d_cls}};
  Planner planner(&db);
  Planner::PhysicalPlan plan = planner.PlanJoinPipeline(hops, {0, 0, 0, 0});
  ASSERT_NE(plan.root, nullptr);
  EXPECT_EQ(plan.HopOrder(), (std::vector<int>{0, 1, 2})) << plan.ToString();
  EXPECT_FALSE(plan.HasBushyJoin()) << plan.ToString();
}

}  // namespace
}  // namespace seed::query
