// Tests for the common substrate: Status/Result, macros, strings/paths,
// byte coding, deterministic randomness.

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/ids.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace seed {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("object 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "object 42");
  EXPECT_EQ(s.ToString(), "not found: object 42");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ConsistencyViolation("x").IsConsistencyViolation());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::LockConflict("x").IsLockConflict());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::Corruption("bad page");
  Status b = a;
  EXPECT_EQ(a, b);
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.IsCorruption());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IoError("pread failed").WithContext("page 7");
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(s.message(), "page 7: pread failed");
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

// --- Result ----------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SEED_ASSIGN_OR_RETURN(int h, Half(x));
  SEED_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

Status EnsureSmall(int x) {
  if (x > 100) return Status::InvalidArgument("too big");
  return Status::OK();
}

Status Combined(int x) {
  SEED_RETURN_IF_ERROR(EnsureSmall(x));
  SEED_ASSIGN_OR_RETURN(int q, Quarter(x));
  (void)q;
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Combined(8).ok());
  EXPECT_TRUE(Combined(200).IsInvalidArgument());
  EXPECT_FALSE(Combined(10).ok());
}

// --- TypedId -----------------------------------------------------------------

TEST(IdsTest, InvalidByDefault) {
  ObjectId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.raw(), 0u);
}

TEST(IdsTest, GeneratorIsMonotonic) {
  IdGenerator<ObjectId> gen;
  ObjectId a = gen.Next();
  ObjectId b = gen.Next();
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
}

TEST(IdsTest, ReserveThroughSkipsUsedIds) {
  IdGenerator<ObjectId> gen;
  gen.ReserveThrough(ObjectId(100));
  EXPECT_EQ(gen.Next().raw(), 101u);
  gen.ReserveThrough(ObjectId(50));  // lower watermark is a no-op
  EXPECT_EQ(gen.Next().raw(), 102u);
}

TEST(IdsTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ObjectId, ClassId>);
  static_assert(!std::is_same_v<RelationshipId, AssociationId>);
}

// --- Strings and paths -------------------------------------------------------

TEST(StringsTest, SplitAndJoin) {
  auto parts = strings::Split("a.b..c", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(strings::Join(parts, "."), "a.b..c");
  EXPECT_EQ(strings::Split("abc", '.').size(), 1u);
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(strings::StartsWith("Alarms.Text", "Alarms"));
  EXPECT_FALSE(strings::StartsWith("Al", "Alarms"));
  EXPECT_TRUE(strings::EndsWith("Alarms.Text", ".Text"));
  EXPECT_FALSE(strings::EndsWith("Text", "Alarms.Text"));
}

TEST(StringsTest, IdentifierValidation) {
  EXPECT_TRUE(strings::IsIdentifier("AlarmHandler"));
  EXPECT_TRUE(strings::IsIdentifier("_x9"));
  EXPECT_FALSE(strings::IsIdentifier(""));
  EXPECT_FALSE(strings::IsIdentifier("9lives"));
  EXPECT_FALSE(strings::IsIdentifier("has space"));
  EXPECT_FALSE(strings::IsIdentifier("dot.ted"));
}

TEST(StringsTest, ParseSegmentPlain) {
  auto seg = strings::ParseSegment("Body");
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg->name, "Body");
  EXPECT_FALSE(seg->index.has_value());
  EXPECT_EQ(seg->ToString(), "Body");
}

TEST(StringsTest, ParseSegmentIndexed) {
  auto seg = strings::ParseSegment("Keywords[1]");
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg->name, "Keywords");
  EXPECT_EQ(seg->index, 1u);
  EXPECT_EQ(seg->ToString(), "Keywords[1]");
}

TEST(StringsTest, ParseSegmentErrors) {
  EXPECT_FALSE(strings::ParseSegment("Keywords[").ok());
  EXPECT_FALSE(strings::ParseSegment("Keywords[]").ok());
  EXPECT_FALSE(strings::ParseSegment("Keywords[x]").ok());
  EXPECT_FALSE(strings::ParseSegment("[1]").ok());
  EXPECT_FALSE(strings::ParseSegment("Keywords[99999999999]").ok());
}

TEST(StringsTest, ParsePathFig1Example) {
  // The paper's Fig. 1 dependent-object name.
  auto path = strings::ParsePath("Alarms.Text.Body.Keywords[1]");
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 4u);
  EXPECT_EQ((*path)[0].name, "Alarms");
  EXPECT_EQ((*path)[3].name, "Keywords");
  EXPECT_EQ((*path)[3].index, 1u);
  EXPECT_EQ(strings::PathToString(*path), "Alarms.Text.Body.Keywords[1]");
}

TEST(StringsTest, ParsePathErrors) {
  EXPECT_FALSE(strings::ParsePath("").ok());
  EXPECT_FALSE(strings::ParsePath("a..b").ok());
  EXPECT_FALSE(strings::ParsePath(".a").ok());
}

// --- Coding ------------------------------------------------------------------

TEST(CodingTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  enc.PutDouble(3.5);
  enc.PutBool(true);
  Decoder dec(enc.bytes());
  EXPECT_EQ(*dec.GetU8(), 0xAB);
  EXPECT_EQ(*dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*dec.GetI64(), -42);
  EXPECT_EQ(*dec.GetDouble(), 3.5);
  EXPECT_EQ(*dec.GetBool(), true);
  EXPECT_TRUE(dec.done());
}

TEST(CodingTest, VarintRoundTrip) {
  Encoder enc;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20,
                                  0xFFFFFFFFFFFFFFFFull};
  for (std::uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.bytes());
  for (std::uint64_t v : values) EXPECT_EQ(*dec.GetVarint(), v);
  EXPECT_TRUE(dec.done());
}

TEST(CodingTest, VarintSmallValuesAreOneByte) {
  Encoder enc;
  enc.PutVarint(100);
  EXPECT_EQ(enc.size(), 1u);
}

TEST(CodingTest, StringRoundTrip) {
  Encoder enc;
  enc.PutString("alarms");
  enc.PutString("");
  enc.PutString(std::string("\0binary\xff", 8));
  Decoder dec(enc.bytes());
  EXPECT_EQ(*dec.GetString(), "alarms");
  EXPECT_EQ(*dec.GetString(), "");
  EXPECT_EQ(dec.GetString()->size(), 8u);
}

TEST(CodingTest, TruncationIsCorruption) {
  Encoder enc;
  enc.PutU32(5);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetU64().status().IsCorruption());
}

TEST(CodingTest, TruncatedStringBody) {
  Encoder enc;
  enc.PutVarint(100);  // length prefix promising 100 bytes
  enc.PutU8('x');
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetString().status().IsCorruption());
}

TEST(CodingTest, SkipBoundsChecked) {
  Encoder enc;
  enc.PutU32(1);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.Skip(4).ok());
  EXPECT_TRUE(dec.Skip(1).IsCorruption());
}

TEST(CodingTest, Fnv1aIsStable) {
  const char* s = "seed";
  EXPECT_EQ(Fnv1a64(s, 4), Fnv1a64(s, 4));
  EXPECT_NE(Fnv1a64("a", 1), Fnv1a64("b", 1));
}

// --- Random ------------------------------------------------------------------

TEST(RandomTest, DeterministicBySeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RandomTest, UniformInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    std::int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, IdentifiersAreValid) {
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(strings::IsIdentifier(rng.Identifier(8)));
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace seed
