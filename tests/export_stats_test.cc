// Tests for DOT export and database statistics.

#include <gtest/gtest.h>

#include "core/export.h"
#include "core/stats.h"
#include "spades/spec_schema.h"

namespace seed::core {
namespace {

using spades::BuildFig3Schema;

class ExportStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
};

TEST_F(ExportStatsTest, SchemaDotContainsClassesAndAssociations) {
  std::string dot = DotExport::Schema(*db_->schema());
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("Thing (covering)"), std::string::npos);
  EXPECT_NE(dot.find("ACYCLIC"), std::string::npos);
  EXPECT_NE(dot.find("label=\"is-a\""), std::string::npos);
  EXPECT_NE(dot.find("from 1..*"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces (one digraph block).
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST_F(ExportStatsTest, DatabaseDotContainsObjectsAndEdges) {
  ObjectId alarms = *db_->CreateObject(ids_.output_data, "Alarms");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  ObjectId d = *db_->CreateSubObject(sensor, "Description");
  ASSERT_TRUE(db_->SetValue(d, Value::String("polls")).ok());
  (void)*db_->CreateRelationship(ids_.write, alarms, sensor);

  std::string dot = DotExport::Database(*db_);
  EXPECT_NE(dot.find("Alarms : OutputData"), std::string::npos);
  EXPECT_NE(dot.find("Description = \\\"polls\\\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"Write\""), std::string::npos);
}

TEST_F(ExportStatsTest, PatternsRenderDashed) {
  CreateOptions opts;
  opts.pattern = true;
  (void)*db_->CreateObject(ids_.action, "Template", opts);
  std::string dot = DotExport::Database(*db_);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST_F(ExportStatsTest, EscapingSpecialCharacters) {
  ObjectId a = *db_->CreateObject(ids_.action, "A");
  ObjectId d = *db_->CreateSubObject(a, "Description");
  ASSERT_TRUE(db_->SetValue(d, Value::String("uses \"quotes\" & {braces}"))
                  .ok());
  std::string dot = DotExport::Database(*db_);
  EXPECT_NE(dot.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(dot.find("\\{braces\\}"), std::string::npos);
}

TEST_F(ExportStatsTest, StatsCountPopulations) {
  ObjectId alarms = *db_->CreateObject(ids_.output_data, "Alarms");
  ObjectId sensor = *db_->CreateObject(ids_.action, "Sensor");
  ObjectId d = *db_->CreateSubObject(sensor, "Description");
  ASSERT_TRUE(db_->SetValue(d, Value::String("x")).ok());
  (void)*db_->CreateSubObject(alarms, "Revised");  // undefined DATE
  (void)*db_->CreateRelationship(ids_.write, alarms, sensor);
  ObjectId doomed = *db_->CreateObject(ids_.action, "Doomed");
  ASSERT_TRUE(db_->DeleteObject(doomed).ok());

  DatabaseStats stats = CollectStats(*db_);
  EXPECT_EQ(stats.live_objects, 4u);
  EXPECT_EQ(stats.independent_objects, 2u);
  EXPECT_EQ(stats.live_relationships, 1u);
  EXPECT_EQ(stats.tombstones, 1u);
  EXPECT_EQ(stats.max_depth, 1u);
  EXPECT_EQ(stats.defined_values, 1u);
  EXPECT_EQ(stats.undefined_values, 1u);
  EXPECT_DOUBLE_EQ(stats.ValueCoverage(), 0.5);
  EXPECT_EQ(stats.objects_per_class["Action"], 1u);
  EXPECT_EQ(stats.objects_per_class["OutputData"], 1u);
  EXPECT_EQ(stats.relationships_per_association["Write"], 1u);
  EXPECT_GT(stats.completeness_findings.size(), 0u);
}

TEST_F(ExportStatsTest, StatsOnEmptyDatabase) {
  DatabaseStats stats = CollectStats(*db_);
  EXPECT_EQ(stats.live_objects, 0u);
  EXPECT_DOUBLE_EQ(stats.ValueCoverage(), 1.0);
  EXPECT_TRUE(stats.completeness_findings.empty());
}

TEST_F(ExportStatsTest, StatsToStringIsReadable) {
  (void)*db_->CreateObject(ids_.action, "A");
  std::string text = CollectStats(*db_).ToString();
  EXPECT_NE(text.find("objects: 1 live"), std::string::npos);
  EXPECT_NE(text.find("Action=1"), std::string::npos);
}

}  // namespace
}  // namespace seed::core
