// Differential property test for the cost-based planner: against
// randomized schemas, data, index sets and mutation histories (including
// vague values, sub-object predicates, relationship attributes,
// reclassification both ways and version restores), every generated query
// must return exactly what the brute-force extent scan returns — the
// planner is an optimization, never a semantics change.
//
// The driver runs several seeds; each seed builds its own random schema
// (varying specialization depth, sub-object cardinality and index set),
// then interleaves mutations with planner-vs-scan queries. Well over 500
// queries execute across the run (asserted at the end), covering object
// queries (equality, ranges, OR-of-equalities, conjunctions with opaque
// residuals, negations, sub-object predicates, exact and family extents)
// and relationship-attribute queries.
//
// Relationship joins are differentialed the same way: the planner-chosen
// strategy AND all four explicit physical variants (hash with either
// build side, index-nested-loop from either side) must equal a naive
// nested-loop reference over RelationshipsOfAssociation, across forward
// and reverse role bindings, joins fed by selections, selections over
// join outputs, empty sides, and post-reclassify/post-restore states —
// with coverage floors per chosen strategy kind.
//
// Join *chains* extend the contract to multi-join plans: for randomized
// 2-5 hop chains (beyond the old 3-hop cap; forward and reverse hops,
// empty intermediates, vague values, post-reclassify/post-restore
// states), the plan tree the DP optimizer chooses from the tracked
// degree statistics AND a sampled set of explicit shapes — left-deep
// orderings plus bushy splits (hop joins of two multi-hop segments and
// tuple-join merges on the shared binder) — must equal a naive fold of
// the nested-loop reference. Coverage floors assert the planner
// exercises at least two distinct hop orders, both physical hop
// strategies, chains longer than 3 hops, dozens of explicit bushy
// shapes, and at least one DP-chosen bushy plan (guaranteed by a
// crafted small-HUGE-small chain, with random worlds adding on top).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/database.h"
#include "index/index_manager.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "schema/schema_builder.h"
#include "version/version_manager.h"

namespace seed {
namespace {

using core::Database;
using core::Value;
using index::IndexSpec;
using query::Planner;
using query::Predicate;

/// One randomized world: Base (INT) with `num_specs` specializations
/// hanging off it in a chain, a Label sub-object (STRING), a Zone
/// sub-object (INT), a Target class and a Link association
/// Base -> Target with a Weight (INT) relationship attribute, plus a
/// FastLink specialization of Link.
struct RandomWorld {
  schema::SchemaPtr schema;
  ClassId base;
  std::vector<ClassId> specs;  // generalization chain under base
  ClassId label, zone, target;
  AssociationId link, fast_link;
  ClassId weight;

  /// All classes an object of the family may have.
  std::vector<ClassId> family() const {
    std::vector<ClassId> out{base};
    out.insert(out.end(), specs.begin(), specs.end());
    return out;
  }
};

RandomWorld BuildRandomWorld(Random& rng) {
  schema::SchemaBuilder b("DiffWorld");
  RandomWorld w;
  w.base = b.AddIndependentClass("Base", schema::ValueType::kInt);
  size_t num_specs = 1 + rng.Uniform(3);
  ClassId parent = w.base;
  for (size_t i = 0; i < num_specs; ++i) {
    ClassId spec = b.AddIndependentClass("Spec" + std::to_string(i),
                                         schema::ValueType::kInt);
    b.SetGeneralization(spec, parent);
    w.specs.push_back(spec);
    parent = spec;
  }
  w.label = b.AddDependentClass(
      w.base, "Label",
      schema::Cardinality(0, 1 + static_cast<std::uint32_t>(rng.Uniform(4))),
      schema::ValueType::kString);
  w.zone = b.AddDependentClass(w.base, "Zone", schema::Cardinality(0, 1),
                               schema::ValueType::kInt);
  w.target = b.AddIndependentClass("Target", schema::ValueType::kNone);
  w.link = b.AddAssociation(
      "Link", schema::Role{"src", w.base, schema::Cardinality::Any()},
      schema::Role{"dst", w.target, schema::Cardinality::Any()});
  w.weight = b.AddDependentClass(
      w.link, "Weight",
      schema::Cardinality(0, 1 + static_cast<std::uint32_t>(rng.Uniform(2))),
      schema::ValueType::kInt);
  w.fast_link = b.AddAssociation(
      "FastLink", schema::Role{"src", w.base, schema::Cardinality::Any()},
      schema::Role{"dst", w.target, schema::Cardinality::Any()});
  b.SetGeneralization(w.fast_link, w.link);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  w.schema = *schema;
  return w;
}

/// Creates a random subset of object and relationship indexes.
void CreateRandomIndexes(Database* db, const RandomWorld& w, Random& rng) {
  if (rng.Bernoulli(0.8)) {
    (void)db->CreateAttributeIndex({w.base, "", rng.Bernoulli(0.8)});
  }
  if (rng.Bernoulli(0.6)) {
    (void)db->CreateAttributeIndex({w.base, "Label"});
  }
  if (rng.Bernoulli(0.6)) {
    (void)db->CreateAttributeIndex({w.base, "Zone"});
  }
  if (!w.specs.empty() && rng.Bernoulli(0.5)) {
    (void)db->CreateAttributeIndex(
        {rng.Pick(w.specs), "", rng.Bernoulli(0.5)});
  }
  if (rng.Bernoulli(0.7)) {
    (void)db->CreateAttributeIndex(
        IndexSpec::ForAssociation(w.link, "Weight"));
  }
  if (rng.Bernoulli(0.3)) {
    (void)db->CreateAttributeIndex(
        IndexSpec::ForAssociation(w.fast_link, "Weight", false));
  }
}

Predicate RandomAtom(const RandomWorld& /*w*/, Random& rng) {
  switch (rng.Uniform(8)) {
    case 0:
      return Predicate::ValueEquals(Value::Int(rng.UniformRange(0, 9)));
    case 1:
      return Predicate::IntGreater(rng.UniformRange(0, 9));
    case 2:
      return Predicate::IntLess(rng.UniformRange(0, 9));
    case 3:
      return Predicate::ValueEquals(Value::Int(rng.UniformRange(0, 4)))
          .Or(Predicate::ValueEquals(Value::Int(rng.UniformRange(5, 9))));
    case 4:
      return Predicate::OnSubObject(
          "Label", Predicate::ValueEquals(Value::String(
                       "L" + std::to_string(rng.UniformRange(0, 4)))));
    case 5:
      return Predicate::OnSubObject(
          "Zone", rng.Bernoulli(0.5)
                      ? Predicate::IntGreater(rng.UniformRange(0, 9))
                      : Predicate::ValueEquals(
                            Value::Int(rng.UniformRange(0, 9))));
    case 6:
      return Predicate::HasValue();
    default:
      return Predicate::NameContains(std::to_string(rng.Uniform(10)));
  }
}

Predicate RandomPredicate(const RandomWorld& w, Random& rng) {
  Predicate p = RandomAtom(w, rng);
  switch (rng.Uniform(5)) {
    case 0:
      return p.And(RandomAtom(w, rng));
    case 1:
      return p.And(RandomAtom(w, rng)).And(RandomAtom(w, rng));
    case 2:
      return p.Or(RandomAtom(w, rng));
    case 3:
      return p.Not();
    default:
      return p;
  }
}

std::vector<Planner::RelCondition> RandomRelConditions(Random& rng) {
  std::vector<Planner::RelCondition> conds;
  size_t n = 1 + rng.Uniform(2);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        conds.push_back({"Weight", Predicate::ValueEquals(
                                       Value::Int(rng.UniformRange(0, 9)))});
        break;
      case 1:
        conds.push_back({"Weight",
                         Predicate::IntGreater(rng.UniformRange(0, 9))});
        break;
      case 2:
        conds.push_back({"Weight",
                         Predicate::IntLess(rng.UniformRange(0, 9))});
        break;
      default:
        conds.push_back({"Weight", Predicate::True()});  // 'has Weight'
        break;
    }
  }
  return conds;
}

/// A crafted small-HUGE-small 3-hop chain: tiny end associations around
/// a dense middle one. Reducing BOTH sides before crossing the middle
/// beats every left-deep order, so the DP must choose a bushy tree (a
/// hop join of two multi-hop segments), and its result still has to
/// equal the naive nested-loop fold. Returns 1 iff a bushy plan was
/// chosen (also asserted), feeding the coverage floor.
size_t RunCraftedBushyChainDifferential() {
  schema::SchemaBuilder b("BushyWorld");
  ClassId a_cls = b.AddIndependentClass("A", schema::ValueType::kNone);
  ClassId b_cls = b.AddIndependentClass("B", schema::ValueType::kNone);
  ClassId c_cls = b.AddIndependentClass("C", schema::ValueType::kNone);
  ClassId d_cls = b.AddIndependentClass("D", schema::ValueType::kNone);
  AssociationId left_tiny = b.AddAssociation(
      "LeftTiny", schema::Role{"a", a_cls, schema::Cardinality::Any()},
      schema::Role{"b", b_cls, schema::Cardinality::Any()});
  AssociationId middle = b.AddAssociation(
      "Middle", schema::Role{"b", b_cls, schema::Cardinality::Any()},
      schema::Role{"c", c_cls, schema::Cardinality::Any()});
  AssociationId right_tiny = b.AddAssociation(
      "RightTiny", schema::Role{"c", c_cls, schema::Cardinality::Any()},
      schema::Role{"d", d_cls, schema::Cardinality::Any()});
  auto db = std::make_unique<Database>(*b.Build());
  std::vector<ObjectId> as, bs, cs, ds;
  for (int i = 0; i < 100; ++i) {
    as.push_back(*db->CreateObject(a_cls, "A" + std::to_string(i)));
    bs.push_back(*db->CreateObject(b_cls, "B" + std::to_string(i)));
    cs.push_back(*db->CreateObject(c_cls, "C" + std::to_string(i)));
    ds.push_back(*db->CreateObject(d_cls, "D" + std::to_string(i)));
  }
  for (int i = 0; i < 8; ++i) {
    (void)*db->CreateRelationship(left_tiny, as[i], bs[i]);
    (void)*db->CreateRelationship(right_tiny, cs[i], ds[i]);
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 40; ++j) {
      (void)*db->CreateRelationship(middle, bs[i], cs[(i + j * 13) % 100]);
    }
  }
  auto extent = [](const std::vector<ObjectId>& ids, const char* attr) {
    query::QueryRelation rel;
    rel.attributes = {attr};
    for (ObjectId id : ids) rel.tuples.push_back({id});
    return rel;
  };
  std::vector<query::QueryRelation> inputs{extent(as, "a"), extent(bs, "b"),
                                           extent(cs, "c"), extent(ds, "d")};
  std::vector<Planner::PipelineHop> hops{{left_tiny, 0, a_cls, b_cls},
                                         {middle, 0, b_cls, c_cls},
                                         {right_tiny, 0, c_cls, d_cls}};

  // Naive fold of the nested-loop reference, textual order.
  std::vector<std::vector<ObjectId>> expected;
  for (const auto& t : inputs[0].tuples) expected.push_back(t);
  for (size_t i = 0; i < hops.size(); ++i) {
    std::vector<std::vector<ObjectId>> next;
    for (RelationshipId rid :
         db->RelationshipsOfAssociation(hops[i].assoc, true)) {
      auto rel = *db->GetRelationship(rid);
      for (const auto& t : expected) {
        if (t[i] != rel->ends[0]) continue;
        std::vector<ObjectId> grown = t;
        grown.push_back(rel->ends[1]);
        next.push_back(std::move(grown));
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    expected = std::move(next);
  }

  Planner planner(db.get());
  Planner::PhysicalPlan plan;
  auto planned = planner.JoinPipeline(inputs, hops, &plan);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  if (!planned.ok()) return 0;
  EXPECT_EQ(planned->tuples, expected)
      << "crafted bushy chain diverged (plan: " << plan.ToString() << ")";
  EXPECT_TRUE(plan.HasBushyJoin()) << plan.ToString();
  return plan.HasBushyJoin() ? 1u : 0u;
}

TEST(PlannerDifferentialTest, PlannerMatchesBruteForceScan) {
  size_t queries_run = 0;
  size_t index_plans = 0;
  size_t intersect_plans = 0;
  size_t rel_index_plans = 0;
  size_t join_queries = 0;
  size_t join_hash_chosen = 0;
  size_t join_inl_chosen = 0;
  size_t join_reverse = 0;
  size_t join_empty_side = 0;
  size_t chain_queries = 0;
  size_t chain_hash_steps = 0;
  size_t chain_inl_steps = 0;
  size_t chain_reverse_hops = 0;
  size_t chain_empty_intermediate = 0;
  size_t chain_long = 0;           // chains beyond the old 3-hop cap
  size_t chain_bushy_chosen = 0;   // DP picked a bushy tree on its own
  size_t chain_bushy_shapes_run = 0;  // explicit bushy splits differentialed
  std::set<std::string> chain_orders_chosen;

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Random rng(seed * 7919);
    RandomWorld w = BuildRandomWorld(rng);
    auto db = std::make_unique<Database>(w.schema);
    version::VersionManager vm(db.get());
    CreateRandomIndexes(db.get(), w, rng);

    std::vector<ObjectId> objects;
    std::vector<RelationshipId> rels;
    std::vector<version::VersionId> versions;
    std::vector<ClassId> family = w.family();
    int created = 0;

    // Enough targets that the dst-side input sizes vary: small relative
    // to the association (index-nested-loop territory) up to extent scale
    // (hash-join territory).
    std::vector<ObjectId> targets;
    for (int i = 0; i < 24; ++i) {
      targets.push_back(*db->CreateObject(w.target, "T" + std::to_string(i)));
    }

    // Pre-populate so extents are large enough that index plans (and
    // intersections) actually win the cost comparison — otherwise every
    // query would trivially plan as a scan and the differential would
    // only exercise one path.
    for (int i = 0; i < 120; ++i) {
      auto id = db->CreateObject(rng.Pick(family),
                                 "Seed" + std::to_string(created++));
      ASSERT_TRUE(id.ok());
      objects.push_back(*id);
      if (rng.Bernoulli(0.85)) {
        (void)db->SetValue(*id, Value::Int(rng.UniformRange(0, 9)));
      }
      if (rng.Bernoulli(0.5)) {
        auto sub = db->CreateSubObject(*id, "Label");
        if (sub.ok()) {
          (void)db->SetValue(*sub, Value::String("L" + std::to_string(
                                       rng.UniformRange(0, 4))));
        }
      }
      if (rng.Bernoulli(0.5)) {
        auto sub = db->CreateSubObject(*id, "Zone");
        if (sub.ok() && rng.Bernoulli(0.9)) {
          (void)db->SetValue(*sub, Value::Int(rng.UniformRange(0, 9)));
        }
      }
      if (rng.Bernoulli(0.6)) {
        auto rel = db->CreateRelationship(
            rng.Bernoulli(0.7) ? w.link : w.fast_link, *id,
            rng.Pick(targets));
        if (rel.ok()) {
          rels.push_back(*rel);
          auto weight = db->CreateSubObject(*rel, "Weight");
          if (weight.ok() && rng.Bernoulli(0.85)) {
            (void)db->SetValue(*weight,
                               Value::Int(rng.UniformRange(0, 9)));
          }
        }
      }
    }

    auto run_object_query = [&] {
      ClassId cls = rng.Bernoulli(0.7) ? w.base : rng.Pick(family);
      bool include_spec = rng.Bernoulli(0.8);
      Predicate p = RandomPredicate(w, rng);
      Planner planner(db.get());
      Planner::Plan plan = planner.PlanSelect(cls, p, include_spec);
      if (plan.uses_index()) ++index_plans;
      if (plan.kind == Planner::Plan::Kind::kIndexIntersect) {
        ++intersect_plans;
      }
      std::vector<ObjectId> scanned;
      for (ObjectId id : db->ObjectsOfClass(cls, include_spec)) {
        if (p.Eval(*db, id)) scanned.push_back(id);
      }
      ASSERT_EQ(planner.SelectIds(cls, p, include_spec, &plan), scanned)
          << "object query diverged at seed " << seed << " (plan: "
          << plan.ToString() << ")";
      ++queries_run;
    };

    auto run_rel_query = [&] {
      AssociationId assoc = rng.Bernoulli(0.7) ? w.link : w.fast_link;
      bool include_spec = rng.Bernoulli(0.8);
      auto conds = RandomRelConditions(rng);
      Planner planner(db.get());
      Planner::Plan plan =
          planner.PlanSelectRelationships(assoc, conds, include_spec);
      if (plan.uses_index()) ++rel_index_plans;
      std::vector<RelationshipId> scanned;
      for (RelationshipId id :
           db->RelationshipsOfAssociation(assoc, include_spec)) {
        if (planner.EvalRelConditions(id, conds)) scanned.push_back(id);
      }
      ASSERT_EQ(
          planner.SelectRelationshipIds(assoc, conds, include_spec, &plan),
          scanned)
          << "relationship query diverged at seed " << seed << " (plan: "
          << plan.ToString() << ")";
      ++queries_run;
    };

    // Naive nested-loop join reference, structurally independent of the
    // hash / index-nested-loop execution paths: walk every relationship
    // of the family and every tuple pair.
    auto naive_join = [&](const query::QueryRelation& a,
                          const query::QueryRelation& b, AssociationId assoc,
                          int left_role) {
      std::vector<std::vector<ObjectId>> out;
      for (RelationshipId rid : db->RelationshipsOfAssociation(assoc, true)) {
        auto rel = db->GetRelationship(rid);
        if (!rel.ok()) continue;
        for (const auto& ta : a.tuples) {
          if (ta[0] != (*rel)->ends[left_role]) continue;
          for (const auto& tb : b.tuples) {
            if (tb[0] != (*rel)->ends[1 - left_role]) continue;
            out.push_back({ta[0], tb[0]});
          }
        }
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    };

    auto run_join_query = [&] {
      AssociationId assoc = rng.Bernoulli(0.7) ? w.link : w.fast_link;
      bool reverse = rng.Bernoulli(0.35);
      // A selection feeds the src-bound side (join below a selection); a
      // random slice of the Target extent feeds the dst side. Either may
      // come up empty.
      Planner planner(db.get());
      query::QueryRelation src_rel;
      src_rel.attributes = {"s"};
      if (!rng.Bernoulli(0.08)) {
        ClassId cls = rng.Bernoulli(0.7) ? w.base : rng.Pick(family);
        Predicate p = rng.Bernoulli(0.6) ? RandomPredicate(w, rng)
                                         : Predicate::True();
        for (ObjectId id : planner.SelectIds(cls, p)) {
          src_rel.tuples.push_back({id});
        }
      }
      query::QueryRelation dst_rel;
      dst_rel.attributes = {"t"};
      if (!rng.Bernoulli(0.08)) {
        double keep = rng.Bernoulli(0.5) ? 1.0 : 0.25;
        for (ObjectId id : db->ObjectsOfClass(w.target)) {
          if (rng.Bernoulli(keep)) dst_rel.tuples.push_back({id});
        }
      }
      const query::QueryRelation& a = reverse ? dst_rel : src_rel;
      const query::QueryRelation& b = reverse ? src_rel : dst_rel;
      int left_role = reverse ? 1 : 0;
      if (reverse) ++join_reverse;
      if (a.empty() || b.empty()) ++join_empty_side;

      auto expected = naive_join(a, b, assoc, left_role);

      // The planner-chosen strategy...
      Planner::JoinPlan plan;
      auto planned = planner.Join(a, a.attributes[0], assoc, b,
                                  b.attributes[0], left_role, &plan);
      ASSERT_TRUE(planned.ok()) << planned.status().ToString();
      ASSERT_EQ(planned->tuples, expected)
          << "join diverged at seed " << seed << " (plan: "
          << plan.ToString() << ")";
      using Strategy = Planner::JoinPlan::Strategy;
      if (plan.strategy == Strategy::kHashBuildLeft ||
          plan.strategy == Strategy::kHashBuildRight) {
        ++join_hash_chosen;
      } else {
        ++join_inl_chosen;
      }

      // ...and every explicit physical variant agree with the reference.
      query::Algebra algebra(db.get());
      for (auto method : {query::Algebra::JoinOptions::Method::kHash,
                          query::Algebra::JoinOptions::Method::
                              kIndexNestedLoop}) {
        for (auto side : {query::Algebra::JoinOptions::Side::kLeft,
                          query::Algebra::JoinOptions::Side::kRight}) {
          query::Algebra::JoinOptions options;
          options.method = method;
          options.build_side = side;
          options.left_role = left_role;
          auto direct = algebra.RelationshipJoin(a, a.attributes[0], assoc,
                                                 b, b.attributes[0], options);
          ASSERT_TRUE(direct.ok()) << direct.status().ToString();
          ASSERT_EQ(direct->tuples, expected)
              << "strategy diverged at seed " << seed;
        }
      }

      // Selection above the join: filtering the joined relation on the
      // src column must match filtering the reference the same way.
      if (rng.Bernoulli(0.3)) {
        Predicate p = RandomAtom(w, rng);
        int col = reverse ? 1 : 0;  // the "s" column's position
        auto selected = algebra.Select(*planned, "s", p);
        ASSERT_TRUE(selected.ok());
        std::vector<std::vector<ObjectId>> filtered;
        for (const auto& t : expected) {
          if (p.Eval(*db, t[col])) filtered.push_back(t);
        }
        ASSERT_EQ(selected->tuples, filtered)
            << "select-over-join diverged at seed " << seed;
      }
      ++join_queries;
      ++queries_run;
    };

    // Naive reference for a 2-3 hop chain: fold the nested-loop join
    // over the hops in textual order, column i holding binder i.
    auto naive_chain = [&](const std::vector<query::QueryRelation>& inputs,
                           const std::vector<Planner::PipelineHop>& hops) {
      std::vector<std::vector<ObjectId>> tuples;
      for (const auto& t : inputs[0].tuples) tuples.push_back(t);
      for (size_t i = 0; i < hops.size(); ++i) {
        std::vector<std::vector<ObjectId>> next;
        for (RelationshipId rid :
             db->RelationshipsOfAssociation(hops[i].assoc, true)) {
          auto rel = db->GetRelationship(rid);
          if (!rel.ok()) continue;
          ObjectId from = (*rel)->ends[hops[i].left_role];
          ObjectId to = (*rel)->ends[1 - hops[i].left_role];
          for (const auto& t : tuples) {
            if (t[i] != from) continue;
            for (const auto& tb : inputs[i + 1].tuples) {
              if (tb[0] != to) continue;
              std::vector<ObjectId> grown = t;
              grown.push_back(to);
              next.push_back(std::move(grown));
            }
          }
        }
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        tuples = std::move(next);
      }
      return tuples;
    };

    auto run_chain_query = [&] {
      size_t num_hops = 2 + rng.Uniform(4);  // 2-5 hops, beyond the old cap
      // Binders alternate between the Base family (even positions) and
      // Target (odd positions), so every chain mixes forward hops
      // (left_role 0) with reverse ones (left_role 1).
      Planner planner(db.get());
      std::vector<ClassId> binder_cls;
      for (size_t i = 0; i <= num_hops; ++i) {
        binder_cls.push_back(i % 2 == 0 ? (rng.Bernoulli(0.7)
                                               ? w.base
                                               : rng.Pick(family))
                                        : w.target);
      }
      std::vector<Planner::PipelineHop> hops;
      for (size_t i = 0; i < num_hops; ++i) {
        hops.push_back({rng.Bernoulli(0.7) ? w.link : w.fast_link,
                        i % 2 == 0 ? 0 : 1, binder_cls[i],
                        binder_cls[i + 1]});
        if (hops.back().left_role == 1) ++chain_reverse_hops;
      }
      std::vector<query::QueryRelation> inputs;
      for (size_t i = 0; i <= num_hops; ++i) {
        query::QueryRelation rel;
        rel.attributes = {"b" + std::to_string(i)};
        if (!rng.Bernoulli(0.08)) {
          if (i % 2 == 0) {
            Predicate p = rng.Bernoulli(0.5) ? RandomPredicate(w, rng)
                                             : Predicate::True();
            for (ObjectId id : planner.SelectIds(binder_cls[i], p)) {
              rel.tuples.push_back({id});
            }
          } else {
            double keep = rng.Bernoulli(0.5) ? 1.0 : 0.3;
            for (ObjectId id : db->ObjectsOfClass(w.target)) {
              if (rng.Bernoulli(keep)) rel.tuples.push_back({id});
            }
          }
        }
        inputs.push_back(std::move(rel));
      }

      auto expected = naive_chain(inputs, hops);

      // The planner-chosen plan tree (the DP may pick any left-deep or
      // bushy shape)...
      Planner::PhysicalPlan plan;
      auto planned = planner.JoinPipeline(inputs, hops, &plan);
      ASSERT_TRUE(planned.ok()) << planned.status().ToString();
      ASSERT_EQ(planned->tuples, expected)
          << "chain diverged at seed " << seed << " (plan: "
          << plan.ToString() << ")";
      std::string order_sig;
      for (int hop : plan.HopOrder()) order_sig += std::to_string(hop);
      chain_orders_chosen.insert(std::to_string(num_hops) + ":" + order_sig);
      if (plan.HasBushyJoin()) ++chain_bushy_chosen;
      if (num_hops > 3) ++chain_long;
      auto count_steps = [&](auto&& self,
                             const Planner::PhysicalPlan::Node* node)
          -> void {
        if (node == nullptr) return;
        self(self, node->left.get());
        self(self, node->right.get());
        if (node->kind == Planner::PhysicalPlan::Node::Kind::kHopJoin) {
          using Strategy = Planner::JoinPlan::Strategy;
          if (node->join.strategy == Strategy::kHashBuildLeft ||
              node->join.strategy == Strategy::kHashBuildRight) {
            ++chain_hash_steps;
          } else {
            ++chain_inl_steps;
          }
        }
        if (node->kind != Planner::PhysicalPlan::Node::Kind::kInput &&
            node->actual_rows == 0) {
          ++chain_empty_intermediate;
        }
      };
      count_steps(count_steps, plan.root.get());

      // ...a sample of explicit left-deep orderings (all of them for
      // short chains, the textual / fully-reversed / two mixed ones for
      // long chains)...
      auto orders = Planner::LeftDeepOrders(hops.size());
      if (num_hops > 3) {
        decltype(orders) sampled{orders.front(), orders.back(),
                                 orders[orders.size() / 3],
                                 orders[(2 * orders.size()) / 3]};
        orders = std::move(sampled);
      }
      for (const auto& order : orders) {
        auto direct = planner.JoinPipelineInOrder(inputs, hops, order);
        ASSERT_TRUE(direct.ok()) << direct.status().ToString();
        ASSERT_EQ(direct->tuples, expected)
            << "ordering diverged at seed " << seed;
      }

      // ...and explicit bushy shapes: both the relationship split (hop
      // join of two multi-hop segments) and the tuple-join merge on the
      // shared middle binder must equal the naive fold.
      int mid = static_cast<int>(num_hops) / 2;
      for (bool tuple : {false, true}) {
        if (tuple && (mid <= 0 || mid >= static_cast<int>(num_hops))) {
          continue;
        }
        Planner::PhysicalPlan bushy;
        auto split =
            planner.JoinPipelineSplit(inputs, hops, mid, tuple, &bushy);
        ASSERT_TRUE(split.ok()) << split.status().ToString();
        ASSERT_EQ(split->tuples, expected)
            << "bushy split diverged at seed " << seed << " (plan: "
            << bushy.ToString() << ")";
        // Tuple splits are bushy by construction; a hop split is bushy
        // when both sides carry at least one hop.
        if (tuple ||
            (mid >= 1 && mid + 1 < static_cast<int>(num_hops))) {
          ASSERT_TRUE(bushy.HasBushyJoin()) << bushy.ToString();
          ++chain_bushy_shapes_run;
        }
      }
      ++chain_queries;
      ++queries_run;
    };

    for (int step = 0; step < 150; ++step) {
      switch (rng.Uniform(10)) {
        case 0: {  // create an object somewhere in the family
          auto id = db->CreateObject(rng.Pick(family),
                                     "Obj" + std::to_string(created++));
          ASSERT_TRUE(id.ok());
          if (rng.Bernoulli(0.8)) {  // some objects stay vague
            (void)db->SetValue(*id, Value::Int(rng.UniformRange(0, 9)));
          }
          objects.push_back(*id);
          break;
        }
        case 1: {  // set / clear own value
          if (objects.empty()) break;
          ObjectId id = rng.Pick(objects);
          if (rng.Bernoulli(0.25)) {
            (void)db->ClearValue(id);
          } else {
            (void)db->SetValue(id, Value::Int(rng.UniformRange(0, 9)));
          }
          break;
        }
        case 2: {  // add or update a Label / Zone sub-object
          if (objects.empty()) break;
          ObjectId parent = rng.Pick(objects);
          const char* role = rng.Bernoulli(0.5) ? "Label" : "Zone";
          auto subs = db->SubObjects(parent, role);
          ObjectId sub;
          if (subs.empty() || rng.Bernoulli(0.4)) {
            auto created_sub = db->CreateSubObject(parent, role);
            if (!created_sub.ok()) break;
            sub = *created_sub;
          } else {
            sub = rng.Pick(subs);
          }
          if (rng.Bernoulli(0.85)) {
            (void)db->SetValue(
                sub, role == std::string("Label")
                         ? Value::String(
                               "L" + std::to_string(rng.UniformRange(0, 4)))
                         : Value::Int(rng.UniformRange(0, 9)));
          } else {
            (void)db->ClearValue(sub);
          }
          break;
        }
        case 3: {  // delete an object (or one of its sub-objects)
          if (objects.empty()) break;
          ObjectId victim = rng.Pick(objects);
          if (rng.Bernoulli(0.4)) {
            auto subs = db->SubObjects(victim);
            if (!subs.empty()) victim = rng.Pick(subs);
          }
          (void)db->DeleteObject(victim);
          break;
        }
        case 4: {  // reclassify along the chain (down or up)
          if (objects.empty()) break;
          ObjectId id = rng.Pick(objects);
          auto obj = db->GetObject(id);
          if (!obj.ok()) break;
          (void)db->Reclassify(id, rng.Pick(family));
          break;
        }
        case 5: {  // create a relationship, sometimes with a Weight
          if (objects.empty()) break;
          ObjectId src = rng.Pick(objects);
          auto rel = db->CreateRelationship(
              rng.Bernoulli(0.7) ? w.link : w.fast_link, src,
              rng.Pick(targets));
          if (!rel.ok()) break;
          rels.push_back(*rel);
          if (rng.Bernoulli(0.8)) {
            auto weight = db->CreateSubObject(*rel, "Weight");
            if (weight.ok() && rng.Bernoulli(0.85)) {
              (void)db->SetValue(*weight,
                                 Value::Int(rng.UniformRange(0, 9)));
            }
          }
          break;
        }
        case 6: {  // mutate or clear a relationship attribute
          if (rels.empty()) break;
          RelationshipId rel = rng.Pick(rels);
          auto subs = db->SubObjects(rel, "Weight");
          if (subs.empty()) {
            auto weight = db->CreateSubObject(rel, "Weight");
            if (weight.ok()) {
              (void)db->SetValue(*weight,
                                 Value::Int(rng.UniformRange(0, 9)));
            }
            break;
          }
          ObjectId sub = rng.Pick(subs);
          if (rng.Bernoulli(0.2)) {
            (void)db->ClearValue(sub);
          } else if (rng.Bernoulli(0.2)) {
            (void)db->DeleteObject(sub);
          } else {
            (void)db->SetValue(sub, Value::Int(rng.UniformRange(0, 9)));
          }
          break;
        }
        case 7: {  // delete or reclassify a relationship
          if (rels.empty()) break;
          RelationshipId rel = rng.Pick(rels);
          auto item = db->GetRelationship(rel);
          if (!item.ok()) break;
          if (rng.Bernoulli(0.5)) {
            (void)db->DeleteRelationship(rel);
          } else {
            (void)db->ReclassifyRelationship(
                rel, (*item)->assoc == w.link ? w.fast_link : w.link);
          }
          break;
        }
        case 8: {  // freeze a version
          auto v = vm.CreateVersion();
          if (v.ok()) versions.push_back(*v);
          break;
        }
        case 9: {  // restore a historical version, then query immediately
          if (versions.empty()) break;
          ASSERT_TRUE(vm.SelectVersion(rng.Pick(versions)).ok());
          run_object_query();
          run_rel_query();
          run_join_query();
          run_chain_query();
          break;
        }
      }
      // Every step ends with at least one differential check.
      run_object_query();
      if (rng.Bernoulli(0.5)) run_rel_query();
      if (rng.Bernoulli(0.4)) run_join_query();
      if (rng.Bernoulli(0.25)) run_chain_query();
    }
  }
  // The acceptance bar: at least 500 random queries with planner/scan
  // identity. (5 seeds x 150 steps x >=1 query.)
  EXPECT_GE(queries_run, 500u);
  // The differential is only meaningful if both access paths actually
  // ran: require a healthy share of index plans, including intersections
  // and relationship-side probes.
  EXPECT_GE(index_plans, 50u);
  EXPECT_GE(intersect_plans, 5u);
  EXPECT_GE(rel_index_plans, 20u);
  // Join coverage floors: every differential join also ran all four
  // explicit physical variants against the nested-loop reference, and
  // the planner's own choices must exercise both strategy kinds, the
  // reverse direction and empty inputs.
  EXPECT_GE(join_queries, 100u);
  EXPECT_GE(join_hash_chosen, 10u);
  EXPECT_GE(join_inl_chosen, 10u);
  EXPECT_GE(join_reverse, 25u);
  EXPECT_GE(join_empty_side, 10u);
  // Chain coverage floors: every differential chain also ran a sampled
  // set of explicit left-deep orderings AND explicit bushy splits (hop
  // and tuple-join) against the naive fold; the planner's own picks must
  // span at least two distinct orderings and both physical hop
  // strategies, some chains must exceed the old 3-hop cap, and some
  // intermediates must have come up empty.
  EXPECT_GE(chain_queries, 60u);
  EXPECT_GE(chain_orders_chosen.size(), 2u);
  EXPECT_GE(chain_hash_steps, 10u);
  EXPECT_GE(chain_inl_steps, 10u);
  EXPECT_GE(chain_reverse_hops, 60u);
  EXPECT_GE(chain_empty_intermediate, 10u);
  EXPECT_GE(chain_long, 10u);
  EXPECT_GE(chain_bushy_shapes_run, 60u);
  // The DP must select at least one bushy plan that matches the naive
  // reference. Random worlds may or may not skew hard enough, so a
  // crafted small-HUGE-small chain (below) guarantees the floor; random
  // picks add on top.
  chain_bushy_chosen += RunCraftedBushyChainDifferential();
  EXPECT_GE(chain_bushy_chosen, 1u);
}

}  // namespace
}  // namespace seed
