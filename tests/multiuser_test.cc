// Multi-user layer tests: sessions, write locks, checkout bundles,
// transactional check-in with rollback, id stripes, local/global versions.

#include <gtest/gtest.h>

#include "multiuser/client.h"
#include "multiuser/server.h"
#include "spades/spec_schema.h"

namespace seed::multiuser {
namespace {

using core::Value;
using spades::BuildFig3Schema;

class MultiuserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    server_ = std::make_unique<Server>(fig3->schema);
    // Seed the master with a small spec before clients connect.
    alarms_ = *server_->master()->CreateObject(ids_.output_data, "Alarms");
    sensor_ = *server_->master()->CreateObject(ids_.action, "Sensor");
    write_ = *server_->master()->CreateRelationship(ids_.write, alarms_,
                                                    sensor_);
    server_->master()->ClearChangeTracking();
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Server> server_;
  ObjectId alarms_, sensor_;
  RelationshipId write_;
};

TEST_F(MultiuserTest, ConnectDisconnect) {
  auto c1 = server_->Connect("alice");
  auto c2 = server_->Connect("bob");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);
  EXPECT_EQ(server_->num_clients(), 2u);
  EXPECT_NE(*server_->IdStripeBase(*c1), *server_->IdStripeBase(*c2));
  ASSERT_TRUE(server_->Disconnect(*c1).ok());
  EXPECT_EQ(server_->num_clients(), 1u);
  EXPECT_TRUE(server_->Disconnect(*c1).IsNotFound());
}

TEST_F(MultiuserTest, CheckoutLocksSubtree) {
  ClientId alice = *server_->Connect("alice");
  auto bundle = server_->Checkout(alice, {alarms_});
  ASSERT_TRUE(bundle.ok());
  EXPECT_TRUE(server_->IsLocked(alarms_));
  EXPECT_EQ(*server_->LockOwner(alarms_), alice);
  EXPECT_EQ(bundle->objects.size(), 1u);  // Alarms has no sub-objects yet
  // Relationships are only shipped when both ends are in the bundle.
  EXPECT_TRUE(bundle->relationships.empty());
}

TEST_F(MultiuserTest, CheckoutConflictDetected) {
  ClientId alice = *server_->Connect("alice");
  ClientId bob = *server_->Connect("bob");
  ASSERT_TRUE(server_->Checkout(alice, {alarms_}).ok());
  auto conflict = server_->Checkout(bob, {alarms_});
  EXPECT_TRUE(conflict.status().IsLockConflict());
  EXPECT_EQ(server_->lock_conflicts(), 1u);
  // Re-checkout by the same owner is fine (lock is re-entrant).
  EXPECT_TRUE(server_->Checkout(alice, {alarms_}).ok());
}

TEST_F(MultiuserTest, CheckoutRejectsDependentRoots) {
  ObjectId desc =
      *server_->master()->CreateSubObject(alarms_, "Description");
  ClientId alice = *server_->Connect("alice");
  EXPECT_TRUE(server_->Checkout(alice, {desc}).status().IsInvalidArgument());
}

TEST_F(MultiuserTest, BundleIncludesRelationshipsAmongRoots) {
  ClientId alice = *server_->Connect("alice");
  auto bundle = server_->Checkout(alice, {alarms_, sensor_});
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->objects.size(), 2u);
  ASSERT_EQ(bundle->relationships.size(), 1u);
  EXPECT_EQ(bundle->relationships[0].id, write_);
}

TEST_F(MultiuserTest, ClientSessionRoundTrip) {
  auto session = ClientSession::Open(server_.get(), "alice");
  ASSERT_TRUE(session.ok());
  ClientSession& alice = **session;
  ASSERT_TRUE(alice.CheckoutByName({"Alarms", "Sensor"}).ok());

  // Update locally: refine the description of Alarms.
  core::Database* local = alice.local();
  ObjectId local_alarms = *local->FindObjectByName("Alarms");
  ObjectId desc = *local->CreateSubObject(local_alarms, "Description");
  ASSERT_TRUE(desc.valid());
  ASSERT_TRUE(
      local->SetValue(desc, Value::String("Handles alarms")).ok());

  // The master does not see it yet.
  EXPECT_TRUE(server_->master()
                  ->FindObjectByName("Alarms.Description")
                  .status()
                  .IsNotFound());

  ASSERT_TRUE(alice.Checkin().ok());
  EXPECT_EQ(server_->checkins_applied(), 1u);
  // Now it does, and the locks are gone.
  auto master_desc = server_->master()->FindObjectByName("Alarms.Description");
  ASSERT_TRUE(master_desc.ok());
  EXPECT_EQ(
      (*server_->master()->GetObject(*master_desc))->value.as_string(),
      "Handles alarms");
  EXPECT_FALSE(server_->IsLocked(alarms_));
  EXPECT_TRUE(server_->master()->AuditConsistency().clean());
}

TEST_F(MultiuserTest, NewObjectsUseClientStripe) {
  auto session = ClientSession::Open(server_.get(), "alice");
  ClientSession& alice = **session;
  std::uint64_t stripe = *server_->IdStripeBase(alice.id());
  auto fresh = alice.local()->CreateObject(ids_.action, "Display");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->raw(), stripe);
  ASSERT_TRUE(alice.Checkin().ok());
  EXPECT_TRUE(server_->master()->FindObjectByName("Display").ok());
}

TEST_F(MultiuserTest, TwoClientsDisjointWork) {
  auto s1 = ClientSession::Open(server_.get(), "alice");
  auto s2 = ClientSession::Open(server_.get(), "bob");
  ClientSession& alice = **s1;
  ClientSession& bob = **s2;

  ASSERT_TRUE(alice.CheckoutByName({"Alarms"}).ok());
  ASSERT_TRUE(bob.CheckoutByName({"Sensor"}).ok());

  ObjectId a = *alice.local()->FindObjectByName("Alarms");
  ObjectId d1 = *alice.local()->CreateSubObject(a, "Description");
  ASSERT_TRUE(alice.local()->SetValue(d1, Value::String("from alice")).ok());

  ObjectId s = *bob.local()->FindObjectByName("Sensor");
  ObjectId d2 = *bob.local()->CreateSubObject(s, "Description");
  ASSERT_TRUE(bob.local()->SetValue(d2, Value::String("from bob")).ok());

  ASSERT_TRUE(alice.Checkin().ok());
  ASSERT_TRUE(bob.Checkin().ok());
  EXPECT_EQ(server_->checkins_applied(), 2u);
  EXPECT_TRUE(server_->master()->FindObjectByName("Alarms.Description").ok());
  EXPECT_TRUE(server_->master()->FindObjectByName("Sensor.Description").ok());
  EXPECT_TRUE(server_->master()->AuditConsistency().clean());
}

TEST_F(MultiuserTest, CheckinWithoutLockRejected) {
  ClientId alice = *server_->Connect("alice");
  CheckinBundle bundle;
  core::ObjectItem tampered = server_->master()->objects_raw().at(alarms_);
  tampered.name = "Hijacked";
  bundle.objects.push_back(tampered);
  EXPECT_TRUE(server_->Checkin(alice, bundle).IsLockConflict());
  EXPECT_EQ(server_->checkins_rejected(), 1u);
  EXPECT_EQ(server_->master()->objects_raw().at(alarms_).name, "Alarms");
}

TEST_F(MultiuserTest, CheckinOutsideStripeRejected) {
  ClientId alice = *server_->Connect("alice");
  CheckinBundle bundle;
  core::ObjectItem rogue;
  rogue.id = ObjectId(424242);  // master-range id that does not exist
  rogue.cls = ids_.action;
  rogue.name = "Rogue";
  bundle.objects.push_back(rogue);
  EXPECT_TRUE(server_->Checkin(alice, bundle).IsFailedPrecondition());
}

TEST_F(MultiuserTest, InconsistentCheckinRolledBack) {
  auto session = ClientSession::Open(server_.get(), "alice");
  ClientSession& alice = **session;
  std::uint64_t stripe = *server_->IdStripeBase(alice.id());

  // Hand-craft a bundle with a duplicate name: passes locks/stripe checks
  // but fails the master audit.
  CheckinBundle bundle;
  core::ObjectItem dup;
  dup.id = ObjectId(stripe + 1);
  dup.cls = ids_.action;
  dup.name = "Sensor";  // already taken in the master
  bundle.objects.push_back(dup);
  Status s = server_->Checkin(alice.id(), bundle);
  EXPECT_TRUE(s.IsConsistencyViolation());
  EXPECT_EQ(server_->checkins_rejected(), 1u);
  // Master rolled back wholesale.
  EXPECT_EQ(server_->master()->objects_raw().count(ObjectId(stripe + 1)), 0u);
  EXPECT_TRUE(server_->master()->AuditConsistency().clean());
  EXPECT_EQ(server_->master()->ObjectsOfClass(ids_.action).size(), 1u);
}

TEST_F(MultiuserTest, AbandonReleasesLocks) {
  auto session = ClientSession::Open(server_.get(), "alice");
  ClientSession& alice = **session;
  ASSERT_TRUE(alice.CheckoutByName({"Alarms"}).ok());
  EXPECT_TRUE(server_->IsLocked(alarms_));
  ASSERT_TRUE(alice.Abandon().ok());
  EXPECT_FALSE(server_->IsLocked(alarms_));
  EXPECT_TRUE(alice.local()->FindObjectByName("Alarms").status().IsNotFound());
}

TEST_F(MultiuserTest, DisconnectReleasesLocks) {
  {
    auto session = ClientSession::Open(server_.get(), "alice");
    ASSERT_TRUE((*session)->CheckoutByName({"Alarms"}).ok());
    EXPECT_TRUE(server_->IsLocked(alarms_));
  }  // destructor disconnects
  EXPECT_FALSE(server_->IsLocked(alarms_));
  EXPECT_EQ(server_->num_clients(), 0u);
}

TEST_F(MultiuserTest, LocalVersionsIndependentOfGlobal) {
  // "Versions are kept both locally and globally under control of the user
  // and the server, respectively."
  auto session = ClientSession::Open(server_.get(), "alice");
  ClientSession& alice = **session;
  ASSERT_TRUE(alice.CheckoutByName({"Alarms"}).ok());
  auto local_v = alice.local_versions()->CreateVersion();
  ASSERT_TRUE(local_v.ok());
  EXPECT_EQ(local_v->ToString(), "1.0");

  auto global_v = server_->global_versions()->CreateVersion();
  ASSERT_TRUE(global_v.ok());
  EXPECT_EQ(server_->global_versions()->num_versions(), 1u);
  EXPECT_EQ(alice.local_versions()->num_versions(), 1u);
}

TEST_F(MultiuserTest, PartialCheckoutIsConsistentButIncomplete) {
  // The payoff of the consistency/completeness split: a checked-out
  // fragment (Alarms without its Write relationship) is consistent, merely
  // incomplete.
  auto session = ClientSession::Open(server_.get(), "alice");
  ClientSession& alice = **session;
  ASSERT_TRUE(alice.CheckoutByName({"Alarms"}).ok());
  EXPECT_TRUE(alice.local()->AuditConsistency().clean());
  EXPECT_FALSE(alice.local()->CheckCompleteness().clean());
}

}  // namespace
}  // namespace seed::multiuser
