// Query layer tests: predicates with undefined-matches-nothing semantics,
// and the ER algebra (selection, projection, product, relationship join).

#include <gtest/gtest.h>

#include <algorithm>

#include "query/algebra.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "schema/schema_builder.h"
#include "spades/spec_schema.h"

namespace seed::query {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
    algebra_ = std::make_unique<Algebra>(db_.get());

    // A small dataflow world:
    //   Sensor reads ProcessData, writes Alarms.
    //   Display reads Alarms.
    //   Idle is an action with no flows.
    //   Mystery is a vague Thing with no value anywhere.
    process_data_ = *db_->CreateObject(ids_.input_data, "ProcessData");
    alarms_ = *db_->CreateObject(ids_.output_data, "Alarms");
    sensor_ = *db_->CreateObject(ids_.action, "Sensor");
    display_ = *db_->CreateObject(ids_.action, "Display");
    idle_ = *db_->CreateObject(ids_.action, "Idle");
    mystery_ = *db_->CreateObject(ids_.thing, "Mystery");
    (void)*db_->CreateRelationship(ids_.read, process_data_, sensor_);
    (void)*db_->CreateRelationship(ids_.write, alarms_, sensor_);
    // Alarms is also (vaguely) accessed by Display.
    (void)*db_->CreateRelationship(ids_.access, alarms_, display_);

    desc_ = *db_->CreateSubObject(sensor_, "Description");
    ASSERT_TRUE(
        db_->SetValue(desc_, Value::String("polls hardware sensors")).ok());
    // Display has a Description sub-object with NO value: undefined.
    undef_desc_ = *db_->CreateSubObject(display_, "Description");
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Algebra> algebra_;
  ObjectId process_data_, alarms_, sensor_, display_, idle_, mystery_;
  ObjectId desc_, undef_desc_;
};

// --- Predicates --------------------------------------------------------------

TEST_F(QueryTest, UndefinedObjectMatchesNothing) {
  // Paper: "an undefined object matches nothing".
  EXPECT_FALSE(Predicate::HasValue().Eval(*db_, undef_desc_));
  EXPECT_FALSE(
      Predicate::ValueEquals(Value::String("x")).Eval(*db_, undef_desc_));
  EXPECT_FALSE(Predicate::ValueContains("x").Eval(*db_, undef_desc_));
  EXPECT_FALSE(Predicate::IntLess(100).Eval(*db_, undef_desc_));
  // ...but its negation does match (Not is logical, not three-valued).
  EXPECT_TRUE(Predicate::HasValue().Not().Eval(*db_, undef_desc_));
}

TEST_F(QueryTest, ValuePredicates) {
  EXPECT_TRUE(Predicate::HasValue().Eval(*db_, desc_));
  EXPECT_TRUE(Predicate::ValueEquals(Value::String("polls hardware sensors"))
                  .Eval(*db_, desc_));
  EXPECT_TRUE(Predicate::ValueContains("hardware").Eval(*db_, desc_));
  EXPECT_FALSE(Predicate::ValueContains("nuclear").Eval(*db_, desc_));
}

TEST_F(QueryTest, NamePredicates) {
  EXPECT_TRUE(Predicate::NameIs("Sensor").Eval(*db_, sensor_));
  EXPECT_FALSE(Predicate::NameIs("Sensor").Eval(*db_, display_));
  EXPECT_TRUE(Predicate::NameContains("ensor").Eval(*db_, sensor_));
  // Dependent objects have no independent name.
  EXPECT_FALSE(Predicate::NameIs("Description").Eval(*db_, desc_));
}

TEST_F(QueryTest, ClassPredicateFollowsGeneralization) {
  EXPECT_TRUE(Predicate::OfClass(ids_.data).Eval(*db_, alarms_));
  EXPECT_TRUE(Predicate::OfClass(ids_.thing).Eval(*db_, alarms_));
  EXPECT_FALSE(Predicate::OfClass(ids_.data, false).Eval(*db_, alarms_));
  EXPECT_FALSE(Predicate::OfClass(ids_.data).Eval(*db_, sensor_));
}

TEST_F(QueryTest, SubObjectPredicate) {
  auto has_desc = Predicate::OnSubObject(
      "Description", Predicate::ValueContains("hardware"));
  EXPECT_TRUE(has_desc.Eval(*db_, sensor_));
  // Display's description is undefined: matches nothing.
  EXPECT_FALSE(has_desc.Eval(*db_, display_));
  // Idle has no description at all.
  EXPECT_FALSE(has_desc.Eval(*db_, idle_));
}

TEST_F(QueryTest, Combinators) {
  auto p = Predicate::NameContains("s").And(Predicate::OfClass(ids_.action));
  EXPECT_TRUE(p.Eval(*db_, display_));   // "Display" contains 's'
  EXPECT_FALSE(p.Eval(*db_, alarms_));   // not an action
  auto q = Predicate::NameIs("Idle").Or(Predicate::NameIs("Sensor"));
  EXPECT_TRUE(q.Eval(*db_, idle_));
  EXPECT_TRUE(q.Eval(*db_, sensor_));
  EXPECT_FALSE(q.Eval(*db_, display_));
}

TEST_F(QueryTest, DeadObjectMatchesNothing) {
  ObjectId doomed = *db_->CreateObject(ids_.action, "Doomed");
  ASSERT_TRUE(db_->DeleteObject(doomed).ok());
  EXPECT_FALSE(Predicate::True().And(Predicate::NameIs("Doomed"))
                   .Eval(*db_, doomed));
}

// --- Algebra -----------------------------------------------------------------

TEST_F(QueryTest, ClassExtent) {
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  EXPECT_EQ(actions.size(), 3u);
  auto things = algebra_->ClassExtent(ids_.thing, "t");
  EXPECT_EQ(things.size(), 6u);  // everything specializes Thing
  auto exact = algebra_->ClassExtent(ids_.thing, "t", false);
  EXPECT_EQ(exact.size(), 1u);  // only Mystery sits at Thing itself
}

TEST_F(QueryTest, SelectFiltersTuples) {
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  auto named = algebra_->Select(actions, "a", Predicate::NameContains("or"));
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->size(), 1u);  // only "Sensor"
}

TEST_F(QueryTest, SelectUnknownAttributeFails) {
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  EXPECT_TRUE(algebra_->Select(actions, "bogus", Predicate::True())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryTest, ProjectAndDedup) {
  auto a = algebra_->ClassExtent(ids_.action, "x");
  auto b = algebra_->ClassExtent(ids_.data, "y");
  auto prod = algebra_->CartesianProduct(a, b);
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod->size(), 6u);  // 3 actions x 2 data
  auto projected = algebra_->Project(*prod, {"y"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->size(), 2u);  // dedup to the data column
  EXPECT_TRUE(
      algebra_->Project(*prod, {"z"}).status().IsInvalidArgument());
}

TEST_F(QueryTest, ProjectRejectsDuplicateAttributes) {
  // {"x","x"} would produce two identical columns, the second unreachable
  // via AttrIndex and poisoning later Union/Difference arity checks.
  auto a = algebra_->ClassExtent(ids_.action, "x");
  EXPECT_TRUE(algebra_->Project(a, {"x", "x"}).status().IsInvalidArgument());
  auto b = algebra_->ClassExtent(ids_.data, "y");
  auto prod = *algebra_->CartesianProduct(a, b);
  EXPECT_TRUE(
      algebra_->Project(prod, {"x", "y", "x"}).status().IsInvalidArgument());
  // Non-duplicate projections still work, in any order.
  EXPECT_TRUE(algebra_->Project(prod, {"y", "x"}).ok());
}

TEST_F(QueryTest, CartesianProductRejectsOverlappingAttrs) {
  auto a = algebra_->ClassExtent(ids_.action, "x");
  auto b = algebra_->ClassExtent(ids_.data, "x");
  EXPECT_TRUE(algebra_->CartesianProduct(a, b).status().IsInvalidArgument());
}

TEST_F(QueryTest, RelationshipJoinUsesExistingRelationshipsOnly) {
  // Paper: joins are "defined on existing relationships only", so items
  // without relationships (however vague) simply never join.
  auto data = algebra_->ClassExtent(ids_.data, "d");
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  auto joined =
      algebra_->RelationshipJoin(data, "d", ids_.access, actions, "a");
  ASSERT_TRUE(joined.ok());
  // Flows: (ProcessData,Sensor), (Alarms,Sensor), (Alarms,Display).
  EXPECT_EQ(joined->size(), 3u);

  // Narrow to Read only.
  auto reads = algebra_->RelationshipJoin(data, "d", ids_.read, actions, "a");
  ASSERT_TRUE(reads.ok());
  ASSERT_EQ(reads->size(), 1u);
  EXPECT_EQ(reads->tuples[0][0], process_data_);
  EXPECT_EQ(reads->tuples[0][1], sensor_);
}

TEST_F(QueryTest, JoinStrategiesAllComputeTheSameRelation) {
  // Every physical variant — hash with either build side, index-nested-
  // loop driven from either side — is the same logical join.
  auto data = algebra_->ClassExtent(ids_.data, "d");
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  auto expected =
      *algebra_->RelationshipJoin(data, "d", ids_.access, actions, "a");
  EXPECT_EQ(expected.size(), 3u);
  for (auto method : {Algebra::JoinOptions::Method::kHash,
                      Algebra::JoinOptions::Method::kIndexNestedLoop}) {
    for (auto side : {Algebra::JoinOptions::Side::kLeft,
                      Algebra::JoinOptions::Side::kRight}) {
      Algebra::JoinOptions options;
      options.method = method;
      options.build_side = side;
      auto joined = algebra_->RelationshipJoin(data, "d", ids_.access,
                                               actions, "a", options);
      ASSERT_TRUE(joined.ok());
      EXPECT_EQ(joined->tuples, expected.tuples);
      EXPECT_EQ(joined->attributes, expected.attributes);
    }
  }
}

TEST_F(QueryTest, ReverseJoinBindsLeftToRoleOne) {
  // Actions sit at role 1 of Access; binding the left relation there
  // expresses the action->data direction, previously inexpressible.
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  auto data = algebra_->ClassExtent(ids_.data, "d");
  Algebra::JoinOptions reverse;
  reverse.left_role = 1;
  auto joined = algebra_->RelationshipJoin(actions, "a", ids_.access, data,
                                           "d", reverse);
  ASSERT_TRUE(joined.ok());
  // The same three flows, with the columns swapped.
  auto forward =
      *algebra_->RelationshipJoin(data, "d", ids_.access, actions, "a");
  ASSERT_EQ(joined->size(), forward.size());
  std::vector<std::vector<ObjectId>> swapped;
  for (const auto& t : forward.tuples) swapped.push_back({t[1], t[0]});
  std::sort(swapped.begin(), swapped.end());
  EXPECT_EQ(joined->tuples, swapped);
  // Every physical variant agrees in reverse too.
  for (auto method : {Algebra::JoinOptions::Method::kHash,
                      Algebra::JoinOptions::Method::kIndexNestedLoop}) {
    for (auto side : {Algebra::JoinOptions::Side::kLeft,
                      Algebra::JoinOptions::Side::kRight}) {
      Algebra::JoinOptions options = reverse;
      options.method = method;
      options.build_side = side;
      auto again = algebra_->RelationshipJoin(actions, "a", ids_.access,
                                              data, "d", options);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->tuples, joined->tuples);
    }
  }
  Algebra::JoinOptions bogus;
  bogus.left_role = 2;
  EXPECT_TRUE(algebra_->RelationshipJoin(actions, "a", ids_.access, data,
                                         "d", bogus)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryTest, JoinWithEmptySideShortCircuits) {
  auto data = algebra_->ClassExtent(ids_.data, "d");
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  QueryRelation empty_actions;
  empty_actions.attributes = {"a"};
  auto joined =
      algebra_->RelationshipJoin(data, "d", ids_.access, empty_actions, "a");
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->empty());
  EXPECT_EQ(joined->attributes, (std::vector<std::string>{"d", "a"}));
  QueryRelation empty_data;
  empty_data.attributes = {"d"};
  auto joined2 =
      algebra_->RelationshipJoin(empty_data, "d", ids_.access, actions, "a");
  ASSERT_TRUE(joined2.ok());
  EXPECT_TRUE(joined2->empty());
  // Attribute validation still runs before the short-circuit.
  EXPECT_TRUE(algebra_->RelationshipJoin(empty_data, "x", ids_.access,
                                         actions, "a")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryTest, DifferenceAndIntersect) {
  auto things = algebra_->ClassExtent(ids_.thing, "x");
  auto actions = algebra_->ClassExtent(ids_.action, "x");
  auto diff = algebra_->Difference(things, actions);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 3u);  // ProcessData, Alarms, Mystery
  auto inter = algebra_->Intersect(things, actions);
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(inter->tuples, actions.tuples);
  // a \ b and a ∩ b partition a.
  auto back = algebra_->Union(*diff, *inter);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tuples, things.tuples);
  auto mismatch = algebra_->ClassExtent(ids_.action, "y");
  EXPECT_TRUE(
      algebra_->Difference(things, mismatch).status().IsInvalidArgument());
  EXPECT_TRUE(
      algebra_->Intersect(things, mismatch).status().IsInvalidArgument());
}

TEST_F(QueryTest, DifferenceAndIntersectNormalizeHandBuiltRelations) {
  // Operator outputs are sorted+deduped; hand-built relations need not
  // be, and the linear merges must still compute set semantics.
  auto actions = algebra_->ClassExtent(ids_.action, "x");
  QueryRelation messy;
  messy.attributes = {"x"};
  messy.tuples = {{display_}, {sensor_}, {display_}};  // unsorted + dup
  auto diff = algebra_->Difference(actions, messy);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->size(), 1u);
  EXPECT_EQ(diff->tuples[0][0], idle_);
  auto inter = algebra_->Intersect(messy, actions);
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(inter->size(), 2u);  // {display, sensor}, deduplicated
}

TEST_F(QueryTest, TupleJoinMergesOnTheSharedColumn) {
  // Two independently computed segments overlapping in the "a" column —
  // (d, a) Access flows and (a, c) Containments — merge into (d, a, c):
  // exactly what joining the flows onward through Contained computes.
  ASSERT_TRUE(
      db_->CreateRelationship(ids_.contained, sensor_, display_).ok());
  auto data = algebra_->ClassExtent(ids_.data, "d");
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  auto containers = algebra_->ClassExtent(ids_.action, "c");
  auto flows =
      *algebra_->RelationshipJoin(data, "d", ids_.access, actions, "a");
  auto contains = *algebra_->RelationshipJoin(actions, "a", ids_.contained,
                                              containers, "c");
  auto merged = algebra_->TupleJoin(flows, contains, "a");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->attributes, (std::vector<std::string>{"d", "a", "c"}));
  auto reference = *algebra_->RelationshipJoin(flows, "a", ids_.contained,
                                               containers, "c");
  EXPECT_EQ(merged->tuples, reference.tuples);

  // The shared attribute must exist on both sides; all other attributes
  // must be disjoint; an empty side short-circuits but keeps the schema.
  EXPECT_TRUE(
      algebra_->TupleJoin(data, contains, "a").status().IsInvalidArgument());
  EXPECT_TRUE(
      algebra_->TupleJoin(flows, flows, "a").status().IsInvalidArgument());
  QueryRelation empty_contains;
  empty_contains.attributes = {"a", "c"};
  auto empty = algebra_->TupleJoin(flows, empty_contains, "a");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(empty->attributes, (std::vector<std::string>{"d", "a", "c"}));
}

TEST_F(QueryTest, JoinThenSelectPipeline) {
  // "Which actions access a data item whose name contains 'Alarm'?"
  auto data = algebra_->ClassExtent(ids_.data, "d");
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  auto joined =
      *algebra_->RelationshipJoin(data, "d", ids_.access, actions, "a");
  auto filtered =
      *algebra_->Select(joined, "d", Predicate::NameContains("Alarm"));
  auto result = *algebra_->Project(filtered, {"a"});
  EXPECT_EQ(result.size(), 2u);  // Sensor and Display
}

TEST_F(QueryTest, JoinAttributeErrors) {
  auto data = algebra_->ClassExtent(ids_.data, "d");
  auto actions = algebra_->ClassExtent(ids_.action, "a");
  EXPECT_TRUE(algebra_->RelationshipJoin(data, "x", ids_.read, actions, "a")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(algebra_->RelationshipJoin(data, "d", ids_.read, actions, "x")
                  .status()
                  .IsInvalidArgument());
  auto clash = algebra_->ClassExtent(ids_.action, "d");
  EXPECT_TRUE(algebra_->RelationshipJoin(data, "d", ids_.read, clash, "d")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryTest, UnionRequiresSameSchema) {
  auto a = algebra_->ClassExtent(ids_.action, "x");
  auto d = algebra_->ClassExtent(ids_.data, "x");
  auto u = algebra_->Union(a, d);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 5u);
  auto mismatch = algebra_->ClassExtent(ids_.data, "y");
  EXPECT_TRUE(algebra_->Union(a, mismatch).status().IsInvalidArgument());
}

TEST_F(QueryTest, PatternsExcludedFromExtents) {
  core::CreateOptions opts;
  opts.pattern = true;
  (void)*db_->CreateObject(ids_.action, "Ghost", opts);
  EXPECT_EQ(algebra_->ClassExtent(ids_.action, "a").size(), 3u);
}

// --- EXPLAIN goldens ---------------------------------------------------------
//
// The full EXPLAIN strings are pinned so any plan change — strategy,
// ordering, estimate or format — shows up as a readable diff. The
// fixture world: 2 Data objects, 3 Actions, Access family of 3
// relationships (Read + Write + Access).

TEST_F(QueryTest, JoinExplainGolden) {
  std::string plan;
  auto pairs = RunJoinQuery(
      *db_, "find Data d join via Access to Action a", &plan);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_EQ(pairs->size(), 3u);
  EXPECT_EQ(plan,
            "d: scan, est ~2 rows; a: scan, est ~3 rows; "
            "(hop1: d * a | join-hash(build=left), forward, 2 x 3 inputs, "
            "est ~3 rows (assoc ~3), actual 3); actual 3");
}

TEST_F(QueryTest, JoinChainExplainGolden) {
  // One Contained edge makes the last hop maximally selective; the plan
  // tree must run it first even though it is written last (hop2 nested
  // inside hop1's right input), and the EXPLAIN pins the tree shape,
  // each join's strategy and est vs. actual.
  ASSERT_TRUE(
      db_->CreateRelationship(ids_.contained, sensor_, display_).ok());
  std::string plan;
  auto chain = RunJoinChainQuery(
      *db_, "find Data d join via Access to Action a "
            "join via Contained to Action c",
      &plan);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->tuples.size(), 2u);
  EXPECT_EQ(chain->tuples[0],
            (std::vector<ObjectId>{process_data_, sensor_, display_}));
  EXPECT_EQ(chain->tuples[1],
            (std::vector<ObjectId>{alarms_, sensor_, display_}));
  EXPECT_EQ(plan,
            "d: scan, est ~2 rows; a: scan, est ~3 rows; c: scan, est ~3 "
            "rows; (hop1: d * (hop2: a * c | join-hash(build=right), "
            "forward, 3 x 3 inputs, est ~1 rows (assoc ~1), actual 1) | "
            "join-index-nested-loop(drive=right), forward, 2 x 1 inputs, "
            "est ~1 rows (assoc ~3), actual 2); actual 2");
}

TEST_F(QueryTest, LeftDeepChainExplainGolden) {
  // The selective Contained hop is written FIRST, so the cheapest tree
  // is the textual left-deep one: every later hop extends the running
  // segment rightward. Pins that the DP still produces (and prints)
  // plain left-deep shapes when they win.
  ObjectId parent = *db_->CreateObject(ids_.action, "Parent");
  ASSERT_TRUE(db_->CreateRelationship(ids_.contained, sensor_, parent).ok());
  ASSERT_TRUE(db_->CreateRelationship(ids_.read, process_data_, parent).ok());
  std::string plan;
  auto chain = RunJoinChainQuery(
      *db_, "find Action c join via Contained to Action p "
            "join reverse via Access to Data d "
            "join via Access to Action a",
      &plan);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ(plan,
            "c: scan, est ~4 rows; p: scan, est ~4 rows; d: scan, est ~2 "
            "rows; a: scan, est ~4 rows; (hop3: (hop2: (hop1: c * p | "
            "join-hash(build=right), forward, 4 x 4 inputs, est ~1 rows "
            "(assoc ~1), actual 1) * d | join-index-nested-loop"
            "(drive=left), reverse, 1 x 2 inputs, est ~1 rows (assoc ~4), "
            "actual 1) * a | join-index-nested-loop(drive=left), forward, "
            "1 x 4 inputs, est ~2 rows (assoc ~4), actual 2); actual 2");
}

/// A crafted small-HUGE-small 4-hop chain, queried through the textual
/// layer: tiny associations at both ends around a dense middle one. The
/// cheapest plan reduces BOTH sides before crossing the middle — a bushy
/// segment x segment hop join the left-deep enumeration could not
/// express — and the EXPLAIN golden pins the nested tree rendering.
TEST(QueryBushyExplainTest, BushyChainExplainGolden) {
  schema::SchemaBuilder b("BushyGolden");
  ClassId v = b.AddIndependentClass("V", schema::ValueType::kNone);
  ClassId w = b.AddIndependentClass("W", schema::ValueType::kNone);
  ClassId x = b.AddIndependentClass("X", schema::ValueType::kNone);
  ClassId y = b.AddIndependentClass("Y", schema::ValueType::kNone);
  ClassId z = b.AddIndependentClass("Z", schema::ValueType::kNone);
  AssociationId t0 = b.AddAssociation(
      "T0", schema::Role{"v", v, schema::Cardinality::Any()},
      schema::Role{"w", w, schema::Cardinality::Any()});
  AssociationId m1 = b.AddAssociation(
      "M1", schema::Role{"w", w, schema::Cardinality::Any()},
      schema::Role{"x", x, schema::Cardinality::Any()});
  AssociationId t2 = b.AddAssociation(
      "T2", schema::Role{"x", x, schema::Cardinality::Any()},
      schema::Role{"y", y, schema::Cardinality::Any()});
  AssociationId t3 = b.AddAssociation(
      "T3", schema::Role{"y", y, schema::Cardinality::Any()},
      schema::Role{"z", z, schema::Cardinality::Any()});
  Database db(*b.Build());
  std::vector<ObjectId> vs, ws, xs, ys, zs;
  for (int i = 0; i < 100; ++i) {
    vs.push_back(*db.CreateObject(v, "V" + std::to_string(i)));
    ws.push_back(*db.CreateObject(w, "W" + std::to_string(i)));
    xs.push_back(*db.CreateObject(x, "X" + std::to_string(i)));
    ys.push_back(*db.CreateObject(y, "Y" + std::to_string(i)));
    zs.push_back(*db.CreateObject(z, "Z" + std::to_string(i)));
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.CreateRelationship(t0, vs[i], ws[i]).ok());
    ASSERT_TRUE(db.CreateRelationship(t2, xs[i], ys[i]).ok());
    ASSERT_TRUE(db.CreateRelationship(t3, ys[i], zs[i]).ok());
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 40; ++j) {
      ASSERT_TRUE(
          db.CreateRelationship(m1, ws[i], xs[(i + j * 13) % 100]).ok());
    }
  }
  std::string plan;
  auto chain = RunJoinChainQuery(
      db, "find V v join via T0 to W w join via M1 to X x "
          "join via T2 to Y y join via T3 to Z z",
      &plan);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ(chain->binders,
            (std::vector<std::string>{"v", "w", "x", "y", "z"}));
  EXPECT_EQ(plan,
            "v: scan, est ~100 rows; w: scan, est ~100 rows; x: scan, est "
            "~100 rows; y: scan, est ~100 rows; z: scan, est ~100 rows; "
            "(hop2: (hop1: v * w | join-hash(build=right), forward, 100 x "
            "100 inputs, est ~8 rows (assoc ~8), actual 8) * (hop4: (hop3: "
            "x * y | join-hash(build=right), forward, 100 x 100 inputs, "
            "est ~8 rows (assoc ~8), actual 8) * z | join-hash(build=left), "
            "forward, 8 x 100 inputs, est ~1 rows (assoc ~8), actual 8) | "
            "join-index-nested-loop(drive=right), forward, 8 x 1 inputs, "
            "est ~2 rows (assoc ~4000), actual 30); actual 30");
}

}  // namespace
}  // namespace seed::query
