// Schema layer tests: types, builder validation rules, structural and
// generalization queries, path resolution, serialization, evolution.

#include <gtest/gtest.h>

#include "schema/schema_builder.h"
#include "schema/schema_io.h"
#include "spades/spec_schema.h"

namespace seed::schema {
namespace {

using spades::BuildFig2Schema;
using spades::BuildFig3Schema;

// --- Types -------------------------------------------------------------------

TEST(CardinalityTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ(Cardinality(0, 16).ToString(), "0..16");
  EXPECT_EQ(Cardinality::AtLeast(1).ToString(), "1..*");
  EXPECT_EQ(Cardinality::Any().ToString(), "0..*");
  EXPECT_EQ(Cardinality::One().ToString(), "1..1");
  EXPECT_EQ(Cardinality::Optional().ToString(), "0..1");
}

TEST(CardinalityTest, Validity) {
  EXPECT_TRUE(Cardinality(0, 16).IsValid());
  EXPECT_TRUE(Cardinality::AtLeast(5).IsValid());
  EXPECT_FALSE(Cardinality(3, 2).IsValid());
}

TEST(DateTest, MakeValidates) {
  EXPECT_TRUE(Date::Make(1986, 2, 28).ok());
  EXPECT_FALSE(Date::Make(1986, 2, 29).ok());  // not a leap year
  EXPECT_TRUE(Date::Make(1984, 2, 29).ok());
  EXPECT_FALSE(Date::Make(1986, 13, 1).ok());
  EXPECT_FALSE(Date::Make(1986, 4, 31).ok());
}

TEST(DateTest, ParseAndPrint) {
  auto d = Date::Parse("1986-02-05");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToString(), "1986-02-05");
  EXPECT_FALSE(Date::Parse("1986/02/05").ok());
  EXPECT_FALSE(Date::Parse("1986-2").ok());
  EXPECT_FALSE(Date::Parse("abcd-ef-gh").ok());
}

TEST(DateTest, Ordering) {
  EXPECT_LT(*Date::Parse("1985-12-31"), *Date::Parse("1986-01-01"));
}

// --- Builder: happy path (the paper's schemas) -------------------------------

TEST(SchemaBuilderTest, Fig2SchemaBuilds) {
  auto fig2 = BuildFig2Schema();
  ASSERT_TRUE(fig2.ok()) << fig2.status().ToString();
  const Schema& s = *fig2->schema;
  EXPECT_EQ(s.name(), "Fig2MiniSpec");
  EXPECT_EQ(s.version(), 1u);
  EXPECT_EQ(s.num_classes(), 8u);
  EXPECT_EQ(s.num_associations(), 3u);
}

TEST(SchemaBuilderTest, Fig3SchemaBuilds) {
  auto fig3 = BuildFig3Schema();
  ASSERT_TRUE(fig3.ok()) << fig3.status().ToString();
  const Schema& s = *fig3->schema;
  EXPECT_EQ(s.num_associations(), 4u);
  auto thing = s.GetClass(fig3->ids.thing);
  EXPECT_TRUE((*thing)->covering);
}

TEST(SchemaBuilderTest, FullNamesAreDotted) {
  auto fig2 = BuildFig2Schema();
  auto body = fig2->schema->GetClass(fig2->ids.body);
  EXPECT_EQ((*body)->full_name, "Data.Text.Body");
  auto keywords = fig2->schema->GetClass(fig2->ids.keywords);
  EXPECT_EQ((*keywords)->full_name, "Data.Text.Body.Keywords");
}

TEST(SchemaBuilderTest, AssociationOwnedClassFullName) {
  auto fig3 = BuildFig3Schema();
  auto now = fig3->schema->GetClass(fig3->ids.number_of_writes);
  EXPECT_EQ((*now)->full_name, "Write.NumberOfWrites");
}

// --- Builder: validation failures --------------------------------------------

TEST(SchemaBuilderTest, RejectsBadClassName) {
  SchemaBuilder b("t");
  b.AddIndependentClass("not valid");
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsDuplicateTopLevelNames) {
  SchemaBuilder b("t");
  b.AddIndependentClass("Data");
  b.AddIndependentClass("Data");
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, ClassAndAssociationShareNamespace) {
  SchemaBuilder b("t");
  ClassId a = b.AddIndependentClass("Data");
  ClassId c = b.AddIndependentClass("Action");
  b.AddAssociation("Data", Role{"from", a, Cardinality::Any()},
                   Role{"by", c, Cardinality::Any()});
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsZeroMaxCardinality) {
  SchemaBuilder b("t");
  ClassId data = b.AddIndependentClass("Data");
  b.AddDependentClass(data, "Text", Cardinality(0, 0));
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsInvalidCardinality) {
  SchemaBuilder b("t");
  ClassId data = b.AddIndependentClass("Data");
  b.AddDependentClass(data, "Text", Cardinality(5, 2));
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsEnumWithoutValues) {
  SchemaBuilder b("t");
  ClassId data = b.AddIndependentClass("Data");
  b.AddDependentClass(data, "Mode", Cardinality::Optional(),
                      ValueType::kEnum);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsEnumValuesOnNonEnum) {
  SchemaBuilder b("t");
  ClassId data = b.AddIndependentClass("Data");
  ClassId mode = b.AddDependentClass(data, "Mode", Cardinality::Optional(),
                                     ValueType::kString);
  b.SetEnumValues(mode, {"a", "b"});
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsDuplicateEnumValues) {
  SchemaBuilder b("t");
  ClassId data = b.AddIndependentClass("Data");
  ClassId mode = b.AddDependentClass(data, "Mode", Cardinality::Optional(),
                                     ValueType::kEnum);
  b.SetEnumValues(mode, {"abort", "abort"});
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsSelfGeneralization) {
  SchemaBuilder b("t");
  ClassId data = b.AddIndependentClass("Data");
  b.SetGeneralization(data, data);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsGeneralizationCycle) {
  SchemaBuilder b("t");
  ClassId a = b.AddIndependentClass("A");
  ClassId c = b.AddIndependentClass("B");
  b.SetGeneralization(a, c);
  b.SetGeneralization(c, a);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsDependentClassGeneralization) {
  SchemaBuilder b("t");
  ClassId data = b.AddIndependentClass("Data");
  ClassId text = b.AddDependentClass(data, "Text", Cardinality::Any());
  ClassId other = b.AddIndependentClass("Other");
  b.SetGeneralization(text, other);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsInheritedRoleCollision) {
  SchemaBuilder b("t");
  ClassId thing = b.AddIndependentClass("Thing");
  b.AddDependentClass(thing, "Description", Cardinality::Optional(),
                      ValueType::kString);
  ClassId data = b.AddIndependentClass("Data");
  b.SetGeneralization(data, thing);
  // Data declares a role that already exists on its ancestor.
  b.AddDependentClass(data, "Description", Cardinality::Optional(),
                      ValueType::kString);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsSameRoleNames) {
  SchemaBuilder b("t");
  ClassId a = b.AddIndependentClass("A");
  b.AddAssociation("R", Role{"x", a, Cardinality::Any()},
                   Role{"x", a, Cardinality::Any()});
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsDanglingRoleTarget) {
  SchemaBuilder b("t");
  ClassId a = b.AddIndependentClass("A");
  b.AddAssociation("R", Role{"x", ClassId(99), Cardinality::Any()},
                   Role{"y", a, Cardinality::Any()});
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsIncompatibleSpecializedRoles) {
  SchemaBuilder b("t");
  ClassId data = b.AddIndependentClass("Data");
  ClassId action = b.AddIndependentClass("Action");
  ClassId unrelated = b.AddIndependentClass("Unrelated");
  AssociationId access = b.AddAssociation(
      "Access", Role{"of", data, Cardinality::Any()},
      Role{"by", action, Cardinality::Any()});
  AssociationId bad = b.AddAssociation(
      "Bad", Role{"of", unrelated, Cardinality::Any()},
      Role{"by", action, Cardinality::Any()});
  b.SetGeneralization(bad, access);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsCoveringWithoutSpecializations) {
  SchemaBuilder b("t");
  ClassId thing = b.AddIndependentClass("Thing");
  b.SetCovering(thing);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(SchemaBuilderTest, RejectsAssociationGeneralizationCycle) {
  SchemaBuilder b("t");
  ClassId a = b.AddIndependentClass("A");
  AssociationId r1 = b.AddAssociation(
      "R1", Role{"x", a, Cardinality::Any()},
      Role{"y", a, Cardinality::Any()});
  AssociationId r2 = b.AddAssociation(
      "R2", Role{"x", a, Cardinality::Any()},
      Role{"y", a, Cardinality::Any()});
  b.SetGeneralization(r1, r2);
  b.SetGeneralization(r2, r1);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

// --- Queries -----------------------------------------------------------------

class Fig3QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    schema_ = fig3->schema;
    ids_ = fig3->ids;
  }

  SchemaPtr schema_;
  spades::Fig3Ids ids_;
};

TEST_F(Fig3QueryTest, FindByName) {
  EXPECT_EQ(*schema_->FindIndependentClass("Data"), ids_.data);
  EXPECT_EQ(*schema_->FindAssociation("Read"), ids_.read);
  EXPECT_TRUE(schema_->FindIndependentClass("Nope").status().IsNotFound());
  EXPECT_TRUE(schema_->FindAssociation("Nope").status().IsNotFound());
}

TEST_F(Fig3QueryTest, GeneralizationChains) {
  auto chain = schema_->GeneralizationChain(ids_.output_data);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], ids_.output_data);
  EXPECT_EQ(chain[1], ids_.data);
  EXPECT_EQ(chain[2], ids_.thing);
}

TEST_F(Fig3QueryTest, IsSameOrSpecializationOf) {
  EXPECT_TRUE(schema_->IsSameOrSpecializationOf(ids_.output_data, ids_.thing));
  EXPECT_TRUE(schema_->IsSameOrSpecializationOf(ids_.data, ids_.data));
  EXPECT_FALSE(schema_->IsSameOrSpecializationOf(ids_.thing, ids_.data));
  EXPECT_FALSE(
      schema_->IsSameOrSpecializationOf(ids_.action, ids_.data));
  EXPECT_TRUE(schema_->IsSameOrSpecializationOf(ids_.write, ids_.access));
  EXPECT_FALSE(schema_->IsSameOrSpecializationOf(ids_.access, ids_.write));
}

TEST_F(Fig3QueryTest, OnSameGeneralizationPath) {
  EXPECT_TRUE(schema_->OnSameGeneralizationPath(ids_.thing, ids_.input_data));
  EXPECT_TRUE(schema_->OnSameGeneralizationPath(ids_.input_data, ids_.thing));
  EXPECT_FALSE(
      schema_->OnSameGeneralizationPath(ids_.input_data, ids_.output_data));
  EXPECT_FALSE(schema_->OnSameGeneralizationPath(ids_.read, ids_.write));
}

TEST_F(Fig3QueryTest, ClassAndAssociationFamilies) {
  auto family = schema_->ClassFamily(ids_.data);
  EXPECT_EQ(family.size(), 3u);  // Data, InputData, OutputData
  auto thing_family = schema_->ClassFamily(ids_.thing);
  EXPECT_EQ(thing_family.size(), 5u);
  auto access_family = schema_->AssociationFamily(ids_.access);
  EXPECT_EQ(access_family.size(), 3u);  // Access, Read, Write
}

TEST_F(Fig3QueryTest, EffectiveDependentClassesIncludeInherited) {
  // Data inherits Revised and Description from Thing, plus its own Text.
  auto deps = schema_->EffectiveDependentClassesOf(ids_.data);
  EXPECT_EQ(deps.size(), 3u);
  // Thing itself has only its two declared roles.
  EXPECT_EQ(schema_->EffectiveDependentClassesOf(ids_.thing).size(), 2u);
}

TEST_F(Fig3QueryTest, ResolveSubObjectRoleThroughGeneralization) {
  auto resolved = schema_->ResolveSubObjectRole(ids_.output_data, "Revised");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, ids_.revised);
  EXPECT_TRUE(
      schema_->ResolveSubObjectRole(ids_.thing, "Text").status().IsNotFound());
}

TEST_F(Fig3QueryTest, ResolveAssociationAttributeRole) {
  auto resolved = schema_->ResolveSubObjectRole(ids_.write, "NumberOfWrites");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, ids_.number_of_writes);
  EXPECT_TRUE(schema_->ResolveSubObjectRole(ids_.read, "NumberOfWrites")
                  .status()
                  .IsNotFound());
}

TEST_F(Fig3QueryTest, FindClassByPath) {
  EXPECT_EQ(*schema_->FindClassByPath("Data.Text.Body"), ids_.body);
  EXPECT_EQ(*schema_->FindClassByPath("InputData.Text"), ids_.text);
  EXPECT_EQ(*schema_->FindClassByPath("Write.NumberOfWrites"),
            ids_.number_of_writes);
  EXPECT_TRUE(schema_->FindClassByPath("Data.Nope").status().IsNotFound());
  EXPECT_TRUE(schema_->FindClassByPath("Nope.Text").status().IsNotFound());
  EXPECT_TRUE(
      schema_->FindClassByPath("Data.Text[0]").status().IsInvalidArgument());
  EXPECT_TRUE(schema_->FindClassByPath("Write").status().IsInvalidArgument());
}

// --- Serialization -----------------------------------------------------------

TEST(SchemaIoTest, RoundTripPreservesEverything) {
  auto fig3 = BuildFig3Schema();
  ASSERT_TRUE(fig3.ok());
  Encoder enc;
  SchemaCodec::Encode(*fig3->schema, &enc);
  Decoder dec(enc.bytes());
  auto decoded = SchemaCodec::Decode(&dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  const Schema& a = *fig3->schema;
  const Schema& b = **decoded;
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(a.num_classes(), b.num_classes());
  EXPECT_EQ(a.num_associations(), b.num_associations());
  for (ClassId id : a.AllClassIds()) {
    const ObjectClass& ca = **a.GetClass(id);
    const ObjectClass& cb = **b.GetClass(id);
    EXPECT_EQ(ca.name, cb.name);
    EXPECT_EQ(ca.full_name, cb.full_name);
    EXPECT_EQ(ca.owner, cb.owner);
    EXPECT_EQ(ca.cardinality, cb.cardinality);
    EXPECT_EQ(ca.value_type, cb.value_type);
    EXPECT_EQ(ca.enum_values, cb.enum_values);
    EXPECT_EQ(ca.generalizes_into, cb.generalizes_into);
    EXPECT_EQ(ca.covering, cb.covering);
  }
  for (AssociationId id : a.AllAssociationIds()) {
    const Association& aa = **a.GetAssociation(id);
    const Association& ab = **b.GetAssociation(id);
    EXPECT_EQ(aa.name, ab.name);
    EXPECT_EQ(aa.acyclic, ab.acyclic);
    EXPECT_EQ(aa.covering, ab.covering);
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(aa.roles[i].name, ab.roles[i].name);
      EXPECT_EQ(aa.roles[i].target, ab.roles[i].target);
      EXPECT_EQ(aa.roles[i].cardinality, ab.roles[i].cardinality);
    }
  }
}

TEST(SchemaIoTest, TruncatedStreamIsRejected) {
  auto fig2 = BuildFig2Schema();
  Encoder enc;
  SchemaCodec::Encode(*fig2->schema, &enc);
  Decoder dec(enc.bytes().data(), enc.size() / 2);
  EXPECT_FALSE(SchemaCodec::Decode(&dec).ok());
}

TEST(SchemaIoTest, BadFormatVersionRejected) {
  Encoder enc;
  enc.PutU32(999);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(SchemaCodec::Decode(&dec).status().IsCorruption());
}

// --- Evolution ---------------------------------------------------------------

TEST(SchemaEvolveTest, EvolveKeepsIdsAndBumpsVersion) {
  auto fig2 = BuildFig2Schema();
  SchemaBuilder b = SchemaBuilder::Evolve(*fig2->schema);
  ClassId module = b.AddIndependentClass("Module");
  auto evolved = b.Build();
  ASSERT_TRUE(evolved.ok()) << evolved.status().ToString();
  EXPECT_EQ((*evolved)->version(), 2u);
  EXPECT_EQ(*(*evolved)->FindIndependentClass("Data"), fig2->ids.data);
  EXPECT_EQ(*(*evolved)->FindIndependentClass("Module"), module);
  // The original is untouched.
  EXPECT_TRUE(fig2->schema->FindIndependentClass("Module")
                  .status()
                  .IsNotFound());
}

TEST(SchemaEvolveTest, EvolvedSchemaStillValidates) {
  auto fig2 = BuildFig2Schema();
  SchemaBuilder b = SchemaBuilder::Evolve(*fig2->schema);
  b.AddIndependentClass("Data");  // clashes with existing class
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

}  // namespace
}  // namespace seed::schema
