// DiskManager and BufferPool tests: file lifecycle, page I/O, pinning, LRU
// eviction, dirty write-back.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace seed::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid()) + "." +
         std::to_string(
             ::testing::UnitTest::GetInstance()->random_seed() + rand());
}

class DiskManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("disk");
    ASSERT_TRUE(disk_.Open(path_).ok());
  }
  void TearDown() override {
    (void)disk_.Close();
    std::remove(path_.c_str());
  }

  std::string path_;
  DiskManager disk_;
};

TEST_F(DiskManagerTest, FreshFileHasHeaderPage) {
  EXPECT_EQ(disk_.num_pages(), 1u);
}

TEST_F(DiskManagerTest, AllocateGrowsFile) {
  auto p1 = disk_.AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->raw(), 1u);
  auto p2 = disk_.AllocatePage();
  EXPECT_EQ(p2->raw(), 2u);
  EXPECT_EQ(disk_.num_pages(), 3u);
}

TEST_F(DiskManagerTest, WriteReadRoundTrip) {
  auto pid = disk_.AllocatePage();
  Page out;
  out.WriteU64(100, 0xFEEDFACE);
  ASSERT_TRUE(disk_.WritePage(*pid, out).ok());
  Page in;
  ASSERT_TRUE(disk_.ReadPage(*pid, &in).ok());
  EXPECT_EQ(in.ReadU64(100), 0xFEEDFACEu);
}

TEST_F(DiskManagerTest, OutOfRangeAccessRejected) {
  Page page;
  EXPECT_TRUE(disk_.ReadPage(PageId(99), &page).IsInvalidArgument());
  EXPECT_TRUE(disk_.WritePage(PageId(1), page).IsInvalidArgument());
  // The header page (0) is directly addressable.
  EXPECT_TRUE(disk_.ReadPage(PageId(0), &page).ok());
}

TEST_F(DiskManagerTest, ReopenPreservesPages) {
  auto pid = disk_.AllocatePage();
  Page out;
  out.WriteU32(0, 1234);
  ASSERT_TRUE(disk_.WritePage(*pid, out).ok());
  ASSERT_TRUE(disk_.Close().ok());

  DiskManager reopened;
  ASSERT_TRUE(reopened.Open(path_).ok());
  EXPECT_EQ(reopened.num_pages(), 2u);
  Page in;
  ASSERT_TRUE(reopened.ReadPage(*pid, &in).ok());
  EXPECT_EQ(in.ReadU32(0), 1234u);
  (void)reopened.Close();
}

TEST_F(DiskManagerTest, BadMagicIsCorruption) {
  std::string bogus = TempPath("bogus");
  {
    FILE* f = fopen(bogus.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    Page junk;
    junk.WriteU64(0, 0x1111111111111111ull);
    fwrite(junk.bytes(), 1, kPageSize, f);
    fclose(f);
  }
  DiskManager dm;
  EXPECT_TRUE(dm.Open(bogus).IsCorruption());
  std::remove(bogus.c_str());
}

TEST_F(DiskManagerTest, DoubleOpenRejected) {
  EXPECT_TRUE(disk_.Open(path_).IsFailedPrecondition());
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("pool");
    ASSERT_TRUE(disk_.Open(path_).ok());
  }
  void TearDown() override {
    (void)disk_.Close();
    std::remove(path_.c_str());
  }

  std::string path_;
  DiskManager disk_;
};

TEST_F(BufferPoolTest, NewPageIsPinnedAndZeroed) {
  BufferPool pool(&disk_, 4);
  auto guard = pool.New();
  ASSERT_TRUE(guard.ok());
  EXPECT_TRUE(guard->valid());
  EXPECT_EQ(guard->page().ReadU64(0), 0u);
  EXPECT_EQ(pool.pinned_frames(), 1u);
  guard->Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST_F(BufferPoolTest, FetchHitsCache) {
  BufferPool pool(&disk_, 4);
  PageId pid;
  {
    auto guard = pool.New();
    pid = guard->id();
    guard->MutablePage().WriteU32(0, 77);
  }
  auto again = pool.Fetch(pid);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->page().ReadU32(0), 77u);
  EXPECT_GE(pool.hit_count(), 1u);
}

TEST_F(BufferPoolTest, EvictionWritesDirtyPages) {
  BufferPool pool(&disk_, 2);
  PageId first;
  {
    auto guard = pool.New();
    first = guard->id();
    guard->MutablePage().WriteU32(8, 555);
  }
  // Fill beyond capacity to force eviction of `first`.
  for (int i = 0; i < 3; ++i) {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
  }
  // Read through a fresh pool: the dirty page must have reached disk.
  BufferPool pool2(&disk_, 2);
  auto reread = pool2.Fetch(first);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->page().ReadU32(8), 555u);
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  BufferPool pool(&disk_, 2);
  auto g1 = pool.New();
  auto g2 = pool.New();
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto g3 = pool.New();
  EXPECT_TRUE(g3.status().IsResourceExhausted());
  g1->Release();
  auto g4 = pool.New();
  EXPECT_TRUE(g4.ok());
}

TEST_F(BufferPoolTest, GuardMoveTransfersPin) {
  BufferPool pool(&disk_, 2);
  auto g1 = pool.New();
  PageGuard moved = std::move(*g1);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(pool.pinned_frames(), 1u);
  moved.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST_F(BufferPoolTest, RepinnedPageLeavesLruList) {
  BufferPool pool(&disk_, 2);
  PageId a, b;
  {
    auto ga = pool.New();
    a = ga->id();
  }
  {
    auto gb = pool.New();
    b = gb->id();
  }
  // Re-pin `a` (the LRU victim candidate), then allocate: `b` must be the
  // one evicted.
  auto ga = pool.Fetch(a);
  ASSERT_TRUE(ga.ok());
  auto gc = pool.New();
  ASSERT_TRUE(gc.ok());
  // `a` is still resident: fetching it is a hit.
  std::uint64_t hits_before = pool.hit_count();
  ga->Release();
  auto ga2 = pool.Fetch(a);
  ASSERT_TRUE(ga2.ok());
  EXPECT_EQ(pool.hit_count(), hits_before + 1);
  (void)b;
}

TEST_F(BufferPoolTest, FlushAllPersistsWithoutEviction) {
  BufferPool pool(&disk_, 4);
  PageId pid;
  {
    auto guard = pool.New();
    pid = guard->id();
    guard->MutablePage().WriteU32(4, 999);
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  Page direct;
  ASSERT_TRUE(disk_.ReadPage(pid, &direct).ok());
  EXPECT_EQ(direct.ReadU32(4), 999u);
}

TEST_F(BufferPoolTest, CheckpointSyncs) {
  BufferPool pool(&disk_, 4);
  {
    auto guard = pool.New();
    guard->MutablePage().WriteU32(0, 1);
  }
  EXPECT_TRUE(pool.Checkpoint().ok());
}

TEST_F(BufferPoolTest, HitMissCountersTrack) {
  BufferPool pool(&disk_, 2);
  PageId pid;
  {
    auto g = pool.New();
    pid = g->id();
  }
  std::uint64_t misses_before = pool.miss_count();
  {
    auto g = pool.Fetch(pid);  // hit
  }
  // Evict pid by filling the pool.
  (void)pool.New();
  (void)pool.New();
  {
    auto g = pool.Fetch(pid);  // miss after eviction
  }
  EXPECT_GT(pool.miss_count(), misses_before);
}

}  // namespace
}  // namespace seed::storage
