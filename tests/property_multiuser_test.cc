// Property tests for the multiuser layer: random interleavings of
// checkout / edit / checkin / abandon across several clients must keep the
// master permanently consistent, locks coherent, and all applied changes
// durable.

#include <gtest/gtest.h>

#include "common/random.h"
#include "multiuser/client.h"
#include "pattern/pattern_manager.h"
#include "multiuser/server.h"
#include "spades/spec_schema.h"

namespace seed::multiuser {
namespace {

using core::Value;
using spades::BuildFig3Schema;

class MultiuserPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiuserPropertyTest, RandomInterleavingsKeepMasterConsistent) {
  auto fig3 = BuildFig3Schema();
  ASSERT_TRUE(fig3.ok());
  Server server(fig3->schema);

  // Seed the master with actions.
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    names.push_back("Action_" + std::to_string(i));
    ASSERT_TRUE(
        server.master()->CreateObject(fig3->ids.action, names.back()).ok());
  }
  server.master()->ClearChangeTracking();

  constexpr int kClients = 3;
  std::vector<std::unique_ptr<ClientSession>> clients;
  for (int c = 0; c < kClients; ++c) {
    auto session =
        ClientSession::Open(&server, "client" + std::to_string(c));
    ASSERT_TRUE(session.ok());
    clients.push_back(std::move(*session));
  }

  Random rng(GetParam() * 2654435761u + 17);
  std::uint64_t edits_applied = 0;
  for (int step = 0; step < 300; ++step) {
    ClientSession& client = *clients[rng.Uniform(kClients)];
    switch (rng.Uniform(4)) {
      case 0: {  // checkout a random object (may conflict: that's fine)
        const std::string& name = rng.Pick(names);
        Status s = client.CheckoutByName({name});
        EXPECT_TRUE(s.ok() || s.IsLockConflict()) << s.ToString();
        break;
      }
      case 1: {  // edit something checked out locally
        auto roots = client.local()->AllIndependentObjects();
        if (roots.empty()) break;
        ObjectId obj = roots[rng.Uniform(roots.size())];
        auto descs = client.local()->SubObjects(obj, "Description");
        ObjectId d;
        if (descs.empty()) {
          auto created = client.local()->CreateSubObject(obj, "Description");
          if (!created.ok()) break;
          d = *created;
        } else {
          d = descs[0];
        }
        EXPECT_TRUE(client.local()
                        ->SetValue(d, Value::String(rng.Identifier(12)))
                        .ok());
        break;
      }
      case 2: {  // checkin
        if (client.local()->changed_objects().empty()) break;
        Status s = client.Checkin();
        EXPECT_TRUE(s.ok()) << s.ToString();
        if (s.ok()) ++edits_applied;
        break;
      }
      default: {  // abandon
        if (rng.Bernoulli(0.3)) {
          EXPECT_TRUE(client.Abandon().ok());
        }
        break;
      }
    }
    // Invariant: the master is consistent after every step.
    if (step % 50 == 49) {
      core::Report audit = server.master()->AuditConsistency();
      ASSERT_TRUE(audit.clean()) << "step " << step << ":\n"
                                 << audit.ToString();
    }
  }
  EXPECT_GT(edits_applied, 0u);
  EXPECT_TRUE(server.master()->AuditConsistency().clean());
  EXPECT_EQ(server.checkins_applied(), edits_applied);

  // Every lock is held by a live client.
  for (const auto& client : clients) {
    for (ObjectId root : server.LocksOf(client->id())) {
      EXPECT_TRUE(server.master()->GetObject(root).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiuserPropertyTest,
                         ::testing::Range(0, 6));

class PatternPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PatternPropertyTest, OverlayAlwaysReflectsPatternState) {
  // Invariant: for every inheritor, EffectiveValue equals the pattern's own
  // current value whenever the inheritor has no own sub-object in the role.
  auto fig3 = BuildFig3Schema();
  core::Database db(fig3->schema);
  seed::pattern::PatternManager pm(&db);
  core::CreateOptions opts;
  opts.pattern = true;

  Random rng(GetParam() * 40503 + 11);
  ObjectId pat = *db.CreateObject(fig3->ids.action, "Template", opts);
  ObjectId pd = *db.CreateSubObject(pat, "Description");
  ASSERT_TRUE(db.SetValue(pd, Value::String("v0")).ok());

  std::vector<ObjectId> inheritors;
  for (int i = 0; i < 20; ++i) {
    ObjectId real =
        *db.CreateObject(fig3->ids.action, "R" + std::to_string(i));
    ASSERT_TRUE(pm.Inherit(real, pat).ok());
    inheritors.push_back(real);
  }

  std::string current = "v0";
  for (int step = 0; step < 200; ++step) {
    if (rng.Bernoulli(0.5)) {
      current = rng.Identifier(10);
      ASSERT_TRUE(db.SetValue(pd, Value::String(current)).ok());
    }
    ObjectId probe = rng.Pick(inheritors);
    auto v = pm.EffectiveValue(probe, "Description");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->as_string(), current);
    // Write protection holds at every step.
    EXPECT_TRUE(pm.SetValueInContext(probe, "Description",
                                     Value::String("hijack"))
                    .IsFailedPrecondition());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternPropertyTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace seed::multiuser
