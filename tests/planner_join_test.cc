// Join planning tests: Planner::PlanJoin must pick the physical strategy
// the cost model predicts from the association population (ExtentCounters)
// and the input relation sizes — index-nested-loop driven from a selective
// side against a big association, hash join with the smaller input as the
// build side otherwise — with deterministic tie-breaks, and the planned
// execution must equal every other strategy's result.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "query/planner.h"
#include "query/stats.h"
#include "schema/schema_builder.h"

namespace seed::query {
namespace {

using core::Database;
using JoinPlan = Planner::JoinPlan;
using Strategy = Planner::JoinPlan::Strategy;

/// A bipartite world: `num_src` Src objects, `num_dst` Dst objects, and
/// `num_rels` Flows relationships laid out so every src has the same
/// degree (num_rels / num_src) and no (src, dst) pair repeats.
struct JoinWorld {
  std::unique_ptr<Database> db;
  ClassId src_cls, dst_cls;
  AssociationId flows;
  std::vector<ObjectId> srcs, dsts;
};

JoinWorld BuildJoinWorld(int num_src, int num_dst, int num_rels) {
  schema::SchemaBuilder b("JoinWorld");
  ClassId src_cls = b.AddIndependentClass("Src", schema::ValueType::kNone);
  ClassId dst_cls = b.AddIndependentClass("Dst", schema::ValueType::kNone);
  AssociationId flows = b.AddAssociation(
      "Flows", schema::Role{"src", src_cls, schema::Cardinality::Any()},
      schema::Role{"dst", dst_cls, schema::Cardinality::Any()});
  JoinWorld w{std::make_unique<Database>(*b.Build()), src_cls, dst_cls,
              flows};
  for (int i = 0; i < num_src; ++i) {
    w.srcs.push_back(*w.db->CreateObject(src_cls, "S" + std::to_string(i)));
  }
  for (int i = 0; i < num_dst; ++i) {
    w.dsts.push_back(*w.db->CreateObject(dst_cls, "D" + std::to_string(i)));
  }
  int degree = num_src == 0 ? 0 : num_rels / num_src;
  for (int i = 0; i < num_src; ++i) {
    for (int j = 0; j < degree; ++j) {
      (void)*w.db->CreateRelationship(flows, w.srcs[i],
                                      w.dsts[(i + j * 13) % num_dst]);
    }
  }
  return w;
}

/// First `n` tuples of the extent as a unary relation named `attr`.
QueryRelation Take(const std::vector<ObjectId>& ids, size_t n,
                   std::string attr) {
  QueryRelation out;
  out.attributes = {std::move(attr)};
  for (size_t i = 0; i < n && i < ids.size(); ++i) out.tuples.push_back({ids[i]});
  return out;
}

TEST(PlannerJoinTest, SelectiveDriverPlansIndexNestedLoop) {
  // 10 driving tuples against a 2000-relationship association: probing
  // RelationshipsOf per driver beats materializing the adjacency.
  JoinWorld w = BuildJoinWorld(100, 100, 2000);
  Planner planner(w.db.get());
  JoinPlan plan = planner.PlanJoin(w.flows, 10, 100);
  EXPECT_EQ(plan.strategy, Strategy::kIndexNestedLoopLeft)
      << plan.ToString();
  EXPECT_EQ(plan.left_role, 0);
  EXPECT_DOUBLE_EQ(plan.assoc_rows, 2000.0);

  // Mirrored: the small side on the right drives from the right.
  JoinPlan mirrored = planner.PlanJoin(w.flows, 100, 10);
  EXPECT_EQ(mirrored.strategy, Strategy::kIndexNestedLoopRight)
      << mirrored.ToString();
}

TEST(PlannerJoinTest, LowDegreeFullExtentsPlanHashJoin) {
  // Degree 1 and both inputs at extent scale: one adjacency pass is
  // cheaper than per-tuple probing.
  JoinWorld w = BuildJoinWorld(1000, 1000, 1000);
  Planner planner(w.db.get());
  JoinPlan plan = planner.PlanJoin(w.flows, 1000, 1000);
  EXPECT_EQ(plan.strategy, Strategy::kHashBuildRight) << plan.ToString();

  // With a clearly smaller left input (and per-tuple probing priced out
  // by the higher degree), the build side flips to the left.
  JoinWorld dense = BuildJoinWorld(1000, 1000, 4000);
  Planner dense_planner(dense.db.get());
  JoinPlan build_left = dense_planner.PlanJoin(dense.flows, 900, 1000);
  EXPECT_EQ(build_left.strategy, Strategy::kHashBuildLeft)
      << build_left.ToString();
}

TEST(PlannerJoinTest, CostsMatchTheModel) {
  JoinWorld w = BuildJoinWorld(100, 50, 600);
  Planner planner(w.db.get());
  JoinPlan plan = planner.PlanJoin(w.flows, 20, 50);
  // est_rows: 600 edges, left covers 20/100 of the src extent, right
  // 50/50 of the dst extent.
  EXPECT_DOUBLE_EQ(plan.est_rows,
                   CostModel::JoinRows(600, 20, 100, 50, 50));
  double inl_left = CostModel::IndexNestedLoopJoinCost(
      20, CostModel::JoinDegree(600, 100), 50, plan.est_rows);
  EXPECT_EQ(plan.strategy, Strategy::kIndexNestedLoopLeft);
  EXPECT_DOUBLE_EQ(plan.est_cost, inl_left);
}

TEST(PlannerJoinTest, ReverseRolesSwapTheExtents) {
  // 40 srcs, 400 dsts: in reverse direction the left side binds role 1
  // (the Dst end), so the degree estimate uses the Dst extent.
  JoinWorld w = BuildJoinWorld(40, 400, 800);
  Planner planner(w.db.get());
  JoinPlan forward = planner.PlanJoin(w.flows, 10, 10, 0);
  JoinPlan reverse = planner.PlanJoin(w.flows, 10, 10, 1);
  EXPECT_EQ(forward.left_role, 0);
  EXPECT_EQ(reverse.left_role, 1);
  // Probing from the Dst-bound side is cheap (degree 800/400 = 2, vs. 20
  // from the Src side). Forward, Dst is the right input; in reverse it is
  // the left — the chosen drive side mirrors with the role binding.
  EXPECT_EQ(forward.strategy, Strategy::kIndexNestedLoopRight)
      << forward.ToString();
  EXPECT_EQ(reverse.strategy, Strategy::kIndexNestedLoopLeft)
      << reverse.ToString();
  EXPECT_DOUBLE_EQ(forward.est_rows, reverse.est_rows);
  EXPECT_DOUBLE_EQ(
      reverse.est_cost,
      CostModel::IndexNestedLoopJoinCost(10, 2.0, 10, reverse.est_rows));
  EXPECT_DOUBLE_EQ(forward.est_cost, reverse.est_cost);
}

TEST(PlannerJoinTest, EmptyStatsTieBreakDeterministically) {
  JoinWorld w = BuildJoinWorld(0, 0, 0);
  Planner planner(w.db.get());
  JoinPlan plan = planner.PlanJoin(w.flows, 0, 0);
  // Everything costs zero on an empty world; the tie-break pins the
  // historical hash-build-right.
  EXPECT_EQ(plan.strategy, Strategy::kHashBuildRight);
  EXPECT_DOUBLE_EQ(plan.est_cost, 0.0);
  EXPECT_DOUBLE_EQ(plan.est_rows, 0.0);
}

TEST(PlannerJoinTest, PlannedJoinExecutesIdenticallyToEveryStrategy) {
  JoinWorld w = BuildJoinWorld(60, 30, 240);
  Planner planner(w.db.get());
  Algebra algebra(w.db.get());
  QueryRelation a = Take(w.srcs, 7, "s");
  QueryRelation b = Take(w.dsts, 30, "d");
  JoinPlan plan;
  auto planned = planner.Join(a, "s", w.flows, b, "d", 0, &plan);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(plan.strategy, Strategy::kIndexNestedLoopLeft);
  EXPECT_FALSE(planned->empty());
  for (auto method : {Algebra::JoinOptions::Method::kHash,
                      Algebra::JoinOptions::Method::kIndexNestedLoop}) {
    for (auto side : {Algebra::JoinOptions::Side::kLeft,
                      Algebra::JoinOptions::Side::kRight}) {
      Algebra::JoinOptions options;
      options.method = method;
      options.build_side = side;
      auto direct = algebra.RelationshipJoin(a, "s", w.flows, b, "d",
                                             options);
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(direct->tuples, planned->tuples);
    }
  }
}

TEST(PlannerJoinTest, JoinRejectsInvalidRoles) {
  JoinWorld w = BuildJoinWorld(10, 10, 10);
  Planner planner(w.db.get());
  QueryRelation a = Take(w.srcs, 5, "s");
  QueryRelation b = Take(w.dsts, 5, "d");
  EXPECT_TRUE(planner.Join(a, "s", w.flows, b, "d", 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(planner.Join(a, "s", w.flows, b, "d", -1)
                  .status()
                  .IsInvalidArgument());
}

TEST(PlannerJoinTest, ToStringReportsStrategyDirectionAndEstimates) {
  JoinWorld w = BuildJoinWorld(100, 100, 2000);
  Planner planner(w.db.get());
  std::string s = planner.PlanJoin(w.flows, 10, 100).ToString();
  EXPECT_NE(s.find("join-index-nested-loop(drive=left)"), std::string::npos)
      << s;
  EXPECT_NE(s.find("forward"), std::string::npos) << s;
  EXPECT_NE(s.find("assoc ~2000"), std::string::npos) << s;
  std::string r = planner.PlanJoin(w.flows, 10, 100, 1).ToString();
  EXPECT_NE(r.find("reverse"), std::string::npos) << r;
}

}  // namespace
}  // namespace seed::query
