// Join planning tests: Planner::PlanJoin must pick the physical strategy
// the cost model predicts from the association population (ExtentCounters)
// and the input relation sizes — index-nested-loop driven from a selective
// side against a big association, hash join with the smaller input as the
// build side otherwise — with deterministic tie-breaks, and the planned
// execution must equal every other strategy's result.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "query/planner.h"
#include "query/stats.h"
#include "schema/schema_builder.h"

namespace seed::query {
namespace {

using core::Database;
using JoinPlan = Planner::JoinPlan;
using Strategy = Planner::JoinPlan::Strategy;

/// A bipartite world: `num_src` Src objects, `num_dst` Dst objects, and
/// `num_rels` Flows relationships laid out so every src has the same
/// degree (num_rels / num_src) and no (src, dst) pair repeats.
struct JoinWorld {
  std::unique_ptr<Database> db;
  ClassId src_cls, dst_cls;
  AssociationId flows;
  std::vector<ObjectId> srcs{};
  std::vector<ObjectId> dsts{};
};

JoinWorld BuildJoinWorld(int num_src, int num_dst, int num_rels) {
  schema::SchemaBuilder b("JoinWorld");
  ClassId src_cls = b.AddIndependentClass("Src", schema::ValueType::kNone);
  ClassId dst_cls = b.AddIndependentClass("Dst", schema::ValueType::kNone);
  AssociationId flows = b.AddAssociation(
      "Flows", schema::Role{"src", src_cls, schema::Cardinality::Any()},
      schema::Role{"dst", dst_cls, schema::Cardinality::Any()});
  JoinWorld w{std::make_unique<Database>(*b.Build()), src_cls, dst_cls,
              flows};
  for (int i = 0; i < num_src; ++i) {
    w.srcs.push_back(*w.db->CreateObject(src_cls, "S" + std::to_string(i)));
  }
  for (int i = 0; i < num_dst; ++i) {
    w.dsts.push_back(*w.db->CreateObject(dst_cls, "D" + std::to_string(i)));
  }
  int degree = num_src == 0 ? 0 : num_rels / num_src;
  for (int i = 0; i < num_src; ++i) {
    for (int j = 0; j < degree; ++j) {
      (void)*w.db->CreateRelationship(flows, w.srcs[i],
                                      w.dsts[(i + j * 13) % num_dst]);
    }
  }
  return w;
}

/// First `n` tuples of the extent as a unary relation named `attr`.
QueryRelation Take(const std::vector<ObjectId>& ids, size_t n,
                   std::string attr) {
  QueryRelation out;
  out.attributes = {std::move(attr)};
  for (size_t i = 0; i < n && i < ids.size(); ++i) {
    out.tuples.push_back({ids[i]});
  }
  return out;
}

TEST(PlannerJoinTest, SelectiveDriverPlansIndexNestedLoop) {
  // 10 driving tuples against a 2000-relationship association: probing
  // RelationshipsOf per driver beats materializing the adjacency.
  JoinWorld w = BuildJoinWorld(100, 100, 2000);
  Planner planner(w.db.get());
  JoinPlan plan = planner.PlanJoin(w.flows, 10, 100);
  EXPECT_EQ(plan.strategy, Strategy::kIndexNestedLoopLeft)
      << plan.ToString();
  EXPECT_EQ(plan.left_role, 0);
  EXPECT_DOUBLE_EQ(plan.assoc_rows, 2000.0);

  // Mirrored: the small side on the right drives from the right.
  JoinPlan mirrored = planner.PlanJoin(w.flows, 100, 10);
  EXPECT_EQ(mirrored.strategy, Strategy::kIndexNestedLoopRight)
      << mirrored.ToString();
}

TEST(PlannerJoinTest, LowDegreeFullExtentsPlanHashJoin) {
  // Degree 1 and both inputs at extent scale: one adjacency pass is
  // cheaper than per-tuple probing.
  JoinWorld w = BuildJoinWorld(1000, 1000, 1000);
  Planner planner(w.db.get());
  JoinPlan plan = planner.PlanJoin(w.flows, 1000, 1000);
  EXPECT_EQ(plan.strategy, Strategy::kHashBuildRight) << plan.ToString();

  // With a clearly smaller left input (and per-tuple probing priced out
  // by the higher degree), the build side flips to the left.
  JoinWorld dense = BuildJoinWorld(1000, 1000, 4000);
  Planner dense_planner(dense.db.get());
  JoinPlan build_left = dense_planner.PlanJoin(dense.flows, 900, 1000);
  EXPECT_EQ(build_left.strategy, Strategy::kHashBuildLeft)
      << build_left.ToString();
}

TEST(PlannerJoinTest, CostsMatchTheModel) {
  JoinWorld w = BuildJoinWorld(100, 50, 600);
  Planner planner(w.db.get());
  JoinPlan plan = planner.PlanJoin(w.flows, 20, 50);
  // est_rows: 600 edges, left covers 20/100 of the src extent, right
  // 50/50 of the dst extent.
  EXPECT_DOUBLE_EQ(plan.est_rows,
                   CostModel::JoinRows(600, 20, 100, 50, 50));
  double inl_left = CostModel::IndexNestedLoopJoinCost(
      20, CostModel::JoinDegree(600, 100), 50, plan.est_rows);
  EXPECT_EQ(plan.strategy, Strategy::kIndexNestedLoopLeft);
  EXPECT_DOUBLE_EQ(plan.est_cost, inl_left);
}

TEST(PlannerJoinTest, ReverseRolesSwapTheExtents) {
  // 40 srcs, 400 dsts: in reverse direction the left side binds role 1
  // (the Dst end), so the degree estimate uses the Dst extent.
  JoinWorld w = BuildJoinWorld(40, 400, 800);
  Planner planner(w.db.get());
  JoinPlan forward = planner.PlanJoin(w.flows, 10, 10, 0);
  JoinPlan reverse = planner.PlanJoin(w.flows, 10, 10, 1);
  EXPECT_EQ(forward.left_role, 0);
  EXPECT_EQ(reverse.left_role, 1);
  // Probing from the Dst-bound side is cheap (degree 800/400 = 2, vs. 20
  // from the Src side). Forward, Dst is the right input; in reverse it is
  // the left — the chosen drive side mirrors with the role binding.
  EXPECT_EQ(forward.strategy, Strategy::kIndexNestedLoopRight)
      << forward.ToString();
  EXPECT_EQ(reverse.strategy, Strategy::kIndexNestedLoopLeft)
      << reverse.ToString();
  EXPECT_DOUBLE_EQ(forward.est_rows, reverse.est_rows);
  EXPECT_DOUBLE_EQ(
      reverse.est_cost,
      CostModel::IndexNestedLoopJoinCost(10, 2.0, 10, reverse.est_rows));
  EXPECT_DOUBLE_EQ(forward.est_cost, reverse.est_cost);
}

TEST(PlannerJoinTest, EmptyStatsTieBreakDeterministically) {
  JoinWorld w = BuildJoinWorld(0, 0, 0);
  Planner planner(w.db.get());
  JoinPlan plan = planner.PlanJoin(w.flows, 0, 0);
  // Everything costs zero on an empty world; the tie-break pins the
  // historical hash-build-right.
  EXPECT_EQ(plan.strategy, Strategy::kHashBuildRight);
  EXPECT_DOUBLE_EQ(plan.est_cost, 0.0);
  EXPECT_DOUBLE_EQ(plan.est_rows, 0.0);
}

TEST(PlannerJoinTest, PlannedJoinExecutesIdenticallyToEveryStrategy) {
  JoinWorld w = BuildJoinWorld(60, 30, 240);
  Planner planner(w.db.get());
  Algebra algebra(w.db.get());
  QueryRelation a = Take(w.srcs, 7, "s");
  QueryRelation b = Take(w.dsts, 30, "d");
  JoinPlan plan;
  auto planned = planner.Join(a, "s", w.flows, b, "d", 0, &plan);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(plan.strategy, Strategy::kIndexNestedLoopLeft);
  EXPECT_FALSE(planned->empty());
  for (auto method : {Algebra::JoinOptions::Method::kHash,
                      Algebra::JoinOptions::Method::kIndexNestedLoop}) {
    for (auto side : {Algebra::JoinOptions::Side::kLeft,
                      Algebra::JoinOptions::Side::kRight}) {
      Algebra::JoinOptions options;
      options.method = method;
      options.build_side = side;
      auto direct = algebra.RelationshipJoin(a, "s", w.flows, b, "d",
                                             options);
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(direct->tuples, planned->tuples);
    }
  }
}

TEST(PlannerJoinTest, JoinRejectsInvalidRoles) {
  JoinWorld w = BuildJoinWorld(10, 10, 10);
  Planner planner(w.db.get());
  QueryRelation a = Take(w.srcs, 5, "s");
  QueryRelation b = Take(w.dsts, 5, "d");
  EXPECT_TRUE(planner.Join(a, "s", w.flows, b, "d", 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(planner.Join(a, "s", w.flows, b, "d", -1)
                  .status()
                  .IsInvalidArgument());
}

TEST(PlannerJoinTest, TrackedDegreeStatisticsSeeClassSkew) {
  // Src has a Hot specialization with few edges: 100 plain Srcs carry
  // degree 10 (1000 edges), 10 Hot Srcs carry degree 1 (10 edges). The
  // uniform assoc/extent guess cannot tell the two apart; the tracked
  // per-(assoc, role, class) participation counts can.
  schema::SchemaBuilder b("SkewWorld");
  ClassId src_cls = b.AddIndependentClass("Src", schema::ValueType::kNone);
  ClassId hot_cls = b.AddIndependentClass("Hot", schema::ValueType::kNone);
  b.SetGeneralization(hot_cls, src_cls);
  ClassId dst_cls = b.AddIndependentClass("Dst", schema::ValueType::kNone);
  AssociationId flows = b.AddAssociation(
      "Flows", schema::Role{"src", src_cls, schema::Cardinality::Any()},
      schema::Role{"dst", dst_cls, schema::Cardinality::Any()});
  auto db = std::make_unique<Database>(*b.Build());
  std::vector<ObjectId> dsts;
  for (int i = 0; i < 100; ++i) {
    dsts.push_back(*db->CreateObject(dst_cls, "D" + std::to_string(i)));
  }
  for (int i = 0; i < 100; ++i) {
    ObjectId src = *db->CreateObject(src_cls, "S" + std::to_string(i));
    for (int j = 0; j < 10; ++j) {
      (void)*db->CreateRelationship(flows, src, dsts[(i + j * 7) % 100]);
    }
  }
  for (int i = 0; i < 10; ++i) {
    ObjectId hot = *db->CreateObject(hot_cls, "H" + std::to_string(i));
    (void)*db->CreateRelationship(flows, hot, dsts[i]);
  }

  // The counters saw every create: 1000 Src ends, 10 Hot ends at role 0.
  EXPECT_EQ(db->extent_counters().CountParticipants(flows, 0, src_cls),
            1000u);
  EXPECT_EQ(db->extent_counters().CountParticipants(flows, 0, hot_cls), 10u);

  Planner planner(db.get());
  // Driving 10 tuples drawn from the Hot extent: the tracked degree is
  // 10/10 = 1, so the estimate sees at most the 10 Hot edges.
  JoinPlan hot = planner.PlanJoin(flows, 10, 100, 0, hot_cls, dst_cls);
  EXPECT_DOUBLE_EQ(hot.est_rows, 10.0) << hot.ToString();
  // The same 10 tuples assumed to come from anywhere in the Src family
  // read the family degree (1010/110) and a far larger matchable set.
  JoinPlan uniform = planner.PlanJoin(flows, 10, 100, 0);
  EXPECT_DOUBLE_EQ(uniform.est_rows, 1010.0 * (10.0 / 110.0))
      << uniform.ToString();
  EXPECT_LT(hot.est_cost, uniform.est_cost);
}

TEST(PlannerJoinTest, LeftDeepOrdersEnumerateContiguousPrefixes) {
  using Orders = std::vector<std::vector<int>>;
  EXPECT_EQ(Planner::LeftDeepOrders(1), (Orders{{0}}));
  EXPECT_EQ(Planner::LeftDeepOrders(2), (Orders{{0, 1}, {1, 0}}));
  // Textual order first, then the starts further right; every prefix is
  // a contiguous hop range.
  EXPECT_EQ(Planner::LeftDeepOrders(3),
            (Orders{{0, 1, 2}, {1, 2, 0}, {1, 0, 2}, {2, 1, 0}}));
}

TEST(PlannerJoinTest, PipelineRunsTheSelectiveHopFirst) {
  // A -Big- B -Tiny- C with 2000 Big edges and 4 Tiny ones: the cheap
  // ordering runs Tiny (written last) first, and every ordering computes
  // the same relation.
  schema::SchemaBuilder b("ChainWorld");
  ClassId a_cls = b.AddIndependentClass("A", schema::ValueType::kNone);
  ClassId b_cls = b.AddIndependentClass("B", schema::ValueType::kNone);
  ClassId c_cls = b.AddIndependentClass("C", schema::ValueType::kNone);
  AssociationId big = b.AddAssociation(
      "Big", schema::Role{"a", a_cls, schema::Cardinality::Any()},
      schema::Role{"b", b_cls, schema::Cardinality::Any()});
  AssociationId tiny = b.AddAssociation(
      "Tiny", schema::Role{"b", b_cls, schema::Cardinality::Any()},
      schema::Role{"c", c_cls, schema::Cardinality::Any()});
  auto db = std::make_unique<Database>(*b.Build());
  std::vector<ObjectId> as, bs, cs;
  for (int i = 0; i < 100; ++i) {
    as.push_back(*db->CreateObject(a_cls, "A" + std::to_string(i)));
    bs.push_back(*db->CreateObject(b_cls, "B" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    cs.push_back(*db->CreateObject(c_cls, "C" + std::to_string(i)));
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 20; ++j) {
      (void)*db->CreateRelationship(big, as[i], bs[(i + j * 7) % 100]);
    }
  }
  for (int i = 0; i < 4; ++i) {
    (void)*db->CreateRelationship(tiny, bs[i], cs[i]);
  }

  auto extent = [](const std::vector<ObjectId>& ids, const char* attr) {
    QueryRelation rel;
    rel.attributes = {attr};
    for (ObjectId id : ids) rel.tuples.push_back({id});
    return rel;
  };
  std::vector<QueryRelation> inputs{extent(as, "a"), extent(bs, "b"),
                                    extent(cs, "c")};
  std::vector<Planner::PipelineHop> hops{{big, 0, a_cls, b_cls},
                                         {tiny, 0, b_cls, c_cls}};
  Planner planner(db.get());
  Planner::PhysicalPlan plan =
      planner.PlanJoinPipeline(hops, {as.size(), bs.size(), cs.size()});
  ASSERT_NE(plan.root, nullptr);
  EXPECT_EQ(plan.HopOrder(), (std::vector<int>{1, 0})) << plan.ToString();

  Planner::PhysicalPlan executed;
  auto chosen = planner.JoinPipeline(inputs, hops, &executed);
  ASSERT_TRUE(chosen.ok()) << chosen.status().ToString();
  EXPECT_EQ(chosen->attributes,
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_FALSE(chosen->empty());
  // Per-node actuals are filled in after execution.
  ASSERT_NE(executed.root, nullptr);
  EXPECT_GE(executed.root->actual_rows, 0);
  EXPECT_GE(executed.root->left->actual_rows, 0);
  EXPECT_GE(executed.root->right->actual_rows, 0);
  // Every left-deep ordering computes the same relation.
  for (const auto& order : Planner::LeftDeepOrders(hops.size())) {
    auto direct = planner.JoinPipelineInOrder(inputs, hops, order);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    EXPECT_EQ(direct->tuples, chosen->tuples);
  }

  // Bad shapes are rejected: a non-left-deep order, a wrong input count
  // and a non-unary input.
  EXPECT_TRUE(planner.JoinPipelineInOrder(inputs, hops, {1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(planner.JoinPipelineInOrder(inputs, hops, {0, 0})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      planner.JoinPipeline({inputs[0], inputs[1]}, hops)
          .status()
          .IsInvalidArgument());
  std::vector<QueryRelation> wide = inputs;
  wide[1].attributes = {"b", "x"};
  for (auto& tuple : wide[1].tuples) tuple.push_back(tuple[0]);
  EXPECT_TRUE(
      planner.JoinPipeline(wide, hops).status().IsInvalidArgument());
}

TEST(PlannerJoinTest, ToStringReportsStrategyDirectionAndEstimates) {
  JoinWorld w = BuildJoinWorld(100, 100, 2000);
  Planner planner(w.db.get());
  std::string s = planner.PlanJoin(w.flows, 10, 100).ToString();
  EXPECT_NE(s.find("join-index-nested-loop(drive=left)"), std::string::npos)
      << s;
  EXPECT_NE(s.find("forward"), std::string::npos) << s;
  EXPECT_NE(s.find("assoc ~2000"), std::string::npos) << s;
  std::string r = planner.PlanJoin(w.flows, 10, 100, 1).ToString();
  EXPECT_NE(r.find("reverse"), std::string::npos) << r;
}

}  // namespace
}  // namespace seed::query
