// Slotted-page layout tests: insertion, deletion, replacement, slot reuse,
// compaction, and free-space accounting.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "storage/page.h"
#include "storage/slotted_page.h"

namespace seed::storage {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : sp_(&page_) { sp_.Init(); }

  Page page_;
  SlottedPage sp_;
};

TEST_F(SlottedPageTest, FreshPageIsEmpty) {
  EXPECT_EQ(sp_.slot_count(), 0u);
  EXPECT_FALSE(sp_.next_page().valid());
  EXPECT_TRUE(sp_.LiveSlots().empty());
  EXPECT_EQ(sp_.LiveBytes(), 0u);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  auto slot = sp_.Insert("hello");
  ASSERT_TRUE(slot.ok());
  auto rec = sp_.Get(*slot);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "hello");
  EXPECT_TRUE(sp_.IsLive(*slot));
}

TEST_F(SlottedPageTest, EmptyRecordIsLegal) {
  auto slot = sp_.Insert("");
  ASSERT_TRUE(slot.ok());
  EXPECT_TRUE(sp_.IsLive(*slot));
  EXPECT_EQ(sp_.Get(*slot)->size(), 0u);
}

TEST_F(SlottedPageTest, MultipleInsertsGetDistinctSlots) {
  auto a = sp_.Insert("aaa");
  auto b = sp_.Insert("bbb");
  auto c = sp_.Insert("ccc");
  EXPECT_NE(*a, *b);
  EXPECT_NE(*b, *c);
  EXPECT_EQ(*sp_.Get(*a), "aaa");
  EXPECT_EQ(*sp_.Get(*b), "bbb");
  EXPECT_EQ(*sp_.Get(*c), "ccc");
  EXPECT_EQ(sp_.LiveSlots().size(), 3u);
}

TEST_F(SlottedPageTest, DeleteFreesSlot) {
  auto a = sp_.Insert("aaa");
  auto b = sp_.Insert("bbb");
  ASSERT_TRUE(sp_.Delete(*a).ok());
  EXPECT_FALSE(sp_.IsLive(*a));
  EXPECT_TRUE(sp_.Get(*a).status().IsNotFound());
  EXPECT_EQ(*sp_.Get(*b), "bbb");
}

TEST_F(SlottedPageTest, DeleteTwiceFails) {
  auto a = sp_.Insert("aaa");
  ASSERT_TRUE(sp_.Delete(*a).ok());
  EXPECT_TRUE(sp_.Delete(*a).IsNotFound());
}

TEST_F(SlottedPageTest, DeletedSlotIsReused) {
  auto a = sp_.Insert("aaa");
  (void)sp_.Insert("bbb");
  ASSERT_TRUE(sp_.Delete(*a).ok());
  auto c = sp_.Insert("ccc");
  EXPECT_EQ(*c, *a);  // slot 0 reused
}

TEST_F(SlottedPageTest, TrailingSlotsShrinkDirectory) {
  auto a = sp_.Insert("aaa");
  auto b = sp_.Insert("bbb");
  EXPECT_EQ(sp_.slot_count(), 2u);
  ASSERT_TRUE(sp_.Delete(*b).ok());
  EXPECT_EQ(sp_.slot_count(), 1u);
  ASSERT_TRUE(sp_.Delete(*a).ok());
  EXPECT_EQ(sp_.slot_count(), 0u);
}

TEST_F(SlottedPageTest, ReplaceInPlaceSmaller) {
  auto a = sp_.Insert("a long record body");
  ASSERT_TRUE(sp_.Replace(*a, "tiny").ok());
  EXPECT_EQ(*sp_.Get(*a), "tiny");
}

TEST_F(SlottedPageTest, ReplaceGrow) {
  auto a = sp_.Insert("tiny");
  std::string big(500, 'x');
  ASSERT_TRUE(sp_.Replace(*a, big).ok());
  EXPECT_EQ(*sp_.Get(*a), big);
}

TEST_F(SlottedPageTest, ReplaceMissingSlotFails) {
  EXPECT_TRUE(sp_.Replace(9, "x").IsNotFound());
}

TEST_F(SlottedPageTest, RecordTooLargeIsRejected) {
  std::string huge(kPageSize, 'x');
  EXPECT_TRUE(sp_.Insert(huge).status().IsResourceExhausted());
}

TEST_F(SlottedPageTest, FillsToCapacity) {
  std::string rec(100, 'r');
  size_t inserted = 0;
  while (true) {
    auto slot = sp_.Insert(rec);
    if (!slot.ok()) break;
    ++inserted;
  }
  // 8 KiB page, 100-byte records + 8-byte slots: ~75 records fit.
  EXPECT_GT(inserted, 70u);
  EXPECT_LT(inserted, 82u);
  EXPECT_EQ(sp_.LiveBytes(), inserted * 100);
}

TEST_F(SlottedPageTest, CompactionRecoversFragmentedSpace) {
  // Fill the page, delete every other record, then insert one record that
  // only fits after compaction.
  std::vector<std::uint32_t> slots;
  std::string rec(200, 'r');
  while (true) {
    auto slot = sp_.Insert(rec);
    if (!slot.ok()) break;
    slots.push_back(*slot);
  }
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(sp_.Delete(slots[i]).ok());
  }
  // Contiguous space is at most ~200 bytes + leftovers, but total free is
  // about half the page; 400 bytes requires compaction.
  std::string big(400, 'b');
  auto slot = sp_.Insert(big);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_EQ(*sp_.Get(*slot), big);
  // Survivors intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(*sp_.Get(slots[i]), rec);
  }
}

TEST_F(SlottedPageTest, FreeSpaceForInsertAccountsSlotEntry) {
  size_t before = sp_.FreeSpaceForInsert();
  ASSERT_TRUE(sp_.Insert("12345678").ok());
  size_t after = sp_.FreeSpaceForInsert();
  // 8 payload bytes + 8 slot bytes.
  EXPECT_EQ(before - after, 16u);
}

TEST_F(SlottedPageTest, NextPageLink) {
  sp_.set_next_page(PageId(17));
  EXPECT_EQ(sp_.next_page().raw(), 17u);
}

TEST_F(SlottedPageTest, RandomizedChurnKeepsRecordsIntact) {
  Random rng(0xC0FFEE);
  std::vector<std::pair<std::uint32_t, std::string>> live;
  for (int step = 0; step < 2000; ++step) {
    bool do_insert = live.empty() || rng.Bernoulli(0.6);
    if (do_insert) {
      std::string rec = rng.Identifier(1 + rng.Uniform(120));
      auto slot = sp_.Insert(rec);
      if (slot.ok()) {
        live.emplace_back(*slot, rec);
      } else {
        ASSERT_TRUE(slot.status().IsResourceExhausted());
        ASSERT_FALSE(live.empty());
        size_t victim = rng.Uniform(live.size());
        ASSERT_TRUE(sp_.Delete(live[victim].first).ok());
        live.erase(live.begin() + victim);
      }
    } else {
      size_t victim = rng.Uniform(live.size());
      ASSERT_TRUE(sp_.Delete(live[victim].first).ok());
      live.erase(live.begin() + victim);
    }
  }
  for (const auto& [slot, rec] : live) {
    auto got = sp_.Get(slot);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, rec);
  }
}

}  // namespace
}  // namespace seed::storage
