// Persistence tests: item codec round-trips, full save/load, incremental
// change saving, WAL-backed crash recovery of the object store.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/item_codec.h"
#include "core/persistence.h"
#include "spades/spec_schema.h"

namespace seed::core {
namespace {

using spades::BuildFig3Schema;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = ::testing::TempDir() + "/persist." + std::to_string(::getpid()) +
           "." + std::to_string(counter++);
    std::filesystem::create_directories(dir_);
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Builds a small spec in db_.
  void Populate() {
    alarms_ = *db_->CreateObject(ids_.output_data, "Alarms");
    sensor_ = *db_->CreateObject(ids_.action, "Sensor");
    write_ = *db_->CreateRelationship(ids_.write, alarms_, sensor_);
    ObjectId n = *db_->CreateSubObject(write_, "NumberOfWrites");
    ASSERT_TRUE(db_->SetValue(n, Value::Int(2)).ok());
    ObjectId desc = *db_->CreateSubObject(alarms_, "Description");
    ASSERT_TRUE(
        db_->SetValue(desc, Value::String("Handles alarms")).ok());
  }

  std::string dir_;
  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
  ObjectId alarms_, sensor_;
  RelationshipId write_;
};

TEST_F(PersistenceTest, ItemCodecRoundTrip) {
  Populate();
  for (const auto& [id, obj] : db_->objects_raw()) {
    std::string bytes = ItemCodec::EncodeObjectToString(obj);
    auto decoded = ItemCodec::DecodeObjectFromString(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->id, obj.id);
    EXPECT_EQ(decoded->cls, obj.cls);
    EXPECT_EQ(decoded->name, obj.name);
    EXPECT_EQ(decoded->parent_kind, obj.parent_kind);
    EXPECT_EQ(decoded->parent_object, obj.parent_object);
    EXPECT_EQ(decoded->parent_relationship, obj.parent_relationship);
    EXPECT_EQ(decoded->index, obj.index);
    EXPECT_EQ(decoded->value, obj.value);
    EXPECT_EQ(decoded->children, obj.children);
    EXPECT_EQ(decoded->is_pattern, obj.is_pattern);
    EXPECT_EQ(decoded->deleted, obj.deleted);
  }
  for (const auto& [id, rel] : db_->relationships_raw()) {
    std::string bytes = ItemCodec::EncodeRelationshipToString(rel);
    auto decoded = ItemCodec::DecodeRelationshipFromString(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->id, rel.id);
    EXPECT_EQ(decoded->assoc, rel.assoc);
    EXPECT_EQ(decoded->ends[0], rel.ends[0]);
    EXPECT_EQ(decoded->ends[1], rel.ends[1]);
    EXPECT_EQ(decoded->children, rel.children);
  }
}

TEST_F(PersistenceTest, ItemCodecRejectsTruncation) {
  Populate();
  const ObjectItem& obj = db_->objects_raw().begin()->second;
  std::string bytes = ItemCodec::EncodeObjectToString(obj);
  auto decoded =
      ItemCodec::DecodeObjectFromString(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(decoded.ok());
}

TEST_F(PersistenceTest, SaveFullLoadRoundTrip) {
  Populate();
  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir_).ok());
    ASSERT_TRUE(Persistence::SaveFull(*db_, &kv).ok());
    ASSERT_TRUE(kv.Close().ok());
  }
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  auto loaded = Persistence::Load(&kv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database& copy = **loaded;

  EXPECT_EQ(copy.num_live_objects(), db_->num_live_objects());
  EXPECT_EQ(copy.num_live_relationships(), db_->num_live_relationships());
  EXPECT_EQ(copy.schema()->name(), db_->schema()->name());
  EXPECT_EQ(*copy.FindObjectByName("Alarms"), alarms_);
  EXPECT_EQ(
      (*copy.GetObject(*copy.FindObjectByName("Alarms.Description")))
          ->value.as_string(),
      "Handles alarms");
  EXPECT_TRUE(copy.AuditConsistency().clean());

  // The loaded database continues allocating fresh ids.
  auto fresh = copy.CreateObject(ids_.action, "Fresh");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->raw(), sensor_.raw());
}

TEST_F(PersistenceTest, SaveChangesIsIncremental) {
  Populate();
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  ASSERT_TRUE(Persistence::SaveFull(*db_, &kv).ok());
  db_->ClearChangeTracking();

  // One more object: SaveChanges should add exactly one KV entry.
  std::uint64_t before = kv.size();
  (void)*db_->CreateObject(ids_.action, "Extra");
  ASSERT_TRUE(Persistence::SaveChanges(db_.get(), &kv).ok());
  EXPECT_EQ(kv.size(), before + 1);
  EXPECT_TRUE(db_->changed_objects().empty());

  auto loaded = Persistence::Load(&kv);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->FindObjectByName("Extra").ok());
}

TEST_F(PersistenceTest, TombstonesSurviveReload) {
  Populate();
  ASSERT_TRUE(db_->DeleteObject(alarms_).ok());
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  ASSERT_TRUE(Persistence::SaveFull(*db_, &kv).ok());
  auto loaded = Persistence::Load(&kv);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->FindObjectByName("Alarms").status().IsNotFound());
  auto it = (*loaded)->objects_raw().find(alarms_);
  ASSERT_NE(it, (*loaded)->objects_raw().end());
  EXPECT_TRUE(it->second.deleted);
}

TEST_F(PersistenceTest, CrashRecoveryThroughWal) {
  Populate();
  {
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir_).ok());
    ASSERT_TRUE(Persistence::SaveFull(*db_, &kv).ok());
    db_->ClearChangeTracking();
    // More changes saved but NOT checkpointed; simulate a crash by copying
    // the raw files aside while dirty pages are still unflushed.
    (void)*db_->CreateObject(ids_.action, "PostCheckpoint");
    ASSERT_TRUE(Persistence::SaveChanges(db_.get(), &kv).ok());
    std::filesystem::create_directories(dir_ + "/crash");
    std::filesystem::copy(dir_ + "/seed.db", dir_ + "/crash/seed.db");
    std::filesystem::copy(dir_ + "/seed.wal", dir_ + "/crash/seed.wal");
  }
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir_ + "/crash").ok());
  auto loaded = Persistence::Load(&kv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->FindObjectByName("PostCheckpoint").ok());
  EXPECT_TRUE((*loaded)->FindObjectByName("Alarms").ok());
  EXPECT_TRUE((*loaded)->AuditConsistency().clean());
}

TEST_F(PersistenceTest, LoadWithoutSchemaFails) {
  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir_).ok());
  EXPECT_TRUE(Persistence::Load(&kv).status().IsNotFound());
}

TEST_F(PersistenceTest, KeyNamespacesAreDisjoint) {
  EXPECT_NE(Persistence::MetaKey(1), Persistence::ObjectKey(ObjectId(1)));
  EXPECT_NE(Persistence::ObjectKey(ObjectId(1)),
            Persistence::RelationshipKey(RelationshipId(1)));
}

}  // namespace
}  // namespace seed::core
