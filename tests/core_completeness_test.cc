// Completeness tests: the paper's split between consistency and
// completeness information. Minimum cardinalities, covering conditions and
// undefined values never veto updates; they only appear in the reports of
// the explicit check operations.

#include <gtest/gtest.h>

#include "core/database.h"
#include "spades/spec_schema.h"

namespace seed::core {
namespace {

using spades::BuildFig2Schema;
using spades::BuildFig3Schema;

class Fig2CompletenessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig2 = BuildFig2Schema();
    ASSERT_TRUE(fig2.ok());
    ids_ = fig2->ids;
    db_ = std::make_unique<Database>(fig2->schema);
  }

  spades::Fig2Ids ids_;
  std::unique_ptr<Database> db_;
};

TEST_F(Fig2CompletenessTest, PaperExample2IncompleteDataIsAccepted) {
  // Paper: "We cannot enter 'Alarms' as an object of class 'Data' without
  // also entering a 'Read'- and a 'Write'-relationship ... because the
  // database would become inconsistent otherwise." SEED's split makes the
  // entry legal and reports it as incomplete instead.
  auto alarms = db_->CreateObject(ids_.data, "Alarms");
  ASSERT_TRUE(alarms.ok()) << alarms.status().ToString();

  Report report = db_->CheckCompleteness();
  auto missing = report.Of(Rule::kRoleMinParticipation);
  // Read 'from' (1..*) and Write 'to' (1..*) are both unsatisfied.
  EXPECT_EQ(missing.size(), 2u);

  // Consistency stays clean the whole time.
  EXPECT_TRUE(db_->AuditConsistency().clean());
}

TEST_F(Fig2CompletenessTest, SatisfyingMinimaClearsFindings) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId handler = *db_->CreateObject(ids_.action, "Handler");
  (void)*db_->CreateRelationship(ids_.read, alarms, handler);
  (void)*db_->CreateRelationship(ids_.write, alarms, handler);
  Report report = db_->CheckCompleteness(alarms);
  EXPECT_TRUE(report.Of(Rule::kRoleMinParticipation).empty())
      << report.ToString();
}

TEST_F(Fig2CompletenessTest, MinCardinalityOfSubObjectsReported) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  // Data.Text.Body has cardinality 1..1 — the Text node lacks its Body.
  Report report = db_->CheckCompleteness(alarms);
  auto missing = report.Of(Rule::kMinCardinality);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].object, text);
  // Adding the Body (with its mandatory Contents) fixes the Text node.
  ObjectId body = *db_->CreateSubObject(text, "Body");
  report = db_->CheckCompleteness(text);
  missing = report.Of(Rule::kMinCardinality);
  ASSERT_EQ(missing.size(), 1u);  // now Body.Contents (1..1) is missing
  EXPECT_EQ(missing[0].object, body);
}

TEST_F(Fig2CompletenessTest, UndefinedValueReported) {
  ObjectId alarms = *db_->CreateObject(ids_.data, "Alarms");
  ObjectId text = *db_->CreateSubObject(alarms, "Text");
  ObjectId selector = *db_->CreateSubObject(text, "Selector");
  Report report = db_->CheckCompleteness(alarms);
  auto undefined = report.Of(Rule::kUndefinedValue);
  ASSERT_EQ(undefined.size(), 1u);
  EXPECT_EQ(undefined[0].object, selector);
  ASSERT_TRUE(db_->SetValue(selector, Value::String("Rep")).ok());
  EXPECT_TRUE(db_->CheckCompleteness(alarms).Of(Rule::kUndefinedValue).empty());
}

TEST_F(Fig2CompletenessTest, SubtreeCheckIsScoped) {
  (void)*db_->CreateObject(ids_.data, "Alarms");
  ObjectId other = *db_->CreateObject(ids_.data, "Other");
  // Full check sees both incomplete Data objects; scoped check only one.
  EXPECT_EQ(db_->CheckCompleteness().Of(Rule::kRoleMinParticipation).size(),
            4u);
  EXPECT_EQ(
      db_->CheckCompleteness(other).Of(Rule::kRoleMinParticipation).size(),
      2u);
}

class Fig3CompletenessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
};

TEST_F(Fig3CompletenessTest, CoveringClassReported) {
  // Thing is covering: a vague Thing is legal but incomplete until
  // specialized.
  ObjectId alarms = *db_->CreateObject(ids_.thing, "Alarms");
  Report report = db_->CheckCompleteness(alarms);
  auto covering = report.Of(Rule::kCovering);
  ASSERT_EQ(covering.size(), 1u);
  EXPECT_EQ(covering[0].object, alarms);

  ASSERT_TRUE(db_->Reclassify(alarms, ids_.data).ok());
  EXPECT_TRUE(db_->CheckCompleteness(alarms).Of(Rule::kCovering).empty());
}

TEST_F(Fig3CompletenessTest, CoveringAssociationReported) {
  ObjectId data = *db_->CreateObject(ids_.data, "D");
  ObjectId action = *db_->CreateObject(ids_.action, "A");
  RelationshipId access = *db_->CreateRelationship(ids_.access, data, action);
  Report report = db_->CheckCompleteness();
  auto covering = report.Of(Rule::kCovering);
  ASSERT_EQ(covering.size(), 1u);
  EXPECT_EQ(covering[0].relationship, access);

  ASSERT_TRUE(db_->Reclassify(data, ids_.input_data).ok());
  ASSERT_TRUE(db_->ReclassifyRelationship(access, ids_.read).ok());
  EXPECT_TRUE(db_->CheckCompleteness().Of(Rule::kCovering).empty());
}

TEST_F(Fig3CompletenessTest, RelationshipAttributeMinimaReported) {
  ObjectId out = *db_->CreateObject(ids_.output_data, "Out");
  ObjectId action = *db_->CreateObject(ids_.action, "A");
  RelationshipId write = *db_->CreateRelationship(ids_.write, out, action);
  // Write.NumberOfWrites is 1..1 and absent.
  Report report = db_->CheckCompleteness();
  auto missing = report.Of(Rule::kMinCardinality);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].relationship, write);

  ObjectId n = *db_->CreateSubObject(write, "NumberOfWrites");
  ASSERT_TRUE(db_->SetValue(n, Value::Int(2)).ok());
  EXPECT_TRUE(db_->CheckCompleteness().Of(Rule::kMinCardinality).empty());
}

TEST_F(Fig3CompletenessTest, FullyRefinedStateIsComplete) {
  // Build a small, fully precise specification and expect zero findings.
  ObjectId in = *db_->CreateObject(ids_.input_data, "ProcessData");
  ObjectId out = *db_->CreateObject(ids_.output_data, "Alarms");
  ObjectId action = *db_->CreateObject(ids_.action, "AlarmHandler");
  (void)*db_->CreateRelationship(ids_.read, in, action);
  RelationshipId write = *db_->CreateRelationship(ids_.write, out, action);
  ObjectId n = *db_->CreateSubObject(write, "NumberOfWrites");
  ASSERT_TRUE(db_->SetValue(n, Value::Int(1)).ok());

  Report report = db_->CheckCompleteness();
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST_F(Fig3CompletenessTest, CompletenessNeverVetoes) {
  // A long sequence of partially complete mutations all succeed.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        db_->CreateObject(ids_.thing, "T" + std::to_string(i)).ok());
  }
  EXPECT_EQ(db_->num_live_objects(), 20u);
  EXPECT_EQ(db_->CheckCompleteness().Of(Rule::kCovering).size(), 20u);
  EXPECT_TRUE(db_->AuditConsistency().clean());
}

}  // namespace
}  // namespace seed::core
