// EXPLAIN ANALYZE golden tests: QueryTrace::Render(mask_times=true)
// replaces every duration with "<t>", so the goldens pin the analyzed
// plan's structure and actual row counts without flaking on wall-clock.

#include <gtest/gtest.h>

#include <string>

#include "query/parser.h"
#include "spades/spec_schema.h"

namespace seed::query {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);

    alarms_ = *db_->CreateObject(ids_.output_data, "Alarms");
    process_ = *db_->CreateObject(ids_.input_data, "ProcessData");
    sensor_ = *db_->CreateObject(ids_.action, "Sensor");
    logger_ = *db_->CreateObject(ids_.action, "Logger");
    ASSERT_TRUE(db_->CreateRelationship(ids_.access, alarms_, sensor_).ok());
    ASSERT_TRUE(
        db_->CreateRelationship(ids_.access, process_, logger_).ok());
    ASSERT_TRUE(
        db_->CreateRelationship(ids_.contained, sensor_, logger_).ok());
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
  ObjectId alarms_, process_, sensor_, logger_;
};

TEST_F(ExplainAnalyzeTest, SingleBinderGolden) {
  QueryTrace trace;
  auto r = RunQuery(*db_, "find Data where name contains Alarm", nullptr,
                    &trace);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(trace.Render(/*mask_times=*/true),
            "scan, est ~2 rows, actual 1, t=<t>; "
            "phases: parse <t>, lower <t>, optimize <t>, execute <t>");
}

TEST_F(ExplainAnalyzeTest, JoinChainGolden) {
  QueryTrace trace;
  auto r = RunJoinChainQuery(*db_,
                             "find Data d join via Access to Action a "
                             "join via Contained to Action c",
                             nullptr, &trace);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tuples.size(), 1u);  // Alarms -- Sensor -- Logger
  // The DP picks the right-deep tree: the selective Contained hop joins
  // first, then Access reduces against its one-row result.
  EXPECT_EQ(
      trace.Render(/*mask_times=*/true),
      "d: scan, est ~2 rows, actual 2, t=<t>; "
      "a: scan, est ~2 rows, actual 2, t=<t>; "
      "c: scan, est ~2 rows, actual 2, t=<t>; "
      "(hop1: d[2] * (hop2: a[2] * c[2] | join-hash(build=right), forward, "
      "2 x 2 inputs, est ~1 rows (assoc ~1), actual 1, in 2+2, t=<t>) | "
      "join-hash(build=right), forward, 2 x 1 inputs, est ~1 rows "
      "(assoc ~2), actual 1, in 2+1, t=<t>); "
      "phases: parse <t>, lower <t>, optimize <t>, execute <t>");
}

TEST_F(ExplainAnalyzeTest, UnmaskedRenderCarriesRealTimings) {
  QueryTrace trace;
  auto r = RunQuery(*db_, "find Action", nullptr, &trace);
  ASSERT_TRUE(r.ok());
  std::string rendered = trace.Render(/*mask_times=*/false);
  EXPECT_EQ(rendered.find("<t>"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("t="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("phases: parse "), std::string::npos) << rendered;
  // Four phases were timed.
  for (int p = 0; p < obs::kNumQueryPhases; ++p) {
    EXPECT_GT(trace.ctx.phase_ns[p], 0u) << obs::QueryPhaseName(
        static_cast<obs::QueryPhase>(p));
  }
}

TEST_F(ExplainAnalyzeTest, TracingLeavesExplainOutputUnchanged) {
  std::string plain_plan;
  auto r1 = RunQuery(*db_, "find Data", &plain_plan);
  ASSERT_TRUE(r1.ok());
  std::string traced_plan;
  QueryTrace trace;
  auto r2 = RunQuery(*db_, "find Data", &traced_plan, &trace);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
  // The EXPLAIN golden surface (plan_out) is identical with tracing on.
  EXPECT_EQ(plain_plan, traced_plan);
}

}  // namespace
}  // namespace seed::query
