// Pattern and variant tests: pattern invisibility, deferred consistency
// checking at inheritance time, effective (overlay) views, update
// propagation, write protection, and the Fig. 5 variants family.

#include <gtest/gtest.h>

#include "pattern/pattern_manager.h"
#include "pattern/variants.h"
#include "schema/schema_builder.h"
#include "spades/spec_schema.h"

namespace seed::pattern {
namespace {

using core::CreateOptions;
using core::Database;
using core::Value;
using schema::Cardinality;
using schema::Role;
using schema::SchemaBuilder;
using schema::ValueType;

/// A procedure-specification schema in the spirit of the paper's pattern
/// example: procedures with a deadline, plus a Calls association.
struct ProcSchema {
  schema::SchemaPtr schema;
  ClassId procedure;
  ClassId deadline;
  ClassId module;
  AssociationId calls;     // procedure -> procedure
  AssociationId belongs;   // procedure -> module
};

ProcSchema BuildProcSchema() {
  SchemaBuilder b("ProcSpec");
  ProcSchema s;
  s.procedure = b.AddIndependentClass("Procedure");
  s.deadline = b.AddDependentClass(s.procedure, "Deadline",
                                   Cardinality::Optional(), ValueType::kDate);
  s.module = b.AddIndependentClass("Module");
  s.calls = b.AddAssociation(
      "Calls", Role{"caller", s.procedure, Cardinality::Any()},
      Role{"callee", s.procedure, Cardinality::Any()});
  s.belongs = b.AddAssociation(
      "Belongs", Role{"member", s.procedure, Cardinality::Any()},
      Role{"home", s.module, Cardinality::Any()});
  auto built = b.Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  s.schema = *built;
  return s;
}

class PatternTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s_ = BuildProcSchema();
    db_ = std::make_unique<Database>(s_.schema);
    pm_ = std::make_unique<PatternManager>(db_.get());
    pattern_opts_.pattern = true;
  }

  ProcSchema s_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<PatternManager> pm_;
  CreateOptions pattern_opts_;
};

// --- Invisibility ------------------------------------------------------------

TEST_F(PatternTest, PatternsInvisibleToRetrieval) {
  ASSERT_TRUE(
      db_->CreateObject(s_.procedure, "Template", pattern_opts_).ok());
  EXPECT_TRUE(db_->FindObjectByName("Template").status().IsNotFound());
  EXPECT_TRUE(db_->FindPatternByName("Template").ok());
  EXPECT_TRUE(db_->ObjectsOfClass(s_.procedure).empty());
  EXPECT_EQ(db_->AllPatternRoots().size(), 1u);
  EXPECT_TRUE(db_->AllIndependentObjects().empty());
}

TEST_F(PatternTest, PatternNamespaceIsSeparate) {
  ASSERT_TRUE(db_->CreateObject(s_.procedure, "P", pattern_opts_).ok());
  // A normal object may reuse the name; a second pattern may not.
  EXPECT_TRUE(db_->CreateObject(s_.procedure, "P").ok());
  EXPECT_TRUE(db_->CreateObject(s_.procedure, "P", pattern_opts_)
                  .status()
                  .IsConsistencyViolation());
}

TEST_F(PatternTest, PatternsSkipConsistencyChecks) {
  ObjectId p = *db_->CreateObject(s_.procedure, "Template", pattern_opts_);
  ObjectId d = *db_->CreateSubObject(p, "Deadline");
  // Wrong value type: accepted on a pattern (checked only at inheritance).
  EXPECT_TRUE(db_->SetValue(d, Value::String("not a date")).ok());
  // And the audit ignores patterns.
  EXPECT_TRUE(db_->AuditConsistency().clean());
}

TEST_F(PatternTest, NormalRelationshipToPatternRejected) {
  ObjectId p = *db_->CreateObject(s_.procedure, "Template", pattern_opts_);
  ObjectId q = *db_->CreateObject(s_.procedure, "Real");
  EXPECT_TRUE(db_->CreateRelationship(s_.calls, p, q)
                  .status()
                  .IsConsistencyViolation());
  // As a pattern relationship it is fine.
  CreateOptions opts;
  opts.pattern = true;
  EXPECT_TRUE(db_->CreateRelationship(s_.calls, p, q, opts).ok());
}

// --- Inheritance -------------------------------------------------------------

TEST_F(PatternTest, InheritValidatesAndEstablishesEdge) {
  ObjectId p = *db_->CreateObject(s_.procedure, "Template", pattern_opts_);
  ObjectId d = *db_->CreateSubObject(p, "Deadline");
  ASSERT_TRUE(
      db_->SetValue(d, Value::OfDate(*schema::Date::Parse("1986-06-30")))
          .ok());
  ObjectId real = *db_->CreateObject(s_.procedure, "InitAlarm");
  ASSERT_TRUE(pm_->Inherit(real, p).ok());
  EXPECT_TRUE(pm_->Inherits(real, p));
  EXPECT_EQ(pm_->PatternsOf(real).size(), 1u);
  EXPECT_EQ(pm_->InheritorsOf(p).size(), 1u);
  EXPECT_EQ(pm_->num_edges(), 1u);
}

TEST_F(PatternTest, InheritRejectsBadPatternValue) {
  // The deferred consistency check: a pattern with an ill-typed deadline is
  // caught when someone tries to inherit it.
  ObjectId p = *db_->CreateObject(s_.procedure, "Broken", pattern_opts_);
  ObjectId d = *db_->CreateSubObject(p, "Deadline");
  ASSERT_TRUE(db_->SetValue(d, Value::String("garbage")).ok());
  ObjectId real = *db_->CreateObject(s_.procedure, "Real");
  EXPECT_TRUE(pm_->Inherit(real, p).IsConsistencyViolation());
  EXPECT_FALSE(pm_->Inherits(real, p));
}

TEST_F(PatternTest, InheritRejectsRoleNotOnInheritor) {
  ObjectId p = *db_->CreateObject(s_.procedure, "Template", pattern_opts_);
  (void)*db_->CreateSubObject(p, "Deadline");
  // A Module has no Deadline role.
  ObjectId mod = *db_->CreateObject(s_.module, "Kernel");
  EXPECT_TRUE(pm_->Inherit(mod, p).IsConsistencyViolation());
}

TEST_F(PatternTest, InheritRejectsCardinalityOverflow) {
  ObjectId p = *db_->CreateObject(s_.procedure, "Template", pattern_opts_);
  (void)*db_->CreateSubObject(p, "Deadline");
  ObjectId real = *db_->CreateObject(s_.procedure, "Real");
  // The real object already has its own (0..1) deadline.
  (void)*db_->CreateSubObject(real, "Deadline");
  EXPECT_TRUE(pm_->Inherit(real, p).IsConsistencyViolation());
}

TEST_F(PatternTest, InheritRejectsNonPatterns) {
  ObjectId a = *db_->CreateObject(s_.procedure, "A");
  ObjectId b = *db_->CreateObject(s_.procedure, "B");
  EXPECT_TRUE(pm_->Inherit(a, b).IsFailedPrecondition());
  ObjectId p = *db_->CreateObject(s_.procedure, "P", pattern_opts_);
  ObjectId q = *db_->CreateObject(s_.procedure, "Q", pattern_opts_);
  EXPECT_TRUE(pm_->Inherit(p, q).IsFailedPrecondition());
}

TEST_F(PatternTest, DoubleInheritRejected) {
  ObjectId p = *db_->CreateObject(s_.procedure, "P", pattern_opts_);
  ObjectId real = *db_->CreateObject(s_.procedure, "R");
  ASSERT_TRUE(pm_->Inherit(real, p).ok());
  EXPECT_TRUE(pm_->Inherit(real, p).IsAlreadyExists());
}

TEST_F(PatternTest, Disinherit) {
  ObjectId p = *db_->CreateObject(s_.procedure, "P", pattern_opts_);
  ObjectId real = *db_->CreateObject(s_.procedure, "R");
  ASSERT_TRUE(pm_->Inherit(real, p).ok());
  ASSERT_TRUE(pm_->Disinherit(real, p).ok());
  EXPECT_FALSE(pm_->Inherits(real, p));
  EXPECT_TRUE(pm_->Disinherit(real, p).IsNotFound());
}

// --- Effective views and propagation -----------------------------------------

TEST_F(PatternTest, DeadlineExampleFromPaper) {
  // "The user may define a pattern procedure object with a given deadline.
  // Every real procedure object that should share this deadline inherits
  // the pattern."
  ObjectId p = *db_->CreateObject(s_.procedure, "CommonDeadline",
                                  pattern_opts_);
  ObjectId d = *db_->CreateSubObject(p, "Deadline");
  ASSERT_TRUE(
      db_->SetValue(d, Value::OfDate(*schema::Date::Parse("1986-06-30")))
          .ok());

  ObjectId r1 = *db_->CreateObject(s_.procedure, "InitAlarm");
  ObjectId r2 = *db_->CreateObject(s_.procedure, "ClearAlarm");
  ASSERT_TRUE(pm_->Inherit(r1, p).ok());
  ASSERT_TRUE(pm_->Inherit(r2, p).ok());

  auto v1 = pm_->EffectiveValue(r1, "Deadline");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->as_date().ToString(), "1986-06-30");
  EXPECT_EQ(pm_->EffectiveValue(r2, "Deadline")->as_date().ToString(),
            "1986-06-30");

  // "A change in the pattern affects all inheriting objects in the same
  // way": one update, every inheritor sees it.
  ASSERT_TRUE(
      db_->SetValue(d, Value::OfDate(*schema::Date::Parse("1986-09-30")))
          .ok());
  EXPECT_EQ(pm_->EffectiveValue(r1, "Deadline")->as_date().ToString(),
            "1986-09-30");
  EXPECT_EQ(pm_->EffectiveValue(r2, "Deadline")->as_date().ToString(),
            "1986-09-30");
}

TEST_F(PatternTest, WriteProtectionInInheritorContext) {
  // "Pattern information cannot be updated in the context of the
  // inheritors, but only in the pattern itself."
  ObjectId p = *db_->CreateObject(s_.procedure, "P", pattern_opts_);
  ObjectId d = *db_->CreateSubObject(p, "Deadline");
  ASSERT_TRUE(
      db_->SetValue(d, Value::OfDate(*schema::Date::Parse("1986-06-30")))
          .ok());
  ObjectId real = *db_->CreateObject(s_.procedure, "R");
  ASSERT_TRUE(pm_->Inherit(real, p).ok());

  Status s = pm_->SetValueInContext(
      real, "Deadline", Value::OfDate(*schema::Date::Parse("1999-01-01")));
  EXPECT_TRUE(s.IsFailedPrecondition());
  // The pattern value is untouched.
  EXPECT_EQ(pm_->EffectiveValue(real, "Deadline")->as_date().ToString(),
            "1986-06-30");
}

TEST_F(PatternTest, OwnSubObjectShadowsNothingButIsWritable) {
  ObjectId p = *db_->CreateObject(s_.procedure, "P", pattern_opts_);
  ObjectId real = *db_->CreateObject(s_.procedure, "R");
  ASSERT_TRUE(pm_->Inherit(real, p).ok());  // P has no deadline yet
  // The real object grows its own deadline: writable in context.
  (void)*db_->CreateSubObject(real, "Deadline");
  EXPECT_TRUE(pm_->SetValueInContext(
                     real, "Deadline",
                     Value::OfDate(*schema::Date::Parse("2000-01-01")))
                  .ok());
  EXPECT_EQ(pm_->EffectiveValue(real, "Deadline")->as_date().ToString(),
            "2000-01-01");
}

TEST_F(PatternTest, EffectiveSubObjectsMergeOwnAndInherited) {
  ObjectId p = *db_->CreateObject(s_.procedure, "P", pattern_opts_);
  (void)*db_->CreateSubObject(p, "Deadline");
  ObjectId real = *db_->CreateObject(s_.procedure, "R");
  ASSERT_TRUE(pm_->Inherit(real, p).ok());
  auto effective = pm_->EffectiveSubObjects(real);
  ASSERT_EQ(effective.size(), 1u);
  EXPECT_TRUE(effective[0].inherited);
  EXPECT_EQ(effective[0].pattern, p);
}

TEST_F(PatternTest, EffectiveRelationshipsSubstituteInheritor) {
  ObjectId p = *db_->CreateObject(s_.procedure, "P", pattern_opts_);
  ObjectId mod = *db_->CreateObject(s_.module, "Kernel");
  CreateOptions opts;
  opts.pattern = true;
  RelationshipId pr = *db_->CreateRelationship(s_.belongs, p, mod, opts);
  ObjectId real = *db_->CreateObject(s_.procedure, "R");
  ASSERT_TRUE(pm_->Inherit(real, p).ok());

  auto rels = pm_->EffectiveRelationships(real);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_TRUE(rels[0].inherited);
  EXPECT_EQ(rels[0].id, pr);
  EXPECT_EQ(rels[0].ends[0], real);  // pattern end substituted
  EXPECT_EQ(rels[0].ends[1], mod);
  EXPECT_EQ(rels[0].assoc, s_.belongs);
}

TEST_F(PatternTest, InheritRejectsIncompatibleRelationshipRole) {
  // Pattern is a Procedure with a Belongs relationship in the member role;
  // a Module inheritor cannot substitute (Belongs.member wants Procedure).
  ObjectId p = *db_->CreateObject(s_.procedure, "P", pattern_opts_);
  ObjectId mod = *db_->CreateObject(s_.module, "Kernel");
  CreateOptions opts;
  opts.pattern = true;
  (void)*db_->CreateRelationship(s_.belongs, p, mod, opts);
  ObjectId mod2 = *db_->CreateObject(s_.module, "Shell");
  EXPECT_TRUE(pm_->Inherit(mod2, p).IsConsistencyViolation());
}

TEST_F(PatternTest, EdgeCodecRoundTrip) {
  ObjectId p = *db_->CreateObject(s_.procedure, "P", pattern_opts_);
  ObjectId r1 = *db_->CreateObject(s_.procedure, "R1");
  ObjectId r2 = *db_->CreateObject(s_.procedure, "R2");
  ASSERT_TRUE(pm_->Inherit(r1, p).ok());
  ASSERT_TRUE(pm_->Inherit(r2, p).ok());

  Encoder enc;
  pm_->EncodeTo(&enc);
  PatternManager loaded(db_.get());
  Decoder dec(enc.bytes());
  ASSERT_TRUE(loaded.DecodeFrom(&dec).ok());
  EXPECT_TRUE(loaded.Inherits(r1, p));
  EXPECT_TRUE(loaded.Inherits(r2, p));
  EXPECT_EQ(loaded.num_edges(), 2u);
}

// --- Variants (Fig. 5) -------------------------------------------------------

class VariantsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s_ = BuildProcSchema();
    db_ = std::make_unique<Database>(s_.schema);
    pm_ = std::make_unique<PatternManager>(db_.get());
  }

  ProcSchema s_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<PatternManager> pm_;
};

TEST_F(VariantsTest, Fig5FamilySharesCommonPart) {
  // Common part: the portable module. Variants: hardware-dependent
  // procedure sets A and B, connected through inherited pattern
  // relationships — "all variant parts have the same relationships to the
  // common part".
  VariantFamily family("SystemConfig", pm_.get());
  ObjectId common = *db_->CreateObject(s_.module, "PortableCore");
  ASSERT_TRUE(family.AddCommonObject(common).ok());

  auto connector = family.CreateConnector("PO1", s_.procedure, s_.belongs,
                                          /*connector_role=*/0, common);
  ASSERT_TRUE(connector.ok()) << connector.status().ToString();

  ObjectId a1 = *db_->CreateObject(s_.procedure, "DriverA");
  ObjectId a2 = *db_->CreateObject(s_.procedure, "IrqA");
  ObjectId b1 = *db_->CreateObject(s_.procedure, "DriverB");
  ASSERT_TRUE(family.AddVariant("HardwareA", {a1, a2}).ok());
  ASSERT_TRUE(family.AddVariant("HardwareB", {b1}).ok());

  EXPECT_EQ(family.num_variants(), 2u);
  // Every member shares an identical relationship to the common part.
  for (ObjectId member : {a1, a2, b1}) {
    auto shared = family.SharedRelationshipsOf(member);
    ASSERT_EQ(shared.size(), 1u) << db_->FullName(member);
    EXPECT_EQ(shared[0].ends[0], member);
    EXPECT_EQ(shared[0].ends[1], common);
    EXPECT_TRUE(shared[0].inherited);
  }
}

TEST_F(VariantsTest, CommonPartMustBeOrdinary) {
  VariantFamily family("F", pm_.get());
  CreateOptions opts;
  opts.pattern = true;
  ObjectId pat = *db_->CreateObject(s_.module, "Pat", opts);
  EXPECT_TRUE(family.AddCommonObject(pat).IsFailedPrecondition());
}

TEST_F(VariantsTest, ConnectorRequiresRegisteredCommonObject) {
  VariantFamily family("F", pm_.get());
  ObjectId stray = *db_->CreateObject(s_.module, "Stray");
  EXPECT_TRUE(family.CreateConnector("PO", s_.procedure, s_.belongs, 0, stray)
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(VariantsTest, AddVariantIsAtomic) {
  VariantFamily family("F", pm_.get());
  ObjectId common = *db_->CreateObject(s_.module, "Core");
  ASSERT_TRUE(family.AddCommonObject(common).ok());
  ASSERT_TRUE(
      family.CreateConnector("PO", s_.procedure, s_.belongs, 0, common).ok());

  ObjectId good = *db_->CreateObject(s_.procedure, "Good");
  // A Module cannot inherit the Procedure connector: the whole AddVariant
  // must roll back.
  ObjectId bad = *db_->CreateObject(s_.module, "Bad");
  EXPECT_FALSE(family.AddVariant("V", {good, bad}).ok());
  EXPECT_EQ(family.num_variants(), 0u);
  EXPECT_TRUE(pm_->PatternsOf(good).empty());  // rolled back
}

TEST_F(VariantsTest, RemoveVariantDropsInheritance) {
  VariantFamily family("F", pm_.get());
  ObjectId common = *db_->CreateObject(s_.module, "Core");
  ASSERT_TRUE(family.AddCommonObject(common).ok());
  ASSERT_TRUE(
      family.CreateConnector("PO", s_.procedure, s_.belongs, 0, common).ok());
  ObjectId m = *db_->CreateObject(s_.procedure, "M");
  ASSERT_TRUE(family.AddVariant("V", {m}).ok());
  ASSERT_TRUE(family.RemoveVariant("V").ok());
  EXPECT_TRUE(pm_->PatternsOf(m).empty());
  EXPECT_TRUE(family.MembersOf("V").status().IsNotFound());
  EXPECT_TRUE(family.RemoveVariant("V").IsNotFound());
}

TEST_F(VariantsTest, DuplicateVariantNameRejected) {
  VariantFamily family("F", pm_.get());
  ObjectId m = *db_->CreateObject(s_.procedure, "M");
  ASSERT_TRUE(family.AddVariant("V", {m}).ok());
  EXPECT_TRUE(family.AddVariant("V", {m}).IsAlreadyExists());
  EXPECT_EQ(family.VariantNames().size(), 1u);
}

TEST_F(VariantsTest, UpdatingCommonPartPropagatesToAllVariants) {
  // The point of the construction: common-part changes are variant-wide.
  VariantFamily family("F", pm_.get());
  ObjectId common = *db_->CreateObject(s_.module, "Core");
  ASSERT_TRUE(family.AddCommonObject(common).ok());
  ObjectId connector =
      *family.CreateConnector("PO", s_.procedure, s_.belongs, 0, common);
  ObjectId deadline = *db_->CreateSubObject(connector, "Deadline");
  ASSERT_TRUE(
      db_->SetValue(deadline,
                    Value::OfDate(*schema::Date::Parse("1986-06-30")))
          .ok());
  ObjectId va = *db_->CreateObject(s_.procedure, "VarA");
  ObjectId vb = *db_->CreateObject(s_.procedure, "VarB");
  ASSERT_TRUE(family.AddVariant("A", {va}).ok());
  ASSERT_TRUE(family.AddVariant("B", {vb}).ok());

  ASSERT_TRUE(
      db_->SetValue(deadline,
                    Value::OfDate(*schema::Date::Parse("1987-01-01")))
          .ok());
  EXPECT_EQ(pm_->EffectiveValue(va, "Deadline")->as_date().ToString(),
            "1987-01-01");
  EXPECT_EQ(pm_->EffectiveValue(vb, "Deadline")->as_date().ToString(),
            "1987-01-01");
}

}  // namespace
}  // namespace seed::pattern
