// Edge-case coverage across layers: empty version deltas, checkout of
// unknown names, the SPADES direct-tool paths, schema path queries rooted
// at associations, and rename interactions with patterns.

#include <gtest/gtest.h>

#include "multiuser/client.h"
#include "multiuser/server.h"
#include "spades/spec_tool.h"
#include "version/version_manager.h"

namespace seed {
namespace {

using core::Database;
using core::Value;
using spades::BuildFig3Schema;
using version::VersionId;
using version::VersionManager;

TEST(VersionEdgeTest, EmptyDeltaVersionIsLegal) {
  auto fig3 = *BuildFig3Schema();
  Database db(fig3.schema);
  VersionManager vm(&db);
  (void)*db.CreateObject(fig3.ids.action, "A");
  ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("1.0")).ok());
  // Nothing changed: freezing an empty delta still creates a version (the
  // paper's "saving the database state before and after a session" needs
  // cheap no-op snapshots).
  auto v2 = vm.CreateVersion();
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE((*vm.GetRecord(*v2))->changes.empty());
  auto view = vm.MaterializeView(*v2);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE((*view)->FindObjectByName("A").ok());
}

TEST(VersionEdgeTest, SelectUnknownVersionFails) {
  auto fig3 = *BuildFig3Schema();
  Database db(fig3.schema);
  VersionManager vm(&db);
  EXPECT_TRUE(vm.SelectVersion(*VersionId::Parse("9.9")).IsNotFound());
  EXPECT_TRUE(vm.MaterializeView(*VersionId::Parse("9.9"))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(vm.ParentOf(*VersionId::Parse("9.9")).status().IsNotFound());
}

TEST(VersionEdgeTest, AutoNumberingFillsBranchSlots) {
  auto fig3 = *BuildFig3Schema();
  Database db(fig3.schema);
  VersionManager vm(&db);
  (void)*db.CreateObject(fig3.ids.action, "A");
  ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("1.0")).ok());
  (void)*db.CreateObject(fig3.ids.action, "B");
  ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("1.1")).ok());
  // Branch twice from 1.0: successors 1.1 is taken, so children appear.
  ASSERT_TRUE(vm.SelectVersion(*VersionId::Parse("1.0")).ok());
  (void)*db.CreateObject(fig3.ids.action, "C");
  auto b1 = vm.CreateVersion();
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1->ToString(), "1.0.1");
  ASSERT_TRUE(vm.SelectVersion(*VersionId::Parse("1.0")).ok());
  (void)*db.CreateObject(fig3.ids.action, "D");
  auto b2 = vm.CreateVersion();
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(b2->ToString(), "1.0.2");
}

TEST(MultiuserEdgeTest, CheckoutUnknownNameFails) {
  auto fig3 = *BuildFig3Schema();
  multiuser::Server server(fig3.schema);
  auto session =
      std::move(multiuser::ClientSession::Open(&server, "alice")).value();
  EXPECT_TRUE(session->CheckoutByName({"Nope"}).IsNotFound());
  // No lock leaked by the failed checkout.
  EXPECT_TRUE(server.LocksOf(session->id()).empty());
}

TEST(MultiuserEdgeTest, EmptyCheckinIsANoOp) {
  auto fig3 = *BuildFig3Schema();
  multiuser::Server server(fig3.schema);
  auto session =
      std::move(multiuser::ClientSession::Open(&server, "alice")).value();
  EXPECT_TRUE(session->Checkin().ok());
  EXPECT_EQ(server.checkins_applied(), 1u);  // applied, trivially
}

TEST(MultiuserEdgeTest, ServerSurvivesManySessionGenerations) {
  auto fig3 = *BuildFig3Schema();
  multiuser::Server server(fig3.schema);
  (void)*server.master()->CreateObject(fig3.ids.action, "Shared");
  server.master()->ClearChangeTracking();
  // Many connect/edit/checkin/disconnect cycles must not collide ids.
  for (int round = 0; round < 10; ++round) {
    auto session = std::move(multiuser::ClientSession::Open(
                                 &server, "w" + std::to_string(round)))
                       .value();
    ASSERT_TRUE(session->CheckoutByName({"Shared"}).ok());
    ObjectId local = *session->local()->FindObjectByName("Shared");
    auto descs = session->local()->SubObjects(local, "Description");
    ObjectId d = descs.empty()
                     ? *session->local()->CreateSubObject(local,
                                                          "Description")
                     : descs[0];
    ASSERT_TRUE(session->local()
                    ->SetValue(d, Value::String("round " +
                                                std::to_string(round)))
                    .ok());
    ASSERT_TRUE(session->Checkin().ok()) << "round " << round;
  }
  EXPECT_TRUE(server.master()->AuditConsistency().clean());
  auto d = server.master()->FindObjectByName("Shared.Description");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*server.master()->GetObject(*d))->value.as_string(), "round 9");
}

TEST(SpadesEdgeTest, DirectToolDuplicateNamesRejected) {
  spades::DirectSpecTool tool;
  ASSERT_TRUE(tool.AddAction("A").ok());
  EXPECT_TRUE(tool.AddAction("A").IsAlreadyExists());
  EXPECT_TRUE(tool.AddData("A").IsAlreadyExists());
  EXPECT_TRUE(tool.AddThing("A").IsAlreadyExists());
}

TEST(SpadesEdgeTest, DirectToolUnknownTargetsFail) {
  spades::DirectSpecTool tool;
  ASSERT_TRUE(tool.AddAction("A").ok());
  EXPECT_TRUE(tool.AddFlow("A", "Nope", spades::FlowKind::kRead).IsNotFound());
  EXPECT_TRUE(tool.AddFlow("Nope", "A", spades::FlowKind::kRead).IsNotFound());
  EXPECT_TRUE(tool.Contain("A", "Nope").IsNotFound());
  EXPECT_TRUE(tool.RefineThingToData("Nope").IsNotFound());
  EXPECT_TRUE(
      tool.RefineFlow("A", "Nope", spades::FlowKind::kRead).IsNotFound());
}

TEST(SpadesEdgeTest, SeedToolRefineFlowRequiresUnknownKindTarget) {
  auto tool = std::move(spades::SeedSpecTool::Create()).value();
  ASSERT_TRUE(tool->AddData("D").ok());
  ASSERT_TRUE(tool->AddAction("A").ok());
  ASSERT_TRUE(tool->AddFlow("A", "D", spades::FlowKind::kUnknown).ok());
  EXPECT_TRUE(tool->RefineFlow("A", "D", spades::FlowKind::kUnknown)
                  .IsInvalidArgument());
}

TEST(PatternEdgeTest, RenamedPatternStaysInPatternNamespace) {
  auto fig3 = *BuildFig3Schema();
  Database db(fig3.schema);
  core::CreateOptions opts;
  opts.pattern = true;
  ObjectId p = *db.CreateObject(fig3.ids.action, "Old", opts);
  ASSERT_TRUE(db.Rename(p, "New").ok());
  EXPECT_TRUE(db.FindPatternByName("New").ok());
  EXPECT_TRUE(db.FindPatternByName("Old").status().IsNotFound());
  EXPECT_TRUE(db.FindObjectByName("New").status().IsNotFound());
}

TEST(PatternEdgeTest, DeletedPatternBreaksNothing) {
  auto fig3 = *BuildFig3Schema();
  Database db(fig3.schema);
  core::CreateOptions opts;
  opts.pattern = true;
  ObjectId p = *db.CreateObject(fig3.ids.action, "P", opts);
  ASSERT_TRUE(db.DeleteObject(p).ok());
  EXPECT_TRUE(db.AllPatternRoots().empty());
  EXPECT_TRUE(db.AuditConsistency().clean());
}

}  // namespace
}  // namespace seed
