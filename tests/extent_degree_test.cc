// Degree-statistics property test: the incrementally maintained
// per-(association, role, class) participation counts in
// core::ExtentCounters must equal a from-scratch recount over the live
// relationships after ANY randomized sequence of creates, cascade
// deletes, object and relationship reclassifications, version restores
// and persistence reloads. These counters are what PlanJoinPipeline
// consumes at plan time — a drift here silently mis-orders joins, so the
// invariant is pinned the same way the attribute-index property test
// pins index entries.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <unistd.h>

#include "common/random.h"
#include "core/database.h"
#include "core/persistence.h"
#include "schema/schema_builder.h"
#include "storage/kv_store.h"
#include "version/version_manager.h"

namespace seed {
namespace {

using core::Database;
using core::Persistence;
using core::Value;

struct DegreeWorld {
  schema::SchemaPtr schema;
  ClassId base, spec0, spec1, target;
  AssociationId link, fast_link;

  std::vector<ClassId> classes() const {
    return {base, spec0, spec1, target};
  }
  std::vector<AssociationId> assocs() const { return {link, fast_link}; }
};

DegreeWorld BuildDegreeWorld() {
  schema::SchemaBuilder b("DegreeWorld");
  DegreeWorld w;
  w.base = b.AddIndependentClass("Base", schema::ValueType::kInt);
  w.spec0 = b.AddIndependentClass("Spec0", schema::ValueType::kInt);
  b.SetGeneralization(w.spec0, w.base);
  w.spec1 = b.AddIndependentClass("Spec1", schema::ValueType::kInt);
  b.SetGeneralization(w.spec1, w.spec0);
  w.target = b.AddIndependentClass("Target", schema::ValueType::kNone);
  w.link = b.AddAssociation(
      "Link", schema::Role{"src", w.base, schema::Cardinality::Any()},
      schema::Role{"dst", w.target, schema::Cardinality::Any()});
  w.fast_link = b.AddAssociation(
      "FastLink", schema::Role{"src", w.base, schema::Cardinality::Any()},
      schema::Role{"dst", w.target, schema::Cardinality::Any()});
  b.SetGeneralization(w.fast_link, w.link);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  w.schema = *schema;
  return w;
}

/// (assoc, role, class) -> count; only non-zero entries.
using DegreeMap = std::map<std::tuple<std::uint64_t, int, std::uint64_t>,
                           size_t>;

/// Ground truth: walk every live relationship of every exact association
/// extent and count its ends by their objects' current classes.
DegreeMap Recount(const Database& db, const DegreeWorld& w) {
  DegreeMap out;
  for (AssociationId assoc : w.assocs()) {
    for (RelationshipId rid :
         db.RelationshipsOfAssociation(assoc, /*include_specializations=*/
                                       false)) {
      auto rel = db.GetRelationship(rid);
      if (!rel.ok()) continue;
      for (int role = 0; role < 2; ++role) {
        auto obj = db.GetObject((*rel)->ends[role]);
        if (!obj.ok()) continue;
        ++out[{assoc.raw(), role, (*obj)->cls.raw()}];
      }
    }
  }
  return out;
}

/// The incrementally maintained counts over the world's full
/// (assoc, role, class) grid.
DegreeMap Tracked(const Database& db, const DegreeWorld& w) {
  DegreeMap out;
  for (AssociationId assoc : w.assocs()) {
    for (int role = 0; role < 2; ++role) {
      for (ClassId cls : w.classes()) {
        size_t n = db.extent_counters().CountParticipants(assoc, role, cls);
        if (n != 0) out[{assoc.raw(), role, cls.raw()}] = n;
      }
    }
  }
  return out;
}

void ExpectCountersExact(const Database& db, const DegreeWorld& w,
                         const std::string& when) {
  DegreeMap recount = Recount(db, w);
  EXPECT_EQ(Tracked(db, w), recount) << "degree drift " << when;
  // The family roll-up the planner reads must agree with the same
  // recount summed over the class family.
  for (AssociationId assoc : w.assocs()) {
    for (int role = 0; role < 2; ++role) {
      size_t family_sum = 0;
      for (AssociationId a : db.schema()->AssociationFamily(assoc)) {
        for (ClassId cls : w.classes()) {
          auto it = recount.find({a.raw(), role, cls.raw()});
          if (it != recount.end()) family_sum += it->second;
        }
      }
      EXPECT_EQ(db.extent_counters().CountParticipantsExtent(
                    *db.schema(), assoc, role, w.base, true) +
                    db.extent_counters().CountParticipantsExtent(
                        *db.schema(), assoc, role, w.target, true),
                family_sum)
          << "family roll-up drift " << when;
    }
  }
}

TEST(ExtentDegreeTest, IncrementalCountsEqualRecountUnderRandomHistories) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Random rng(seed * 104729);
    DegreeWorld w = BuildDegreeWorld();
    auto db = std::make_unique<Database>(w.schema);
    version::VersionManager vm(db.get());

    std::vector<ClassId> family{w.base, w.spec0, w.spec1};
    std::vector<ObjectId> sources, targets;
    std::vector<RelationshipId> rels;
    std::vector<version::VersionId> versions;
    int created = 0;

    for (int i = 0; i < 12; ++i) {
      targets.push_back(*db->CreateObject(w.target, "T" + std::to_string(i)));
    }

    for (int step = 0; step < 220; ++step) {
      switch (rng.Uniform(8)) {
        case 0: {  // create a source somewhere in the family
          auto id = db->CreateObject(rng.Pick(family),
                                     "S" + std::to_string(created++));
          ASSERT_TRUE(id.ok());
          sources.push_back(*id);
          break;
        }
        case 1:
        case 2: {  // link a source to a target (duplicates may be vetoed)
          if (sources.empty()) break;
          auto rel = db->CreateRelationship(
              rng.Bernoulli(0.6) ? w.link : w.fast_link, rng.Pick(sources),
              rng.Pick(targets));
          if (rel.ok()) rels.push_back(*rel);
          break;
        }
        case 3: {  // cascade-delete a source (its relationships die too)
          if (sources.empty() || !rng.Bernoulli(0.4)) break;
          (void)db->DeleteObject(rng.Pick(sources));
          break;
        }
        case 4: {  // delete a relationship
          if (rels.empty()) break;
          (void)db->DeleteRelationship(rng.Pick(rels));
          break;
        }
        case 5: {  // reclassify a source along the chain
          if (sources.empty()) break;
          (void)db->Reclassify(rng.Pick(sources), rng.Pick(family));
          break;
        }
        case 6: {  // reclassify a relationship between the associations
          if (rels.empty()) break;
          RelationshipId rel = rng.Pick(rels);
          auto item = db->GetRelationship(rel);
          if (!item.ok()) break;
          (void)db->ReclassifyRelationship(
              rel, (*item)->assoc == w.link ? w.fast_link : w.link);
          break;
        }
        case 7: {  // freeze a version / restore a historical one
          if (versions.empty() || rng.Bernoulli(0.6)) {
            auto v = vm.CreateVersion();
            if (v.ok()) versions.push_back(*v);
          } else {
            ASSERT_TRUE(vm.SelectVersion(rng.Pick(versions)).ok());
          }
          break;
        }
      }
      ExpectCountersExact(*db, w, "at seed " + std::to_string(seed) +
                                      " step " + std::to_string(step));
    }

    // Persistence reload: the loaded database re-derives the counters
    // through RebuildIndexes and must land on the same exact counts.
    std::string dir = ::testing::TempDir() + "/degree." +
                      std::to_string(::getpid()) + "." +
                      std::to_string(seed);
    std::filesystem::create_directories(dir);
    {
      storage::KvStore kv;
      ASSERT_TRUE(kv.Open(dir).ok());
      ASSERT_TRUE(Persistence::SaveFull(*db, &kv).ok());
      ASSERT_TRUE(kv.Close().ok());
    }
    storage::KvStore kv;
    ASSERT_TRUE(kv.Open(dir).ok());
    auto loaded = Persistence::Load(&kv);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectCountersExact(**loaded, w, "after reload, seed " +
                                         std::to_string(seed));
    EXPECT_EQ(Tracked(**loaded, w), Tracked(*db, w))
        << "reload changed the counters at seed " << seed;
    ASSERT_TRUE(kv.Close().ok());
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace seed
