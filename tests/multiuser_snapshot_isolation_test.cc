// Snapshot-isolation properties of the multiuser server's read path
// (PR: snapshot reads + striped write locks). Readers pin an immutable
// snapshot per session; writers commit through striped locks. The
// contract under test: a reader's view is always one frozen, internally
// consistent database state — never a half-applied check-in — and
// holding write locks never blocks retrieval. Run under TSan via the
// `parallel` label.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "multiuser/client.h"
#include "multiuser/server.h"
#include "spades/spec_schema.h"
#include "version/snapshot.h"

namespace seed::multiuser {
namespace {

using core::Value;

constexpr int kPairs = 4;
constexpr int kReaders = 2;
constexpr int kWriters = 2;
constexpr int kReadsPerReader = 50;

std::string LeftName(int p) { return "Left_" + std::to_string(p); }
std::string RightName(int p) { return "Right_" + std::to_string(p); }

/// The invariant every snapshot must satisfy: Left_p and Right_p carry
/// equal Description values. Writers only ever change both ends of a
/// pair inside one check-in, so any snapshot that splits a pair caught
/// a commit half-applied.
void ExpectPairsIntact(const core::Database& db) {
  for (int p = 0; p < kPairs; ++p) {
    auto left = db.FindObjectByName(LeftName(p));
    auto right = db.FindObjectByName(RightName(p));
    ASSERT_TRUE(left.ok() && right.ok());
    auto ld = db.SubObjects(*left, "Description");
    auto rd = db.SubObjects(*right, "Description");
    ASSERT_EQ(ld.size(), 1u);
    ASSERT_EQ(rd.size(), 1u);
    EXPECT_EQ(db.objects_raw().at(ld[0]).value,
              db.objects_raw().at(rd[0]).value)
        << "snapshot split pair " << p << ": torn read";
  }
}

class SnapshotIsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = spades::BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    action_ = fig3->ids.action;
    server_ = std::make_unique<Server>(fig3->schema);
    core::Database* m = server_->master();
    for (int p = 0; p < kPairs; ++p) {
      for (const std::string& name : {LeftName(p), RightName(p)}) {
        auto root = m->CreateObject(fig3->ids.action, name);
        ASSERT_TRUE(root.ok());
        auto desc = m->CreateSubObject(*root, "Description");
        ASSERT_TRUE(desc.ok());
        ASSERT_TRUE(m->SetValue(*desc, Value::String("gen0")).ok());
      }
    }
    m->ClearChangeTracking();
    server_->PublishSnapshot();
  }

  /// Sets both Descriptions of the session's checked-out pair to `text`.
  static void EditPair(ClientSession* session, int p,
                       const std::string& text) {
    for (const std::string& name : {LeftName(p), RightName(p)}) {
      auto root = session->local()->FindObjectByName(name);
      ASSERT_TRUE(root.ok());
      auto descs = session->local()->SubObjects(*root, "Description");
      ASSERT_EQ(descs.size(), 1u);
      ASSERT_TRUE(
          session->local()->SetValue(descs[0], Value::String(text)).ok());
    }
  }

  std::unique_ptr<Server> server_;
  ClassId action_;
};

// Readers audit their pinned snapshots while a write storm commits pair
// mutations: every view must be audit-clean with every pair intact, and
// at least one read must have run while write locks were held.
TEST_F(SnapshotIsolationTest, ReadersSeeFrozenConsistentStatesDuringStorm) {
  std::atomic<bool> readers_done{false};
  std::atomic<int> reads_while_locked{0};
  std::atomic<std::uint64_t> writer_commits{0};

  // A pinned root (outside every pair) keeps at least one write lock
  // held for the whole reader window, so the reads-under-locks floor
  // does not depend on catching a writer mid-flight.
  auto pin_root = server_->master()->CreateObject(action_, "Pinned");
  ASSERT_TRUE(pin_root.ok());
  server_->master()->ClearChangeTracking();
  server_->PublishSnapshot();
  auto pinner = ClientSession::Open(server_.get(), "pinner");
  ASSERT_TRUE(pinner.ok());
  ASSERT_TRUE((*pinner)->Checkout({*pin_root}).ok());

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([this, &readers_done, &writer_commits, w] {
      auto session =
          ClientSession::Open(server_.get(), "writer-" + std::to_string(w));
      ASSERT_TRUE(session.ok());
      int gen = 1;
      // Keep committing until every reader finished, so reads race real
      // commits from start to end of the window.
      while (!readers_done.load(std::memory_order_acquire)) {
        int p = (w + gen) % kPairs;
        Status s = (*session)->CheckoutByName({LeftName(p), RightName(p)});
        if (s.IsLockConflict()) continue;  // other writer owns the pair
        ASSERT_TRUE(s.ok()) << s.ToString();
        EditPair(session->get(), p,
                 "w" + std::to_string(w) + ".g" + std::to_string(gen));
        ASSERT_TRUE((*session)->Checkin().ok());
        writer_commits.fetch_add(1, std::memory_order_relaxed);
        ++gen;
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([this, &reads_while_locked, r] {
      auto session =
          ClientSession::Open(server_.get(), "reader-" + std::to_string(r));
      ASSERT_TRUE(session.ok());
      for (int i = 0; i < kReadsPerReader; ++i) {
        if (i % 8 == 7) {
          ASSERT_TRUE((*session)->Refresh().ok());
        }
        auto view = (*session)->View();
        ASSERT_TRUE(view.ok());
        const core::Database& db = (*view)->database();
        EXPECT_TRUE(db.AuditConsistency().clean())
            << "snapshot epoch " << (*view)->epoch()
            << " is not a consistent database state";
        ExpectPairsIntact(db);
        auto hits = server_->Query((*session)->id(),
                                   "find Action where name contains "
                                   "\"Left\"");
        ASSERT_TRUE(hits.ok());
        EXPECT_EQ(hits->size(), static_cast<size_t>(kPairs));
        if (server_->num_locks() > 0) {
          reads_while_locked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  readers_done.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();
  ASSERT_TRUE((*pinner)->Abandon().ok());

  EXPECT_GE(reads_while_locked.load(), 1)
      << "no read overlapped a held write lock";
  EXPECT_GT(writer_commits.load(), 0u) << "the write storm never committed";
  EXPECT_EQ(server_->checkins_rejected(), 0u);
  // Reader progress while writers held stripes is the liveness half of
  // the contract; the reads completed (kReaders * kReadsPerReader of
  // them) with writers committing throughout, so throughput was nonzero.
}

// Deterministic freeze semantics: a session's view does not move when
// other clients commit — only Refresh (or the session's own check-in)
// advances it.
TEST_F(SnapshotIsolationTest, ViewIsFrozenUntilRefresh) {
  auto reader = ClientSession::Open(server_.get(), "reader");
  ASSERT_TRUE(reader.ok());
  auto before = (*reader)->View();
  ASSERT_TRUE(before.ok());
  const std::uint64_t epoch_before = (*before)->epoch();

  // A writer holding locks must not block the reader's retrieval.
  auto writer = ClientSession::Open(server_.get(), "writer");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      (*writer)->CheckoutByName({LeftName(0), RightName(0)}).ok());
  ASSERT_GT(server_->num_locks(), 0u);
  for (int i = 0; i < 20; ++i) {
    auto hits = server_->Query((*reader)->id(),
                               "find Action where name contains \"Left\"");
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(hits->size(), static_cast<size_t>(kPairs));
  }

  // The writer commits; the reader's pinned view must not move...
  EditPair(writer->get(), 0, "updated");
  ASSERT_TRUE((*writer)->Checkin().ok());
  auto after_commit = (*reader)->View();
  ASSERT_TRUE(after_commit.ok());
  EXPECT_EQ((*after_commit)->epoch(), epoch_before)
      << "another client's commit moved this session's view";
  {
    const core::Database& db = (*after_commit)->database();
    auto left = db.FindObjectByName(LeftName(0));
    ASSERT_TRUE(left.ok());
    auto descs = db.SubObjects(*left, "Description");
    ASSERT_EQ(descs.size(), 1u);
    EXPECT_EQ(db.objects_raw().at(descs[0]).value, Value::String("gen0"))
        << "frozen view leaked a later commit";
  }

  // ...until Refresh pins the post-commit snapshot.
  ASSERT_TRUE((*reader)->Refresh().ok());
  auto refreshed = (*reader)->View();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_GT((*refreshed)->epoch(), epoch_before);
  const core::Database& db = (*refreshed)->database();
  auto left = db.FindObjectByName(LeftName(0));
  ASSERT_TRUE(left.ok());
  auto descs = db.SubObjects(*left, "Description");
  ASSERT_EQ(descs.size(), 1u);
  EXPECT_EQ(db.objects_raw().at(descs[0]).value, Value::String("updated"));
}

}  // namespace
}  // namespace seed::multiuser
