// Concurrency test for the process-global PlanCache: the multiuser
// server plans textual queries from many reader sessions at once, so
// Lookup / Insert / Invalidate / Clear and the planner's full hit path
// must be safe under real contention. Runs under the `parallel` ctest
// label, which the TSan CI job selects — the assertions here pin
// results-correctness, the sanitizer pins the memory model.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "query/parser.h"
#include "query/plan_cache.h"
#include "schema/schema_builder.h"

namespace seed::query {
namespace {

using core::Database;
using core::Value;

TEST(PlanCacheConcurrencyTest, ConcurrentQueriesAndInvalidations) {
  schema::SchemaBuilder b("ConcurrentCacheWorld");
  ClassId item = b.AddIndependentClass("Item", schema::ValueType::kInt);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto db = std::make_unique<Database>(*schema);
  ASSERT_TRUE(db->CreateAttributeIndex({item, ""}).ok());
  std::vector<std::vector<ObjectId>> by_value(10);
  for (int i = 0; i < 200; ++i) {
    ObjectId id = *db->CreateObject(item, "I" + std::to_string(i));
    ASSERT_TRUE(db->SetValue(id, Value::Int(i % 10)).ok());
    by_value[static_cast<size_t>(i % 10)].push_back(id);
  }
  PlanCache::Global().Clear();

  constexpr int kReaders = 6;
  constexpr int kItersPerReader = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  // Readers hammer the same handful of query shapes: every iteration is
  // a lookup, and most are hits re-binding a different literal.
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerReader; ++i) {
        int v = (t + i) % 10;
        auto r = RunQuery(*db,
                          "find Item where value is " + std::to_string(v));
        if (!r.ok() || *r != by_value[static_cast<size_t>(v)]) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  // One antagonist invalidates, clears, and flips the drift ratio while
  // the readers run — every mutation the server could issue.
  threads.emplace_back([&] {
    PlanCache& cache = PlanCache::Global();
    for (int i = 0; i < 300; ++i) {
      switch (i % 4) {
        case 0:
          cache.Insert("antagonist-" + std::to_string(i), CachedPlan{});
          break;
        case 1:
          cache.Invalidate("antagonist-" + std::to_string(i - 1));
          break;
        case 2:
          cache.set_drift_ratio(i % 8 == 2 ? 4.0 : 2.0);
          break;
        default:
          if (i % 40 == 3) {
            cache.Clear();
          } else {
            (void)cache.Lookup("antagonist-" + std::to_string(i));
          }
          break;
      }
    }
    cache.set_drift_ratio(2.0);
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // The cache survived and still serves: one more warm/cold round trip.
  PlanCache::Global().Clear();
  auto cold = RunQuery(*db, "find Item where value is 4");
  ASSERT_TRUE(cold.ok());
  auto warm = RunQuery(*db, "find Item where value is 4");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(*cold, *warm);
  EXPECT_EQ(*warm, by_value[4]);
  PlanCache::Global().Clear();
}

}  // namespace
}  // namespace seed::query
