// Coverage for smaller surfaces: algebra set operators, logging, heap-file
// edge paths, version-store persistence after deletions, and buffer-pool
// statistics through the KvStore.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/logging.h"
#include "core/persistence.h"
#include "query/algebra.h"
#include "spades/spec_schema.h"
#include "storage/heap_file.h"
#include "version/version_io.h"
#include "version/version_manager.h"

namespace seed {
namespace {

using core::Database;
using query::Algebra;
using spades::BuildFig3Schema;
using version::VersionId;
using version::VersionManager;

// --- Algebra set operators ---------------------------------------------------

class SetOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fig3 = BuildFig3Schema();
    ASSERT_TRUE(fig3.ok());
    ids_ = fig3->ids;
    db_ = std::make_unique<Database>(fig3->schema);
    algebra_ = std::make_unique<Algebra>(db_.get());
    a_ = *db_->CreateObject(ids_.action, "A");
    b_ = *db_->CreateObject(ids_.action, "B");
    c_ = *db_->CreateObject(ids_.action, "C");
  }

  query::QueryRelation Rel(std::vector<ObjectId> ids) {
    query::QueryRelation out;
    out.attributes = {"x"};
    for (ObjectId id : ids) out.tuples.push_back({id});
    return out;
  }

  spades::Fig3Ids ids_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Algebra> algebra_;
  ObjectId a_, b_, c_;
};

TEST_F(SetOpsTest, Difference) {
  auto diff = algebra_->Difference(Rel({a_, b_, c_}), Rel({b_}));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 2u);
  auto empty = algebra_->Difference(Rel({a_}), Rel({a_, b_}));
  EXPECT_TRUE(empty->empty());
}

TEST_F(SetOpsTest, Intersect) {
  auto both = algebra_->Intersect(Rel({a_, b_}), Rel({b_, c_}));
  ASSERT_TRUE(both.ok());
  ASSERT_EQ(both->size(), 1u);
  EXPECT_EQ(both->tuples[0][0], b_);
}

TEST_F(SetOpsTest, SetOpsRequireSameAttributes) {
  query::QueryRelation other;
  other.attributes = {"y"};
  EXPECT_TRUE(
      algebra_->Difference(Rel({a_}), other).status().IsInvalidArgument());
  EXPECT_TRUE(
      algebra_->Intersect(Rel({a_}), other).status().IsInvalidArgument());
}

TEST_F(SetOpsTest, DeMorganOverExtents) {
  // actions \ (actions \ X) == actions ∩ X, for X = {a, b}.
  auto actions = algebra_->ClassExtent(ids_.action, "x");
  auto x = Rel({a_, b_});
  auto lhs =
      *algebra_->Difference(actions, *algebra_->Difference(actions, x));
  auto rhs = *algebra_->Intersect(actions, x);
  EXPECT_EQ(lhs.tuples, rhs.tuples);
}

// --- Logging -----------------------------------------------------------------

TEST(LoggingTest, LevelFiltering) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Dropped (below threshold) and emitted paths both execute safely.
  SEED_LOG(Debug) << "invisible " << 42;
  SEED_LOG(Error) << "visible " << 42;
  SetLogLevel(old_level);
}

// --- Heap file edge paths ----------------------------------------------------

TEST(HeapFileEdgeTest, OpenWithInvalidFirstPageFails) {
  std::string path = ::testing::TempDir() + "/heapedge." +
                     std::to_string(::getpid()) + ".db";
  storage::DiskManager disk;
  ASSERT_TRUE(disk.Open(path).ok());
  storage::BufferPool pool(&disk, 4);
  storage::HeapFile heap(&pool);
  EXPECT_FALSE(heap.Open(PageId()).ok());
  (void)disk.Close();
  std::remove(path.c_str());
}

TEST(HeapFileEdgeTest, DeleteOnForeignPageRejected) {
  std::string path = ::testing::TempDir() + "/heapedge2." +
                     std::to_string(::getpid()) + ".db";
  storage::DiskManager disk;
  ASSERT_TRUE(disk.Open(path).ok());
  storage::BufferPool pool(&disk, 4);
  storage::HeapFile heap(&pool);
  ASSERT_TRUE(heap.Create().ok());
  storage::RecordId bogus{PageId(999), 0};
  EXPECT_TRUE(heap.Delete(bogus).IsInvalidArgument());
  EXPECT_TRUE(heap.Update(bogus, "x").status().IsInvalidArgument());
  (void)disk.Close();
  std::remove(path.c_str());
}

// --- Version persistence after deletion --------------------------------------

TEST(VersionIoTest, DeletedVersionsDisappearFromStoreOnResave) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/viodel." +
                    std::to_string(::getpid()) + "." +
                    std::to_string(counter++);
  std::filesystem::create_directories(dir);

  auto fig3 = BuildFig3Schema();
  Database db(fig3->schema);
  VersionManager vm(&db);
  (void)*db.CreateObject(fig3->ids.action, "A");
  ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("1.0")).ok());
  (void)*db.CreateObject(fig3->ids.action, "B");
  ASSERT_TRUE(vm.CreateVersion(*VersionId::Parse("2.0")).ok());
  // Branch a deletable leaf.
  ASSERT_TRUE(vm.SelectVersion(*VersionId::Parse("1.0")).ok());
  (void)*db.CreateObject(fig3->ids.action, "C");
  auto branch = vm.CreateVersion();
  ASSERT_TRUE(branch.ok());

  storage::KvStore kv;
  ASSERT_TRUE(kv.Open(dir).ok());
  ASSERT_TRUE(version::VersionPersistence::Save(vm, &kv).ok());
  std::uint64_t with_branch = kv.size();

  ASSERT_TRUE(vm.SelectVersion(*VersionId::Parse("2.0")).ok());
  ASSERT_TRUE(vm.DeleteVersion(*branch).ok());
  ASSERT_TRUE(version::VersionPersistence::Save(vm, &kv).ok());
  EXPECT_LT(kv.size(), with_branch);

  VersionManager reloaded(&db);
  ASSERT_TRUE(version::VersionPersistence::Load(&reloaded, &kv).ok());
  EXPECT_EQ(reloaded.num_versions(), 2u);
  EXPECT_FALSE(reloaded.HasVersion(*branch));
  std::filesystem::remove_all(dir);
}

// --- Buffer pool stats through the KvStore -----------------------------------

TEST(KvStoreStatsTest, BufferPoolCountersVisible) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/kvstats." +
                    std::to_string(::getpid()) + "." +
                    std::to_string(counter++);
  std::filesystem::create_directories(dir);
  storage::KvStore kv;
  storage::KvStoreOptions opts;
  opts.buffer_pool_pages = 4;
  ASSERT_TRUE(kv.Open(dir, opts).ok());
  std::string value(2000, 'v');
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(kv.Put(k, value).ok());
  }
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(kv.Get(k).ok());
  }
  const storage::BufferPool* pool = kv.buffer_pool();
  EXPECT_GT(pool->hit_count(), 0u);
  EXPECT_GT(pool->miss_count(), 0u);  // 4-frame pool over >16 pages must miss
  ASSERT_TRUE(kv.Close().ok());
  std::filesystem::remove_all(dir);
}

// --- Id generator ResetTo ----------------------------------------------------

TEST(IdGeneratorTest, ResetToMovesDownward) {
  IdGenerator<ObjectId> gen;
  gen.ReserveThrough(ObjectId(1000));
  gen.ResetTo(5);
  EXPECT_EQ(gen.Next().raw(), 5u);
  EXPECT_EQ(gen.Next().raw(), 6u);
}

}  // namespace
}  // namespace seed
