// Patterns (paper, "Patterns and Variants").
//
// Any data item can be marked as a pattern at creation. Patterns are
// invisible to normal retrieval and exempt from consistency checking
// *until they are inherited* by a normal item: establishing an
// inherits-relationship is the moment the pattern's content is validated
// against the inheritor's context.
//
// Semantics: "all retrieval operations view patterns as if they were
// inserted in the context of the inheritors. However, instead of a real
// insertion we establish a special inherits-relationship... Thus pattern
// information cannot be updated in the context of the inheritors, but only
// in the pattern itself. Conversely, any update of a pattern automatically
// propagates to all inheritors."
//
// Propagation here is structural: effective views are computed on read, so
// a pattern update is O(1) and every inheritor observes it immediately.

#ifndef SEED_PATTERN_PATTERN_MANAGER_H_
#define SEED_PATTERN_PATTERN_MANAGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "core/database.h"

namespace seed::pattern {

/// A sub-object as seen through the pattern overlay.
struct EffectiveSubObject {
  ObjectId id;        // real object id (owned by the inheritor or a pattern)
  bool inherited;     // true if projected from a pattern
  ObjectId pattern;   // the pattern it came from (invalid when own)
};

/// A relationship as seen through the pattern overlay: inherited entries
/// substitute the inheritor for the pattern end.
struct EffectiveRelationship {
  RelationshipId id;  // real relationship id (a pattern rel when inherited)
  AssociationId assoc;
  ObjectId ends[2];   // with the pattern end substituted by the inheritor
  bool inherited;
  ObjectId pattern;
};

class PatternManager {
 public:
  explicit PatternManager(core::Database* db) : db_(db) {}

  core::Database* database() { return db_; }

  // --- Inheritance -----------------------------------------------------------

  /// Establishes the inherits-relationship `inheritor` <- `pattern`.
  /// This is where the pattern is checked for consistency: its sub-object
  /// roles must resolve on the inheritor's class, combined cardinalities
  /// must hold, its values must conform, and its relationships must accept
  /// the inheritor as a substitute participant.
  Status Inherit(ObjectId inheritor, ObjectId pattern);

  /// Removes an inherits-relationship.
  Status Disinherit(ObjectId inheritor, ObjectId pattern);

  std::vector<ObjectId> PatternsOf(ObjectId inheritor) const;
  std::vector<ObjectId> InheritorsOf(ObjectId pattern) const;
  bool Inherits(ObjectId inheritor, ObjectId pattern) const;
  size_t num_edges() const { return edge_count_; }

  // --- Effective (overlay) views ---------------------------------------------

  /// Own live sub-objects plus those projected from inherited patterns,
  /// optionally restricted to one role.
  std::vector<EffectiveSubObject> EffectiveSubObjects(
      ObjectId obj, std::string_view role = {}) const;

  /// Own relationships plus projected pattern relationships (with the
  /// pattern end substituted by `obj`), optionally restricted to an
  /// association family.
  std::vector<EffectiveRelationship> EffectiveRelationships(
      ObjectId obj, AssociationId assoc = AssociationId()) const;

  /// Value of the sub-object in `role`, resolving through patterns when the
  /// inheritor has no own sub-object there.
  Result<core::Value> EffectiveValue(ObjectId obj,
                                     std::string_view role) const;

  // --- Write protection ------------------------------------------------------

  /// Updates the value of the sub-object in `role` *in the context of*
  /// `obj`: allowed for own sub-objects, rejected with kFailedPrecondition
  /// when the sub-object is inherited from a pattern (paper: pattern
  /// information can only be updated in the pattern itself).
  Status SetValueInContext(ObjectId obj, std::string_view role,
                           core::Value value);

  // --- Persistence -----------------------------------------------------------

  void EncodeTo(Encoder* enc) const;
  Status DecodeFrom(Decoder* dec);

 private:
  /// Validates `pattern`'s content against `inheritor` (the deferred
  /// consistency check).
  Status ValidateInheritance(const core::ObjectItem& inheritor,
                             const core::ObjectItem& pattern) const;

  core::Database* db_;
  std::unordered_map<ObjectId, std::vector<ObjectId>> patterns_of_;
  std::unordered_map<ObjectId, std::vector<ObjectId>> inheritors_of_;
  size_t edge_count_ = 0;
};

}  // namespace seed::pattern

#endif  // SEED_PATTERN_PATTERN_MANAGER_H_
