#include "pattern/pattern_manager.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"

namespace seed::pattern {

using core::ObjectItem;
using core::RelationshipItem;

namespace {

template <typename T>
void EraseFrom(std::vector<T>& v, const T& value) {
  v.erase(std::remove(v.begin(), v.end(), value), v.end());
}

}  // namespace

bool PatternManager::Inherits(ObjectId inheritor, ObjectId pattern) const {
  auto it = patterns_of_.find(inheritor);
  if (it == patterns_of_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), pattern) !=
         it->second.end();
}

std::vector<ObjectId> PatternManager::PatternsOf(ObjectId inheritor) const {
  auto it = patterns_of_.find(inheritor);
  return it == patterns_of_.end() ? std::vector<ObjectId>{} : it->second;
}

std::vector<ObjectId> PatternManager::InheritorsOf(ObjectId pattern) const {
  auto it = inheritors_of_.find(pattern);
  return it == inheritors_of_.end() ? std::vector<ObjectId>{} : it->second;
}

Status PatternManager::ValidateInheritance(const ObjectItem& inheritor,
                                           const ObjectItem& pattern) const {
  const auto& schema = *db_->schema();

  // The pattern's own value (if any) must conform to its class — this was
  // not checked at creation time.
  auto pattern_cls = schema.GetClass(pattern.cls);
  if (!pattern_cls.ok()) {
    return Status::ConsistencyViolation(
        "pattern has unknown class id " + std::to_string(pattern.cls.raw()));
  }

  // Count the inheritor's effective sub-objects per role: own + already
  // inherited + the candidate pattern's.
  std::unordered_map<std::uint64_t, size_t> role_counts;
  auto count_children = [this, &role_counts](const ObjectItem& owner) {
    for (ObjectId child_id : owner.children) {
      auto child = db_->objects_raw().find(child_id);
      if (child == db_->objects_raw().end() || child->second.deleted) {
        continue;
      }
      ++role_counts[child->second.cls.raw()];
    }
  };
  count_children(inheritor);
  for (ObjectId prior : PatternsOf(inheritor.id)) {
    auto it = db_->objects_raw().find(prior);
    if (it != db_->objects_raw().end()) count_children(it->second);
  }
  count_children(pattern);

  // Every sub-object (the pattern's whole subtree) must resolve and
  // conform; top-level roles must respect combined maximum cardinalities.
  std::vector<ObjectId> work(pattern.children.begin(),
                             pattern.children.end());
  bool top_level = true;
  std::vector<ObjectId> next;
  while (!work.empty()) {
    next.clear();
    for (ObjectId child_id : work) {
      auto it = db_->objects_raw().find(child_id);
      if (it == db_->objects_raw().end() || it->second.deleted) continue;
      const ObjectItem& child = it->second;
      auto child_cls = schema.GetClass(child.cls);
      if (!child_cls.ok()) {
        return Status::ConsistencyViolation(
            "pattern sub-object has unknown class");
      }
      if (top_level) {
        // Role must exist on the inheritor's class (via generalization).
        auto resolved =
            schema.ResolveSubObjectRole(inheritor.cls, (*child_cls)->name);
        if (!resolved.ok() || *resolved != child.cls) {
          return Status::ConsistencyViolation(
              "pattern role '" + (*child_cls)->full_name +
              "' does not exist on the inheritor's class");
        }
        if (!(*child_cls)->cardinality.unlimited_max() &&
            role_counts[child.cls.raw()] > (*child_cls)->cardinality.max) {
          return Status::ConsistencyViolation(
              "inheriting would exceed the maximum cardinality of role '" +
              (*child_cls)->full_name + "' (" +
              (*child_cls)->cardinality.ToString() + ")");
        }
      }
      if (child.value.defined()) {
        using schema::ValueType;
        if ((*child_cls)->value_type == ValueType::kNone ||
            child.value.type() != (*child_cls)->value_type) {
          return Status::ConsistencyViolation(
              "pattern value " + child.value.ToString() +
              " does not conform to class '" + (*child_cls)->full_name +
              "'");
        }
        if ((*child_cls)->value_type == ValueType::kEnum) {
          const auto& allowed = (*child_cls)->enum_values;
          if (std::find(allowed.begin(), allowed.end(),
                        child.value.as_enum()) == allowed.end()) {
            return Status::ConsistencyViolation(
                "pattern enum value " + child.value.ToString() +
                " is not allowed by class '" + (*child_cls)->full_name +
                "'");
          }
        }
      }
      next.insert(next.end(), child.children.begin(), child.children.end());
    }
    work = next;
    top_level = false;
  }

  // The pattern's relationships must accept the inheritor as a substitute
  // participant.
  for (RelationshipId rid : db_->PatternRelationshipsOf(pattern.id)) {
    const RelationshipItem& rel = db_->relationships_raw().at(rid);
    for (int i = 0; i < 2; ++i) {
      if (rel.ends[i] != pattern.id) continue;
      auto assoc = schema.GetAssociation(rel.assoc);
      if (!assoc.ok()) {
        return Status::ConsistencyViolation(
            "pattern relationship has unknown association");
      }
      if (!schema.IsSameOrSpecializationOf(inheritor.cls,
                                           (*assoc)->roles[i].target)) {
        return Status::ConsistencyViolation(
            "inheritor of class does not conform to role '" +
            (*assoc)->roles[i].name + "' of pattern relationship '" +
            (*assoc)->name + "'");
      }
      // The other end must be a live normal object, so the projected
      // relationship has well-defined participants.
      ObjectId other = rel.ends[1 - i];
      if (other != pattern.id) {
        auto other_it = db_->objects_raw().find(other);
        if (other_it == db_->objects_raw().end() ||
            other_it->second.deleted || other_it->second.is_pattern) {
          return Status::ConsistencyViolation(
              "pattern relationship '" + (*assoc)->name +
              "' does not connect to a live normal object");
        }
      }
    }
  }
  return Status::OK();
}

Status PatternManager::Inherit(ObjectId inheritor_id, ObjectId pattern_id) {
  auto inheritor_it = db_->objects_raw().find(inheritor_id);
  if (inheritor_it == db_->objects_raw().end() ||
      inheritor_it->second.deleted) {
    return Status::NotFound("inheritor object " +
                            std::to_string(inheritor_id.raw()));
  }
  auto pattern_it = db_->objects_raw().find(pattern_id);
  if (pattern_it == db_->objects_raw().end() ||
      pattern_it->second.deleted) {
    return Status::NotFound("pattern object " +
                            std::to_string(pattern_id.raw()));
  }
  const ObjectItem& inheritor = inheritor_it->second;
  const ObjectItem& pattern = pattern_it->second;
  if (!pattern.is_pattern) {
    return Status::FailedPrecondition("'" + db_->FullName(pattern_id) +
                                      "' is not a pattern");
  }
  if (inheritor.is_pattern) {
    return Status::FailedPrecondition(
        "patterns cannot inherit other patterns");
  }
  if (Inherits(inheritor_id, pattern_id)) {
    return Status::AlreadyExists("inherits-relationship already exists");
  }
  SEED_RETURN_IF_ERROR(ValidateInheritance(inheritor, pattern));

  patterns_of_[inheritor_id].push_back(pattern_id);
  inheritors_of_[pattern_id].push_back(inheritor_id);
  ++edge_count_;
  return Status::OK();
}

Status PatternManager::Disinherit(ObjectId inheritor_id,
                                  ObjectId pattern_id) {
  if (!Inherits(inheritor_id, pattern_id)) {
    return Status::NotFound("no inherits-relationship between these items");
  }
  EraseFrom(patterns_of_[inheritor_id], pattern_id);
  EraseFrom(inheritors_of_[pattern_id], inheritor_id);
  --edge_count_;
  return Status::OK();
}

std::vector<EffectiveSubObject> PatternManager::EffectiveSubObjects(
    ObjectId obj, std::string_view role) const {
  std::vector<EffectiveSubObject> out;
  for (ObjectId own : db_->SubObjects(obj, role)) {
    out.push_back(EffectiveSubObject{own, false, ObjectId()});
  }
  for (ObjectId pattern : PatternsOf(obj)) {
    for (ObjectId projected : db_->SubObjects(pattern, role)) {
      out.push_back(EffectiveSubObject{projected, true, pattern});
    }
  }
  return out;
}

std::vector<EffectiveRelationship> PatternManager::EffectiveRelationships(
    ObjectId obj, AssociationId assoc) const {
  std::vector<EffectiveRelationship> out;
  for (RelationshipId rid : db_->RelationshipsOf(obj, assoc)) {
    auto rel = db_->GetRelationship(rid);
    if (!rel.ok()) continue;
    EffectiveRelationship er;
    er.id = rid;
    er.assoc = (*rel)->assoc;
    er.ends[0] = (*rel)->ends[0];
    er.ends[1] = (*rel)->ends[1];
    er.inherited = false;
    out.push_back(er);
  }
  for (ObjectId pattern : PatternsOf(obj)) {
    // O(degree of the pattern), via the participation index.
    for (RelationshipId rid : db_->PatternRelationshipsOf(pattern, assoc)) {
      auto it = db_->relationships_raw().find(rid);
      if (it == db_->relationships_raw().end() || it->second.deleted) {
        continue;
      }
      const RelationshipItem& rel = it->second;
      EffectiveRelationship er;
      er.id = rid;
      er.assoc = rel.assoc;
      er.ends[0] = rel.ends[0] == pattern ? obj : rel.ends[0];
      er.ends[1] = rel.ends[1] == pattern ? obj : rel.ends[1];
      er.inherited = true;
      er.pattern = pattern;
      out.push_back(er);
    }
  }
  return out;
}

Result<core::Value> PatternManager::EffectiveValue(
    ObjectId obj, std::string_view role) const {
  auto own = db_->SubObjects(obj, role);
  if (!own.empty()) {
    SEED_ASSIGN_OR_RETURN(const ObjectItem* item, db_->GetObject(own[0]));
    return item->value;
  }
  for (ObjectId pattern : PatternsOf(obj)) {
    auto projected = db_->SubObjects(pattern, role);
    if (!projected.empty()) {
      SEED_ASSIGN_OR_RETURN(const ObjectItem* item,
                            db_->GetObject(projected[0]));
      return item->value;
    }
  }
  return Status::NotFound("no effective sub-object in role '" +
                          std::string(role) + "'");
}

Status PatternManager::SetValueInContext(ObjectId obj, std::string_view role,
                                         core::Value value) {
  auto own = db_->SubObjects(obj, role);
  if (!own.empty()) {
    return db_->SetValue(own[0], std::move(value));
  }
  for (ObjectId pattern : PatternsOf(obj)) {
    if (!db_->SubObjects(pattern, role).empty()) {
      return Status::FailedPrecondition(
          "role '" + std::string(role) + "' of '" + db_->FullName(obj) +
          "' is inherited from pattern '" + db_->FullName(pattern) +
          "'; pattern information can only be updated in the pattern "
          "itself");
    }
  }
  return Status::NotFound("no effective sub-object in role '" +
                          std::string(role) + "'");
}

void PatternManager::EncodeTo(Encoder* enc) const {
  enc->PutVarint(edge_count_);
  for (const auto& [inheritor, patterns] : patterns_of_) {
    for (ObjectId pattern : patterns) {
      enc->PutU64(inheritor.raw());
      enc->PutU64(pattern.raw());
    }
  }
}

Status PatternManager::DecodeFrom(Decoder* dec) {
  patterns_of_.clear();
  inheritors_of_.clear();
  edge_count_ = 0;
  SEED_ASSIGN_OR_RETURN(std::uint64_t n, dec->GetVarint());
  for (std::uint64_t i = 0; i < n; ++i) {
    SEED_ASSIGN_OR_RETURN(std::uint64_t inheritor_raw, dec->GetU64());
    SEED_ASSIGN_OR_RETURN(std::uint64_t pattern_raw, dec->GetU64());
    patterns_of_[ObjectId(inheritor_raw)].push_back(ObjectId(pattern_raw));
    inheritors_of_[ObjectId(pattern_raw)].push_back(ObjectId(inheritor_raw));
    ++edge_count_;
  }
  return Status::OK();
}

}  // namespace seed::pattern
