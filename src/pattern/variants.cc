#include "pattern/variants.h"

#include <algorithm>

#include "common/macros.h"

namespace seed::pattern {

Status VariantFamily::AddCommonObject(ObjectId obj) {
  auto item = pm_->database()->GetObject(obj);
  if (!item.ok()) return item.status();
  if ((*item)->is_pattern) {
    return Status::FailedPrecondition(
        "common part objects must be ordinary items");
  }
  if (std::find(common_.begin(), common_.end(), obj) != common_.end()) {
    return Status::AlreadyExists("object already in the common part");
  }
  common_.push_back(obj);
  return Status::OK();
}

Result<ObjectId> VariantFamily::CreateConnector(
    const std::string& connector_name, ClassId cls, AssociationId assoc,
    int connector_role, ObjectId common_obj) {
  if (connector_role != 0 && connector_role != 1) {
    return Status::InvalidArgument("connector_role must be 0 or 1");
  }
  if (std::find(common_.begin(), common_.end(), common_obj) ==
      common_.end()) {
    return Status::FailedPrecondition(
        "connector must attach to a registered common-part object");
  }
  core::Database* db = pm_->database();
  core::CreateOptions pattern_opts;
  pattern_opts.pattern = true;
  SEED_ASSIGN_OR_RETURN(ObjectId connector,
                        db->CreateObject(cls, connector_name, pattern_opts));
  ObjectId end0 = connector_role == 0 ? connector : common_obj;
  ObjectId end1 = connector_role == 0 ? common_obj : connector;
  auto rel = db->CreateRelationship(assoc, end0, end1, pattern_opts);
  if (!rel.ok()) {
    // Roll the connector object back so a failed wiring leaves no debris.
    (void)db->DeleteObject(connector);
    return rel.status();
  }
  connectors_.push_back(connector);
  return connector;
}

Status VariantFamily::AddVariant(const std::string& variant_name,
                                 const std::vector<ObjectId>& members) {
  if (variants_.count(variant_name) != 0) {
    return Status::AlreadyExists("variant '" + variant_name +
                                 "' already exists");
  }
  // Establish all inherits-relationships; roll back on first failure so the
  // family is never half-wired.
  std::vector<std::pair<ObjectId, ObjectId>> established;
  for (ObjectId member : members) {
    for (ObjectId connector : connectors_) {
      Status s = pm_->Inherit(member, connector);
      if (!s.ok()) {
        for (auto& [m, c] : established) (void)pm_->Disinherit(m, c);
        return s.WithContext("variant '" + variant_name + "'");
      }
      established.emplace_back(member, connector);
    }
  }
  variants_[variant_name] = members;
  return Status::OK();
}

Status VariantFamily::RemoveVariant(const std::string& variant_name) {
  auto it = variants_.find(variant_name);
  if (it == variants_.end()) {
    return Status::NotFound("variant '" + variant_name + "'");
  }
  for (ObjectId member : it->second) {
    for (ObjectId connector : connectors_) {
      (void)pm_->Disinherit(member, connector);
    }
  }
  variants_.erase(it);
  return Status::OK();
}

std::vector<std::string> VariantFamily::VariantNames() const {
  std::vector<std::string> out;
  for (const auto& [name, members] : variants_) out.push_back(name);
  return out;
}

Result<std::vector<ObjectId>> VariantFamily::MembersOf(
    const std::string& variant_name) const {
  auto it = variants_.find(variant_name);
  if (it == variants_.end()) {
    return Status::NotFound("variant '" + variant_name + "'");
  }
  return it->second;
}

std::vector<EffectiveRelationship> VariantFamily::SharedRelationshipsOf(
    ObjectId member) const {
  std::vector<EffectiveRelationship> out;
  for (const EffectiveRelationship& er : pm_->EffectiveRelationships(member)) {
    if (!er.inherited) continue;
    if (std::find(connectors_.begin(), connectors_.end(), er.pattern) !=
        connectors_.end()) {
      out.push_back(er);
    }
  }
  return out;
}

}  // namespace seed::pattern
