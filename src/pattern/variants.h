// Variant families (paper, Fig. 5).
//
// "We define a variants family to be some sets of objects and relationships
// that have a part of their information in common, but differ in some other
// parts." The common part and the variant parts are ordinary items; the
// connections between them are *pattern relationships* that every variant
// inherits, so pattern semantics guarantee that all variant parts have the
// same relationships to the common part.
//
// Variants differ from alternatives: alternatives are coexisting versions
// of the database (seed_version); variants are coexisting data with a
// shared common part.

#ifndef SEED_PATTERN_VARIANTS_H_
#define SEED_PATTERN_VARIANTS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "pattern/pattern_manager.h"

namespace seed::pattern {

class VariantFamily {
 public:
  /// A family is identified by name and built on a PatternManager.
  VariantFamily(std::string name, PatternManager* pm)
      : name_(std::move(name)), pm_(pm) {}

  const std::string& name() const { return name_; }

  // --- Common part -----------------------------------------------------------

  /// Registers an ordinary object as part of the family's common part.
  Status AddCommonObject(ObjectId obj);
  const std::vector<ObjectId>& common_part() const { return common_; }

  /// Creates a connector: a pattern object of `cls` plus a pattern
  /// relationship of `assoc` between the connector (filling
  /// `connector_role`, 0 or 1) and `common_obj` (filling the other role).
  /// Every variant member inheriting the connector then shares an
  /// identical relationship to the common part (paper: PO1/PR1, PO2/PR2).
  Result<ObjectId> CreateConnector(const std::string& connector_name,
                                   ClassId cls, AssociationId assoc,
                                   int connector_role, ObjectId common_obj);

  const std::vector<ObjectId>& connectors() const { return connectors_; }

  // --- Variants --------------------------------------------------------------

  /// Declares a variant: every root object of the variant part inherits
  /// every connector of the family. Fails atomically: if some member
  /// cannot inherit a connector (deferred consistency check), previously
  /// established inherits-relationships of this call are rolled back.
  Status AddVariant(const std::string& variant_name,
                    const std::vector<ObjectId>& members);

  Status RemoveVariant(const std::string& variant_name);

  std::vector<std::string> VariantNames() const;
  Result<std::vector<ObjectId>> MembersOf(
      const std::string& variant_name) const;
  size_t num_variants() const { return variants_.size(); }

  /// The relationships a member shares with the common part through the
  /// family's connectors (all inherited).
  std::vector<EffectiveRelationship> SharedRelationshipsOf(
      ObjectId member) const;

 private:
  std::string name_;
  PatternManager* pm_;
  std::vector<ObjectId> common_;
  std::vector<ObjectId> connectors_;
  std::map<std::string, std::vector<ObjectId>> variants_;
};

}  // namespace seed::pattern

#endif  // SEED_PATTERN_VARIANTS_H_
