#include "storage/buffer_pool.h"

#include "common/macros.h"
#include "obs/metrics.h"

#include <cassert>

namespace seed::storage {

PageGuard::PageGuard(BufferPool* pool, PageId id, Page* page,
                     bool* dirty_flag)
    : pool_(pool), id_(id), page_(page), dirty_flag_(dirty_flag) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      id_(other.id_),
      page_(other.page_),
      dirty_flag_(other.dirty_flag_) {
  other.pool_ = nullptr;
  other.page_ = nullptr;
  other.dirty_flag_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    dirty_flag_ = other.dirty_flag_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.dirty_flag_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    page_ = nullptr;
    dirty_flag_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.reserve(capacity_);
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (const auto& f : frames_) {
    if (f->pin_count > 0) ++n;
  }
  return n;
}

void BufferPool::Unpin(PageId id) {
  auto it = table_.find(id);
  assert(it != table_.end());
  Frame& f = *frames_[it->second];
  assert(f.pin_count > 0);
  --f.pin_count;
  if (f.pin_count == 0 && !f.in_lru) {
    lru_.push_back(it->second);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Result<size_t> BufferPool::GetFreeFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (frames_.size() < capacity_) {
    frames_.push_back(std::make_unique<Frame>());
    return frames_.size() - 1;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames pinned");
  }
  static obs::Counter* pool_evictions =
      obs::MetricsRegistry::Global().GetCounter(
          "storage.bufferpool.evictions.total");
  evictions_.fetch_add(1, std::memory_order_relaxed);
  pool_evictions->Increment();
  size_t idx = lru_.front();
  lru_.pop_front();
  Frame& victim = *frames_[idx];
  victim.in_lru = false;
  if (victim.dirty) {
    SEED_RETURN_IF_ERROR(disk_->WritePage(victim.id, victim.page));
    victim.dirty = false;
  }
  table_.erase(victim.id);
  return idx;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  // The pool's own hit/miss members stay the per-instance view; the
  // registry counters aggregate across every pool in the process.
  static obs::Counter* pool_hits =
      obs::MetricsRegistry::Global().GetCounter(
          "storage.bufferpool.hits.total");
  static obs::Counter* pool_misses =
      obs::MetricsRegistry::Global().GetCounter(
          "storage.bufferpool.misses.total");
  auto it = table_.find(id);
  if (it != table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    pool_hits->Increment();
    Frame& f = *frames_[it->second];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageGuard(this, id, &f.page, &f.dirty);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  pool_misses->Increment();
  SEED_ASSIGN_OR_RETURN(size_t idx, GetFreeFrame());
  Frame& f = *frames_[idx];
  Status s = disk_->ReadPage(id, &f.page);
  if (!s.ok()) {
    free_frames_.push_back(idx);
    return s;
  }
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  table_[id] = idx;
  return PageGuard(this, id, &f.page, &f.dirty);
}

Result<PageGuard> BufferPool::New() {
  SEED_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  SEED_ASSIGN_OR_RETURN(size_t idx, GetFreeFrame());
  Frame& f = *frames_[idx];
  f.id = id;
  f.page.Zero();
  f.pin_count = 1;
  f.dirty = true;
  f.in_lru = false;
  table_[id] = idx;
  return PageGuard(this, id, &f.page, &f.dirty);
}

Status BufferPool::FlushAll() {
  for (auto& fp : frames_) {
    Frame& f = *fp;
    if (f.dirty && f.id.valid()) {
      SEED_RETURN_IF_ERROR(disk_->WritePage(f.id, f.page));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::Checkpoint() {
  SEED_RETURN_IF_ERROR(FlushAll());
  return disk_->Sync();
}

}  // namespace seed::storage
