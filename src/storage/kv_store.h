// KvStore: durable map from u64 keys to byte strings, built from the heap
// file, buffer pool and WAL. This is the persistence substrate the SEED
// engine serializes its schema, items and versions into.
//
// Durability contract: a mutation is recoverable once its WAL append
// returns (immediately durable when opened with sync_on_append=true).
// Checkpoint() flushes all pages, fsyncs the data file and truncates the
// WAL; recovery = last checkpoint state + idempotent WAL replay.
//
// Threading contract (docs/static_analysis.md): the store is internally
// synchronized — every public method serializes on one mutex, so
// concurrent callers (the future multiuser storage path) are safe. The
// underlying BufferPool / HeapFile / Wal stay single-threaded by design;
// their "externally serialized" contract is encoded by guarding the
// owning members with mu_, which a clang -Wthread-safety build enforces.
// Callbacks passed to Scan run under the lock and must not reenter the
// store.

#ifndef SEED_STORAGE_KV_STORE_H_
#define SEED_STORAGE_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/wal.h"

namespace seed::storage {

struct KvStoreOptions {
  /// Buffer pool frames (8 KiB each).
  size_t buffer_pool_pages = 256;
  /// fsync the WAL on every mutation.
  bool sync_on_append = false;
};

class KvStore {
 public:
  KvStore() = default;
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Opens (creating if absent) a store in directory `dir`, which must
  /// exist. Files used: `<dir>/seed.db` and `<dir>/seed.wal`.
  Status Open(const std::string& dir, const KvStoreOptions& options = {})
      SEED_EXCLUDES(mu_);
  Status Close() SEED_EXCLUDES(mu_);

  bool is_open() const SEED_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return disk_ != nullptr;
  }

  Status Put(std::uint64_t key, std::string_view value) SEED_EXCLUDES(mu_);
  Result<std::string> Get(std::uint64_t key) const SEED_EXCLUDES(mu_);
  bool Contains(std::uint64_t key) const SEED_EXCLUDES(mu_);
  Status Delete(std::uint64_t key) SEED_EXCLUDES(mu_);

  /// Iterates all live entries (unspecified order). `fn` runs under the
  /// store's lock: keep it cheap and never call back into this store.
  Status Scan(const std::function<void(std::uint64_t, std::string_view)>& fn)
      const SEED_EXCLUDES(mu_);

  std::uint64_t size() const SEED_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return index_.size();
  }

  /// Flush + fsync + truncate WAL.
  Status Checkpoint() SEED_EXCLUDES(mu_);

  /// Bytes currently queued in the WAL (0 right after a checkpoint).
  Result<std::uint64_t> WalBytes() const SEED_EXCLUDES(mu_);

  /// For observability only: the pool's hit/miss/eviction counters are
  /// atomics and may be sampled without the store's lock; its structural
  /// state must not be touched through this pointer.
  const BufferPool* buffer_pool() const SEED_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return pool_.get();
  }

 private:
  Status OpenImpl(const std::string& dir, const KvStoreOptions& options)
      SEED_REQUIRES(mu_);
  Status CloseLocked() SEED_REQUIRES(mu_);
  Status CheckpointLocked() SEED_REQUIRES(mu_);
  Status ApplyPut(std::uint64_t key, std::string_view value)
      SEED_REQUIRES(mu_);
  Status ApplyDelete(std::uint64_t key) SEED_REQUIRES(mu_);

  /// Serializes all structural state below. BufferPool/HeapFile/Wal are
  /// themselves single-threaded ("externally serialized"); this mutex IS
  /// that external serialization.
  mutable common::Mutex mu_;
  std::unique_ptr<DiskManager> disk_ SEED_GUARDED_BY(mu_);
  std::unique_ptr<BufferPool> pool_ SEED_GUARDED_BY(mu_)
      SEED_PT_GUARDED_BY(mu_);
  std::unique_ptr<HeapFile> heap_ SEED_GUARDED_BY(mu_)
      SEED_PT_GUARDED_BY(mu_);
  std::unique_ptr<Wal> wal_ SEED_GUARDED_BY(mu_) SEED_PT_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, RecordId> index_ SEED_GUARDED_BY(mu_);
};

}  // namespace seed::storage

#endif  // SEED_STORAGE_KV_STORE_H_
