// KvStore: durable map from u64 keys to byte strings, built from the heap
// file, buffer pool and WAL. This is the persistence substrate the SEED
// engine serializes its schema, items and versions into.
//
// Durability contract: a mutation is recoverable once its WAL append
// returns (immediately durable when opened with sync_on_append=true).
// Checkpoint() flushes all pages, fsyncs the data file and truncates the
// WAL; recovery = last checkpoint state + idempotent WAL replay.

#ifndef SEED_STORAGE_KV_STORE_H_
#define SEED_STORAGE_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/wal.h"

namespace seed::storage {

struct KvStoreOptions {
  /// Buffer pool frames (8 KiB each).
  size_t buffer_pool_pages = 256;
  /// fsync the WAL on every mutation.
  bool sync_on_append = false;
};

class KvStore {
 public:
  KvStore() = default;
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Opens (creating if absent) a store in directory `dir`, which must
  /// exist. Files used: `<dir>/seed.db` and `<dir>/seed.wal`.
  Status Open(const std::string& dir, const KvStoreOptions& options = {});
  Status Close();

  bool is_open() const { return disk_ != nullptr; }

  Status Put(std::uint64_t key, std::string_view value);
  Result<std::string> Get(std::uint64_t key) const;
  bool Contains(std::uint64_t key) const;
  Status Delete(std::uint64_t key);

  /// Iterates all live entries (unspecified order).
  Status Scan(
      const std::function<void(std::uint64_t, std::string_view)>& fn) const;

  std::uint64_t size() const { return index_.size(); }

  /// Flush + fsync + truncate WAL.
  Status Checkpoint();

  /// Bytes currently queued in the WAL (0 right after a checkpoint).
  Result<std::uint64_t> WalBytes() const;

  const BufferPool* buffer_pool() const { return pool_.get(); }

 private:
  Status OpenImpl(const std::string& dir, const KvStoreOptions& options);
  Status ApplyPut(std::uint64_t key, std::string_view value);
  Status ApplyDelete(std::uint64_t key);

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<Wal> wal_;
  std::unordered_map<std::uint64_t, RecordId> index_;
};

}  // namespace seed::storage

#endif  // SEED_STORAGE_KV_STORE_H_
