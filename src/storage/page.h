// Fixed-size page abstraction. All SEED files are arrays of 8 KiB pages;
// page 0 of every data file is a file header page (see disk_manager.h).

#ifndef SEED_STORAGE_PAGE_H_
#define SEED_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "common/ids.h"

namespace seed::storage {

inline constexpr size_t kPageSize = 8192;

/// Raw page buffer. Interpretation (slotted, header, ...) is layered on top.
struct Page {
  std::array<std::uint8_t, kPageSize> data;

  Page() { data.fill(0); }

  std::uint8_t* bytes() { return data.data(); }
  const std::uint8_t* bytes() const { return data.data(); }

  void Zero() { data.fill(0); }

  std::uint32_t ReadU32(size_t off) const {
    std::uint32_t v;
    std::memcpy(&v, data.data() + off, sizeof(v));
    return v;
  }
  void WriteU32(size_t off, std::uint32_t v) {
    std::memcpy(data.data() + off, &v, sizeof(v));
  }
  std::uint64_t ReadU64(size_t off) const {
    std::uint64_t v;
    std::memcpy(&v, data.data() + off, sizeof(v));
    return v;
  }
  void WriteU64(size_t off, std::uint64_t v) {
    std::memcpy(data.data() + off, &v, sizeof(v));
  }
};

/// Location of a record inside a heap file.
struct RecordId {
  PageId page;
  std::uint32_t slot = 0;

  bool valid() const { return page.valid(); }
  bool operator==(const RecordId&) const = default;
};

}  // namespace seed::storage

#endif  // SEED_STORAGE_PAGE_H_
