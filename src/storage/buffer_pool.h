// Buffer pool: caches pages in fixed frames with pin counting and LRU
// eviction of unpinned frames. Structural state (frames, LRU, pin counts)
// is single-threaded by design (the paper's SEED is a single-user system;
// the multiuser layer serializes at the server), but the hit/miss/eviction
// tallies are atomic: observability readers (shell `stats`, benches) may
// sample them from another thread without tearing, and they stay exact if
// a future layer shards read traffic. pinned_frames() remains coherent —
// it walks the frames under the same external serialization as Fetch.
//
// The "externally serialized" contract is enforced statically at the
// owner: KvStore guards its pool_ member with SEED_GUARDED_BY(mu_)
// (common/thread_annotations.h), so a clang -Wthread-safety build rejects
// any KvStore path that reaches structural pool state without the store's
// mutex. Standalone pools (tests, benches) stay single-threaded.

#ifndef SEED_STORAGE_BUFFER_POOL_H_
#define SEED_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace seed::storage {

class BufferPool;

/// RAII pin on a buffered page. Unpins (and records dirtiness) on
/// destruction. Movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, Page* page, bool* dirty_flag);
  ~PageGuard();

  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }

  /// Read-only access.
  const Page& page() const { return *page_; }
  /// Mutable access; marks the frame dirty.
  Page& MutablePage() {
    *dirty_flag_ = true;
    return *page_;
  }

  /// Releases the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_;
  Page* page_ = nullptr;
  bool* dirty_flag_ = nullptr;
};

class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory.
  BufferPool(DiskManager* disk, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches `id` into the pool (reading from disk on miss) and pins it.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a new page on disk, pins it, and returns it zero-filled.
  Result<PageGuard> New();

  /// Writes all dirty frames back to disk (does not evict, does not fsync).
  Status FlushAll();

  /// FlushAll + fsync.
  Status Checkpoint();

  size_t capacity() const { return capacity_; }
  std::uint64_t hit_count() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t miss_count() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Unpinned-frame evictions (LRU victims written back if dirty).
  std::uint64_t eviction_count() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t pinned_frames() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageId id;
    Page page;
    int pin_count = 0;
    bool dirty = false;
    /// Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id);
  /// Returns a free frame index, evicting an unpinned frame if needed.
  Result<size_t> GetFreeFrame();

  DiskManager* disk_;
  size_t capacity_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_map<PageId, size_t> table_;  // page id -> frame index
  std::list<size_t> lru_;                     // unpinned frames, LRU at front
  std::vector<size_t> free_frames_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace seed::storage

#endif  // SEED_STORAGE_BUFFER_POOL_H_
