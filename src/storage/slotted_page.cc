#include "storage/slotted_page.h"

#include <algorithm>
#include <cstring>

namespace seed::storage {

void SlottedPage::Init() {
  page_->Zero();
  set_slot_count(0);
  set_free_data_offset(kPageSize);
  set_next_page(PageId());
}

size_t SlottedPage::ContiguousFree() const {
  size_t dir_end = kHeaderSize + slot_count() * kSlotSize;
  size_t data_start = free_data_offset();
  return data_start > dir_end ? data_start - dir_end : 0;
}

std::optional<std::uint32_t> SlottedPage::FindFreeSlot() const {
  for (std::uint32_t s = 0; s < slot_count(); ++s) {
    if (GetRecordOffset(s) == 0) return s;
  }
  return std::nullopt;
}

bool SlottedPage::IsLive(std::uint32_t slot) const {
  return slot < slot_count() && GetRecordOffset(slot) != 0;
}

std::vector<std::uint32_t> SlottedPage::LiveSlots() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t s = 0; s < slot_count(); ++s) {
    if (GetRecordOffset(s) != 0) out.push_back(s);
  }
  return out;
}

size_t SlottedPage::LiveBytes() const {
  size_t total = 0;
  for (std::uint32_t s = 0; s < slot_count(); ++s) {
    if (GetRecordOffset(s) != 0) total += GetRecordSize(s);
  }
  return total;
}

size_t SlottedPage::FreeSpaceForInsert() const {
  // After a hypothetical compaction, the data region holds exactly the live
  // bytes; a new record may also need a new slot entry unless one is free.
  size_t dir_bytes = kHeaderSize + slot_count() * kSlotSize;
  size_t live = LiveBytes();
  size_t used = dir_bytes + live;
  if (used >= kPageSize) return 0;
  size_t avail = kPageSize - used;
  if (!FindFreeSlot().has_value()) {
    if (avail < kSlotSize) return 0;
    avail -= kSlotSize;
  }
  return avail;
}

void SlottedPage::Compact() {
  // Collect live records (copying payloads out, since we rewrite in place).
  struct Rec {
    std::uint32_t slot;
    std::vector<std::uint8_t> data;
  };
  std::vector<Rec> live;
  for (std::uint32_t s = 0; s < slot_count(); ++s) {
    std::uint32_t off = GetRecordOffset(s);
    if (off == 0) continue;
    std::uint32_t size = GetRecordSize(s);
    Rec r;
    r.slot = s;
    r.data.assign(page_->bytes() + off, page_->bytes() + off + size);
    live.push_back(std::move(r));
  }
  std::uint32_t cursor = kPageSize;
  for (const Rec& r : live) {
    cursor -= static_cast<std::uint32_t>(r.data.size());
    std::memcpy(page_->bytes() + cursor, r.data.data(), r.data.size());
    SetSlot(r.slot, cursor, static_cast<std::uint32_t>(r.data.size()));
  }
  set_free_data_offset(cursor);
}

Result<std::uint32_t> SlottedPage::Insert(std::string_view record) {
  std::optional<std::uint32_t> reuse = FindFreeSlot();
  size_t need = record.size() + (reuse ? 0 : kSlotSize);
  if (ContiguousFree() < need) {
    if (FreeSpaceForInsert() < record.size()) {
      return Status::ResourceExhausted("record does not fit in page");
    }
    Compact();
    if (ContiguousFree() < need) {
      return Status::ResourceExhausted("record does not fit in page");
    }
  }
  std::uint32_t slot;
  if (reuse) {
    slot = *reuse;
  } else {
    slot = slot_count();
    set_slot_count(slot + 1);
  }
  std::uint32_t off =
      free_data_offset() - static_cast<std::uint32_t>(record.size());
  std::memcpy(page_->bytes() + off, record.data(), record.size());
  set_free_data_offset(off);
  SetSlot(slot, off, static_cast<std::uint32_t>(record.size()));
  return slot;
}

Result<std::string_view> SlottedPage::Get(std::uint32_t slot) const {
  if (!IsLive(slot)) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  return std::string_view(
      reinterpret_cast<const char*>(page_->bytes() + GetRecordOffset(slot)),
      GetRecordSize(slot));
}

Status SlottedPage::Replace(std::uint32_t slot, std::string_view record) {
  if (!IsLive(slot)) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  std::uint32_t old_size = GetRecordSize(slot);
  if (record.size() <= old_size) {
    // Shrink in place at the old offset.
    std::uint32_t off = GetRecordOffset(slot);
    std::memcpy(page_->bytes() + off, record.data(), record.size());
    SetSlot(slot, off, static_cast<std::uint32_t>(record.size()));
    return Status::OK();
  }
  // Grow: free the old payload, then place the new one.
  SetSlot(slot, 0, 0);
  if (ContiguousFree() < record.size()) {
    size_t dir_bytes = kHeaderSize + slot_count() * kSlotSize;
    size_t after_compact = kPageSize - dir_bytes - LiveBytes();
    if (after_compact < record.size()) {
      // Restore the old slot so the caller's record is not lost.
      Compact();
      // Old payload bytes are gone from the data region; re-insert is the
      // caller's job. Mark as failed without restoring (caller holds data).
      return Status::ResourceExhausted("replacement record does not fit");
    }
    Compact();
  }
  std::uint32_t off =
      free_data_offset() - static_cast<std::uint32_t>(record.size());
  std::memcpy(page_->bytes() + off, record.data(), record.size());
  set_free_data_offset(off);
  SetSlot(slot, off, static_cast<std::uint32_t>(record.size()));
  return Status::OK();
}

Status SlottedPage::Delete(std::uint32_t slot) {
  if (!IsLive(slot)) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  SetSlot(slot, 0, 0);
  // Trim trailing free slots so the directory can shrink.
  std::uint32_t count = slot_count();
  while (count > 0 && GetRecordOffset(count - 1) == 0) --count;
  set_slot_count(count);
  return Status::OK();
}

}  // namespace seed::storage
