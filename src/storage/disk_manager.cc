#include "storage/disk_manager.h"

#include "common/macros.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace seed::storage {

namespace {
constexpr std::uint64_t kMagic = 0x5EEDDA7AF11E0001ull;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}
}  // namespace

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status DiskManager::Open(const std::string& path) {
  if (fd_ >= 0) return Status::FailedPrecondition("disk manager already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return Status::IoError(Errno("open " + path));
  path_ = path;

  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IoError(Errno("lseek " + path));
  if (size == 0) {
    // Fresh file: write header page 0.
    Page header;
    header.WriteU64(0, kMagic);
    num_pages_ = 1;
    header.WriteU64(8, num_pages_);
    if (::pwrite(fd_, header.bytes(), kPageSize, 0) !=
        static_cast<ssize_t>(kPageSize)) {
      return Status::IoError(Errno("write header " + path));
    }
    return Status::OK();
  }
  if (size % kPageSize != 0) {
    return Status::Corruption("data file size " + std::to_string(size) +
                              " is not a multiple of the page size");
  }
  Page header;
  if (::pread(fd_, header.bytes(), kPageSize, 0) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("read header " + path));
  }
  if (header.ReadU64(0) != kMagic) {
    return Status::Corruption("bad magic in data file " + path);
  }
  num_pages_ = static_cast<std::uint64_t>(size) / kPageSize;
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ < 0) return Status::OK();
  SEED_RETURN_IF_ERROR(Sync());
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IoError(Errno("close " + path_));
  }
  fd_ = -1;
  return Status::OK();
}

Status DiskManager::CheckId(PageId id) const {
  // Page 0 (the header/superblock page) is directly addressable here even
  // though PageId(0) serves as the "no page" sentinel elsewhere.
  if (id.raw() >= num_pages_) {
    return Status::InvalidArgument("page id " + std::to_string(id.raw()) +
                                   " out of range (num_pages=" +
                                   std::to_string(num_pages_) + ")");
  }
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  if (fd_ < 0) return Status::FailedPrecondition("disk manager not open");
  PageId id(num_pages_);
  Page zero;
  if (::pwrite(fd_, zero.bytes(), kPageSize,
               static_cast<off_t>(id.raw() * kPageSize)) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("extend " + path_));
  }
  ++num_pages_;
  // Persist the watermark in the header page.
  Page header;
  if (::pread(fd_, header.bytes(), kPageSize, 0) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("read header " + path_));
  }
  header.WriteU64(8, num_pages_);
  if (::pwrite(fd_, header.bytes(), kPageSize, 0) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("update header " + path_));
  }
  return id;
}

Status DiskManager::ReadPage(PageId id, Page* out) {
  if (fd_ < 0) return Status::FailedPrecondition("disk manager not open");
  SEED_RETURN_IF_ERROR(CheckId(id));
  ssize_t n = ::pread(fd_, out->bytes(), kPageSize,
                      static_cast<off_t>(id.raw() * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("read page " + std::to_string(id.raw())));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  if (fd_ < 0) return Status::FailedPrecondition("disk manager not open");
  SEED_RETURN_IF_ERROR(CheckId(id));
  ssize_t n = ::pwrite(fd_, page.bytes(), kPageSize,
                       static_cast<off_t>(id.raw() * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("write page " + std::to_string(id.raw())));
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("disk manager not open");
  if (::fsync(fd_) != 0) return Status::IoError(Errno("fsync " + path_));
  return Status::OK();
}

}  // namespace seed::storage
