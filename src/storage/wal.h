// Write-ahead log with logical redo records.
//
// The KvStore logs every mutation (Put/Delete) before applying it to the
// heap file. Recovery replays the log onto the last checkpointed heap
// state; both operations are idempotent, so replay is safe even when some
// dirty pages reached disk between checkpoints.
//
// On-disk format, per record:
//   [u32 payload_len][u64 fnv1a64(payload)][payload bytes]
// payload:
//   [u8 op]  1 = Put, 2 = Delete
//   [varint key]
//   [string value]          (Put only)
// A truncated or checksum-failing tail terminates replay (torn final write
// from a crash); everything before it is applied.
//
// Threading: the Wal is single-threaded ("externally serialized"); its
// owner serializes access — KvStore encodes this statically by guarding
// its wal_ member with SEED_GUARDED_BY(mu_), checked by the clang
// -Wthread-safety build. The append counters it feeds are atomics.

#ifndef SEED_STORAGE_WAL_H_
#define SEED_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace seed::storage {

enum class WalOp : std::uint8_t { kPut = 1, kDelete = 2 };

struct WalRecord {
  WalOp op;
  std::uint64_t key;
  std::string value;  // empty for kDelete
};

class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (or creates) the log at `path` for appending.
  Status Open(const std::string& path, bool sync_on_append);
  Status Close();

  Status AppendPut(std::uint64_t key, std::string_view value);
  Status AppendDelete(std::uint64_t key);

  /// Truncates the log to empty (after a successful checkpoint).
  Status Truncate();

  Status Sync();

  /// Replays all intact records in order. Stops silently at a torn tail.
  Status Replay(const std::function<Status(const WalRecord&)>& apply);

  /// Bytes currently in the log.
  Result<std::uint64_t> SizeBytes() const;

  const std::string& path() const { return path_; }

 private:
  Status Append(const WalRecord& rec);

  int fd_ = -1;
  std::string path_;
  bool sync_on_append_ = false;
};

}  // namespace seed::storage

#endif  // SEED_STORAGE_WAL_H_
