// Heap file: an unordered collection of variable-length records spread over
// a chain of slotted pages, addressed by RecordId {page, slot}.
//
// The chain's first page id is the caller's to remember (the KvStore keeps
// it in its superblock). Free-space information is cached in memory and
// rebuilt on open by walking the chain.

#ifndef SEED_STORAGE_HEAP_FILE_H_
#define SEED_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace seed::storage {

class HeapFile {
 public:
  explicit HeapFile(BufferPool* pool) : pool_(pool) {}

  /// Creates a fresh heap file; returns the id of its first page.
  Result<PageId> Create();

  /// Opens an existing heap file whose chain starts at `first_page`.
  Status Open(PageId first_page);

  PageId first_page() const { return first_page_; }
  size_t num_pages() const { return pages_.size(); }

  /// Inserts a record, growing the chain if necessary. Records larger than
  /// a page's capacity are rejected (SEED items are small; large values are
  /// the schema designer's problem, as in 1986).
  Result<RecordId> Insert(std::string_view record);

  /// Reads a record into an owned string.
  Result<std::string> Get(RecordId rid) const;

  /// Updates a record. The record may move; the returned RecordId is the
  /// new location (equal to `rid` when the update fit in place).
  Result<RecordId> Update(RecordId rid, std::string_view record);

  Status Delete(RecordId rid);

  /// Invokes `fn(rid, record)` for every live record. Iteration order is
  /// page-chain order, then slot order.
  Status Scan(
      const std::function<void(RecordId, std::string_view)>& fn) const;

  /// Total live records (O(pages) scan of slot directories).
  Result<std::uint64_t> CountRecords() const;

 private:
  /// Largest payload a single empty page can hold.
  static size_t MaxRecordSize();

  Result<PageId> AppendPage();

  BufferPool* pool_;
  PageId first_page_;
  std::vector<PageId> pages_;          // chain order
  std::vector<size_t> free_space_;     // cached FreeSpaceForInsert per page
};

}  // namespace seed::storage

#endif  // SEED_STORAGE_HEAP_FILE_H_
