#include "storage/kv_store.h"

#include "common/coding.h"
#include "common/macros.h"

namespace seed::storage {

namespace {
// Offset in the disk manager's header page where the heap file's first
// page id is stored (bytes 0..16 hold the magic and page watermark).
constexpr size_t kSuperblockHeapRootOffset = 16;

std::string EncodeEntry(std::uint64_t key, std::string_view value) {
  Encoder enc;
  enc.PutVarint(key);
  enc.PutString(value);
  return std::string(reinterpret_cast<const char*>(enc.bytes().data()),
                     enc.size());
}

Status DecodeEntry(std::string_view record, std::uint64_t* key,
                   std::string* value) {
  Decoder dec(record.data(), record.size());
  SEED_ASSIGN_OR_RETURN(*key, dec.GetVarint());
  SEED_ASSIGN_OR_RETURN(*value, dec.GetString());
  return Status::OK();
}
}  // namespace

KvStore::~KvStore() {
  common::MutexLock lock(mu_);
  if (disk_ != nullptr) {
    (void)CloseLocked();  // errors are lost in a destructor
  }
}

Status KvStore::Open(const std::string& dir, const KvStoreOptions& options) {
  common::MutexLock lock(mu_);
  if (disk_ != nullptr) {
    return Status::FailedPrecondition("KvStore already open");
  }
  Status s = OpenImpl(dir, options);
  if (!s.ok()) {
    // Leave no half-initialized state behind: a failed Open must look like
    // a store that was never opened.
    wal_.reset();
    heap_.reset();
    pool_.reset();
    disk_.reset();
    index_.clear();
  }
  return s;
}

Status KvStore::OpenImpl(const std::string& dir,
                         const KvStoreOptions& options) {
  disk_ = std::make_unique<DiskManager>();
  SEED_RETURN_IF_ERROR(disk_->Open(dir + "/seed.db"));
  pool_ = std::make_unique<BufferPool>(disk_.get(), options.buffer_pool_pages);
  heap_ = std::make_unique<HeapFile>(pool_.get());

  // The header page's superblock slot tells us whether a heap exists.
  Page header;
  SEED_RETURN_IF_ERROR(disk_->ReadPage(PageId(0), &header));
  PageId heap_root(header.ReadU64(kSuperblockHeapRootOffset));
  if (heap_root.valid()) {
    SEED_RETURN_IF_ERROR(heap_->Open(heap_root));
    SEED_RETURN_IF_ERROR(
        heap_->Scan([this](RecordId rid, std::string_view record)
                        SEED_REQUIRES(mu_) {
                          std::uint64_t key = 0;
                          std::string value;
                          if (DecodeEntry(record, &key, &value).ok()) {
                            index_[key] = rid;
                          }
                        }));
  } else {
    SEED_ASSIGN_OR_RETURN(heap_root, heap_->Create());
    header.WriteU64(kSuperblockHeapRootOffset, heap_root.raw());
    SEED_RETURN_IF_ERROR(disk_->WritePage(PageId(0), header));
    SEED_RETURN_IF_ERROR(disk_->Sync());
  }

  wal_ = std::make_unique<Wal>();
  SEED_RETURN_IF_ERROR(
      wal_->Open(dir + "/seed.wal", options.sync_on_append));
  // Redo: replay the tail of the log onto the checkpointed heap state.
  SEED_RETURN_IF_ERROR(
      wal_->Replay([this](const WalRecord& rec) SEED_REQUIRES(mu_) {
        if (rec.op == WalOp::kPut) return ApplyPut(rec.key, rec.value);
        Status s = ApplyDelete(rec.key);
        if (s.IsNotFound()) return Status::OK();  // idempotent replay
        return s;
      }));
  return Status::OK();
}

Status KvStore::Close() {
  common::MutexLock lock(mu_);
  if (disk_ == nullptr) return Status::OK();
  return CloseLocked();
}

Status KvStore::CloseLocked() {
  Status s = CheckpointLocked();
  if (wal_) {
    Status ws = wal_->Close();
    if (s.ok()) s = ws;
  }
  if (disk_) {
    Status ds = disk_->Close();
    if (s.ok()) s = ds;
  }
  wal_.reset();
  heap_.reset();
  pool_.reset();
  disk_.reset();
  index_.clear();
  return s;
}

Status KvStore::ApplyPut(std::uint64_t key, std::string_view value) {
  std::string record = EncodeEntry(key, value);
  auto it = index_.find(key);
  if (it == index_.end()) {
    SEED_ASSIGN_OR_RETURN(RecordId rid, heap_->Insert(record));
    index_[key] = rid;
    return Status::OK();
  }
  SEED_ASSIGN_OR_RETURN(RecordId rid, heap_->Update(it->second, record));
  it->second = rid;
  return Status::OK();
}

Status KvStore::ApplyDelete(std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  SEED_RETURN_IF_ERROR(heap_->Delete(it->second));
  index_.erase(it);
  return Status::OK();
}

Status KvStore::Put(std::uint64_t key, std::string_view value) {
  common::MutexLock lock(mu_);
  if (disk_ == nullptr) return Status::FailedPrecondition("KvStore not open");
  SEED_RETURN_IF_ERROR(wal_->AppendPut(key, value));
  return ApplyPut(key, value);
}

Status KvStore::Delete(std::uint64_t key) {
  common::MutexLock lock(mu_);
  if (disk_ == nullptr) return Status::FailedPrecondition("KvStore not open");
  if (index_.find(key) == index_.end()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  SEED_RETURN_IF_ERROR(wal_->AppendDelete(key));
  return ApplyDelete(key);
}

Result<std::string> KvStore::Get(std::uint64_t key) const {
  common::MutexLock lock(mu_);
  if (disk_ == nullptr) return Status::FailedPrecondition("KvStore not open");
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  SEED_ASSIGN_OR_RETURN(std::string record, heap_->Get(it->second));
  std::uint64_t stored_key = 0;
  std::string value;
  SEED_RETURN_IF_ERROR(DecodeEntry(record, &stored_key, &value));
  if (stored_key != key) {
    return Status::Corruption("index points at record for key " +
                              std::to_string(stored_key) + ", expected " +
                              std::to_string(key));
  }
  return value;
}

bool KvStore::Contains(std::uint64_t key) const {
  common::MutexLock lock(mu_);
  return index_.find(key) != index_.end();
}

Status KvStore::Scan(
    const std::function<void(std::uint64_t, std::string_view)>& fn) const {
  common::MutexLock lock(mu_);
  if (disk_ == nullptr) return Status::FailedPrecondition("KvStore not open");
  return heap_->Scan([&fn](RecordId, std::string_view record) {
    std::uint64_t key = 0;
    std::string value;
    if (DecodeEntry(record, &key, &value).ok()) fn(key, value);
  });
}

Status KvStore::Checkpoint() {
  common::MutexLock lock(mu_);
  if (disk_ == nullptr) return Status::FailedPrecondition("KvStore not open");
  return CheckpointLocked();
}

Status KvStore::CheckpointLocked() {
  SEED_RETURN_IF_ERROR(pool_->Checkpoint());
  return wal_->Truncate();
}

Result<std::uint64_t> KvStore::WalBytes() const {
  common::MutexLock lock(mu_);
  if (disk_ == nullptr) return Status::FailedPrecondition("KvStore not open");
  return wal_->SizeBytes();
}

}  // namespace seed::storage
