// Slotted-page layout for variable-length records.
//
// Layout:
//   [0..4)    slot_count        u32
//   [4..8)    free_data_offset  u32   start of the used data region
//   [8..16)   next_page         u64   raw PageId of the next page in a chain
//   [16..)    slot directory, 8 bytes per slot: {offset u32, size u32}
//   ...free space...
//   [free_data_offset..kPageSize)  record payloads, growing downward
//
// A slot with offset == 0 is free (record offsets are always >= header size,
// so 0 is an unambiguous sentinel). Deleting a record frees its slot; the
// slot may be reused by a later insert. Fragmented space is reclaimed by
// Compact(), which Insert/Replace call automatically when contiguous space
// is insufficient but total free space suffices.

#ifndef SEED_STORAGE_SLOTTED_PAGE_H_
#define SEED_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/page.h"

namespace seed::storage {

/// Mutating view over a Page buffer. Does not own the page.
class SlottedPage {
 public:
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kSlotSize = 8;

  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats a fresh page (zero slots, empty data region).
  void Init();

  std::uint32_t slot_count() const { return page_->ReadU32(0); }
  PageId next_page() const { return PageId(page_->ReadU64(8)); }
  void set_next_page(PageId id) { page_->WriteU64(8, id.raw()); }

  /// Largest record insertable right now (after a potential compaction).
  size_t FreeSpaceForInsert() const;

  /// Inserts a record; returns its slot, or kResourceExhausted if it does
  /// not fit even after compaction.
  Result<std::uint32_t> Insert(std::string_view record);

  /// Reads the record in `slot`.
  Result<std::string_view> Get(std::uint32_t slot) const;

  /// Replaces the record in `slot` in place (slot number is stable).
  /// Fails with kResourceExhausted if the new payload does not fit.
  Status Replace(std::uint32_t slot, std::string_view record);

  /// Frees `slot`.
  Status Delete(std::uint32_t slot);

  /// True if `slot` currently holds a record.
  bool IsLive(std::uint32_t slot) const;

  /// All live slot numbers, ascending.
  std::vector<std::uint32_t> LiveSlots() const;

  /// Sum of live record payload sizes.
  size_t LiveBytes() const;

  /// Rewrites the data region to remove fragmentation.
  void Compact();

 private:
  std::uint32_t SlotOffset(std::uint32_t slot) const {
    return static_cast<std::uint32_t>(kHeaderSize + slot * kSlotSize);
  }
  std::uint32_t GetRecordOffset(std::uint32_t slot) const {
    return page_->ReadU32(SlotOffset(slot));
  }
  std::uint32_t GetRecordSize(std::uint32_t slot) const {
    return page_->ReadU32(SlotOffset(slot) + 4);
  }
  void SetSlot(std::uint32_t slot, std::uint32_t offset, std::uint32_t size) {
    page_->WriteU32(SlotOffset(slot), offset);
    page_->WriteU32(SlotOffset(slot) + 4, size);
  }
  std::uint32_t free_data_offset() const { return page_->ReadU32(4); }
  void set_free_data_offset(std::uint32_t v) { page_->WriteU32(4, v); }
  void set_slot_count(std::uint32_t v) { page_->WriteU32(0, v); }

  /// Contiguous gap between the slot directory and the data region.
  size_t ContiguousFree() const;

  /// Finds a free slot to reuse, if any.
  std::optional<std::uint32_t> FindFreeSlot() const;

  Page* page_;
};

}  // namespace seed::storage

#endif  // SEED_STORAGE_SLOTTED_PAGE_H_
