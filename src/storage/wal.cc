#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/macros.h"
#include "obs/metrics.h"

namespace seed::storage {

namespace {
std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}
}  // namespace

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::Open(const std::string& path, bool sync_on_append) {
  if (fd_ >= 0) return Status::FailedPrecondition("WAL already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return Status::IoError(Errno("open WAL " + path));
  path_ = path;
  sync_on_append_ = sync_on_append;
  return Status::OK();
}

Status Wal::Close() {
  if (fd_ < 0) return Status::OK();
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IoError(Errno("close WAL " + path_));
  }
  fd_ = -1;
  return Status::OK();
}

Status Wal::Append(const WalRecord& rec) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL not open");
  Encoder payload;
  payload.PutU8(static_cast<std::uint8_t>(rec.op));
  payload.PutVarint(rec.key);
  if (rec.op == WalOp::kPut) payload.PutString(rec.value);

  Encoder frame;
  frame.PutU32(static_cast<std::uint32_t>(payload.size()));
  frame.PutU64(Fnv1a64(payload.bytes().data(), payload.size()));
  frame.PutRaw(payload.bytes().data(), payload.size());

  const auto& bytes = frame.bytes();
  ssize_t n = ::write(fd_, bytes.data(), bytes.size());
  if (n != static_cast<ssize_t>(bytes.size())) {
    return Status::IoError(Errno("append WAL " + path_));
  }
  static obs::Counter* appends =
      obs::MetricsRegistry::Global().GetCounter("storage.wal.appends.total");
  static obs::Counter* appended_bytes =
      obs::MetricsRegistry::Global().GetCounter("storage.wal.appended.bytes");
  appends->Increment();
  appended_bytes->Increment(bytes.size());
  if (sync_on_append_) return Sync();
  return Status::OK();
}

Status Wal::AppendPut(std::uint64_t key, std::string_view value) {
  return Append(WalRecord{WalOp::kPut, key, std::string(value)});
}

Status Wal::AppendDelete(std::uint64_t key) {
  return Append(WalRecord{WalOp::kDelete, key, {}});
}

Status Wal::Truncate() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError(Errno("truncate WAL " + path_));
  }
  return Sync();
}

Status Wal::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL not open");
  if (::fsync(fd_) != 0) return Status::IoError(Errno("fsync WAL " + path_));
  static obs::Counter* syncs =
      obs::MetricsRegistry::Global().GetCounter("storage.wal.syncs.total");
  syncs->Increment();
  return Status::OK();
}

Result<std::uint64_t> Wal::SizeBytes() const {
  if (fd_ < 0) return Status::FailedPrecondition("WAL not open");
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IoError(Errno("lseek WAL " + path_));
  return static_cast<std::uint64_t>(size);
}

Status Wal::Replay(const std::function<Status(const WalRecord&)>& apply) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL not open");
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return Status::IoError(Errno("lseek WAL " + path_));
  std::vector<std::uint8_t> buf(static_cast<size_t>(end));
  if (end > 0) {
    ssize_t n = ::pread(fd_, buf.data(), buf.size(), 0);
    if (n != end) return Status::IoError(Errno("read WAL " + path_));
  }
  Decoder dec(buf.data(), buf.size());
  while (!dec.done()) {
    auto len = dec.GetU32();
    if (!len.ok()) break;  // torn tail
    auto checksum = dec.GetU64();
    if (!checksum.ok()) break;
    if (dec.remaining() < *len) break;
    // Slice out the payload for checksum verification.
    size_t offset = buf.size() - dec.remaining();
    const std::uint8_t* payload = buf.data() + offset;
    if (Fnv1a64(payload, *len) != *checksum) break;  // torn/corrupt tail
    Decoder body(payload, *len);
    auto op = body.GetU8();
    auto key = body.GetVarint();
    if (!op.ok() || !key.ok()) break;
    WalRecord rec;
    rec.key = *key;
    if (*op == static_cast<std::uint8_t>(WalOp::kPut)) {
      rec.op = WalOp::kPut;
      auto value = body.GetString();
      if (!value.ok()) break;
      rec.value = std::move(*value);
    } else if (*op == static_cast<std::uint8_t>(WalOp::kDelete)) {
      rec.op = WalOp::kDelete;
    } else {
      break;  // unknown op: treat as corrupt tail
    }
    SEED_RETURN_IF_ERROR(apply(rec));
    SEED_RETURN_IF_ERROR(dec.Skip(*len));
  }
  return Status::OK();
}

}  // namespace seed::storage
