// File-backed page storage. A DiskManager owns one data file, which is an
// array of kPageSize pages. PageId n maps to byte offset n * kPageSize.
// PageId 0 is reserved as invalid; the file therefore starts with a dummy
// header page that stores a magic number and the allocation watermark.

#ifndef SEED_STORAGE_DISK_MANAGER_H_
#define SEED_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/page.h"

namespace seed::storage {

class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (or creates) the data file at `path`.
  Status Open(const std::string& path);
  Status Close();

  bool is_open() const { return fd_ >= 0; }

  /// Allocates a fresh page at the end of the file; its contents are zeroed.
  Result<PageId> AllocatePage();

  Status ReadPage(PageId id, Page* out);
  Status WritePage(PageId id, const Page& page);

  /// fsync the data file.
  Status Sync();

  /// Number of allocated pages, including the reserved header page 0.
  std::uint64_t num_pages() const { return num_pages_; }

  const std::string& path() const { return path_; }

 private:
  Status CheckId(PageId id) const;

  int fd_ = -1;
  std::string path_;
  std::uint64_t num_pages_ = 0;
};

}  // namespace seed::storage

#endif  // SEED_STORAGE_DISK_MANAGER_H_
