#include "storage/heap_file.h"

#include "common/macros.h"
#include "storage/slotted_page.h"

namespace seed::storage {

size_t HeapFile::MaxRecordSize() {
  return kPageSize - SlottedPage::kHeaderSize - SlottedPage::kSlotSize;
}

Result<PageId> HeapFile::Create() {
  SEED_ASSIGN_OR_RETURN(PageGuard guard, pool_->New());
  SlottedPage sp(&guard.MutablePage());
  sp.Init();
  first_page_ = guard.id();
  pages_ = {first_page_};
  free_space_ = {sp.FreeSpaceForInsert()};
  return first_page_;
}

Status HeapFile::Open(PageId first_page) {
  pages_.clear();
  free_space_.clear();
  first_page_ = first_page;
  PageId cur = first_page;
  while (cur.valid()) {
    SEED_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cur));
    // SlottedPage needs a mutable Page; we only read. Const-cast is safe
    // because we do not mark the frame dirty.
    SlottedPage sp(const_cast<Page*>(&guard.page()));
    pages_.push_back(cur);
    free_space_.push_back(sp.FreeSpaceForInsert());
    cur = sp.next_page();
  }
  if (pages_.empty()) {
    return Status::InvalidArgument("heap file chain is empty");
  }
  return Status::OK();
}

Result<PageId> HeapFile::AppendPage() {
  SEED_ASSIGN_OR_RETURN(PageGuard guard, pool_->New());
  SlottedPage sp(&guard.MutablePage());
  sp.Init();
  PageId new_id = guard.id();
  guard.Release();

  PageId last = pages_.back();
  SEED_ASSIGN_OR_RETURN(PageGuard last_guard, pool_->Fetch(last));
  SlottedPage last_sp(&last_guard.MutablePage());
  last_sp.set_next_page(new_id);

  pages_.push_back(new_id);
  free_space_.push_back(kPageSize - SlottedPage::kHeaderSize -
                        SlottedPage::kSlotSize);
  return new_id;
}

Result<RecordId> HeapFile::Insert(std::string_view record) {
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument(
        "record of " + std::to_string(record.size()) +
        " bytes exceeds page capacity");
  }
  // First fit over the cached free-space table, starting from the tail
  // (recent pages are most likely to have room).
  for (size_t i = pages_.size(); i-- > 0;) {
    if (free_space_[i] < record.size()) continue;
    SEED_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(pages_[i]));
    SlottedPage sp(&guard.MutablePage());
    auto slot = sp.Insert(record);
    if (slot.ok()) {
      free_space_[i] = sp.FreeSpaceForInsert();
      return RecordId{pages_[i], *slot};
    }
    // Stale cache entry; refresh and keep looking.
    free_space_[i] = sp.FreeSpaceForInsert();
  }
  SEED_ASSIGN_OR_RETURN(PageId new_page, AppendPage());
  SEED_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(new_page));
  SlottedPage sp(&guard.MutablePage());
  SEED_ASSIGN_OR_RETURN(std::uint32_t slot, sp.Insert(record));
  free_space_.back() = sp.FreeSpaceForInsert();
  return RecordId{new_page, slot};
}

Result<std::string> HeapFile::Get(RecordId rid) const {
  SEED_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  SlottedPage sp(const_cast<Page*>(&guard.page()));
  SEED_ASSIGN_OR_RETURN(std::string_view rec, sp.Get(rid.slot));
  return std::string(rec);
}

Result<RecordId> HeapFile::Update(RecordId rid, std::string_view record) {
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument(
        "record of " + std::to_string(record.size()) +
        " bytes exceeds page capacity");
  }
  size_t page_idx = pages_.size();
  for (size_t i = 0; i < pages_.size(); ++i) {
    if (pages_[i] == rid.page) {
      page_idx = i;
      break;
    }
  }
  if (page_idx == pages_.size()) {
    return Status::InvalidArgument("record id page not in heap file");
  }
  {
    SEED_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
    SlottedPage sp(&guard.MutablePage());
    if (!sp.IsLive(rid.slot)) {
      return Status::NotFound("record to update does not exist");
    }
    Status s = sp.Replace(rid.slot, record);
    free_space_[page_idx] = sp.FreeSpaceForInsert();
    if (s.ok()) return rid;
    if (!s.IsResourceExhausted()) return s;
    // Replace freed the slot but could not fit the new payload; fall
    // through and insert elsewhere.
  }
  return Insert(record);
}

Status HeapFile::Delete(RecordId rid) {
  size_t page_idx = pages_.size();
  for (size_t i = 0; i < pages_.size(); ++i) {
    if (pages_[i] == rid.page) {
      page_idx = i;
      break;
    }
  }
  if (page_idx == pages_.size()) {
    return Status::InvalidArgument("record id page not in heap file");
  }
  SEED_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  SlottedPage sp(&guard.MutablePage());
  SEED_RETURN_IF_ERROR(sp.Delete(rid.slot));
  free_space_[page_idx] = sp.FreeSpaceForInsert();
  return Status::OK();
}

Status HeapFile::Scan(
    const std::function<void(RecordId, std::string_view)>& fn) const {
  for (PageId pid : pages_) {
    SEED_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(pid));
    SlottedPage sp(const_cast<Page*>(&guard.page()));
    for (std::uint32_t slot : sp.LiveSlots()) {
      auto rec = sp.Get(slot);
      if (!rec.ok()) return rec.status();
      fn(RecordId{pid, slot}, *rec);
    }
  }
  return Status::OK();
}

Result<std::uint64_t> HeapFile::CountRecords() const {
  std::uint64_t n = 0;
  SEED_RETURN_IF_ERROR(
      Scan([&n](RecordId, std::string_view) { ++n; }));
  return n;
}

}  // namespace seed::storage
