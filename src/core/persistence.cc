#include "core/persistence.h"

#include "common/macros.h"
#include "core/item_codec.h"
#include "schema/schema_io.h"

namespace seed::core {

Status Persistence::SaveFull(const Database& db, storage::KvStore* kv) {
  Encoder schema_enc;
  schema::SchemaCodec::Encode(*db.schema(), &schema_enc);
  SEED_RETURN_IF_ERROR(kv->Put(
      MetaKey(0),
      std::string_view(
          reinterpret_cast<const char*>(schema_enc.bytes().data()),
          schema_enc.size())));
  for (const auto& [id, obj] : db.objects_raw()) {
    SEED_RETURN_IF_ERROR(
        kv->Put(ObjectKey(id), ItemCodec::EncodeObjectToString(obj)));
  }
  for (const auto& [id, rel] : db.relationships_raw()) {
    SEED_RETURN_IF_ERROR(kv->Put(RelationshipKey(id),
                                 ItemCodec::EncodeRelationshipToString(rel)));
  }
  return kv->Checkpoint();
}

Status Persistence::SaveChanges(Database* db, storage::KvStore* kv) {
  const auto& objects = db->objects_raw();
  for (ObjectId id : db->changed_objects()) {
    auto it = objects.find(id);
    if (it == objects.end()) continue;  // vetoed creation, nothing to save
    SEED_RETURN_IF_ERROR(
        kv->Put(ObjectKey(id), ItemCodec::EncodeObjectToString(it->second)));
  }
  const auto& rels = db->relationships_raw();
  for (RelationshipId id : db->changed_relationships()) {
    auto it = rels.find(id);
    if (it == rels.end()) continue;
    SEED_RETURN_IF_ERROR(kv->Put(
        RelationshipKey(id),
        ItemCodec::EncodeRelationshipToString(it->second)));
  }
  db->ClearChangeTracking();
  return Status::OK();
}

Result<std::unique_ptr<Database>> Persistence::Load(storage::KvStore* kv) {
  SEED_ASSIGN_OR_RETURN(std::string schema_bytes, kv->Get(MetaKey(0)));
  Decoder schema_dec(schema_bytes.data(), schema_bytes.size());
  SEED_ASSIGN_OR_RETURN(schema::SchemaPtr schema,
                        schema::SchemaCodec::Decode(&schema_dec));
  auto db = std::make_unique<Database>(schema);

  Status item_status = Status::OK();
  SEED_RETURN_IF_ERROR(
      kv->Scan([&db, &item_status](std::uint64_t key, std::string_view bytes) {
        if (!item_status.ok()) return;
        std::uint64_t tag = key >> 56;
        if (tag == 2) {
          auto obj = ItemCodec::DecodeObjectFromString(bytes);
          if (!obj.ok()) {
            item_status = obj.status();
            return;
          }
          db->RestoreObject(std::move(*obj));
        } else if (tag == 3) {
          auto rel = ItemCodec::DecodeRelationshipFromString(bytes);
          if (!rel.ok()) {
            item_status = rel.status();
            return;
          }
          db->RestoreRelationship(std::move(*rel));
        }
      }));
  SEED_RETURN_IF_ERROR(item_status);
  db->RebuildIndexes();
  db->ClearChangeTracking();
  return db;
}

}  // namespace seed::core
