#include "core/persistence.h"

#include "common/macros.h"
#include "core/item_codec.h"
#include "schema/schema_io.h"

namespace seed::core {

namespace {

Status PutBlob(storage::KvStore* kv, std::uint64_t key, const Encoder& enc) {
  return kv->Put(key, std::string_view(reinterpret_cast<const char*>(
                                           enc.bytes().data()),
                                       enc.size()));
}

Status SaveSchema(const Database& db, storage::KvStore* kv) {
  Encoder enc;
  schema::SchemaCodec::Encode(*db.schema(), &enc);
  return PutBlob(kv, Persistence::MetaKey(0), enc);
}

Status SaveIndexSpecs(const Database& db, storage::KvStore* kv) {
  Encoder enc;
  db.attribute_indexes().EncodeSpecs(&enc);
  return PutBlob(kv, Persistence::MetaKey(2), enc);
}

}  // namespace

Status Persistence::SaveFull(const Database& db, storage::KvStore* kv) {
  SEED_RETURN_IF_ERROR(SaveSchema(db, kv));
  SEED_RETURN_IF_ERROR(SaveIndexSpecs(db, kv));
  for (const auto& [id, obj] : db.objects_raw()) {
    SEED_RETURN_IF_ERROR(
        kv->Put(ObjectKey(id), ItemCodec::EncodeObjectToString(obj)));
  }
  for (const auto& [id, rel] : db.relationships_raw()) {
    SEED_RETURN_IF_ERROR(kv->Put(RelationshipKey(id),
                                 ItemCodec::EncodeRelationshipToString(rel)));
  }
  return kv->Checkpoint();
}

Status Persistence::SaveChanges(Database* db, storage::KvStore* kv) {
  // The schema may have evolved since the last SaveFull (MigrateToSchema);
  // items and index specs written below are only interpretable under the
  // schema they were created against, so keep the stored one current.
  SEED_RETURN_IF_ERROR(SaveSchema(*db, kv));
  const auto& objects = db->objects_raw();
  for (ObjectId id : db->changed_objects()) {
    auto it = objects.find(id);
    if (it == objects.end()) continue;  // vetoed creation, nothing to save
    SEED_RETURN_IF_ERROR(
        kv->Put(ObjectKey(id), ItemCodec::EncodeObjectToString(it->second)));
  }
  const auto& rels = db->relationships_raw();
  for (RelationshipId id : db->changed_relationships()) {
    auto it = rels.find(id);
    if (it == rels.end()) continue;
    SEED_RETURN_IF_ERROR(kv->Put(
        RelationshipKey(id),
        ItemCodec::EncodeRelationshipToString(it->second)));
  }
  if (db->attribute_indexes().specs_dirty()) {
    SEED_RETURN_IF_ERROR(SaveIndexSpecs(*db, kv));
    db->attribute_indexes_mutable().ClearSpecsDirty();
  }
  db->ClearChangeTracking();
  return Status::OK();
}

Result<std::unique_ptr<Database>> Persistence::Load(storage::KvStore* kv) {
  SEED_ASSIGN_OR_RETURN(std::string schema_bytes, kv->Get(MetaKey(0)));
  Decoder schema_dec(schema_bytes.data(), schema_bytes.size());
  SEED_ASSIGN_OR_RETURN(schema::SchemaPtr schema,
                        schema::SchemaCodec::Decode(&schema_dec));
  auto db = std::make_unique<Database>(schema);

  // Index definitions (absent in pre-index stores). Entries are derived
  // by the RebuildIndexes() below once the items are restored. A spec
  // that no longer validates against the stored schema is dropped rather
  // than making the whole store unloadable.
  if (auto spec_bytes = kv->Get(MetaKey(2)); spec_bytes.ok()) {
    Decoder spec_dec(spec_bytes->data(), spec_bytes->size());
    SEED_ASSIGN_OR_RETURN(auto specs,
                          index::IndexManager::DecodeSpecs(&spec_dec));
    for (index::IndexSpec& spec : specs) {
      (void)db->attribute_indexes_mutable().CreateIndex(*schema,
                                                        std::move(spec));
    }
  } else if (!spec_bytes.status().IsNotFound()) {
    // Absence means a pre-index store; any other failure must not be
    // mistaken for "no indexes" (the next save would erase the catalog).
    return spec_bytes.status();
  }

  Status item_status = Status::OK();
  SEED_RETURN_IF_ERROR(
      kv->Scan([&db, &item_status](std::uint64_t key, std::string_view bytes) {
        if (!item_status.ok()) return;
        std::uint64_t tag = key >> 56;
        if (tag == 2) {
          auto obj = ItemCodec::DecodeObjectFromString(bytes);
          if (!obj.ok()) {
            item_status = obj.status();
            return;
          }
          db->RestoreObject(std::move(*obj));
        } else if (tag == 3) {
          auto rel = ItemCodec::DecodeRelationshipFromString(bytes);
          if (!rel.ok()) {
            item_status = rel.status();
            return;
          }
          db->RestoreRelationship(std::move(*rel));
        }
      }));
  SEED_RETURN_IF_ERROR(item_status);
  db->RebuildIndexes();
  db->ClearChangeTracking();
  db->attribute_indexes_mutable().ClearSpecsDirty();
  return db;
}

}  // namespace seed::core
