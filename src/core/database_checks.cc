// Consistency and completeness checking.
//
// Consistency rules (class membership, maximum cardinalities, ACYCLIC,
// attached procedures, value types, duplicates, names) run incrementally
// inside every mutating operation; AuditConsistency() re-derives all of
// them from scratch for tests, recovery and schema migration.
//
// Completeness rules (minimum cardinalities, covering conditions,
// undefined values) are evaluated only by the explicit CheckCompleteness()
// operations and never veto an update.

#include <algorithm>

#include "common/macros.h"
#include "core/database.h"

namespace seed::core {

// --- Incremental consistency helpers -----------------------------------------

Status Database::CheckIndependentName(const std::string& name, bool pattern,
                                      ObjectId ignore) const {
  const auto& idx = pattern ? pattern_name_index_ : name_index_;
  auto it = idx.find(name);
  if (it != idx.end() && it->second != ignore) {
    return Status::ConsistencyViolation(
        "name conflict: " + std::string(pattern ? "pattern" : "object") +
        " '" + name + "' already exists");
  }
  return Status::OK();
}

Status Database::CheckValueConforms(const schema::ObjectClass& cls,
                                    const Value& value) const {
  using schema::ValueType;
  if (!value.defined()) return Status::OK();
  if (cls.value_type == ValueType::kNone) {
    return Status::ConsistencyViolation(
        "value type: class '" + cls.full_name + "' carries no value");
  }
  if (value.type() != cls.value_type) {
    return Status::ConsistencyViolation(
        "value type: class '" + cls.full_name + "' wants " +
        std::string(schema::ValueTypeToString(cls.value_type)) + ", got " +
        std::string(schema::ValueTypeToString(value.type())));
  }
  if (cls.value_type == ValueType::kEnum) {
    const std::string& v = value.as_enum();
    if (std::find(cls.enum_values.begin(), cls.enum_values.end(), v) ==
        cls.enum_values.end()) {
      return Status::ConsistencyViolation(
          "value type: '" + v + "' is not an allowed value of enum class '" +
          cls.full_name + "'");
    }
  }
  return Status::OK();
}

size_t Database::CountChildrenOfClass(const std::vector<ObjectId>& children,
                                      ClassId cls) const {
  size_t n = 0;
  for (ObjectId id : children) {
    const ObjectItem& child = objects_.at(id);
    if (!child.deleted && child.cls == cls) ++n;
  }
  return n;
}

std::uint32_t Database::NextChildIndex(const std::vector<ObjectId>& children,
                                       ClassId cls) const {
  std::uint32_t next = 0;
  for (ObjectId id : children) {
    const ObjectItem& child = objects_.at(id);
    if (!child.deleted && child.cls == cls && child.index >= next) {
      next = child.index + 1;
    }
  }
  return next;
}

size_t Database::CountParticipation(ObjectId obj, AssociationId assoc,
                                    int role) const {
  auto it = rels_by_object_.find(obj);
  if (it == rels_by_object_.end()) return 0;
  std::unordered_set<std::uint64_t> family;
  for (AssociationId a : schema_->AssociationFamily(assoc)) {
    family.insert(a.raw());
  }
  size_t n = 0;
  for (RelationshipId rid : it->second) {
    const RelationshipItem& rel = relationships_.at(rid);
    if (rel.is_pattern) continue;
    if (family.count(rel.assoc.raw()) == 0) continue;
    if (rel.ends[role] == obj) ++n;
  }
  return n;
}

Status Database::CheckParticipationMaxima(AssociationId assoc, ObjectId end0,
                                          ObjectId end1) const {
  // A relationship of `assoc` also counts as a relationship of every
  // generalization ancestor (paper Fig. 3: a Read is an Access), so the
  // maxima of the whole chain apply.
  ObjectId ends[2] = {end0, end1};
  for (AssociationId a : schema_->GeneralizationChain(assoc)) {
    SEED_ASSIGN_OR_RETURN(const schema::Association* info,
                          schema_->GetAssociation(a));
    for (int i = 0; i < 2; ++i) {
      const schema::Role& role = info->roles[i];
      if (role.cardinality.unlimited_max()) continue;
      size_t count = CountParticipation(ends[i], a, i);
      if (count + 1 > role.cardinality.max) {
        return Status::ConsistencyViolation(
            "maximum role participation: '" + FullName(ends[i]) +
            "' already takes part in " + std::to_string(count) +
            " relationships of '" + info->name + "' as '" + role.name +
            "' (max " + role.cardinality.ToString() + ")");
      }
    }
  }
  return Status::OK();
}

bool Database::DuplicateExists(AssociationId assoc, ObjectId end0,
                               ObjectId end1, RelationshipId ignore) const {
  // Scan end0's own relationship list, not the association extent: an
  // object's degree stays small while an association can hold the whole
  // database (creating n relationships used to cost O(n^2) through this
  // check).
  auto it = rels_by_object_.find(end0);
  if (it == rels_by_object_.end()) return false;
  for (RelationshipId rid : it->second) {
    if (rid == ignore) continue;
    const RelationshipItem& rel = relationships_.at(rid);
    if (!rel.is_pattern && rel.assoc == assoc && rel.ends[0] == end0 &&
        rel.ends[1] == end1) {
      return true;
    }
  }
  return false;
}

bool Database::WouldCreateCycle(AssociationId root, ObjectId from,
                                ObjectId to, RelationshipId ignore) const {
  // Adding edge to->... wait: the new edge is from->to (role0 -> role1).
  // A cycle appears iff `from` is reachable from `to` via existing edges.
  if (from == to) return true;
  std::unordered_set<std::uint64_t> family;
  for (AssociationId a : schema_->AssociationFamily(root)) {
    family.insert(a.raw());
  }
  std::vector<ObjectId> stack{to};
  std::unordered_set<ObjectId> seen{to};
  while (!stack.empty()) {
    ObjectId cur = stack.back();
    stack.pop_back();
    auto it = rels_by_object_.find(cur);
    if (it == rels_by_object_.end()) continue;
    for (RelationshipId rid : it->second) {
      if (rid == ignore) continue;
      const RelationshipItem& rel = relationships_.at(rid);
      if (rel.is_pattern) continue;
      if (family.count(rel.assoc.raw()) == 0) continue;
      if (rel.ends[0] != cur) continue;
      ObjectId next = rel.ends[1];
      if (next == from) return true;
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

Status Database::CheckAcyclicity(AssociationId assoc, ObjectId end0,
                                 ObjectId end1,
                                 RelationshipId ignore) const {
  for (AssociationId a : schema_->GeneralizationChain(assoc)) {
    SEED_ASSIGN_OR_RETURN(const schema::Association* info,
                          schema_->GetAssociation(a));
    if (!info->acyclic) continue;
    if (WouldCreateCycle(a, end0, end1, ignore)) {
      return Status::ConsistencyViolation(
          "ACYCLIC: relationship would close a cycle in association '" +
          info->name + "'");
    }
  }
  return Status::OK();
}

Status Database::RunProcedures(ClassId cls, const UpdateEvent& event) const {
  for (ClassId c : schema_->GeneralizationChain(cls)) {
    auto it = class_procedures_.find(c);
    if (it == class_procedures_.end()) continue;
    for (const AttachedProcedure& proc : it->second) {
      Status s = proc(event);
      if (!s.ok()) {
        return Status::ConsistencyViolation(
            "attached procedure vetoed the update: " + s.message());
      }
    }
  }
  return Status::OK();
}

Status Database::RunProcedures(AssociationId assoc,
                               const UpdateEvent& event) const {
  for (AssociationId a : schema_->GeneralizationChain(assoc)) {
    auto it = assoc_procedures_.find(a);
    if (it == assoc_procedures_.end()) continue;
    for (const AttachedProcedure& proc : it->second) {
      Status s = proc(event);
      if (!s.ok()) {
        return Status::ConsistencyViolation(
            "attached procedure vetoed the update: " + s.message());
      }
    }
  }
  return Status::OK();
}

// --- Full consistency audit --------------------------------------------------

Report Database::AuditConsistency() const {
  Report report;
  auto add = [&report](Rule rule, ObjectId obj, RelationshipId rel,
                       std::string detail) {
    report.violations.push_back(
        Violation{rule, obj, rel, std::move(detail)});
  };

  std::unordered_map<std::string, ObjectId> names;
  for (const auto& [id, obj] : objects_) {
    if (obj.deleted || obj.is_pattern) continue;
    auto cls = schema_->GetClass(obj.cls);
    if (!cls.ok()) {
      add(Rule::kClassMembership, id, RelationshipId(),
          "object '" + FullName(id) + "' has unknown class id " +
              std::to_string(obj.cls.raw()));
      continue;
    }
    if (obj.is_independent()) {
      if ((*cls)->is_dependent()) {
        add(Rule::kClassMembership, id, RelationshipId(),
            "independent object '" + obj.name + "' has dependent class '" +
                (*cls)->full_name + "'");
      }
      auto [it, inserted] = names.emplace(obj.name, id);
      if (!inserted) {
        add(Rule::kNameConflict, id, RelationshipId(),
            "duplicate independent name '" + obj.name + "'");
      }
    } else if (obj.parent_kind == ParentKind::kObject) {
      auto parent_it = objects_.find(obj.parent_object);
      if (parent_it == objects_.end() || parent_it->second.deleted) {
        add(Rule::kClassMembership, id, RelationshipId(),
            "sub-object '" + FullName(id) + "' has no live parent");
      } else {
        auto resolved = schema_->ResolveSubObjectRole(
            parent_it->second.cls, (*cls)->name);
        if (!resolved.ok() || *resolved != obj.cls) {
          add(Rule::kClassMembership, id, RelationshipId(),
              "sub-object '" + FullName(id) +
                  "' is not a legal role of its parent's class");
        }
      }
    } else {
      auto parent_it = relationships_.find(obj.parent_relationship);
      if (parent_it == relationships_.end() || parent_it->second.deleted) {
        add(Rule::kClassMembership, id, RelationshipId(),
            "attribute '" + FullName(id) + "' has no live relationship");
      } else {
        auto resolved = schema_->ResolveSubObjectRole(
            parent_it->second.assoc, (*cls)->name);
        if (!resolved.ok() || *resolved != obj.cls) {
          add(Rule::kClassMembership, id, RelationshipId(),
              "attribute '" + FullName(id) +
                  "' is not a legal role of its relationship's association");
        }
      }
    }
    // Maximum cardinality over each dependent role.
    for (ClassId dep :
         schema_->EffectiveDependentClassesOf(obj.cls)) {
      auto dep_cls = schema_->GetClass(dep);
      if (!(*dep_cls)->cardinality.unlimited_max()) {
        size_t count = CountChildrenOfClass(obj.children, dep);
        if (count > (*dep_cls)->cardinality.max) {
          add(Rule::kMaxCardinality, id, RelationshipId(),
              "object '" + FullName(id) + "' has " + std::to_string(count) +
                  " sub-objects in role '" + (*dep_cls)->full_name +
                  "' (max " + (*dep_cls)->cardinality.ToString() + ")");
        }
      }
    }
    Status vs = CheckValueConforms(**cls, obj.value);
    if (!vs.ok()) {
      add(Rule::kValueType, id, RelationshipId(), vs.message());
    }
  }

  for (const auto& [id, rel] : relationships_) {
    if (rel.deleted || rel.is_pattern) continue;
    auto assoc = schema_->GetAssociation(rel.assoc);
    if (!assoc.ok()) {
      add(Rule::kClassMembership, ObjectId(), id,
          "relationship has unknown association id " +
              std::to_string(rel.assoc.raw()));
      continue;
    }
    for (int i = 0; i < 2; ++i) {
      auto end_it = objects_.find(rel.ends[i]);
      if (end_it == objects_.end() || end_it->second.deleted) {
        add(Rule::kClassMembership, ObjectId(), id,
            "relationship of '" + (*assoc)->name + "' has a dead end");
        continue;
      }
      if (end_it->second.is_pattern) {
        add(Rule::kPatternSeparation, ObjectId(), id,
            "normal relationship of '" + (*assoc)->name +
                "' connects a pattern object");
      }
      if (!schema_->IsSameOrSpecializationOf(end_it->second.cls,
                                             (*assoc)->roles[i].target)) {
        add(Rule::kClassMembership, ObjectId(), id,
            "participant '" + FullName(rel.ends[i]) +
                "' does not conform to role '" + (*assoc)->roles[i].name +
                "' of '" + (*assoc)->name + "'");
      }
    }
    if (DuplicateExists(rel.assoc, rel.ends[0], rel.ends[1], id)) {
      add(Rule::kDuplicateRelationship, ObjectId(), id,
          "duplicate relationship of '" + (*assoc)->name + "'");
    }
  }

  // Maximum role participation, per association and live object.
  for (AssociationId a : schema_->AllAssociationIds()) {
    auto info = schema_->GetAssociation(a);
    for (int i = 0; i < 2; ++i) {
      const schema::Role& role = (*info)->roles[i];
      if (role.cardinality.unlimited_max()) continue;
      for (ObjectId obj : ObjectsOfClass(role.target, true)) {
        size_t count = CountParticipation(obj, a, i);
        if (count > role.cardinality.max) {
          add(Rule::kRoleMaxParticipation, obj, RelationshipId(),
              "object '" + FullName(obj) + "' takes part in " +
                  std::to_string(count) + " relationships of '" +
                  (*info)->name + "' as '" + role.name + "' (max " +
                  role.cardinality.ToString() + ")");
        }
      }
    }
  }

  // ACYCLIC conditions: full graph check per acyclic association family.
  for (AssociationId a : schema_->AllAssociationIds()) {
    auto info = schema_->GetAssociation(a);
    if (!(*info)->acyclic) continue;
    // Kahn's algorithm over the family graph.
    std::unordered_set<std::uint64_t> family;
    for (AssociationId f : schema_->AssociationFamily(a)) {
      family.insert(f.raw());
    }
    std::unordered_map<ObjectId, size_t> indegree;
    std::unordered_map<ObjectId, std::vector<ObjectId>> adj;
    size_t num_edges = 0;
    for (const auto& [rid, rel] : relationships_) {
      if (rel.deleted || rel.is_pattern) continue;
      if (family.count(rel.assoc.raw()) == 0) continue;
      adj[rel.ends[0]].push_back(rel.ends[1]);
      ++indegree[rel.ends[1]];
      indegree.emplace(rel.ends[0], indegree[rel.ends[0]]);
      ++num_edges;
    }
    std::vector<ObjectId> queue;
    for (const auto& [node, deg] : indegree) {
      if (deg == 0) queue.push_back(node);
    }
    size_t visited_edges = 0;
    while (!queue.empty()) {
      ObjectId cur = queue.back();
      queue.pop_back();
      auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (ObjectId next : it->second) {
        ++visited_edges;
        if (--indegree[next] == 0) queue.push_back(next);
      }
    }
    if (visited_edges != num_edges) {
      add(Rule::kAcyclic, ObjectId(), RelationshipId(),
          "association '" + (*info)->name + "' contains a cycle");
    }
  }
  return report;
}

// --- Completeness ------------------------------------------------------------

void Database::CheckObjectCompleteness(const ObjectItem& obj,
                                       Report* report) const {
  auto cls = schema_->GetClass(obj.cls);
  if (!cls.ok()) return;
  // Minimum cardinalities of every effective dependent role.
  for (ClassId dep : schema_->EffectiveDependentClassesOf(obj.cls)) {
    auto dep_cls = schema_->GetClass(dep);
    if ((*dep_cls)->cardinality.min == 0) continue;
    size_t count = CountChildrenOfClass(obj.children, dep);
    if (count < (*dep_cls)->cardinality.min) {
      report->violations.push_back(Violation{
          Rule::kMinCardinality, obj.id, RelationshipId(),
          "object '" + FullName(obj.id) + "' has " + std::to_string(count) +
              " sub-objects in role '" + (*dep_cls)->full_name + "' (min " +
              (*dep_cls)->cardinality.ToString() + ")"});
    }
  }
  // Covering condition: the instance must finally be specialized.
  if ((*cls)->covering) {
    report->violations.push_back(Violation{
        Rule::kCovering, obj.id, RelationshipId(),
        "object '" + FullName(obj.id) + "' still sits at covering class '" +
            (*cls)->full_name + "' and must be specialized"});
  }
  // Undefined value.
  if ((*cls)->value_type != schema::ValueType::kNone &&
      !obj.value.defined()) {
    report->violations.push_back(Violation{
        Rule::kUndefinedValue, obj.id, RelationshipId(),
        "object '" + FullName(obj.id) + "' of class '" + (*cls)->full_name +
            "' has no value"});
  }
  // Minimum role participation over every association whose role this
  // object's class conforms to.
  for (AssociationId a : schema_->AllAssociationIds()) {
    auto info = schema_->GetAssociation(a);
    for (int i = 0; i < 2; ++i) {
      const schema::Role& role = (*info)->roles[i];
      if (role.cardinality.min == 0) continue;
      if (!schema_->IsSameOrSpecializationOf(obj.cls, role.target)) continue;
      size_t count = CountParticipation(obj.id, a, i);
      if (count < role.cardinality.min) {
        report->violations.push_back(Violation{
            Rule::kRoleMinParticipation, obj.id, RelationshipId(),
            "object '" + FullName(obj.id) + "' takes part in " +
                std::to_string(count) + " relationships of '" +
                (*info)->name + "' as '" + role.name + "' (min " +
                role.cardinality.ToString() + ")"});
      }
    }
  }
}

void Database::CheckRelationshipCompleteness(const RelationshipItem& rel,
                                             Report* report) const {
  auto assoc = schema_->GetAssociation(rel.assoc);
  if (!assoc.ok()) return;
  if ((*assoc)->covering) {
    report->violations.push_back(Violation{
        Rule::kCovering, ObjectId(), rel.id,
        "relationship of covering association '" + (*assoc)->name +
            "' must be specialized"});
  }
  // Minimum cardinalities of attribute roles, over the generalization
  // chain of the association.
  for (AssociationId a : schema_->GeneralizationChain(rel.assoc)) {
    for (ClassId dep : schema_->DependentClassesOf(
             schema::StructuralOwner::OfAssociation(a))) {
      auto dep_cls = schema_->GetClass(dep);
      if ((*dep_cls)->cardinality.min == 0) continue;
      size_t count = CountChildrenOfClass(rel.children, dep);
      if (count < (*dep_cls)->cardinality.min) {
        report->violations.push_back(Violation{
            Rule::kMinCardinality, ObjectId(), rel.id,
            "relationship of '" + (*assoc)->name + "' has " +
                std::to_string(count) + " attributes in role '" +
                (*dep_cls)->full_name + "' (min " +
                (*dep_cls)->cardinality.ToString() + ")"});
      }
    }
  }
}

Report Database::CheckCompleteness() const {
  Report report;
  for (const auto& [id, obj] : objects_) {
    if (obj.deleted || obj.is_pattern) continue;
    CheckObjectCompleteness(obj, &report);
  }
  for (const auto& [id, rel] : relationships_) {
    if (rel.deleted || rel.is_pattern) continue;
    CheckRelationshipCompleteness(rel, &report);
  }
  return report;
}

Report Database::CheckCompleteness(ObjectId root) const {
  Report report;
  auto root_it = objects_.find(root);
  if (root_it == objects_.end() || root_it->second.deleted) return report;
  std::vector<ObjectId> work{root};
  while (!work.empty()) {
    ObjectId oid = work.back();
    work.pop_back();
    const ObjectItem& obj = objects_.at(oid);
    if (obj.deleted || obj.is_pattern) continue;
    CheckObjectCompleteness(obj, &report);
    work.insert(work.end(), obj.children.begin(), obj.children.end());
  }
  return report;
}

}  // namespace seed::core
