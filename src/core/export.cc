#include "core/export.h"

namespace seed::core {

std::string DotExport::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\' || c == '{' || c == '}' || c == '|' ||
        c == '<' || c == '>') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

namespace {

/// Record-label lines for a class's dependent subtree, indented by depth.
void AppendDependentLabel(const schema::Schema& schema, ClassId cls,
                          int depth, std::string* label) {
  auto info = schema.GetClass(cls);
  if (!info.ok()) return;
  const schema::ObjectClass& c = **info;
  *label += "\\n";
  for (int i = 0; i < depth; ++i) *label += "  ";
  *label += c.name + " [" + c.cardinality.ToString() + "]";
  if (c.value_type != schema::ValueType::kNone) {
    *label += " : " + std::string(schema::ValueTypeToString(c.value_type));
  }
  for (ClassId dep :
       schema.DependentClassesOf(schema::StructuralOwner::OfClass(cls))) {
    AppendDependentLabel(schema, dep, depth + 1, label);
  }
}

}  // namespace

std::string DotExport::Schema(const schema::Schema& schema) {
  std::string out = "digraph \"" + Escape(schema.name()) + "\" {\n";
  out += "  node [shape=box];\n";
  for (ClassId cls : schema.AllClassIds()) {
    auto info = schema.GetClass(cls);
    if (!info.ok() || (*info)->is_dependent()) continue;
    std::string label = (*info)->name;
    if ((*info)->covering) label += " (covering)";
    for (ClassId dep : schema.DependentClassesOf(
             schema::StructuralOwner::OfClass(cls))) {
      AppendDependentLabel(schema, dep, 1, &label);
    }
    out += "  c" + std::to_string(cls.raw()) + " [label=\"" +
           Escape(label) + "\"];\n";
    if ((*info)->is_specialized()) {
      out += "  c" + std::to_string(cls.raw()) + " -> c" +
             std::to_string((*info)->generalizes_into.raw()) +
             " [style=dashed, arrowhead=onormal, label=\"is-a\"];\n";
    }
  }
  for (AssociationId assoc : schema.AllAssociationIds()) {
    auto info = schema.GetAssociation(assoc);
    if (!info.ok()) continue;
    const schema::Association& a = **info;
    std::string name = "a" + std::to_string(assoc.raw());
    std::string label = a.name;
    if (a.acyclic) label += "\\nACYCLIC";
    if (a.covering) label += " (covering)";
    for (ClassId dep : schema.DependentClassesOf(
             schema::StructuralOwner::OfAssociation(assoc))) {
      AppendDependentLabel(schema, dep, 1, &label);
    }
    out += "  " + name + " [shape=diamond, label=\"" + Escape(label) +
           "\"];\n";
    for (int i = 0; i < 2; ++i) {
      out += "  " + name + " -> c" +
             std::to_string(a.roles[i].target.raw()) + " [label=\"" +
             Escape(a.roles[i].name) + " " +
             a.roles[i].cardinality.ToString() + "\"];\n";
    }
    if (a.is_specialized()) {
      out += "  " + name + " -> a" +
             std::to_string(a.generalizes_into.raw()) +
             " [style=dashed, arrowhead=onormal, label=\"is-a\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string DotExport::Database(const core::Database& db) {
  std::string out = "digraph seed_database {\n  node [shape=box];\n";
  auto render_root = [&](ObjectId root) {
    auto obj = db.GetObject(root);
    if (!obj.ok()) return;
    auto cls = db.schema()->GetClass((*obj)->cls);
    std::string label =
        (*obj)->name + " : " + (cls.ok() ? (*cls)->name : "?");
    // Sub-object values, one line each (depth-first, limited rendering).
    std::vector<ObjectId> work = db.SubObjects(root);
    while (!work.empty()) {
      ObjectId id = work.back();
      work.pop_back();
      auto sub = db.GetObject(id);
      if (!sub.ok()) continue;
      if ((*sub)->value.defined()) {
        auto sub_cls = db.schema()->GetClass((*sub)->cls);
        label += "\\n" + (sub_cls.ok() ? (*sub_cls)->name : "?") + " = " +
                 (*sub)->value.ToString();
      }
      auto children = db.SubObjects(id);
      work.insert(work.end(), children.begin(), children.end());
    }
    out += "  o" + std::to_string(root.raw()) + " [label=\"" +
           Escape(label) + "\"";
    if ((*obj)->is_pattern) out += ", style=dashed";
    out += "];\n";
  };
  for (ObjectId root : db.AllIndependentObjects()) render_root(root);
  for (ObjectId root : db.AllPatternRoots()) render_root(root);

  db.ForEachRelationship([&](const RelationshipItem& rel) {
    // Only draw edges between independent roots (dependent participants
    // are folded into their root's node).
    auto e0 = db.GetObject(rel.ends[0]);
    auto e1 = db.GetObject(rel.ends[1]);
    if (!e0.ok() || !e1.ok() || !(*e0)->is_independent() ||
        !(*e1)->is_independent()) {
      return;
    }
    auto assoc = db.schema()->GetAssociation(rel.assoc);
    out += "  o" + std::to_string(rel.ends[0].raw()) + " -> o" +
           std::to_string(rel.ends[1].raw()) + " [label=\"" +
           Escape(assoc.ok() ? (*assoc)->name : "?") + "\"";
    if (rel.is_pattern) out += ", style=dashed";
    out += "];\n";
  });
  out += "}\n";
  return out;
}

}  // namespace seed::core
