// Graphviz (DOT) export of schemas and databases.
//
// SPADES — the system SEED was built for — was "a specification and design
// system and its graphical interface" (paper ref [9]); diagram export is
// the natural modern counterpart. Schemas render as the paper's modified
// ER diagrams (boxes for classes, edges for associations and
// generalizations); databases render object/relationship graphs.

#ifndef SEED_CORE_EXPORT_H_
#define SEED_CORE_EXPORT_H_

#include <string>

#include "core/database.h"
#include "schema/schema.h"

namespace seed::core {

class DotExport {
 public:
  /// DOT digraph of the schema: class boxes (dependent classes nested as
  /// record labels), association edges with role/cardinality labels, and
  /// dashed generalization edges.
  static std::string Schema(const schema::Schema& schema);

  /// DOT digraph of the live database: independent objects as nodes
  /// (sub-object values in the label), relationships as edges, pattern
  /// items dashed, inherits-edges omitted (the pattern layer owns them).
  static std::string Database(const core::Database& db);

 private:
  static std::string Escape(const std::string& s);
};

}  // namespace seed::core

#endif  // SEED_CORE_EXPORT_H_
