// Serialization of individual data items. Shared by the persistence layer
// (seed.db records), the version store (delta snapshots) and the multiuser
// layer (checkout/checkin transfer).

#ifndef SEED_CORE_ITEM_CODEC_H_
#define SEED_CORE_ITEM_CODEC_H_

#include <string>

#include "common/coding.h"
#include "common/result.h"
#include "core/items.h"

namespace seed::core {

class ItemCodec {
 public:
  static void Encode(const ObjectItem& obj, Encoder* enc);
  static Result<ObjectItem> DecodeObject(Decoder* dec);

  static void Encode(const RelationshipItem& rel, Encoder* enc);
  static Result<RelationshipItem> DecodeRelationship(Decoder* dec);

  static std::string EncodeObjectToString(const ObjectItem& obj);
  static Result<ObjectItem> DecodeObjectFromString(std::string_view bytes);
  static std::string EncodeRelationshipToString(const RelationshipItem& rel);
  static Result<RelationshipItem> DecodeRelationshipFromString(
      std::string_view bytes);
};

}  // namespace seed::core

#endif  // SEED_CORE_ITEM_CODEC_H_
