// Data items: objects and relationships.
//
// Objects are *independent* (top-level, named) or *dependent* (sub-objects
// owned by an object or by a relationship, named by their role and, for
// multi-valued roles, an index — `Alarms.Text.Body.Keywords[1]`).
//
// Items are tombstoned rather than physically removed (`deleted` flag), as
// the paper's version concept requires, and may be flagged as *patterns*
// (invisible to retrieval and exempt from consistency checks until
// inherited).

#ifndef SEED_CORE_ITEMS_H_
#define SEED_CORE_ITEMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/value.h"

namespace seed::core {

/// What owns a dependent object.
enum class ParentKind : std::uint8_t { kNone = 0, kObject = 1,
                                       kRelationship = 2 };

struct ObjectItem {
  ObjectId id;
  ClassId cls;

  /// Top-level name for independent objects; empty for dependent objects
  /// (their display name is composed from the parent and role).
  std::string name;

  ParentKind parent_kind = ParentKind::kNone;
  ObjectId parent_object;
  RelationshipId parent_relationship;
  /// Position within (parent, dependent class); 0 for single-valued roles.
  std::uint32_t index = 0;

  Value value;

  /// Sub-objects in creation order (includes all classes of children).
  std::vector<ObjectId> children;

  bool is_pattern = false;
  bool deleted = false;

  bool is_independent() const { return parent_kind == ParentKind::kNone; }
};

struct RelationshipItem {
  RelationshipId id;
  AssociationId assoc;
  /// Participants: ends[i] fills roles[i] of the association.
  ObjectId ends[2];

  /// Relationship attributes (dependent objects owned by this relationship).
  std::vector<ObjectId> children;

  bool is_pattern = false;
  bool deleted = false;
};

}  // namespace seed::core

#endif  // SEED_CORE_ITEMS_H_
