#include "core/violation.h"

namespace seed::core {

std::string_view RuleToString(Rule rule) {
  switch (rule) {
    case Rule::kClassMembership:
      return "class membership";
    case Rule::kMaxCardinality:
      return "maximum cardinality";
    case Rule::kRoleMaxParticipation:
      return "maximum role participation";
    case Rule::kAcyclic:
      return "ACYCLIC";
    case Rule::kValueType:
      return "value type";
    case Rule::kDuplicateRelationship:
      return "duplicate relationship";
    case Rule::kNameConflict:
      return "name conflict";
    case Rule::kAttachedProcedure:
      return "attached procedure";
    case Rule::kPatternSeparation:
      return "pattern separation";
    case Rule::kMinCardinality:
      return "minimum cardinality";
    case Rule::kRoleMinParticipation:
      return "minimum role participation";
    case Rule::kCovering:
      return "covering condition";
    case Rule::kUndefinedValue:
      return "undefined value";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::string out(RuleToString(rule));
  out += ": ";
  out += detail;
  return out;
}

std::string Report::ToString() const {
  if (clean()) return "clean";
  std::string out;
  for (const Violation& v : violations) {
    out += v.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace seed::core
