// Durable persistence of a Database through the storage substrate.
//
// Key layout in the KvStore (u64): the top byte is a namespace tag, the low
// 56 bits are the item id. Tag 1 holds metadata: schema bytes at id 0,
// attribute-index definitions at id 2 (id 1 belongs to the version
// layer's state). Tag 2 holds objects, tag 3 relationships. Index
// *entries* are derived data: only the definitions are stored, and Load()
// re-derives the entries while rebuilding the in-memory indexes.
//
// SaveChanges() writes only items touched since the last call (using the
// Database's change tracking), mirroring the paper's "implemented in a
// straightforward manner" persistence while staying incremental.

#ifndef SEED_CORE_PERSISTENCE_H_
#define SEED_CORE_PERSISTENCE_H_

#include <memory>

#include "common/result.h"
#include "core/database.h"
#include "storage/kv_store.h"

namespace seed::core {

class Persistence {
 public:
  /// Writes schema + every item (full save), then checkpoints.
  static Status SaveFull(const Database& db, storage::KvStore* kv);

  /// Writes the current schema, only the changed items, and the
  /// attribute-index catalog when it changed; clears the database's
  /// change tracking. Does not checkpoint (the WAL covers durability).
  static Status SaveChanges(Database* db, storage::KvStore* kv);

  /// Rebuilds a Database from the store. The schema is loaded from the
  /// store itself.
  static Result<std::unique_ptr<Database>> Load(storage::KvStore* kv);

  // Key helpers, exposed for tests.
  static std::uint64_t MetaKey(std::uint64_t id) { return Key(1, id); }
  static std::uint64_t ObjectKey(ObjectId id) { return Key(2, id.raw()); }
  static std::uint64_t RelationshipKey(RelationshipId id) {
    return Key(3, id.raw());
  }

 private:
  static std::uint64_t Key(std::uint64_t tag, std::uint64_t id) {
    return (tag << 56) | (id & 0x00FFFFFFFFFFFFFFull);
  }
};

}  // namespace seed::core

#endif  // SEED_CORE_PERSISTENCE_H_
