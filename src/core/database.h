// Database: SEED's operational interface.
//
// The paper describes a procedural interface providing data creation,
// update, and simple retrieval by name. Every mutating operation runs the
// *consistency* rules derivable from the schema (class/association
// membership, maximum cardinalities, ACYCLIC conditions, attached
// procedures) and is vetoed on violation, so the database is permanently
// consistent. *Completeness* rules (minimum cardinalities, covering
// conditions) are only evaluated by the explicit CheckCompleteness()
// operation and never veto anything — this split is what lets SEED accept
// vague and incomplete information.
//
// Items flagged as patterns bypass consistency checking at creation and are
// invisible to normal retrieval; the pattern layer (seed_pattern) validates
// them when they are inherited.

#ifndef SEED_CORE_DATABASE_H_
#define SEED_CORE_DATABASE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "core/extent_counters.h"
#include "core/items.h"
#include "core/value.h"
#include "core/violation.h"
#include "index/index_manager.h"
#include "schema/schema.h"

namespace seed::core {

/// Mutation kinds, passed to attached procedures.
enum class UpdateKind {
  kCreateObject,
  kCreateSubObject,
  kSetValue,
  kClearValue,
  kRename,
  kDeleteObject,
  kReclassifyObject,
  kCreateRelationship,
  kDeleteRelationship,
  kReclassifyRelationship,
};

class Database;

/// Event handed to attached procedures after the tentative update has been
/// applied; returning a non-OK status vetoes (rolls back) the update.
struct UpdateEvent {
  UpdateKind kind;
  const Database* db;
  ObjectId object;            // primary object, if any
  RelationshipId relationship;  // primary relationship, if any
};

/// Attached procedure (paper: "executed when an item of the corresponding
/// schema element is updated; used to express complex integrity
/// constraints"). Part of the consistency information.
using AttachedProcedure = std::function<Status(const UpdateEvent&)>;

/// Options for item creation.
struct CreateOptions {
  /// Create the item as a pattern: exempt from consistency checks and
  /// invisible to retrieval until inherited.
  bool pattern = false;
};

class Database {
 public:
  explicit Database(schema::SchemaPtr schema);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const schema::SchemaPtr& schema() const { return schema_; }

  /// Process-unique id assigned at construction and carried through
  /// moves. The plan cache keys on it so entries never alias across
  /// databases (every version snapshot is a fresh instance).
  std::uint64_t instance_id() const { return instance_id_; }

  // --- Object creation and update -----------------------------------------

  /// Creates an independent object of `cls` with unique `name`.
  Result<ObjectId> CreateObject(ClassId cls, std::string name,
                                const CreateOptions& opts = {});

  /// Creates a dependent object under `parent` in role `role` (the role
  /// must resolve on the parent's class or a generalization ancestor).
  /// Multi-valued roles get the next free index.
  Result<ObjectId> CreateSubObject(ObjectId parent, std::string_view role);

  /// Creates a relationship attribute (dependent object under a
  /// relationship, paper Fig. 3: `Write.NumberOfWrites`).
  Result<ObjectId> CreateSubObject(RelationshipId parent,
                                   std::string_view role);

  Status SetValue(ObjectId obj, Value value);
  Status ClearValue(ObjectId obj);

  /// Renames an independent object.
  Status Rename(ObjectId obj, std::string new_name);

  /// Deletes an object; cascades to its sub-objects and to all
  /// relationships it participates in. Items are tombstoned, not removed.
  Status DeleteObject(ObjectId obj);

  /// Re-classifies an object within its generalization hierarchy (paper:
  /// moving vague data down — or back up — the hierarchy as knowledge
  /// changes). The object keeps its identity.
  Status Reclassify(ObjectId obj, ClassId new_cls);

  // --- Relationships ---------------------------------------------------------

  /// Creates a relationship of `assoc` with `end0` filling role 0 and
  /// `end1` filling role 1.
  Result<RelationshipId> CreateRelationship(AssociationId assoc,
                                            ObjectId end0, ObjectId end1,
                                            const CreateOptions& opts = {});

  Status DeleteRelationship(RelationshipId rel);

  /// Re-classifies a relationship within the association generalization
  /// hierarchy (paper: specializing an `Access` into a `Write`).
  Status ReclassifyRelationship(RelationshipId rel, AssociationId new_assoc);

  // --- Retrieval -------------------------------------------------------------

  /// Resolves a dotted path (`Alarms.Text.Body.Keywords[1]`) to an object.
  /// Patterns are invisible here.
  Result<ObjectId> FindObjectByName(std::string_view path) const;

  /// Resolves a dotted path among pattern items.
  Result<ObjectId> FindPatternByName(std::string_view path) const;

  Result<const ObjectItem*> GetObject(ObjectId id) const;
  Result<const RelationshipItem*> GetRelationship(RelationshipId id) const;

  /// Composed display name ("Alarms.Text.Body.Keywords[1]").
  std::string FullName(ObjectId id) const;

  /// Live non-pattern objects whose class is `cls` (or a specialization,
  /// when `include_specializations`).
  std::vector<ObjectId> ObjectsOfClass(
      ClassId cls, bool include_specializations = true) const;

  /// Live non-pattern relationships of `assoc` (or specializations).
  std::vector<RelationshipId> RelationshipsOfAssociation(
      AssociationId assoc, bool include_specializations = true) const;

  /// Live relationships `obj` participates in; restricted to the family of
  /// `assoc` when valid, and to `role` when >= 0.
  std::vector<RelationshipId> RelationshipsOf(
      ObjectId obj, AssociationId assoc = AssociationId(),
      int role = -1) const;

  /// Live *pattern* relationships `obj` participates in (the overlay data
  /// the pattern layer projects into inheritor contexts), restricted to the
  /// family of `assoc` when valid.
  std::vector<RelationshipId> PatternRelationshipsOf(
      ObjectId obj, AssociationId assoc = AssociationId()) const;

  /// Live sub-objects of `parent` in `role` (all roles when empty),
  /// ordered by index.
  std::vector<ObjectId> SubObjects(ObjectId parent,
                                   std::string_view role = {}) const;
  std::vector<ObjectId> SubObjects(RelationshipId parent,
                                   std::string_view role = {}) const;

  /// All live non-pattern independent objects.
  std::vector<ObjectId> AllIndependentObjects() const;
  /// All live pattern items (independent roots only).
  std::vector<ObjectId> AllPatternRoots() const;

  void ForEachObject(const std::function<void(const ObjectItem&)>& fn) const;
  void ForEachRelationship(
      const std::function<void(const RelationshipItem&)>& fn) const;

  size_t num_live_objects() const { return live_objects_; }
  size_t num_live_relationships() const { return live_relationships_; }

  // --- Secondary attribute indexes ------------------------------------------

  /// Creates a secondary index over the extent of `spec.cls` keyed by the
  /// objects' own values (`spec.role` empty) or by the values of their
  /// sub-objects in `spec.role` — or, when `spec.assoc` is set, over the
  /// relationships of the association keyed by their attribute sub-objects
  /// in `spec.role` (paper Fig. 3: `Write.NumberOfWrites`). Backfills from
  /// current contents. The index is maintained incrementally through every
  /// mutation path (create, update, delete, reclassify, restore) and
  /// survives save/load. Undefined values are never indexed.
  Status CreateAttributeIndex(index::IndexSpec spec);

  /// Drops every attribute index on exactly (cls, role); an empty `role`
  /// names the own-value index (it is a key, not a wildcard — role-keyed
  /// indexes on the class survive).
  Status DropAttributeIndex(ClassId cls, std::string_view role = {});
  /// Drops every relationship-extent index on (assoc, role). Unlike the
  /// class overload, an empty `role` is a wildcard dropping all of the
  /// association's indexes — relationship indexes always carry a role, so
  /// an own-value reading would never match anything.
  Status DropAttributeIndex(AssociationId assoc, std::string_view role = {});

  /// Read access for the query planner and for stats.
  const index::IndexManager& attribute_indexes() const {
    return attr_indexes_;
  }

  /// Incrementally maintained live-population counts per class extent and
  /// association extent — the planner's cost-model input.
  const ExtentCounters& extent_counters() const { return extent_counters_; }

  /// Trusted mutable access (persistence restores the spec catalog, then
  /// RebuildIndexes() re-derives the entries).
  index::IndexManager& attribute_indexes_mutable() { return attr_indexes_; }

  // --- Checking -------------------------------------------------------------

  /// Full consistency audit over the whole database. Always clean after
  /// any sequence of accepted updates; exposed for tests and recovery.
  Report AuditConsistency() const;

  /// Explicit completeness check (minimum cardinalities, covering
  /// conditions, undefined values). Reports, never vetoes.
  Report CheckCompleteness() const;

  /// Completeness check restricted to one object (and its subtree).
  Report CheckCompleteness(ObjectId root) const;

  // --- Attached procedures ---------------------------------------------------

  void AttachProcedure(ClassId cls, AttachedProcedure proc);
  void AttachProcedure(AssociationId assoc, AttachedProcedure proc);
  void DetachProcedures(ClassId cls);
  void DetachProcedures(AssociationId assoc);

  // --- Change tracking (consumed by the version layer) -----------------------

  /// Object/relationship ids touched (created, updated, deleted) since the
  /// last ClearChangeTracking().
  const std::unordered_set<ObjectId>& changed_objects() const {
    return changed_objects_;
  }
  const std::unordered_set<RelationshipId>& changed_relationships() const {
    return changed_relationships_;
  }
  void ClearChangeTracking();

  // --- Schema evolution ------------------------------------------------------

  /// Swaps in an evolved schema (same element ids for existing elements).
  /// Fails if existing data would become inconsistent under the new schema.
  Status MigrateToSchema(schema::SchemaPtr new_schema);

  // --- Internal access for sibling layers (version, pattern, multiuser) ------

  /// Raw item tables, including tombstones. Read-only.
  const std::map<ObjectId, ObjectItem>& objects_raw() const {
    return objects_;
  }
  const std::map<RelationshipId, RelationshipItem>& relationships_raw()
      const {
    return relationships_;
  }

  /// Restores a full item state (used by version-view materialization and
  /// multiuser check-in). Bypasses consistency checks; callers are trusted
  /// layers that re-audit afterwards.
  void RestoreObject(ObjectItem item);
  void RestoreRelationship(RelationshipItem item);
  /// Re-derives every index after a batch of Restore* calls.
  void RebuildIndexes();

  /// Drops all items and indexes but keeps the schema, attached procedures
  /// and id watermarks (ids are never reused across version selection).
  void ClearContents();

  /// Physically removes an item (trusted; used by the multiuser layer to
  /// roll back a rejected check-in). Call RebuildIndexes() afterwards.
  void EraseObjectTrusted(ObjectId id) { objects_.erase(id); }
  void EraseRelationshipTrusted(RelationshipId id) {
    relationships_.erase(id);
  }

  /// Trusted schema swap without a consistency audit; used by the version
  /// layer when materializing views under historical schema versions.
  void ResetSchemaTrusted(schema::SchemaPtr s) { schema_ = std::move(s); }

  /// Id generators, exposed so persistence can save/restore watermarks.
  IdGenerator<ObjectId>& object_ids() { return object_ids_; }
  IdGenerator<RelationshipId>& relationship_ids() {
    return relationship_ids_;
  }

 private:
  // -- Incremental consistency helpers (database_checks.cc) --
  Status CheckIndependentName(const std::string& name, bool pattern,
                              ObjectId ignore) const;
  Status CheckValueConforms(const schema::ObjectClass& cls,
                            const Value& value) const;
  /// Number of live children of `parent_children` with class `cls`.
  size_t CountChildrenOfClass(const std::vector<ObjectId>& children,
                              ClassId cls) const;
  std::uint32_t NextChildIndex(const std::vector<ObjectId>& children,
                               ClassId cls) const;
  /// Live participation count of `obj` in role `role` over the family of
  /// `assoc` (specializations included), excluding pattern relationships.
  size_t CountParticipation(ObjectId obj, AssociationId assoc,
                            int role) const;
  /// Checks the maximum participation bounds that adding one relationship
  /// of `assoc` with the given ends would have to respect.
  Status CheckParticipationMaxima(AssociationId assoc, ObjectId end0,
                                  ObjectId end1) const;
  /// True if a live non-pattern relationship assoc(end0, end1) exists.
  bool DuplicateExists(AssociationId assoc, ObjectId end0, ObjectId end1,
                       RelationshipId ignore) const;
  /// Would edge end0 -> end1 close a cycle in the family graph of `root`?
  bool WouldCreateCycle(AssociationId root, ObjectId from, ObjectId to,
                        RelationshipId ignore) const;
  /// Runs ACYCLIC checks for every acyclic association in the
  /// generalization chain of `assoc`.
  Status CheckAcyclicity(AssociationId assoc, ObjectId end0, ObjectId end1,
                         RelationshipId ignore) const;
  /// Runs attached procedures for `cls` and its ancestors.
  Status RunProcedures(ClassId cls, const UpdateEvent& event) const;
  Status RunProcedures(AssociationId assoc, const UpdateEvent& event) const;

  // -- Completeness helpers (database_checks.cc) --
  void CheckObjectCompleteness(const ObjectItem& obj, Report* report) const;
  void CheckRelationshipCompleteness(const RelationshipItem& rel,
                                     Report* report) const;

  // -- Index maintenance --
  void IndexObject(const ObjectItem& obj);
  void UnindexObject(const ObjectItem& obj);
  void IndexRelationship(const RelationshipItem& rel);
  void UnindexRelationship(const RelationshipItem& rel);
  /// Class of a relationship end, tombstoned or not (degree statistics
  /// must see the class an end had when the relationship was indexed).
  ClassId EndClass(ObjectId id) const;
  /// Moves the degree statistics of every live non-pattern relationship
  /// end filled by `obj` from `from_cls` to `to_cls` (object reclassify
  /// and its veto rollback).
  void MoveParticipantCounts(ObjectId obj, ClassId from_cls, ClassId to_cls);
  /// Moves both ends' degree statistics of `rel` from `from_assoc` to
  /// `to_assoc` (relationship reclassify and its veto rollback).
  void MoveParticipantCounts(const RelationshipItem& rel,
                             AssociationId from_assoc,
                             AssociationId to_assoc);
  void Touch(ObjectId id) { changed_objects_.insert(id); }
  void Touch(RelationshipId id) { changed_relationships_.insert(id); }
  /// Re-derives the attribute-index entries of `id` (post-mutation hook;
  /// idempotent). The WithParent variant also refreshes the owning parent
  /// when `id` is a dependent sub-object, since the parent's role-keyed
  /// entries derive from its children's values; ParentOf refreshes only
  /// that owner — the owning object, or the owning *relationship* when the
  /// sub-object is a relationship attribute. RefreshRelAttrIndexes is the
  /// relationship-extent hook (create/delete/reclassify/rollback paths).
  void RefreshAttrIndexes(ObjectId id);
  void RefreshAttrIndexesWithParent(ObjectId id);
  void RefreshAttrIndexParentOf(ObjectId id);
  void RefreshRelAttrIndexes(RelationshipId id);

  ObjectItem* MutableObject(ObjectId id);
  RelationshipItem* MutableRelationship(RelationshipId id);

  Result<ObjectId> CreateSubObjectImpl(ParentKind kind, ObjectId pobj,
                                       RelationshipId prel,
                                       std::string_view role);
  Status DeleteObjectImpl(ObjectId id, bool cascade_into_relationships);
  Status DeleteRelationshipImpl(RelationshipId id);

  schema::SchemaPtr schema_;
  std::uint64_t instance_id_ = 0;

  // Ordered maps so scans and serialization are deterministic.
  std::map<ObjectId, ObjectItem> objects_;
  std::map<RelationshipId, RelationshipItem> relationships_;

  IdGenerator<ObjectId> object_ids_;
  IdGenerator<RelationshipId> relationship_ids_;

  // Indexes over live items.
  std::unordered_map<std::string, ObjectId> name_index_;          // normal
  std::unordered_map<std::string, ObjectId> pattern_name_index_;  // patterns
  std::unordered_map<ClassId, std::vector<ObjectId>> by_class_;
  std::unordered_map<AssociationId, std::vector<RelationshipId>> by_assoc_;
  std::unordered_map<ObjectId, std::vector<RelationshipId>> rels_by_object_;

  /// Live children of an object parent keyed by (class, index), so dotted
  /// path resolution is O(1) per segment instead of O(children). Among
  /// live children the pair is unique (NextChildIndex never hands out an
  /// index a live sibling of the same class holds).
  struct ChildKey {
    std::uint64_t cls_raw;
    std::uint32_t index;
    bool operator==(const ChildKey&) const = default;
  };
  struct ChildKeyHash {
    size_t operator()(const ChildKey& k) const {
      return std::hash<std::uint64_t>{}(k.cls_raw * 0x9E3779B97F4A7C15ull ^
                                        k.index);
    }
  };
  std::unordered_map<ObjectId,
                     std::unordered_map<ChildKey, ObjectId, ChildKeyHash>>
      children_by_key_;
  /// Finds the live child of `parent` with class `dep_cls` and `index`.
  ObjectId FindChildByKey(ObjectId parent, ClassId dep_cls,
                          std::uint32_t index) const;

  /// User-defined secondary attribute indexes (maintained through every
  /// mutation path; definitions persist, entries are derived data).
  index::IndexManager attr_indexes_;

  /// Live-population statistics per exact class / association, maintained
  /// from the same Index/Unindex hooks as the maps above; rebuilt whenever
  /// they are (RebuildIndexes).
  ExtentCounters extent_counters_;

  std::unordered_map<ClassId, std::vector<AttachedProcedure>>
      class_procedures_;
  std::unordered_map<AssociationId, std::vector<AttachedProcedure>>
      assoc_procedures_;

  std::unordered_set<ObjectId> changed_objects_;
  std::unordered_set<RelationshipId> changed_relationships_;

  size_t live_objects_ = 0;
  size_t live_relationships_ = 0;
};

}  // namespace seed::core

#endif  // SEED_CORE_DATABASE_H_
