#include "core/item_codec.h"

#include "common/macros.h"

namespace seed::core {

void ItemCodec::Encode(const ObjectItem& obj, Encoder* enc) {
  enc->PutU64(obj.id.raw());
  enc->PutU64(obj.cls.raw());
  enc->PutString(obj.name);
  enc->PutU8(static_cast<std::uint8_t>(obj.parent_kind));
  enc->PutU64(obj.parent_object.raw());
  enc->PutU64(obj.parent_relationship.raw());
  enc->PutU32(obj.index);
  obj.value.EncodeTo(enc);
  enc->PutVarint(obj.children.size());
  for (ObjectId child : obj.children) enc->PutU64(child.raw());
  enc->PutBool(obj.is_pattern);
  enc->PutBool(obj.deleted);
}

Result<ObjectItem> ItemCodec::DecodeObject(Decoder* dec) {
  ObjectItem obj;
  SEED_ASSIGN_OR_RETURN(std::uint64_t id_raw, dec->GetU64());
  obj.id = ObjectId(id_raw);
  SEED_ASSIGN_OR_RETURN(std::uint64_t cls_raw, dec->GetU64());
  obj.cls = ClassId(cls_raw);
  SEED_ASSIGN_OR_RETURN(obj.name, dec->GetString());
  SEED_ASSIGN_OR_RETURN(std::uint8_t kind, dec->GetU8());
  if (kind > static_cast<std::uint8_t>(ParentKind::kRelationship)) {
    return Status::Corruption("bad parent kind in object stream");
  }
  obj.parent_kind = static_cast<ParentKind>(kind);
  SEED_ASSIGN_OR_RETURN(std::uint64_t pobj_raw, dec->GetU64());
  obj.parent_object = ObjectId(pobj_raw);
  SEED_ASSIGN_OR_RETURN(std::uint64_t prel_raw, dec->GetU64());
  obj.parent_relationship = RelationshipId(prel_raw);
  SEED_ASSIGN_OR_RETURN(obj.index, dec->GetU32());
  SEED_ASSIGN_OR_RETURN(obj.value, Value::Decode(dec));
  SEED_ASSIGN_OR_RETURN(std::uint64_t num_children, dec->GetVarint());
  obj.children.reserve(num_children);
  for (std::uint64_t i = 0; i < num_children; ++i) {
    SEED_ASSIGN_OR_RETURN(std::uint64_t child_raw, dec->GetU64());
    obj.children.push_back(ObjectId(child_raw));
  }
  SEED_ASSIGN_OR_RETURN(obj.is_pattern, dec->GetBool());
  SEED_ASSIGN_OR_RETURN(obj.deleted, dec->GetBool());
  return obj;
}

void ItemCodec::Encode(const RelationshipItem& rel, Encoder* enc) {
  enc->PutU64(rel.id.raw());
  enc->PutU64(rel.assoc.raw());
  enc->PutU64(rel.ends[0].raw());
  enc->PutU64(rel.ends[1].raw());
  enc->PutVarint(rel.children.size());
  for (ObjectId child : rel.children) enc->PutU64(child.raw());
  enc->PutBool(rel.is_pattern);
  enc->PutBool(rel.deleted);
}

Result<RelationshipItem> ItemCodec::DecodeRelationship(Decoder* dec) {
  RelationshipItem rel;
  SEED_ASSIGN_OR_RETURN(std::uint64_t id_raw, dec->GetU64());
  rel.id = RelationshipId(id_raw);
  SEED_ASSIGN_OR_RETURN(std::uint64_t assoc_raw, dec->GetU64());
  rel.assoc = AssociationId(assoc_raw);
  for (int i = 0; i < 2; ++i) {
    SEED_ASSIGN_OR_RETURN(std::uint64_t end_raw, dec->GetU64());
    rel.ends[i] = ObjectId(end_raw);
  }
  SEED_ASSIGN_OR_RETURN(std::uint64_t num_children, dec->GetVarint());
  rel.children.reserve(num_children);
  for (std::uint64_t i = 0; i < num_children; ++i) {
    SEED_ASSIGN_OR_RETURN(std::uint64_t child_raw, dec->GetU64());
    rel.children.push_back(ObjectId(child_raw));
  }
  SEED_ASSIGN_OR_RETURN(rel.is_pattern, dec->GetBool());
  SEED_ASSIGN_OR_RETURN(rel.deleted, dec->GetBool());
  return rel;
}

std::string ItemCodec::EncodeObjectToString(const ObjectItem& obj) {
  Encoder enc;
  Encode(obj, &enc);
  return std::string(reinterpret_cast<const char*>(enc.bytes().data()),
                     enc.size());
}

Result<ObjectItem> ItemCodec::DecodeObjectFromString(
    std::string_view bytes) {
  Decoder dec(bytes.data(), bytes.size());
  return DecodeObject(&dec);
}

std::string ItemCodec::EncodeRelationshipToString(
    const RelationshipItem& rel) {
  Encoder enc;
  Encode(rel, &enc);
  return std::string(reinterpret_cast<const char*>(enc.bytes().data()),
                     enc.size());
}

Result<RelationshipItem> ItemCodec::DecodeRelationshipFromString(
    std::string_view bytes) {
  Decoder dec(bytes.data(), bytes.size());
  return DecodeRelationship(&dec);
}

}  // namespace seed::core
