#include "core/database.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "common/macros.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace seed::core {

namespace {

template <typename T>
void EraseFrom(std::vector<T>& v, const T& value) {
  v.erase(std::remove(v.begin(), v.end(), value), v.end());
}

// Mutation counters fire on the success path only — after attached
// procedures had their chance to veto — so the registry reflects durable
// changes, not attempts.
void CountObjectCreated() {
  static obs::Counter* created = obs::MetricsRegistry::Global().GetCounter(
      "core.objects.created.total");
  created->Increment();
}

void CountRelationshipCreated() {
  static obs::Counter* created = obs::MetricsRegistry::Global().GetCounter(
      "core.relationships.created.total");
  created->Increment();
}

void CountMutation() {
  static obs::Counter* mutations =
      obs::MetricsRegistry::Global().GetCounter("core.mutations.total");
  mutations->Increment();
}

/// One delete operation whose closure tombstoned `cascade_items` items
/// (objects plus relationships, including the root itself).
void CountDelete(std::size_t cascade_items) {
  static obs::Counter* deletes =
      obs::MetricsRegistry::Global().GetCounter("core.deletes.total");
  static obs::Counter* cascade = obs::MetricsRegistry::Global().GetCounter(
      "core.cascade.items.total");
  deletes->Increment();
  cascade->Increment(cascade_items);
}

void CountReclassify() {
  static obs::Counter* reclassifies =
      obs::MetricsRegistry::Global().GetCounter("core.reclassifies.total");
  reclassifies->Increment();
}

}  // namespace

Database::Database(schema::SchemaPtr schema) : schema_(std::move(schema)) {
  assert(schema_ != nullptr);
  static std::atomic<std::uint64_t> next_instance_id{1};
  instance_id_ = next_instance_id.fetch_add(1, std::memory_order_relaxed);
}

ObjectItem* Database::MutableObject(ObjectId id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

RelationshipItem* Database::MutableRelationship(RelationshipId id) {
  auto it = relationships_.find(id);
  return it == relationships_.end() ? nullptr : &it->second;
}

Result<const ObjectItem*> Database::GetObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end() || it->second.deleted) {
    return Status::NotFound("object " + std::to_string(id.raw()));
  }
  return &it->second;
}

Result<const RelationshipItem*> Database::GetRelationship(
    RelationshipId id) const {
  auto it = relationships_.find(id);
  if (it == relationships_.end() || it->second.deleted) {
    return Status::NotFound("relationship " + std::to_string(id.raw()));
  }
  return &it->second;
}

// --- Index maintenance -------------------------------------------------------

void Database::IndexObject(const ObjectItem& obj) {
  if (obj.deleted) return;
  if (obj.is_independent()) {
    (obj.is_pattern ? pattern_name_index_ : name_index_)[obj.name] = obj.id;
  }
  if (obj.parent_kind == ParentKind::kObject) {
    children_by_key_[obj.parent_object][{obj.cls.raw(), obj.index}] = obj.id;
  }
  by_class_[obj.cls].push_back(obj.id);
  if (!obj.is_pattern) extent_counters_.AddObject(obj.cls);
  ++live_objects_;
}

void Database::UnindexObject(const ObjectItem& obj) {
  if (obj.is_independent()) {
    auto& idx = obj.is_pattern ? pattern_name_index_ : name_index_;
    auto it = idx.find(obj.name);
    if (it != idx.end() && it->second == obj.id) idx.erase(it);
  }
  if (obj.parent_kind == ParentKind::kObject) {
    auto it = children_by_key_.find(obj.parent_object);
    if (it != children_by_key_.end()) {
      auto entry = it->second.find({obj.cls.raw(), obj.index});
      if (entry != it->second.end() && entry->second == obj.id) {
        it->second.erase(entry);
      }
      if (it->second.empty()) children_by_key_.erase(it);
    }
  }
  EraseFrom(by_class_[obj.cls], obj.id);
  if (!obj.is_pattern) extent_counters_.RemoveObject(obj.cls);
  --live_objects_;
}

ObjectId Database::FindChildByKey(ObjectId parent, ClassId dep_cls,
                                  std::uint32_t index) const {
  auto it = children_by_key_.find(parent);
  if (it == children_by_key_.end()) return ObjectId();
  auto entry = it->second.find({dep_cls.raw(), index});
  return entry == it->second.end() ? ObjectId() : entry->second;
}

ClassId Database::EndClass(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? ClassId() : it->second.cls;
}

void Database::MoveParticipantCounts(ObjectId obj, ClassId from_cls,
                                     ClassId to_cls) {
  auto it = rels_by_object_.find(obj);
  if (it == rels_by_object_.end()) return;
  for (RelationshipId rid : it->second) {
    const RelationshipItem& rel = relationships_.at(rid);
    if (rel.is_pattern) continue;
    for (int role = 0; role < 2; ++role) {
      if (rel.ends[role] != obj) continue;
      extent_counters_.RemoveParticipant(rel.assoc, role, from_cls, obj);
      extent_counters_.AddParticipant(rel.assoc, role, to_cls, obj);
    }
  }
}

void Database::MoveParticipantCounts(const RelationshipItem& rel,
                                     AssociationId from_assoc,
                                     AssociationId to_assoc) {
  if (rel.is_pattern) return;
  for (int role = 0; role < 2; ++role) {
    ClassId cls = EndClass(rel.ends[role]);
    extent_counters_.RemoveParticipant(from_assoc, role, cls, rel.ends[role]);
    extent_counters_.AddParticipant(to_assoc, role, cls, rel.ends[role]);
  }
}

void Database::IndexRelationship(const RelationshipItem& rel) {
  if (rel.deleted) return;
  by_assoc_[rel.assoc].push_back(rel.id);
  rels_by_object_[rel.ends[0]].push_back(rel.id);
  if (rel.ends[1] != rel.ends[0]) {
    rels_by_object_[rel.ends[1]].push_back(rel.id);
  }
  if (!rel.is_pattern) {
    extent_counters_.AddRelationship(rel.assoc);
    for (int role = 0; role < 2; ++role) {
      extent_counters_.AddParticipant(rel.assoc, role,
                                      EndClass(rel.ends[role]),
                                      rel.ends[role]);
    }
  }
  ++live_relationships_;
}

void Database::UnindexRelationship(const RelationshipItem& rel) {
  EraseFrom(by_assoc_[rel.assoc], rel.id);
  EraseFrom(rels_by_object_[rel.ends[0]], rel.id);
  if (rel.ends[1] != rel.ends[0]) {
    EraseFrom(rels_by_object_[rel.ends[1]], rel.id);
  }
  if (!rel.is_pattern) {
    extent_counters_.RemoveRelationship(rel.assoc);
    for (int role = 0; role < 2; ++role) {
      extent_counters_.RemoveParticipant(rel.assoc, role,
                                         EndClass(rel.ends[role]),
                                         rel.ends[role]);
    }
  }
  --live_relationships_;
}

void Database::RebuildIndexes() {
  name_index_.clear();
  pattern_name_index_.clear();
  by_class_.clear();
  by_assoc_.clear();
  rels_by_object_.clear();
  children_by_key_.clear();
  extent_counters_.Clear();
  live_objects_ = 0;
  live_relationships_ = 0;
  for (const auto& [id, obj] : objects_) {
    if (!obj.deleted) IndexObject(obj);
    object_ids_.ReserveThrough(id);
  }
  for (const auto& [id, rel] : relationships_) {
    if (!rel.deleted) IndexRelationship(rel);
    relationship_ids_.ReserveThrough(id);
  }
  attr_indexes_.RefreshAll(*schema_, objects_, relationships_);
}

void Database::ClearContents() {
  objects_.clear();
  relationships_.clear();
  name_index_.clear();
  pattern_name_index_.clear();
  by_class_.clear();
  by_assoc_.clear();
  rels_by_object_.clear();
  children_by_key_.clear();
  changed_objects_.clear();
  changed_relationships_.clear();
  attr_indexes_.ClearEntries();
  extent_counters_.Clear();
  live_objects_ = 0;
  live_relationships_ = 0;
}

void Database::RestoreObject(ObjectItem item) {
  ObjectId id = item.id;
  objects_[id] = std::move(item);
  object_ids_.ReserveThrough(id);
  Touch(id);
}

void Database::RestoreRelationship(RelationshipItem item) {
  RelationshipId id = item.id;
  relationships_[id] = std::move(item);
  relationship_ids_.ReserveThrough(id);
  Touch(id);
}

// --- Secondary attribute indexes ---------------------------------------------

Status Database::CreateAttributeIndex(index::IndexSpec spec) {
  SEED_RETURN_IF_ERROR(attr_indexes_.CreateIndex(*schema_, spec));
  attr_indexes_.BackfillIndex(*schema_, objects_, relationships_, spec);
  return Status::OK();
}

Status Database::DropAttributeIndex(ClassId cls, std::string_view role) {
  return attr_indexes_.DropIndex(cls, role);
}

Status Database::DropAttributeIndex(AssociationId assoc,
                                    std::string_view role) {
  return attr_indexes_.DropIndex(assoc, role);
}

void Database::RefreshAttrIndexes(ObjectId id) {
  if (attr_indexes_.empty()) return;
  attr_indexes_.RefreshObject(*schema_, objects_, id);
}

void Database::RefreshAttrIndexesWithParent(ObjectId id) {
  if (attr_indexes_.empty()) return;
  attr_indexes_.RefreshObject(*schema_, objects_, id);
  RefreshAttrIndexParentOf(id);
}

void Database::RefreshAttrIndexParentOf(ObjectId id) {
  if (attr_indexes_.empty()) return;
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  if (it->second.parent_kind == ParentKind::kObject) {
    attr_indexes_.RefreshObject(*schema_, objects_,
                                it->second.parent_object);
  } else if (it->second.parent_kind == ParentKind::kRelationship) {
    // Relationship attribute: the owning relationship's index entries
    // derive from this sub-object's value.
    RefreshRelAttrIndexes(it->second.parent_relationship);
  }
}

void Database::RefreshRelAttrIndexes(RelationshipId id) {
  if (!attr_indexes_.has_relationship_indexes()) return;
  attr_indexes_.RefreshRelationship(*schema_, objects_, relationships_, id);
}

// --- Object creation ---------------------------------------------------------

Result<ObjectId> Database::CreateObject(ClassId cls, std::string name,
                                        const CreateOptions& opts) {
  SEED_ASSIGN_OR_RETURN(const schema::ObjectClass* c, schema_->GetClass(cls));
  if (c->is_dependent()) {
    return Status::InvalidArgument(
        "class '" + c->full_name +
        "' is dependent; use CreateSubObject on a parent item");
  }
  if (!strings::IsIdentifier(name)) {
    return Status::InvalidArgument("object name '" + name +
                                   "' is not an identifier");
  }
  SEED_RETURN_IF_ERROR(CheckIndependentName(name, opts.pattern, ObjectId()));

  ObjectItem obj;
  obj.id = object_ids_.Next();
  obj.cls = cls;
  obj.name = std::move(name);
  obj.is_pattern = opts.pattern;
  ObjectId id = obj.id;
  objects_[id] = std::move(obj);
  IndexObject(objects_[id]);
  Touch(id);

  if (!opts.pattern) {
    UpdateEvent event{UpdateKind::kCreateObject, this, id, RelationshipId()};
    Status veto = RunProcedures(cls, event);
    if (!veto.ok()) {
      UnindexObject(objects_[id]);
      objects_.erase(id);
      changed_objects_.erase(id);
      return veto;
    }
  }
  CountObjectCreated();
  return id;
}

Result<ObjectId> Database::CreateSubObjectImpl(ParentKind kind,
                                               ObjectId pobj,
                                               RelationshipId prel,
                                               std::string_view role) {
  ClassId dep_cls;
  std::vector<ObjectId>* siblings = nullptr;
  bool parent_is_pattern = false;
  ClassId procedure_cls;

  if (kind == ParentKind::kObject) {
    ObjectItem* parent = MutableObject(pobj);
    if (parent == nullptr || parent->deleted) {
      return Status::NotFound("parent object " + std::to_string(pobj.raw()));
    }
    SEED_ASSIGN_OR_RETURN(dep_cls,
                          schema_->ResolveSubObjectRole(parent->cls, role));
    siblings = &parent->children;
    parent_is_pattern = parent->is_pattern;
  } else {
    RelationshipItem* parent = MutableRelationship(prel);
    if (parent == nullptr || parent->deleted) {
      return Status::NotFound("parent relationship " +
                              std::to_string(prel.raw()));
    }
    SEED_ASSIGN_OR_RETURN(
        dep_cls, schema_->ResolveSubObjectRole(parent->assoc, role));
    siblings = &parent->children;
    parent_is_pattern = parent->is_pattern;
  }
  procedure_cls = dep_cls;
  SEED_ASSIGN_OR_RETURN(const schema::ObjectClass* dep,
                        schema_->GetClass(dep_cls));

  // Consistency: maximum cardinality of the role (skipped for patterns;
  // they are checked at inheritance time).
  if (!parent_is_pattern && !dep->cardinality.unlimited_max()) {
    size_t count = CountChildrenOfClass(*siblings, dep_cls);
    if (count + 1 > dep->cardinality.max) {
      return Status::ConsistencyViolation(
          "maximum cardinality: role '" + dep->full_name + "' allows " +
          dep->cardinality.ToString() + " sub-objects");
    }
  }

  ObjectItem obj;
  obj.id = object_ids_.Next();
  obj.cls = dep_cls;
  obj.parent_kind = kind;
  obj.parent_object = pobj;
  obj.parent_relationship = prel;
  obj.index = NextChildIndex(*siblings, dep_cls);
  obj.is_pattern = parent_is_pattern;
  ObjectId id = obj.id;
  objects_[id] = std::move(obj);
  siblings->push_back(id);
  IndexObject(objects_[id]);
  Touch(id);
  if (kind == ParentKind::kObject) {
    Touch(pobj);
  } else {
    Touch(prel);
  }

  if (!parent_is_pattern) {
    UpdateEvent event{UpdateKind::kCreateSubObject, this, id,
                      RelationshipId()};
    Status veto = RunProcedures(procedure_cls, event);
    if (!veto.ok()) {
      UnindexObject(objects_[id]);
      EraseFrom(*siblings, id);
      objects_.erase(id);
      changed_objects_.erase(id);
      return veto;
    }
  }
  CountObjectCreated();
  return id;
}

Result<ObjectId> Database::CreateSubObject(ObjectId parent,
                                           std::string_view role) {
  return CreateSubObjectImpl(ParentKind::kObject, parent, RelationshipId(),
                             role);
}

Result<ObjectId> Database::CreateSubObject(RelationshipId parent,
                                           std::string_view role) {
  return CreateSubObjectImpl(ParentKind::kRelationship, ObjectId(), parent,
                             role);
}

// --- Value updates -----------------------------------------------------------

Status Database::SetValue(ObjectId obj_id, Value value) {
  ObjectItem* obj = MutableObject(obj_id);
  if (obj == nullptr || obj->deleted) {
    return Status::NotFound("object " + std::to_string(obj_id.raw()));
  }
  if (!value.defined()) {
    return Status::InvalidArgument(
        "SetValue with an undefined value; use ClearValue");
  }
  SEED_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                        schema_->GetClass(obj->cls));
  if (!obj->is_pattern) {
    SEED_RETURN_IF_ERROR(CheckValueConforms(*cls, value));
  }
  Value old = obj->value;
  obj->value = std::move(value);
  Touch(obj_id);
  RefreshAttrIndexesWithParent(obj_id);

  if (!obj->is_pattern) {
    UpdateEvent event{UpdateKind::kSetValue, this, obj_id, RelationshipId()};
    Status veto = RunProcedures(obj->cls, event);
    if (!veto.ok()) {
      obj->value = std::move(old);
      RefreshAttrIndexesWithParent(obj_id);
      return veto;
    }
  }
  CountMutation();
  return Status::OK();
}

Status Database::ClearValue(ObjectId obj_id) {
  ObjectItem* obj = MutableObject(obj_id);
  if (obj == nullptr || obj->deleted) {
    return Status::NotFound("object " + std::to_string(obj_id.raw()));
  }
  Value old = obj->value;
  obj->value = Value();
  Touch(obj_id);
  RefreshAttrIndexesWithParent(obj_id);
  if (!obj->is_pattern) {
    UpdateEvent event{UpdateKind::kClearValue, this, obj_id,
                      RelationshipId()};
    Status veto = RunProcedures(obj->cls, event);
    if (!veto.ok()) {
      obj->value = std::move(old);
      RefreshAttrIndexesWithParent(obj_id);
      return veto;
    }
  }
  CountMutation();
  return Status::OK();
}

Status Database::Rename(ObjectId obj_id, std::string new_name) {
  ObjectItem* obj = MutableObject(obj_id);
  if (obj == nullptr || obj->deleted) {
    return Status::NotFound("object " + std::to_string(obj_id.raw()));
  }
  if (!obj->is_independent()) {
    return Status::FailedPrecondition(
        "dependent objects are named by their role and cannot be renamed");
  }
  if (!strings::IsIdentifier(new_name)) {
    return Status::InvalidArgument("object name '" + new_name +
                                   "' is not an identifier");
  }
  if (new_name == obj->name) return Status::OK();
  SEED_RETURN_IF_ERROR(
      CheckIndependentName(new_name, obj->is_pattern, obj_id));

  auto& idx = obj->is_pattern ? pattern_name_index_ : name_index_;
  std::string old_name = obj->name;
  idx.erase(old_name);
  obj->name = std::move(new_name);
  idx[obj->name] = obj_id;
  Touch(obj_id);

  if (!obj->is_pattern) {
    UpdateEvent event{UpdateKind::kRename, this, obj_id, RelationshipId()};
    Status veto = RunProcedures(obj->cls, event);
    if (!veto.ok()) {
      idx.erase(obj->name);
      obj->name = std::move(old_name);
      idx[obj->name] = obj_id;
      return veto;
    }
  }
  CountMutation();
  return Status::OK();
}

// --- Deletion ----------------------------------------------------------------

Status Database::DeleteObject(ObjectId root_id) {
  ObjectItem* root = MutableObject(root_id);
  if (root == nullptr || root->deleted) {
    return Status::NotFound("object " + std::to_string(root_id.raw()));
  }

  // Collect the closure: the subtree under root, every relationship
  // touching it, those relationships' attribute subtrees, and so on.
  std::vector<ObjectId> objs;
  std::vector<RelationshipId> rels;
  std::unordered_set<ObjectId> obj_seen;
  std::unordered_set<RelationshipId> rel_seen;
  std::vector<ObjectId> work{root_id};
  obj_seen.insert(root_id);
  while (!work.empty()) {
    ObjectId oid = work.back();
    work.pop_back();
    objs.push_back(oid);
    const ObjectItem& obj = objects_.at(oid);
    for (ObjectId child : obj.children) {
      if (!objects_.at(child).deleted && obj_seen.insert(child).second) {
        work.push_back(child);
      }
    }
    auto it = rels_by_object_.find(oid);
    if (it == rels_by_object_.end()) continue;
    for (RelationshipId rid : it->second) {
      if (!rel_seen.insert(rid).second) continue;
      rels.push_back(rid);
      for (ObjectId attr : relationships_.at(rid).children) {
        if (!objects_.at(attr).deleted && obj_seen.insert(attr).second) {
          work.push_back(attr);
        }
      }
    }
  }

  // Tombstone everything (unindex first, while indexes are intact).
  for (RelationshipId rid : rels) {
    RelationshipItem& rel = relationships_.at(rid);
    UnindexRelationship(rel);
    rel.deleted = true;
    Touch(rid);
  }
  for (ObjectId oid : objs) {
    ObjectItem& obj = objects_.at(oid);
    UnindexObject(obj);
    obj.deleted = true;
    Touch(oid);
  }
  // Every deleted object's parent is inside the closure except the root's.
  for (ObjectId oid : objs) RefreshAttrIndexes(oid);
  for (RelationshipId rid : rels) RefreshRelAttrIndexes(rid);
  RefreshAttrIndexParentOf(root_id);
  bool was_pattern = objects_.at(root_id).is_pattern;
  if (!was_pattern) {
    UpdateEvent event{UpdateKind::kDeleteObject, this, root_id,
                      RelationshipId()};
    Status veto = RunProcedures(objects_.at(root_id).cls, event);
    if (!veto.ok()) {
      for (ObjectId oid : objs) {
        ObjectItem& obj = objects_.at(oid);
        obj.deleted = false;
        IndexObject(obj);
      }
      for (RelationshipId rid : rels) {
        RelationshipItem& rel = relationships_.at(rid);
        rel.deleted = false;
        IndexRelationship(rel);
      }
      for (ObjectId oid : objs) RefreshAttrIndexes(oid);
      for (RelationshipId rid : rels) RefreshRelAttrIndexes(rid);
      RefreshAttrIndexParentOf(root_id);
      return veto;
    }
  }
  CountDelete(objs.size() + rels.size());
  return Status::OK();
}

Status Database::DeleteRelationship(RelationshipId rel_id) {
  RelationshipItem* rel = MutableRelationship(rel_id);
  if (rel == nullptr || rel->deleted) {
    return Status::NotFound("relationship " + std::to_string(rel_id.raw()));
  }
  // Attribute subtrees die with the relationship.
  std::vector<ObjectId> objs;
  std::vector<ObjectId> work(rel->children.begin(), rel->children.end());
  while (!work.empty()) {
    ObjectId oid = work.back();
    work.pop_back();
    const ObjectItem& obj = objects_.at(oid);
    if (obj.deleted) continue;
    objs.push_back(oid);
    work.insert(work.end(), obj.children.begin(), obj.children.end());
  }
  for (ObjectId oid : objs) {
    ObjectItem& obj = objects_.at(oid);
    UnindexObject(obj);
    obj.deleted = true;
    Touch(oid);
  }
  for (ObjectId oid : objs) RefreshAttrIndexes(oid);
  UnindexRelationship(*rel);
  rel->deleted = true;
  Touch(rel_id);
  RefreshRelAttrIndexes(rel_id);

  if (!rel->is_pattern) {
    UpdateEvent event{UpdateKind::kDeleteRelationship, this, ObjectId(),
                      rel_id};
    Status veto = RunProcedures(rel->assoc, event);
    if (!veto.ok()) {
      rel->deleted = false;
      IndexRelationship(*rel);
      for (ObjectId oid : objs) {
        ObjectItem& obj = objects_.at(oid);
        obj.deleted = false;
        IndexObject(obj);
      }
      for (ObjectId oid : objs) RefreshAttrIndexes(oid);
      RefreshRelAttrIndexes(rel_id);
      return veto;
    }
  }
  CountDelete(1 + objs.size());
  return Status::OK();
}

// --- Re-classification -------------------------------------------------------

Status Database::Reclassify(ObjectId obj_id, ClassId new_cls) {
  ObjectItem* obj = MutableObject(obj_id);
  if (obj == nullptr || obj->deleted) {
    return Status::NotFound("object " + std::to_string(obj_id.raw()));
  }
  SEED_ASSIGN_OR_RETURN(const schema::ObjectClass* target,
                        schema_->GetClass(new_cls));
  if (new_cls == obj->cls) {
    return Status::InvalidArgument("object already has this class");
  }
  if (!obj->is_independent()) {
    return Status::FailedPrecondition(
        "only independent objects can be re-classified (dependent classes "
        "do not participate in generalization)");
  }
  if (target->is_dependent()) {
    return Status::FailedPrecondition("cannot re-classify into dependent "
                                      "class '" + target->full_name + "'");
  }
  if (!schema_->OnSameGeneralizationPath(obj->cls, new_cls)) {
    auto cur = schema_->GetClass(obj->cls);
    return Status::FailedPrecondition(
        "re-classification must move along the generalization hierarchy; '" +
        (cur.ok() ? (*cur)->full_name : "?") + "' and '" + target->full_name +
        "' are not on one path");
  }

  if (!obj->is_pattern) {
    // Sub-objects must keep a resolvable role: each child's class must be
    // declared on the new class or one of its generalization ancestors.
    auto new_chain = schema_->GeneralizationChain(new_cls);
    std::unordered_set<std::uint64_t> chain_set;
    for (ClassId c : new_chain) chain_set.insert(c.raw());
    for (ObjectId child_id : obj->children) {
      const ObjectItem& child = objects_.at(child_id);
      if (child.deleted) continue;
      auto child_cls = schema_->GetClass(child.cls);
      if (!child_cls.ok()) continue;
      if ((*child_cls)->owner.kind != schema::OwnerKind::kClass ||
          chain_set.count((*child_cls)->owner.class_id().raw()) == 0) {
        return Status::ConsistencyViolation(
            "class membership: sub-object role '" + (*child_cls)->full_name +
            "' does not exist on class '" + target->full_name + "'");
      }
    }
    // Relationships must keep conforming participants.
    auto it = rels_by_object_.find(obj_id);
    if (it != rels_by_object_.end()) {
      for (RelationshipId rid : it->second) {
        const RelationshipItem& rel = relationships_.at(rid);
        auto assoc = schema_->GetAssociation(rel.assoc);
        if (!assoc.ok()) continue;
        for (int i = 0; i < 2; ++i) {
          if (rel.ends[i] != obj_id) continue;
          if (!schema_->IsSameOrSpecializationOf(new_cls,
                                                 (*assoc)->roles[i].target)) {
            return Status::ConsistencyViolation(
                "class membership: object would no longer conform to role "
                "'" + (*assoc)->roles[i].name + "' of association '" +
                (*assoc)->name + "'");
          }
        }
      }
    }
    // Value must conform to the new class.
    if (obj->value.defined()) {
      SEED_RETURN_IF_ERROR(CheckValueConforms(*target, obj->value));
    }
  }

  ClassId old_cls = obj->cls;
  EraseFrom(by_class_[old_cls], obj_id);
  obj->cls = new_cls;
  by_class_[new_cls].push_back(obj_id);
  if (!obj->is_pattern) {
    extent_counters_.RemoveObject(old_cls);
    extent_counters_.AddObject(new_cls);
    MoveParticipantCounts(obj_id, old_cls, new_cls);
  }
  Touch(obj_id);
  // Migrates attribute-index entries between class extents: the refresh
  // clears the object from indexes that no longer cover its class and
  // inserts it into those that now do.
  RefreshAttrIndexes(obj_id);

  if (!obj->is_pattern) {
    UpdateEvent event{UpdateKind::kReclassifyObject, this, obj_id,
                      RelationshipId()};
    Status veto = RunProcedures(new_cls, event);
    if (!veto.ok()) {
      EraseFrom(by_class_[new_cls], obj_id);
      obj->cls = old_cls;
      by_class_[old_cls].push_back(obj_id);
      extent_counters_.RemoveObject(new_cls);
      extent_counters_.AddObject(old_cls);
      MoveParticipantCounts(obj_id, new_cls, old_cls);
      RefreshAttrIndexes(obj_id);
      return veto;
    }
  }
  CountReclassify();
  return Status::OK();
}

// --- Relationships -----------------------------------------------------------

Result<RelationshipId> Database::CreateRelationship(
    AssociationId assoc_id, ObjectId end0, ObjectId end1,
    const CreateOptions& opts) {
  SEED_ASSIGN_OR_RETURN(const schema::Association* assoc,
                        schema_->GetAssociation(assoc_id));
  const ObjectItem* ends[2];
  {
    SEED_ASSIGN_OR_RETURN(ends[0], GetObject(end0));
    SEED_ASSIGN_OR_RETURN(ends[1], GetObject(end1));
  }
  bool pattern = opts.pattern || ends[0]->is_pattern || ends[1]->is_pattern;
  if (!opts.pattern && pattern) {
    return Status::ConsistencyViolation(
        "pattern separation: a normal relationship cannot connect pattern "
        "objects; create it as a pattern");
  }

  if (!pattern) {
    ObjectId end_ids[2] = {end0, end1};
    for (int i = 0; i < 2; ++i) {
      if (!schema_->IsSameOrSpecializationOf(ends[i]->cls,
                                             assoc->roles[i].target)) {
        auto cls = schema_->GetClass(ends[i]->cls);
        auto want = schema_->GetClass(assoc->roles[i].target);
        return Status::ConsistencyViolation(
            "class membership: object '" + FullName(end_ids[i]) +
            "' of class '" + (cls.ok() ? (*cls)->full_name : "?") +
            "' cannot fill role '" + assoc->roles[i].name +
            "' of association '" + assoc->name + "' (wants '" +
            (want.ok() ? (*want)->full_name : "?") + "')");
      }
    }
    if (DuplicateExists(assoc_id, end0, end1, RelationshipId())) {
      return Status::ConsistencyViolation(
          "duplicate relationship: " + assoc->name + "(" + FullName(end0) +
          ", " + FullName(end1) + ") already exists");
    }
    SEED_RETURN_IF_ERROR(CheckParticipationMaxima(assoc_id, end0, end1));
    SEED_RETURN_IF_ERROR(
        CheckAcyclicity(assoc_id, end0, end1, RelationshipId()));
  }

  RelationshipItem rel;
  rel.id = relationship_ids_.Next();
  rel.assoc = assoc_id;
  rel.ends[0] = end0;
  rel.ends[1] = end1;
  rel.is_pattern = pattern;
  RelationshipId id = rel.id;
  relationships_[id] = std::move(rel);
  IndexRelationship(relationships_[id]);
  Touch(id);

  if (!pattern) {
    UpdateEvent event{UpdateKind::kCreateRelationship, this, ObjectId(), id};
    Status veto = RunProcedures(assoc_id, event);
    if (!veto.ok()) {
      UnindexRelationship(relationships_[id]);
      relationships_.erase(id);
      changed_relationships_.erase(id);
      return veto;
    }
  }
  CountRelationshipCreated();
  return id;
}

Status Database::ReclassifyRelationship(RelationshipId rel_id,
                                        AssociationId new_assoc_id) {
  RelationshipItem* rel = MutableRelationship(rel_id);
  if (rel == nullptr || rel->deleted) {
    return Status::NotFound("relationship " + std::to_string(rel_id.raw()));
  }
  SEED_ASSIGN_OR_RETURN(const schema::Association* new_assoc,
                        schema_->GetAssociation(new_assoc_id));
  if (new_assoc_id == rel->assoc) {
    return Status::InvalidArgument("relationship already has this "
                                   "association");
  }
  if (!schema_->OnSameGeneralizationPath(rel->assoc, new_assoc_id)) {
    auto cur = schema_->GetAssociation(rel->assoc);
    return Status::FailedPrecondition(
        "re-classification must move along the generalization hierarchy; '" +
        (cur.ok() ? (*cur)->name : "?") + "' and '" + new_assoc->name +
        "' are not on one path");
  }

  if (!rel->is_pattern) {
    // Participants must conform to the new roles.
    for (int i = 0; i < 2; ++i) {
      const ObjectItem& end = objects_.at(rel->ends[i]);
      if (!schema_->IsSameOrSpecializationOf(end.cls,
                                             new_assoc->roles[i].target)) {
        return Status::ConsistencyViolation(
            "class membership: participant '" + FullName(rel->ends[i]) +
            "' does not conform to role '" + new_assoc->roles[i].name +
            "' of association '" + new_assoc->name + "'");
      }
    }
    if (DuplicateExists(new_assoc_id, rel->ends[0], rel->ends[1], rel_id)) {
      return Status::ConsistencyViolation(
          "duplicate relationship: " + new_assoc->name + " between these "
          "participants already exists");
    }
    // Attribute children must keep a resolvable role on the new chain.
    auto new_chain = schema_->GeneralizationChain(new_assoc_id);
    std::unordered_set<std::uint64_t> chain_set;
    for (AssociationId a : new_chain) chain_set.insert(a.raw());
    for (ObjectId child_id : rel->children) {
      const ObjectItem& child = objects_.at(child_id);
      if (child.deleted) continue;
      auto child_cls = schema_->GetClass(child.cls);
      if (!child_cls.ok()) continue;
      if ((*child_cls)->owner.kind != schema::OwnerKind::kAssociation ||
          chain_set.count((*child_cls)->owner.association_id().raw()) == 0) {
        return Status::ConsistencyViolation(
            "class membership: attribute role '" + (*child_cls)->full_name +
            "' does not exist on association '" + new_assoc->name + "'");
      }
    }
    // New memberships (associations on the new chain but not the old one)
    // must respect maximum participation; temporarily unindex so the
    // relationship does not count against itself.
    UnindexRelationship(*rel);
    std::unordered_set<std::uint64_t> old_chain;
    for (AssociationId a : schema_->GeneralizationChain(rel->assoc)) {
      old_chain.insert(a.raw());
    }
    Status s = Status::OK();
    for (AssociationId a : new_chain) {
      if (old_chain.count(a.raw()) != 0) continue;
      auto info = schema_->GetAssociation(a);
      for (int i = 0; i < 2 && s.ok(); ++i) {
        const schema::Role& role = (*info)->roles[i];
        if (role.cardinality.unlimited_max()) continue;
        size_t count = CountParticipation(rel->ends[i], a, i);
        if (count + 1 > role.cardinality.max) {
          s = Status::ConsistencyViolation(
              "maximum role participation: '" + FullName(rel->ends[i]) +
              "' already takes part in " + std::to_string(count) +
              " relationships of '" + (*info)->name + "' as '" + role.name +
              "' (max " + role.cardinality.ToString() + ")");
        }
      }
      if (!s.ok()) break;
    }
    if (s.ok()) {
      s = CheckAcyclicity(new_assoc_id, rel->ends[0], rel->ends[1], rel_id);
    }
    if (!s.ok()) {
      IndexRelationship(*rel);
      return s;
    }
    IndexRelationship(*rel);
  }

  AssociationId old_assoc = rel->assoc;
  EraseFrom(by_assoc_[old_assoc], rel_id);
  rel->assoc = new_assoc_id;
  by_assoc_[new_assoc_id].push_back(rel_id);
  if (!rel->is_pattern) {
    extent_counters_.RemoveRelationship(old_assoc);
    extent_counters_.AddRelationship(new_assoc_id);
    MoveParticipantCounts(*rel, old_assoc, new_assoc_id);
  }
  Touch(rel_id);
  // Migrates relationship-index entries between association extents.
  RefreshRelAttrIndexes(rel_id);

  if (!rel->is_pattern) {
    UpdateEvent event{UpdateKind::kReclassifyRelationship, this, ObjectId(),
                      rel_id};
    Status veto = RunProcedures(new_assoc_id, event);
    if (!veto.ok()) {
      EraseFrom(by_assoc_[new_assoc_id], rel_id);
      rel->assoc = old_assoc;
      by_assoc_[old_assoc].push_back(rel_id);
      extent_counters_.RemoveRelationship(new_assoc_id);
      extent_counters_.AddRelationship(old_assoc);
      MoveParticipantCounts(*rel, new_assoc_id, old_assoc);
      RefreshRelAttrIndexes(rel_id);
      return veto;
    }
  }
  CountReclassify();
  return Status::OK();
}

// --- Attached procedures -----------------------------------------------------

void Database::AttachProcedure(ClassId cls, AttachedProcedure proc) {
  class_procedures_[cls].push_back(std::move(proc));
}

void Database::AttachProcedure(AssociationId assoc, AttachedProcedure proc) {
  assoc_procedures_[assoc].push_back(std::move(proc));
}

void Database::DetachProcedures(ClassId cls) { class_procedures_.erase(cls); }

void Database::DetachProcedures(AssociationId assoc) {
  assoc_procedures_.erase(assoc);
}

// --- Change tracking ---------------------------------------------------------

void Database::ClearChangeTracking() {
  changed_objects_.clear();
  changed_relationships_.clear();
}

// --- Schema evolution --------------------------------------------------------

Status Database::MigrateToSchema(schema::SchemaPtr new_schema) {
  if (new_schema == nullptr) {
    return Status::InvalidArgument("null schema");
  }
  schema::SchemaPtr old = schema_;
  schema_ = std::move(new_schema);
  Report report = AuditConsistency();
  if (!report.clean()) {
    schema_ = std::move(old);
    return Status::ConsistencyViolation(
        "existing data violates the new schema: " +
        report.violations.front().ToString() + " (and " +
        std::to_string(report.size() - 1) + " more)");
  }
  // Drop indexes whose class/role no longer exists (a pruned spec could
  // otherwise make every future Load() fail), then re-derive coverage —
  // generalization families may have changed.
  attr_indexes_.PruneInvalidSpecs(*schema_);
  attr_indexes_.RefreshAll(*schema_, objects_, relationships_);
  return Status::OK();
}

}  // namespace seed::core
