#include "core/printer.h"

namespace seed::core {

namespace {

std::string Indent(int depth) { return std::string(depth * 2, ' '); }

}  // namespace

void Printer::RenderClassSubtree(const schema::Schema& schema, ClassId cls,
                                 int depth, std::string* out) {
  auto info = schema.GetClass(cls);
  if (!info.ok()) return;
  const schema::ObjectClass& c = **info;
  *out += Indent(depth) + c.name;
  if (c.is_dependent()) *out += " [" + c.cardinality.ToString() + "]";
  if (c.value_type != schema::ValueType::kNone) {
    *out += " : " + std::string(schema::ValueTypeToString(c.value_type));
    if (c.value_type == schema::ValueType::kEnum) {
      *out += " (";
      for (size_t i = 0; i < c.enum_values.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += c.enum_values[i];
      }
      *out += ")";
    }
  }
  if (c.is_specialized()) {
    auto super = schema.GetClass(c.generalizes_into);
    if (super.ok()) *out += " is-a " + (*super)->name;
  }
  if (c.covering) *out += " COVERING";
  *out += "\n";
  for (ClassId dep :
       schema.DependentClassesOf(schema::StructuralOwner::OfClass(cls))) {
    RenderClassSubtree(schema, dep, depth + 1, out);
  }
}

std::string Printer::RenderSchema(const schema::Schema& schema) {
  std::string out = "schema " + schema.name() + " v" +
                    std::to_string(schema.version()) + "\n";
  for (ClassId cls : schema.AllClassIds()) {
    auto info = schema.GetClass(cls);
    if (!info.ok() || (*info)->is_dependent()) continue;
    out += "class ";
    RenderClassSubtree(schema, cls, 0, &out);
  }
  for (AssociationId assoc : schema.AllAssociationIds()) {
    auto info = schema.GetAssociation(assoc);
    if (!info.ok()) continue;
    const schema::Association& a = **info;
    out += "association " + a.name + " (";
    for (int i = 0; i < 2; ++i) {
      if (i > 0) out += ", ";
      auto target = schema.GetClass(a.roles[i].target);
      out += a.roles[i].name + ": " +
             (target.ok() ? (*target)->name : "?") + " [" +
             a.roles[i].cardinality.ToString() + "]";
    }
    out += ")";
    if (a.acyclic) out += " ACYCLIC";
    if (a.is_specialized()) {
      auto super = schema.GetAssociation(a.generalizes_into);
      if (super.ok()) out += " is-a " + (*super)->name;
    }
    if (a.covering) out += " COVERING";
    out += "\n";
    for (ClassId dep : schema.DependentClassesOf(
             schema::StructuralOwner::OfAssociation(assoc))) {
      RenderClassSubtree(schema, dep, 1, &out);
    }
  }
  return out;
}

void Printer::RenderObjectSubtree(const Database& db, ObjectId obj,
                                  int depth, std::string* out) {
  auto item = db.GetObject(obj);
  if (!item.ok()) return;
  auto cls = db.schema()->GetClass((*item)->cls);
  *out += Indent(depth);
  if ((*item)->is_independent()) {
    *out += (*item)->name + " : " + (cls.ok() ? (*cls)->name : "?");
    if ((*item)->is_pattern) *out += " (pattern)";
  } else {
    std::string segment = cls.ok() ? (*cls)->name : "?";
    if (cls.ok() && (*cls)->cardinality.max != 1) {
      segment += "[" + std::to_string((*item)->index) + "]";
    }
    *out += segment;
  }
  if ((*item)->value.defined()) {
    *out += " = " + (*item)->value.ToString();
  }
  *out += "\n";
  for (ObjectId child : db.SubObjects(obj)) {
    RenderObjectSubtree(db, child, depth + 1, out);
  }
}

std::string Printer::RenderObjectTree(const Database& db, ObjectId root) {
  std::string out;
  RenderObjectSubtree(db, root, 0, &out);
  return out;
}

std::string Printer::RenderRelationship(const Database& db,
                                        RelationshipId rel) {
  auto item = db.GetRelationship(rel);
  if (!item.ok()) return "<dead relationship>";
  auto assoc = db.schema()->GetAssociation((*item)->assoc);
  std::string out = (assoc.ok() ? (*assoc)->name : "?") + "(";
  out += db.FullName((*item)->ends[0]) + ", " +
         db.FullName((*item)->ends[1]) + ")";
  if ((*item)->is_pattern) out += " (pattern)";
  // Attributes inline.
  auto attrs = db.SubObjects(rel);
  if (!attrs.empty()) {
    out += " {";
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) out += ", ";
      auto attr = db.GetObject(attrs[i]);
      auto cls = db.schema()->GetClass((*attr)->cls);
      out += (cls.ok() ? (*cls)->name : "?") + "=" +
             (*attr)->value.ToString();
    }
    out += "}";
  }
  return out;
}

std::string Printer::RenderDatabase(const Database& db) {
  std::string out;
  for (ObjectId root : db.AllIndependentObjects()) {
    out += RenderObjectTree(db, root);
  }
  for (ObjectId root : db.AllPatternRoots()) {
    out += RenderObjectTree(db, root);
  }
  bool first = true;
  db.ForEachRelationship([&](const RelationshipItem& rel) {
    if (first) {
      out += "relationships:\n";
      first = false;
    }
    out += "  " + RenderRelationship(db, rel.id) + "\n";
  });
  return out;
}

}  // namespace seed::core
