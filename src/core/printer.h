// Text rendering of schemas and database contents, in the spirit of the
// paper's modified entity-relationship diagrams: classes with their
// dependent-class trees and cardinalities, associations with roles, and
// object trees with values. Used by the interactive shell and for test
// diagnostics.

#ifndef SEED_CORE_PRINTER_H_
#define SEED_CORE_PRINTER_H_

#include <string>

#include "core/database.h"
#include "schema/schema.h"

namespace seed::core {

class Printer {
 public:
  /// Renders the whole schema:
  ///   class Data
  ///     Text [0..16]
  ///       Body [1..1]
  ///         Contents [1..1] : STRING
  ///   association Read (from: Data [1..*], by: Action [0..*])
  static std::string RenderSchema(const schema::Schema& schema);

  /// Renders one object subtree with values:
  ///   Alarms : Data
  ///     Text[0]
  ///       Body
  ///         Keywords[1] = "Display"
  static std::string RenderObjectTree(const Database& db, ObjectId root);

  /// Renders every live independent object (patterns marked), each with its
  /// subtree and relationships.
  static std::string RenderDatabase(const Database& db);

  /// One line per relationship: Read(Alarms, AlarmHandler).
  static std::string RenderRelationship(const Database& db,
                                        RelationshipId rel);

 private:
  static void RenderClassSubtree(const schema::Schema& schema, ClassId cls,
                                 int depth, std::string* out);
  static void RenderObjectSubtree(const Database& db, ObjectId obj,
                                  int depth, std::string* out);
};

}  // namespace seed::core

#endif  // SEED_CORE_PRINTER_H_
