#include "core/stats.h"

#include "core/violation.h"

namespace seed::core {

DatabaseStats CollectStats(const Database& db) {
  DatabaseStats stats;
  stats.live_objects = db.num_live_objects();
  stats.live_relationships = db.num_live_relationships();

  // Depth per object, computed by walking parents (memoless; trees are
  // shallow in practice).
  auto depth_of = [&db](const ObjectItem& obj) {
    std::size_t depth = 0;
    const ObjectItem* cur = &obj;
    while (!cur->is_independent()) {
      ++depth;
      if (cur->parent_kind == ParentKind::kObject) {
        auto it = db.objects_raw().find(cur->parent_object);
        if (it == db.objects_raw().end()) break;
        cur = &it->second;
      } else {
        break;  // relationship attribute: counts one level
      }
    }
    return depth;
  };

  db.ForEachObject([&](const ObjectItem& obj) {
    if (obj.is_independent()) ++stats.independent_objects;
    if (obj.is_pattern) ++stats.pattern_items;
    auto cls = db.schema()->GetClass(obj.cls);
    if (cls.ok()) {
      ++stats.objects_per_class[(*cls)->full_name];
      if ((*cls)->value_type != schema::ValueType::kNone) {
        if (obj.value.defined()) {
          ++stats.defined_values;
        } else {
          ++stats.undefined_values;
        }
      }
    }
    stats.max_depth = std::max(stats.max_depth, depth_of(obj));
  });
  db.ForEachRelationship([&](const RelationshipItem& rel) {
    if (rel.is_pattern) ++stats.pattern_items;
    auto assoc = db.schema()->GetAssociation(rel.assoc);
    if (assoc.ok()) {
      ++stats.relationships_per_association[(*assoc)->name];
    }
  });
  for (const auto& [id, obj] : db.objects_raw()) {
    if (obj.deleted) ++stats.tombstones;
  }
  for (const auto& [id, rel] : db.relationships_raw()) {
    if (rel.deleted) ++stats.tombstones;
  }
  for (const Violation& v : db.CheckCompleteness().violations) {
    ++stats.completeness_findings[std::string(RuleToString(v.rule))];
  }
  return stats;
}

std::string DatabaseStats::ToString() const {
  std::string out;
  out += "objects: " + std::to_string(live_objects) + " live (" +
         std::to_string(independent_objects) + " independent, " +
         std::to_string(pattern_items) + " pattern items), depth <= " +
         std::to_string(max_depth) + "\n";
  out += "relationships: " + std::to_string(live_relationships) +
         " live; tombstones: " + std::to_string(tombstones) + "\n";
  char coverage[32];
  std::snprintf(coverage, sizeof(coverage), "%.1f%%",
                ValueCoverage() * 100.0);
  out += "value coverage: " + std::string(coverage) + " (" +
         std::to_string(defined_values) + " defined, " +
         std::to_string(undefined_values) + " undefined)\n";
  if (!objects_per_class.empty()) {
    out += "per class:";
    for (const auto& [name, count] : objects_per_class) {
      out += " " + name + "=" + std::to_string(count);
    }
    out += "\n";
  }
  if (!relationships_per_association.empty()) {
    out += "per association:";
    for (const auto& [name, count] : relationships_per_association) {
      out += " " + name + "=" + std::to_string(count);
    }
    out += "\n";
  }
  if (!completeness_findings.empty()) {
    out += "completeness findings:";
    for (const auto& [rule, count] : completeness_findings) {
      out += " " + rule + "=" + std::to_string(count);
    }
    out += "\n";
  }
  return out;
}

}  // namespace seed::core
