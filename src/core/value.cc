#include "core/value.h"

#include "common/macros.h"

namespace seed::core {

schema::ValueType Value::type() const {
  using schema::ValueType;
  if (is_string()) return ValueType::kString;
  if (is_int()) return ValueType::kInt;
  if (is_real()) return ValueType::kReal;
  if (is_bool()) return ValueType::kBool;
  if (is_date()) return ValueType::kDate;
  if (is_enum()) return ValueType::kEnum;
  return ValueType::kNone;
}

std::string Value::ToString() const {
  if (!defined()) return "<undefined>";
  if (is_string()) return "\"" + as_string() + "\"";
  if (is_int()) return std::to_string(as_int());
  if (is_real()) return std::to_string(as_real());
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_date()) return as_date().ToString();
  return as_enum();
}

namespace {
enum Tag : std::uint8_t {
  kTagUndefined = 0,
  kTagString = 1,
  kTagInt = 2,
  kTagReal = 3,
  kTagBool = 4,
  kTagDate = 5,
  kTagEnum = 6,
};
}  // namespace

void Value::EncodeTo(Encoder* enc) const {
  if (!defined()) {
    enc->PutU8(kTagUndefined);
  } else if (is_string()) {
    enc->PutU8(kTagString);
    enc->PutString(as_string());
  } else if (is_int()) {
    enc->PutU8(kTagInt);
    enc->PutI64(as_int());
  } else if (is_real()) {
    enc->PutU8(kTagReal);
    enc->PutDouble(as_real());
  } else if (is_bool()) {
    enc->PutU8(kTagBool);
    enc->PutBool(as_bool());
  } else if (is_date()) {
    enc->PutU8(kTagDate);
    const schema::Date& d = as_date();
    enc->PutI64(d.year);
    enc->PutU8(d.month);
    enc->PutU8(d.day);
  } else {
    enc->PutU8(kTagEnum);
    enc->PutString(as_enum());
  }
}

Result<Value> Value::Decode(Decoder* dec) {
  SEED_ASSIGN_OR_RETURN(std::uint8_t tag, dec->GetU8());
  switch (tag) {
    case kTagUndefined:
      return Value();
    case kTagString: {
      SEED_ASSIGN_OR_RETURN(std::string s, dec->GetString());
      return Value::String(std::move(s));
    }
    case kTagInt: {
      SEED_ASSIGN_OR_RETURN(std::int64_t v, dec->GetI64());
      return Value::Int(v);
    }
    case kTagReal: {
      SEED_ASSIGN_OR_RETURN(double v, dec->GetDouble());
      return Value::Real(v);
    }
    case kTagBool: {
      SEED_ASSIGN_OR_RETURN(bool v, dec->GetBool());
      return Value::Bool(v);
    }
    case kTagDate: {
      SEED_ASSIGN_OR_RETURN(std::int64_t year, dec->GetI64());
      SEED_ASSIGN_OR_RETURN(std::uint8_t month, dec->GetU8());
      SEED_ASSIGN_OR_RETURN(std::uint8_t day, dec->GetU8());
      SEED_ASSIGN_OR_RETURN(
          schema::Date d,
          schema::Date::Make(static_cast<std::int32_t>(year), month, day));
      return Value::OfDate(d);
    }
    case kTagEnum: {
      SEED_ASSIGN_OR_RETURN(std::string s, dec->GetString());
      return Value::Enum(std::move(s));
    }
    default:
      return Status::Corruption("unknown value tag " + std::to_string(tag));
  }
}

}  // namespace seed::core
