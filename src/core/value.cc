#include "core/value.h"

#include <cmath>

#include "common/macros.h"

namespace seed::core {

schema::ValueType Value::type() const {
  using schema::ValueType;
  if (is_string()) return ValueType::kString;
  if (is_int()) return ValueType::kInt;
  if (is_real()) return ValueType::kReal;
  if (is_bool()) return ValueType::kBool;
  if (is_date()) return ValueType::kDate;
  if (is_enum()) return ValueType::kEnum;
  return ValueType::kNone;
}

namespace {

template <typename T>
int Cmp3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  size_t ti = repr_.index(), to = other.repr_.index();
  if (ti != to) return ti < to ? -1 : 1;
  if (!defined()) return 0;
  if (is_string()) return as_string().compare(other.as_string());
  if (is_int()) return Cmp3(as_int(), other.as_int());
  if (is_real()) {
    // Total order: every NaN compares equal to every NaN and after all
    // numbers, so Compare stays a strict weak ordering (IEEE < is not).
    double a = as_real(), b = other.as_real();
    bool na = std::isnan(a), nb = std::isnan(b);
    if (na || nb) return na == nb ? 0 : (na ? 1 : -1);
    return Cmp3(a, b);
  }
  if (is_bool()) return Cmp3(as_bool(), other.as_bool());
  if (is_date()) {
    const schema::Date &a = as_date(), &b = other.as_date();
    if (int c = Cmp3(a.year, b.year)) return c;
    if (int c = Cmp3(a.month, b.month)) return c;
    return Cmp3(a.day, b.day);
  }
  return as_enum().compare(other.as_enum());
}

size_t Value::Hash::operator()(const Value& v) const {
  size_t h = std::hash<size_t>{}(v.repr_.index());
  size_t payload = 0;
  if (v.is_string()) {
    payload = std::hash<std::string>{}(v.as_string());
  } else if (v.is_int()) {
    payload = std::hash<std::int64_t>{}(v.as_int());
  } else if (v.is_real()) {
    // All NaN payloads hash alike, matching Compare's NaN == NaN.
    double d = v.as_real();
    payload = std::isnan(d) ? 0x7FF8000000000000ull : std::hash<double>{}(d);
  } else if (v.is_bool()) {
    payload = std::hash<bool>{}(v.as_bool());
  } else if (v.is_date()) {
    const schema::Date& d = v.as_date();
    payload = (static_cast<size_t>(d.year) << 16) ^
              (static_cast<size_t>(d.month) << 8) ^ d.day;
  } else if (v.is_enum()) {
    payload = std::hash<std::string>{}(v.as_enum());
  }
  return h ^ (payload + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
}

std::string Value::ToString() const {
  if (!defined()) return "<undefined>";
  if (is_string()) return "\"" + as_string() + "\"";
  if (is_int()) return std::to_string(as_int());
  if (is_real()) return std::to_string(as_real());
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_date()) return as_date().ToString();
  return as_enum();
}

namespace {
enum Tag : std::uint8_t {
  kTagUndefined = 0,
  kTagString = 1,
  kTagInt = 2,
  kTagReal = 3,
  kTagBool = 4,
  kTagDate = 5,
  kTagEnum = 6,
};
}  // namespace

void Value::EncodeTo(Encoder* enc) const {
  if (!defined()) {
    enc->PutU8(kTagUndefined);
  } else if (is_string()) {
    enc->PutU8(kTagString);
    enc->PutString(as_string());
  } else if (is_int()) {
    enc->PutU8(kTagInt);
    enc->PutI64(as_int());
  } else if (is_real()) {
    enc->PutU8(kTagReal);
    enc->PutDouble(as_real());
  } else if (is_bool()) {
    enc->PutU8(kTagBool);
    enc->PutBool(as_bool());
  } else if (is_date()) {
    enc->PutU8(kTagDate);
    const schema::Date& d = as_date();
    enc->PutI64(d.year);
    enc->PutU8(d.month);
    enc->PutU8(d.day);
  } else {
    enc->PutU8(kTagEnum);
    enc->PutString(as_enum());
  }
}

Result<Value> Value::Decode(Decoder* dec) {
  SEED_ASSIGN_OR_RETURN(std::uint8_t tag, dec->GetU8());
  switch (tag) {
    case kTagUndefined:
      return Value();
    case kTagString: {
      SEED_ASSIGN_OR_RETURN(std::string s, dec->GetString());
      return Value::String(std::move(s));
    }
    case kTagInt: {
      SEED_ASSIGN_OR_RETURN(std::int64_t v, dec->GetI64());
      return Value::Int(v);
    }
    case kTagReal: {
      SEED_ASSIGN_OR_RETURN(double v, dec->GetDouble());
      return Value::Real(v);
    }
    case kTagBool: {
      SEED_ASSIGN_OR_RETURN(bool v, dec->GetBool());
      return Value::Bool(v);
    }
    case kTagDate: {
      SEED_ASSIGN_OR_RETURN(std::int64_t year, dec->GetI64());
      SEED_ASSIGN_OR_RETURN(std::uint8_t month, dec->GetU8());
      SEED_ASSIGN_OR_RETURN(std::uint8_t day, dec->GetU8());
      SEED_ASSIGN_OR_RETURN(
          schema::Date d,
          schema::Date::Make(static_cast<std::int32_t>(year), month, day));
      return Value::OfDate(d);
    }
    case kTagEnum: {
      SEED_ASSIGN_OR_RETURN(std::string s, dec->GetString());
      return Value::Enum(std::move(s));
    }
    default:
      return Status::Corruption("unknown value tag " + std::to_string(tag));
  }
}

}  // namespace seed::core
