#include "core/extent_counters.h"

#include <bit>
#include <vector>

namespace seed::core {

namespace {

/// Log2 bucket index of a degree: floor(log2(d)), with degree 0 mapped
/// to bucket 0 (never stored, but keeps the index provably in range).
size_t DegreeBucket(size_t degree) {
  return degree == 0 ? 0 : static_cast<size_t>(std::bit_width(degree)) - 1;
}

}  // namespace

void ExtentCounters::RemoveObject(ClassId cls) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return;
  if (--it->second == 0) classes_.erase(it);
}

void ExtentCounters::RemoveRelationship(AssociationId assoc) {
  auto it = assocs_.find(assoc);
  if (it == assocs_.end()) return;
  if (--it->second == 0) assocs_.erase(it);
}

void ExtentCounters::AddParticipant(AssociationId assoc, int role,
                                    ClassId cls, ObjectId obj) {
  ++participants_[assoc][role & 1][cls];
  DegreeDist& dist = degrees_[assoc][role & 1][cls];
  const size_t degree = ++dist.degree[obj];
  if (degree > 1) --dist.buckets[DegreeBucket(degree - 1)];
  ++dist.buckets[DegreeBucket(degree)];
  ++dist.ends;
}

void ExtentCounters::RemoveParticipant(AssociationId assoc, int role,
                                       ClassId cls, ObjectId obj) {
  auto it = participants_.find(assoc);
  if (it == participants_.end()) return;
  auto& per_class = it->second[role & 1];
  auto entry = per_class.find(cls);
  if (entry == per_class.end()) return;
  if (--entry->second == 0) per_class.erase(entry);
  if (it->second[0].empty() && it->second[1].empty()) {
    participants_.erase(it);
  }
  auto dit = degrees_.find(assoc);
  if (dit == degrees_.end()) return;
  auto& per_class_deg = dit->second[role & 1];
  auto cell = per_class_deg.find(cls);
  if (cell == per_class_deg.end()) return;
  DegreeDist& dist = cell->second;
  auto deg_entry = dist.degree.find(obj);
  if (deg_entry == dist.degree.end()) return;
  const size_t degree = deg_entry->second;
  --dist.buckets[DegreeBucket(degree)];
  if (degree > 1) {
    ++dist.buckets[DegreeBucket(degree - 1)];
    --deg_entry->second;
  } else {
    dist.degree.erase(deg_entry);
  }
  --dist.ends;
  if (dist.degree.empty()) per_class_deg.erase(cell);
  if (dit->second[0].empty() && dit->second[1].empty()) {
    degrees_.erase(dit);
  }
}

void ExtentCounters::Clear() {
  classes_.clear();
  assocs_.clear();
  participants_.clear();
  degrees_.clear();
}

size_t ExtentCounters::CountClass(ClassId cls) const {
  auto it = classes_.find(cls);
  return it == classes_.end() ? 0 : it->second;
}

size_t ExtentCounters::CountAssociation(AssociationId assoc) const {
  auto it = assocs_.find(assoc);
  return it == assocs_.end() ? 0 : it->second;
}

size_t ExtentCounters::CountClassExtent(const schema::Schema& schema,
                                        ClassId cls,
                                        bool include_specializations) const {
  if (!include_specializations) return CountClass(cls);
  size_t total = 0;
  for (ClassId c : schema.ClassFamily(cls)) total += CountClass(c);
  return total;
}

size_t ExtentCounters::CountAssociationExtent(
    const schema::Schema& schema, AssociationId assoc,
    bool include_specializations) const {
  if (!include_specializations) return CountAssociation(assoc);
  size_t total = 0;
  for (AssociationId a : schema.AssociationFamily(assoc)) {
    total += CountAssociation(a);
  }
  return total;
}

size_t ExtentCounters::CountParticipants(AssociationId assoc, int role,
                                         ClassId cls) const {
  auto it = participants_.find(assoc);
  if (it == participants_.end()) return 0;
  const auto& per_class = it->second[role & 1];
  auto entry = per_class.find(cls);
  return entry == per_class.end() ? 0 : entry->second;
}

ExtentCounters::DegreeSummary ExtentCounters::DegreeStats(
    const schema::Schema& schema, AssociationId assoc, int role, ClassId cls,
    bool include_specializations) const {
  std::vector<ClassId> classes =
      include_specializations ? schema.ClassFamily(cls)
                              : std::vector<ClassId>{cls};
  DegreeSummary summary;
  size_t top_bucket = 0;
  bool any = false;
  for (AssociationId a : schema.AssociationFamily(assoc)) {
    auto it = degrees_.find(a);
    if (it == degrees_.end()) continue;
    const auto& per_class = it->second[role & 1];
    for (ClassId c : classes) {
      auto cell = per_class.find(c);
      if (cell == per_class.end()) continue;
      const DegreeDist& dist = cell->second;
      // Exact classes partition objects, so `distinct` sums cleanly
      // across class cells; an object participating in several
      // associations of the family is counted once per association —
      // an overcount that only makes the mean degree conservative.
      summary.distinct += dist.degree.size();
      summary.ends += dist.ends;
      for (size_t b = dist.buckets.size(); b-- > 0;) {
        if (dist.buckets[b] == 0) continue;
        any = true;
        if (b > top_bucket) top_bucket = b;
        break;
      }
    }
  }
  if (any) {
    // Highest occupied bucket b holds degrees in [2^b, 2^(b+1)).
    summary.max_degree_upper = (size_t{2} << top_bucket) - 1;
  }
  return summary;
}

size_t ExtentCounters::CountParticipantsExtent(
    const schema::Schema& schema, AssociationId assoc, int role, ClassId cls,
    bool include_specializations) const {
  std::vector<ClassId> classes =
      include_specializations ? schema.ClassFamily(cls)
                              : std::vector<ClassId>{cls};
  size_t total = 0;
  for (AssociationId a : schema.AssociationFamily(assoc)) {
    auto it = participants_.find(a);
    if (it == participants_.end()) continue;
    const auto& per_class = it->second[role & 1];
    for (ClassId c : classes) {
      auto entry = per_class.find(c);
      if (entry != per_class.end()) total += entry->second;
    }
  }
  return total;
}

}  // namespace seed::core
