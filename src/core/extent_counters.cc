#include "core/extent_counters.h"

namespace seed::core {

void ExtentCounters::RemoveObject(ClassId cls) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return;
  if (--it->second == 0) classes_.erase(it);
}

void ExtentCounters::RemoveRelationship(AssociationId assoc) {
  auto it = assocs_.find(assoc);
  if (it == assocs_.end()) return;
  if (--it->second == 0) assocs_.erase(it);
}

void ExtentCounters::Clear() {
  classes_.clear();
  assocs_.clear();
}

size_t ExtentCounters::CountClass(ClassId cls) const {
  auto it = classes_.find(cls);
  return it == classes_.end() ? 0 : it->second;
}

size_t ExtentCounters::CountAssociation(AssociationId assoc) const {
  auto it = assocs_.find(assoc);
  return it == assocs_.end() ? 0 : it->second;
}

size_t ExtentCounters::CountClassExtent(const schema::Schema& schema,
                                        ClassId cls,
                                        bool include_specializations) const {
  if (!include_specializations) return CountClass(cls);
  size_t total = 0;
  for (ClassId c : schema.ClassFamily(cls)) total += CountClass(c);
  return total;
}

size_t ExtentCounters::CountAssociationExtent(
    const schema::Schema& schema, AssociationId assoc,
    bool include_specializations) const {
  if (!include_specializations) return CountAssociation(assoc);
  size_t total = 0;
  for (AssociationId a : schema.AssociationFamily(assoc)) {
    total += CountAssociation(a);
  }
  return total;
}

}  // namespace seed::core
