#include "core/extent_counters.h"

#include <vector>

namespace seed::core {

void ExtentCounters::RemoveObject(ClassId cls) {
  auto it = classes_.find(cls);
  if (it == classes_.end()) return;
  if (--it->second == 0) classes_.erase(it);
}

void ExtentCounters::RemoveRelationship(AssociationId assoc) {
  auto it = assocs_.find(assoc);
  if (it == assocs_.end()) return;
  if (--it->second == 0) assocs_.erase(it);
}

void ExtentCounters::AddParticipant(AssociationId assoc, int role,
                                    ClassId cls) {
  ++participants_[assoc][role & 1][cls];
}

void ExtentCounters::RemoveParticipant(AssociationId assoc, int role,
                                       ClassId cls) {
  auto it = participants_.find(assoc);
  if (it == participants_.end()) return;
  auto& per_class = it->second[role & 1];
  auto entry = per_class.find(cls);
  if (entry == per_class.end()) return;
  if (--entry->second == 0) per_class.erase(entry);
  if (it->second[0].empty() && it->second[1].empty()) {
    participants_.erase(it);
  }
}

void ExtentCounters::Clear() {
  classes_.clear();
  assocs_.clear();
  participants_.clear();
}

size_t ExtentCounters::CountClass(ClassId cls) const {
  auto it = classes_.find(cls);
  return it == classes_.end() ? 0 : it->second;
}

size_t ExtentCounters::CountAssociation(AssociationId assoc) const {
  auto it = assocs_.find(assoc);
  return it == assocs_.end() ? 0 : it->second;
}

size_t ExtentCounters::CountClassExtent(const schema::Schema& schema,
                                        ClassId cls,
                                        bool include_specializations) const {
  if (!include_specializations) return CountClass(cls);
  size_t total = 0;
  for (ClassId c : schema.ClassFamily(cls)) total += CountClass(c);
  return total;
}

size_t ExtentCounters::CountAssociationExtent(
    const schema::Schema& schema, AssociationId assoc,
    bool include_specializations) const {
  if (!include_specializations) return CountAssociation(assoc);
  size_t total = 0;
  for (AssociationId a : schema.AssociationFamily(assoc)) {
    total += CountAssociation(a);
  }
  return total;
}

size_t ExtentCounters::CountParticipants(AssociationId assoc, int role,
                                         ClassId cls) const {
  auto it = participants_.find(assoc);
  if (it == participants_.end()) return 0;
  const auto& per_class = it->second[role & 1];
  auto entry = per_class.find(cls);
  return entry == per_class.end() ? 0 : entry->second;
}

size_t ExtentCounters::CountParticipantsExtent(
    const schema::Schema& schema, AssociationId assoc, int role, ClassId cls,
    bool include_specializations) const {
  std::vector<ClassId> classes =
      include_specializations ? schema.ClassFamily(cls)
                              : std::vector<ClassId>{cls};
  size_t total = 0;
  for (AssociationId a : schema.AssociationFamily(assoc)) {
    auto it = participants_.find(a);
    if (it == participants_.end()) continue;
    const auto& per_class = it->second[role & 1];
    for (ClassId c : classes) {
      auto entry = per_class.find(c);
      if (entry != per_class.end()) total += entry->second;
    }
  }
  return total;
}

}  // namespace seed::core
