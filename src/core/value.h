// Value: the (possibly undefined) datum carried by an object.
//
// The paper's treatment of incomplete information makes "undefined" a
// first-class state: an object of a value-carrying class may exist without
// a value; in searches an undefined object matches nothing, and only the
// explicit completeness check reports it.

#ifndef SEED_CORE_VALUE_H_
#define SEED_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/coding.h"
#include "common/result.h"
#include "schema/types.h"

namespace seed::core {

/// Distinguishes enum values from plain strings in the variant.
struct EnumValue {
  std::string name;
  bool operator==(const EnumValue&) const = default;
};

class Value {
 public:
  /// Undefined value.
  Value() = default;

  static Value String(std::string s) { return Value(Repr(std::move(s))); }
  static Value Int(std::int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value OfDate(schema::Date d) { return Value(Repr(d)); }
  static Value Enum(std::string name) {
    return Value(Repr(EnumValue{std::move(name)}));
  }

  bool defined() const {
    return !std::holds_alternative<std::monostate>(repr_);
  }

  /// The schema type this value conforms to (kNone when undefined).
  schema::ValueType type() const;

  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(repr_); }
  bool is_real() const { return std::holds_alternative<double>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_date() const { return std::holds_alternative<schema::Date>(repr_); }
  bool is_enum() const { return std::holds_alternative<EnumValue>(repr_); }

  const std::string& as_string() const { return std::get<std::string>(repr_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(repr_); }
  double as_real() const { return std::get<double>(repr_); }
  bool as_bool() const { return std::get<bool>(repr_); }
  const schema::Date& as_date() const { return std::get<schema::Date>(repr_); }
  const std::string& as_enum() const {
    return std::get<EnumValue>(repr_).name;
  }

  bool operator==(const Value&) const = default;

  /// Total order over all values: undefined first, then by type
  /// (string < int < real < bool < date < enum), then by value within a
  /// type. Gives the attribute-index subsystem a deterministic ordered-map
  /// key; cross-type comparisons carry no semantic meaning.
  int Compare(const Value& other) const;

  struct Less {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };

  /// Equality consistent with Compare (unlike operator==, which follows
  /// IEEE semantics where NaN != NaN). Hash containers keyed by Value
  /// must pair this with Hash.
  struct CompareEqual {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) == 0;
    }
  };

  struct Hash {
    size_t operator()(const Value& v) const;
  };

  /// Human-readable rendering ("<undefined>", "\"text\"", "42", ...).
  std::string ToString() const;

  void EncodeTo(Encoder* enc) const;
  static Result<Value> Decode(Decoder* dec);

 private:
  using Repr = std::variant<std::monostate, std::string, std::int64_t,
                            double, bool, schema::Date, EnumValue>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

}  // namespace seed::core

#endif  // SEED_CORE_VALUE_H_
