// Structured rule-violation reports.
//
// The paper splits schema information into *consistency* rules (enforced on
// every update) and *completeness* rules (checked only by explicit
// operations). Both kinds of check report through this vocabulary.

#ifndef SEED_CORE_VIOLATION_H_
#define SEED_CORE_VIOLATION_H_

#include <string>
#include <vector>

#include "common/ids.h"

namespace seed::core {

enum class Rule {
  // Consistency rules (veto updates).
  kClassMembership,        // item's class not legal in this position
  kMaxCardinality,         // too many sub-objects in a role
  kRoleMaxParticipation,   // object participates in too many relationships
  kAcyclic,                // relationship would close a cycle
  kValueType,              // value does not conform to the class
  kDuplicateRelationship,  // same association and participants already exist
  kNameConflict,           // independent object name already taken
  kAttachedProcedure,      // an attached procedure vetoed the update
  kPatternSeparation,      // illegal mixing of patterns and normal items

  // Completeness rules (reported, never vetoed).
  kMinCardinality,        // too few sub-objects in a role
  kRoleMinParticipation,  // object participates in too few relationships
  kCovering,              // instance not yet specialized under a covering
                          // generalization
  kUndefinedValue,        // value-carrying object without a value
};

std::string_view RuleToString(Rule rule);

struct Violation {
  Rule rule;
  /// Offending object (invalid if the violation concerns a relationship).
  ObjectId object;
  RelationshipId relationship;
  std::string detail;

  std::string ToString() const;
};

/// Result of an explicit completeness check (or a full consistency audit).
struct Report {
  std::vector<Violation> violations;

  bool clean() const { return violations.empty(); }
  size_t size() const { return violations.size(); }

  /// Violations of one rule.
  std::vector<Violation> Of(Rule rule) const {
    std::vector<Violation> out;
    for (const Violation& v : violations) {
      if (v.rule == rule) out.push_back(v);
    }
    return out;
  }

  std::string ToString() const;
};

}  // namespace seed::core

#endif  // SEED_CORE_VIOLATION_H_
