// Retrieval operations: name resolution, class/association queries,
// sub-object navigation. The SEED prototype supports "data creation,
// update, and simple retrieval by name"; complex queries live in
// seed_query.

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "core/database.h"

namespace seed::core {

Result<ObjectId> Database::FindObjectByName(std::string_view path) const {
  SEED_ASSIGN_OR_RETURN(auto segments, strings::ParsePath(path));
  auto root_it = name_index_.find(segments[0].name);
  if (root_it == name_index_.end()) {
    return Status::NotFound("no object named '" + segments[0].name + "'");
  }
  ObjectId cur = root_it->second;
  for (size_t i = 1; i < segments.size(); ++i) {
    const ObjectItem& parent = objects_.at(cur);
    auto dep_cls = schema_->ResolveSubObjectRole(parent.cls,
                                                 segments[i].name);
    if (!dep_cls.ok()) return dep_cls.status();
    std::uint32_t index = segments[i].index.value_or(0);
    ObjectId child = FindChildByKey(cur, *dep_cls, index);
    if (!child.valid()) {
      return Status::NotFound("object '" + std::string(path) +
                              "': no sub-object '" +
                              segments[i].ToString() + "'");
    }
    cur = child;
  }
  return cur;
}

Result<ObjectId> Database::FindPatternByName(std::string_view path) const {
  SEED_ASSIGN_OR_RETURN(auto segments, strings::ParsePath(path));
  auto root_it = pattern_name_index_.find(segments[0].name);
  if (root_it == pattern_name_index_.end()) {
    return Status::NotFound("no pattern named '" + segments[0].name + "'");
  }
  ObjectId cur = root_it->second;
  for (size_t i = 1; i < segments.size(); ++i) {
    const ObjectItem& parent = objects_.at(cur);
    auto dep_cls = schema_->ResolveSubObjectRole(parent.cls,
                                                 segments[i].name);
    if (!dep_cls.ok()) return dep_cls.status();
    std::uint32_t index = segments[i].index.value_or(0);
    ObjectId child = FindChildByKey(cur, *dep_cls, index);
    if (!child.valid()) {
      return Status::NotFound("pattern '" + std::string(path) +
                              "': no sub-object '" +
                              segments[i].ToString() + "'");
    }
    cur = child;
  }
  return cur;
}

std::string Database::FullName(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return "<unknown>";
  const ObjectItem& obj = it->second;
  std::string segment;
  if (obj.is_independent()) return obj.name;

  auto cls = schema_->GetClass(obj.cls);
  if (cls.ok()) {
    segment = (*cls)->name;
    if ((*cls)->cardinality.max != 1) {
      segment += "[" + std::to_string(obj.index) + "]";
    }
  } else {
    segment = "<class" + std::to_string(obj.cls.raw()) + ">";
  }
  if (obj.parent_kind == ParentKind::kObject) {
    return FullName(obj.parent_object) + "." + segment;
  }
  // Relationship attribute: relationships have no user names; render as
  // "<AssocName>#<relid>.role".
  auto rel_it = relationships_.find(obj.parent_relationship);
  std::string prefix = "<rel>";
  if (rel_it != relationships_.end()) {
    auto assoc = schema_->GetAssociation(rel_it->second.assoc);
    prefix = (assoc.ok() ? (*assoc)->name : "<assoc>") + "#" +
             std::to_string(obj.parent_relationship.raw());
  }
  return prefix + "." + segment;
}

std::vector<ObjectId> Database::ObjectsOfClass(
    ClassId cls, bool include_specializations) const {
  std::vector<ObjectId> out;
  std::vector<ClassId> family =
      include_specializations ? schema_->ClassFamily(cls)
                              : std::vector<ClassId>{cls};
  for (ClassId c : family) {
    auto it = by_class_.find(c);
    if (it == by_class_.end()) continue;
    for (ObjectId id : it->second) {
      if (!objects_.at(id).is_pattern) out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RelationshipId> Database::RelationshipsOfAssociation(
    AssociationId assoc, bool include_specializations) const {
  std::vector<RelationshipId> out;
  std::vector<AssociationId> family =
      include_specializations ? schema_->AssociationFamily(assoc)
                              : std::vector<AssociationId>{assoc};
  for (AssociationId a : family) {
    auto it = by_assoc_.find(a);
    if (it == by_assoc_.end()) continue;
    for (RelationshipId id : it->second) {
      if (!relationships_.at(id).is_pattern) out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RelationshipId> Database::RelationshipsOf(ObjectId obj,
                                                      AssociationId assoc,
                                                      int role) const {
  std::vector<RelationshipId> out;
  auto it = rels_by_object_.find(obj);
  if (it == rels_by_object_.end()) return out;
  std::unordered_set<std::uint64_t> family_set;
  if (assoc.valid()) {
    for (AssociationId a : schema_->AssociationFamily(assoc)) {
      family_set.insert(a.raw());
    }
  }
  for (RelationshipId rid : it->second) {
    const RelationshipItem& rel = relationships_.at(rid);
    if (rel.is_pattern) continue;
    if (assoc.valid() && family_set.count(rel.assoc.raw()) == 0) continue;
    if (role >= 0 && rel.ends[role] != obj) continue;
    out.push_back(rid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RelationshipId> Database::PatternRelationshipsOf(
    ObjectId obj, AssociationId assoc) const {
  std::vector<RelationshipId> out;
  auto it = rels_by_object_.find(obj);
  if (it == rels_by_object_.end()) return out;
  std::unordered_set<std::uint64_t> family_set;
  if (assoc.valid()) {
    for (AssociationId a : schema_->AssociationFamily(assoc)) {
      family_set.insert(a.raw());
    }
  }
  for (RelationshipId rid : it->second) {
    const RelationshipItem& rel = relationships_.at(rid);
    if (!rel.is_pattern) continue;
    if (assoc.valid() && family_set.count(rel.assoc.raw()) == 0) continue;
    out.push_back(rid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

std::vector<ObjectId> CollectSubObjects(
    const std::map<ObjectId, ObjectItem>& objects,
    const schema::Schema& schema, const std::vector<ObjectId>& children,
    std::string_view role) {
  std::vector<ObjectId> out;
  for (ObjectId child_id : children) {
    const ObjectItem& child = objects.at(child_id);
    if (child.deleted) continue;
    if (!role.empty()) {
      auto cls = schema.GetClass(child.cls);
      if (!cls.ok() || (*cls)->name != role) continue;
    }
    out.push_back(child_id);
  }
  std::stable_sort(out.begin(), out.end(),
                   [&objects](ObjectId a, ObjectId b) {
                     return objects.at(a).index < objects.at(b).index;
                   });
  return out;
}

}  // namespace

std::vector<ObjectId> Database::SubObjects(ObjectId parent,
                                           std::string_view role) const {
  auto it = objects_.find(parent);
  if (it == objects_.end()) return {};
  return CollectSubObjects(objects_, *schema_, it->second.children, role);
}

std::vector<ObjectId> Database::SubObjects(RelationshipId parent,
                                           std::string_view role) const {
  auto it = relationships_.find(parent);
  if (it == relationships_.end()) return {};
  return CollectSubObjects(objects_, *schema_, it->second.children, role);
}

std::vector<ObjectId> Database::AllIndependentObjects() const {
  std::vector<ObjectId> out;
  for (const auto& [name, id] : name_index_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ObjectId> Database::AllPatternRoots() const {
  std::vector<ObjectId> out;
  for (const auto& [name, id] : pattern_name_index_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

void Database::ForEachObject(
    const std::function<void(const ObjectItem&)>& fn) const {
  for (const auto& [id, obj] : objects_) {
    if (!obj.deleted) fn(obj);
  }
}

void Database::ForEachRelationship(
    const std::function<void(const RelationshipItem&)>& fn) const {
  for (const auto& [id, rel] : relationships_) {
    if (!rel.deleted) fn(rel);
  }
}

}  // namespace seed::core
