// ExtentCounters: incrementally maintained live-population counts per
// exact class and per exact association — the base statistics the query
// planner's cost model reads to size extents without scanning them.
//
// The Database updates the counters from the same index-maintenance hook
// points that keep its name/class/association maps current (IndexObject /
// UnindexObject and the relationship twins), so the counts are exact at
// all times: after create, delete cascade, reclassify, veto rollback,
// version restore and persistence load (the bulk paths go through
// Database::RebuildIndexes, which re-derives the counters the same way it
// re-derives the maps). Pattern items are excluded — they are invisible
// to the query layer's extents.
//
// Degree statistics ride on the same hooks: per (association, role,
// class), the number of live non-pattern relationship ends filled by an
// object of exactly that class. They replace the planner's uniform
// assoc/extent degree guess — for a skewed graph the participation count
// of the *queried* class family says how many edges a join hop can
// actually touch. Relationship create/delete maintain both ends;
// reclassifying an object migrates its ends' counts between classes, and
// reclassifying a relationship migrates them between associations
// (Database::MoveParticipantCounts, run forward and on veto rollback).
//
// Family (generalization-closed) counts are summed on demand over the
// schema's class/association family, which is small; the per-extent
// counters themselves are O(1) to maintain.

#ifndef SEED_CORE_EXTENT_COUNTERS_H_
#define SEED_CORE_EXTENT_COUNTERS_H_

#include <array>
#include <cstddef>
#include <unordered_map>

#include "common/ids.h"
#include "schema/schema.h"

namespace seed::core {

class ExtentCounters {
 public:
  void AddObject(ClassId cls) { ++classes_[cls]; }
  void RemoveObject(ClassId cls);
  void AddRelationship(AssociationId assoc) { ++assocs_[assoc]; }
  void RemoveRelationship(AssociationId assoc);

  /// One relationship end: a live non-pattern relationship of exactly
  /// `assoc` whose role-`role` end is the object `obj` of exactly `cls`.
  /// The object identity feeds the per-cell degree distribution.
  void AddParticipant(AssociationId assoc, int role, ClassId cls,
                      ObjectId obj);
  void RemoveParticipant(AssociationId assoc, int role, ClassId cls,
                         ObjectId obj);

  void Clear();

  /// Live non-pattern objects of exactly `cls`.
  size_t CountClass(ClassId cls) const;
  /// Live non-pattern relationships of exactly `assoc`.
  size_t CountAssociation(AssociationId assoc) const;
  /// Relationship ends of exactly `assoc` at `role` filled by exactly
  /// `cls` objects.
  size_t CountParticipants(AssociationId assoc, int role, ClassId cls) const;

  /// Extent size as the query layer sees it: the class and, when
  /// `include_specializations`, its whole generalization family.
  size_t CountClassExtent(const schema::Schema& schema, ClassId cls,
                          bool include_specializations) const;
  size_t CountAssociationExtent(const schema::Schema& schema,
                                AssociationId assoc,
                                bool include_specializations) const;

  /// Participation as the join planner sees it: relationship ends over
  /// the association's whole family at `role` filled by objects of the
  /// `cls` family (or exactly `cls` when `include_specializations` is
  /// off). This is the numerator of the tracked-degree estimate.
  size_t CountParticipantsExtent(const schema::Schema& schema,
                                 AssociationId assoc, int role, ClassId cls,
                                 bool include_specializations = true) const;

  /// Degree-distribution summary over the association family at `role`,
  /// restricted to participant objects of the `cls` family: total ends,
  /// distinct participant objects, and an upper bound on the hottest
  /// object's degree read off the log2 degree buckets (so within 2x of
  /// the true maximum). `ends / distinct` is the mean degree;
  /// `max_degree_upper` against that mean is the planner's skew signal —
  /// near-uniform graphs stay below 2x by construction of the buckets.
  struct DegreeSummary {
    size_t ends = 0;
    size_t distinct = 0;
    size_t max_degree_upper = 0;
  };
  DegreeSummary DegreeStats(const schema::Schema& schema,
                            AssociationId assoc, int role, ClassId cls,
                            bool include_specializations = true) const;

 private:
  /// Per-(assoc, role, class) degree histogram: the exact per-object end
  /// count plus log2 buckets over it (buckets[i] counts objects with
  /// degree in [2^i, 2^(i+1))), maintained incrementally on every degree
  /// transition so DegreeStats never scans.
  struct DegreeDist {
    std::unordered_map<ObjectId, size_t> degree;
    std::array<size_t, 64> buckets{};
    size_t ends = 0;
  };

  std::unordered_map<ClassId, size_t> classes_;
  std::unordered_map<AssociationId, size_t> assocs_;
  /// participants_[assoc][role][cls] — roles of an association are
  /// exactly two, classes per role are few.
  std::unordered_map<AssociationId,
                     std::array<std::unordered_map<ClassId, size_t>, 2>>
      participants_;
  /// degrees_[assoc][role][cls] — same cell structure as participants_.
  std::unordered_map<AssociationId,
                     std::array<std::unordered_map<ClassId, DegreeDist>, 2>>
      degrees_;
};

}  // namespace seed::core

#endif  // SEED_CORE_EXTENT_COUNTERS_H_
