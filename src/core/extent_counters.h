// ExtentCounters: incrementally maintained live-population counts per
// exact class and per exact association — the base statistics the query
// planner's cost model reads to size extents without scanning them.
//
// The Database updates the counters from the same index-maintenance hook
// points that keep its name/class/association maps current (IndexObject /
// UnindexObject and the relationship twins), so the counts are exact at
// all times: after create, delete cascade, reclassify, veto rollback,
// version restore and persistence load (the bulk paths go through
// Database::RebuildIndexes, which re-derives the counters the same way it
// re-derives the maps). Pattern items are excluded — they are invisible
// to the query layer's extents.
//
// Family (generalization-closed) counts are summed on demand over the
// schema's class/association family, which is small; the per-extent
// counters themselves are O(1) to maintain.

#ifndef SEED_CORE_EXTENT_COUNTERS_H_
#define SEED_CORE_EXTENT_COUNTERS_H_

#include <cstddef>
#include <unordered_map>

#include "common/ids.h"
#include "schema/schema.h"

namespace seed::core {

class ExtentCounters {
 public:
  void AddObject(ClassId cls) { ++classes_[cls]; }
  void RemoveObject(ClassId cls);
  void AddRelationship(AssociationId assoc) { ++assocs_[assoc]; }
  void RemoveRelationship(AssociationId assoc);
  void Clear();

  /// Live non-pattern objects of exactly `cls`.
  size_t CountClass(ClassId cls) const;
  /// Live non-pattern relationships of exactly `assoc`.
  size_t CountAssociation(AssociationId assoc) const;

  /// Extent size as the query layer sees it: the class and, when
  /// `include_specializations`, its whole generalization family.
  size_t CountClassExtent(const schema::Schema& schema, ClassId cls,
                          bool include_specializations) const;
  size_t CountAssociationExtent(const schema::Schema& schema,
                                AssociationId assoc,
                                bool include_specializations) const;

 private:
  std::unordered_map<ClassId, size_t> classes_;
  std::unordered_map<AssociationId, size_t> assocs_;
};

}  // namespace seed::core

#endif  // SEED_CORE_EXTENT_COUNTERS_H_
