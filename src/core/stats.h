// Database statistics: per-class and per-association population counts,
// structure depth, value coverage, completeness summary. The kind of
// dashboard a software-engineering environment shows for a specification
// database ("how formal/complete is this spec by now?").

#ifndef SEED_CORE_STATS_H_
#define SEED_CORE_STATS_H_

#include <map>
#include <string>

#include "core/database.h"

namespace seed::core {

struct DatabaseStats {
  std::size_t live_objects = 0;
  std::size_t independent_objects = 0;
  std::size_t pattern_items = 0;
  std::size_t live_relationships = 0;
  std::size_t tombstones = 0;
  /// Deepest sub-object nesting among live objects (0 = flat).
  std::size_t max_depth = 0;
  /// Live objects of value-carrying classes with / without a value.
  std::size_t defined_values = 0;
  std::size_t undefined_values = 0;
  /// Exact-class population (class full name -> live count).
  std::map<std::string, std::size_t> objects_per_class;
  /// Exact-association population.
  std::map<std::string, std::size_t> relationships_per_association;
  /// Completeness findings per rule name.
  std::map<std::string, std::size_t> completeness_findings;

  /// Fraction of value-carrying objects that are defined (1.0 when none).
  double ValueCoverage() const {
    std::size_t total = defined_values + undefined_values;
    return total == 0 ? 1.0
                      : static_cast<double>(defined_values) /
                            static_cast<double>(total);
  }

  std::string ToString() const;
};

/// One full scan (plus a completeness check) over the database.
DatabaseStats CollectStats(const Database& db);

}  // namespace seed::core

#endif  // SEED_CORE_STATS_H_
