#include "query/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "exec/worker_pool.h"
#include "query/stats.h"

namespace seed::query {

namespace {

using Kind = PredicateShape::Kind;

/// A sargable conjunct: an attribute (own value when `role` empty) probed
/// by equality keys or by an integer range.
struct Sarg {
  std::string role;
  bool is_range = false;
  std::vector<core::Value> keys;  // equality probes
  core::Value lo, hi;             // range bounds
  bool lo_inclusive = true;
  bool hi_inclusive = true;
};

/// Flattens nested And shapes into a conjunct list.
void CollectConjuncts(const PredicateShape* shape,
                      std::vector<const PredicateShape*>* out) {
  if (shape == nullptr) return;
  if (shape->kind == Kind::kAnd) {
    for (const auto& child : shape->children) {
      CollectConjuncts(child.get(), out);
    }
    return;
  }
  out->push_back(shape);
}

/// True iff `shape` is an OR tree whose every leaf is ValueEquals;
/// collects the leaf keys.
bool CollectEqualityLeaves(const PredicateShape* shape,
                           std::vector<core::Value>* keys) {
  if (shape == nullptr) return false;
  if (shape->kind == Kind::kValueEquals) {
    keys->push_back(shape->value);
    return true;
  }
  if (shape->kind == Kind::kOr) {
    for (const auto& child : shape->children) {
      if (!CollectEqualityLeaves(child.get(), keys)) return false;
    }
    return !shape->children.empty();
  }
  return false;
}

/// Extracts the sargable form of one conjunct on the attribute `role`
/// (empty = the object's own value), if any.
bool ExtractSarg(const PredicateShape* shape, std::string role, Sarg* out) {
  std::vector<core::Value> keys;
  if (CollectEqualityLeaves(shape, &keys)) {
    out->role = std::move(role);
    out->is_range = false;
    out->keys = std::move(keys);
    return true;
  }
  if (shape->kind == Kind::kIntLess || shape->kind == Kind::kIntGreater) {
    out->role = std::move(role);
    out->is_range = true;
    if (shape->kind == Kind::kIntLess) {
      out->lo = core::Value::Int(std::numeric_limits<std::int64_t>::min());
      out->lo_inclusive = true;
      out->hi = core::Value::Int(shape->bound);
      out->hi_inclusive = false;
    } else {
      out->lo = core::Value::Int(shape->bound);
      out->lo_inclusive = false;
      out->hi = core::Value::Int(std::numeric_limits<std::int64_t>::max());
      out->hi_inclusive = true;
    }
    return true;
  }
  // OnSubObject(role, inner): sargable when we are at the top level (role
  // still empty) and the inner predicate is sargable on its own value.
  if (shape->kind == Kind::kOnSubObject && role.empty() &&
      !shape->children.empty()) {
    Sarg inner;
    if (!ExtractSarg(shape->children[0].get(), "", &inner)) return false;
    if (!inner.role.empty()) return false;  // no nested roles
    inner.role = shape->text;
    *out = std::move(inner);
    return true;
  }
  return false;
}

/// The binder's sargable conjuncts in extraction order — the ordinal
/// space Plan::Leg::sarg_ordinal indexes into. Counts *every* sargable
/// conjunct (indexed or not), so the ordinal of a conjunct is derivable
/// from the predicate alone when a cached skeleton is re-bound.
std::vector<Sarg> CollectObjectSargs(const Predicate& p) {
  std::vector<Sarg> out;
  if (p.shape() == nullptr) return out;
  std::vector<const PredicateShape*> conjuncts;
  CollectConjuncts(p.shape(), &conjuncts);
  for (const PredicateShape* conjunct : conjuncts) {
    Sarg sarg;
    if (ExtractSarg(conjunct, "", &sarg)) out.push_back(std::move(sarg));
  }
  return out;
}

/// Same ordinal space for a relationship binder: one sarg per condition
/// whose inner predicate is sargable on the sub-object's own value.
std::vector<Sarg> CollectRelSargs(
    const std::vector<Planner::RelCondition>& conditions) {
  std::vector<Sarg> out;
  for (const auto& cond : conditions) {
    if (cond.inner.shape() == nullptr) continue;
    Sarg sarg;
    if (!ExtractSarg(cond.inner.shape(), "", &sarg) || !sarg.role.empty()) {
      continue;
    }
    out.push_back(std::move(sarg));
  }
  return out;
}

/// Serializes a predicate's *shape* — structure, roles and operators,
/// with every literal parameterized out — into the plan cache key. Two
/// predicates with the same serialization are planned identically
/// modulo the statistics of their literals, which the cached skeleton
/// re-estimates live at re-bind; residual evaluation always runs the
/// live predicate, so collapsing literals never affects results.
void AppendShapeKey(const PredicateShape* shape, std::string* out) {
  if (shape == nullptr) {
    *out += "?";
    return;
  }
  switch (shape->kind) {
    case Kind::kOpaque: *out += "?"; return;
    case Kind::kTrue: *out += "t"; return;
    case Kind::kHasValue: *out += "v"; return;
    case Kind::kValueEquals: *out += "="; return;
    case Kind::kValueContains: *out += "~"; return;
    case Kind::kIntLess: *out += "<"; return;
    case Kind::kIntGreater: *out += ">"; return;
    case Kind::kNameIs: *out += "n"; return;
    case Kind::kNameContains: *out += "N"; return;
    case Kind::kOfClass: *out += "k"; return;
    case Kind::kOnSubObject:
      // The role is structural: it selects the index, not a literal.
      *out += "s[" + shape->text + "](";
      AppendShapeKey(shape->children.empty() ? nullptr
                                             : shape->children[0].get(),
                     out);
      *out += ")";
      return;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot: {
      *out += shape->kind == Kind::kAnd   ? "&("
              : shape->kind == Kind::kOr  ? "|("
                                          : "!(";
      for (const auto& child : shape->children) {
        AppendShapeKey(child.get(), out);
        *out += ",";
      }
      *out += ")";
      return;
    }
  }
  *out += "?";
}

/// One adaptive mid-chain re-plan (divergent intermediate re-entered
/// the join DP).
void CountAdaptiveReplan() {
  static obs::Counter* replans = obs::MetricsRegistry::Global().GetCounter(
      "planner.adaptive.replans.total");
  replans->Increment();
}

/// An intermediate this far off its estimate (either direction,
/// +1-smoothed) abandons the running tree and re-enters the DP for the
/// remaining segments.
constexpr double kAdaptiveDivergence = 8.0;

/// Participation skew past this multiple of the mean degree inflates
/// the index-nested-loop degree estimate.
constexpr double kDegreeSkewThreshold = 8.0;

/// Degree-histogram correction for the INL driving degree: the uniform
/// participation/extent mean undercosts a driver that lands on hot
/// participants of a skewed association. When the tracked max-degree
/// upper bound (within 2x of the true max, from the log2 degree
/// buckets) exceeds kDegreeSkewThreshold x the mean participant
/// degree, the estimate moves to the geometric mean of the two — never
/// below the uniform estimate, never above the bound. Near-uniform
/// data (max < 2x mean by bucket construction) is untouched, so
/// existing plans and goldens only move under real skew.
double SkewAdjustedDegree(const core::ExtentCounters& counters,
                          const schema::Schema& schema, AssociationId assoc,
                          int role, ClassId cls, double uniform_degree) {
  const core::ExtentCounters::DegreeSummary deg =
      counters.DegreeStats(schema, assoc, role, cls);
  if (deg.distinct == 0) return uniform_degree;
  const double mean =
      static_cast<double>(deg.ends) / static_cast<double>(deg.distinct);
  const double max_upper = static_cast<double>(deg.max_degree_upper);
  if (mean <= 0.0 || max_upper <= mean * kDegreeSkewThreshold) {
    return uniform_degree;
  }
  const double inflated = std::sqrt(mean * max_upper);
  return std::max(uniform_degree, std::min(inflated, max_upper));
}

/// Tie-break rank at equal cost: equality, then range, then intersection,
/// then the scan.
int KindRank(Planner::Plan::Kind kind) {
  switch (kind) {
    case Planner::Plan::Kind::kIndexEquals: return 0;
    case Planner::Plan::Kind::kIndexRange: return 1;
    case Planner::Plan::Kind::kIndexIntersect: return 2;
    case Planner::Plan::Kind::kFullScan: return 3;
  }
  return 4;
}

bool Cheaper(double cost_a, Planner::Plan::Kind kind_a, double cost_b,
             Planner::Plan::Kind kind_b) {
  if (cost_a != cost_b) return cost_a < cost_b;
  return KindRank(kind_a) < KindRank(kind_b);
}

std::string Rounded(double rows) {
  return std::to_string(static_cast<long long>(std::llround(rows)));
}

/// Sorted ascending raw candidate ids of one leg.
template <typename Id>
std::vector<Id> FetchLeg(const Planner::Plan::Leg& leg) {
  std::vector<Id> out;
  if (leg.is_range) {
    if constexpr (std::is_same_v<Id, ObjectId>) {
      out = leg.index->Range(leg.lo, leg.lo_inclusive, leg.hi,
                             leg.hi_inclusive);
    } else {
      out = leg.index->RangeRels(leg.lo, leg.lo_inclusive, leg.hi,
                                 leg.hi_inclusive);
    }
    return out;  // Range output is sorted and deduplicated
  }
  for (const core::Value& key : leg.keys) {
    std::vector<Id> hits;
    if constexpr (std::is_same_v<Id, ObjectId>) {
      hits = leg.index->Lookup(key);
    } else {
      hits = leg.index->LookupRels(key);
    }
    out.insert(out.end(), hits.begin(), hits.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Candidate ids of the whole plan (sorted): the single leg's postings, or
/// the intersection of every leg's.
template <typename Id>
std::vector<Id> FetchCandidates(const Planner::Plan& plan) {
  std::vector<Id> candidates = FetchLeg<Id>(plan.legs[0]);
  for (size_t i = 1; i < plan.legs.size() && !candidates.empty(); ++i) {
    std::vector<Id> next = FetchLeg<Id>(plan.legs[i]);
    std::vector<Id> merged;
    merged.reserve(std::min(candidates.size(), next.size()));
    std::set_intersection(candidates.begin(), candidates.end(), next.begin(),
                          next.end(), std::back_inserter(merged));
    candidates = std::move(merged);
  }
  return candidates;
}

}  // namespace

/// A sargable conjunct bound to a covering index, with its cardinality
/// estimate — the unit the cost comparison works on.
struct Planner::Candidate {
  Plan::Leg leg;
  size_t probes = 1;
  Plan::Kind kind = Plan::Kind::kIndexEquals;

  /// Binds `sarg` to `idx`: builds the leg and estimates its rows. The
  /// one place leg construction and cardinality estimation live, shared
  /// by object-extent and relationship-extent planning.
  static Candidate FromSarg(const index::AttributeIndex* idx, Sarg sarg);
};

Planner::Candidate Planner::Candidate::FromSarg(
    const index::AttributeIndex* idx, Sarg sarg) {
  Candidate c;
  c.leg.index = idx;
  c.leg.is_range = sarg.is_range;
  if (sarg.is_range) {
    c.kind = Plan::Kind::kIndexRange;
    c.leg.lo = std::move(sarg.lo);
    c.leg.hi = std::move(sarg.hi);
    c.leg.lo_inclusive = sarg.lo_inclusive;
    c.leg.hi_inclusive = sarg.hi_inclusive;
    c.leg.est_rows = EstimateRangeRows(*idx, c.leg.lo, c.leg.lo_inclusive,
                                       c.leg.hi, c.leg.hi_inclusive);
    c.probes = 1;
  } else {
    c.kind = Plan::Kind::kIndexEquals;
    c.leg.keys = std::move(sarg.keys);
    c.leg.est_rows = EstimateEqualityRows(*idx, c.leg.keys);
    c.probes = c.leg.keys.size();
  }
  return c;
}

std::string Planner::Plan::ToString() const {
  auto leg_str = [](const Leg& leg) {
    if (leg.is_range) {
      return "index-range(" + leg.index->spec().ToString() + "), " +
             (leg.lo_inclusive ? "[" : "(") + leg.lo.ToString() + ", " +
             leg.hi.ToString() + (leg.hi_inclusive ? "]" : ")");
    }
    return "index-equals(" + leg.index->spec().ToString() + "), " +
           std::to_string(leg.keys.size()) + " key" +
           (leg.keys.size() == 1 ? "" : "s");
  };
  std::string tail = ", est ~" + Rounded(est_rows) + " of " +
                     Rounded(extent_rows) + " rows";
  switch (kind) {
    case Kind::kFullScan:
      return "scan, est ~" + Rounded(extent_rows) + " rows";
    case Kind::kIndexEquals:
    case Kind::kIndexRange:
      return leg_str(legs[0]) + tail;
    case Kind::kIndexIntersect: {
      std::string s = "index-intersect(";
      for (size_t i = 0; i < legs.size(); ++i) {
        if (i != 0) s += " & ";
        s += leg_str(legs[i]) + " ~" + Rounded(legs[i].est_rows);
      }
      return s + ")" + tail;
    }
  }
  return "?";
}

std::string Planner::Plan::ToAnalyzeString(bool mask_times) const {
  std::string s = ToString();
  if (actual_rows >= 0) s += ", actual " + std::to_string(actual_rows);
  if (elapsed_ns >= 0) {
    s += ", t=";
    s += mask_times ? "<t>"
                    : obs::FormatNanos(static_cast<std::uint64_t>(elapsed_ns));
  }
  return s;
}

Planner::Plan Planner::ChooseCheapest(std::vector<Candidate> candidates,
                                      double extent_rows) {
  Plan best;
  best.kind = Plan::Kind::kFullScan;
  best.est_rows = extent_rows;
  best.extent_rows = extent_rows;
  best.est_cost = CostModel::ScanCost(extent_rows);

  // Single-index plans: one per sargable conjunct.
  for (const Candidate& c : candidates) {
    double cost = CostModel::SingleIndexCost(c.probes, c.leg.est_rows);
    if (Cheaper(cost, c.kind, best.est_cost, best.kind)) {
      best.kind = c.kind;
      best.legs = {c.leg};
      best.est_rows = c.leg.est_rows;
      best.est_cost = cost;
    }
  }

  // Multi-index intersection: grow greedily from the most selective leg,
  // keeping each additional leg only if reading its postings costs less
  // than the residual evaluations it prunes.
  if (candidates.size() >= 2) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.leg.est_rows < b.leg.est_rows;
                     });
    std::vector<Candidate> chosen = {candidates[0]};
    double legs_cost =
        CostModel::IntersectLegCost(candidates[0].probes,
                                    candidates[0].leg.est_rows);
    double inter_rows = candidates[0].leg.est_rows;
    for (size_t i = 1; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      double new_legs_cost =
          legs_cost + CostModel::IntersectLegCost(c.probes, c.leg.est_rows);
      double new_inter_rows =
          CostModel::IntersectRows(inter_rows, c.leg.est_rows, extent_rows);
      if (new_legs_cost + CostModel::ResidualCost(new_inter_rows) <
          legs_cost + CostModel::ResidualCost(inter_rows)) {
        chosen.push_back(c);
        legs_cost = new_legs_cost;
        inter_rows = new_inter_rows;
      }
    }
    if (chosen.size() >= 2) {
      double cost = legs_cost + CostModel::ResidualCost(inter_rows);
      if (Cheaper(cost, Plan::Kind::kIndexIntersect, best.est_cost,
                  best.kind)) {
        best.kind = Plan::Kind::kIndexIntersect;
        best.legs.clear();
        for (Candidate& c : chosen) best.legs.push_back(std::move(c.leg));
        best.est_rows = inter_rows;
        best.est_cost = cost;
      }
    }
  }
  return best;
}

Planner::Plan Planner::PlanSelect(ClassId cls, const Predicate& p,
                                  bool include_specializations) const {
  const index::IndexManager& manager = db_->attribute_indexes();
  double extent_rows =
      static_cast<double>(db_->extent_counters().CountClassExtent(
          *db_->schema(), cls, include_specializations));
  if (manager.empty() || p.shape() == nullptr) {
    Plan plan;
    plan.est_rows = extent_rows;
    plan.extent_rows = extent_rows;
    plan.est_cost = CostModel::ScanCost(extent_rows);
    return plan;
  }

  std::vector<const PredicateShape*> conjuncts;
  CollectConjuncts(p.shape(), &conjuncts);

  std::vector<Candidate> candidates;
  // The ordinal counts *every* extracted sarg, indexed or not, so a
  // cached leg's ordinal re-derives from the predicate alone even if
  // the index set changed in between (the re-bind then re-resolves or
  // invalidates).
  size_t sarg_ordinal = 0;
  for (const PredicateShape* conjunct : conjuncts) {
    Sarg sarg;
    if (!ExtractSarg(conjunct, "", &sarg)) continue;
    const size_t ordinal = sarg_ordinal++;
    const index::AttributeIndex* idx = manager.BestFor(
        *db_->schema(), cls, include_specializations, sarg.role);
    if (idx == nullptr) continue;
    Candidate c = Candidate::FromSarg(idx, std::move(sarg));
    c.leg.sarg_ordinal = ordinal;
    candidates.push_back(std::move(c));
  }
  return ChooseCheapest(std::move(candidates), extent_rows);
}

namespace {

/// Filters `ids` by `keep`, preserving order: sequential below the
/// policy's partition threshold, otherwise morsels on the worker pool
/// with one output slot per morsel, concatenated in morsel order — the
/// result is exactly the sequential filter's. `keep` must be a pure
/// read of the (externally unmutated) database.
template <typename Id, typename Keep>
std::vector<Id> FilterIdsPartitioned(const exec::ExecPolicy& policy,
                                     const std::vector<Id>& ids,
                                     const Keep& keep) {
  std::vector<Id> out;
  if (!policy.ShouldPartition(ids.size())) {
    for (const Id& id : ids) {
      if (keep(id)) out.push_back(id);
    }
    return out;
  }
  const std::size_t grain = policy.morsel_rows;
  std::vector<std::vector<Id>> slots((ids.size() + grain - 1) / grain);
  exec::WorkerPool::Global().ParallelFor(
      policy.threads, ids.size(), grain,
      [&slots, &ids, &keep, grain](std::size_t begin, std::size_t end) {
        std::vector<Id>& slot = slots[begin / grain];
        for (std::size_t i = begin; i < end; ++i) {
          if (keep(ids[i])) slot.push_back(ids[i]);
        }
      });
  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  out.reserve(total);
  for (const auto& slot : slots) {
    out.insert(out.end(), slot.begin(), slot.end());
  }
  return out;
}

}  // namespace

std::vector<ObjectId> Planner::ExecuteIndexPlan(
    const Plan& plan, ClassId cls, const Predicate& p,
    bool include_specializations) const {
  std::vector<ObjectId> candidates = FetchCandidates<ObjectId>(plan);

  // Residual: extent membership (the chosen index may cover a broader
  // family than the query) and the full original predicate. Index
  // candidates are few; re-evaluating keeps both paths semantically
  // identical by construction. Candidate lists big enough to partition
  // run as morsels (predicate evaluation only reads the database).
  const schema::Schema& schema = *db_->schema();
  return FilterIdsPartitioned(policy_, candidates, [&](ObjectId id) {
    auto obj = db_->GetObject(id);
    if (!obj.ok()) return false;
    bool in_extent = include_specializations
                         ? schema.IsSameOrSpecializationOf((*obj)->cls, cls)
                         : (*obj)->cls == cls;
    return in_extent && p.Eval(*db_, id);
  });
}

namespace {

/// Tallies which access-path kind each executed selection used.
void CountPlanKind(bool uses_index) {
  static obs::Counter* index_plans =
      obs::MetricsRegistry::Global().GetCounter("query.plans.index.total");
  static obs::Counter* scan_plans =
      obs::MetricsRegistry::Global().GetCounter("query.plans.scan.total");
  (uses_index ? index_plans : scan_plans)->Increment();
}

}  // namespace

std::vector<ObjectId> Planner::SelectIds(ClassId cls, const Predicate& p,
                                         bool include_specializations,
                                         const Plan* precomputed) const {
  Plan plan = precomputed != nullptr
                  ? *precomputed
                  : PlanSelect(cls, p, include_specializations);
  CountPlanKind(plan.uses_index());
  if (plan.uses_index()) {
    return ExecuteIndexPlan(plan, cls, p, include_specializations);
  }
  // Full scan: the extent is morsel-partitioned when large enough.
  return FilterIdsPartitioned(
      policy_, db_->ObjectsOfClass(cls, include_specializations),
      [&](ObjectId id) { return p.Eval(*db_, id); });
}

Result<QueryRelation> Planner::SelectFromClass(
    ClassId cls, std::string attribute, const Predicate& p,
    bool include_specializations) const {
  Plan plan = PlanSelect(cls, p, include_specializations);
  if (!plan.uses_index()) {
    QueryRelation extent =
        algebra_.ClassExtent(cls, attribute, include_specializations);
    return algebra_.Select(extent, attribute, p);
  }
  QueryRelation out;
  out.attributes = {std::move(attribute)};
  for (ObjectId id :
       ExecuteIndexPlan(plan, cls, p, include_specializations)) {
    out.tuples.push_back({id});
  }
  return out;
}

// --- Relationship joins ------------------------------------------------------

Algebra::JoinOptions Planner::JoinPlan::options() const {
  Algebra::JoinOptions opts;
  opts.left_role = left_role;
  switch (strategy) {
    case Strategy::kHashBuildLeft:
      opts.method = Algebra::JoinOptions::Method::kHash;
      opts.build_side = Algebra::JoinOptions::Side::kLeft;
      break;
    case Strategy::kHashBuildRight:
      opts.method = Algebra::JoinOptions::Method::kHash;
      opts.build_side = Algebra::JoinOptions::Side::kRight;
      break;
    case Strategy::kIndexNestedLoopLeft:
      opts.method = Algebra::JoinOptions::Method::kIndexNestedLoop;
      opts.build_side = Algebra::JoinOptions::Side::kLeft;
      break;
    case Strategy::kIndexNestedLoopRight:
      opts.method = Algebra::JoinOptions::Method::kIndexNestedLoop;
      opts.build_side = Algebra::JoinOptions::Side::kRight;
      break;
  }
  return opts;
}

std::string Planner::JoinPlan::ToString() const {
  std::string s;
  switch (strategy) {
    case Strategy::kHashBuildLeft: s = "join-hash(build=left)"; break;
    case Strategy::kHashBuildRight: s = "join-hash(build=right)"; break;
    case Strategy::kIndexNestedLoopLeft:
      s = "join-index-nested-loop(drive=left)";
      break;
    case Strategy::kIndexNestedLoopRight:
      s = "join-index-nested-loop(drive=right)";
      break;
  }
  s += left_role == 0 ? ", forward" : ", reverse";
  s += ", " + Rounded(left_rows) + " x " + Rounded(right_rows) +
       " inputs, est ~" + Rounded(est_rows) + " rows (assoc ~" +
       Rounded(assoc_rows) + ")";
  return s;
}

Planner::JoinPlan Planner::PlanJoin(AssociationId assoc, size_t left_rows,
                                    size_t right_rows, int left_role,
                                    ClassId left_cls, ClassId right_cls) const {
  return PlanJoinEst(assoc, static_cast<double>(left_rows),
                     static_cast<double>(right_rows), left_role, left_cls,
                     right_cls);
}

Planner::JoinPlan Planner::PlanJoinEst(AssociationId assoc, double left_rows,
                                       double right_rows, int left_role,
                                       ClassId left_cls,
                                       ClassId right_cls) const {
  const schema::Schema& schema = *db_->schema();
  const core::ExtentCounters& counters = db_->extent_counters();
  JoinPlan plan;
  plan.left_role = left_role == 1 ? 1 : 0;
  plan.left_rows = left_rows;
  plan.right_rows = right_rows;
  plan.assoc_rows = static_cast<double>(
      counters.CountAssociationExtent(schema, assoc, true));

  // The classes the inputs were drawn from locate the extents and the
  // tracked participation counts for the degree estimates; they default
  // to the role targets, whose participation is the whole association
  // family (every end conforms to its role) — the old uniform estimate.
  // A join always spans the association family, so family counts apply.
  if (auto item = schema.GetAssociation(assoc); item.ok()) {
    if (!left_cls.valid()) left_cls = (*item)->roles[plan.left_role].target;
    if (!right_cls.valid()) {
      right_cls = (*item)->roles[1 - plan.left_role].target;
    }
  }
  double left_extent = static_cast<double>(
      counters.CountClassExtent(schema, left_cls, true));
  double right_extent = static_cast<double>(
      counters.CountClassExtent(schema, right_cls, true));
  double left_part = static_cast<double>(counters.CountParticipantsExtent(
      schema, assoc, plan.left_role, left_cls));
  double right_part = static_cast<double>(counters.CountParticipantsExtent(
      schema, assoc, 1 - plan.left_role, right_cls));
  // An edge can only match when both of its ends land in the input
  // classes — for a skewed graph this is far below the association size.
  double matchable = std::min(left_part, right_part);
  plan.est_rows = CostModel::JoinRows(matchable, plan.left_rows, left_extent,
                                      plan.right_rows, right_extent);

  struct Option {
    JoinPlan::Strategy strategy;
    double cost;
  };
  const Option options[] = {
      {JoinPlan::Strategy::kHashBuildRight,
       CostModel::HashJoinCost(plan.assoc_rows, plan.right_rows,
                               plan.left_rows, plan.est_rows)},
      {JoinPlan::Strategy::kHashBuildLeft,
       CostModel::HashJoinCost(plan.assoc_rows, plan.left_rows,
                               plan.right_rows, plan.est_rows)},
      {JoinPlan::Strategy::kIndexNestedLoopLeft,
       CostModel::IndexNestedLoopJoinCost(
           plan.left_rows,
           SkewAdjustedDegree(counters, schema, assoc, plan.left_role,
                              left_cls,
                              CostModel::JoinDegree(left_part, left_extent)),
           plan.right_rows, plan.est_rows)},
      {JoinPlan::Strategy::kIndexNestedLoopRight,
       CostModel::IndexNestedLoopJoinCost(
           plan.right_rows,
           SkewAdjustedDegree(counters, schema, assoc, 1 - plan.left_role,
                              right_cls,
                              CostModel::JoinDegree(right_part, right_extent)),
           plan.left_rows, plan.est_rows)},
  };
  plan.strategy = options[0].strategy;
  plan.est_cost = options[0].cost;
  for (const Option& option : options) {
    if (option.cost < plan.est_cost) {
      plan.strategy = option.strategy;
      plan.est_cost = option.cost;
    }
  }
  return plan;
}

Result<QueryRelation> Planner::Join(const QueryRelation& a,
                                    std::string_view attr_a,
                                    AssociationId assoc,
                                    const QueryRelation& b,
                                    std::string_view attr_b, int left_role,
                                    JoinPlan* plan_out, ClassId left_cls,
                                    ClassId right_cls) const {
  if (left_role != 0 && left_role != 1) {
    return Status::InvalidArgument("join role must be 0 or 1");
  }
  JoinPlan plan =
      PlanJoin(assoc, a.size(), b.size(), left_role, left_cls, right_cls);
  if (plan_out != nullptr) *plan_out = plan;
  return algebra_.RelationshipJoin(a, attr_a, assoc, b, attr_b,
                                   plan.options());
}

// --- Plan trees --------------------------------------------------------------

std::string Planner::PhysicalPlan::Node::ToString(
    const std::vector<std::string>& binders) const {
  auto name = [&](int b) {
    return b >= 0 && b < static_cast<int>(binders.size())
               ? binders[b]
               : "b" + std::to_string(b);
  };
  std::string actual =
      actual_rows >= 0 ? ", actual " + std::to_string(actual_rows) : "";
  switch (kind) {
    case Kind::kInput:
      return name(binder);
    case Kind::kHopJoin:
      return "(hop" + std::to_string(hop + 1) + ": " +
             left->ToString(binders) + " * " + right->ToString(binders) +
             " | " + join.ToString() + actual + ")";
    case Kind::kTupleJoin:
      return "(merge@" + name(shared_binder) + ": " +
             left->ToString(binders) + " * " + right->ToString(binders) +
             " | est ~" + Rounded(est_rows) + " rows" + actual + ")";
  }
  return "?";
}

std::string Planner::PhysicalPlan::Node::ToAnalyzeString(
    const std::vector<std::string>& binders, bool mask_times) const {
  auto name = [&](int b) {
    return b >= 0 && b < static_cast<int>(binders.size())
               ? binders[b]
               : "b" + std::to_string(b);
  };
  // ", actual 4, in 3+5, t=1.2ms" — output rows, input rows (left+right),
  // inclusive wall-clock.
  std::string notes;
  if (actual_rows >= 0) notes += ", actual " + std::to_string(actual_rows);
  if (left != nullptr && right != nullptr && left->actual_rows >= 0 &&
      right->actual_rows >= 0) {
    notes += ", in " + std::to_string(left->actual_rows) + "+" +
             std::to_string(right->actual_rows);
  }
  if (elapsed_ns >= 0) {
    notes += ", t=";
    notes += mask_times
                 ? "<t>"
                 : obs::FormatNanos(static_cast<std::uint64_t>(elapsed_ns));
  }
  switch (kind) {
    case Kind::kInput: {
      // Leaves print their materialized size inline: "d[3]".
      std::string s = name(binder);
      if (actual_rows >= 0) s += "[" + std::to_string(actual_rows) + "]";
      return s;
    }
    case Kind::kHopJoin:
      return "(hop" + std::to_string(hop + 1) + ": " +
             left->ToAnalyzeString(binders, mask_times) + " * " +
             right->ToAnalyzeString(binders, mask_times) + " | " +
             join.ToString() + notes + ")";
    case Kind::kTupleJoin:
      return "(merge@" + name(shared_binder) + ": " +
             left->ToAnalyzeString(binders, mask_times) + " * " +
             right->ToAnalyzeString(binders, mask_times) + " | est ~" +
             Rounded(est_rows) + " rows" + notes + ")";
  }
  return "?";
}

bool Planner::PhysicalPlan::HasBushyJoin() const {
  auto walk = [](auto&& self, const Node* node) -> bool {
    if (node == nullptr) return false;
    if (node->is_bushy()) return true;
    return self(self, node->left.get()) || self(self, node->right.get());
  };
  return walk(walk, root.get());
}

long long Planner::PhysicalPlan::RowsVisited() const {
  long long total = 0;
  auto walk = [&total](auto&& self, const Node* node) -> void {
    if (node == nullptr) return;
    self(self, node->left.get());
    self(self, node->right.get());
    if (node->actual_rows > 0) total += node->actual_rows;
  };
  walk(walk, root.get());
  return total;
}

std::vector<int> Planner::PhysicalPlan::HopOrder() const {
  std::vector<int> order;
  auto walk = [&order](auto&& self, const Node* node) -> void {
    if (node == nullptr) return;
    self(self, node->left.get());
    self(self, node->right.get());
    if (node->kind == Node::Kind::kHopJoin) order.push_back(node->hop);
  };
  walk(walk, root.get());
  return order;
}

std::string Planner::PhysicalPlan::ToString() const {
  std::string s;
  for (size_t i = 0; i < selects.size(); ++i) {
    if (!s.empty()) s += "; ";
    // Plain object / relationship selections keep the bare access-path
    // string; chains prefix each binder's name.
    if (selects.size() > 1 && i < binders.size()) s += binders[i] + ": ";
    s += selects[i].ToString();
  }
  if (root != nullptr && root->kind != Node::Kind::kInput) {
    if (!s.empty()) s += "; ";
    s += root->ToString(binders);
  }
  return s;
}

std::string Planner::PhysicalPlan::ToAnalyzeString(bool mask_times) const {
  std::string s;
  for (size_t i = 0; i < selects.size(); ++i) {
    if (!s.empty()) s += "; ";
    if (selects.size() > 1 && i < binders.size()) s += binders[i] + ": ";
    s += selects[i].ToAnalyzeString(mask_times);
  }
  if (root != nullptr && root->kind != Node::Kind::kInput) {
    if (!s.empty()) s += "; ";
    s += root->ToAnalyzeString(binders, mask_times);
  }
  // Cache/adaptive markers only when they fired, so fresh by-the-plan
  // executions render exactly as before.
  if (from_cache) s += "; plan-cache: hit";
  if (adaptive_replans > 0) {
    s += "; adaptive-replans: " + std::to_string(adaptive_replans);
  }
  return s;
}

std::unique_ptr<Planner::Node> Planner::MakeLeaf(int binder, double rows) {
  auto node = std::make_unique<Node>();
  node->kind = Node::Kind::kInput;
  node->lo = node->hi = binder;
  node->binder = binder;
  node->est_rows = rows;
  node->est_cost = 0.0;
  return node;
}

std::unique_ptr<Planner::Node> Planner::MakeHopJoin(
    const std::vector<PipelineHop>& hops, int hop,
    std::unique_ptr<Node> left, std::unique_ptr<Node> right) const {
  const PipelineHop& h = hops[hop];
  auto node = std::make_unique<Node>();
  node->kind = Node::Kind::kHopJoin;
  node->lo = left->lo;
  node->hi = right->hi;
  node->hop = hop;
  // The lower binder segment is always the join's left input, binding
  // the hop's left role — execution replays exactly this orientation.
  node->join = PlanJoinEst(h.assoc, left->est_rows, right->est_rows,
                           h.left_role, h.left_cls, h.right_cls);
  node->est_rows = node->join.est_rows;
  node->est_cost = left->est_cost + right->est_cost + node->join.est_cost;
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

std::unique_ptr<Planner::Node> Planner::MakeTupleJoin(
    int m, double shared_rows, std::unique_ptr<Node> left,
    std::unique_ptr<Node> right) const {
  auto node = std::make_unique<Node>();
  node->kind = Node::Kind::kTupleJoin;
  node->lo = left->lo;
  node->hi = right->hi;
  node->shared_binder = m;
  node->est_rows =
      CostModel::TupleJoinRows(left->est_rows, right->est_rows, shared_rows);
  node->est_cost = left->est_cost + right->est_cost +
                   CostModel::TupleJoinCost(
                       std::min(left->est_rows, right->est_rows),
                       std::max(left->est_rows, right->est_rows),
                       node->est_rows);
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

std::unique_ptr<Planner::Node> Planner::LeftDeepTree(
    const std::vector<PipelineHop>& hops,
    const std::vector<double>& input_rows, int lo, int hi) const {
  if (lo == hi) return MakeLeaf(lo, input_rows[lo]);
  return MakeHopJoin(hops, hi - 1, LeftDeepTree(hops, input_rows, lo, hi - 1),
                     MakeLeaf(hi, input_rows[hi]));
}

// --- The DP optimizer --------------------------------------------------------

/// The best way to compute one connected subchain: its estimated rows and
/// cost plus the winning decision (hop-join split or tuple-join split),
/// from which the plan tree is reconstructed after the table is full.
struct Planner::DpEntry {
  double rows = 0.0;
  double cost = 0.0;
  enum class How { kHop, kTuple } how = How::kHop;
  int split = -1;
};

std::unique_ptr<Planner::Node> Planner::OptimizeJoinTree(
    const std::vector<PipelineHop>& hops,
    const std::vector<double>& input_rows, bool allow_tuple_joins) const {
  // 63 hops bounds the bitset key (and is far beyond any real chain);
  // ValidatePipelineInputs enforces the same ceiling on the executing
  // entry points.
  const int n = static_cast<int>(hops.size());
  if (n == 0 || n > 63 || input_rows.size() != hops.size() + 1) {
    return nullptr;
  }

  // Selinger-style DP over the chain's connected subchains, keyed by hop
  // bitset. For a chain the connected hop subsets are exactly the
  // contiguous ranges, so the binder segment [lo, hi] maps to the bits
  // of hops lo..hi-1; enumerating by segment width visits every subset
  // after all of its sub-subsets.
  std::unordered_map<std::uint64_t, DpEntry> best;
  auto bits = [](int lo, int hi) -> std::uint64_t {
    return ((std::uint64_t{1} << (hi - lo)) - 1) << lo;
  };
  auto seg_rows = [&](int lo, int hi) {
    return lo == hi ? input_rows[lo] : best.at(bits(lo, hi)).rows;
  };
  auto seg_cost = [&](int lo, int hi) {
    return lo == hi ? 0.0 : best.at(bits(lo, hi)).cost;
  };

  for (int len = 1; len <= n; ++len) {
    for (int lo = 0; lo + len <= n; ++lo) {
      const int hi = lo + len;  // binder segment [lo, hi]
      DpEntry entry;
      bool have = false;
      // Hop joins: adjacent segments [lo, m] and [m+1, hi] through hop
      // m. The split at hi-1 is enumerated first so that with all costs
      // tied the table reconstructs the textual left-deep tree; it also
      // provides the segment's canonical cardinality (below).
      for (int m = hi - 1; m >= lo; --m) {
        const PipelineHop& hop = hops[m];
        JoinPlan jp =
            PlanJoinEst(hop.assoc, seg_rows(lo, m), seg_rows(m + 1, hi),
                        hop.left_role, hop.left_cls, hop.right_cls);
        double cost = seg_cost(lo, m) + seg_cost(m + 1, hi) + jp.est_cost;
        if (!have) {
          // One plan-independent cardinality per subchain, Selinger
          // style: the segment computes the same relation whichever
          // plan wins, so its recorded row estimate comes from the
          // canonical (textual) split alone. Decisions below only
          // change the cost — a candidate's optimistic output estimate
          // cannot leak into how enclosing segments are costed.
          entry.rows = jp.est_rows;
        }
        if (!have || cost < entry.cost) {
          entry.cost = cost;
          entry.how = DpEntry::How::kHop;
          entry.split = m;
          have = true;
        }
      }
      // Bushy tuple joins: overlapping segments [lo, m] and [m, hi]
      // merged on the shared binder m — each side executes its own hops
      // independently, so neither drags the other's intermediate.
      // Disabled for adaptive re-planning, where the inputs can be
      // multi-column segments.
      for (int m = allow_tuple_joins ? hi - 1 : lo; m > lo; --m) {
        double l_rows = seg_rows(lo, m);
        double r_rows = seg_rows(m, hi);
        double rows = CostModel::TupleJoinRows(l_rows, r_rows, input_rows[m]);
        double cost = seg_cost(lo, m) + seg_cost(m, hi) +
                      CostModel::TupleJoinCost(std::min(l_rows, r_rows),
                                               std::max(l_rows, r_rows), rows);
        if (cost < entry.cost) {
          entry.cost = cost;
          entry.how = DpEntry::How::kTuple;
          entry.split = m;
        }
      }
      best[bits(lo, hi)] = entry;
    }
  }

  // Reconstruct the winning tree from the decisions. Every node is
  // pinned to the table's canonical cardinality and winning cost after
  // construction: children therefore feed MakeHopJoin the exact row
  // estimates the DP costed candidates with, so the physical strategy
  // each hop node picks is the one the DP priced, and the tree's
  // est_rows/est_cost equal the table's — not a per-decomposition
  // recomputation that could silently diverge.
  auto build = [&](auto&& self, int lo, int hi) -> std::unique_ptr<Node> {
    if (lo == hi) return MakeLeaf(lo, input_rows[lo]);
    const DpEntry& e = best.at(bits(lo, hi));
    std::unique_ptr<Node> node;
    if (e.how == DpEntry::How::kHop) {
      node = MakeHopJoin(hops, e.split, self(self, lo, e.split),
                         self(self, e.split + 1, hi));
    } else {
      node = MakeTupleJoin(e.split, input_rows[e.split],
                           self(self, lo, e.split), self(self, e.split, hi));
    }
    node->est_rows = e.rows;
    node->est_cost = e.cost;
    return node;
  };
  return build(build, 0, n);
}

// --- Explicit shapes (tests and benches) -------------------------------------

std::vector<std::vector<int>> Planner::LeftDeepOrders(size_t num_hops) {
  std::vector<std::vector<int>> orders;
  if (num_hops == 0) return orders;
  const int n = static_cast<int>(num_hops);
  // Grow a contiguous hop segment [lo, hi] from every starting hop,
  // preferring the rightward extension so the textual order (start at
  // hop 0, always extend right) is enumerated first.
  std::vector<int> current;
  auto extend = [&](auto&& self, int lo, int hi) -> void {
    if (static_cast<int>(current.size()) == n) {
      orders.push_back(current);
      return;
    }
    if (hi + 1 < n) {
      current.push_back(hi + 1);
      self(self, lo, hi + 1);
      current.pop_back();
    }
    if (lo > 0) {
      current.push_back(lo - 1);
      self(self, lo - 1, hi);
      current.pop_back();
    }
  };
  for (int start = 0; start < n; ++start) {
    current = {start};
    extend(extend, start, start);
  }
  return orders;
}

Result<std::unique_ptr<Planner::Node>> Planner::TreeForOrder(
    const std::vector<PipelineHop>& hops,
    const std::vector<double>& input_rows,
    const std::vector<int>& order) const {
  if (hops.empty()) {
    return Status::InvalidArgument("join pipeline needs at least one hop");
  }
  if (input_rows.size() != hops.size() + 1) {
    return Status::InvalidArgument(
        "join pipeline wants one input per binder (hops + 1)");
  }
  if (order.size() != hops.size()) {
    return Status::InvalidArgument(
        "hop order must name every hop exactly once");
  }
  // The joined binder segment [lo, hi]; empty before the first step.
  std::unique_ptr<Node> cur;
  int lo = 0, hi = -1;
  for (int h : order) {
    if (h < 0 || h >= static_cast<int>(hops.size())) {
      return Status::InvalidArgument("hop index out of range");
    }
    if (hi < lo) {
      cur = MakeHopJoin(hops, h, MakeLeaf(h, input_rows[h]),
                        MakeLeaf(h + 1, input_rows[h + 1]));
      lo = h;
      hi = h + 1;
    } else if (h == hi) {
      cur = MakeHopJoin(hops, h, std::move(cur),
                        MakeLeaf(h + 1, input_rows[h + 1]));
      hi = h + 1;
    } else if (h + 1 == lo) {
      cur = MakeHopJoin(hops, h, MakeLeaf(h, input_rows[h]), std::move(cur));
      lo = h;
    } else {
      return Status::InvalidArgument(
          "hop order is not left-deep (a prefix is not contiguous)");
    }
  }
  return cur;
}

// --- Pipeline execution ------------------------------------------------------

Status Planner::ValidatePipelineInputs(
    const std::vector<QueryRelation>& inputs,
    const std::vector<PipelineHop>& hops) {
  if (hops.empty()) {
    return Status::InvalidArgument("join pipeline needs at least one hop");
  }
  if (hops.size() > 63) {
    return Status::InvalidArgument(
        "join pipelines support at most 63 hops (the DP bitset width)");
  }
  if (inputs.size() != hops.size() + 1) {
    return Status::InvalidArgument(
        "join pipeline wants one input relation per binder (hops + 1)");
  }
  for (const QueryRelation& in : inputs) {
    if (in.arity() != 1) {
      return Status::InvalidArgument(
          "join pipeline inputs must be unary binder relations");
    }
  }
  return Status::OK();
}

bool Planner::ShouldForkChildren(const Node& node) const {
  return policy_.parallel() && node.left != nullptr && node.right != nullptr &&
         node.left->kind != Node::Kind::kInput &&
         node.right->kind != Node::Kind::kInput &&
         std::min(node.left->est_cost, node.right->est_cost) >=
             policy_.min_parallel_cost;
}

Result<QueryRelation> Planner::ExecuteNode(
    Node* node, const std::vector<QueryRelation>& inputs,
    const std::vector<PipelineHop>& hops, obs::ExecContext* ctx) const {
  // Two steady_clock reads per *node* (never per row) when an
  // EXPLAIN ANALYZE context asked for operator timing; children are
  // timed inside the parent's window, so a node's clock is inclusive.
  // Under a forked sibling the windows of the two subtrees overlap, but
  // each node's stamps are written only by the one task executing that
  // subtree and are published to the parent at the Await barrier.
  const bool timed = ctx != nullptr && ctx->time_nodes;
  const std::uint64_t start = timed ? obs::NowNanos() : 0;
  // Executes a child into `storage` — except input leaves, which read
  // the materialized binder relation in place (no copy).
  auto child = [&](Node* n, QueryRelation* storage)
      -> Result<const QueryRelation*> {
    if (n->kind == Node::Kind::kInput) {
      n->actual_rows = static_cast<long long>(inputs[n->binder].size());
      if (timed) n->elapsed_ns = 0;  // read in place — no work to time
      return &inputs[n->binder];
    }
    SEED_ASSIGN_OR_RETURN(*storage, ExecuteNode(n, inputs, hops, ctx));
    return storage;
  };
  using Sides = std::pair<const QueryRelation*, const QueryRelation*>;
  // Resolves both children. When the policy allows it and the DP's own
  // cost estimates say both joined subtrees are substantial, the left
  // subtree executes as a concurrent task on the worker pool while this
  // thread runs the right — the bushy-plan concurrency the optimizer's
  // tree shape makes available.
  auto children = [&](QueryRelation* left_storage,
                      QueryRelation* right_storage) -> Result<Sides> {
    if (ShouldForkChildren(*node)) {
      std::optional<Result<QueryRelation>> left_result;
      exec::WorkerPool& pool = exec::WorkerPool::Global();
      pool.EnsureWorkers(policy_.threads - 1);
      exec::TaskGroup group;
      pool.Submit(&group, [&] {
        left_result.emplace(ExecuteNode(node->left.get(), inputs, hops, ctx));
      });
      Result<QueryRelation> right_result =
          ExecuteNode(node->right.get(), inputs, hops, ctx);
      pool.Await(&group);
      if (!left_result->ok()) return left_result->status();
      if (!right_result.ok()) return right_result.status();
      *left_storage = std::move(**left_result);
      *right_storage = std::move(right_result).value();
      return Sides(left_storage, right_storage);
    }
    SEED_ASSIGN_OR_RETURN(const QueryRelation* left,
                          child(node->left.get(), left_storage));
    SEED_ASSIGN_OR_RETURN(const QueryRelation* right,
                          child(node->right.get(), right_storage));
    return Sides(left, right);
  };
  auto run = [&]() -> Result<QueryRelation> {
    switch (node->kind) {
      case Node::Kind::kInput: {
        node->actual_rows =
            static_cast<long long>(inputs[node->binder].size());
        return inputs[node->binder];
      }
      case Node::Kind::kHopJoin: {
        QueryRelation left_storage, right_storage;
        SEED_ASSIGN_OR_RETURN(Sides sides,
                              children(&left_storage, &right_storage));
        // The left input ends at binder `hop`, the right starts at binder
        // `hop` + 1; empty inputs short-circuit inside RelationshipJoin.
        auto joined = algebra_.RelationshipJoin(
            *sides.first, inputs[node->hop].attributes[0],
            hops[node->hop].assoc, *sides.second,
            inputs[node->hop + 1].attributes[0], node->join.options());
        if (!joined.ok()) return joined.status();
        node->actual_rows = static_cast<long long>(joined->size());
        return joined;
      }
      case Node::Kind::kTupleJoin: {
        QueryRelation left_storage, right_storage;
        SEED_ASSIGN_OR_RETURN(Sides sides,
                              children(&left_storage, &right_storage));
        auto merged = algebra_.TupleJoin(
            *sides.first, *sides.second,
            inputs[node->shared_binder].attributes[0]);
        if (!merged.ok()) return merged.status();
        node->actual_rows = static_cast<long long>(merged->size());
        return merged;
      }
    }
    return Status::Internal("unplanned node");
  };
  Result<QueryRelation> result = run();
  if (timed) {
    node->elapsed_ns = static_cast<long long>(obs::NowNanos() - start);
  }
  return result;
}

namespace {
// Single registration site: the registry's rows-visited counter is the
// source of truth the benches and the CI plan-quality gate read; it
// matches PhysicalPlan::RowsVisited().
obs::Counter& RowsVisitedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("query.rows.visited.total");
  return *counter;
}
}  // namespace

Result<QueryRelation> Planner::ExecuteTree(
    const std::vector<QueryRelation>& inputs,
    const std::vector<PipelineHop>& hops, PhysicalPlan plan,
    PhysicalPlan* plan_out, obs::ExecContext* ctx) const {
  if (plan.root == nullptr) {
    return Status::Internal("join pipeline plan has no tree");
  }
  SEED_ASSIGN_OR_RETURN(QueryRelation joined,
                        ExecuteNode(plan.root.get(), inputs, hops, ctx));

  RowsVisitedCounter().Increment(
      static_cast<std::uint64_t>(plan.RowsVisited()));

  // Back to the textual binder-column order (execution accumulated the
  // columns in tree order; a complete tree joins every binder).
  std::vector<std::string> binders;
  for (const QueryRelation& in : inputs) {
    binders.push_back(in.attributes[0]);
  }
  auto out = algebra_.Project(joined, binders);
  if (!out.ok()) return out.status();
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return out;
}

Result<QueryRelation> Planner::ExecuteChainAdaptive(
    const std::vector<QueryRelation>& inputs,
    const std::vector<PipelineHop>& hops, PhysicalPlan plan,
    PhysicalPlan* plan_out, obs::ExecContext* ctx) const {
  if (plan.root == nullptr) {
    return Status::Internal("join pipeline plan has no tree");
  }
  // Tuple joins merge *overlapping* segments, which the adjacent-segment
  // stepwise walk below cannot express — those trees execute as planned.
  {
    bool has_tuple = false;
    auto walk = [&has_tuple](auto&& self, const Node* node) -> void {
      if (node == nullptr) return;
      if (node->kind == Node::Kind::kTupleJoin) has_tuple = true;
      self(self, node->left.get());
      self(self, node->right.get());
    };
    walk(walk, plan.root.get());
    if (has_tuple) {
      return ExecuteTree(inputs, hops, std::move(plan), plan_out, ctx);
    }
  }
  const bool timed = ctx != nullptr && ctx->time_nodes;

  // One contiguous, already-executed binder segment [lo, hi]. Leaves
  // read their materialized input in place; composites own their rows.
  struct Seg {
    int lo = 0, hi = 0;
    int leaf_binder = -1;
    QueryRelation owned;
    std::unique_ptr<Node> node;  // executed subtree; null for unread leaf
  };
  std::vector<Seg> segs(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    segs[i].lo = segs[i].hi = static_cast<int>(i);
    segs[i].leaf_binder = static_cast<int>(i);
  }
  auto rel_of = [&inputs](const Seg& s) -> const QueryRelation& {
    return s.leaf_binder >= 0 ? inputs[s.leaf_binder] : s.owned;
  };

  // What the current tree decides for each pending hop, and the order it
  // executes them in (its post order): re-merging adjacent segments in
  // post order reproduces the tree's shape exactly, so absent any
  // re-plan the stitched tree, join strategies, estimates and actuals
  // are byte-identical to ExecuteTree's.
  struct HopDecision {
    JoinPlan join;
    double est_rows = 0.0;
    double est_cost = 0.0;
  };
  std::unordered_map<int, HopDecision> decisions;
  std::vector<int> exec_order;
  auto adopt = [&decisions, &exec_order](const Node* root,
                                         const std::vector<int>& real_of) {
    exec_order.clear();
    decisions.clear();
    auto walk = [&](auto&& self, const Node* node) -> void {
      if (node == nullptr) return;
      self(self, node->left.get());
      self(self, node->right.get());
      if (node->kind != Node::Kind::kHopJoin) return;
      const int real = real_of.empty() ? node->hop : real_of[node->hop];
      exec_order.push_back(real);
      decisions[real] =
          HopDecision{node->join, node->est_rows, node->est_cost};
    };
    walk(walk, root);
  };
  adopt(plan.root.get(), {});

  int replans = 0;
  size_t cursor = 0;
  while (cursor < exec_order.size()) {
    const int m = exec_order[cursor++];
    // Hop m joins the segment ending at binder m with the one starting
    // at binder m + 1; post-order execution keeps them adjacent.
    size_t li = 0;
    while (li < segs.size() && segs[li].hi != m) ++li;
    if (li + 1 >= segs.size() || segs[li + 1].lo != m + 1) {
      return Status::Internal("adaptive execution lost segment adjacency");
    }
    Seg& left = segs[li];
    Seg& right = segs[li + 1];
    const HopDecision d = decisions.at(m);
    const std::uint64_t start = timed ? obs::NowNanos() : 0;
    auto joined = algebra_.RelationshipJoin(
        rel_of(left), inputs[m].attributes[0], hops[m].assoc, rel_of(right),
        inputs[m + 1].attributes[0], d.join.options());
    if (!joined.ok()) return joined.status();

    // Stitch the executed node; leaf children materialize on first use,
    // exactly as ExecuteNode records them.
    auto consume = [&](Seg& s) -> std::unique_ptr<Node> {
      if (s.node != nullptr) return std::move(s.node);
      auto leaf = MakeLeaf(s.leaf_binder,
                           static_cast<double>(inputs[s.leaf_binder].size()));
      leaf->actual_rows =
          static_cast<long long>(inputs[s.leaf_binder].size());
      if (timed) leaf->elapsed_ns = 0;  // read in place — no work to time
      return leaf;
    };
    auto node = std::make_unique<Node>();
    node->kind = Node::Kind::kHopJoin;
    node->hop = m;
    node->lo = left.lo;
    node->hi = right.hi;
    node->join = d.join;
    node->est_rows = d.est_rows;
    node->est_cost = d.est_cost;
    node->left = consume(left);
    node->right = consume(right);
    node->actual_rows = static_cast<long long>(joined->size());
    if (timed) {
      // Inclusive wall-clock, matching ExecuteNode's semantics.
      node->elapsed_ns = static_cast<long long>(obs::NowNanos() - start) +
                         std::max<long long>(node->left->elapsed_ns, 0) +
                         std::max<long long>(node->right->elapsed_ns, 0);
    }
    left.hi = right.hi;
    left.leaf_binder = -1;
    left.owned = *std::move(joined);
    left.node = std::move(node);
    segs.erase(segs.begin() + static_cast<long>(li) + 1);

    // Divergence check: past the threshold (either direction, smoothed
    // so empty-vs-tiny never divides by zero), the remaining segments
    // re-enter the DP with their exact sizes. The remaining problem is
    // isomorphic to a fresh chain — segments are pseudo-binders and the
    // connecting hop between neighbors j, j+1 is the real hop at
    // segs[j].hi — except that tuple joins are off (a pseudo-binder can
    // be a multi-column segment).
    const double actual = static_cast<double>(left.owned.size());
    const bool diverged =
        (actual + 1.0) / (d.est_rows + 1.0) > kAdaptiveDivergence ||
        (d.est_rows + 1.0) / (actual + 1.0) > kAdaptiveDivergence;
    if (diverged && segs.size() > 1) {
      std::vector<PipelineHop> pseudo_hops;
      std::vector<double> pseudo_rows;
      std::vector<int> real_of;
      for (size_t j = 0; j < segs.size(); ++j) {
        pseudo_rows.push_back(static_cast<double>(rel_of(segs[j]).size()));
        if (j + 1 < segs.size()) {
          pseudo_hops.push_back(hops[segs[j].hi]);
          real_of.push_back(segs[j].hi);
        }
      }
      std::unique_ptr<Node> tree = OptimizeJoinTree(
          pseudo_hops, pseudo_rows, /*allow_tuple_joins=*/false);
      if (tree != nullptr) {
        ++replans;
        CountAdaptiveReplan();
        adopt(tree.get(), real_of);
        cursor = 0;
      }
    }
  }
  if (segs.size() != 1 || segs[0].node == nullptr) {
    return Status::Internal("adaptive execution did not reach a single root");
  }
  plan.root = std::move(segs[0].node);
  plan.adaptive_replans = replans;
  if (replans > 0) {
    // Report the estimates of the tree actually executed.
    plan.est_rows = plan.root->est_rows;
    plan.est_cost = plan.root->est_cost;
    for (const Plan& select : plan.selects) plan.est_cost += select.est_cost;
  }
  QueryRelation joined = std::move(segs[0].owned);

  RowsVisitedCounter().Increment(
      static_cast<std::uint64_t>(plan.RowsVisited()));
  std::vector<std::string> binders;
  for (const QueryRelation& in : inputs) {
    binders.push_back(in.attributes[0]);
  }
  auto out = algebra_.Project(joined, binders);
  if (!out.ok()) return out.status();
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return out;
}

Planner::PhysicalPlan Planner::PlanJoinPipeline(
    const std::vector<PipelineHop>& hops,
    const std::vector<size_t>& input_rows) const {
  PhysicalPlan plan;
  std::vector<double> rows(input_rows.begin(), input_rows.end());
  plan.root = OptimizeJoinTree(hops, rows);
  if (plan.root != nullptr) {
    plan.est_rows = plan.root->est_rows;
    plan.est_cost = plan.root->est_cost;
  }
  return plan;
}

Result<QueryRelation> Planner::JoinPipeline(
    const std::vector<QueryRelation>& inputs,
    const std::vector<PipelineHop>& hops, PhysicalPlan* plan_out,
    obs::ExecContext* ctx) const {
  Status valid = ValidatePipelineInputs(inputs, hops);
  if (!valid.ok()) return valid;
  std::vector<size_t> sizes;
  sizes.reserve(inputs.size());
  for (const QueryRelation& in : inputs) sizes.push_back(in.size());
  PhysicalPlan plan = PlanJoinPipeline(hops, sizes);
  for (const QueryRelation& in : inputs) {
    plan.binders.push_back(in.attributes[0]);
  }
  return ExecuteTree(inputs, hops, std::move(plan), plan_out, ctx);
}

Result<QueryRelation> Planner::JoinPipelineInOrder(
    const std::vector<QueryRelation>& inputs,
    const std::vector<PipelineHop>& hops, const std::vector<int>& order,
    PhysicalPlan* plan_out) const {
  Status valid = ValidatePipelineInputs(inputs, hops);
  if (!valid.ok()) return valid;
  std::vector<double> sizes;
  sizes.reserve(inputs.size());
  for (const QueryRelation& in : inputs) {
    sizes.push_back(static_cast<double>(in.size()));
  }
  SEED_ASSIGN_OR_RETURN(std::unique_ptr<Node> root,
                        TreeForOrder(hops, sizes, order));
  PhysicalPlan plan;
  plan.est_rows = root->est_rows;
  plan.est_cost = root->est_cost;
  plan.root = std::move(root);
  for (const QueryRelation& in : inputs) {
    plan.binders.push_back(in.attributes[0]);
  }
  return ExecuteTree(inputs, hops, std::move(plan), plan_out);
}

Result<QueryRelation> Planner::JoinPipelineSplit(
    const std::vector<QueryRelation>& inputs,
    const std::vector<PipelineHop>& hops, int m, bool tuple_join,
    PhysicalPlan* plan_out) const {
  Status valid = ValidatePipelineInputs(inputs, hops);
  if (!valid.ok()) return valid;
  const int n = static_cast<int>(hops.size());
  std::vector<double> sizes;
  sizes.reserve(inputs.size());
  for (const QueryRelation& in : inputs) {
    sizes.push_back(static_cast<double>(in.size()));
  }
  PhysicalPlan plan;
  if (tuple_join) {
    if (m <= 0 || m >= n) {
      return Status::InvalidArgument(
          "tuple-join split must leave at least one hop on each side");
    }
    plan.root = MakeTupleJoin(m, sizes[m], LeftDeepTree(hops, sizes, 0, m),
                              LeftDeepTree(hops, sizes, m, n));
  } else {
    if (m < 0 || m >= n) {
      return Status::InvalidArgument("hop split out of range");
    }
    plan.root = MakeHopJoin(hops, m, LeftDeepTree(hops, sizes, 0, m),
                            LeftDeepTree(hops, sizes, m + 1, n));
  }
  plan.est_rows = plan.root->est_rows;
  plan.est_cost = plan.root->est_cost;
  for (const QueryRelation& in : inputs) {
    plan.binders.push_back(in.attributes[0]);
  }
  return ExecuteTree(inputs, hops, std::move(plan), plan_out);
}

// --- The unified entry point -------------------------------------------------

std::vector<Planner::PipelineHop> Planner::LowerHops(
    const LogicalChain& chain) {
  std::vector<PipelineHop> hops;
  hops.reserve(chain.hops.size());
  for (size_t i = 0; i < chain.hops.size(); ++i) {
    hops.push_back({chain.hops[i].assoc, chain.hops[i].left_role,
                    chain.binders[i].cls, chain.binders[i + 1].cls});
  }
  return hops;
}

// --- Plan cache --------------------------------------------------------------

std::string Planner::BuildShapeKey(const LogicalChain& chain) const {
  std::string key = "db" + std::to_string(db_->instance_id());
  for (const LogicalSelect& b : chain.binders) {
    if (b.extent == LogicalSelect::Extent::kRelationships) {
      key += "|r" + std::to_string(b.assoc.raw());
      key += b.include_specializations ? "+" : "-";
      for (const RelCondition& cond : b.rel_conditions) {
        key += ",[" + cond.role + "]=";
        AppendShapeKey(cond.inner.shape(), &key);
      }
    } else {
      key += "|o" + std::to_string(b.cls.raw());
      key += b.include_specializations ? "+" : "-";
      key += ",p=";
      AppendShapeKey(b.pred.shape(), &key);
    }
  }
  // Binder names are deliberately not part of the key: they rename
  // output columns, never the plan; a hit re-labels from the live chain.
  for (const LogicalJoinHop& h : chain.hops) {
    key += "|h" + std::to_string(h.assoc.raw()) + ":" +
           std::to_string(h.left_role);
  }
  return key;
}

std::optional<std::vector<std::uint64_t>> Planner::LiveFingerprints(
    const LogicalChain& chain, const CachedPlan& cached) const {
  if (cached.selects.size() != chain.binders.size()) return std::nullopt;
  const schema::Schema& schema = *db_->schema();
  const core::ExtentCounters& counters = db_->extent_counters();
  const index::IndexManager& manager = db_->attribute_indexes();
  std::vector<std::uint64_t> fingerprints;
  for (size_t i = 0; i < chain.binders.size(); ++i) {
    const LogicalSelect& b = chain.binders[i];
    fingerprints.push_back(
        b.extent == LogicalSelect::Extent::kRelationships
            ? counters.CountAssociationExtent(schema, b.assoc,
                                              b.include_specializations)
            : counters.CountClassExtent(schema, b.cls,
                                        b.include_specializations));
    for (const CachedPlan::Leg& leg : cached.selects[i].legs) {
      const index::AttributeIndex* idx = manager.Find(leg.spec);
      if (idx == nullptr) return std::nullopt;
      fingerprints.push_back(idx->num_entries());
    }
  }
  for (const LogicalJoinHop& h : chain.hops) {
    fingerprints.push_back(counters.CountAssociationExtent(schema, h.assoc,
                                                           true));
  }
  return fingerprints;
}

std::optional<Planner::Plan> Planner::RebindSelect(
    const LogicalSelect& binder, const CachedPlan::Select& cached) const {
  const index::IndexManager& manager = db_->attribute_indexes();
  const bool rel = binder.extent == LogicalSelect::Extent::kRelationships;
  const double extent_rows = static_cast<double>(
      rel ? db_->extent_counters().CountAssociationExtent(
                *db_->schema(), binder.assoc, binder.include_specializations)
          : db_->extent_counters().CountClassExtent(
                *db_->schema(), binder.cls, binder.include_specializations));
  Plan plan;
  plan.extent_rows = extent_rows;
  if (cached.legs.empty()) {
    // The skeleton pinned the full-scan decision; estimates are live.
    plan.est_rows = extent_rows;
    plan.est_cost = CostModel::ScanCost(extent_rows);
    return plan;
  }
  const std::vector<Sarg> sargs = rel ? CollectRelSargs(binder.rel_conditions)
                                      : CollectObjectSargs(binder.pred);
  std::vector<Candidate> legs;
  for (const CachedPlan::Leg& cleg : cached.legs) {
    if (cleg.sarg_ordinal >= sargs.size()) return std::nullopt;
    const index::AttributeIndex* idx = manager.Find(cleg.spec);
    if (idx == nullptr) return std::nullopt;
    Candidate c = Candidate::FromSarg(idx, sargs[cleg.sarg_ordinal]);
    c.leg.sarg_ordinal = cleg.sarg_ordinal;
    legs.push_back(std::move(c));
  }
  if (legs.size() == 1) {
    // Estimate and cost exactly as ChooseCheapest's single-index arm,
    // so an unchanged-statistics re-bind prints byte-identically to
    // the fresh plan.
    plan.kind = legs[0].kind;
    plan.est_rows = legs[0].leg.est_rows;
    plan.est_cost =
        CostModel::SingleIndexCost(legs[0].probes, legs[0].leg.est_rows);
    plan.legs.push_back(std::move(legs[0].leg));
    return plan;
  }
  // Intersection: the stored (greedy-chosen) leg order with live
  // estimates, folded with the same formulas ChooseCheapest costs with.
  plan.kind = Plan::Kind::kIndexIntersect;
  double legs_cost =
      CostModel::IntersectLegCost(legs[0].probes, legs[0].leg.est_rows);
  double inter_rows = legs[0].leg.est_rows;
  for (size_t i = 1; i < legs.size(); ++i) {
    legs_cost +=
        CostModel::IntersectLegCost(legs[i].probes, legs[i].leg.est_rows);
    inter_rows = CostModel::IntersectRows(inter_rows, legs[i].leg.est_rows,
                                          extent_rows);
  }
  plan.est_rows = inter_rows;
  plan.est_cost = legs_cost + CostModel::ResidualCost(inter_rows);
  for (Candidate& c : legs) plan.legs.push_back(std::move(c.leg));
  return plan;
}

std::optional<Planner::PhysicalPlan> Planner::TryCachedPlan(
    const LogicalChain& chain, const std::string& key) const {
  PlanCache& cache = PlanCache::Global();
  std::optional<CachedPlan> cached = cache.Lookup(key);
  if (!cached.has_value()) {
    cache.NoteMiss();
    return std::nullopt;
  }
  bool usable = false;
  if (std::optional<std::vector<std::uint64_t>> live =
          LiveFingerprints(chain, *cached);
      live.has_value() && live->size() == cached->fingerprints.size()) {
    const double ratio = cache.drift_ratio();
    usable = true;
    for (size_t i = 0; i < live->size(); ++i) {
      const double l = static_cast<double>((*live)[i]) + 1.0;
      const double c = static_cast<double>(cached->fingerprints[i]) + 1.0;
      if (l / c > ratio || c / l > ratio) {
        usable = false;
        break;
      }
    }
  }
  PhysicalPlan plan;
  if (usable) {
    for (size_t i = 0; i < chain.binders.size(); ++i) {
      std::optional<Plan> select =
          RebindSelect(chain.binders[i], cached->selects[i]);
      if (!select.has_value()) {
        usable = false;
        break;
      }
      plan.est_cost += select->est_cost;
      plan.selects.push_back(std::move(*select));
    }
  }
  if (!usable) {
    cache.Invalidate(key);
    cache.NoteMiss();
    return std::nullopt;
  }
  for (const LogicalSelect& b : chain.binders) {
    plan.binders.push_back(b.binder);
  }
  if (chain.relationship_form()) {
    plan.relationship_form = true;
    plan.est_rows = plan.selects[0].est_rows;
  } else if (chain.hops.empty()) {
    plan.root = MakeLeaf(0, plan.selects[0].est_rows);
    plan.est_rows = plan.selects[0].est_rows;
  }
  // Hop chains leave the tree null: Run() re-derives it from the actual
  // binder sizes, exactly as it does for fresh plans — the cache's win
  // is skipping candidate costing and the optimize-phase DP.
  plan.from_cache = true;
  cache.NoteHit();
  return plan;
}

void Planner::InsertInCache(const LogicalChain& chain, const std::string& key,
                            const PhysicalPlan& plan) const {
  CachedPlan cached;
  for (const Plan& select : plan.selects) {
    CachedPlan::Select s;
    for (const Plan::Leg& leg : select.legs) {
      s.legs.push_back(CachedPlan::Leg{leg.index->spec(), leg.sarg_ordinal});
    }
    cached.selects.push_back(std::move(s));
  }
  std::optional<std::vector<std::uint64_t>> fingerprints =
      LiveFingerprints(chain, cached);
  if (!fingerprints.has_value()) return;  // an index vanished mid-planning
  cached.fingerprints = std::move(*fingerprints);
  PlanCache::Global().Insert(key, std::move(cached));
}

Result<Planner::PhysicalPlan> Planner::Optimize(
    const LogicalChain& chain) const {
  SEED_RETURN_IF_ERROR(chain.Validate());
  PhysicalPlan plan;
  for (const LogicalSelect& b : chain.binders) {
    plan.binders.push_back(b.binder);
  }
  if (chain.relationship_form()) {
    const LogicalSelect& b = chain.binders[0];
    plan.relationship_form = true;
    plan.selects.push_back(PlanSelectRelationships(
        b.assoc, b.rel_conditions, b.include_specializations));
    plan.est_rows = plan.selects[0].est_rows;
    plan.est_cost = plan.selects[0].est_cost;
    return plan;
  }
  std::vector<double> input_rows;
  for (const LogicalSelect& b : chain.binders) {
    plan.selects.push_back(
        PlanSelect(b.cls, b.pred, b.include_specializations));
    plan.est_cost += plan.selects.back().est_cost;
    input_rows.push_back(plan.selects.back().est_rows);
  }
  if (chain.hops.empty()) {
    plan.root = MakeLeaf(0, input_rows[0]);
    plan.est_rows = input_rows[0];
    return plan;
  }
  plan.root = OptimizeJoinTree(LowerHops(chain), input_rows);
  plan.est_rows = plan.root->est_rows;
  plan.est_cost += plan.root->est_cost;
  return plan;
}

Result<Planner::ChainResult> Planner::Run(const LogicalChain& chain,
                                          PhysicalPlan* plan_out,
                                          obs::ExecContext* ctx) const {
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("query.queries.total");
  queries->Increment();
  const bool timed = ctx != nullptr && ctx->time_nodes;

  PhysicalPlan plan;
  {
    obs::PhaseTimer timer(ctx, obs::QueryPhase::kOptimize);
    // The textual hot path consults the shape-keyed plan cache first: a
    // hit re-binds live literals into the cached skeleton and skips
    // index selection, access-path costing and the optimize-phase DP.
    std::string cache_key;
    if (plan_cache_enabled_ && chain.Validate().ok()) {
      cache_key = BuildShapeKey(chain);
      if (std::optional<PhysicalPlan> cached =
              TryCachedPlan(chain, cache_key)) {
        plan = std::move(*cached);
      }
    }
    if (!plan.from_cache) {
      SEED_ASSIGN_OR_RETURN(plan, Optimize(chain));
      if (!cache_key.empty()) InsertInCache(chain, cache_key, plan);
    }
  }
  obs::PhaseTimer exec_timer(ctx, obs::QueryPhase::kExecute);

  ChainResult out;
  if (chain.relationship_form()) {
    const LogicalSelect& b = chain.binders[0];
    const std::uint64_t start = timed ? obs::NowNanos() : 0;
    out.relationships = SelectRelationshipIds(
        b.assoc, b.rel_conditions, b.include_specializations,
        &plan.selects[0]);
    plan.selects[0].actual_rows =
        static_cast<long long>(out.relationships.size());
    if (timed) {
      plan.selects[0].elapsed_ns =
          static_cast<long long>(obs::NowNanos() - start);
    }
    RowsVisitedCounter().Increment(out.relationships.size());
    if (plan_out != nullptr) *plan_out = std::move(plan);
    return out;
  }

  if (chain.hops.empty()) {
    // The single-binder shape returns the selection verbatim: the access
    // paths already emit ascending ids, so there is no tuple boxing and
    // no projection round-trip.
    const LogicalSelect& b = chain.binders[0];
    const std::uint64_t start = timed ? obs::NowNanos() : 0;
    out.ids = SelectIds(b.cls, b.pred, b.include_specializations,
                        &plan.selects[0]);
    plan.selects[0].actual_rows = static_cast<long long>(out.ids.size());
    plan.root->actual_rows = static_cast<long long>(out.ids.size());
    if (timed) {
      long long elapsed = static_cast<long long>(obs::NowNanos() - start);
      plan.selects[0].elapsed_ns = elapsed;
      plan.root->elapsed_ns = elapsed;
    }
    RowsVisitedCounter().Increment(out.ids.size());
    if (plan_out != nullptr) *plan_out = std::move(plan);
    return out;
  }

  // Materialize every binder through its planned access path.
  std::vector<QueryRelation> inputs;
  for (size_t i = 0; i < chain.binders.size(); ++i) {
    const LogicalSelect& b = chain.binders[i];
    QueryRelation rel;
    rel.attributes = {b.binder};
    const std::uint64_t start = timed ? obs::NowNanos() : 0;
    for (ObjectId id : SelectIds(b.cls, b.pred, b.include_specializations,
                                 &plan.selects[i])) {
      rel.tuples.push_back({id});
    }
    plan.selects[i].actual_rows = static_cast<long long>(rel.size());
    if (timed) {
      plan.selects[i].elapsed_ns =
          static_cast<long long>(obs::NowNanos() - start);
    }
    inputs.push_back(std::move(rel));
  }

  // Re-run the DP with the *actual* binder sizes, which are now known
  // for free: a scan plan's pre-execution estimate is the whole extent
  // regardless of predicate selectivity, and a join strategy chosen for
  // a 100k-row estimate is badly wrong for the 3 rows a selective
  // residual actually kept.
  std::vector<double> sizes;
  sizes.reserve(inputs.size());
  for (const QueryRelation& in : inputs) {
    sizes.push_back(static_cast<double>(in.size()));
  }
  plan.root = OptimizeJoinTree(LowerHops(chain), sizes);
  plan.est_rows = plan.root->est_rows;
  plan.est_cost = plan.root->est_cost;
  for (const Plan& select : plan.selects) plan.est_cost += select.est_cost;
  // Stepwise adaptive execution: identical to ExecuteTree until an
  // intermediate diverges from its estimate, at which point the rest of
  // the chain is re-planned from exact sizes.
  SEED_ASSIGN_OR_RETURN(out.tuples,
                        ExecuteChainAdaptive(inputs, LowerHops(chain),
                                             std::move(plan), plan_out, ctx));
  return out;
}

// --- Relationship extents ----------------------------------------------------

Planner::Plan Planner::PlanSelectRelationships(
    AssociationId assoc, const std::vector<RelCondition>& conditions,
    bool include_specializations) const {
  const index::IndexManager& manager = db_->attribute_indexes();
  double extent_rows =
      static_cast<double>(db_->extent_counters().CountAssociationExtent(
          *db_->schema(), assoc, include_specializations));
  std::vector<Candidate> candidates;
  // Ordinals over every sargable condition, as in PlanSelect: the
  // cached-skeleton re-bind recomputes the same list from the live
  // conditions (CollectRelSargs).
  size_t sarg_ordinal = 0;
  for (const RelCondition& cond : conditions) {
    if (cond.inner.shape() == nullptr) continue;
    Sarg sarg;
    // The inner predicate applies to the attribute sub-object's own value;
    // nested roles make no sense here.
    if (!ExtractSarg(cond.inner.shape(), "", &sarg) || !sarg.role.empty()) {
      continue;
    }
    const size_t ordinal = sarg_ordinal++;
    const index::AttributeIndex* idx = manager.BestForRelationships(
        *db_->schema(), assoc, include_specializations, cond.role);
    if (idx == nullptr) continue;
    Candidate c = Candidate::FromSarg(idx, std::move(sarg));
    c.leg.sarg_ordinal = ordinal;
    candidates.push_back(std::move(c));
  }
  return ChooseCheapest(std::move(candidates), extent_rows);
}

bool Planner::EvalRelConditions(
    RelationshipId rel, const std::vector<RelCondition>& conditions) const {
  for (const RelCondition& cond : conditions) {
    bool matched = false;
    for (ObjectId sub : db_->SubObjects(rel, cond.role)) {
      if (cond.inner.Eval(*db_, sub)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;  // missing attribute matches nothing
  }
  return true;
}

std::vector<RelationshipId> Planner::ExecuteRelIndexPlan(
    const Plan& plan, AssociationId assoc,
    const std::vector<RelCondition>& conditions,
    bool include_specializations) const {
  std::vector<RelationshipId> candidates =
      FetchCandidates<RelationshipId>(plan);
  const schema::Schema& schema = *db_->schema();
  return FilterIdsPartitioned(policy_, candidates, [&](RelationshipId id) {
    auto rel = db_->GetRelationship(id);
    if (!rel.ok() || (*rel)->is_pattern) return false;
    bool in_extent =
        include_specializations
            ? schema.IsSameOrSpecializationOf((*rel)->assoc, assoc)
            : (*rel)->assoc == assoc;
    return in_extent && EvalRelConditions(id, conditions);
  });
}

std::vector<RelationshipId> Planner::SelectRelationshipIds(
    AssociationId assoc, const std::vector<RelCondition>& conditions,
    bool include_specializations, const Plan* precomputed) const {
  Plan plan = precomputed != nullptr
                  ? *precomputed
                  : PlanSelectRelationships(assoc, conditions,
                                            include_specializations);
  CountPlanKind(plan.uses_index());
  if (plan.uses_index()) {
    return ExecuteRelIndexPlan(plan, assoc, conditions,
                               include_specializations);
  }
  return FilterIdsPartitioned(
      policy_,
      db_->RelationshipsOfAssociation(assoc, include_specializations),
      [&](RelationshipId id) { return EvalRelConditions(id, conditions); });
}

}  // namespace seed::query
