#include "query/planner.h"

#include <algorithm>
#include <limits>

namespace seed::query {

namespace {

using Kind = PredicateShape::Kind;

/// A sargable conjunct: an attribute (own value when `role` empty) probed
/// by equality keys or by an integer range.
struct Sarg {
  std::string role;
  bool is_range = false;
  std::vector<core::Value> keys;  // equality probes
  core::Value lo, hi;             // range bounds
  bool lo_inclusive = true;
  bool hi_inclusive = true;
};

/// Flattens nested And shapes into a conjunct list.
void CollectConjuncts(const PredicateShape* shape,
                      std::vector<const PredicateShape*>* out) {
  if (shape == nullptr) return;
  if (shape->kind == Kind::kAnd) {
    for (const auto& child : shape->children) {
      CollectConjuncts(child.get(), out);
    }
    return;
  }
  out->push_back(shape);
}

/// True iff `shape` is an OR tree whose every leaf is ValueEquals;
/// collects the leaf keys.
bool CollectEqualityLeaves(const PredicateShape* shape,
                           std::vector<core::Value>* keys) {
  if (shape == nullptr) return false;
  if (shape->kind == Kind::kValueEquals) {
    keys->push_back(shape->value);
    return true;
  }
  if (shape->kind == Kind::kOr) {
    for (const auto& child : shape->children) {
      if (!CollectEqualityLeaves(child.get(), keys)) return false;
    }
    return !shape->children.empty();
  }
  return false;
}

/// Extracts the sargable form of one conjunct on the attribute `role`
/// (empty = the object's own value), if any.
bool ExtractSarg(const PredicateShape* shape, std::string role, Sarg* out) {
  std::vector<core::Value> keys;
  if (CollectEqualityLeaves(shape, &keys)) {
    out->role = std::move(role);
    out->is_range = false;
    out->keys = std::move(keys);
    return true;
  }
  if (shape->kind == Kind::kIntLess || shape->kind == Kind::kIntGreater) {
    out->role = std::move(role);
    out->is_range = true;
    if (shape->kind == Kind::kIntLess) {
      out->lo = core::Value::Int(std::numeric_limits<std::int64_t>::min());
      out->lo_inclusive = true;
      out->hi = core::Value::Int(shape->bound);
      out->hi_inclusive = false;
    } else {
      out->lo = core::Value::Int(shape->bound);
      out->lo_inclusive = false;
      out->hi = core::Value::Int(std::numeric_limits<std::int64_t>::max());
      out->hi_inclusive = true;
    }
    return true;
  }
  // OnSubObject(role, inner): sargable when we are at the top level (role
  // still empty) and the inner predicate is sargable on its own value.
  if (shape->kind == Kind::kOnSubObject && role.empty() &&
      !shape->children.empty()) {
    return ExtractSarg(shape->children[0].get(), shape->text, out);
  }
  return false;
}

}  // namespace

std::string Planner::Plan::ToString() const {
  switch (kind) {
    case Kind::kFullScan:
      return "scan";
    case Kind::kIndexEquals:
      return "index-equals(" + index->spec().ToString() + "), " +
             std::to_string(keys.size()) + " key" +
             (keys.size() == 1 ? "" : "s");
    case Kind::kIndexRange:
      return "index-range(" + index->spec().ToString() + "), " +
             (lo_inclusive ? "[" : "(") + lo.ToString() + ", " +
             hi.ToString() + (hi_inclusive ? "]" : ")");
  }
  return "?";
}

Planner::Plan Planner::PlanSelect(ClassId cls, const Predicate& p,
                                  bool include_specializations) const {
  Plan plan;
  const index::IndexManager& manager = db_->attribute_indexes();
  if (manager.empty() || p.shape() == nullptr) return plan;

  std::vector<const PredicateShape*> conjuncts;
  CollectConjuncts(p.shape(), &conjuncts);

  std::vector<Sarg> sargs;
  for (const PredicateShape* conjunct : conjuncts) {
    Sarg sarg;
    if (ExtractSarg(conjunct, "", &sarg)) sargs.push_back(std::move(sarg));
  }
  // Equality probes beat range scans; otherwise first come, first served.
  std::stable_sort(sargs.begin(), sargs.end(),
                   [](const Sarg& a, const Sarg& b) {
                     return !a.is_range && b.is_range;
                   });
  for (Sarg& sarg : sargs) {
    const index::AttributeIndex* idx = manager.BestFor(
        *db_->schema(), cls, include_specializations, sarg.role);
    if (idx == nullptr) continue;
    plan.index = idx;
    if (sarg.is_range) {
      plan.kind = Plan::Kind::kIndexRange;
      plan.lo = std::move(sarg.lo);
      plan.hi = std::move(sarg.hi);
      plan.lo_inclusive = sarg.lo_inclusive;
      plan.hi_inclusive = sarg.hi_inclusive;
    } else {
      plan.kind = Plan::Kind::kIndexEquals;
      plan.keys = std::move(sarg.keys);
    }
    return plan;
  }
  return plan;
}

std::vector<ObjectId> Planner::ExecuteIndexPlan(
    const Plan& plan, ClassId cls, const Predicate& p,
    bool include_specializations) const {
  std::vector<ObjectId> candidates;
  if (plan.kind == Plan::Kind::kIndexEquals) {
    for (const core::Value& key : plan.keys) {
      std::vector<ObjectId> hits = plan.index->Lookup(key);
      candidates.insert(candidates.end(), hits.begin(), hits.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  } else {
    candidates = plan.index->Range(plan.lo, plan.lo_inclusive, plan.hi,
                                   plan.hi_inclusive);
  }

  // Residual: extent membership (the chosen index may cover a broader
  // family than the query) and the full original predicate. Index
  // candidates are few; re-evaluating keeps both paths semantically
  // identical by construction.
  const schema::Schema& schema = *db_->schema();
  std::vector<ObjectId> out;
  for (ObjectId id : candidates) {
    auto obj = db_->GetObject(id);
    if (!obj.ok()) continue;
    bool in_extent = include_specializations
                         ? schema.IsSameOrSpecializationOf((*obj)->cls, cls)
                         : (*obj)->cls == cls;
    if (in_extent && p.Eval(*db_, id)) out.push_back(id);
  }
  return out;
}

std::vector<ObjectId> Planner::SelectIds(ClassId cls, const Predicate& p,
                                         bool include_specializations,
                                         const Plan* precomputed) const {
  Plan plan = precomputed != nullptr
                  ? *precomputed
                  : PlanSelect(cls, p, include_specializations);
  if (plan.uses_index()) {
    return ExecuteIndexPlan(plan, cls, p, include_specializations);
  }
  std::vector<ObjectId> out;
  for (ObjectId id : db_->ObjectsOfClass(cls, include_specializations)) {
    if (p.Eval(*db_, id)) out.push_back(id);
  }
  return out;
}

Result<QueryRelation> Planner::SelectFromClass(
    ClassId cls, std::string attribute, const Predicate& p,
    bool include_specializations) const {
  Plan plan = PlanSelect(cls, p, include_specializations);
  if (!plan.uses_index()) {
    QueryRelation extent =
        algebra_.ClassExtent(cls, attribute, include_specializations);
    return algebra_.Select(extent, attribute, p);
  }
  QueryRelation out;
  out.attributes = {std::move(attribute)};
  for (ObjectId id :
       ExecuteIndexPlan(plan, cls, p, include_specializations)) {
    out.tuples.push_back({id});
  }
  return out;
}

}  // namespace seed::query
