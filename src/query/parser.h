// A small textual query language over the ER algebra, for the interactive
// shell and for tools that want string-driven retrieval. (The 1986
// prototype had no query language — "retrieval with complex queries is not
// supported" — this is a deliberate extension on top of the algebra.)
//
// Grammar (case-sensitive keywords, strings in double quotes):
//
//   query  := 'find' CLASS ['exact'] [ 'where' cond ('and' cond)* ]
//   relq   := 'find' 'rel' ASSOC ['exact']
//             [ 'where' relcond ('and' relcond)* ]
//   joinq  := 'find' CLASS BINDER ['exact'] hop+        (up to 6 hops)
//             [ 'where' BINDER cond ('and' BINDER cond)* ]
//   hop    := 'join' ['reverse'] 'via' ASSOC 'to' CLASS BINDER ['exact']
//   cond   := 'name' 'is' IDENT
//           | 'name' 'contains' STRING-or-IDENT
//           | 'value' 'is' literal
//           | 'value' 'contains' STRING-or-IDENT
//           | 'value' ('>' | '<') INT
//           | 'has' ROLE
//           | ROLE 'is' literal
//           | ROLE 'contains' STRING-or-IDENT
//           | ROLE ('>' | '<') INT
//   relcond:= 'has' ROLE
//           | ROLE 'is' literal
//           | ROLE 'contains' STRING-or-IDENT
//           | ROLE ('>' | '<') INT
//   literal := INT | DATE(YYYY-MM-DD) | true | false | STRING | IDENT
//
// 'exact' restricts the extent to the class/association itself (no
// specializations). '>' / '<' compare integer values and must be
// whitespace-separated. 'rel' is a reserved word after 'find': a class
// literally named "rel" cannot be queried textually. Examples:
//   find Data where name contains "Alarm"
//   find Action where Description contains "sensor" and has Revised
//   find Reading where value > 990
//   find rel Write where NumberOfWrites > 3
//   find Data d join via Access to Action a where d name contains "Alarm"
//
// Join queries bind each side to a name (BINDER) and return the joined
// binder tuples: objects of adjacent binder classes connected by existing
// relationships of each hop's association (family included). Up to
// LogicalChain::kMaxHops (6) hops chain, e.g.
//   find Data d join via Access to Action a join via Contained to Action c
// Binder names must be pairwise distinct. Each hop's direction — which
// role its left binder binds — is inferred from the role classes;
// 'reverse' forces that hop's left binder onto role 1 (needed for
// self-associations, where both roles accept the same class). 'where'
// conditions name the binder they constrain.
//
// Every query form lowers into the logical IR (query/logical.h) and
// executes through the one optimizer entry point, Planner::Optimize: each
// binder's selection plans through the cost-based access paths (sargable
// conditions use a matching attribute index — single probe or multi-index
// intersection — when estimated cheaper than the extent scan), and join
// chains run the plan *tree* the hop-bitset DP chooses from the tracked
// degree statistics: left-deep or bushy (segment x segment), with a
// selective hop written last still running first. 'explain find ...'
// prints every binder's selection plan plus the nested plan tree with
// per-join strategy and estimated vs. actual rows. `find rel` filters
// the relationships of an association by their attribute sub-objects
// (paper Fig. 3: `Write.NumberOfWrites`), served by relationship-side
// indexes the same way.

#ifndef SEED_QUERY_PARSER_H_
#define SEED_QUERY_PARSER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "obs/trace.h"
#include "query/planner.h"

namespace seed::query {

/// The EXPLAIN ANALYZE sink: when passed to an entry point it receives
/// the executed physical plan (per-node actual rows and inclusive
/// wall-clock) plus the per-phase timings of this one query. Move-only,
/// like the plan tree it carries.
struct QueryTrace {
  Planner::PhysicalPlan plan;
  obs::ExecContext ctx;

  /// The EXPLAIN ANALYZE body: the analyzed plan, then "; phases: parse
  /// <t>, lower <t>, optimize <t>, execute <t>". `mask_times` replaces
  /// every duration with "<t>" so golden tests pin structure and rows.
  std::string Render(bool mask_times = false) const;
};

/// Parses and runs `text` against `db`; returns matching object ids,
/// ascending. Undefined values match nothing, per the paper. When
/// `plan_out` is non-null it receives the chosen access path with its
/// estimated rows, followed by the actual row count (EXPLAIN-style:
/// "index-equals(...), est ~3 of 100 rows; actual 2"). When `trace` is
/// non-null the query runs with per-node and per-phase timing and the
/// trace receives the analyzed plan (EXPLAIN ANALYZE). Relationship
/// queries ('find rel ...') must go through RunRelationshipQuery.
Result<std::vector<ObjectId>> RunQuery(const core::Database& db,
                                       std::string_view text,
                                       std::string* plan_out = nullptr,
                                       QueryTrace* trace = nullptr);

/// Parses and runs a 'find rel <Assoc> ...' query; returns matching
/// relationship ids, ascending.
Result<std::vector<RelationshipId>> RunRelationshipQuery(
    const core::Database& db, std::string_view text,
    std::string* plan_out = nullptr, QueryTrace* trace = nullptr);

/// Parses and runs a single-hop 'find <Class> <b1> join via <Assoc> to
/// <Class> <b2> ...' query; returns the joined (left, right) object
/// pairs, ascending. `plan_out` receives both sides' selection plans and
/// the chosen join strategy with estimated vs. actual rows. Multi-hop
/// chains are rejected here — run them through RunJoinChainQuery.
Result<std::vector<std::pair<ObjectId, ObjectId>>> RunJoinQuery(
    const core::Database& db, std::string_view text,
    std::string* plan_out = nullptr, QueryTrace* trace = nullptr);

/// Result of a join-chain query: the binder names in textual order and
/// the joined binder tuples (ascending, deduplicated).
struct JoinChainResult {
  std::vector<std::string> binders;
  std::vector<std::vector<ObjectId>> tuples;
};

/// Parses and runs a join query with any number of hops (1 to
/// LogicalChain::kMaxHops); `plan_out` receives every binder's selection
/// plan plus the executed plan tree with estimated vs. actual rows.
Result<JoinChainResult> RunJoinChainQuery(const core::Database& db,
                                          std::string_view text,
                                          std::string* plan_out = nullptr,
                                          QueryTrace* trace = nullptr);

// --- Snapshot-pinned entry points -----------------------------------------
//
// Overloads taking shared ownership of the database, for callers reading
// an MVCC snapshot (version::PinDatabase): the pin is held for the whole
// parse/plan/execute span, so a concurrent commit publishing a newer
// snapshot can never free the state a running query reads. Semantics are
// identical to the borrowing overloads above.

Result<std::vector<ObjectId>> RunQuery(
    std::shared_ptr<const core::Database> db, std::string_view text,
    std::string* plan_out = nullptr, QueryTrace* trace = nullptr);

Result<std::vector<RelationshipId>> RunRelationshipQuery(
    std::shared_ptr<const core::Database> db, std::string_view text,
    std::string* plan_out = nullptr, QueryTrace* trace = nullptr);

Result<std::vector<std::pair<ObjectId, ObjectId>>> RunJoinQuery(
    std::shared_ptr<const core::Database> db, std::string_view text,
    std::string* plan_out = nullptr, QueryTrace* trace = nullptr);

Result<JoinChainResult> RunJoinChainQuery(
    std::shared_ptr<const core::Database> db, std::string_view text,
    std::string* plan_out = nullptr, QueryTrace* trace = nullptr);

}  // namespace seed::query

#endif  // SEED_QUERY_PARSER_H_
