// A small textual query language over the ER algebra, for the interactive
// shell and for tools that want string-driven retrieval. (The 1986
// prototype had no query language — "retrieval with complex queries is not
// supported" — this is a deliberate extension on top of the algebra.)
//
// Grammar (case-sensitive keywords, strings in double quotes):
//
//   query  := 'find' CLASS ['exact'] [ 'where' cond ('and' cond)* ]
//   cond   := 'name' 'is' IDENT
//           | 'name' 'contains' STRING-or-IDENT
//           | 'value' 'is' literal
//           | 'value' 'contains' STRING-or-IDENT
//           | 'has' ROLE
//           | ROLE 'is' literal
//           | ROLE 'contains' STRING-or-IDENT
//   literal := INT | DATE(YYYY-MM-DD) | true | false | STRING | IDENT
//
// 'exact' restricts the extent to the class itself (no specializations).
// Examples:
//   find Data where name contains "Alarm"
//   find Action where Description contains "sensor" and has Revised
//   find Thing exact
//   find OutputData where Revised is 1986-02-05

#ifndef SEED_QUERY_PARSER_H_
#define SEED_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"

namespace seed::query {

/// Parses and runs `text` against `db`; returns matching object ids,
/// ascending. Undefined values match nothing, per the paper. Queries
/// execute through the planner: selective conditions use a matching
/// attribute index when one exists, and fall back to the extent scan.
/// When `plan_out` is non-null, the chosen access path ("scan",
/// "index-equals(...)") is reported there (EXPLAIN-style).
Result<std::vector<ObjectId>> RunQuery(const core::Database& db,
                                       std::string_view text,
                                       std::string* plan_out = nullptr);

}  // namespace seed::query

#endif  // SEED_QUERY_PARSER_H_
