// A small entity-relationship algebra (after Parent & Spaccapietra [10],
// cited by the paper): relations over object ids with named attributes,
// closed under selection, projection, cartesian product, and a join that is
// "defined on existing relationships only" — which is what makes undefined
// and incomplete items harmless in query evaluation.
//
// The SEED prototype itself only shipped retrieval-by-name; this module is
// the natural extension the paper's RELATED WORK section points at.
//
// Execution is morsel-driven (docs/execution.md): every operator's heavy
// loop is written over a contiguous span of its input, and when the
// instance's ExecPolicy allows parallelism and the input clears the
// partition threshold, those spans become morsels claimed by the shared
// worker pool — per-morsel outputs are concatenated in morsel order (and
// joins Dedup anyway), so results are identical to the sequential path
// at every thread count. At threads == 1 the sequential code runs
// unchanged. All Database access on these paths is read-only; callers
// must not mutate the database while a query executes.

#ifndef SEED_QUERY_ALGEBRA_H_
#define SEED_QUERY_ALGEBRA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "exec/exec_policy.h"
#include "query/predicate.h"

namespace seed::query {

/// A relation: named columns of object ids, set semantics — every
/// operator emits tuples sorted ascending with duplicates removed, and
/// the set operators below rely on that to run linear merges (hand-built
/// relations violating it are normalized on the way in).
struct QueryRelation {
  std::vector<std::string> attributes;
  std::vector<std::vector<ObjectId>> tuples;

  size_t arity() const { return attributes.size(); }
  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }

  /// Index of an attribute, or -1.
  int AttrIndex(std::string_view name) const;
};

class Algebra {
 public:
  explicit Algebra(const core::Database* db)
      : db_(db), policy_(exec::ExecPolicy::Default()) {}

  /// Replaces the execution policy snapshotted at construction (the
  /// Planner forwards its own policy so a query sees one consistent
  /// setting across planning and execution).
  void set_exec_policy(const exec::ExecPolicy& policy) { policy_ = policy; }
  const exec::ExecPolicy& exec_policy() const { return policy_; }

  /// Unary relation of all live objects of `cls` (specializations
  /// included unless disabled).
  QueryRelation ClassExtent(ClassId cls, std::string attribute,
                            bool include_specializations = true) const;

  /// Tuples whose `attribute` satisfies `p`.
  Result<QueryRelation> Select(const QueryRelation& in,
                               std::string_view attribute,
                               const Predicate& p) const;

  /// Keeps the listed attributes (deduplicates). Duplicate names in
  /// `keep` are rejected: the second copy of a column would be
  /// unreachable through AttrIndex and would poison later Union /
  /// Difference arity checks.
  Result<QueryRelation> Project(const QueryRelation& in,
                                const std::vector<std::string>& keep) const;

  /// All combinations; attribute sets must be disjoint.
  Result<QueryRelation> CartesianProduct(const QueryRelation& a,
                                         const QueryRelation& b) const;

  /// Physical execution choice for RelationshipJoin, normally made by
  /// Planner::PlanJoin from the extent statistics. Every variant computes
  /// the same relation; only the work differs.
  struct JoinOptions {
    enum class Method {
      /// Materialize the association's adjacency once, hash one input,
      /// stream the other.
      kHash,
      /// Drive from one input and probe db->RelationshipsOf(id) per
      /// tuple — never touches the full association extent. Wins when
      /// the driving side is small and the association is large.
      kIndexNestedLoop,
    };
    enum class Side { kLeft, kRight };

    Method method = Method::kHash;
    /// kHash: the side whose tuples are hash-indexed (the other streams).
    /// kIndexNestedLoop: the side that drives the per-tuple probes.
    Side build_side = Side::kRight;
    /// Role the left relation's join attribute binds: 0 (the historical
    /// direction) or 1 (reverse — left objects sit at the role-1 end).
    int left_role = 0;
  };

  /// Joins `a` and `b` on relationships of `assoc` (family included):
  /// keeps (ta, tb) iff a relationship connects ta[attr_a] in role
  /// `left_role` with tb[attr_b] in the opposite role. Undefined items
  /// participate in no relationships, so they simply never join.
  /// The default overload joins in the role0->role1 direction and picks
  /// the hash build side from the input sizes; pass explicit options
  /// (e.g. from Planner::PlanJoin) to control strategy and direction.
  Result<QueryRelation> RelationshipJoin(const QueryRelation& a,
                                         std::string_view attr_a,
                                         AssociationId assoc,
                                         const QueryRelation& b,
                                         std::string_view attr_b) const;
  Result<QueryRelation> RelationshipJoin(const QueryRelation& a,
                                         std::string_view attr_a,
                                         AssociationId assoc,
                                         const QueryRelation& b,
                                         std::string_view attr_b,
                                         const JoinOptions& options) const;

  /// Joins two relations on their one shared attribute `shared` (a
  /// natural join on that column): keeps (ta, tb) iff ta[shared] ==
  /// tb[shared], emitting a's columns followed by b's minus the shared
  /// duplicate. The bushy connector for join-chain plans: two
  /// independently computed chain segments that overlap in one binder
  /// merge on that binder's column — pure tuple matching, no
  /// relationship traversal and never a cartesian product. All other
  /// attributes must be disjoint. The smaller input is hash-indexed.
  Result<QueryRelation> TupleJoin(const QueryRelation& a,
                                  const QueryRelation& b,
                                  std::string_view shared) const;

  /// Set union (same attribute lists required).
  Result<QueryRelation> Union(const QueryRelation& a,
                              const QueryRelation& b) const;

  /// Set difference a \ b (same attribute lists required). Linear merge
  /// over the operators' sorted+deduplicated tuple order.
  Result<QueryRelation> Difference(const QueryRelation& a,
                                   const QueryRelation& b) const;

  /// Set intersection (same attribute lists required). Linear merge, as
  /// Difference.
  Result<QueryRelation> Intersect(const QueryRelation& a,
                                  const QueryRelation& b) const;

 private:
  void Dedup(QueryRelation* rel) const;

  const core::Database* db_;
  exec::ExecPolicy policy_;
};

}  // namespace seed::query

#endif  // SEED_QUERY_ALGEBRA_H_
