// A small entity-relationship algebra (after Parent & Spaccapietra [10],
// cited by the paper): relations over object ids with named attributes,
// closed under selection, projection, cartesian product, and a join that is
// "defined on existing relationships only" — which is what makes undefined
// and incomplete items harmless in query evaluation.
//
// The SEED prototype itself only shipped retrieval-by-name; this module is
// the natural extension the paper's RELATED WORK section points at.

#ifndef SEED_QUERY_ALGEBRA_H_
#define SEED_QUERY_ALGEBRA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "query/predicate.h"

namespace seed::query {

/// A relation: named columns of object ids, set semantics (duplicates are
/// removed by every operator).
struct QueryRelation {
  std::vector<std::string> attributes;
  std::vector<std::vector<ObjectId>> tuples;

  size_t arity() const { return attributes.size(); }
  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }

  /// Index of an attribute, or -1.
  int AttrIndex(std::string_view name) const;
};

class Algebra {
 public:
  explicit Algebra(const core::Database* db) : db_(db) {}

  /// Unary relation of all live objects of `cls` (specializations
  /// included unless disabled).
  QueryRelation ClassExtent(ClassId cls, std::string attribute,
                            bool include_specializations = true) const;

  /// Tuples whose `attribute` satisfies `p`.
  Result<QueryRelation> Select(const QueryRelation& in,
                               std::string_view attribute,
                               const Predicate& p) const;

  /// Keeps the listed attributes (deduplicates).
  Result<QueryRelation> Project(const QueryRelation& in,
                                const std::vector<std::string>& keep) const;

  /// All combinations; attribute sets must be disjoint.
  Result<QueryRelation> CartesianProduct(const QueryRelation& a,
                                         const QueryRelation& b) const;

  /// Joins `a` and `b` on relationships of `assoc` (family included):
  /// keeps (ta, tb) iff a relationship connects ta[attr_a] in role 0 with
  /// tb[attr_b] in role 1. Undefined items participate in no
  /// relationships, so they simply never join.
  Result<QueryRelation> RelationshipJoin(const QueryRelation& a,
                                         std::string_view attr_a,
                                         AssociationId assoc,
                                         const QueryRelation& b,
                                         std::string_view attr_b) const;

  /// Set union (same attribute lists required).
  Result<QueryRelation> Union(const QueryRelation& a,
                              const QueryRelation& b) const;

  /// Set difference a \ b (same attribute lists required).
  Result<QueryRelation> Difference(const QueryRelation& a,
                                   const QueryRelation& b) const;

  /// Set intersection (same attribute lists required).
  Result<QueryRelation> Intersect(const QueryRelation& a,
                                  const QueryRelation& b) const;

 private:
  static void Dedup(QueryRelation* rel);

  const core::Database* db_;
};

}  // namespace seed::query

#endif  // SEED_QUERY_ALGEBRA_H_
