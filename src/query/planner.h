// Planner: cost-based optimization of logical chains — the single IR all
// textual query forms lower into (query/logical.h) — plus the selection
// access-path machinery underneath it.
//
// For Select(ClassExtent(cls), p) the planner enumerates *all* sargable
// conjuncts of the predicate's shape tree — equality on the object's own
// value, integer range comparisons, an OR of equalities, or any of these
// behind OnSubObject(role, ...) — resolves each against the IndexManager,
// and costs every candidate access path with the statistics of
// query/stats.h: the full extent scan, a single index probe per sargable
// conjunct, and the multi-index intersection of two or more posting lists
// for AND-of-sargables. The cheapest plan wins (deterministic tie-breaks:
// equality, then range, then intersection, then scan). Estimated rows and
// the extent size travel in the Plan for EXPLAIN-style output.
//
// Relationship extents plan the same way: SelectRelationships filters the
// relationships of an association family by conjuncts over their attribute
// sub-objects (paper Fig. 3: `Write.NumberOfWrites > 3`), served by
// relationship-side indexes when they exist and by a RelationshipsOf-style
// extent scan otherwise.
//
// Join chains are optimized by Optimize(LogicalChain) -> PhysicalPlan: a
// Selinger-style dynamic program over the chain's connected subchains
// (DP table keyed by hop bitset) that produces a *plan tree*, not just a
// left-deep ordering. Two composition rules populate the table:
//
//   * a hop join — two adjacent segments [lo, m] and [m+1, hi] joined
//     through hop m's association via Algebra::RelationshipJoin, with
//     the physical strategy (hash either build side / index-nested-loop
//     either drive side) chosen by PlanJoin from the association
//     population and the tracked per-(association, role, class)
//     participation counts;
//   * a tuple join — two *overlapping* segments [lo, m] and [m, hi]
//     merged on their shared binder-m column via Algebra::TupleJoin, the
//     bushy (segment x segment) connector that needs no cartesian
//     product because the segments always share exactly one binder.
//
// The DP is polynomial in the chain length, which is what lifted the
// grammar's hop cap from 3 (exhaustive left-deep enumeration) to
// LogicalChain::kMaxHops. Ties keep the textual left-deep composition.
// LeftDeepOrders / JoinPipelineInOrder / JoinPipelineSplit execute
// explicit left-deep orderings and explicit bushy splits for the
// differential tests and benches; every shape computes the same relation.
//
// Every index plan runs a residual filter (full predicate re-eval + extent
// check) over its candidates, so the rewrite is an optimization only:
// results are identical to the scan path, including the paper's
// vague-value semantics — undefined values are absent from indexes and
// match nothing in scans.

#ifndef SEED_QUERY_PLANNER_H_
#define SEED_QUERY_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "index/attribute_index.h"
#include "obs/trace.h"
#include "query/algebra.h"
#include "query/logical.h"
#include "query/plan_cache.h"
#include "query/predicate.h"

namespace seed::query {

class Planner {
 public:
  /// The access path chosen for a selection over one extent.
  struct Plan {
    enum class Kind { kFullScan, kIndexEquals, kIndexRange, kIndexIntersect };

    /// One index access. Single-index plans have exactly one leg;
    /// intersection plans have two or more, cheapest first.
    struct Leg {
      const index::AttributeIndex* index = nullptr;
      bool is_range = false;
      /// Probe keys when !is_range (one per OR-of-equalities branch).
      std::vector<core::Value> keys;
      /// Bounds when is_range.
      core::Value lo, hi;
      bool lo_inclusive = true;
      bool hi_inclusive = true;
      /// Estimated postings this leg yields.
      double est_rows = 0.0;
      /// Which of the binder's extracted sargable conjuncts (in
      /// extraction order over *all* sargables, indexed or not) feeds
      /// this leg — the literal-independent handle the plan cache uses
      /// to re-bind live bounds/keys into a cached skeleton.
      std::size_t sarg_ordinal = 0;
    };

    Kind kind = Kind::kFullScan;
    std::vector<Leg> legs;
    /// Estimated candidate rows fed to the residual filter (= extent size
    /// for a full scan).
    double est_rows = 0.0;
    /// Modeled cost in row-visit units (see query/stats.h).
    double est_cost = 0.0;
    /// Live size of the queried extent at planning time.
    double extent_rows = 0.0;

    /// Rows the executed access path actually produced (post-residual);
    /// -1 until executed.
    long long actual_rows = -1;
    /// Wall-clock the selection took, when an ExecContext asked for node
    /// timing; -1 otherwise.
    long long elapsed_ns = -1;

    bool uses_index() const { return kind != Kind::kFullScan; }
    /// "scan" / "index-equals(...), 2 keys, est ~3 of 100 rows" — for
    /// tests, EXPLAIN output and logs.
    std::string ToString() const;
    /// ToString() plus actual rows and wall-clock — the EXPLAIN ANALYZE
    /// form. `mask_times` prints "<t>" instead of the duration so golden
    /// tests can pin structure and rows.
    std::string ToAnalyzeString(bool mask_times) const;
  };

  /// One conjunct of a relationship-extent selection (query/logical.h).
  using RelCondition = query::RelCondition;

  /// The physical strategy chosen for a relationship join (see
  /// Algebra::JoinOptions): which side the hash join builds from, or
  /// which side drives the index-nested-loop, plus the join direction.
  struct JoinPlan {
    enum class Strategy {
      kHashBuildLeft,
      kHashBuildRight,
      kIndexNestedLoopLeft,   // left input drives the per-tuple probes
      kIndexNestedLoopRight,
    };

    Strategy strategy = Strategy::kHashBuildRight;
    /// Role the left relation binds (0, or 1 for reverse-direction joins).
    int left_role = 0;
    /// Input sizes the plan was made for.
    double left_rows = 0.0;
    double right_rows = 0.0;
    /// Live population of the association family at planning time.
    double assoc_rows = 0.0;
    /// Estimated output rows and modeled cost (row-visit units).
    double est_rows = 0.0;
    double est_cost = 0.0;

    /// The Algebra execution options this plan denotes.
    Algebra::JoinOptions options() const;
    /// "join-hash(build=right), forward, est ~12 rows (assoc ~40)" — for
    /// tests, EXPLAIN output and logs.
    std::string ToString() const;
  };

  /// One hop of a join chain: binder i connects to binder i+1 through
  /// `assoc`, with binder i bound at role `left_role`. The binder classes
  /// feed the tracked degree statistics (invalid ids fall back to the
  /// association's role target classes).
  struct PipelineHop {
    AssociationId assoc;
    int left_role = 0;
    ClassId left_cls, right_cls;
  };

  /// The optimizer's output: one access-path Plan per binder plus the
  /// join plan tree the DP chose. For no-hop chains the tree is a single
  /// input leaf; for relationship chains selects[0] is the whole plan.
  struct PhysicalPlan {
    /// One node of the join plan tree, covering the contiguous binder
    /// segment [lo, hi].
    struct Node {
      enum class Kind {
        kInput,      // one binder's selection result
        kHopJoin,    // RelationshipJoin of [lo, m] and [m+1, hi] via hop m
        kTupleJoin,  // TupleJoin of [lo, m] and [m, hi] on binder m
      };

      Kind kind = Kind::kInput;
      int lo = 0, hi = 0;
      /// kInput: the binder index this leaf reads.
      int binder = -1;
      /// kHopJoin: the executed hop and its physical strategy (the lower
      /// segment is always the join's left input).
      int hop = -1;
      JoinPlan join;
      /// kTupleJoin: the shared binder the segments merge on.
      int shared_binder = -1;
      double est_rows = 0.0;
      double est_cost = 0.0;
      /// Rows the node actually produced; -1 until executed.
      long long actual_rows = -1;
      /// Inclusive wall-clock of executing this node (children included),
      /// when an ExecContext asked for node timing; -1 otherwise.
      long long elapsed_ns = -1;
      std::unique_ptr<Node> left, right;

      /// A join whose inputs are both joined segments (rather than at
      /// least one base binder input) — the bushy shape left-deep
      /// enumeration could not express. Every tuple join qualifies by
      /// construction.
      bool is_bushy() const {
        return kind == Kind::kTupleJoin ||
               (kind == Kind::kHopJoin && left && right &&
                left->kind != Kind::kInput && right->kind != Kind::kInput);
      }
      /// "(hop1: d * a | join-hash(...), actual 3)" — nested plan-tree
      /// rendering; `binders` names the chain's binder columns.
      std::string ToString(const std::vector<std::string>& binders) const;
      /// EXPLAIN ANALYZE rendering: ToString plus per-node rows in
      /// (children's actual rows) and inclusive wall-clock.
      std::string ToAnalyzeString(const std::vector<std::string>& binders,
                                  bool mask_times) const;
    };

    /// Access path per binder, in textual order.
    std::vector<Plan> selects;
    /// Binder names, in textual order.
    std::vector<std::string> binders;
    /// The join tree (kInput leaf for single-binder chains); null only
    /// for relationship-form plans, where selects[0] is everything.
    std::unique_ptr<Node> root;
    bool relationship_form = false;
    /// Final output estimate and total modeled cost (selects + joins).
    double est_rows = 0.0;
    double est_cost = 0.0;
    /// True when the access paths came from the plan cache (the join
    /// tree is always re-derived from actual binder sizes). Surfaced by
    /// ToAnalyzeString only — the EXPLAIN golden surface is unchanged.
    bool from_cache = false;
    /// How many times execution abandoned the running join tree and
    /// re-entered the DP because an intermediate diverged from its
    /// estimate (see Planner::Run). Zero for by-the-plan executions.
    int adaptive_replans = 0;

    /// True when any node in the tree is a bushy join.
    bool HasBushyJoin() const;
    /// The hops in execution (post-)order — the analogue of the old
    /// left-deep step list, for tests and coverage counters.
    std::vector<int> HopOrder() const;
    /// Total rows the executed tree actually produced across its nodes
    /// — the "rows visited" number the benches and the CI plan-quality
    /// gate compare across plans. Zero before execution.
    long long RowsVisited() const;
    /// Full EXPLAIN body: every binder's access path, then the plan
    /// tree — "d: scan, est ~2 rows; a: ...; (hop1: d * a | ...)".
    std::string ToString() const;
    /// Full EXPLAIN ANALYZE body: every binder's access path with actual
    /// rows and wall-clock, then the plan tree with per-node rows in/out
    /// and inclusive wall-clock. `mask_times` prints "<t>" for every
    /// duration (golden tests pin structure + rows, not the clock).
    std::string ToAnalyzeString(bool mask_times = false) const;
  };

  /// Result of running a logical chain, ascending in every shape: flat
  /// object ids for the single-binder object form, relationship ids for
  /// the relationship form, joined binder tuples (textual binder-column
  /// order) for chains with hops.
  struct ChainResult {
    std::vector<ObjectId> ids;
    std::vector<RelationshipId> relationships;
    QueryRelation tuples;
  };

  /// Snapshots exec::ExecPolicy::Default() at construction (one policy
  /// per query: parser-layer entry points build a Planner per statement).
  explicit Planner(const core::Database* db) : db_(db), algebra_(db) {}

  /// Replaces the snapshotted execution policy, forwarded to the
  /// embedded Algebra so operators and plan-tree scheduling agree.
  void set_exec_policy(const exec::ExecPolicy& policy) {
    policy_ = policy;
    algebra_.set_exec_policy(policy);
  }
  const exec::ExecPolicy& exec_policy() const { return policy_; }

  /// Whether Run() consults the process-global PlanCache (on by
  /// default). Tests and benches that need guaranteed-fresh planning
  /// for comparison turn it off per Planner instance.
  void set_plan_cache_enabled(bool enabled) { plan_cache_enabled_ = enabled; }
  bool plan_cache_enabled() const { return plan_cache_enabled_; }

  // --- The unified entry point -----------------------------------------------

  /// Optimizes a logical chain: plans every binder's access path, then
  /// runs the hop-bitset DP over the chain's connected subchains to pick
  /// the cheapest join tree (hop joins and bushy tuple joins), costing
  /// each candidate from the binder estimates, the association
  /// populations and the tracked participation statistics. Nothing is
  /// executed and no extent is scanned — the pre-execution view of the
  /// plan (a scan binder's estimate is its whole extent).
  Result<PhysicalPlan> Optimize(const LogicalChain& chain) const;

  /// Optimizes and executes `chain`; `plan_out` (optional) receives the
  /// executed plan with per-node actual rows. After materializing the
  /// binder selections the join tree is re-planned from their *actual*
  /// sizes (known for free at that point), so a selective residual a
  /// scan estimate could not see still gets the right join strategies.
  /// Results are identical to the brute-force reference for every chain
  /// shape and plan. `ctx` (optional) collects per-phase wall-clock and
  /// turns on per-node operator timing for EXPLAIN ANALYZE.
  Result<ChainResult> Run(const LogicalChain& chain,
                          PhysicalPlan* plan_out = nullptr,
                          obs::ExecContext* ctx = nullptr) const;

  // --- Selections ------------------------------------------------------------

  /// Chooses the access path for Select(ClassExtent(cls, _), _, p).
  Plan PlanSelect(ClassId cls, const Predicate& p,
                  bool include_specializations = true) const;

  /// Runs Select(ClassExtent(cls, attribute), attribute, p) through the
  /// chosen plan. Result is identical to the scan path.
  Result<QueryRelation> SelectFromClass(
      ClassId cls, std::string attribute, const Predicate& p,
      bool include_specializations = true) const;

  /// Same, as a plain ascending id list (what the textual query layer
  /// returns). Pass a precomputed `plan` (e.g. from an EXPLAIN display)
  /// to avoid planning twice.
  std::vector<ObjectId> SelectIds(ClassId cls, const Predicate& p,
                                  bool include_specializations = true,
                                  const Plan* plan = nullptr) const;

  /// Chooses the access path for filtering the relationships of `assoc`
  /// (family included unless disabled) by `conditions` (conjunctive).
  Plan PlanSelectRelationships(AssociationId assoc,
                               const std::vector<RelCondition>& conditions,
                               bool include_specializations = true) const;

  /// Relationships of the association extent satisfying every condition,
  /// ascending. Identical to iterating RelationshipsOfAssociation and
  /// evaluating the conditions per relationship.
  std::vector<RelationshipId> SelectRelationshipIds(
      AssociationId assoc, const std::vector<RelCondition>& conditions,
      bool include_specializations = true, const Plan* plan = nullptr) const;

  /// True iff the live relationship satisfies every condition (the
  /// relationship residual; exposed as the scan-path ground truth).
  bool EvalRelConditions(RelationshipId rel,
                         const std::vector<RelCondition>& conditions) const;

  // --- Single joins ----------------------------------------------------------

  /// Chooses the physical strategy for joining a `left_rows`-tuple
  /// relation (bound at role `left_role` of `assoc`) with a
  /// `right_rows`-tuple relation at the opposite role, using the
  /// association population, the tracked per-(association, role, class)
  /// participation counts and the input classes' extents. `left_cls` /
  /// `right_cls` name the classes the inputs were drawn from; invalid ids
  /// fall back to the association's role targets (for which the
  /// participation count degenerates to the uniform assoc/extent
  /// estimate). Deterministic tie-breaks: hash-build-right,
  /// hash-build-left, inl-left, inl-right. `left_role` is read as 1 or
  /// forward-otherwise; Join() rejects roles outside {0, 1} before
  /// planning.
  JoinPlan PlanJoin(AssociationId assoc, size_t left_rows, size_t right_rows,
                    int left_role = 0, ClassId left_cls = ClassId(),
                    ClassId right_cls = ClassId()) const;

  /// Plans and runs RelationshipJoin(a, attr_a, assoc, b, attr_b) with
  /// the chosen strategy; `plan_out` (optional) receives the plan for
  /// EXPLAIN-style display, `left_cls` / `right_cls` (optional) the input
  /// classes for the degree statistics, as in PlanJoin. Results are
  /// identical to every other strategy's.
  Result<QueryRelation> Join(const QueryRelation& a, std::string_view attr_a,
                             AssociationId assoc, const QueryRelation& b,
                             std::string_view attr_b, int left_role = 0,
                             JoinPlan* plan_out = nullptr,
                             ClassId left_cls = ClassId(),
                             ClassId right_cls = ClassId()) const;

  // --- Join pipelines --------------------------------------------------------

  /// Every left-deep ordering of an `num_hops`-hop chain: permutations
  /// whose every prefix is a contiguous hop range (anything else would
  /// need a cartesian product between disconnected segments). Textual
  /// order comes first; 2 orders for 2 hops, 4 for 3, 2^(n-1) for n.
  /// Kept as the explicit-shape generator for differential tests and
  /// benches; the optimizer itself searches the larger DP space.
  static std::vector<std::vector<int>> LeftDeepOrders(size_t num_hops);

  /// Runs the hop-bitset DP over the bare chain (no binder predicates):
  /// `input_rows` holds the hops.size()+1 binder input sizes. Reads only
  /// tracked counters; never scans an extent. On invalid shapes (no
  /// hops, mis-sized `input_rows`) the returned plan has no tree —
  /// JoinPipeline surfaces that as InvalidArgument; direct callers must
  /// check `root` before dereferencing.
  PhysicalPlan PlanJoinPipeline(const std::vector<PipelineHop>& hops,
                                const std::vector<size_t>& input_rows) const;

  /// Plans (via the DP) and runs the chain over the unary binder
  /// `inputs` (one per binder, attribute names distinct); returns the
  /// joined binder tuples in textual binder-column order, ascending.
  /// `plan_out` receives the executed plan with per-node actual rows. An
  /// empty intermediate short-circuits inside the physical operators.
  /// `ctx` (optional) turns on per-node operator timing.
  Result<QueryRelation> JoinPipeline(const std::vector<QueryRelation>& inputs,
                                     const std::vector<PipelineHop>& hops,
                                     PhysicalPlan* plan_out = nullptr,
                                     obs::ExecContext* ctx = nullptr) const;

  /// Same, but executes an explicit left-deep hop `order` (for tests and
  /// benches comparing orderings); the result equals every other
  /// shape's.
  Result<QueryRelation> JoinPipelineInOrder(
      const std::vector<QueryRelation>& inputs,
      const std::vector<PipelineHop>& hops, const std::vector<int>& order,
      PhysicalPlan* plan_out = nullptr) const;

  /// Same, but executes an explicit bushy split (for tests and benches):
  /// the left segment covers binders [0, m] and the right segment
  /// [m, n] merged on binder m's column when `tuple_join` (else
  /// [m+1, n] joined through hop m), each segment itself left-deep in
  /// textual order. Requires 0 < m < hops.size() for a tuple join and
  /// 0 <= m < hops.size() otherwise.
  Result<QueryRelation> JoinPipelineSplit(
      const std::vector<QueryRelation>& inputs,
      const std::vector<PipelineHop>& hops, int m, bool tuple_join,
      PhysicalPlan* plan_out = nullptr) const;

 private:
  struct Candidate;  // sargable conjunct bound to an index (planner.cc)
  struct DpEntry;    // best (rows, cost, decision) per hop bitset

  using Node = PhysicalPlan::Node;

  /// PlanJoin with fractional input sizes (intermediate estimates).
  JoinPlan PlanJoinEst(AssociationId assoc, double left_rows,
                       double right_rows, int left_role, ClassId left_cls,
                       ClassId right_cls) const;

  /// The DP core: cheapest join tree over binder segment [0, n] given
  /// the base input estimates. Returns null when `hops` is empty and
  /// input_rows has a single binder (the leaf is built by the caller) —
  /// otherwise always a tree covering every hop exactly once.
  /// `allow_tuple_joins` is cleared by adaptive mid-chain re-planning,
  /// where a "binder" can be an already-joined multi-column segment a
  /// single-column tuple merge cannot soundly collapse.
  std::unique_ptr<Node> OptimizeJoinTree(
      const std::vector<PipelineHop>& hops,
      const std::vector<double>& input_rows,
      bool allow_tuple_joins = true) const;

  /// A leaf node reading binder `i`.
  static std::unique_ptr<Node> MakeLeaf(int binder, double rows);

  /// The textual left-deep tree over binder segment [lo, hi].
  std::unique_ptr<Node> LeftDeepTree(const std::vector<PipelineHop>& hops,
                                     const std::vector<double>& input_rows,
                                     int lo, int hi) const;

  /// A hop-join node joining `left` (ending at binder `hop`) with
  /// `right` (starting at binder `hop` + 1) through hop `hop`.
  std::unique_ptr<Node> MakeHopJoin(const std::vector<PipelineHop>& hops,
                                    int hop, std::unique_ptr<Node> left,
                                    std::unique_ptr<Node> right) const;

  /// A tuple-join node merging `left` and `right` on shared binder `m`.
  std::unique_ptr<Node> MakeTupleJoin(int m, double shared_rows,
                                      std::unique_ptr<Node> left,
                                      std::unique_ptr<Node> right) const;

  /// Builds a left-deep tree for an explicit hop order (old pipeline
  /// semantics); InvalidArgument when the order is not left-deep.
  Result<std::unique_ptr<Node>> TreeForOrder(
      const std::vector<PipelineHop>& hops,
      const std::vector<double>& input_rows,
      const std::vector<int>& order) const;

  /// Shape checks shared by the pipeline entry points.
  static Status ValidatePipelineInputs(
      const std::vector<QueryRelation>& inputs,
      const std::vector<PipelineHop>& hops);

  /// Executes `node` over the materialized binder inputs, recording
  /// per-node actual rows (and inclusive wall-clock when `ctx` asks for
  /// node timing).
  Result<QueryRelation> ExecuteNode(Node* node,
                                    const std::vector<QueryRelation>& inputs,
                                    const std::vector<PipelineHop>& hops,
                                    obs::ExecContext* ctx) const;

  /// Executes an already-built tree and projects the result back to
  /// textual binder-column order.
  Result<QueryRelation> ExecuteTree(const std::vector<QueryRelation>& inputs,
                                    const std::vector<PipelineHop>& hops,
                                    PhysicalPlan plan,
                                    PhysicalPlan* plan_out,
                                    obs::ExecContext* ctx = nullptr) const;

  /// Executes an already-built hop-only tree *stepwise* (joins in the
  /// tree's post order), watching each intermediate: when an actual
  /// size diverges from its estimate past the adaptive threshold, the
  /// remaining segments re-enter the DP with exact sizes and execution
  /// continues under the new tree. Trees containing tuple joins fall
  /// back to ExecuteTree unchanged. Result and, absent any re-plan,
  /// the executed plan tree are identical to ExecuteTree's.
  Result<QueryRelation> ExecuteChainAdaptive(
      const std::vector<QueryRelation>& inputs,
      const std::vector<PipelineHop>& hops, PhysicalPlan plan,
      PhysicalPlan* plan_out, obs::ExecContext* ctx) const;

  // --- Plan cache (query/plan_cache.h) ---------------------------------------

  /// The chain's cache key: Database::instance_id() plus every binder's
  /// extent/predicate *shape* (literals parameterized out) and every
  /// hop's association/role.
  std::string BuildShapeKey(const LogicalChain& chain) const;

  /// The live statistics fingerprint sequence for `cached` against this
  /// database, in the canonical capture order (per binder: extent
  /// count, then each leg's index entry count; per hop: association
  /// extent count). Nullopt when a cached index spec no longer
  /// resolves.
  std::optional<std::vector<std::uint64_t>> LiveFingerprints(
      const LogicalChain& chain, const CachedPlan& cached) const;

  /// Re-binds one binder's live sargable literals into a cached access
  /// path skeleton, recomputing every estimate from live statistics
  /// (so a rebound plan prints exactly like a fresh one while the
  /// statistics are unchanged). Nullopt when the skeleton no longer
  /// matches the live chain or indexes.
  std::optional<Plan> RebindSelect(const LogicalSelect& binder,
                                   const CachedPlan::Select& cached) const;

  /// The cache hit path: lookup by `key`, validate fingerprints against
  /// the drift ratio, re-bind every select. Counts the hit/miss and
  /// invalidates stale entries. The returned plan has `from_cache` set
  /// and, for hop chains, no join tree — Run() always re-derives it
  /// from actual binder sizes.
  std::optional<PhysicalPlan> TryCachedPlan(const LogicalChain& chain,
                                            const std::string& key) const;

  /// The miss path's second half: strips `plan` to its skeleton,
  /// captures the statistics fingerprints and inserts under `key`.
  void InsertInCache(const LogicalChain& chain, const std::string& key,
                     const PhysicalPlan& plan) const;

  /// Lowers the chain's hops into PipelineHops (binder classes attached).
  static std::vector<PipelineHop> LowerHops(const LogicalChain& chain);

  /// Costs scan / single-leg / intersection over `candidates` and returns
  /// the cheapest plan for an extent of `extent_rows`.
  static Plan ChooseCheapest(std::vector<Candidate> candidates,
                             double extent_rows);

  std::vector<ObjectId> ExecuteIndexPlan(const Plan& plan, ClassId cls,
                                         const Predicate& p,
                                         bool include_specializations) const;
  std::vector<RelationshipId> ExecuteRelIndexPlan(
      const Plan& plan, AssociationId assoc,
      const std::vector<RelCondition>& conditions,
      bool include_specializations) const;

  /// True when `node`'s children should execute as concurrent plan-tree
  /// tasks: both are joined segments (leaf inputs are materialized and
  /// cost nothing to "execute") and both clear the policy's cost floor.
  bool ShouldForkChildren(const Node& node) const;

  const core::Database* db_;
  Algebra algebra_;
  exec::ExecPolicy policy_ = exec::ExecPolicy::Default();
  bool plan_cache_enabled_ = true;
};

}  // namespace seed::query

#endif  // SEED_QUERY_PLANNER_H_
