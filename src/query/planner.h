// Planner: cost-based rewriting of Select-over-extent queries into
// secondary-index access paths.
//
// For Select(ClassExtent(cls), p) the planner enumerates *all* sargable
// conjuncts of the predicate's shape tree — equality on the object's own
// value, integer range comparisons, an OR of equalities, or any of these
// behind OnSubObject(role, ...) — resolves each against the IndexManager,
// and costs every candidate access path with the statistics of
// query/stats.h: the full extent scan, a single index probe per sargable
// conjunct, and the multi-index intersection of two or more posting lists
// for AND-of-sargables. The cheapest plan wins (deterministic tie-breaks:
// equality, then range, then intersection, then scan). Estimated rows and
// the extent size travel in the Plan for EXPLAIN-style output.
//
// Relationship extents plan the same way: SelectRelationships filters the
// relationships of an association family by conjuncts over their attribute
// sub-objects (paper Fig. 3: `Write.NumberOfWrites > 3`), served by
// relationship-side indexes when they exist and by a RelationshipsOf-style
// extent scan otherwise.
//
// Relationship joins and join *pipelines* are planner-driven the same
// way: PlanJoin picks the physical strategy of one hop (hash join with
// either build side, or an index-nested-loop driven from either side)
// from the association population and the tracked per-(association, role,
// class) participation counts — the degree statistics ExtentCounters
// maintains incrementally — and PlanJoinPipeline enumerates every
// left-deep ordering of a 2-3 hop chain, costing each hop with the same
// model, so a selective hop written last in the query still executes
// first. JoinPipeline threads the intermediate binder tuples through the
// chosen ordering with an empty-intermediate short-circuit per hop.
//
// Every index plan runs a residual filter (full predicate re-eval + extent
// check) over its candidates, so the rewrite is an optimization only:
// results are identical to the scan path, including the paper's
// vague-value semantics — undefined values are absent from indexes and
// match nothing in scans.

#ifndef SEED_QUERY_PLANNER_H_
#define SEED_QUERY_PLANNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "index/attribute_index.h"
#include "query/algebra.h"
#include "query/predicate.h"

namespace seed::query {

class Planner {
 public:
  /// The access path chosen for a selection over one extent.
  struct Plan {
    enum class Kind { kFullScan, kIndexEquals, kIndexRange, kIndexIntersect };

    /// One index access. Single-index plans have exactly one leg;
    /// intersection plans have two or more, cheapest first.
    struct Leg {
      const index::AttributeIndex* index = nullptr;
      bool is_range = false;
      /// Probe keys when !is_range (one per OR-of-equalities branch).
      std::vector<core::Value> keys;
      /// Bounds when is_range.
      core::Value lo, hi;
      bool lo_inclusive = true;
      bool hi_inclusive = true;
      /// Estimated postings this leg yields.
      double est_rows = 0.0;
    };

    Kind kind = Kind::kFullScan;
    std::vector<Leg> legs;
    /// Estimated candidate rows fed to the residual filter (= extent size
    /// for a full scan).
    double est_rows = 0.0;
    /// Modeled cost in row-visit units (see query/stats.h).
    double est_cost = 0.0;
    /// Live size of the queried extent at planning time.
    double extent_rows = 0.0;

    bool uses_index() const { return kind != Kind::kFullScan; }
    /// "scan" / "index-equals(...), 2 keys, est ~3 of 100 rows" — for
    /// tests, EXPLAIN output and logs.
    std::string ToString() const;
  };

  /// One conjunct of a relationship-extent selection: the relationship
  /// matches when some attribute sub-object in `role` satisfies `inner`.
  struct RelCondition {
    std::string role;
    Predicate inner;
  };

  /// The physical strategy chosen for a relationship join (see
  /// Algebra::JoinOptions): which side the hash join builds from, or
  /// which side drives the index-nested-loop, plus the join direction.
  struct JoinPlan {
    enum class Strategy {
      kHashBuildLeft,
      kHashBuildRight,
      kIndexNestedLoopLeft,   // left input drives the per-tuple probes
      kIndexNestedLoopRight,
    };

    Strategy strategy = Strategy::kHashBuildRight;
    /// Role the left relation binds (0, or 1 for reverse-direction joins).
    int left_role = 0;
    /// Input sizes the plan was made for.
    double left_rows = 0.0;
    double right_rows = 0.0;
    /// Live population of the association family at planning time.
    double assoc_rows = 0.0;
    /// Estimated output rows and modeled cost (row-visit units).
    double est_rows = 0.0;
    double est_cost = 0.0;

    /// The Algebra execution options this plan denotes.
    Algebra::JoinOptions options() const;
    /// "join-hash(build=right), forward, est ~12 rows (assoc ~40)" — for
    /// tests, EXPLAIN output and logs.
    std::string ToString() const;
  };

  /// One hop of a join chain: binder i connects to binder i+1 through
  /// `assoc`, with binder i bound at role `left_role`. The binder classes
  /// feed the tracked degree statistics (invalid ids fall back to the
  /// association's role target classes).
  struct PipelineHop {
    AssociationId assoc;
    int left_role = 0;
    ClassId left_cls, right_cls;
  };

  /// The cost-chosen execution of a 2-3 hop join chain: a left-deep
  /// ordering of the hops with one physical JoinPlan per executed hop.
  struct PipelinePlan {
    struct Step {
      /// Index into the textual hop list.
      int hop = 0;
      /// Orientation, recorded at plan time so execution replays exactly
      /// what was costed: the first executed step joins the hop's two
      /// base binder inputs; each later step joins the running
      /// intermediate with base binder `hop` (when it extends the
      /// segment leftward) or `hop + 1` (rightward).
      bool first = false;
      bool extends_left = false;
      /// Physical plan, oriented the way the step executes (the left
      /// input is the running intermediate except on the first step).
      JoinPlan join;
      /// Rows the step actually produced; -1 until executed.
      long long actual_rows = -1;
    };

    std::vector<Step> steps;  // execution order
    double est_rows = 0.0;    // final output estimate
    double est_cost = 0.0;    // sum of the steps' modeled costs
    /// "pipeline(order: hop2 then hop1): hop2: join-...; hop1: ..." —
    /// for tests, EXPLAIN output and logs.
    std::string ToString() const;
  };

  explicit Planner(const core::Database* db) : db_(db), algebra_(db) {}

  /// Chooses the access path for Select(ClassExtent(cls, _), _, p).
  Plan PlanSelect(ClassId cls, const Predicate& p,
                  bool include_specializations = true) const;

  /// Runs Select(ClassExtent(cls, attribute), attribute, p) through the
  /// chosen plan. Result is identical to the scan path.
  Result<QueryRelation> SelectFromClass(
      ClassId cls, std::string attribute, const Predicate& p,
      bool include_specializations = true) const;

  /// Same, as a plain ascending id list (what the textual query layer
  /// returns). Pass a precomputed `plan` (e.g. from an EXPLAIN display)
  /// to avoid planning twice.
  std::vector<ObjectId> SelectIds(ClassId cls, const Predicate& p,
                                  bool include_specializations = true,
                                  const Plan* plan = nullptr) const;

  /// Chooses the access path for filtering the relationships of `assoc`
  /// (family included unless disabled) by `conditions` (conjunctive).
  Plan PlanSelectRelationships(AssociationId assoc,
                               const std::vector<RelCondition>& conditions,
                               bool include_specializations = true) const;

  /// Relationships of the association extent satisfying every condition,
  /// ascending. Identical to iterating RelationshipsOfAssociation and
  /// evaluating the conditions per relationship.
  std::vector<RelationshipId> SelectRelationshipIds(
      AssociationId assoc, const std::vector<RelCondition>& conditions,
      bool include_specializations = true, const Plan* plan = nullptr) const;

  /// True iff the live relationship satisfies every condition (the
  /// relationship residual; exposed as the scan-path ground truth).
  bool EvalRelConditions(RelationshipId rel,
                         const std::vector<RelCondition>& conditions) const;

  /// Chooses the physical strategy for joining a `left_rows`-tuple
  /// relation (bound at role `left_role` of `assoc`) with a
  /// `right_rows`-tuple relation at the opposite role, using the
  /// association population, the tracked per-(association, role, class)
  /// participation counts and the input classes' extents. `left_cls` /
  /// `right_cls` name the classes the inputs were drawn from; invalid ids
  /// fall back to the association's role targets (for which the
  /// participation count degenerates to the uniform assoc/extent
  /// estimate). Deterministic tie-breaks: hash-build-right,
  /// hash-build-left, inl-left, inl-right. `left_role` is read as 1 or
  /// forward-otherwise; Join() rejects roles outside {0, 1} before
  /// planning.
  JoinPlan PlanJoin(AssociationId assoc, size_t left_rows, size_t right_rows,
                    int left_role = 0, ClassId left_cls = ClassId(),
                    ClassId right_cls = ClassId()) const;

  /// Plans and runs RelationshipJoin(a, attr_a, assoc, b, attr_b) with
  /// the chosen strategy; `plan_out` (optional) receives the plan for
  /// EXPLAIN-style display, `left_cls` / `right_cls` (optional) the input
  /// classes for the degree statistics, as in PlanJoin. Results are
  /// identical to every other strategy's.
  Result<QueryRelation> Join(const QueryRelation& a, std::string_view attr_a,
                             AssociationId assoc, const QueryRelation& b,
                             std::string_view attr_b, int left_role = 0,
                             JoinPlan* plan_out = nullptr,
                             ClassId left_cls = ClassId(),
                             ClassId right_cls = ClassId()) const;

  /// Every left-deep ordering of an `num_hops`-hop chain: permutations
  /// whose every prefix is a contiguous hop range (anything else would
  /// need a cartesian product between disconnected segments). Textual
  /// order comes first; 2 orders for 2 hops, 4 for 3.
  static std::vector<std::vector<int>> LeftDeepOrders(size_t num_hops);

  /// Chooses the cheapest left-deep ordering for the chain: every
  /// ordering from LeftDeepOrders is simulated hop by hop — each hop
  /// planned by PlanJoin from the running intermediate estimate, the
  /// base input sizes and the degree statistics — and the cheapest total
  /// wins (ties keep the earliest enumerated, i.e. textual, order).
  /// `input_rows` holds the hops.size()+1 binder input sizes. Reads only
  /// tracked counters; never scans an extent. On invalid shapes (no
  /// hops, mis-sized `input_rows`) the returned plan has no steps —
  /// JoinPipeline surfaces that as InvalidArgument; direct callers must
  /// check `steps` before indexing into it.
  PipelinePlan PlanJoinPipeline(const std::vector<PipelineHop>& hops,
                                const std::vector<size_t>& input_rows) const;

  /// Plans and runs the chain over the unary binder `inputs` (one per
  /// binder, attribute names distinct); returns the joined binder tuples
  /// in textual binder-column order, ascending. `plan_out` receives the
  /// executed plan with per-step actual rows. An empty intermediate
  /// short-circuits every remaining hop.
  Result<QueryRelation> JoinPipeline(const std::vector<QueryRelation>& inputs,
                                     const std::vector<PipelineHop>& hops,
                                     PipelinePlan* plan_out = nullptr) const;

  /// Same, but executes an explicit hop `order` (for tests and benches
  /// comparing orderings); the result equals every other order's.
  Result<QueryRelation> JoinPipelineInOrder(
      const std::vector<QueryRelation>& inputs,
      const std::vector<PipelineHop>& hops, const std::vector<int>& order,
      PipelinePlan* plan_out = nullptr) const;

 private:
  struct Candidate;  // sargable conjunct bound to an index (planner.cc)

  /// PlanJoin with fractional input sizes (intermediate estimates).
  JoinPlan PlanJoinEst(AssociationId assoc, double left_rows,
                       double right_rows, int left_role, ClassId left_cls,
                       ClassId right_cls) const;

  /// Simulates (and costs) the chain under one explicit hop order.
  Result<PipelinePlan> PlanPipelineOrder(const std::vector<PipelineHop>& hops,
                                         const std::vector<double>& input_rows,
                                         const std::vector<int>& order) const;

  /// Shape checks shared by the pipeline entry points.
  static Status ValidatePipelineInputs(
      const std::vector<QueryRelation>& inputs,
      const std::vector<PipelineHop>& hops);

  /// Runs an already-planned pipeline (no re-planning), filling per-step
  /// actual rows and projecting back to textual binder-column order.
  Result<QueryRelation> ExecutePipeline(
      const std::vector<QueryRelation>& inputs,
      const std::vector<PipelineHop>& hops, PipelinePlan plan,
      PipelinePlan* plan_out) const;

  /// Costs scan / single-leg / intersection over `candidates` and returns
  /// the cheapest plan for an extent of `extent_rows`.
  static Plan ChooseCheapest(std::vector<Candidate> candidates,
                             double extent_rows);

  std::vector<ObjectId> ExecuteIndexPlan(const Plan& plan, ClassId cls,
                                         const Predicate& p,
                                         bool include_specializations) const;
  std::vector<RelationshipId> ExecuteRelIndexPlan(
      const Plan& plan, AssociationId assoc,
      const std::vector<RelCondition>& conditions,
      bool include_specializations) const;

  const core::Database* db_;
  Algebra algebra_;
};

}  // namespace seed::query

#endif  // SEED_QUERY_PLANNER_H_
