// Planner: rewrites Select-over-ClassExtent queries into secondary-index
// probes when the database has a matching attribute index.
//
// The planner inspects the predicate's shape tree for *sargable* conjuncts
// — equality on the object's own value, integer range comparisons, an OR
// of equalities, or any of these behind OnSubObject(role, ...) — and asks
// the IndexManager for an index covering the queried extent on that
// attribute. When one exists, the query runs as an index lookup/range scan
// plus a residual filter; otherwise it falls back to the algebra's full
// extent scan. The residual filter re-evaluates the complete original
// predicate (and extent membership) on every candidate, so the rewrite is
// an optimization only: results are identical to the scan path, including
// the paper's vague-value semantics — undefined values are absent from
// indexes and match nothing in scans.

#ifndef SEED_QUERY_PLANNER_H_
#define SEED_QUERY_PLANNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "index/attribute_index.h"
#include "query/algebra.h"
#include "query/predicate.h"

namespace seed::query {

class Planner {
 public:
  /// The access path chosen for a Select(ClassExtent(cls), p) pair.
  struct Plan {
    enum class Kind { kFullScan, kIndexEquals, kIndexRange };

    Kind kind = Kind::kFullScan;
    const index::AttributeIndex* index = nullptr;  // set for index plans
    /// Probe keys for kIndexEquals (one per OR-of-equalities branch).
    std::vector<core::Value> keys;
    /// Bounds for kIndexRange.
    core::Value lo, hi;
    bool lo_inclusive = true;
    bool hi_inclusive = true;

    bool uses_index() const { return kind != Kind::kFullScan; }
    /// "scan" / "index-equals(Action.Description), 2 keys" — for tests,
    /// EXPLAIN-style tooling and logs.
    std::string ToString() const;
  };

  explicit Planner(const core::Database* db) : db_(db), algebra_(db) {}

  /// Chooses the access path for Select(ClassExtent(cls, _), _, p).
  Plan PlanSelect(ClassId cls, const Predicate& p,
                  bool include_specializations = true) const;

  /// Runs Select(ClassExtent(cls, attribute), attribute, p) through the
  /// chosen plan. Result is identical to the scan path.
  Result<QueryRelation> SelectFromClass(
      ClassId cls, std::string attribute, const Predicate& p,
      bool include_specializations = true) const;

  /// Same, as a plain ascending id list (what the textual query layer
  /// returns). Pass a precomputed `plan` (e.g. from an EXPLAIN display)
  /// to avoid planning twice.
  std::vector<ObjectId> SelectIds(ClassId cls, const Predicate& p,
                                  bool include_specializations = true,
                                  const Plan* plan = nullptr) const;

 private:
  std::vector<ObjectId> ExecuteIndexPlan(const Plan& plan, ClassId cls,
                                         const Predicate& p,
                                         bool include_specializations) const;

  const core::Database* db_;
  Algebra algebra_;
};

}  // namespace seed::query

#endif  // SEED_QUERY_PLANNER_H_
