// Planner: cost-based rewriting of Select-over-extent queries into
// secondary-index access paths.
//
// For Select(ClassExtent(cls), p) the planner enumerates *all* sargable
// conjuncts of the predicate's shape tree — equality on the object's own
// value, integer range comparisons, an OR of equalities, or any of these
// behind OnSubObject(role, ...) — resolves each against the IndexManager,
// and costs every candidate access path with the statistics of
// query/stats.h: the full extent scan, a single index probe per sargable
// conjunct, and the multi-index intersection of two or more posting lists
// for AND-of-sargables. The cheapest plan wins (deterministic tie-breaks:
// equality, then range, then intersection, then scan). Estimated rows and
// the extent size travel in the Plan for EXPLAIN-style output.
//
// Relationship extents plan the same way: SelectRelationships filters the
// relationships of an association family by conjuncts over their attribute
// sub-objects (paper Fig. 3: `Write.NumberOfWrites > 3`), served by
// relationship-side indexes when they exist and by a RelationshipsOf-style
// extent scan otherwise.
//
// Every index plan runs a residual filter (full predicate re-eval + extent
// check) over its candidates, so the rewrite is an optimization only:
// results are identical to the scan path, including the paper's
// vague-value semantics — undefined values are absent from indexes and
// match nothing in scans.

#ifndef SEED_QUERY_PLANNER_H_
#define SEED_QUERY_PLANNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "index/attribute_index.h"
#include "query/algebra.h"
#include "query/predicate.h"

namespace seed::query {

class Planner {
 public:
  /// The access path chosen for a selection over one extent.
  struct Plan {
    enum class Kind { kFullScan, kIndexEquals, kIndexRange, kIndexIntersect };

    /// One index access. Single-index plans have exactly one leg;
    /// intersection plans have two or more, cheapest first.
    struct Leg {
      const index::AttributeIndex* index = nullptr;
      bool is_range = false;
      /// Probe keys when !is_range (one per OR-of-equalities branch).
      std::vector<core::Value> keys;
      /// Bounds when is_range.
      core::Value lo, hi;
      bool lo_inclusive = true;
      bool hi_inclusive = true;
      /// Estimated postings this leg yields.
      double est_rows = 0.0;
    };

    Kind kind = Kind::kFullScan;
    std::vector<Leg> legs;
    /// Estimated candidate rows fed to the residual filter (= extent size
    /// for a full scan).
    double est_rows = 0.0;
    /// Modeled cost in row-visit units (see query/stats.h).
    double est_cost = 0.0;
    /// Live size of the queried extent at planning time.
    double extent_rows = 0.0;

    bool uses_index() const { return kind != Kind::kFullScan; }
    /// "scan" / "index-equals(...), 2 keys, est ~3 of 100 rows" — for
    /// tests, EXPLAIN output and logs.
    std::string ToString() const;
  };

  /// One conjunct of a relationship-extent selection: the relationship
  /// matches when some attribute sub-object in `role` satisfies `inner`.
  struct RelCondition {
    std::string role;
    Predicate inner;
  };

  /// The physical strategy chosen for a relationship join (see
  /// Algebra::JoinOptions): which side the hash join builds from, or
  /// which side drives the index-nested-loop, plus the join direction.
  struct JoinPlan {
    enum class Strategy {
      kHashBuildLeft,
      kHashBuildRight,
      kIndexNestedLoopLeft,   // left input drives the per-tuple probes
      kIndexNestedLoopRight,
    };

    Strategy strategy = Strategy::kHashBuildRight;
    /// Role the left relation binds (0, or 1 for reverse-direction joins).
    int left_role = 0;
    /// Input sizes the plan was made for.
    double left_rows = 0.0;
    double right_rows = 0.0;
    /// Live population of the association family at planning time.
    double assoc_rows = 0.0;
    /// Estimated output rows and modeled cost (row-visit units).
    double est_rows = 0.0;
    double est_cost = 0.0;

    /// The Algebra execution options this plan denotes.
    Algebra::JoinOptions options() const;
    /// "join-hash(build=right), forward, est ~12 rows (assoc ~40)" — for
    /// tests, EXPLAIN output and logs.
    std::string ToString() const;
  };

  explicit Planner(const core::Database* db) : db_(db), algebra_(db) {}

  /// Chooses the access path for Select(ClassExtent(cls, _), _, p).
  Plan PlanSelect(ClassId cls, const Predicate& p,
                  bool include_specializations = true) const;

  /// Runs Select(ClassExtent(cls, attribute), attribute, p) through the
  /// chosen plan. Result is identical to the scan path.
  Result<QueryRelation> SelectFromClass(
      ClassId cls, std::string attribute, const Predicate& p,
      bool include_specializations = true) const;

  /// Same, as a plain ascending id list (what the textual query layer
  /// returns). Pass a precomputed `plan` (e.g. from an EXPLAIN display)
  /// to avoid planning twice.
  std::vector<ObjectId> SelectIds(ClassId cls, const Predicate& p,
                                  bool include_specializations = true,
                                  const Plan* plan = nullptr) const;

  /// Chooses the access path for filtering the relationships of `assoc`
  /// (family included unless disabled) by `conditions` (conjunctive).
  Plan PlanSelectRelationships(AssociationId assoc,
                               const std::vector<RelCondition>& conditions,
                               bool include_specializations = true) const;

  /// Relationships of the association extent satisfying every condition,
  /// ascending. Identical to iterating RelationshipsOfAssociation and
  /// evaluating the conditions per relationship.
  std::vector<RelationshipId> SelectRelationshipIds(
      AssociationId assoc, const std::vector<RelCondition>& conditions,
      bool include_specializations = true, const Plan* plan = nullptr) const;

  /// True iff the live relationship satisfies every condition (the
  /// relationship residual; exposed as the scan-path ground truth).
  bool EvalRelConditions(RelationshipId rel,
                         const std::vector<RelCondition>& conditions) const;

  /// Chooses the physical strategy for joining a `left_rows`-tuple
  /// relation (bound at role `left_role` of `assoc`) with a
  /// `right_rows`-tuple relation at the opposite role, using the
  /// association population and the role classes' extents. Deterministic
  /// tie-breaks: hash-build-right, hash-build-left, inl-left, inl-right.
  /// `left_role` is read as 1 or forward-otherwise; Join() rejects roles
  /// outside {0, 1} before planning.
  JoinPlan PlanJoin(AssociationId assoc, size_t left_rows, size_t right_rows,
                    int left_role = 0) const;

  /// Plans and runs RelationshipJoin(a, attr_a, assoc, b, attr_b) with
  /// the chosen strategy; `plan_out` (optional) receives the plan for
  /// EXPLAIN-style display. Results are identical to every other
  /// strategy's.
  Result<QueryRelation> Join(const QueryRelation& a, std::string_view attr_a,
                             AssociationId assoc, const QueryRelation& b,
                             std::string_view attr_b, int left_role = 0,
                             JoinPlan* plan_out = nullptr) const;

 private:
  struct Candidate;  // sargable conjunct bound to an index (planner.cc)

  /// Costs scan / single-leg / intersection over `candidates` and returns
  /// the cheapest plan for an extent of `extent_rows`.
  static Plan ChooseCheapest(std::vector<Candidate> candidates,
                             double extent_rows);

  std::vector<ObjectId> ExecuteIndexPlan(const Plan& plan, ClassId cls,
                                         const Predicate& p,
                                         bool include_specializations) const;
  std::vector<RelationshipId> ExecuteRelIndexPlan(
      const Plan& plan, AssociationId assoc,
      const std::vector<RelCondition>& conditions,
      bool include_specializations) const;

  const core::Database* db_;
  Algebra algebra_;
};

}  // namespace seed::query

#endif  // SEED_QUERY_PLANNER_H_
