// The logical query algebra: one intermediate representation that every
// textual query form lowers into, and the single input of the planner's
// Optimize() entry point.
//
// A LogicalChain is a path of binder-named selections connected by join
// hops:
//
//   binders: [ b0, b1, ..., bn ]   one LogicalSelect per binder
//   hops:    [ h0, ..., hn-1 ]     hop i connects binder i to binder i+1
//
// The degenerate shapes cover the whole query surface:
//
//   * a plain object query      — one kObjects binder, no hops;
//   * a relationship query      — one kRelationships binder, no hops;
//   * a single join             — two binders, one hop;
//   * a join chain              — up to kMaxHops hops.
//
// Before the IR existed the textual layer had one entry point per shape
// (RunQuery / RunRelationshipQuery / RunJoinQuery / RunJoinChainQuery)
// and the planner one planning routine per shape, so every optimizer
// improvement had to be implemented four times. All four entry points
// now lower into a LogicalChain and execute through
// Planner::Optimize(chain) — the one place join ordering, bushy plans
// and access-path selection live.

#ifndef SEED_QUERY_LOGICAL_H_
#define SEED_QUERY_LOGICAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "query/predicate.h"

namespace seed::query {

/// One conjunct of a relationship-extent selection: the relationship
/// matches when some attribute sub-object in `role` satisfies `inner`.
struct RelCondition {
  std::string role;
  Predicate inner;
};

/// One binder of a logical chain: a named selection over an object-class
/// extent or over a relationship (association) extent.
struct LogicalSelect {
  enum class Extent { kObjects, kRelationships };

  Extent extent = Extent::kObjects;
  /// The queried class (kObjects) or association (kRelationships).
  ClassId cls;
  AssociationId assoc;
  /// The binder name: the output column this selection contributes.
  std::string binder;
  /// Family extent unless false ('exact' in the textual layer).
  bool include_specializations = true;
  /// The selection predicate (kObjects; kTrue selects the extent).
  Predicate pred = Predicate::True();
  /// Conjunctive attribute conditions (kRelationships).
  std::vector<RelCondition> rel_conditions;

  static LogicalSelect Objects(ClassId cls, std::string binder,
                               Predicate pred = Predicate::True(),
                               bool include_specializations = true);
  static LogicalSelect Relationships(
      AssociationId assoc, std::string binder,
      std::vector<RelCondition> conditions = {},
      bool include_specializations = true);
};

/// One hop of a chain: binder i connects to binder i+1 through `assoc`,
/// with binder i bound at role `left_role` (1 expresses reverse joins).
struct LogicalJoinHop {
  AssociationId assoc;
  int left_role = 0;
};

/// The unified logical plan every textual query form lowers into.
struct LogicalChain {
  /// Hop ceiling of the textual grammar and the DP optimizer's bitset
  /// table. Raised from the PR-4 cap of 3 (exhaustive left-deep
  /// enumeration) — the DP is polynomial in the chain length, so the
  /// limit now only bounds parser output, not the plan search.
  static constexpr size_t kMaxHops = 6;

  std::vector<LogicalSelect> binders;  // hops.size() + 1 entries
  std::vector<LogicalJoinHop> hops;

  /// True for the relationship-extent shape (one kRelationships binder).
  bool relationship_form() const {
    return binders.size() == 1 &&
           binders[0].extent == LogicalSelect::Extent::kRelationships;
  }

  /// Shape checks shared by every consumer: binder/hop counts line up,
  /// binder names are non-empty and pairwise distinct, hop roles are 0
  /// or 1, relationship binders only appear in the no-hop form, and the
  /// chain stays within kMaxHops.
  Status Validate() const;
};

}  // namespace seed::query

#endif  // SEED_QUERY_LOGICAL_H_
