// Planner statistics and cost model.
//
// The planner costs every candidate access path for a selection and picks
// the cheapest. Its inputs are maintained incrementally, never scanned:
//
//  * extent sizes come from core::ExtentCounters (per-class/association
//    live counts updated by the same Index/Unindex hooks that keep the
//    database's retrieval maps current);
//  * per-index cardinality and distinct-key counts fall out of the
//    AttributeIndex's idempotent Set() maintenance (num_entries,
//    num_distinct_keys), so equality estimates are exact posting counts
//    and range estimates probe the ordered map with a bounded walk.
//
// Costs are in abstract row-visit units. The constants encode only the
// *relative* expense of the three kinds of work a plan performs:
//
//    kProbeCost     one index descend/hash probe           (cheap, fixed)
//    kPostingCost   producing one candidate id from postings
//    kResidualCost  fetching an item and re-evaluating the full
//                   predicate on it (what scans pay per extent row and
//                   index plans pay per candidate)
//
//    scan:        extent * kResidualCost
//    single leg:  probes * kProbeCost + rows * (kPostingCost + kResidualCost)
//    intersect:   sum over legs of probes * kProbeCost + rows * kPostingCost
//                 + intersected_rows * kResidualCost
//
// Intersection output is estimated under predicate independence:
// |A ∩ B| ≈ extent * (rows_A / extent) * (rows_B / extent). The model
// therefore chooses intersection exactly when every participating leg is
// selective enough that reading its postings costs less than the residual
// evaluations it saves — the classic break-even.
//
// Ties are broken deterministically: at equal cost an equality probe wins
// over a range scan, which wins over an intersection, which wins over the
// full scan. With empty statistics (fresh database, zero-sized extent)
// the scan costs 0 while any probe still pays kProbeCost, so the planner
// deterministically falls back to the (trivially free) scan — pinned by
// PlannerCostTest.EmptyStatsFallBackToScanDeterministically.

#ifndef SEED_QUERY_STATS_H_
#define SEED_QUERY_STATS_H_

#include <cstddef>

#include "index/attribute_index.h"

namespace seed::query {

struct CostModel {
  static constexpr double kProbeCost = 2.0;
  static constexpr double kPostingCost = 0.25;
  static constexpr double kResidualCost = 1.0;

  static double ScanCost(double extent_rows) {
    return extent_rows * kResidualCost;
  }

  /// One index access feeding the residual filter directly.
  static double SingleIndexCost(size_t probes, double est_rows) {
    return static_cast<double>(probes) * kProbeCost +
           est_rows * (kPostingCost + kResidualCost);
  }

  /// Reading one leg of an intersection (no residual yet).
  static double IntersectLegCost(size_t probes, double est_rows) {
    return static_cast<double>(probes) * kProbeCost +
           est_rows * kPostingCost;
  }

  /// The residual filter over the intersected candidate set.
  static double ResidualCost(double est_rows) {
    return est_rows * kResidualCost;
  }

  /// Independence-assumption estimate of an intersection's output size.
  static double IntersectRows(double rows_a, double rows_b,
                              double extent_rows) {
    if (extent_rows <= 0.0) return 0.0;
    return rows_a * (rows_b / extent_rows);
  }

  // --- Relationship joins ----------------------------------------------------
  //
  // Two physical strategies, costed from the association population
  // (ExtentCounters) and the input relation sizes:
  //
  //    hash:  assoc * (kPostingCost + kResidualCost)   materialize adjacency
  //           + build * kHashBuildCost                 hash-index one side
  //           + probe * kHashTupleCost                 stream the other
  //           + out * kPostingCost                     emit matches
  //    inl:   driver * kProbeCost                      RelationshipsOf probes
  //           + driver * degree * kResidualCost        fetch incident rels
  //           + build * kHashBuildCost                 hash the other side
  //           + out * kPostingCost
  //
  // `degree` is participation / extent of the driving side's class
  // family, where participation is the tracked per-(association, role,
  // class) count ExtentCounters maintains — exact, never scanned. For
  // inputs drawn from a role's target class this degenerates to the
  // uniform assoc / role_extent estimate; for a sparse specialization it
  // is far smaller, which is what lets the planner order a skewed join
  // chain correctly. The index-nested-loop wins exactly when the driving
  // side is small relative to its participation — a selective Select
  // feeding a join against a huge extent — and the hash join wins when
  // both inputs are of the association's own scale.

  /// Probing the tuple hash with one streamed tuple.
  static constexpr double kHashTupleCost = 0.25;
  /// Inserting one tuple into the build-side hash — dearer than a probe,
  /// which is what makes the smaller input the preferred build side.
  static constexpr double kHashBuildCost = 0.5;

  /// Per-object degree estimate: edges incident to one driving object.
  /// `participation_rows` is the number of edge ends the driving class
  /// family fills (the tracked participation count; callers without
  /// class statistics pass the association population, recovering the
  /// uniform estimate).
  static double JoinDegree(double participation_rows,
                           double role_extent_rows) {
    if (role_extent_rows <= 0.0) return participation_rows;
    return participation_rows / role_extent_rows;
  }

  /// Estimate of the join's output size: each matchable edge survives
  /// iff both of its ends landed in the respective input. `assoc_rows`
  /// is the matchable-edge count — min of the two sides' participation
  /// counts when class statistics exist, the association population
  /// otherwise. The coverage fractions are clamped — an input broader
  /// than the class extent (e.g. a generalization's extent) cannot make
  /// an edge match more than once.
  static double JoinRows(double assoc_rows, double left_rows,
                         double left_extent_rows, double right_rows,
                         double right_extent_rows);

  static double HashJoinCost(double assoc_rows, double build_rows,
                             double probe_rows, double out_rows);

  static double IndexNestedLoopJoinCost(double driver_rows, double degree,
                                        double build_rows, double out_rows);

  // --- Bushy tuple joins -----------------------------------------------------
  //
  // Algebra::TupleJoin merges two already-joined segments of a chain on
  // their shared binder column — a plain hash join over tuple sets, no
  // relationship traversal (every hop was already executed inside one of
  // the segments). It is the connector that admits bushy (segment x
  // segment) plans without ever forming a cartesian product.

  /// Output estimate for merging two segments that share a binder drawn
  /// from a `shared_extent_rows`-row input: each (left, right) pair
  /// survives iff both picked the same shared value — 1/extent under
  /// uniformity, capped at the cartesian bound.
  static double TupleJoinRows(double left_rows, double right_rows,
                              double shared_extent_rows);

  /// Hash the build side by the shared column, stream the probe side,
  /// emit the merged tuples.
  static double TupleJoinCost(double build_rows, double probe_rows,
                              double out_rows);
};

/// Exact number of postings matching any of `keys` (hash probes).
double EstimateEqualityRows(const index::AttributeIndex& index,
                            const std::vector<core::Value>& keys);

/// Bounded-walk estimate of postings inside the range (see
/// AttributeIndex::EstimateRange for the extrapolation rule).
double EstimateRangeRows(const index::AttributeIndex& index,
                         const core::Value& lo, bool lo_inclusive,
                         const core::Value& hi, bool hi_inclusive);

}  // namespace seed::query

#endif  // SEED_QUERY_STATS_H_
