#include "query/parser.h"

#include <cctype>

#include "common/macros.h"
#include "common/strings.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "schema/types.h"

namespace seed::query {

namespace {

struct Token {
  std::string text;
  bool quoted = false;
};

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    if (text[i] == '"') {
      size_t end = text.find('"', i + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tokens.push_back(
          Token{std::string(text.substr(i + 1, end - i - 1)), true});
      i = end + 1;
      continue;
    }
    size_t end = i;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end])) &&
           text[end] != '"') {
      ++end;
    }
    tokens.push_back(Token{std::string(text.substr(i, end - i)), false});
    i = end;
  }
  return tokens;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t start = (s[0] == '-') ? 1 : 0;
  if (start == s.size()) return false;
  for (size_t i = start; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// Builds an equality predicate for a literal token: quoted strings match
/// string values only; bare tokens try every plausible typed reading.
Predicate LiteralEquals(const Token& token) {
  if (token.quoted) {
    return Predicate::ValueEquals(core::Value::String(token.text));
  }
  Predicate p = Predicate::ValueEquals(core::Value::String(token.text))
                    .Or(Predicate::ValueEquals(core::Value::Enum(token.text)));
  if (LooksLikeInt(token.text)) {
    p = p.Or(Predicate::ValueEquals(
        core::Value::Int(std::stoll(token.text))));
  }
  if (auto date = schema::Date::Parse(token.text); date.ok()) {
    p = p.Or(Predicate::ValueEquals(core::Value::OfDate(*date)));
  }
  if (token.text == "true") {
    p = p.Or(Predicate::ValueEquals(core::Value::Bool(true)));
  }
  if (token.text == "false") {
    p = p.Or(Predicate::ValueEquals(core::Value::Bool(false)));
  }
  return p;
}

class Parser {
 public:
  Parser(const core::Database& db, std::vector<Token> tokens,
         std::string* plan_out)
      : db_(db), tokens_(std::move(tokens)), plan_out_(plan_out) {}

  Result<std::vector<ObjectId>> Run() {
    SEED_RETURN_IF_ERROR(Expect("find"));
    SEED_ASSIGN_OR_RETURN(Token cls_token, Next("class name"));
    auto cls = db_.schema()->FindIndependentClass(cls_token.text);
    if (!cls.ok()) return cls.status();

    bool exact = false;
    if (PeekIs("exact")) {
      ++pos_;
      exact = true;
    }

    Predicate pred = Predicate::True();
    if (pos_ < tokens_.size()) {
      SEED_RETURN_IF_ERROR(Expect("where"));
      SEED_ASSIGN_OR_RETURN(pred, ParseCondition());
      while (PeekIs("and")) {
        ++pos_;
        SEED_ASSIGN_OR_RETURN(Predicate next, ParseCondition());
        pred = pred.And(next);
      }
    }
    if (pos_ != tokens_.size()) {
      return Status::InvalidArgument("trailing input after query: '" +
                                     tokens_[pos_].text + "'");
    }

    // The planner rewrites this into an attribute-index probe when one
    // matches; otherwise it runs the same extent scan as before.
    Planner planner(&db_);
    Planner::Plan plan = planner.PlanSelect(*cls, pred, !exact);
    if (plan_out_ != nullptr) *plan_out_ = plan.ToString();
    return planner.SelectIds(*cls, pred, !exact, &plan);
  }

 private:
  bool PeekIs(std::string_view word) const {
    return pos_ < tokens_.size() && !tokens_[pos_].quoted &&
           tokens_[pos_].text == word;
  }

  Status Expect(std::string_view word) {
    if (!PeekIs(word)) {
      return Status::InvalidArgument(
          "expected '" + std::string(word) + "'" +
          (pos_ < tokens_.size() ? ", got '" + tokens_[pos_].text + "'"
                                 : " at end of query"));
    }
    ++pos_;
    return Status::OK();
  }

  Result<Token> Next(std::string_view what) {
    if (pos_ >= tokens_.size()) {
      return Status::InvalidArgument("expected " + std::string(what) +
                                     " at end of query");
    }
    return tokens_[pos_++];
  }

  Result<Predicate> ParseCondition() {
    SEED_ASSIGN_OR_RETURN(Token subject, Next("condition subject"));
    if (subject.quoted) {
      return Status::InvalidArgument("condition must start with a name");
    }
    if (subject.text == "has") {
      SEED_ASSIGN_OR_RETURN(Token role, Next("role name"));
      return Predicate::OnSubObject(role.text, Predicate::True());
    }
    SEED_ASSIGN_OR_RETURN(Token op, Next("'is' or 'contains'"));
    if (op.text != "is" && op.text != "contains") {
      return Status::InvalidArgument("expected 'is' or 'contains', got '" +
                                     op.text + "'");
    }
    SEED_ASSIGN_OR_RETURN(Token operand, Next("operand"));

    if (subject.text == "name") {
      return op.text == "is" ? Predicate::NameIs(operand.text)
                             : Predicate::NameContains(operand.text);
    }
    if (subject.text == "value") {
      return op.text == "is"
                 ? LiteralEquals(operand)
                 : Predicate::ValueContains(operand.text);
    }
    // Otherwise the subject is a sub-object role.
    Predicate inner = op.text == "is"
                          ? LiteralEquals(operand)
                          : Predicate::ValueContains(operand.text);
    return Predicate::OnSubObject(subject.text, inner);
  }

  const core::Database& db_;
  std::vector<Token> tokens_;
  std::string* plan_out_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<ObjectId>> RunQuery(const core::Database& db,
                                       std::string_view text,
                                       std::string* plan_out) {
  SEED_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  if (tokens.empty()) return Status::InvalidArgument("empty query");
  return Parser(db, std::move(tokens), plan_out).Run();
}

}  // namespace seed::query
