#include "query/parser.h"

#include <cctype>
#include <charconv>

#include "common/macros.h"
#include "common/strings.h"
#include "query/logical.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "schema/types.h"

namespace seed::query {

namespace {

struct Token {
  std::string text;
  bool quoted = false;
};

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    if (text[i] == '"') {
      size_t end = text.find('"', i + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tokens.push_back(
          Token{std::string(text.substr(i + 1, end - i - 1)), true});
      i = end + 1;
      continue;
    }
    size_t end = i;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end])) &&
           text[end] != '"') {
      ++end;
    }
    tokens.push_back(Token{std::string(text.substr(i, end - i)), false});
    i = end;
  }
  return tokens;
}

/// Parses `s` as an int64, rejecting non-digits and out-of-range
/// magnitudes (std::stoll would throw on the latter).
Result<std::int64_t> ParseInt(const std::string& s) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("'" + s + "' is not a valid integer");
  }
  return value;
}

/// Builds an equality predicate for a literal token: quoted strings match
/// string values only; bare tokens try every plausible typed reading.
Predicate LiteralEquals(const Token& token) {
  if (token.quoted) {
    return Predicate::ValueEquals(core::Value::String(token.text));
  }
  Predicate p = Predicate::ValueEquals(core::Value::String(token.text))
                    .Or(Predicate::ValueEquals(core::Value::Enum(token.text)));
  if (auto as_int = ParseInt(token.text); as_int.ok()) {
    p = p.Or(Predicate::ValueEquals(core::Value::Int(*as_int)));
  }
  if (auto date = schema::Date::Parse(token.text); date.ok()) {
    p = p.Or(Predicate::ValueEquals(core::Value::OfDate(*date)));
  }
  if (token.text == "true") {
    p = p.Or(Predicate::ValueEquals(core::Value::Bool(true)));
  }
  if (token.text == "false") {
    p = p.Or(Predicate::ValueEquals(core::Value::Bool(false)));
  }
  return p;
}

/// Appends the post-execution actual row count to an EXPLAIN string.
void ReportPlan(std::string* plan_out, const Planner::PhysicalPlan& plan,
                size_t actual_rows) {
  if (plan_out == nullptr) return;
  *plan_out = plan.ToString() + "; actual " + std::to_string(actual_rows);
}

class Parser {
 public:
  Parser(const core::Database& db, std::vector<Token> tokens,
         std::string* plan_out, QueryTrace* trace)
      : db_(db),
        tokens_(std::move(tokens)),
        plan_out_(plan_out),
        trace_(trace),
        ctx_(trace != nullptr ? &trace->ctx : nullptr) {}

  Result<std::vector<ObjectId>> RunObjects() {
    const std::uint64_t parse_start = obs::NowNanos();
    SEED_RETURN_IF_ERROR(Expect("find"));
    if (PeekIs("rel")) {
      return Status::InvalidArgument(
          "'find rel' queries return relationships; run them through "
          "RunRelationshipQuery");
    }
    if (LooksLikeJoin()) {
      return Status::InvalidArgument(
          "join queries return object pairs; run them through "
          "RunJoinQuery");
    }
    SEED_ASSIGN_OR_RETURN(Token cls_token, Next("class name"));
    auto cls = db_.schema()->FindIndependentClass(cls_token.text);
    if (!cls.ok()) return cls.status();

    bool exact = false;
    if (PeekIs("exact")) {
      ++pos_;
      exact = true;
    }

    Predicate pred = Predicate::True();
    if (pos_ < tokens_.size()) {
      SEED_RETURN_IF_ERROR(Expect("where"));
      SEED_ASSIGN_OR_RETURN(pred, ParseCondition());
      while (PeekIs("and")) {
        ++pos_;
        SEED_ASSIGN_OR_RETURN(Predicate next, ParseCondition());
        pred = pred.And(next);
      }
    }
    if (pos_ != tokens_.size()) {
      return Status::InvalidArgument("trailing input after query: '" +
                                     tokens_[pos_].text + "'");
    }
    obs::RecordPhase(ctx_, obs::QueryPhase::kParse,
                     obs::NowNanos() - parse_start);

    // Lower into the logical IR and execute through the unified planner
    // path; the cost-based optimizer rewrites the selection into an
    // attribute-index probe (or a multi-index intersection) when
    // estimated cheaper, otherwise it runs the same extent scan.
    const std::uint64_t lower_start = obs::NowNanos();
    LogicalChain chain;
    chain.binders.push_back(
        LogicalSelect::Objects(*cls, "x", std::move(pred), !exact));
    obs::RecordPhase(ctx_, obs::QueryPhase::kLower,
                     obs::NowNanos() - lower_start);
    Planner planner(&db_);
    Planner::PhysicalPlan plan;
    SEED_ASSIGN_OR_RETURN(Planner::ChainResult result,
                          planner.Run(chain, &plan, ctx_));
    ReportPlan(plan_out_, plan, result.ids.size());
    if (trace_ != nullptr) trace_->plan = std::move(plan);
    return std::move(result.ids);
  }

  Result<std::vector<RelationshipId>> RunRelationships() {
    const std::uint64_t parse_start = obs::NowNanos();
    SEED_RETURN_IF_ERROR(Expect("find"));
    SEED_RETURN_IF_ERROR(Expect("rel"));
    SEED_ASSIGN_OR_RETURN(Token assoc_token, Next("association name"));
    auto assoc = db_.schema()->FindAssociation(assoc_token.text);
    if (!assoc.ok()) return assoc.status();

    bool exact = false;
    if (PeekIs("exact")) {
      ++pos_;
      exact = true;
    }

    std::vector<Planner::RelCondition> conditions;
    if (pos_ < tokens_.size()) {
      SEED_RETURN_IF_ERROR(Expect("where"));
      SEED_ASSIGN_OR_RETURN(Planner::RelCondition cond, ParseRelCondition());
      conditions.push_back(std::move(cond));
      while (PeekIs("and")) {
        ++pos_;
        SEED_ASSIGN_OR_RETURN(Planner::RelCondition next,
                              ParseRelCondition());
        conditions.push_back(std::move(next));
      }
    }
    if (pos_ != tokens_.size()) {
      return Status::InvalidArgument("trailing input after query: '" +
                                     tokens_[pos_].text + "'");
    }
    obs::RecordPhase(ctx_, obs::QueryPhase::kParse,
                     obs::NowNanos() - parse_start);

    // The relationship-extent shape of the logical IR: one binder over
    // the association, no hops.
    const std::uint64_t lower_start = obs::NowNanos();
    LogicalChain chain;
    chain.binders.push_back(LogicalSelect::Relationships(
        *assoc, "r", std::move(conditions), !exact));
    obs::RecordPhase(ctx_, obs::QueryPhase::kLower,
                     obs::NowNanos() - lower_start);
    Planner planner(&db_);
    Planner::PhysicalPlan plan;
    SEED_ASSIGN_OR_RETURN(Planner::ChainResult result,
                          planner.Run(chain, &plan, ctx_));
    ReportPlan(plan_out_, plan, result.relationships.size());
    if (trace_ != nullptr) trace_->plan = std::move(plan);
    return std::move(result.relationships);
  }

  /// `pairs_only` rejects multi-hop chains right after parsing, before
  /// any selection or join executes (the pairs entry point's shape).
  Result<JoinChainResult> RunJoinChain(bool pairs_only = false) {
    const std::uint64_t parse_start = obs::NowNanos();
    SEED_RETURN_IF_ERROR(Expect("find"));
    SEED_ASSIGN_OR_RETURN(JoinSide head, ParseJoinSideHead());
    std::vector<JoinSide> sides;
    sides.push_back(std::move(head));
    struct Hop {
      bool reverse = false;
      AssociationId assoc;
    };
    std::vector<Hop> hops;
    while (PeekIs("join")) {
      ++pos_;
      if (hops.size() == LogicalChain::kMaxHops) {
        return Status::InvalidArgument(
            "join chains support at most " +
            std::to_string(LogicalChain::kMaxHops) + " hops");
      }
      Hop hop;
      if (PeekIs("reverse")) {
        ++pos_;
        hop.reverse = true;
      }
      SEED_RETURN_IF_ERROR(Expect("via"));
      SEED_ASSIGN_OR_RETURN(Token assoc_token, Next("association name"));
      auto assoc = db_.schema()->FindAssociation(assoc_token.text);
      if (!assoc.ok()) return assoc.status();
      hop.assoc = *assoc;
      SEED_RETURN_IF_ERROR(Expect("to"));
      // Duplicate binder names are caught by LogicalChain::Validate when
      // the lowered chain reaches the planner.
      SEED_ASSIGN_OR_RETURN(JoinSide side, ParseJoinSideHead());
      hops.push_back(hop);
      sides.push_back(std::move(side));
    }
    if (hops.empty()) {
      return Status::InvalidArgument(
          "expected 'join' after binder '" + sides[0].binder + "'");
    }

    if (pos_ < tokens_.size()) {
      SEED_RETURN_IF_ERROR(Expect("where"));
      SEED_RETURN_IF_ERROR(ParseJoinCondition(&sides));
      while (PeekIs("and")) {
        ++pos_;
        SEED_RETURN_IF_ERROR(ParseJoinCondition(&sides));
      }
    }
    if (pos_ != tokens_.size()) {
      return Status::InvalidArgument("trailing input after query: '" +
                                     tokens_[pos_].text + "'");
    }
    if (pairs_only && hops.size() > 1) {
      return Status::InvalidArgument(
          "multi-hop join chains return binder tuples; run them through "
          "RunJoinChainQuery");
    }
    obs::RecordPhase(ctx_, obs::QueryPhase::kParse,
                     obs::NowNanos() - parse_start);

    // Lower into the logical IR: each hop's direction comes from its
    // adjacent binder classes.
    const std::uint64_t lower_start = obs::NowNanos();
    LogicalChain chain;
    for (size_t i = 0; i < hops.size(); ++i) {
      SEED_ASSIGN_OR_RETURN(
          int left_role,
          InferJoinDirection(hops[i].assoc, sides[i].cls, sides[i + 1].cls,
                             hops[i].reverse));
      chain.hops.push_back({hops[i].assoc, left_role});
    }
    for (JoinSide& side : sides) {
      chain.binders.push_back(LogicalSelect::Objects(
          side.cls, side.binder, std::move(side.pred), !side.exact));
    }
    obs::RecordPhase(ctx_, obs::QueryPhase::kLower,
                     obs::NowNanos() - lower_start);

    // The one optimizer entry point: every binder's selection plans
    // through the cost-based access paths, then the hop-bitset DP picks
    // the join tree — left-deep or bushy — from the estimates, the
    // association populations and the tracked degree statistics.
    Planner planner(&db_);
    Planner::PhysicalPlan plan;
    SEED_ASSIGN_OR_RETURN(Planner::ChainResult result,
                          planner.Run(chain, &plan, ctx_));
    JoinChainResult out;
    for (const LogicalSelect& b : chain.binders) {
      out.binders.push_back(b.binder);
    }
    out.tuples = std::move(result.tuples.tuples);
    ReportPlan(plan_out_, plan, out.tuples.size());
    if (trace_ != nullptr) trace_->plan = std::move(plan);
    return out;
  }

 private:
  /// One side of a join query: its class extent, binder name, and the
  /// accumulated 'where' conjuncts.
  struct JoinSide {
    ClassId cls;
    std::string binder;
    bool exact = false;
    Predicate pred = Predicate::True();
    bool has_pred = false;
  };

  bool PeekIs(std::string_view word) const {
    return pos_ < tokens_.size() && !tokens_[pos_].quoted &&
           tokens_[pos_].text == word;
  }

  /// True when the tokens after 'find' look like '<Class> <binder>
  /// [exact] join' — the join grammar — rather than a plain object query.
  bool LooksLikeJoin() const {
    auto is = [&](size_t at, std::string_view word) {
      return at < tokens_.size() && !tokens_[at].quoted &&
             tokens_[at].text == word;
    };
    return is(pos_ + 2, "join") ||
           (is(pos_ + 2, "exact") && is(pos_ + 3, "join"));
  }

  /// Parses '<Class> <binder> [exact]' — the head of one join side.
  Result<JoinSide> ParseJoinSideHead() {
    SEED_ASSIGN_OR_RETURN(Token cls_token, Next("class name"));
    JoinSide side;
    auto cls = db_.schema()->FindIndependentClass(cls_token.text);
    if (!cls.ok()) return cls.status();
    side.cls = *cls;
    SEED_ASSIGN_OR_RETURN(Token binder, Next("binder name"));
    if (binder.quoted) {
      return Status::InvalidArgument("binder must be a bare name");
    }
    side.binder = binder.text;
    if (PeekIs("exact")) {
      ++pos_;
      side.exact = true;
    }
    return side;
  }

  /// Parses '<binder> cond' and conjoins it onto the named side.
  Status ParseJoinCondition(std::vector<JoinSide>* sides) {
    SEED_ASSIGN_OR_RETURN(Token binder, Next("binder name"));
    JoinSide* side = nullptr;
    if (!binder.quoted) {
      for (JoinSide& candidate : *sides) {
        if (candidate.binder == binder.text) side = &candidate;
      }
    }
    if (side == nullptr) {
      std::string known;
      for (size_t i = 0; i < sides->size(); ++i) {
        known += (i == 0 ? "'" : (i + 1 == sides->size() ? "' or '" : "', '"));
        known += (*sides)[i].binder;
      }
      return Status::InvalidArgument(
          "join conditions must start with a binder (" + known + "'), got '" +
          binder.text + "'");
    }
    SEED_ASSIGN_OR_RETURN(Predicate cond, ParseCondition());
    side->pred = side->has_pred ? side->pred.And(cond) : cond;
    side->has_pred = true;
    return Status::OK();
  }

  /// Which role the left class binds: inferred from the role classes
  /// (a side fits a role when its extent can overlap the role target's),
  /// forced — but still validated — to 1 by 'reverse'. Self-associations
  /// fit both ways and default to the forward direction.
  Result<int> InferJoinDirection(AssociationId assoc, ClassId left,
                                 ClassId right, bool reverse) const {
    const schema::Schema& schema = *db_.schema();
    auto item = schema.GetAssociation(assoc);
    if (!item.ok()) return item.status();
    auto fits = [&](ClassId cls, const schema::Role& role) {
      return schema.IsSameOrSpecializationOf(cls, role.target) ||
             schema.IsSameOrSpecializationOf(role.target, cls);
    };
    bool backward =
        fits(left, (*item)->roles[1]) && fits(right, (*item)->roles[0]);
    if (reverse) {
      if (!backward) {
        return Status::InvalidArgument(
            "'reverse' join classes do not fit the swapped roles of "
            "association '" + (*item)->name + "'");
      }
      return 1;
    }
    if (fits(left, (*item)->roles[0]) && fits(right, (*item)->roles[1])) {
      return 0;
    }
    if (backward) return 1;
    return Status::InvalidArgument(
        "join classes fit neither direction of association '" +
        (*item)->name + "'");
  }

  Status Expect(std::string_view word) {
    if (!PeekIs(word)) {
      return Status::InvalidArgument(
          "expected '" + std::string(word) + "'" +
          (pos_ < tokens_.size() ? ", got '" + tokens_[pos_].text + "'"
                                 : " at end of query"));
    }
    ++pos_;
    return Status::OK();
  }

  Result<Token> Next(std::string_view what) {
    if (pos_ >= tokens_.size()) {
      return Status::InvalidArgument("expected " + std::string(what) +
                                     " at end of query");
    }
    return tokens_[pos_++];
  }

  /// Value comparison for the '>' / '<' operators (integer only).
  Result<Predicate> ParseComparison(const std::string& op) {
    SEED_ASSIGN_OR_RETURN(Token operand, Next("integer bound"));
    if (operand.quoted) {
      return Status::InvalidArgument("'" + op +
                                     "' wants an integer bound, got '" +
                                     operand.text + "'");
    }
    auto bound = ParseInt(operand.text);
    if (!bound.ok()) {
      return Status::InvalidArgument("'" + op +
                                     "' wants an integer bound, got '" +
                                     operand.text + "'");
    }
    return op == ">" ? Predicate::IntGreater(*bound)
                     : Predicate::IntLess(*bound);
  }

  Result<Predicate> ParseCondition() {
    SEED_ASSIGN_OR_RETURN(Token subject, Next("condition subject"));
    if (subject.quoted) {
      return Status::InvalidArgument("condition must start with a name");
    }
    if (subject.text == "has") {
      SEED_ASSIGN_OR_RETURN(Token role, Next("role name"));
      return Predicate::OnSubObject(role.text, Predicate::True());
    }
    SEED_ASSIGN_OR_RETURN(Token op, Next("'is', 'contains', '>' or '<'"));
    if (op.text != "is" && op.text != "contains" && op.text != ">" &&
        op.text != "<") {
      return Status::InvalidArgument(
          "expected 'is', 'contains', '>' or '<', got '" + op.text + "'");
    }

    if (subject.text == "name") {
      SEED_ASSIGN_OR_RETURN(Token operand, Next("operand"));
      if (op.text == "is") return Predicate::NameIs(operand.text);
      if (op.text == "contains") return Predicate::NameContains(operand.text);
      return Status::InvalidArgument("'" + op.text +
                                     "' does not apply to names");
    }
    if (subject.text == "value") {
      if (op.text == ">" || op.text == "<") return ParseComparison(op.text);
      SEED_ASSIGN_OR_RETURN(Token operand, Next("operand"));
      return op.text == "is" ? LiteralEquals(operand)
                             : Predicate::ValueContains(operand.text);
    }
    // Otherwise the subject is a sub-object role.
    Predicate inner = Predicate::True();
    if (op.text == ">" || op.text == "<") {
      SEED_ASSIGN_OR_RETURN(inner, ParseComparison(op.text));
    } else {
      SEED_ASSIGN_OR_RETURN(Token operand, Next("operand"));
      inner = op.text == "is" ? LiteralEquals(operand)
                              : Predicate::ValueContains(operand.text);
    }
    return Predicate::OnSubObject(subject.text, inner);
  }

  /// One conjunct of a relationship query: a condition on the attribute
  /// sub-objects in a role ('has ROLE', 'ROLE is ...', 'ROLE > ...').
  Result<Planner::RelCondition> ParseRelCondition() {
    SEED_ASSIGN_OR_RETURN(Token subject, Next("condition subject"));
    if (subject.quoted) {
      return Status::InvalidArgument("condition must start with a role name");
    }
    if (subject.text == "has") {
      SEED_ASSIGN_OR_RETURN(Token role, Next("role name"));
      return Planner::RelCondition{role.text, Predicate::True()};
    }
    SEED_ASSIGN_OR_RETURN(Token op, Next("'is', 'contains', '>' or '<'"));
    if (op.text == ">" || op.text == "<") {
      SEED_ASSIGN_OR_RETURN(Predicate inner, ParseComparison(op.text));
      return Planner::RelCondition{subject.text, std::move(inner)};
    }
    if (op.text != "is" && op.text != "contains") {
      return Status::InvalidArgument(
          "expected 'is', 'contains', '>' or '<', got '" + op.text + "'");
    }
    SEED_ASSIGN_OR_RETURN(Token operand, Next("operand"));
    Predicate inner = op.text == "is"
                          ? LiteralEquals(operand)
                          : Predicate::ValueContains(operand.text);
    return Planner::RelCondition{subject.text, std::move(inner)};
  }

  const core::Database& db_;
  std::vector<Token> tokens_;
  std::string* plan_out_;
  QueryTrace* trace_;
  obs::ExecContext* ctx_;
  size_t pos_ = 0;
};

}  // namespace

std::string QueryTrace::Render(bool mask_times) const {
  return plan.ToAnalyzeString(mask_times) + "; phases: " +
         ctx.PhaseSummary(mask_times);
}

Result<std::vector<ObjectId>> RunQuery(const core::Database& db,
                                       std::string_view text,
                                       std::string* plan_out,
                                       QueryTrace* trace) {
  SEED_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  if (tokens.empty()) return Status::InvalidArgument("empty query");
  return Parser(db, std::move(tokens), plan_out, trace).RunObjects();
}

Result<std::vector<RelationshipId>> RunRelationshipQuery(
    const core::Database& db, std::string_view text, std::string* plan_out,
    QueryTrace* trace) {
  SEED_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  if (tokens.empty()) return Status::InvalidArgument("empty query");
  return Parser(db, std::move(tokens), plan_out, trace).RunRelationships();
}

Result<std::vector<std::pair<ObjectId, ObjectId>>> RunJoinQuery(
    const core::Database& db, std::string_view text, std::string* plan_out,
    QueryTrace* trace) {
  SEED_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  if (tokens.empty()) return Status::InvalidArgument("empty query");
  // Multi-hop chains are rejected right after parsing, before anything
  // executes: their result has no pairs shape.
  SEED_ASSIGN_OR_RETURN(
      JoinChainResult chain,
      Parser(db, std::move(tokens), plan_out, trace)
          .RunJoinChain(/*pairs_only=*/true));
  std::vector<std::pair<ObjectId, ObjectId>> out;
  out.reserve(chain.tuples.size());
  for (const auto& tuple : chain.tuples) {
    out.emplace_back(tuple[0], tuple[1]);
  }
  return out;
}

Result<JoinChainResult> RunJoinChainQuery(const core::Database& db,
                                          std::string_view text,
                                          std::string* plan_out,
                                          QueryTrace* trace) {
  SEED_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  if (tokens.empty()) return Status::InvalidArgument("empty query");
  return Parser(db, std::move(tokens), plan_out, trace).RunJoinChain();
}

// The shared_ptr overloads keep the pin on the stack across the whole
// call, then forward to the borrowing implementations.

Result<std::vector<ObjectId>> RunQuery(
    std::shared_ptr<const core::Database> db, std::string_view text,
    std::string* plan_out, QueryTrace* trace) {
  if (db == nullptr) return Status::InvalidArgument("null database pin");
  return RunQuery(*db, text, plan_out, trace);
}

Result<std::vector<RelationshipId>> RunRelationshipQuery(
    std::shared_ptr<const core::Database> db, std::string_view text,
    std::string* plan_out, QueryTrace* trace) {
  if (db == nullptr) return Status::InvalidArgument("null database pin");
  return RunRelationshipQuery(*db, text, plan_out, trace);
}

Result<std::vector<std::pair<ObjectId, ObjectId>>> RunJoinQuery(
    std::shared_ptr<const core::Database> db, std::string_view text,
    std::string* plan_out, QueryTrace* trace) {
  if (db == nullptr) return Status::InvalidArgument("null database pin");
  return RunJoinQuery(*db, text, plan_out, trace);
}

Result<JoinChainResult> RunJoinChainQuery(
    std::shared_ptr<const core::Database> db, std::string_view text,
    std::string* plan_out, QueryTrace* trace) {
  if (db == nullptr) return Status::InvalidArgument("null database pin");
  return RunJoinChainQuery(*db, text, plan_out, trace);
}

}  // namespace seed::query
