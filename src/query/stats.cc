#include "query/stats.h"

#include <algorithm>

namespace seed::query {

double CostModel::JoinRows(double assoc_rows, double left_rows,
                           double left_extent_rows, double right_rows,
                           double right_extent_rows) {
  auto coverage = [](double rows, double extent_rows) {
    if (extent_rows <= 0.0) return 0.0;
    double fraction = rows / extent_rows;
    return fraction > 1.0 ? 1.0 : fraction;
  };
  return assoc_rows * coverage(left_rows, left_extent_rows) *
         coverage(right_rows, right_extent_rows);
}

double CostModel::HashJoinCost(double assoc_rows, double build_rows,
                               double probe_rows, double out_rows) {
  return assoc_rows * (kPostingCost + kResidualCost) +
         build_rows * kHashBuildCost + probe_rows * kHashTupleCost +
         out_rows * kPostingCost;
}

double CostModel::IndexNestedLoopJoinCost(double driver_rows, double degree,
                                          double build_rows, double out_rows) {
  return driver_rows * kProbeCost + driver_rows * degree * kResidualCost +
         build_rows * kHashBuildCost + out_rows * kPostingCost;
}

double CostModel::TupleJoinRows(double left_rows, double right_rows,
                                double shared_extent_rows) {
  double cartesian = left_rows * right_rows;
  if (shared_extent_rows <= 1.0) return cartesian;
  double est = cartesian / shared_extent_rows;
  return std::min(est, cartesian);
}

double CostModel::TupleJoinCost(double build_rows, double probe_rows,
                                double out_rows) {
  return build_rows * kHashBuildCost + probe_rows * kHashTupleCost +
         out_rows * kPostingCost;
}

double EstimateEqualityRows(const index::AttributeIndex& index,
                            const std::vector<core::Value>& keys) {
  size_t rows = 0;
  for (const core::Value& key : keys) rows += index.CountEquals(key);
  return static_cast<double>(rows);
}

double EstimateRangeRows(const index::AttributeIndex& index,
                         const core::Value& lo, bool lo_inclusive,
                         const core::Value& hi, bool hi_inclusive) {
  return index.EstimateRange(lo, lo_inclusive, hi, hi_inclusive);
}

}  // namespace seed::query
