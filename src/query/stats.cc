#include "query/stats.h"

namespace seed::query {

double EstimateEqualityRows(const index::AttributeIndex& index,
                            const std::vector<core::Value>& keys) {
  size_t rows = 0;
  for (const core::Value& key : keys) rows += index.CountEquals(key);
  return static_cast<double>(rows);
}

double EstimateRangeRows(const index::AttributeIndex& index,
                         const core::Value& lo, bool lo_inclusive,
                         const core::Value& hi, bool hi_inclusive) {
  return index.EstimateRange(lo, lo_inclusive, hi, hi_inclusive);
}

}  // namespace seed::query
